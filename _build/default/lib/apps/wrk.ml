(** wrk-like / redis-benchmark-like load generator.

    One client process with [threads] threads; each thread opens
    [conns] connections, then drives them in rounds: it writes one
    request on every connection, then reads every response (so up to
    [conns] requests are outstanding — wrk's epoll concurrency).  A
    per-request cost models the client's own protocol work: small for
    wrk, substantial for redis-benchmark (which is why the paper's
    1-I/O-thread redis configuration is client-bound and barely feels
    the interposer).

    The thread logic is a host-side state machine (same pattern as the
    dynamic loader): every system call the client performs is still a
    genuine [syscall] instruction in the client binary. *)

open K23_isa
open K23_kernel
open K23_machine

type config = {
  path : string;
  port : int;
  threads : int;
  conns : int;  (** connections per thread (served sequentially) *)
  depth : int;  (** pipeline depth: outstanding requests per connection *)
  rounds : int;  (** rounds of [depth] requests per connection *)
  req_cost : int;  (** client-side work per request *)
  resp_len : int;  (** exact response size, for framed reads *)
}

type results = {
  mutable completed : int;
  mutable started_at : int option;  (** cycles when the load phase began *)
  mutable errors : int;
}

type mode =
  | Spawn of int  (** remaining threads to create *)
  | Mmap_stack of int
  | Socket
  | Connect
  | Fill  (** prime the pipeline with [depth] requests *)
  | Steady_recv  (** sliding window: read one response ... *)
  | Steady_send  (** ... then send the next request *)
  | Close
  | Finished

type tstate = {
  mutable mode : mode;
  mutable fds : int array;
  mutable nconn : int;
  mutable cur_fd : int;
  mutable sent : int;
  mutable received : int;
  mutable stack : int;
  mutable post : int -> unit;
}

let fresh_tstate mode =
  {
    mode;
    fds = [||];
    nconn = 0;
    cur_fd = -1;
    sent = 0;
    received = 0;
    stack = 0;
    post = ignore;
  }

let items () =
  [
    Asm.Label "main";
    Asm.Label "wk_thread_entry";
    Asm.Label "wk_loop";
    Asm.Vcall_named "wk_step";
    Asm.I (Insn.Cmp_ri (RBX, 0));
    Asm.Jc (Insn.NZ, "wk_notsys");
    Asm.I Insn.Syscall;
    Asm.Vcall_named "wk_ret";
    Asm.J "wk_loop";
    Asm.Label "wk_notsys";
    Asm.I (Insn.Cmp_ri (RBX, 1));
    Asm.Jc (Insn.NZ, "wk_exit_proc");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit_thread";
    Asm.Label "wk_exit_proc";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "wk_req";
    Asm.Blob (Bytes.make 64 'Q');
    Asm.Label "wk_buf";
    Asm.Zeros 8192;
  ]

(** Build and register the client; returns the shared results record. *)
let register w cfg : results =
  let results = { completed = 0; started_at = None; errors = 0 } in
  let states : (int, tstate) Hashtbl.t = Hashtbl.create 16 in
  let live_threads = ref cfg.threads in
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let state_of (ctx : Kern.ctx) =
    match Hashtbl.find_opt states ctx.thread.tid with
    | Some st -> st
    | None ->
      (* the first thread to step is the main thread: it spawns the
         others, which go straight to connecting *)
      let is_main = Hashtbl.length states = 0 in
      let st =
        fresh_tstate (if is_main && cfg.threads > 1 then Spawn (cfg.threads - 1) else Socket)
      in
      Hashtbl.replace states ctx.thread.tid st;
      st
  in
  let data_sym (ctx : Kern.ctx) name =
    match Mapper.image_sym ctx.thread.t_proc (Lazy.force lazy_im) name with
    | Some a -> a
    | None -> Kern.panic "wrk: missing symbol %s" name
  in
  let set ctx r v = Regs.set ctx.Kern.thread.regs r v in
  let sys (ctx : Kern.ctx) st nr a0 a1 a2 ~post =
    set ctx RAX nr;
    set ctx RDI a0;
    set ctx RSI a1;
    set ctx RDX a2;
    set ctx R10 0;
    set ctx R8 0;
    set ctx R9 0;
    set ctx RBX 0;
    st.post <- post
  in
  let sys6 (ctx : Kern.ctx) st nr args ~post =
    set ctx RAX nr;
    set ctx RDI args.(0);
    set ctx RSI args.(1);
    set ctx RDX args.(2);
    set ctx R10 args.(3);
    set ctx R8 args.(4);
    set ctx R9 args.(5);
    set ctx RBX 0;
    st.post <- post
  in
  let rec wk_step (ctx : Kern.ctx) =
    let st = state_of ctx in
    match st.mode with
    | Spawn 0 ->
      st.mode <- Socket;
      wk_step ctx
    | Spawn n ->
      st.mode <- Mmap_stack n;
      sys6 ctx st Sysno.mmap [| 0; 0x10000; 3; 0x20; -1; 0 |] ~post:(fun r -> st.stack <- r)
    | Mmap_stack n ->
      st.mode <- Spawn (n - 1);
      sys ctx st Sysno.clone (data_sym ctx "wk_thread_entry") (st.stack + 0xf000) 0 ~post:ignore
    | Socket ->
      sys ctx st Sysno.socket 2 1 0 ~post:(fun r ->
          st.cur_fd <- r;
          st.mode <- Connect)
    | Connect ->
      sys ctx st Sysno.connect st.cur_fd cfg.port 0 ~post:(fun r ->
          if r < 0 then begin
            (* server not listening yet: retry with a fresh socket *)
            results.errors <- results.errors + 1;
            st.mode <- Socket
          end
          else begin
            st.nconn <- st.nconn + 1;
            if results.started_at = None then results.started_at <- Some (Kern.now ctx.world);
            st.sent <- 0;
            st.received <- 0;
            st.mode <- Fill
          end)
    | Fill ->
      (* prime the pipeline: [depth] outstanding requests, like wrk's
         16 concurrent connections per thread *)
      let total = cfg.depth * cfg.rounds in
      Appkit.charge_work ctx cfg.req_cost;
      sys ctx st Sysno.write st.cur_fd (data_sym ctx "wk_req") 64 ~post:(fun _ ->
          st.sent <- st.sent + 1;
          if st.sent >= min cfg.depth total then st.mode <- Steady_recv)
    | Steady_recv ->
      (* sliding window: one response in, one request out — the
         pipeline never drains, so the server never starves *)
      let total = cfg.depth * cfg.rounds in
      sys ctx st Sysno.read st.cur_fd (data_sym ctx "wk_buf") cfg.resp_len ~post:(fun r ->
          if r > 0 then results.completed <- results.completed + 1
          else results.errors <- results.errors + 1;
          st.received <- st.received + 1;
          if st.received >= total then st.mode <- Close
          else if st.sent < total then st.mode <- Steady_send)
    | Steady_send ->
      Appkit.charge_work ctx cfg.req_cost;
      sys ctx st Sysno.write st.cur_fd (data_sym ctx "wk_req") 64 ~post:(fun _ ->
          st.sent <- st.sent + 1;
          st.mode <- Steady_recv)
    | Close ->
      (* finish this connection; open the next one if any remain *)
      sys ctx st Sysno.close st.cur_fd 0 0 ~post:(fun _ ->
          st.mode <- (if st.nconn >= cfg.conns then Finished else Socket))
    | Finished ->
      decr live_threads;
      (* last thread out terminates the whole benchmark process *)
      set ctx RBX (if !live_threads <= 0 then 2 else 1)
  in
  let wk_ret (ctx : Kern.ctx) =
    let st = state_of ctx in
    let f = st.post in
    st.post <- ignore;
    f (Regs.get ctx.thread.regs RAX)
  in
  let im =
    K23_userland.Sim.register_app w ~path:cfg.path
      ~host_fns:[ ("wk_step", wk_step); ("wk_ret", wk_ret) ]
      (items ())
  in
  im_ref := Some im;
  results
