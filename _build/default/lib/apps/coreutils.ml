(** Simulated coreutils: pwd, touch, ls, cat, clear.

    Each utility performs its real job on the simulated VFS and is
    written to exercise the same {e number of distinct} syscall sites
    the paper measured in its offline phase (Table 2: pwd 7, touch 9,
    ls 10, cat 11, clear 13).  The counts refer to unique
    [syscall]/[sysenter] instructions observed after the interposition
    library loads, i.e. libc wrapper sites used by main. *)

open K23_isa
open K23_kernel
module Libc = K23_userland.Libc

(* common prologue every glibc program effectively runs: brk + fstat
   on stdout (2 unique sites) *)
let prologue =
  [
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "brk";
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "statbuf");
    Asm.Call_sym "fstat";
  ]

let data =
  [
    Asm.Section `Data;
    Asm.Label "statbuf";
    Asm.Zeros 64;
    Asm.Label "buf";
    Asm.Zeros 4096;
    Asm.Label "nl";
    Asm.Strz "\n";
    Asm.Label "dot";
    Asm.Strz ".";
    Asm.Label "touch_path";
    Asm.Strz "/tmp/touched";
    Asm.Label "cat_path";
    Asm.Strz "/etc/hostname";
    Asm.Label "clear_seq";
    Asm.Strz "\x1b[H\x1b[2J";
    Asm.Label "terminfo";
    Asm.Strz "/usr/share/terminfo/x/xterm";
  ]

(* pwd: 7 unique sites = brk fstat getcwd write munmap close(getdents'
   fd? no) ... exactly: brk, fstat, getcwd, write, munmap, close,
   exit_group *)
let pwd_items =
  [ Asm.Label "main" ] @ prologue
  @ [
      Asm.Mov_sym (RDI, "buf");
      Asm.I (Insn.Mov_ri (RSI, 4096));
      Asm.Call_sym "getcwd";
      (* write the cwd (we print a fixed-size prefix for simplicity) *)
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.Mov_sym (RSI, "buf");
      Asm.I (Insn.Mov_ri (RDX, 1));
      Asm.Call_sym "write";
      Asm.I (Insn.Mov_ri (RDI, 0x7100_0000));
      Asm.I (Insn.Mov_ri (RSI, 4096));
      Asm.Call_sym "munmap";
      Asm.I (Insn.Mov_ri (RDI, 0));
      Asm.Call_sym "close";
    ]
  @ Appkit.exit_with 0 @ data

(* touch: 9 = brk fstat openat dup chmod close getpid write exit *)
let touch_items =
  [ Asm.Label "main" ] @ prologue
  @ [
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "touch_path");
      Asm.I (Insn.Mov_ri (RDX, 0x40));  (* O_CREAT *)
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "dup";
      Asm.Mov_sym (RDI, "touch_path");
      Asm.I (Insn.Mov_ri (RSI, 0o644));
      Asm.Call_sym "chmod";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
      Asm.Call_sym "getpid";
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.Mov_sym (RSI, "nl");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "write";
    ]
  @ Appkit.exit_with 0 @ data

(* ls: 10 = brk fstat openat getdents64 write close stat ioctl mmap
   exit *)
let ls_items =
  [ Asm.Label "main" ] @ prologue
  @ [
      (* ioctl(1, TIOCGWINSZ) *)
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I (Insn.Mov_ri (RSI, 0x5413));
      Asm.Call_sym "ioctl";
      (* stat(".") *)
      Asm.Mov_sym (RDI, "dot");
      Asm.Mov_sym (RSI, "statbuf");
      Asm.Call_sym "stat";
      (* scratch arena like glibc's readdir buffer *)
      Asm.I (Insn.Mov_ri (RDI, 0));
      Asm.I (Insn.Mov_ri (RSI, 8192));
      Asm.I (Insn.Mov_ri (RDX, 3));
      Asm.I (Insn.Mov_ri (RCX, 0x20));
      Asm.I (Insn.Mov_ri (R8, -1));
      Asm.I (Insn.Mov_ri (R9, 0));
      Asm.Call_sym "mmap";
      (* opendir(".") + getdents + print *)
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "dot");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "buf");
      Asm.I (Insn.Mov_ri (RDX, 4096));
      Asm.Call_sym "getdents64";
      Asm.I (Insn.Mov_rr (RDX, RAX));
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.Mov_sym (RSI, "buf");
      Asm.Call_sym "write";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
    ]
  @ Appkit.exit_with 0 @ data

(* cat: 11 = brk fstat openat read write lseek mmap munmap close ioctl
   exit *)
let cat_items =
  [ Asm.Label "main" ] @ prologue
  @ [
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I (Insn.Mov_ri (RSI, 0x5401));
      Asm.Call_sym "ioctl";
      Asm.I (Insn.Mov_ri (RDI, 0));
      Asm.I (Insn.Mov_ri (RSI, 0x20000));
      Asm.I (Insn.Mov_ri (RDX, 3));
      Asm.I (Insn.Mov_ri (RCX, 0x20));
      Asm.I (Insn.Mov_ri (R8, -1));
      Asm.I (Insn.Mov_ri (R9, 0));
      Asm.Call_sym "mmap";
      Asm.I (Insn.Mov_rr (R12, RAX));
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "cat_path");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R14, RAX));
      (* lseek to probe the size, then back *)
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.I (Insn.Mov_ri (RSI, 0));
      Asm.I (Insn.Mov_ri (RDX, 2));
      Asm.Call_sym "lseek";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.I (Insn.Mov_ri (RSI, 0));
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "lseek";
      Asm.Label "cat_loop";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.I (Insn.Mov_rr (RSI, R12));
      Asm.I (Insn.Mov_ri (RDX, 4096));
      Asm.Call_sym "read";
      Asm.I (Insn.Cmp_ri (RAX, 0));
      Asm.Jc (Insn.LE, "cat_done");
      Asm.I (Insn.Mov_rr (RDX, RAX));
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I (Insn.Mov_rr (RSI, R12));
      Asm.Call_sym "write";
      Asm.J "cat_loop";
      Asm.Label "cat_done";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.I (Insn.Mov_ri (RSI, 0x20000));
      Asm.Call_sym "munmap";
    ]
  @ Appkit.exit_with 0 @ data

(* clear: 13 = brk fstat openat read write ioctl mmap munmap close
   stat access getpid exit *)
let clear_items =
  [ Asm.Label "main" ] @ prologue
  @ [
      (* terminfo lookup *)
      Asm.Mov_sym (RDI, "terminfo");
      Asm.I (Insn.Mov_ri (RSI, 4));
      Asm.Call_sym "access";
      Asm.Mov_sym (RDI, "terminfo");
      Asm.Mov_sym (RSI, "statbuf");
      Asm.Call_sym "stat";
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "terminfo");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.I (Insn.Mov_ri (RDI, 0));
      Asm.I (Insn.Mov_ri (RSI, 4096));
      Asm.I (Insn.Mov_ri (RDX, 3));
      Asm.I (Insn.Mov_ri (RCX, 0x20));
      Asm.I (Insn.Mov_ri (R8, -1));
      Asm.I (Insn.Mov_ri (R9, 0));
      Asm.Call_sym "mmap";
      Asm.I (Insn.Mov_rr (R12, RAX));
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.I (Insn.Mov_rr (RSI, R12));
      Asm.I (Insn.Mov_ri (RDX, 4096));
      Asm.Call_sym "read";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.I (Insn.Mov_ri (RSI, 4096));
      Asm.Call_sym "munmap";
      Asm.Call_sym "getpid";
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I (Insn.Mov_ri (RSI, 0x5401));
      Asm.Call_sym "ioctl";
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.Mov_sym (RSI, "clear_seq");
      Asm.I (Insn.Mov_ri (RDX, 7));
      Asm.Call_sym "write";
    ]
  @ Appkit.exit_with 0 @ data

(* dependency sets mirror the real binaries: ls pulls in
   libselinux/libcap (and transitively libpcre2), which is a large part
   of why it issues >100 syscalls before main (Section 6.1) *)
let all =
  [
    ("pwd", pwd_items, [ Libc.path ]);
    ("touch", touch_items, [ Libc.path ]);
    ("ls", ls_items, [ Libc.path; K23_userland.Stdlibs.libselinux; K23_userland.Stdlibs.libcap ]);
    ("cat", cat_items, [ Libc.path ]);
    ("clear", clear_items, [ Libc.path; K23_userland.Stdlibs.libz ]);
  ]

(** Expected Table 2 counts. *)
let expected_sites = [ ("pwd", 7); ("touch", 9); ("ls", 10); ("cat", 11); ("clear", 13) ]

let path name = "/bin/" ^ name

let register_all w =
  List.iter
    (fun (name, items, needed) ->
      ignore (K23_userland.Sim.register_app w ~path:(path name) ~needed items))
    all;
  (* things the utilities touch *)
  ignore (Vfs.write_file w.Kern.vfs "/usr/share/terminfo/x/xterm" (String.make 600 't'));
  ignore (Vfs.mkdir_p w.Kern.vfs "/home/user")
