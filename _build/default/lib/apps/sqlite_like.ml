(** sqlite-like embedded database running a speedtest1-style workload
    (Section 6.2.2: fresh database, WAL mode, synchronous=NORMAL, no
    auto-checkpointing — so commits append to the WAL without
    fsync). *)

open K23_isa
open K23_kernel

type config = {
  path : string;
  ops : int;  (** speedtest1 -size N maps to the op count *)
  compute_cost : int;  (** B-tree/SQL work per statement *)
  init_site_count : int;
}

let default ?(ops = 4000) () =
  { path = "/usr/bin/sqlite3"; ops; compute_cost = 7600; init_site_count = 14 }

let wal_path = "/tmp/speedtest.db-wal"
let db_path = "/tmp/speedtest.db"

let items cfg =
  [ Asm.Label "main" ]
  @ Appkit.init_sites cfg.init_site_count
  @ [
      (* open the database and its WAL *)
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "dbp");
      Asm.I (Insn.Mov_ri (RDX, 0x40));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R12, RAX));
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "walp");
      Asm.I (Insn.Mov_ri (RDX, 0x40));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (RBX, RAX));
      Asm.I (Insn.Mov_ri (R13, cfg.ops));
      Asm.Label "op_loop";
      (* the statement itself: parse/plan/execute *)
      Asm.Vcall_named "sq_work";
      (* commit: append a WAL frame *)
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.Mov_sym (RSI, "frame");
      Asm.I (Insn.Mov_ri (RDX, 128));
      Asm.Call_sym "write";
      (* read back a page *)
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.I (Insn.Mov_ri (RSI, 0));
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "lseek";
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.Mov_sym (RSI, "page");
      Asm.I (Insn.Mov_ri (RDX, 512));
      Asm.Call_sym "read";
      Asm.I (Insn.Sub_ri (R13, 1));
      Asm.Jc (Insn.NZ, "op_loop");
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.Call_sym "close";
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.Call_sym "close";
    ]
  @ Appkit.exit_with 0
  @ [
      Asm.Section `Data;
      Asm.Label "dbp";
      Asm.Strz db_path;
      Asm.Label "walp";
      Asm.Strz wal_path;
      Asm.Label "frame";
      Asm.Blob (Bytes.make 128 'W');
      Asm.Label "page";
      Asm.Zeros 512;
    ]

let register w cfg =
  ignore (Vfs.write_file w.Kern.vfs db_path (String.make 4096 'D'));
  let host_fns = [ ("sq_work", fun ctx -> Appkit.charge_work ctx cfg.compute_cost) ] in
  let needed = K23_userland.[ Libc.path; Stdlibs.libz ] in
  ignore (K23_userland.Sim.register_app w ~path:cfg.path ~needed ~host_fns (items cfg))
