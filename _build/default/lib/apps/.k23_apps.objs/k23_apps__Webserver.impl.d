lib/apps/webserver.ml: Appkit Asm Bytes Insn K23_isa K23_kernel K23_userland Kern Libc List Stdlibs String Vfs
