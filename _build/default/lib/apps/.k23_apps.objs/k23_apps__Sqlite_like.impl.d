lib/apps/sqlite_like.ml: Appkit Asm Bytes Insn K23_isa K23_kernel K23_userland Kern Libc Stdlibs String Vfs
