lib/apps/redis_like.ml: Appkit Array Asm Bytes Hashtbl Insn K23_isa K23_kernel K23_userland Libc Stdlibs
