lib/apps/coreutils.ml: Appkit Asm Insn K23_isa K23_kernel K23_userland Kern List String Vfs
