lib/apps/appkit.ml: Array Asm Insn K23_isa K23_kernel K23_machine K23_util Kern List Sysno
