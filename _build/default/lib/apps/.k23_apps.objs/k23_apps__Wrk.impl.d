lib/apps/wrk.ml: Appkit Array Asm Bytes Hashtbl Insn K23_isa K23_kernel K23_machine K23_userland Kern Lazy Mapper Option Regs Sysno
