(** Shared building blocks for the workload applications. *)

open K23_isa
open K23_kernel

(** Generate [n] distinct inlined syscall sites, executed once each.

    Real servers contain dozens of statically distinct syscall call
    sites that fire during initialisation (sigaction batteries,
    setsockopt runs, rlimit probes, ...).  Table 2's per-application
    unique-site counts (43 for nginx, 92 for redis, ...) come mostly
    from this diversity, so we synthesise it: each generated site is a
    separate [syscall] instruction in the binary, executed once at
    startup. *)
let init_sites n =
  let benign = [| Sysno.getpid; Sysno.gettid; Sysno.ioctl; Sysno.fcntl; Sysno.rt_sigprocmask; Sysno.sched_yield |] in
  List.concat
    (List.init n (fun i ->
         [
           Asm.I (Insn.Mov_ri (RAX, benign.(i mod Array.length benign)));
           Asm.I (Insn.Xor_rr (RDI, RDI));
           Asm.I Insn.Syscall;
         ]))

(** write(1, sym, len) *)
let print_sym sym len =
  [
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, sym);
    Asm.I (Insn.Mov_ri (RDX, len));
    Asm.Call_sym "write";
  ]

(** exit(code) *)
let exit_with code =
  [ Asm.I (Insn.Mov_ri (RDI, code)); Asm.Call_sym "exit" ]

(** Host-function helpers. *)
let ret (ctx : Kern.ctx) v = K23_machine.Regs.set ctx.thread.regs RAX v

let arg (ctx : Kern.ctx) r = K23_machine.Regs.get ctx.thread.regs r

(** Charge an application-logic cost with ~1% deterministic jitter
    (models microarchitectural run-to-run noise so the benchmark's
    standard deviations are non-degenerate). *)
let charge_work (ctx : Kern.ctx) base =
  let jitter = if base >= 100 then K23_util.Rng.int ctx.world.rng (base / 100 * 2 + 1) else 0 in
  Kern.charge ctx.world ctx.thread (base + jitter)

(** A serialised critical section, modelled analytically: the caller
    stalls until the previous holder's window ends, then occupies it
    for [cost] cycles.  Used for redis' single command-execution
    thread. *)
type serial = { mutable until : int }

let serial_create () = { until = 0 }

let serial_enter (ctx : Kern.ctx) s ~cost =
  let w = ctx.world in
  let busy = w.core_cycles.(ctx.thread.core) in
  let start = max busy s.until in
  s.until <- start + cost;
  Kern.charge w ctx.thread (start - busy + cost)

(** Variant for critical sections that contain simulated code whose
    cost is only known after it ran (e.g. a notification syscall under
    an unknown interposer): the measured extra time extends the chain
    reservation but is not re-charged to the core (it already paid). *)
let serial_enter_measured (ctx : Kern.ctx) s ~cost ~measured_extra =
  let w = ctx.world in
  let busy = w.core_cycles.(ctx.thread.core) in
  let start = max busy s.until in
  s.until <- start + cost + measured_extra;
  Kern.charge w ctx.thread (start - busy);
  charge_work ctx cost
