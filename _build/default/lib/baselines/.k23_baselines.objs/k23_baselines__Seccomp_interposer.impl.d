lib/baselines/seccomp_interposer.ml: Asm Bpf Hashtbl Insn K23_interpose K23_isa K23_kernel Kern Lazy List Mapper Option World
