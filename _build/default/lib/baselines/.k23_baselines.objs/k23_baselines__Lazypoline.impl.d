lib/baselines/lazypoline.ml: Asm Hashtbl Insn K23_interpose K23_isa K23_kernel K23_machine Kern Lazy Mapper Memory Option World
