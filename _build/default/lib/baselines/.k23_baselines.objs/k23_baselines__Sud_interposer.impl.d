lib/baselines/sud_interposer.ml: Asm Insn K23_interpose K23_isa K23_kernel Kern Lazy Mapper Option World
