lib/baselines/ptrace_interposer.ml: K23_interpose K23_kernel Kern World
