lib/baselines/zpoline.ml: Asm Disasm Hashtbl Insn K23_interpose K23_isa K23_kernel K23_machine Kern List Memory World
