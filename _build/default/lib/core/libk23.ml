(** libK23 — K23's fast in-process interposer (Section 5.2).

    Its constructor runs as the last LD_PRELOAD initialiser and:

    + reads the offline logs and maps each (region, offset) pair back
      to a virtual address through the current memory map (offsets are
      ASLR-stable);
    + installs the page-0 trampoline (PKU-protected XOM, like
      zpoline/lazypoline);
    + performs a {e single, selective} rewrite of exactly the
      pre-validated sites — each checked to still hold a
      [syscall]/[sysenter] encoding — saving and restoring page
      permissions (this simultaneously avoids P3a, P3b and P5);
    + builds the Robin-Hood hash set of valid sites for the
      NULL-execution check (P4a without zpoline's bitmap cost, P4b);
    + arms the SUD fallback that catches every site the offline phase
      missed (P2a) — the fallback {e never} rewrites;
    + hands startup state over from the ptracer via fake system calls
      and tells it to detach;
    + finally flips the SUD selector to BLOCK: interposition is live.

    The attached handler additionally guards prctl so SUD-based
    interposition cannot be silently disabled (P1b), and re-attaches
    the ptracer around execve so the whole online phase restarts in
    the new image (Section 5.3). *)

open K23_isa
open K23_machine
open K23_kernel
open Kern
open K23_interpose.Interpose

type variant = Default | Ultra | Ultra_plus

let variant_to_string = function
  | Default -> "K23-default"
  | Ultra -> "K23-ultra"
  | Ultra_plus -> "K23-ultra+"

let lib_path = "/usr/lib/libk23.so"

type state = {
  valid : Robin_set.t;  (** rewritten sites, for the NULL-execution check *)
  mutable rewritten : int;
  mutable stale_log_entries : int;  (** log lines that no longer match a syscall *)
  mutable startup_from_ptracer : int;  (** handed over by the ptracer *)
}

type Kern.pstate += K23_state of state

let state_key = "libk23"

let get_state (p : proc) =
  match Hashtbl.find_opt p.pstates state_key with
  | Some (K23_state s) -> s
  | _ -> panic "libK23: no state in pid %d" p.pid

let null_check (ctx : ctx) ~site = Robin_set.mem (get_state ctx.thread.t_proc).valid site

let make_config ~variant ~handler ~stats ~selector =
  {
    cfg_name = variant_to_string variant;
    (* K23's trampoline reuses the kernel-clobbered rcx/r11 registers
       and therefore beats lazypoline's entry sequence (Section 6.2.1);
       calibrated near the paper's 1.2788x / 1.3919x / 1.3948x *)
    pre_cost = 4;
    post_cost = 2;
    null_check = (match variant with Default -> None | Ultra | Ultra_plus -> Some null_check);
    null_check_cost = 17;
    stack_switch = (variant = Ultra_plus);
    sud_selector = selector;
    handler;
    stats;
  }

(** Phase 1 of the constructor: logs -> trampoline -> selective rewrite
    -> hash set -> SUD armed (selector still ALLOW). *)
let init1 cfg ~lazy_im (ctx : ctx) =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  let st =
    {
      valid = Robin_set.create ();
      rewritten = 0;
      stale_log_entries = 0;
      startup_from_ptracer = 0;
    }
  in
  Hashtbl.replace p.pstates state_key (K23_state st);
  install_trampoline ctx cfg;
  (* resolve log entries against the current maps *)
  let entries = Log_store.read w ~app:p.cmd in
  List.iter
    (fun { Log_store.region; offset } ->
      let r =
        List.find_opt (fun r -> r.r_name = region && r.r_sec = `Text) p.regions
      in
      match r with
      | None -> st.stale_log_entries <- st.stale_log_entries + 1
      | Some r ->
        let site = r.r_start + offset in
        (* pre-validated or not, never rewrite bytes that are not a
           syscall/sysenter encoding any more (binary updated since the
           offline phase, corrupt log, ...) *)
        let b0 = try Memory.read_u8_raw p.mem site with Memory.Fault _ -> -1 in
        let b1 = try Memory.read_u8_raw p.mem (site + 1) with Memory.Fault _ -> -1 in
        if b0 = 0x0f && (b1 = 0x05 || b1 = 0x34) then begin
          rewrite_site_atomic ctx ~site;
          Robin_set.add st.valid site;
          st.rewritten <- st.rewritten + 1
        end
        else st.stale_log_entries <- st.stale_log_entries + 1)
    entries;
  (* SUD fallback for everything the offline phase missed; the
     selector byte is still ALLOW (0) so the remaining constructor
     syscalls — including the fake handoff calls — pass through *)
  let sel_addr = arm_sud ctx ~im:(Lazy.force lazy_im) ~selector_sym:"k23_selector" in
  (* ultra+: protect the interposer's internal state (the selector
     page) with a dedicated protection key, per the threat model
     (Section 3): application loads/stores to it fault, while the
     interposer itself toggles PKRU around its own accesses (modelled
     by kernel-view writes; the toggle cost is part of the ultra+
     entry cost) *)
  if cfg.stack_switch then begin
    let pkey = p.next_pkey in
    p.next_pkey <- pkey + 1;
    Memory.set_pkey p.mem ~addr:(Memory.align_down sel_addr) ~len:Memory.page_size ~pkey;
    List.iter
      (fun th -> th.regs.pkru <- th.regs.pkru lor (1 lsl (2 * pkey)))
      p.threads
  end

(** Phase 2: after the first fake syscall, the ptracer has deposited
    its accumulated startup state into our buffer. *)
let init2 ~lazy_im (ctx : ctx) =
  let p = ctx.thread.t_proc in
  let st = get_state p in
  match Mapper.image_sym p (Lazy.force lazy_im) "k23_handoff_buf" with
  | Some buf -> st.startup_from_ptracer <- Memory.read_u64_raw p.mem buf
  | None -> panic "libK23: no handoff buffer"

(** Phase 3: the ptracer has detached; flip the selector to BLOCK. *)
let init3 cfg (ctx : ctx) =
  let p = ctx.thread.t_proc in
  match cfg.sud_selector p with
  | Some sel_addr -> set_selector_all_slots p ~sel_addr selector_block
  | None -> ()

let image ~variant ~handler ~stats () : image =
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let selector p = Mapper.image_sym p (Lazy.force lazy_im) "k23_selector" in
  let cfg = make_config ~variant ~handler ~stats ~selector in
  let items =
    [
      Asm.Label "__k23_init";
      Asm.Vcall_named "k23_init1";
      (* fake syscall #1: request the ptracer's state (Section 5.3) *)
      Asm.I (Insn.Mov_ri (RAX, Sysno.k23_handoff));
      Asm.Mov_sym (RDI, "k23_handoff_buf");
      Asm.I Insn.Syscall;
      Asm.Vcall_named "k23_init2";
      (* fake syscall #2: tell the ptracer to detach *)
      Asm.I (Insn.Mov_ri (RAX, Sysno.k23_detach));
      Asm.I Insn.Syscall;
      Asm.Vcall_named "k23_init3";
      Asm.I Insn.Ret;
    ]
    @ sigsys_handler_items ()
    @ [
        Asm.Section `Data;
        Asm.Label "k23_selector";
        Asm.Zeros 64;
        Asm.Label "k23_handoff_buf";
        Asm.Zeros 64;
      ]
  in
  let im =
    {
      im_name = lib_path;
      im_prog = Asm.assemble items;
      im_host_fns =
        [
          ("k23_init1", fun ctx -> init1 cfg ~lazy_im ctx);
          ("k23_init2", fun ctx -> init2 ~lazy_im ctx);
          ("k23_init3", init3 cfg);
          ("sigsys_pre", sigsys_pre cfg ~im:lazy_im ());
          ("sigsys_post", sigsys_post cfg);
        ];
      im_init = Some "__k23_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  im_ref := Some im;
  im
