(** Offline-phase log files (Figure 3 format): one log per program
    under [/k23/logs], one ["region,offset"] line per unique syscall
    site.  Offsets are region-relative and therefore ASLR-stable
    (Section 5.1).  [seal] makes the directory immutable for the
    installation's lifetime (Section 5.3). *)

val dir : string
val path_for : app:string -> string

type entry = { region : string; offset : int }

val entry_to_line : entry -> string
val entry_of_line : string -> entry option

val read : K23_kernel.Kern.world -> app:string -> entry list
(** Missing log = empty list (K23 then relies on the SUD fallback). *)

val write : K23_kernel.Kern.world -> app:string -> entry list -> unit
val append : K23_kernel.Kern.world -> app:string -> entry list -> unit
(** Merge (multiple offline runs improve coverage). *)

val seal : K23_kernel.Kern.world -> unit
val unseal : K23_kernel.Kern.world -> unit
val sealed : K23_kernel.Kern.world -> bool
