(** K23's offline phase: libLogger (Section 5.1).

    The target runs in a controlled environment with representative
    inputs under an SUD-based interposition library.  On every SIGSYS,
    libLogger resolves the trapping [syscall]/[sysenter] instruction to
    its containing memory region (via /proc/PID/maps) and records the
    unique (region, offset) pair — but only for instructions inside
    expected executable, non-writable regions, so dynamically generated
    code never enters the logs.  Performance is irrelevant here.

    A ptracer-like companion (see {!Ptracer.preload_enforcer}) keeps
    libLogger injected across execve even if the program scrubs its
    environment; it records nothing itself. *)

open K23_isa
open K23_machine
open K23_kernel
open Kern
open K23_interpose.Interpose

let lib_path = "/usr/lib/liblogger.so"

type state = { mutable seen : (string * int) list }

type Kern.pstate += Logger of state

let state_key = "liblogger"

let get_state (p : proc) =
  match Hashtbl.find_opt p.pstates state_key with
  | Some (Logger s) -> s
  | _ ->
    let s = { seen = [] } in
    Hashtbl.replace p.pstates state_key (Logger s);
    s

(** Record the site that raised SIGSYS, if it lives in an expected
    region: executable, non-writable, and owned by the application or
    a library — never the interposer itself, the trampoline, a stack,
    or an anonymous (possibly JIT) mapping. *)
let log_site (ctx : ctx) ~site ~nr:_ =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  match find_region p site with
  | Some r
    when r.r_perm.Memory.x && (not r.r_perm.Memory.w)
         && (match r.r_owner with
            | App | Libc | Ldso | Lib _ -> true
            | Vdso | Interposer | Trampoline | Anon | Stack -> false) ->
    let st = get_state p in
    let entry = (r.r_name, site - r.r_start) in
    if not (List.mem entry st.seen) then begin
      st.seen <- entry :: st.seen;
      Log_store.append w ~app:p.cmd
        [ { Log_store.region = fst entry; offset = snd entry } ]
    end
  | Some _ | None -> ()

let image ~stats () : image =
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let selector p = Mapper.image_sym p (Lazy.force lazy_im) "logger_selector" in
  let cfg =
    {
      cfg_name = "liblogger";
      pre_cost = 150;
      post_cost = 80;
      null_check = None;
      null_check_cost = 0;
      stack_switch = false;
      sud_selector = selector;
      handler = counting_handler stats;
      stats;
    }
  in
  let init (ctx : ctx) =
    let p = ctx.thread.t_proc in
    ignore (get_state p);
    let sel_addr = arm_sud ctx ~im:(Lazy.force lazy_im) ~selector_sym:"logger_selector" in
    set_selector_all_slots p ~sel_addr selector_block
  in
  let items =
    [ Asm.Label "__logger_init"; Asm.Vcall_named "logger_init"; Asm.I Insn.Ret ]
    @ sigsys_handler_items ()
    @ [ Asm.Section `Data; Asm.Label "logger_selector"; Asm.Zeros 64 ]
  in
  let im =
    {
      im_name = lib_path;
      im_prog = Asm.assemble items;
      im_host_fns =
        [
          ("logger_init", init);
          ("sigsys_pre", sigsys_pre cfg ~im:lazy_im ~on_sigsys:log_site ());
          ("sigsys_post", sigsys_post cfg);
        ];
      im_init = Some "__logger_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  im_ref := Some im;
  im
