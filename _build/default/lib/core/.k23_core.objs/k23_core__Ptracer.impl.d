lib/core/ptracer.ml: Array Errno K23_interpose K23_kernel K23_machine Kern List Memory Regs String Syscalls Sysno
