lib/core/k23.ml: Array Errno K23_interpose K23_isa K23_kernel K23_machine Kern Libk23 List Log_store Offline Printf Ptracer Robin_set Sysno World
