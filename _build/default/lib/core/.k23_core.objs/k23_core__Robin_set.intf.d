lib/core/robin_set.mli:
