lib/core/robin_set.ml: Array Int64 List Stdlib
