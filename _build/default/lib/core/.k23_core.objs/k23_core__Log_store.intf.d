lib/core/log_store.mli: K23_kernel
