lib/core/log_store.ml: Errno Filename K23_kernel Kern List Option Printf String Vfs
