(** Robin-Hood open-addressing hash set of non-negative integers.

    K23's NULL-execution check stores the virtual addresses of its
    pre-validated, rewritten [syscall]/[sysenter] sites here
    (Section 5.3): memory is proportional to the offline-log size
    (7-92 entries in the paper's Table 2), not to the virtual address
    space like zpoline's bitmap — the P4b fix.  The algorithm matches
    tsl::robin_set, the library used by the paper's prototype: forward
    probing with probe-distance stealing and backward-shift
    deletion. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh set; capacity is rounded up to a power of two (min 8). *)

val add : t -> int -> unit
(** Insert a key.  Idempotent.  Grows at 75% load.
    @raise Invalid_argument on negative keys. *)

val mem : t -> int -> bool
(** Membership test — the hot path of the NULL-execution check. *)

val remove : t -> int -> bool
(** Delete a key (backward-shift); returns whether it was present. *)

val cardinal : t -> int
val capacity : t -> int

val iter : (int -> unit) -> t -> unit
val of_list : int list -> t

val to_list : t -> int list
(** Sorted, duplicate-free. *)

val memory_bytes : t -> int
(** Approximate resident size in bytes, reported by the P4b memory
    benchmark. *)
