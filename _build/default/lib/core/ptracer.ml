(** K23's ptrace components (Sections 5.2 and 5.3).

    Two tracers are built here:

    + {!preload_enforcer} — the offline phase's companion: it only
      ensures the logging library stays in LD_PRELOAD across execve.
    + {!online_tracer} — the online phase's ptracer: it interposes
      every system call from the program's first instruction (covering
      the startup window no in-process mechanism can see), disables
      the vdso, enforces LD_PRELOAD=libK23 on execve (P1a), services
      K23's fake system calls for the state handoff, and detaches once
      libK23 takes over. *)

open K23_machine
open K23_kernel
open Kern
open K23_interpose.Interpose

(** Rewrite the envp argument of an in-flight execve so that
    LD_PRELOAD includes [lib_path].  The new environment block is
    written into the tracee's address space with
    process_vm_writev-style remote accesses. *)
let rewrite_envp (ctx : ctx) ~args ~lib_path =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  let envp_ptr = args.(2) in
  let env =
    if envp_ptr = 0 then []
    else match Syscalls.read_user_strv p envp_ptr with Ok l -> l | Error _ -> []
  in
  let has_lib =
    List.exists
      (fun kv ->
        String.length kv >= 11 && String.sub kv 0 11 = "LD_PRELOAD="
        &&
        let v = String.sub kv 11 (String.length kv - 11) in
        List.mem lib_path (String.split_on_char ':' v))
      env
  in
  if not has_lib then begin
    let env' = add_preload env lib_path in
    let ptrs = List.map (scratch_write_cstr p) env' in
    let arr = scratch_alloc p (8 * (List.length ptrs + 1)) in
    List.iteri (fun i a -> Memory.write_u64_raw p.mem (arr + (8 * i)) a) ptrs;
    Memory.write_u64_raw p.mem (arr + (8 * List.length ptrs)) 0;
    Regs.set ctx.thread.regs RDX arr;
    charge w ctx.thread (w.cost.ptrace_mem_op * (1 + List.length env'))
  end

(** Offline companion: guarantees libLogger injection, records
    nothing. *)
let preload_enforcer ~lib_path () : tracer =
  {
    tr_name = "preload-enforcer";
    tr_trace_syscalls = true;
    tr_on_entry =
      Some
        (fun ctx ~nr ~site:_ ~args ->
          if nr = Sysno.execve then rewrite_envp ctx ~args ~lib_path;
          `Continue);
    tr_on_exit = None;
    tr_on_exec = None;
    tr_on_exit_proc = None;
  }

(** The online ptracer. *)
let online_tracer w ~(stats : stats) ~(handler : handler) ~lib_path () : tracer =
  let startup_seen = ref 0 in
  {
    tr_name = "k23-ptracer";
    tr_trace_syscalls = true;
    tr_on_entry =
      Some
        (fun ctx ~nr ~site ~args ->
          let p = ctx.thread.t_proc in
          let owner = region_owner p site in
          if nr = Sysno.k23_handoff then
            (* the fake syscall must originate from libK23 itself, not
               from potentially compromised code such as the dynamic
               loader (Section 5.3) *)
            if owner <> Interposer then begin
              stats.aborts <- stats.aborts + 1;
              abort ctx ~why:"k23: fake handoff syscall from untrusted code";
              `Skip (Errno.ret Errno.eperm)
            end
            else begin
              Memory.write_u64_raw p.mem args.(0) !startup_seen;
              charge w ctx.thread w.cost.ptrace_mem_op;
              `Skip 0
            end
          else if nr = Sysno.k23_detach then
            if owner <> Interposer then begin
              stats.aborts <- stats.aborts + 1;
              abort ctx ~why:"k23: fake detach syscall from untrusted code";
              `Skip (Errno.ret Errno.eperm)
            end
            else begin
              p.tracer <- None;
              `Skip 0
            end
          else begin
            if nr = Sysno.execve then begin
              (* keep libK23 injected (P1a) and the vdso disabled for
                 the post-exec image *)
              rewrite_envp ctx ~args ~lib_path;
              p.vdso_enabled <- false
            end;
            match owner with
            | Interposer | Trampoline -> `Continue (* re-issues, not app syscalls *)
            | App | Libc | Ldso | Vdso | Lib _ | Anon | Stack -> (
              incr startup_seen;
              stats.via_ptrace <- stats.via_ptrace + 1;
              match handler ctx ~nr ~args ~site with
              | Forward -> `Continue
              | Emulate v -> `Skip v)
          end);
    tr_on_exit = None;
    tr_on_exec = None;
    tr_on_exit_proc = None;
  }
