(** Robin-Hood open-addressing hash set of non-negative integers.

    K23 stores the virtual addresses of the pre-validated, rewritten
    [syscall]/[sysenter] sites here and performs the NULL-execution
    check against it (Section 5.3).  Unlike zpoline's bitmap, the
    memory footprint is proportional to the number of logged sites
    (7-92 in the paper's experiments; Table 2) rather than the size of
    the virtual address space — which is the whole point of the P4b
    fix.  The paper's prototype uses tsl::robin_set; this is the same
    algorithm (forward probing with probe-distance stealing, backward
    shift deletion). *)

type t = {
  mutable slots : int array;  (** -1 marks an empty slot *)
  mutable size : int;
}

let empty_slot = -1

let create ?(capacity = 16) () =
  let cap = max 8 capacity in
  (* round up to a power of two for cheap masking *)
  let rec pow2 n = if n >= cap then n else pow2 (n * 2) in
  { slots = Array.make (pow2 8) empty_slot; size = 0 }

let capacity t = Array.length t.slots

let cardinal t = t.size

(* SplitMix-style finalizer: addresses are highly regular (page-aligned
   bases plus small offsets), so mixing matters. *)
let hash key =
  let open Int64 in
  let z = mul (of_int (key + 1)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  to_int (logxor z (shift_right_logical z 27)) land Stdlib.max_int

let slot_of t key = hash key land (capacity t - 1)

let probe_distance t ~slot ~key =
  let home = slot_of t key in
  (slot - home + capacity t) land (capacity t - 1)

let mem t key =
  let cap = capacity t in
  let rec go i dist =
    let k = t.slots.(i) in
    if k = empty_slot then false
    else if k = key then true
    else if probe_distance t ~slot:i ~key:k < dist then false
      (* richer element found: key cannot be further along *)
    else go ((i + 1) land (cap - 1)) (dist + 1)
  in
  go (slot_of t key) 0

let rec insert_raw t key =
  let cap = capacity t in
  let rec go i cur cur_dist =
    let k = t.slots.(i) in
    if k = empty_slot then t.slots.(i) <- cur
    else if k = cur then ()
    else
      let k_dist = probe_distance t ~slot:i ~key:k in
      if k_dist < cur_dist then begin
        (* rob the rich: displace the closer-to-home element *)
        t.slots.(i) <- cur;
        go ((i + 1) land (cap - 1)) k (k_dist + 1)
      end
      else go ((i + 1) land (cap - 1)) cur (cur_dist + 1)
  in
  go (slot_of t key) key 0

and grow t =
  let old = t.slots in
  t.slots <- Array.make (Array.length old * 2) empty_slot;
  Array.iter (fun k -> if k <> empty_slot then insert_raw t k) old

let add t key =
  if key < 0 then invalid_arg "Robin_set.add: negative key";
  if not (mem t key) then begin
    if (t.size + 1) * 4 > capacity t * 3 then grow t;
    insert_raw t key;
    t.size <- t.size + 1
  end

(** Backward-shift deletion: close the hole by sliding back every
    subsequent element that is not at its home slot. *)
let remove t key =
  let cap = capacity t in
  let rec find i dist =
    let k = t.slots.(i) in
    if k = empty_slot then None
    else if k = key then Some i
    else if probe_distance t ~slot:i ~key:k < dist then None
    else find ((i + 1) land (cap - 1)) (dist + 1)
  in
  match find (slot_of t key) 0 with
  | None -> false
  | Some i ->
    let rec shift i =
      let next = (i + 1) land (cap - 1) in
      let k = t.slots.(next) in
      if k = empty_slot || probe_distance t ~slot:next ~key:k = 0 then t.slots.(i) <- empty_slot
      else begin
        t.slots.(i) <- k;
        shift next
      end
    in
    shift i;
    t.size <- t.size - 1;
    true

let iter f t = Array.iter (fun k -> if k <> empty_slot then f k) t.slots

let of_list keys =
  let t = create ~capacity:(List.length keys * 2) () in
  List.iter (add t) keys;
  t

let to_list t =
  let acc = ref [] in
  iter (fun k -> acc := k :: !acc) t;
  List.sort compare !acc

(** Approximate resident size in bytes — compared against zpoline's
    bitmap in the P4b benchmark. *)
let memory_bytes t = (capacity t * 8) + 24
