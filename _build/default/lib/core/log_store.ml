(** Offline-phase log files.

    One log per program, stored under [/k23/logs].  Each line records
    one unique syscall site as ["region,offset"] — the format shown in
    the paper's Figure 3:

    {v /usr/lib/x86_64-linux-gnu/libc.so.6,1153562 v}

    Offsets are region-relative, so they survive ASLR (Section 5.1).
    Once the offline phase completes, [seal] marks the directory
    immutable for the lifetime of the installation (Section 5.3). *)

open K23_kernel

let dir = "/k23/logs"

let path_for ~app = Printf.sprintf "%s/%s.log" dir (Filename.basename app)

type entry = { region : string; offset : int }

let entry_to_line e = Printf.sprintf "%s,%d" e.region e.offset

let entry_of_line line =
  match String.rindex_opt line ',' with
  | None -> None
  | Some i ->
    let region = String.sub line 0 i in
    let off = String.sub line (i + 1) (String.length line - i - 1) in
    Option.map (fun offset -> { region; offset }) (int_of_string_opt off)

(** Read the log for [app]; missing log = empty (K23 then relies
    entirely on the SUD fallback). *)
let read w ~app =
  match Vfs.read_file w.Kern.vfs (path_for ~app) with
  | Error _ -> []
  | Ok content ->
    String.split_on_char '\n' content |> List.filter_map entry_of_line

(** Overwrite the log for [app] with [entries] (deduplicated, sorted
    for stable output). *)
let write w ~app entries =
  let uniq = List.sort_uniq compare entries in
  let content = String.concat "\n" (List.map entry_to_line uniq) ^ "\n" in
  match Vfs.write_file w.Kern.vfs (path_for ~app) content with
  | Ok _ -> ()
  | Error e ->
    Kern.panic "log_store: cannot write %s: %s" (path_for ~app)
      (Errno.to_string (Vfs.err_to_errno e))

(** Merge new entries into an existing log (multiple offline runs with
    different inputs improve coverage; Section 5.1). *)
let append w ~app entries = write w ~app (entries @ read w ~app)

(** Mark the log directory immutable — writes under it now fail with
    EPERM, closing the log-tampering attack surface (Section 5.3). *)
let seal w =
  match Vfs.set_immutable w.Kern.vfs dir true with
  | Ok () -> ()
  | Error _ ->
    ignore (Vfs.mkdir_p w.Kern.vfs dir);
    ignore (Vfs.set_immutable w.Kern.vfs dir true)

let unseal w = ignore (Vfs.set_immutable w.Kern.vfs dir false)

let sealed w = Vfs.path_immutable w.Kern.vfs (dir ^ "/x")
