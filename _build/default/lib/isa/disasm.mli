(** Static linear-sweep disassembler — the strategy zpoline-style
    rewriters depend on, complete with its documented failure modes on
    variable-length ISAs: misidentification of embedded data (P3a) and
    overlooking of syscalls swallowed by desynchronisation (P2a).
    Resynchronises byte-by-byte on invalid encodings, like
    objdump-style tools. *)

type item = {
  addr : int;  (** absolute address of the first byte *)
  insn : Insn.t option;  (** [None] when the byte did not decode *)
  len : int;
}

val sweep : Bytes.t -> base:int -> item list

val find_syscall_sites : Bytes.t -> base:int -> int list
(** The site list a zpoline-style rewriter uses — including its false
    positives and false negatives. *)

val raw_pattern_sites : Bytes.t -> base:int -> int list
(** Ground truth for tests: every occurrence of the literal 2-byte
    [0f 05]/[0f 34] pattern, regardless of instruction boundaries. *)

val listing : Bytes.t -> base:int -> string
(** objdump-style text listing. *)
