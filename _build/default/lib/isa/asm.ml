(** Two-pass assembler DSL.

    Programs for the simulated machine are written as lists of {!item}s
    mixing instructions, labels, raw data blobs (the "embedded data in
    code pages" of pitfall P3), and host-function escapes.  The
    assembler resolves local labels to rel32 branches and records
    {e relocations} for external symbols; the dynamic loader patches
    those at load time, exactly like ELF R_X86_64_64 relocations.

    Sections: [`Text] (mapped r-x) and [`Data] (mapped rw-).  Placing
    [Blob]s in [`Text] is how test programs embed data in executable
    pages. *)

type section = [ `Text | `Data ]

type item =
  | I of Insn.t  (** a literal instruction *)
  | Label of string  (** local label; also exported as a symbol *)
  | Blob of bytes  (** raw bytes (data, jump tables, shellcode...) *)
  | Zeros of int  (** reserve n zero bytes *)
  | Strz of string  (** NUL-terminated string *)
  | Quad of int  (** 8-byte little-endian literal *)
  | J of string  (** jmp to label (rel32 form, 5 bytes) *)
  | Jc of Insn.cond * string  (** conditional jump to label (6 bytes) *)
  | Calll of string  (** call to local label (rel32 form, 5 bytes) *)
  | Call_sym of string  (** call external symbol: mov r11, imm64(reloc); call *r11 *)
  | Jmp_sym of string  (** tail-jump to external symbol via r11 *)
  | Mov_sym of Reg.t * string  (** reg := absolute address of symbol (reloc) *)
  | Vcall_named of string  (** host-function escape, resolved per-image *)
  | Section of section  (** switch emission section *)
  | Align of int  (** pad current section with nops/zeros to a multiple *)

type reloc = { reloc_section : section; reloc_offset : int; reloc_symbol : string }
(** An 8-byte absolute slot at [reloc_offset] to be patched with the
    address of [reloc_symbol] at load time. *)

type program = {
  text : Bytes.t;
  data : Bytes.t;
  symbols : (string * (section * int)) list;  (** label -> (section, offset) *)
  relocs : reloc list;
  vcalls : string list;  (** host-function names in local-index order *)
}

exception Asm_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

(* Fixed sizes of the pseudo-items (two-pass with constant sizes keeps
   the assembler simple and the layout predictable). *)
let item_size = function
  | I i -> Encode.length i
  | Label _ | Section _ -> 0
  | Blob b -> Bytes.length b
  | Zeros n -> n
  | Strz s -> String.length s + 1
  | Quad _ -> 8
  | J _ -> 5
  | Jc _ -> 6
  | Calll _ -> 5
  | Call_sym _ -> 10 + 3 (* mov r11, imm64 ; call *r11 (0x41 prefix) *)
  | Jmp_sym _ -> 10 + 3
  | Mov_sym _ -> 10
  | Vcall_named _ -> 6
  | Align _ -> 0 (* variable; handled specially in layout *)

let assemble (items : item list) : program =
  (* Pass 1: compute per-section offsets for every item and the symbol
     table. *)
  let text_len = ref 0 and data_len = ref 0 in
  let symbols = ref [] in
  let sec = ref `Text in
  let off_of = function `Text -> text_len | `Data -> data_len in
  let layout =
    List.map
      (fun item ->
        (match item with Section s -> sec := s | _ -> ());
        let here = !(off_of !sec) in
        (match item with
        | Align n ->
          let pad = (n - (here mod n)) mod n in
          (off_of !sec) := here + pad
        | Label name -> symbols := (name, (!sec, here)) :: !symbols
        | other -> (off_of !sec) := here + item_size other);
        (item, !sec, here))
      items
  in
  let find_label name =
    match List.assoc_opt name !symbols with
    | Some (s, o) -> (s, o)
    | None -> err "undefined label %S" name
  in
  (* Pass 2: emit. *)
  let text = Bytes.make !text_len '\000'
  and data = Bytes.make !data_len '\000' in
  let relocs = ref [] in
  let vcalls = ref [] in
  let vcall_index name =
    match List.find_index (String.equal name) !vcalls with
    | Some i -> i
    | None ->
      vcalls := !vcalls @ [ name ];
      List.length !vcalls - 1
  in
  let put sec off b =
    let target = match sec with `Text -> text | `Data -> data in
    Bytes.blit b 0 target off (Bytes.length b)
  in
  let label_rel name sec here len =
    (* rel32 displacement from the end of the branch instruction *)
    let tsec, toff = find_label name in
    if tsec <> sec then err "cross-section branch to %S" name;
    toff - (here + len)
  in
  List.iter
    (fun (item, sec, here) ->
      match item with
      | Section _ | Label _ -> ()
      | Align n ->
        (* pad bytes were reserved during layout as zeros in data /
           nops are not needed in text because zeros decode as invalid;
           we fill text padding with nops for cleanliness *)
        let pad = (n - (here mod n)) mod n in
        if sec = `Text then
          for i = 0 to pad - 1 do
            Bytes.set text (here + i) '\x90'
          done
      | I insn -> put sec here (Encode.to_bytes insn)
      | Blob b -> put sec here b
      | Zeros _ -> ()
      | Strz s ->
        put sec here (Bytes.of_string s)
        (* trailing NUL already zero *)
      | Quad v ->
        let b = Bytes.create 8 in
        for i = 0 to 7 do
          Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
        done;
        put sec here b
      | J name -> put sec here (Encode.to_bytes (Jmp_rel (label_rel name sec here 5)))
      | Jc (c, name) -> put sec here (Encode.to_bytes (Jcc (c, label_rel name sec here 6)))
      | Calll name -> put sec here (Encode.to_bytes (Call_rel (label_rel name sec here 5)))
      | Call_sym name ->
        put sec here (Encode.to_bytes (Mov_ri (R11, 0)));
        put sec (here + 10) (Encode.to_bytes (Call_reg R11));
        relocs := { reloc_section = sec; reloc_offset = here + 2; reloc_symbol = name } :: !relocs
      | Jmp_sym name ->
        put sec here (Encode.to_bytes (Mov_ri (R11, 0)));
        put sec (here + 10) (Encode.to_bytes (Jmp_reg R11));
        relocs := { reloc_section = sec; reloc_offset = here + 2; reloc_symbol = name } :: !relocs
      | Mov_sym (r, name) ->
        put sec here (Encode.to_bytes (Mov_ri (r, 0)));
        (* mov r, imm64 is always 2 bytes of prefix+opcode, then imm *)
        relocs := { reloc_section = sec; reloc_offset = here + 2; reloc_symbol = name } :: !relocs
      | Vcall_named name -> put sec here (Encode.to_bytes (Vcall (vcall_index name))))
    layout;
  { text; data; symbols = List.rev !symbols; relocs = List.rev !relocs; vcalls = !vcalls }
