(** General-purpose registers of the simulated x86-64-like machine.

    Indices follow the x86-64 encoding order so that ModRM/REX encodings
    in {!Encode} match real hardware conventions: RAX=0 ... RDI=7,
    R8=8 ... R15=15. *)

type t =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let index = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_index = function
  | 0 -> RAX
  | 1 -> RCX
  | 2 -> RDX
  | 3 -> RBX
  | 4 -> RSP
  | 5 -> RBP
  | 6 -> RSI
  | 7 -> RDI
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | 11 -> R11
  | 12 -> R12
  | 13 -> R13
  | 14 -> R14
  | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.of_index: %d" n)

let to_string = function
  | RAX -> "rax"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RBX -> "rbx"
  | RSP -> "rsp"
  | RBP -> "rbp"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let equal a b = index a = index b
