(** Instruction encoder (byte-exact x86-64 encodings for the
    interposition-relevant instructions; see {!Insn}). *)

exception Encode_error of string

val emit : Buffer.t -> Insn.t -> unit
val to_bytes : Insn.t -> Bytes.t
val length : Insn.t -> int
(** Encoded length in bytes (2 for syscall/sysenter/callq *rax). *)

val assemble : Insn.t list -> Bytes.t
(** Concatenated encodings, no label resolution (that is {!Asm}). *)
