(** Static linear-sweep disassembler.

    This is the disassembly strategy zpoline-style rewriters rely on
    (the zpoline prototype uses a linear disassembler from GNU binutils).
    Linear sweep decodes from the start of a code region and, like real
    tools, has the two documented failure modes on variable-length ISAs
    (Andriesse et al., USENIX Sec'16; Pang et al., S&P'21):

    - {b misidentification} — embedded data, or the tail bytes of a
      longer instruction reached after desynchronisation, may decode as
      a spurious [syscall]/[sysenter] (pitfall P3a);
    - {b overlook} — a genuine [syscall] can be swallowed inside a
      misdecoded longer instruction and never reported (pitfall P2a).

    On invalid bytes the sweep resynchronises by skipping one byte,
    which is what objdump-style tools do. *)

type item = {
  addr : int;  (** absolute address of the first byte *)
  insn : Insn.t option;  (** [None] when the byte did not decode *)
  len : int;  (** bytes consumed (1 for undecodable bytes) *)
}

(** [sweep bytes ~base] decodes the whole buffer, resynchronising on
    invalid encodings. [base] is the virtual address of [bytes.(0)]. *)
let sweep (bytes : Bytes.t) ~base =
  let n = Bytes.length bytes in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match Decode.decode_bytes bytes pos with
      | Ok (insn, len) when pos + len <= n ->
        go (pos + len) ({ addr = base + pos; insn = Some insn; len } :: acc)
      | Ok _ | Error `Invalid ->
        go (pos + 1) ({ addr = base + pos; insn = None; len = 1 } :: acc)
  in
  go 0 []

(** Addresses at which the sweep believes a [syscall] or [sysenter]
    instruction starts.  This is the site list a zpoline-style rewriter
    uses — complete with its false positives and false negatives. *)
let find_syscall_sites bytes ~base =
  sweep bytes ~base
  |> List.filter_map (fun item ->
         match item.insn with
         | Some Insn.Syscall | Some Insn.Sysenter -> Some item.addr
         | Some _ | None -> None)

(** Ground truth used by tests: all offsets where the literal 2-byte
    [0f 05]/[0f 34] pattern occurs, regardless of instruction
    boundaries. *)
let raw_pattern_sites bytes ~base =
  let n = Bytes.length bytes in
  let out = ref [] in
  for i = 0 to n - 2 do
    let b0 = Char.code (Bytes.get bytes i) and b1 = Char.code (Bytes.get bytes (i + 1)) in
    if b0 = 0x0f && (b1 = 0x05 || b1 = 0x34) then out := (base + i) :: !out
  done;
  List.rev !out

let listing bytes ~base =
  sweep bytes ~base
  |> List.map (fun { addr; insn; len = _ } ->
         match insn with
         | Some i -> Printf.sprintf "%08x: %s" addr (Insn.to_string i)
         | None -> Printf.sprintf "%08x: (bad)" addr)
  |> String.concat "\n"
