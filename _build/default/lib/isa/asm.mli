(** Two-pass assembler DSL: instructions, labels, raw data blobs (the
    "embedded data in code" of pitfall P3), external-symbol
    relocations (patched by the dynamic loader, like R_X86_64_64), and
    host-function escapes.  Sections: [`Text] (mapped r-x) and [`Data]
    (mapped rw-). *)

type section = [ `Text | `Data ]

type item =
  | I of Insn.t
  | Label of string  (** local label, also exported as a symbol *)
  | Blob of bytes
  | Zeros of int
  | Strz of string  (** NUL-terminated string *)
  | Quad of int  (** 8-byte little-endian literal *)
  | J of string  (** jmp to label (rel32) *)
  | Jc of Insn.cond * string
  | Calll of string  (** call to local label (rel32) *)
  | Call_sym of string  (** external call: mov r11, imm64(reloc); call *r11 *)
  | Jmp_sym of string
  | Mov_sym of Reg.t * string  (** reg := absolute address of symbol (reloc) *)
  | Vcall_named of string  (** host-function escape, indexed per image *)
  | Section of section
  | Align of int

type reloc = { reloc_section : section; reloc_offset : int; reloc_symbol : string }
(** An 8-byte absolute slot to patch with the symbol's address at load
    time. *)

type program = {
  text : Bytes.t;
  data : Bytes.t;
  symbols : (string * (section * int)) list;
  relocs : reloc list;
  vcalls : string list;  (** host-function names in local-index order *)
}

exception Asm_error of string

val item_size : item -> int
val assemble : item list -> program
