(** Instructions of the simulated machine.

    The instruction set is a deliberately small x86-64 subset, but the
    *encodings* of the instructions that matter to system call
    interposition are kept byte-identical to real x86-64:

    - [Syscall] is [0x0f 0x05] (2 bytes),
    - [Sysenter] is [0x0f 0x34] (2 bytes),
    - [Call_reg RAX] ("callq *%rax") is [0xff 0xd0] (2 bytes),

    and several longer instructions carry immediates or displacements in
    which those byte patterns can appear ([Mov_ri32], [Jmp_rel], [Load],
    ...).  This is exactly the property that makes static linear-sweep
    disassembly unsound on x86-64 (pitfalls P2a/P3a of the paper) and
    that makes 2-byte in-place rewriting possible (zpoline, lazypoline,
    K23).

    One non-x86 extension exists: [Vcall n] ([0x0f 0x3f] + imm32, an
    unallocated x86 opcode) escapes to a host (OCaml) function attached
    to the process image.  Host functions perform application *logic*
    (parsing, formatting, checksums) on simulated registers and memory;
    they can never issue a system call — entering the kernel always
    requires executing a real [Syscall]/[Sysenter] instruction, so
    interposition exhaustiveness is measured honestly. *)

type cond =
  | Z   (** equal / zero *)
  | NZ  (** not equal / not zero *)
  | LT  (** signed less-than *)
  | GE  (** signed greater-or-equal *)
  | LE  (** signed less-or-equal *)
  | GT  (** signed greater-than *)

let cond_to_string = function
  | Z -> "jz"
  | NZ -> "jnz"
  | LT -> "jl"
  | GE -> "jge"
  | LE -> "jle"
  | GT -> "jg"

type t =
  | Nop                                (* 90 *)
  | Ret                                (* c3 *)
  | Int3                               (* cc *)
  | Hlt                                (* f4 *)
  | Syscall                            (* 0f 05 *)
  | Sysenter                           (* 0f 34 *)
  | Ud2                                (* 0f 0b *)
  | Cpuid                              (* 0f a2 : serialising *)
  | Mfence                             (* 0f ae f0 : serialising *)
  | Wrpkru                             (* 0f 01 ef : PKRU := eax *)
  | Rdpkru                             (* 0f 01 ee : eax := PKRU *)
  | Vcall of int                       (* 0f 3f imm32 : host-function escape *)
  | Push of Reg.t                      (* [41] 50+r *)
  | Pop of Reg.t                       (* [41] 58+r *)
  | Mov_ri of Reg.t * int              (* 48/49 b8+r imm64 *)
  | Mov_ri32 of Reg.t * int            (* b8+r imm32 ; r < 8 only *)
  | Mov_rr of Reg.t * Reg.t            (* REX 89 /r (mod=11) dst <- src *)
  | Add_rr of Reg.t * Reg.t            (* REX 01 /r *)
  | Sub_rr of Reg.t * Reg.t            (* REX 29 /r *)
  | Xor_rr of Reg.t * Reg.t            (* REX 31 /r *)
  | Test_rr of Reg.t * Reg.t           (* REX 85 /r *)
  | Cmp_rr of Reg.t * Reg.t            (* REX 39 /r *)
  | Add_ri of Reg.t * int              (* REX 83 /0 imm8 *)
  | Sub_ri of Reg.t * int              (* REX 83 /5 imm8 *)
  | Cmp_ri of Reg.t * int              (* REX 83 /7 imm8 *)
  | Load of Reg.t * Reg.t * int        (* REX 8b /r disp32 : dst <- [base+disp] *)
  | Store of Reg.t * int * Reg.t       (* REX 89 /r disp32 (mod=10) : [base+disp] <- src *)
  | Load8 of Reg.t * Reg.t * int       (* REX 8a /r disp32 : dst <- zx byte [base+disp] *)
  | Store8 of Reg.t * int * Reg.t      (* REX 88 /r disp32 : byte [base+disp] <- src *)
  | Lea of Reg.t * Reg.t * int         (* REX 8d /r disp32 *)
  | Jmp_rel of int                     (* e9 rel32 (relative to next insn) *)
  | Call_rel of int                    (* e8 rel32 *)
  | Jcc of cond * int                  (* 0f 8x rel32 *)
  | Jmp_reg of Reg.t                   (* [41] ff e0+r *)
  | Call_reg of Reg.t                  (* [41] ff d0+r *)

let to_string = function
  | Nop -> "nop"
  | Ret -> "ret"
  | Int3 -> "int3"
  | Hlt -> "hlt"
  | Syscall -> "syscall"
  | Sysenter -> "sysenter"
  | Ud2 -> "ud2"
  | Cpuid -> "cpuid"
  | Mfence -> "mfence"
  | Wrpkru -> "wrpkru"
  | Rdpkru -> "rdpkru"
  | Vcall n -> Printf.sprintf "vcall %d" n
  | Push r -> Printf.sprintf "push %s" (Reg.to_string r)
  | Pop r -> Printf.sprintf "pop %s" (Reg.to_string r)
  | Mov_ri (r, v) -> Printf.sprintf "mov %s, 0x%x" (Reg.to_string r) v
  | Mov_ri32 (r, v) -> Printf.sprintf "mov %sd, 0x%x" (Reg.to_string r) v
  | Mov_rr (d, s) -> Printf.sprintf "mov %s, %s" (Reg.to_string d) (Reg.to_string s)
  | Add_rr (d, s) -> Printf.sprintf "add %s, %s" (Reg.to_string d) (Reg.to_string s)
  | Sub_rr (d, s) -> Printf.sprintf "sub %s, %s" (Reg.to_string d) (Reg.to_string s)
  | Xor_rr (d, s) -> Printf.sprintf "xor %s, %s" (Reg.to_string d) (Reg.to_string s)
  | Test_rr (a, b) -> Printf.sprintf "test %s, %s" (Reg.to_string a) (Reg.to_string b)
  | Cmp_rr (a, b) -> Printf.sprintf "cmp %s, %s" (Reg.to_string a) (Reg.to_string b)
  | Add_ri (r, v) -> Printf.sprintf "add %s, %d" (Reg.to_string r) v
  | Sub_ri (r, v) -> Printf.sprintf "sub %s, %d" (Reg.to_string r) v
  | Cmp_ri (r, v) -> Printf.sprintf "cmp %s, %d" (Reg.to_string r) v
  | Load (d, b, o) -> Printf.sprintf "mov %s, [%s%+d]" (Reg.to_string d) (Reg.to_string b) o
  | Store (b, o, s) -> Printf.sprintf "mov [%s%+d], %s" (Reg.to_string b) o (Reg.to_string s)
  | Load8 (d, b, o) -> Printf.sprintf "movzx %s, byte [%s%+d]" (Reg.to_string d) (Reg.to_string b) o
  | Store8 (b, o, s) -> Printf.sprintf "mov byte [%s%+d], %sb" (Reg.to_string b) o (Reg.to_string s)
  | Lea (d, b, o) -> Printf.sprintf "lea %s, [%s%+d]" (Reg.to_string d) (Reg.to_string b) o
  | Jmp_rel d -> Printf.sprintf "jmp %+d" d
  | Call_rel d -> Printf.sprintf "call %+d" d
  | Jcc (c, d) -> Printf.sprintf "%s %+d" (cond_to_string c) d
  | Jmp_reg r -> Printf.sprintf "jmp *%s" (Reg.to_string r)
  | Call_reg r -> Printf.sprintf "call *%s" (Reg.to_string r)

(** Byte values that identify the first byte of a system call
    instruction; shared by rewriters and the disassembler. *)
let syscall_opcode = (0x0f, 0x05)

let sysenter_opcode = (0x0f, 0x34)
let call_rax_opcode = (0xff, 0xd0)
