lib/isa/disasm.ml: Bytes Char Decode Insn List Printf String
