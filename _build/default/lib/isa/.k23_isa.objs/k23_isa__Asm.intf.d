lib/isa/asm.mli: Bytes Insn Reg
