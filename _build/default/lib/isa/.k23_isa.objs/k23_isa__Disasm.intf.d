lib/isa/disasm.mli: Bytes Insn
