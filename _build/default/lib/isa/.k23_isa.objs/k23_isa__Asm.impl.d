lib/isa/asm.ml: Bytes Char Encode Insn List Printf Reg String
