lib/isa/decode.mli: Bytes Insn
