lib/isa/decode.ml: Bytes Char Insn Int64 Reg
