lib/isa/encode.mli: Buffer Bytes Insn
