lib/isa/encode.ml: Buffer Bytes Char Insn Int64 List Printf Reg
