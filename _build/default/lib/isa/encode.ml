(** Instruction encoder.

    Encodings mirror real x86-64 where the instruction exists there
    (REX.W prefixes, ModRM with mod=11 for register-register forms and
    mod=10 + disp32 for memory forms, 0x50+r pushes, ...).  Two
    simplifications are documented here once and for all:

    - the RSP-in-rm SIB escape is not modelled: an rm field of 4 simply
      means RSP as the base register;
    - only the REX prefixes actually produced by this encoder
      (0x48/0x49/0x4c/0x4d and the bare 0x41) are recognised by the
      decoder.

    Neither simplification affects the interposition-relevant byte
    patterns ([0f 05], [0f 34], [ff d0]). *)

exception Encode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

let emit_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let emit_u32 buf v =
  (* little-endian; accepts both signed rel32 in [-2^31, 2^31) and
     unsigned imm32 in [0, 2^32). *)
  if v < -0x8000_0000 || v > 0xffff_ffff then err "imm32 out of range: %d" v;
  let v = v land 0xffff_ffff in
  emit_u8 buf v;
  emit_u8 buf (v lsr 8);
  emit_u8 buf (v lsr 16);
  emit_u8 buf (v lsr 24)

let emit_u64 buf v =
  let v64 = Int64.of_int v in
  for i = 0 to 7 do
    emit_u8 buf (Int64.to_int (Int64.shift_right_logical v64 (8 * i)) land 0xff)
  done

(* REX.W prefix with R (extends the ModRM reg field) and B (extends the
   ModRM rm field) bits. *)
let rex ~reg ~rm =
  0x48 lor (if Reg.index reg >= 8 then 0x04 else 0) lor (if Reg.index rm >= 8 then 0x01 else 0)

let modrm ~md ~reg ~rm = (md lsl 6) lor ((Reg.index reg land 7) lsl 3) lor (Reg.index rm land 7)

let modrm_ext ~md ~ext ~rm = (md lsl 6) lor ((ext land 7) lsl 3) lor (Reg.index rm land 7)

let check_imm8 v = if v < -128 || v > 127 then err "imm8 out of range: %d" v

(* Register-register ALU form: REX op modrm(11, reg=src, rm=dst). *)
let emit_rr buf op ~dst ~src =
  emit_u8 buf (rex ~reg:src ~rm:dst);
  emit_u8 buf op;
  emit_u8 buf (modrm ~md:3 ~reg:src ~rm:dst)

(* Memory form: REX op modrm(10, reg, rm=base) disp32. *)
let emit_mem buf op ~reg ~base ~disp =
  emit_u8 buf (rex ~reg ~rm:base);
  emit_u8 buf op;
  emit_u8 buf (modrm ~md:2 ~reg ~rm:base);
  emit_u32 buf disp

let emit buf (insn : Insn.t) =
  match insn with
  | Nop -> emit_u8 buf 0x90
  | Ret -> emit_u8 buf 0xc3
  | Int3 -> emit_u8 buf 0xcc
  | Hlt -> emit_u8 buf 0xf4
  | Syscall ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x05
  | Sysenter ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x34
  | Ud2 ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x0b
  | Cpuid ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0xa2
  | Mfence ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0xae;
    emit_u8 buf 0xf0
  | Wrpkru ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x01;
    emit_u8 buf 0xef
  | Rdpkru ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x01;
    emit_u8 buf 0xee
  | Vcall n ->
    emit_u8 buf 0x0f;
    emit_u8 buf 0x3f;
    emit_u32 buf n
  | Push r ->
    let i = Reg.index r in
    if i >= 8 then emit_u8 buf 0x41;
    emit_u8 buf (0x50 + (i land 7))
  | Pop r ->
    let i = Reg.index r in
    if i >= 8 then emit_u8 buf 0x41;
    emit_u8 buf (0x58 + (i land 7))
  | Mov_ri (r, v) ->
    let i = Reg.index r in
    emit_u8 buf (if i >= 8 then 0x49 else 0x48);
    emit_u8 buf (0xb8 + (i land 7));
    emit_u64 buf v
  | Mov_ri32 (r, v) ->
    let i = Reg.index r in
    if i >= 8 then err "Mov_ri32 supports RAX..RDI only";
    if v < 0 || v > 0xffff_ffff then err "Mov_ri32 imm out of range";
    emit_u8 buf (0xb8 + i);
    emit_u32 buf v
  | Mov_rr (dst, src) -> emit_rr buf 0x89 ~dst ~src
  | Add_rr (dst, src) -> emit_rr buf 0x01 ~dst ~src
  | Sub_rr (dst, src) -> emit_rr buf 0x29 ~dst ~src
  | Xor_rr (dst, src) -> emit_rr buf 0x31 ~dst ~src
  | Test_rr (a, b) -> emit_rr buf 0x85 ~dst:a ~src:b
  | Cmp_rr (a, b) -> emit_rr buf 0x39 ~dst:a ~src:b
  | Add_ri (r, v) ->
    check_imm8 v;
    emit_u8 buf (rex ~reg:RAX ~rm:r);
    emit_u8 buf 0x83;
    emit_u8 buf (modrm_ext ~md:3 ~ext:0 ~rm:r);
    emit_u8 buf (v land 0xff)
  | Sub_ri (r, v) ->
    check_imm8 v;
    emit_u8 buf (rex ~reg:RAX ~rm:r);
    emit_u8 buf 0x83;
    emit_u8 buf (modrm_ext ~md:3 ~ext:5 ~rm:r);
    emit_u8 buf (v land 0xff)
  | Cmp_ri (r, v) ->
    check_imm8 v;
    emit_u8 buf (rex ~reg:RAX ~rm:r);
    emit_u8 buf 0x83;
    emit_u8 buf (modrm_ext ~md:3 ~ext:7 ~rm:r);
    emit_u8 buf (v land 0xff)
  | Load (dst, base, disp) -> emit_mem buf 0x8b ~reg:dst ~base ~disp
  | Store (base, disp, src) -> emit_mem buf 0x89 ~reg:src ~base ~disp
  | Load8 (dst, base, disp) -> emit_mem buf 0x8a ~reg:dst ~base ~disp
  | Store8 (base, disp, src) -> emit_mem buf 0x88 ~reg:src ~base ~disp
  | Lea (dst, base, disp) -> emit_mem buf 0x8d ~reg:dst ~base ~disp
  | Jmp_rel d ->
    emit_u8 buf 0xe9;
    emit_u32 buf d
  | Call_rel d ->
    emit_u8 buf 0xe8;
    emit_u32 buf d
  | Jcc (c, d) ->
    let cc =
      match c with Insn.Z -> 4 | NZ -> 5 | LT -> 0xc | GE -> 0xd | LE -> 0xe | GT -> 0xf
    in
    emit_u8 buf 0x0f;
    emit_u8 buf (0x80 + cc);
    emit_u32 buf d
  | Jmp_reg r ->
    let i = Reg.index r in
    if i >= 8 then emit_u8 buf 0x41;
    emit_u8 buf 0xff;
    emit_u8 buf (0xe0 + (i land 7))
  | Call_reg r ->
    let i = Reg.index r in
    if i >= 8 then emit_u8 buf 0x41;
    emit_u8 buf 0xff;
    emit_u8 buf (0xd0 + (i land 7))

(** [to_bytes insn] is the encoding of a single instruction. *)
let to_bytes insn =
  let buf = Buffer.create 10 in
  emit buf insn;
  Buffer.to_bytes buf

(** [length insn] is the encoded length in bytes. *)
let length insn = Bytes.length (to_bytes insn)

(** [assemble insns] concatenates encodings; no label resolution (that
    lives in the userland assembler DSL, {!K23_userland.Asm}). *)
let assemble insns =
  let buf = Buffer.create 256 in
  List.iter (emit buf) insns;
  Buffer.to_bytes buf
