(** Hex rendering of byte ranges, used by debugging output and by the
    disassembler's listing mode. *)

let byte_to_hex b = Printf.sprintf "%02x" (Char.code b)

let of_bytes ?(per_line = 16) bytes =
  let buf = Buffer.create (Bytes.length bytes * 4) in
  Bytes.iteri
    (fun i b ->
      if i > 0 then
        Buffer.add_char buf (if i mod per_line = 0 then '\n' else ' ');
      Buffer.add_string buf (byte_to_hex b))
    bytes;
  Buffer.contents buf

let of_list bl = String.concat " " (List.map (Printf.sprintf "%02x") bl)
