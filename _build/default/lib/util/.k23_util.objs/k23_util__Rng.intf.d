lib/util/rng.mli:
