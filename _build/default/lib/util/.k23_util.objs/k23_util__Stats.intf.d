lib/util/stats.mli:
