(** A fixed-length (AArch64-flavoured) ISA study.

    The paper's Discussion (Section 7) argues that porting K23-style
    rewriting to fixed-instruction-length architectures such as ARM is
    {e less challenging} than on x86-64.  This module makes that claim
    executable: a 4-byte-instruction ISA with AArch64 encodings for the
    instructions that matter, an exact disassembler, and an atomic
    rewriter — together with the properties that distinguish it from
    the x86-64 case:

    - decoding positions are 4-byte aligned, so a syscall pattern
      embedded {e inside} another instruction can never be executed or
      misdecoded at an unaligned boundary (no P2a-style overlook, no
      P3b partial-instruction gadgets);
    - [svc #0] and a [bl] redirection have the {e same} size, so
      rewriting is a single aligned 32-bit store — architecturally
      atomic, eliminating the torn-write half of P5;
    - embedded data words can still coincide with the [svc] encoding,
      so P3a-style false positives are reduced but not gone — which is
      why an offline validation phase remains useful even on ARM.

    Encodings follow the ARMv8-A manual for the instructions used. *)

type insn =
  | Svc of int  (** supervisor call: 1101_0100_000 imm16 00001 *)
  | Bl of int  (** branch-and-link, imm26 words: 100101 imm26 *)
  | B of int  (** branch: 000101 imm26 *)
  | Ret  (** 0xd65f03c0 *)
  | Nop  (** 0xd503201f *)
  | Movz of int * int  (** movz xD, #imm16: 1101_0010_100 imm16 rd *)
  | Add_imm of int * int * int  (** add xD, xN, #imm12 *)
  | Ldr_lit of int * int  (** ldr xD, [pc + imm19*4] *)

let mask19 = (1 lsl 19) - 1
let mask26 = (1 lsl 26) - 1

let encode = function
  | Svc imm -> 0xd4000001 lor ((imm land 0xffff) lsl 5)
  | Bl off -> 0x94000000 lor (off land mask26)
  | B off -> 0x14000000 lor (off land mask26)
  | Ret -> 0xd65f03c0
  | Nop -> 0xd503201f
  | Movz (rd, imm) -> 0xd2800000 lor ((imm land 0xffff) lsl 5) lor (rd land 31)
  | Add_imm (rd, rn, imm) -> 0x91000000 lor ((imm land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Ldr_lit (rd, off) -> 0x58000000 lor ((off land mask19) lsl 5) lor (rd land 31)

let sign_extend width v = if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let decode word : insn option =
  if word land 0xffe0001f = 0xd4000001 then Some (Svc ((word lsr 5) land 0xffff))
  else if word land 0xfc000000 = 0x94000000 then Some (Bl (sign_extend 26 (word land mask26)))
  else if word land 0xfc000000 = 0x14000000 then Some (B (sign_extend 26 (word land mask26)))
  else if word = 0xd65f03c0 then Some Ret
  else if word = 0xd503201f then Some Nop
  else if word land 0xffe00000 = 0xd2800000 then
    Some (Movz (word land 31, (word lsr 5) land 0xffff))
  else if word land 0xff000000 = 0x91000000 then
    Some (Add_imm (word land 31, (word lsr 5) land 31, (word lsr 10) land 0xfff))
  else if word land 0xff000000 = 0x58000000 then
    Some (Ldr_lit (word land 31, sign_extend 19 ((word lsr 5) land mask19)))
  else None

(* little-endian 32-bit words, as AArch64 stores instructions *)
let word_of_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let bytes_of_word w =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (w land 0xff));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((w lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((w lsr 24) land 0xff));
  b

let assemble insns =
  let b = Buffer.create (4 * List.length insns) in
  List.iter (fun i -> Buffer.add_bytes b (bytes_of_word (encode i))) insns;
  Buffer.to_bytes b

(** Exact disassembly: on a fixed-length ISA the sweep {e is} the
    instruction stream — there is no resynchronisation problem. *)
let sweep (code : Bytes.t) ~base =
  let n = Bytes.length code / 4 in
  List.init n (fun i -> (base + (4 * i), decode (word_of_bytes code (4 * i))))

(** Syscall sites found by the sweep. *)
let find_svc_sites code ~base =
  sweep code ~base
  |> List.filter_map (function addr, Some (Svc _) -> Some addr | _ -> None)

(** Ground truth for tests: word-aligned positions whose 32-bit value
    encodes [svc] — on this ISA identical to what the sweep reports
    for code words; only embedded {e data} words can add to it. *)
let raw_svc_pattern_sites code ~base =
  let n = Bytes.length code / 4 in
  List.init n (fun i -> (base + (4 * i), word_of_bytes code (4 * i)))
  |> List.filter_map (fun (addr, w) ->
         if w land 0xffe0001f = 0xd4000001 then Some addr else None)

(** Rewrite an [svc] site to [bl target]: one aligned 32-bit store —
    architecturally atomic on AArch64, so the torn-write component of
    pitfall P5 cannot exist. *)
let rewrite_svc_to_bl code ~site_off ~rel_words =
  Bytes.blit (bytes_of_word (encode (Bl rel_words))) 0 code site_off 4
