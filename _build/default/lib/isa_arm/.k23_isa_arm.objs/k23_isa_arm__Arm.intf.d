lib/isa_arm/arm.mli: Bytes
