lib/isa_arm/arm.ml: Buffer Bytes Char List
