(** Fixed-length (AArch64-flavoured) ISA study, quantifying the
    Discussion-section claim that rewriting is fundamentally easier on
    fixed-instruction-length architectures: aligned 4-byte decoding
    cannot desynchronise (no P2a overlook, no P3b partial-instruction
    gadgets) and [svc]→[bl] rewriting is one atomic aligned store (no
    torn-write P5).  Data words aliasing [svc] keep a residual P3a
    risk, so offline validation remains useful. *)

type insn =
  | Svc of int
  | Bl of int  (** branch-and-link, offset in words *)
  | B of int
  | Ret
  | Nop
  | Movz of int * int
  | Add_imm of int * int * int
  | Ldr_lit of int * int

val encode : insn -> int
(** 32-bit instruction word (ARMv8-A encodings). *)

val decode : int -> insn option

val sign_extend : int -> int -> int

val word_of_bytes : Bytes.t -> int -> int
val bytes_of_word : int -> Bytes.t

val assemble : insn list -> Bytes.t

val sweep : Bytes.t -> base:int -> (int * insn option) list
(** Exact disassembly: on a fixed-length ISA there is no
    resynchronisation problem. *)

val find_svc_sites : Bytes.t -> base:int -> int list

val raw_svc_pattern_sites : Bytes.t -> base:int -> int list
(** Word-aligned positions whose value encodes [svc] (ground truth for
    aliasing tests). *)

val rewrite_svc_to_bl : Bytes.t -> site_off:int -> rel_words:int -> unit
(** One aligned 32-bit store: architecturally atomic. *)
