lib/interpose/interpose.ml: Array Asm Bytes Hashtbl Insn K23_isa K23_kernel K23_machine Kern Lazy List Mapper Memory Option Printf Regs String Sysno
