(** Extension experiments beyond the paper's tables.

    - {!arm_study}: quantifies the Discussion-section claim
      (Section 7) that fixed-length ISAs make disassembly-based
      rewriting fundamentally easier: random programs with embedded
      data are swept on both ISAs, and misidentification /
      overlook rates are reported.
    - {!seccomp_micro}: the microbenchmark overhead of seccomp-based
      interposition (SECCOMP_RET_TRAP), the third Linux interface the
      paper discusses — landing, as predicted, in SUD's cost class. *)

open K23_isa
module Arm = K23_isa_arm.Arm
module Rng = K23_util.Rng

(* random x86 instruction pool (all data-free encodings) *)
let x86_pool : Insn.t array =
  [|
    Nop;
    Ret;
    Syscall;
    Mov_rr (RAX, RBX);
    Mov_rr (RDI, RSI);
    Add_ri (RSP, 8);
    Sub_ri (RSP, 8);
    Push RBP;
    Pop RBP;
    Mov_ri32 (RDX, 0x1234);
    Test_rr (RAX, RAX);
    Lea (RSI, RSP, 64);
  |]

let arm_pool : Arm.insn array =
  [|
    Arm.Nop;
    Arm.Ret;
    Arm.Svc 0;
    Arm.Movz (1, 77);
    Arm.Add_imm (2, 3, 9);
    Arm.Bl 12;
    Arm.B 3;
    Arm.Ldr_lit (4, 2);
  |]

type rates = {
  programs : int;
  true_sites : int;
  found : int;
  false_positives : int;  (** data / desync reported as syscalls (P3a) *)
  overlooked : int;  (** genuine syscalls missed (P2a) *)
}

(** One random program: [n] instructions with a blob of random data
    embedded in the code (jump-table style), then swept. *)
let x86_trial rng n =
  let insns = List.init n (fun _ -> x86_pool.(Rng.int rng (Array.length x86_pool))) in
  let data = Bytes.init 12 (fun _ -> Char.chr (Rng.int rng 256)) in
  let split = Rng.int rng (n + 1) in
  let before = List.filteri (fun i _ -> i < split) insns in
  let after = List.filteri (fun i _ -> i >= split) insns in
  let code =
    Bytes.concat Bytes.empty [ Encode.assemble before; data; Encode.assemble after ]
  in
  (* ground truth: where the real syscalls are *)
  let truth = ref [] in
  let off = ref 0 in
  List.iter
    (fun i ->
      if i = Insn.Syscall then truth := !off :: !truth;
      off := !off + Encode.length i)
    before;
  off := !off + Bytes.length data;
  List.iter
    (fun i ->
      if i = Insn.Syscall then truth := !off :: !truth;
      off := !off + Encode.length i)
    after;
  let truth = List.rev !truth in
  let found = Disasm.find_syscall_sites code ~base:0 in
  (truth, found)

let arm_trial rng n =
  let insns = List.init n (fun _ -> arm_pool.(Rng.int rng (Array.length arm_pool))) in
  let data =
    Arm.bytes_of_word (Rng.int rng 0x3fffffff lor (Rng.int rng 4 lsl 30))
  in
  let split = Rng.int rng (n + 1) in
  let before = List.filteri (fun i _ -> i < split) insns in
  let after = List.filteri (fun i _ -> i >= split) insns in
  let code = Bytes.concat Bytes.empty [ Arm.assemble before; data; Arm.assemble after ] in
  let truth = ref [] in
  List.iteri (fun i insn -> match insn with Arm.Svc _ -> truth := (4 * i) :: !truth | _ -> ()) before;
  let base_after = (4 * List.length before) + 4 in
  List.iteri
    (fun i insn ->
      match insn with Arm.Svc _ -> truth := (base_after + (4 * i)) :: !truth | _ -> ())
    after;
  let truth = List.rev !truth in
  let found = Arm.find_svc_sites code ~base:0 in
  (truth, found)

let rates_of ~programs trial =
  let rng = Rng.create ~seed:99 in
  let acc = ref { programs; true_sites = 0; found = 0; false_positives = 0; overlooked = 0 } in
  for _ = 1 to programs do
    let truth, found = trial rng 40 in
    let fp = List.filter (fun s -> not (List.mem s truth)) found in
    let missed = List.filter (fun s -> not (List.mem s found)) truth in
    acc :=
      {
        !acc with
        true_sites = !acc.true_sites + List.length truth;
        found = !acc.found + List.length found;
        false_positives = !acc.false_positives + List.length fp;
        overlooked = !acc.overlooked + List.length missed;
      }
  done;
  !acc

let arm_study ?(programs = 2000) () =
  let x86 = rates_of ~programs (fun rng n -> x86_trial rng n) in
  let arm = rates_of ~programs (fun rng n -> arm_trial rng n) in
  (x86, arm)

let render_arm_study (x86, arm) =
  let line name (r : rates) =
    Printf.sprintf
      "%-8s %6d programs  %7d real sites  %6d misidentified (P3a)  %6d overlooked (P2a)\n"
      name r.programs r.true_sites r.false_positives r.overlooked
  in
  line "x86-64" x86 ^ line "arm64" arm
  ^ "\n\
     Fixed-length decoding cannot desynchronise: the overlook class vanishes\n\
     and misidentification shrinks to exact data/instruction aliasing — the\n\
     Section 7 claim, quantified.  (An offline validation phase remains\n\
     useful on ARM: aliasing false positives are rarer, not impossible.)\n"

(* ------------------------------------------------------------------ *)

let seccomp_micro ?(runs = 6) () =
  let open K23_userland in
  let run_one ~seed ~iters ~interposed =
    let w = Sim.create_world ~seed () in
    ignore (Sim.register_app w ~path:Micro.app_path (Micro.app_items iters));
    let p =
      if interposed then (
        match K23_baselines.Seccomp_interposer.launch w ~path:Micro.app_path () with
        | Ok (p, _) -> p
        | Error e -> failwith (string_of_int e))
      else
        match K23_kernel.World.spawn w ~path:Micro.app_path () with
        | Ok p -> p
        | Error e -> failwith (string_of_int e)
    in
    let core = (List.hd p.threads).K23_kernel.Kern.core in
    let before = w.core_cycles.(core) in
    K23_kernel.World.run_until_exit w p;
    w.core_cycles.(core) - before
  in
  let per_iter ~seed ~interposed =
    let lo = run_one ~seed ~iters:Micro.lo_iters ~interposed in
    let hi = run_one ~seed ~iters:Micro.hi_iters ~interposed in
    float_of_int (hi - lo) /. float_of_int (Micro.hi_iters - Micro.lo_iters)
  in
  let samples =
    List.init runs (fun i ->
        let seed = 4_000 + (i * 3) in
        per_iter ~seed ~interposed:true /. per_iter ~seed ~interposed:false)
  in
  let kept = K23_util.Stats.drop_outliers samples in
  (K23_util.Stats.geomean kept, K23_util.Stats.stddev_pct kept)

let render_seccomp (overhead, std) =
  Printf.sprintf
    "seccomp-trap interposition: %.4fx (+/-%.3f%%) vs native\n\n\
     As the paper argues (Section 1), signal-based seccomp interposition\n\
     lands in SUD's cost class (~15x), an order of magnitude above the\n\
     rewriting interposers; pure in-kernel filters are cheap but cannot\n\
     dereference pointer arguments (see test/test_seccomp.ml).\n"
    overhead std
