(** Table 2 (unique syscall instructions logged during the offline
    phase) and Figure 3 (the log file generated for ls). *)

open K23_kernel
open K23_userland
module K23 = K23_core.K23
module Apps = K23_apps

type entry = { app : string; sites : int; expected : int }

let coreutil_expected = Apps.Coreutils.expected_sites

(** Offline phase for one coreutil. *)
let coreutil_sites name =
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  let path = Apps.Coreutils.path name in
  List.length (K23.offline_run w ~path ())

(** Offline phase for one server/database spec. *)
let app_spec_sites spec =
  let w = Sim.create_world () in
  let path, port = Macro.register_workload w spec in
  (match spec.Macro.workload with
  | Macro.Sqlite _ -> ignore (K23.offline_run w ~path ~max_steps:80_000_000 ())
  | Macro.Web _ | Macro.Redis _ ->
    let stats = K23_interpose.Interpose.fresh_stats () in
    Kern.register_library w (K23_core.Offline.image ~stats ());
    let env = K23_interpose.Interpose.add_preload [] K23_core.Offline.lib_path in
    (match World.spawn w ~path ~env ~tracer:(Ptracer_enforcer.enforcer ()) () with
    | Error e -> failwith (Printf.sprintf "offline spawn failed: %d" e)
    | Ok _ -> ());
    Macro.wait_for_listener w port;
    (match Macro.client_for spec ~rounds:3 with
    | Some client -> ignore (Macro.drive_client w ~client)
    | None -> ());
    Macro.kill_everything w);
  List.length (K23_core.Log_store.read w ~app:path)

(** The paper's Table 2 (expected column from the paper). *)
let paper_counts =
  [
    ("pwd", 7);
    ("touch", 9);
    ("ls", 10);
    ("cat", 11);
    ("clear", 13);
    ("sqlite", 20);
    ("nginx", 43);
    ("lighttpd", 44);
    ("redis", 92);
  ]

let table2 () =
  let core =
    List.map
      (fun (name, expected) -> { app = name; sites = coreutil_sites name; expected })
      coreutil_expected
  in
  let servers =
    [
      { app = "sqlite"; sites = app_spec_sites Macro.sqlite; expected = 20 };
      {
        app = "nginx";
        sites = app_spec_sites (Macro.nginx ~workers:1 ~kb:0);
        expected = 43;
      };
      {
        app = "lighttpd";
        sites = app_spec_sites (Macro.lighttpd ~workers:1 ~kb:0);
        expected = 44;
      };
      { app = "redis"; sites = app_spec_sites (Macro.redis ~io_threads:1); expected = 92 };
    ]
  in
  core @ servers

let render_table2 entries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-10s %14s %14s\n" "Application" "#Instructions" "(paper)");
  List.iter
    (fun { app; sites; expected } ->
      Buffer.add_string buf (Printf.sprintf "%-10s %14d %14d\n" app sites expected))
    entries;
  Buffer.contents buf

(** Figure 3: the offline log generated for ls. *)
let fig3 () =
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  ignore (K23.offline_run w ~path:(Apps.Coreutils.path "ls") ());
  match Vfs.read_file w.Kern.vfs (K23_core.Log_store.path_for ~app:"/bin/ls") with
  | Ok content -> content
  | Error _ -> "(no log)"
