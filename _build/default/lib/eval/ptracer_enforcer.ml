(** Thin alias so the eval library reads naturally. *)

let enforcer () = K23_core.Ptracer.preload_enforcer ~lib_path:K23_core.Offline.lib_path ()
