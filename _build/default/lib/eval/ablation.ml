(** E6: feature-cost ablation (the design choices DESIGN.md calls
    out).  Uses the Table 5 marginal measurements to isolate:

    - the NULL-execution check, bitmap (zpoline) vs hash set (K23) —
      the paper observes the hash set costs more cycles but vastly
      less memory (Section 6.2.1);
    - the dedicated-stack switch (K23-ultra+);
    - the price of arming SUD at all (the fallback's standing cost,
      paid even on the rewritten fast path). *)

type entry = { feature : string; delta_overhead : float; comment : string }

let run ?(runs = 6) () =
  let per mech = (Micro.overhead_row ~runs mech).overhead in
  let zp_d = per Mech.Zpoline_default in
  let zp_u = per Mech.Zpoline_ultra in
  let k_d = per Mech.K23_default in
  let k_u = per Mech.K23_ultra in
  let k_up = per Mech.K23_ultra_plus in
  let sud_off = per Mech.Sud_no_interposition in
  [
    {
      feature = "NULL-exec check: bitmap (zpoline)";
      delta_overhead = zp_u -. zp_d;
      comment = "fast lookup, 2^45 B reservation";
    };
    {
      feature = "NULL-exec check: hash set (K23)";
      delta_overhead = k_u -. k_d;
      comment = "slightly slower, memory bounded by offline logs";
    };
    {
      feature = "dedicated stack switch (ultra+)";
      delta_overhead = k_up -. k_u;
      comment = "hardening for security-critical deployments";
    };
    {
      feature = "SUD fallback armed (kernel slow path)";
      delta_overhead = sud_off -. 1.0;
      comment = "standing cost of exhaustiveness, paid by K23/lazypoline";
    };
    {
      feature = "K23 trampoline vs zpoline trampoline";
      delta_overhead = k_d -. sud_off -. (zp_d -. 1.0);
      comment = "negative = K23's rcx/r11 reuse beats zpoline's entry";
    };
  ]

let render entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-42s %10s  %s\n" "Feature" "delta(x)" "");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-42s %+10.4f  %s\n" e.feature e.delta_overhead e.comment))
    entries;
  Buffer.contents buf
