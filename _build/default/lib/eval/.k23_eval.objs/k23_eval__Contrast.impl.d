lib/eval/contrast.ml: Array Bytes Char Disasm Encode Insn K23_baselines K23_isa K23_isa_arm K23_kernel K23_userland K23_util List Micro Printf Sim
