lib/eval/ptracer_enforcer.ml: K23_core
