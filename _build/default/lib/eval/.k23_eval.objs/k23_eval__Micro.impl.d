lib/eval/micro.ml: Array Asm Buffer Insn K23_core K23_isa K23_kernel K23_userland K23_util Kern List Mech Printf Sim Sysno World
