lib/eval/ablation.ml: Buffer List Mech Micro Printf
