lib/eval/fig1.ml: Buffer Bytes Disasm Encode K23_isa List Printf String
