lib/eval/startup_bench.ml: Buffer K23_apps K23_baselines K23_interpose K23_kernel K23_userland Kern List Printf Sim World
