lib/eval/macro.ml: Buffer Hashtbl K23_apps K23_core K23_interpose K23_kernel K23_userland K23_util Kern List Mech Option Printf Ptracer_enforcer Sim World
