lib/eval/offline_counts.ml: Buffer K23_apps K23_core K23_interpose K23_kernel K23_userland Kern List Macro Printf Ptracer_enforcer Sim Vfs World
