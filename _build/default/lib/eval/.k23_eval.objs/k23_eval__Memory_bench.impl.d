lib/eval/memory_bench.ml: Buffer K23_apps K23_baselines K23_core K23_kernel K23_userland List Printf Sim World
