lib/eval/mech.ml: K23_baselines K23_core K23_kernel World
