(** E8 / P4b: memory cost of the NULL-execution-check state.

    zpoline's bitmap spans the whole 2^48-byte virtual address space
    (one bit per address); K23 keeps a Robin-Hood hash set bounded by
    the offline logs; lazypoline keeps nothing (and checks nothing). *)

open K23_kernel
open K23_userland
module Apps = K23_apps
module Zp = K23_baselines.Zpoline
module Lp = K23_baselines.Lazypoline
module K23 = K23_core.K23

type entry = {
  system : string;
  reserved_bytes : int;
  resident_bytes : int;
  note : string;
}

let run () =
  let path = Apps.Coreutils.path "ls" in
  let zp =
    let w = Sim.create_world () in
    Apps.Coreutils.register_all w;
    match Zp.launch w ~variant:Zp.Ultra ~path () with
    | Error e -> failwith (string_of_int e)
    | Ok (p, _) ->
      World.run_until_exit w p;
      let reserved, resident = Zp.check_memory_bytes p in
      { system = "zpoline-ultra"; reserved_bytes = reserved; resident_bytes = resident;
        note = "bitmap over the whole address space" }
  in
  let lp =
    let w = Sim.create_world () in
    Apps.Coreutils.register_all w;
    match Lp.launch w ~path () with
    | Error e -> failwith (string_of_int e)
    | Ok (p, _) ->
      World.run_until_exit w p;
      { system = "lazypoline"; reserved_bytes = 0; resident_bytes = 0;
        note = "no state, but also no check (P4a unhandled)" }
  in
  let k23 =
    let w = Sim.create_world () in
    Apps.Coreutils.register_all w;
    ignore (K23.offline_run w ~path ());
    K23.seal_logs w;
    match K23.launch w ~variant:K23.Ultra ~path () with
    | Error e -> failwith (string_of_int e)
    | Ok (p, _) ->
      World.run_until_exit w p;
      let b = K23.check_memory_bytes p in
      { system = "K23-ultra"; reserved_bytes = b; resident_bytes = b;
        note = "Robin-Hood hash set bounded by the offline logs" }
  in
  [ zp; lp; k23 ]

let render entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-14s %18s %16s  %s\n" "System" "reserved (B)" "resident (B)" "");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %18d %16d  %s\n" e.system e.reserved_bytes e.resident_bytes e.note))
    entries;
  Buffer.contents buf
