(** E7: the startup blind spot (Section 6.1: "even simple utilities
    like ls issue over 100 system calls during startup before the
    interposition library is loaded").

    We count, per application, the system calls issued before the
    first LD_PRELOAD constructor completes — exactly the calls any
    library-injection interposer must miss — and verify that a
    ptrace-based launch observes them all. *)

open K23_kernel
open K23_userland
module Apps = K23_apps
module Pt = K23_baselines.Ptrace_interposer

type entry = {
  app : string;
  startup_syscalls : int;  (** missed by LD_PRELOAD-based interposers *)
  ptrace_sees : int;  (** same window as observed by a ptracer *)
}

let measure name =
  let path = Apps.Coreutils.path name in
  (* one run, traced: the kernel's ground-truth startup counter and
     the count the ptrace handler observed must agree.  A do-nothing
     preload marks where an interposition library would initialise. *)
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  let stats = K23_interpose.Interpose.fresh_stats () in
  Kern.register_library w
    (K23_baselines.Sud_interposer.image ~interpose_on:false ~stats
       ~handler:(K23_interpose.Interpose.counting_handler stats) ());
  let env = K23_interpose.Interpose.add_preload [] K23_baselines.Sud_interposer.lib_path in
  let seen = ref 0 in
  let inner : K23_interpose.Interpose.handler =
   fun ctx ~nr:_ ~args:_ ~site:_ ->
    if not ctx.thread.t_proc.startup_done then incr seen;
    Forward
  in
  match Pt.launch w ~inner ~path ~env () with
  | Error e -> failwith (Printf.sprintf "ptrace launch: %d" e)
  | Ok (p, _) ->
    World.run_until_exit w p;
    { app = name; startup_syscalls = p.counters.c_startup; ptrace_sees = !seen }

let run () = List.map measure [ "pwd"; "touch"; "ls"; "cat"; "clear" ]

let render entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %20s %18s\n" "App" "startup syscalls" "seen by ptrace");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %20d %18d\n" e.app e.startup_syscalls e.ptrace_sees))
    entries;
  Buffer.contents buf
