(** Figure 1, executable: a binary containing (a) a genuine [syscall],
    (b) a partial instruction whose immediate embeds the [0f 05]
    opcode, and (c) embedded data that resembles [syscall]
    instructions.  We print the linear-sweep view of it and what each
    interposer would do at each position — the figure's caption as a
    program. *)

open K23_isa

(* (a) genuine syscall, (b) mov eax, imm32 whose immediate starts with
   0f 05, (c) a data blob with 0f 05 at a sweep-reachable boundary *)
let demo =
  let code =
    Encode.assemble
      [
        Mov_ri32 (RAX, 39);
        Syscall;  (* (a) valid *)
        Mov_ri32 (RBX, 0x00c3050f);  (* (b) partial: imm bytes 0f 05 c3 00 *)
        Ret;
      ]
  in
  Bytes.cat code (Bytes.of_string "\x0f\x05\x11\x22")  (* (c) embedded data *)

let genuine_site = 5 (* after the 5-byte mov *)
let partial_gadget = 7 + 1 (* inside the second mov's immediate *)
let data_site = Bytes.length demo - 4

let classify addr =
  if addr = genuine_site then "valid syscall"
  else if addr = partial_gadget then "partial-instruction bytes (P3b gadget)"
  else if addr >= data_site then "embedded data (P3a bait)"
  else "ordinary instruction"

let render () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "binary under the linear sweep (cf. Figure 1):\n\n";
  Buffer.add_string b (Disasm.listing demo ~base:0);
  Buffer.add_string b "\n\nraw 0f 05 pattern positions: ";
  Buffer.add_string b
    (String.concat ", "
       (List.map (fun a -> Printf.sprintf "%#x (%s)" a (classify a))
          (Disasm.raw_pattern_sites demo ~base:0)));
  let swept = Disasm.find_syscall_sites demo ~base:0 in
  Buffer.add_string b "\n\nzpoline's sweep would rewrite: ";
  Buffer.add_string b
    (String.concat ", " (List.map (fun a -> Printf.sprintf "%#x (%s)" a (classify a)) swept));
  Buffer.add_string b
    "\n  -> the data bytes are rewritten: P3a.  The partial gadget is invisible\n\
     \     to the sweep but executable by a hijacked jump: under lazypoline the\n\
     \     first such execution gets it rewritten: P3b.\n";
  Buffer.add_string b
    "\nlazypoline would rewrite: whatever traps first - including (b) and (c)\n\
     if control flow is redirected into them (P3b).\n";
  Buffer.add_string b
    (Printf.sprintf
       "\nK23 would rewrite: only offline-validated sites - here exactly [%#x],\n\
        the genuine syscall; (b) and (c) are served by the SUD fallback if they\n\
        ever execute, and never rewritten.\n"
       genuine_site);
  Buffer.contents b
