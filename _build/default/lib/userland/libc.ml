(** The simulated C library.

    Every syscall wrapper is genuine simulated code containing one
    [syscall] instruction at a fixed offset inside the libc image —
    exactly the sites that zpoline/lazypoline/K23 discover and rewrite.
    The library also ships:

    - a vdso-aware [clock_gettime] (calls [__vdso_clock_gettime] when
      the vdso is mapped — the kernel-bypassing path of pitfall P2b);
    - a generic [syscall] function (libc syscall(3)), used by the
      microbenchmark and by the Listing-2 PoC;
    - environment helpers ([getenv]/[setenv]/[unsetenv]/[build_envp]);
    - [dlopen]/[dlsym] (pitfall P2a: code loaded after the rewriters
      ran);
    - a tiny allocator and string helpers as host functions;
    - a constructor that performs the locale/brk startup syscalls real
      glibc issues before main. *)

open K23_isa
open K23_kernel
open K23_machine

let path = "/usr/lib/x86_64-linux-gnu/libc.so.6"

(* (symbol, syscall nr, needs r10<-rcx shuffle) *)
let wrappers =
  [
    ("read", Sysno.read, false);
    ("write", Sysno.write, false);
    ("open", Sysno.open_, false);
    ("openat", Sysno.openat, true);
    ("close", Sysno.close, false);
    ("stat", Sysno.stat, false);
    ("fstat", Sysno.fstat, false);
    ("lseek", Sysno.lseek, false);
    ("mmap", Sysno.mmap, true);
    ("mprotect", Sysno.mprotect, false);
    ("munmap", Sysno.munmap, false);
    ("brk", Sysno.brk, false);
    ("rt_sigaction", Sysno.rt_sigaction, false);
    ("rt_sigprocmask", Sysno.rt_sigprocmask, false);
    ("ioctl", Sysno.ioctl, false);
    ("access", Sysno.access, false);
    ("pipe", Sysno.pipe, false);
    ("sched_yield", Sysno.sched_yield, false);
    ("dup", Sysno.dup, false);
    ("nanosleep", Sysno.nanosleep, false);
    ("getpid", Sysno.getpid, false);
    ("gettid", Sysno.gettid, false);
    ("socket", Sysno.socket, false);
    ("connect", Sysno.connect, false);
    ("accept", Sysno.accept, false);
    ("sendto", Sysno.sendto, true);
    ("recvfrom", Sysno.recvfrom, true);
    ("shutdown", Sysno.shutdown, false);
    ("bind", Sysno.bind, false);
    ("listen", Sysno.listen, false);
    ("clone", Sysno.clone, false);
    ("fork", Sysno.fork, false);
    ("execve", Sysno.execve, false);
    ("exit_thread", Sysno.exit, false);
    ("wait4", Sysno.wait4, true);
    ("kill", Sysno.kill, false);
    ("fcntl", Sysno.fcntl, false);
    ("fsync", Sysno.fsync, false);
    ("ftruncate", Sysno.ftruncate, false);
    ("getcwd", Sysno.getcwd, false);
    ("chdir", Sysno.chdir, false);
    ("rename", Sysno.rename, false);
    ("mkdir", Sysno.mkdir, false);
    ("unlink", Sysno.unlink, false);
    ("chmod", Sysno.chmod, false);
    ("gettimeofday", Sysno.gettimeofday, false);
    ("prctl", Sysno.prctl, true);
    ("futex", Sysno.futex, true);
    ("getdents64", Sysno.getdents64, false);
    ("exit", Sysno.exit_group, false);
    ("pkey_alloc", Sysno.pkey_alloc, false);
    ("pkey_mprotect", Sysno.pkey_mprotect, true);
  ]

(* Real libc puts kilobytes of unrelated code between syscall wrappers;
   the padding keeps logged offsets realistically large (Figure 3) and
   gives static disassemblers a realistic amount of text to sweep. *)
let wrapper_items i (name, nr, r10) =
  [ Asm.Zeros (3000 + (i * 211 mod 2000)); Asm.Label name ]
  @ (if r10 then [ Asm.I (Insn.Mov_rr (R10, RCX)) ] else [])
  @ [ Asm.I (Insn.Mov_ri (RAX, nr)); Asm.I Insn.Syscall; Asm.I Insn.Ret ]

(* ------------------------------------------------------------------ *)
(* Host functions                                                      *)

open Kern

let ret ctx v = Regs.set ctx.thread.regs RAX v
let arg ctx r = Regs.get ctx.thread.regs r

let read_str ctx addr = Memory.read_cstr ctx.thread.t_proc.mem addr

(** getenv(name) -> pointer to value (in scratch) or NULL *)
let libc_getenv ctx =
  let p = ctx.thread.t_proc in
  let name = read_str ctx (arg ctx RDI) in
  match List.assoc_opt name p.env with
  | None -> ret ctx 0
  | Some v -> ret ctx (scratch_write_cstr p v)

let libc_setenv ctx =
  let p = ctx.thread.t_proc in
  let name = read_str ctx (arg ctx RDI) in
  let value = read_str ctx (arg ctx RSI) in
  p.env <- (name, value) :: List.remove_assoc name p.env;
  ret ctx 0

(** unsetenv("LD_PRELOAD") — the P1a bypass primitive. *)
let libc_unsetenv ctx =
  let p = ctx.thread.t_proc in
  let name = read_str ctx (arg ctx RDI) in
  p.env <- List.remove_assoc name p.env;
  ret ctx 0

(** build_envp() -> pointer to a NULL-terminated char*[] snapshot of the
    current environment (what execvp passes along). *)
let libc_build_envp ctx =
  let p = ctx.thread.t_proc in
  let strs = List.map (fun (k, v) -> k ^ "=" ^ v) p.env in
  let ptrs = List.map (scratch_write_cstr p) strs in
  let arr = scratch_alloc p (8 * (List.length ptrs + 1)) in
  List.iteri (fun i a -> Memory.write_u64_raw p.mem (arr + (8 * i)) a) ptrs;
  Memory.write_u64_raw p.mem (arr + (8 * List.length ptrs)) 0;
  ret ctx arr

(** malloc: trivial bump allocator over fresh anonymous pages. *)
type Kern.pstate += Heap of int ref

let heap_key = "libc.heap"

let libc_malloc ctx =
  let p = ctx.thread.t_proc in
  let size = arg ctx RDI in
  let cur =
    match Hashtbl.find_opt p.pstates heap_key with
    | Some (Heap r) -> r
    | _ ->
      let r = ref 0x0200_0000 in
      Hashtbl.replace p.pstates heap_key (Heap r);
      r
  in
  let base = !cur in
  let len = Memory.align_up (max 16 size) in
  Memory.map p.mem ~addr:(Memory.align_down base) ~len:(len + Memory.page_size) ~perm:Memory.perm_rw;
  cur := base + len;
  ret ctx base

let libc_memcpy ctx =
  let p = ctx.thread.t_proc in
  let dst = arg ctx RDI and src = arg ctx RSI and n = arg ctx RDX in
  let b = Memory.read_bytes_raw p.mem src n in
  Memory.write_bytes_raw p.mem dst b;
  ret ctx dst

let libc_strlen ctx =
  ret ctx (String.length (read_str ctx (arg ctx RDI)))

let libc_strcmp ctx =
  let a = read_str ctx (arg ctx RDI) and b = read_str ctx (arg ctx RSI) in
  ret ctx (compare a b)

(** dlopen phase 1: map the library, apply relocations, return the
    constructor address (0 if none) in rax and the handle in r12. *)
let libc_dlopen_load ctx =
  let w = ctx.world in
  let p = ctx.thread.t_proc in
  let pathname = read_str ctx (arg ctx RDI) in
  match find_library w pathname with
  | None ->
    ret ctx 0;
    Regs.set ctx.thread.regs R12 0
  | Some im ->
    charge w ctx.thread 2000;
    let t, _ = Mapper.map_image w p im in
    Mapper.apply_relocs p im;
    let ctor = match im.im_init with Some s -> Mapper.image_sym p im s | None -> None in
    ret ctx (Option.value ctor ~default:0);
    Regs.set ctx.thread.regs R12 t

let libc_dlopen_finish ctx = ret ctx (Regs.get ctx.thread.regs R12)

let libc_dlsym ctx =
  let p = ctx.thread.t_proc in
  let name = read_str ctx (arg ctx RSI) in
  ret ctx (Option.value (Mapper.lookup_sym p name) ~default:0)

(* ------------------------------------------------------------------ *)
(* Image assembly                                                      *)

let items =
  List.concat (List.mapi wrapper_items wrappers)
  @ [
      (* libc syscall(3): shift userspace args into the kernel ABI *)
      Asm.Label "syscall";
      Asm.I (Insn.Mov_rr (RAX, RDI));
      Asm.I (Insn.Mov_rr (RDI, RSI));
      Asm.I (Insn.Mov_rr (RSI, RDX));
      Asm.I (Insn.Mov_rr (RDX, RCX));
      Asm.I (Insn.Mov_rr (R10, R8));
      Asm.I (Insn.Mov_rr (R8, R9));
      Asm.I Insn.Syscall;
      Asm.I Insn.Ret;
      (* clock_gettime: vdso fast path when available *)
      Asm.Label "clock_gettime";
      Asm.Mov_sym (R11, "__vdso_clock_gettime");
      Asm.I (Insn.Test_rr (R11, R11));
      Asm.Jc (Insn.Z, "cg_fallback");
      Asm.I (Insn.Jmp_reg R11);
      Asm.Label "cg_fallback";
      Asm.I (Insn.Mov_ri (RAX, Sysno.clock_gettime));
      Asm.I Insn.Syscall;
      Asm.I Insn.Ret;
      (* host-function-backed utilities *)
      Asm.Label "getenv";
      Asm.Vcall_named "libc_getenv";
      Asm.I Insn.Ret;
      Asm.Label "setenv";
      Asm.Vcall_named "libc_setenv";
      Asm.I Insn.Ret;
      Asm.Label "unsetenv";
      Asm.Vcall_named "libc_unsetenv";
      Asm.I Insn.Ret;
      Asm.Label "build_envp";
      Asm.Vcall_named "libc_build_envp";
      Asm.I Insn.Ret;
      Asm.Label "malloc";
      Asm.Vcall_named "libc_malloc";
      Asm.I Insn.Ret;
      Asm.Label "memcpy";
      Asm.Vcall_named "libc_memcpy";
      Asm.I Insn.Ret;
      Asm.Label "strlen";
      Asm.Vcall_named "libc_strlen";
      Asm.I Insn.Ret;
      Asm.Label "strcmp";
      Asm.Vcall_named "libc_strcmp";
      Asm.I Insn.Ret;
      Asm.Label "dlopen";
      Asm.Vcall_named "libc_dlopen_load";
      Asm.I (Insn.Test_rr (RAX, RAX));
      Asm.Jc (Insn.Z, "dlopen_done");
      Asm.I (Insn.Call_reg RAX);
      Asm.Label "dlopen_done";
      Asm.Vcall_named "libc_dlopen_finish";
      Asm.I Insn.Ret;
      Asm.Label "dlsym";
      Asm.Vcall_named "libc_dlsym";
      Asm.I Insn.Ret;
      (* constructor: the startup syscalls glibc issues before main
         (locale archive, brk growth, signal mask bookkeeping) *)
      Asm.Label "__libc_init";
      Asm.I (Insn.Mov_ri (RAX, Sysno.brk));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_rr (RDI, RAX));
      Asm.I (Insn.Add_ri (RDI, 127));
      Asm.I (Insn.Mov_ri (RAX, Sysno.brk));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.openat));
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "__libc_locale_path");
      Asm.I (Insn.Xor_rr (RDX, RDX));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_rr (RDI, RAX));
      Asm.I (Insn.Mov_ri (RAX, Sysno.fstat));
      Asm.Mov_sym (RSI, "__libc_buf");
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.read));
      Asm.Mov_sym (RSI, "__libc_buf");
      Asm.I (Insn.Mov_ri (RDX, 256));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.close));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigprocmask));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.ioctl));
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.fcntl));
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.I Insn.Syscall;
      (* locale / gconv probing, as real glibc does *)
      Asm.I (Insn.Mov_ri (RAX, Sysno.access));
      Asm.Mov_sym (RDI, "__libc_locale_path");
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.stat));
      Asm.Mov_sym (RDI, "__libc_locale_path");
      Asm.Mov_sym (RSI, "__libc_buf");
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.gettid));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.sched_yield));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigaction));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I (Insn.Xor_rr (RSI, RSI));
      Asm.I Insn.Syscall;
      Asm.I Insn.Ret;
      (* data *)
      Asm.Section `Data;
      Asm.Label "__libc_locale_path";
      Asm.Strz "/usr/lib/locale/locale-archive";
      Asm.Label "__libc_buf";
      Asm.Zeros 256;
      Asm.Label "environ";
      Asm.Quad 0;
    ]

let host_fns =
  [
    ("libc_getenv", libc_getenv);
    ("libc_setenv", libc_setenv);
    ("libc_unsetenv", libc_unsetenv);
    ("libc_build_envp", libc_build_envp);
    ("libc_malloc", libc_malloc);
    ("libc_memcpy", libc_memcpy);
    ("libc_strlen", libc_strlen);
    ("libc_strcmp", libc_strcmp);
    ("libc_dlopen_load", libc_dlopen_load);
    ("libc_dlopen_finish", libc_dlopen_finish);
    ("libc_dlsym", libc_dlsym);
  ]

let image () : image =
  {
    im_name = path;
    im_prog = Asm.assemble items;
    im_host_fns = host_fns;
    im_init = Some "__libc_init";
    im_entry = None;
    im_needed = [];
    im_owner = Libc;
  }

(** Byte offset of the [syscall] instruction inside a wrapper, from the
    wrapper's symbol: used by tests to compute expected sites. *)
let syscall_offset_in_wrapper ~r10 = (if r10 then 3 else 0) + 10
