(** Stub dependency libraries.

    Real programs pull in more than libc; their presence matters here
    because every extra library adds loader syscalls to the startup
    window that LD_PRELOAD-based interposers cannot see (pitfall P2b).
    Each stub has a tiny constructor that issues a couple of syscalls,
    like real library initialisers do. *)

open K23_isa
open K23_kernel

let stub ~path ?(deps = []) () : Kern.image =
  let items =
    [
      Asm.Label "__stub_init";
      Asm.I (Insn.Mov_ri (RAX, Sysno.brk));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigprocmask));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
      Asm.I Insn.Syscall;
      Asm.I (Insn.Mov_ri (RAX, Sysno.fcntl));
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.I Insn.Syscall;
      Asm.I Insn.Ret;
    ]
  in
  {
    im_name = path;
    im_prog = Asm.assemble items;
    im_host_fns = [];
    im_init = Some "__stub_init";
    im_entry = None;
    im_needed = deps;
    im_owner = Lib (Filename.basename path);
  }

let libselinux = "/usr/lib/x86_64-linux-gnu/libselinux.so.1"
let libcap = "/usr/lib/x86_64-linux-gnu/libcap.so.2"
let libpcre = "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0"
let libcrypto = "/usr/lib/x86_64-linux-gnu/libcrypto.so.3"
let libz = "/usr/lib/x86_64-linux-gnu/libz.so.1"

let all () =
  [
    stub ~path:libselinux ~deps:[ libpcre ] ();
    stub ~path:libcap ();
    stub ~path:libpcre ();
    stub ~path:libcrypto ();
    stub ~path:libz ();
  ]
