lib/userland/sim.ml: K23_isa K23_kernel Kern Libc List Printf Stdlibs String Vfs World
