lib/userland/libc.ml: Asm Hashtbl Insn K23_isa K23_kernel K23_machine Kern List Mapper Memory Option Regs String Sysno
