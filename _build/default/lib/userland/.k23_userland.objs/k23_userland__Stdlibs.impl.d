lib/userland/stdlibs.ml: Asm Filename Insn K23_isa K23_kernel Kern Sysno
