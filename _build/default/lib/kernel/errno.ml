(** Errno values, returned from system calls as negative numbers in
    rax, following the Linux x86-64 kernel ABI. *)

let eperm = 1
let enoent = 2
let esrch = 3
let eintr = 4
let eio = 5
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let eacces = 13
let efault = 14
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let enfile = 23
let enosys = 38
let enotempty = 39
let eaddrinuse = 98
let econnrefused = 111

(** Encode an error as a syscall return value. *)
let ret e = -e

let is_error v = v < 0

let to_string e =
  match abs e with
  | 1 -> "EPERM"
  | 2 -> "ENOENT"
  | 3 -> "ESRCH"
  | 4 -> "EINTR"
  | 5 -> "EIO"
  | 9 -> "EBADF"
  | 10 -> "ECHILD"
  | 11 -> "EAGAIN"
  | 12 -> "ENOMEM"
  | 13 -> "EACCES"
  | 14 -> "EFAULT"
  | 17 -> "EEXIST"
  | 20 -> "ENOTDIR"
  | 21 -> "EISDIR"
  | 22 -> "EINVAL"
  | 38 -> "ENOSYS"
  | 98 -> "EADDRINUSE"
  | 111 -> "ECONNREFUSED"
  | n -> Printf.sprintf "E%d" n
