(** System call numbers.  Values follow the Linux x86-64 syscall table
    so that logs, traces and PoCs read like the real thing. *)

let read = 0
let write = 1
let open_ = 2
let close = 3
let stat = 4
let fstat = 5
let lseek = 8
let mmap = 9
let mprotect = 10
let munmap = 11
let brk = 12
let rt_sigaction = 13
let rt_sigprocmask = 14
let rt_sigreturn = 15
let ioctl = 16
let pipe = 22
let access = 21
let sched_yield = 24
let dup = 32
let nanosleep = 35
let getpid = 39
let socket = 41
let connect = 42
let accept = 43
let sendto = 44
let recvfrom = 45
let shutdown = 48
let bind = 49
let listen = 50
let clone = 56
let fork = 57
let execve = 59
let exit = 60
let wait4 = 61
let kill = 62
let fcntl = 72
let fsync = 74
let ftruncate = 77
let getcwd = 79
let chdir = 80
let rename = 82
let mkdir = 83
let unlink = 87
let chmod = 90
let gettimeofday = 96
let ptrace = 101
let prctl = 157
let arch_prctl = 158
let gettid = 186
let futex = 202
let getdents64 = 217
let clock_gettime = 228
let exit_group = 231
let openat = 257
let process_vm_readv = 310
let process_vm_writev = 311
let pkey_mprotect = 329
let pkey_alloc = 330
let pkey_free = 331
let seccomp = 317

(** The non-existent syscall number used by the paper's microbenchmark
    ("we created a system call stress test using a non-existent system
    call (system call number 500)"). *)
let bench_nonexistent = 500

(** K23's fake system calls (Section 5.3): non-existent numbers that the
    kernel redirects to ptracer while it is attached. *)
let k23_handoff = 1023
let k23_detach = 1024
let k23_reattach = 1025

(* prctl operations *)
let pr_set_syscall_user_dispatch = 59
let pr_sys_dispatch_off = 0
let pr_sys_dispatch_on = 1

(* SUD selector byte states (include/uapi/linux/syscall_user_dispatch.h) *)
let syscall_dispatch_filter_allow = 0
let syscall_dispatch_filter_block = 1

let name nr =
  match nr with
  | 0 -> "read"
  | 1 -> "write"
  | 2 -> "open"
  | 3 -> "close"
  | 4 -> "stat"
  | 5 -> "fstat"
  | 8 -> "lseek"
  | 9 -> "mmap"
  | 10 -> "mprotect"
  | 11 -> "munmap"
  | 12 -> "brk"
  | 13 -> "rt_sigaction"
  | 14 -> "rt_sigprocmask"
  | 15 -> "rt_sigreturn"
  | 16 -> "ioctl"
  | 21 -> "access"
  | 22 -> "pipe"
  | 24 -> "sched_yield"
  | 32 -> "dup"
  | 35 -> "nanosleep"
  | 39 -> "getpid"
  | 41 -> "socket"
  | 42 -> "connect"
  | 43 -> "accept"
  | 44 -> "sendto"
  | 45 -> "recvfrom"
  | 48 -> "shutdown"
  | 49 -> "bind"
  | 50 -> "listen"
  | 56 -> "clone"
  | 57 -> "fork"
  | 59 -> "execve"
  | 60 -> "exit"
  | 61 -> "wait4"
  | 62 -> "kill"
  | 72 -> "fcntl"
  | 74 -> "fsync"
  | 77 -> "ftruncate"
  | 79 -> "getcwd"
  | 80 -> "chdir"
  | 82 -> "rename"
  | 83 -> "mkdir"
  | 87 -> "unlink"
  | 90 -> "chmod"
  | 96 -> "gettimeofday"
  | 101 -> "ptrace"
  | 157 -> "prctl"
  | 158 -> "arch_prctl"
  | 186 -> "gettid"
  | 202 -> "futex"
  | 217 -> "getdents64"
  | 228 -> "clock_gettime"
  | 231 -> "exit_group"
  | 257 -> "openat"
  | 310 -> "process_vm_readv"
  | 311 -> "process_vm_writev"
  | 329 -> "pkey_mprotect"
  | 330 -> "pkey_alloc"
  | 331 -> "pkey_free"
  | 317 -> "seccomp"
  | 500 -> "syscall_500"
  | 1023 -> "k23_handoff"
  | 1024 -> "k23_detach"
  | 1025 -> "k23_reattach"
  | n -> Printf.sprintf "syscall_%d" n
