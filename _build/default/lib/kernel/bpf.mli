(** Classic-BPF filters for seccomp.

    Filters see the syscall number, the architecture, the instruction
    pointer and the six {e register} arguments — never the memory
    behind pointer arguments, which is the expressiveness limit the
    paper attributes to seccomp (Section 1). *)

val data_nr : int
val data_arch : int
val data_ip : int
val data_arg : int -> int
(** Offsets into struct seccomp_data. *)

type action =
  | Allow
  | Errno of int  (** fail the call with -errno without entering the kernel *)
  | Trap  (** deliver SIGSYS *)
  | Kill
  | Log

val action_rank : action -> int
(** Restrictiveness ordering (kernel semantics for filter stacks). *)

type insn =
  | Ld of int
  | Jeq of int * int * int
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int
  | And of int
  | Ret of action

type filter = insn array

type data = { nr : int; arch : int; ip : int; args : int array }

exception Bad_filter of string

val eval : filter -> data -> action
val eval_all : filter list -> data -> action
(** All installed filters run; the most restrictive verdict wins. *)

(** {2 Builders} *)

val policy : default:action -> (int * action) list -> filter
(** Per-syscall-number actions with a default (libseccomp style). *)

val trap_outside_ip_range : lo:int -> hi:int -> filter
(** Trap every syscall whose instruction pointer is outside [lo, hi) —
    how a seccomp interposer lets its own handler's re-issued calls
    pass. *)

val arg_equals : nr:int -> arg:int -> value:int -> mismatch:action -> filter
(** Act on a register-argument value: the most seccomp can inspect. *)
