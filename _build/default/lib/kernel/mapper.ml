(** Image mapping: placing a program's text/data sections in a process
    address space, exporting its dynamic symbols and applying
    relocations.

    Layout conventions (mirroring a non-PIE Linux binary):
    - main executable: text at 0x400000, data at 0x500000 (fixed);
    - shared libraries: placed at the mmap cursor, whose starting value
      is randomised per exec when ASLR is on — so absolute library
      addresses change between runs but {e offsets within a region are
      stable}, the property K23's offline logs rely on (Section 5.1). *)

open K23_machine
open Kern

let align = Memory.align_up

let text_base_of (p : proc) (im : image) =
  match Hashtbl.find_opt p.image_bases im.im_name with
  | Some (t, _) -> Some t
  | None -> None

(** Map one section of [im] into [p]; returns the section base.
    Idempotent per (image, section). *)
let map_image_section (w : world) (p : proc) (im : image) ~section =
  let prog = im.im_prog in
  let existing = Hashtbl.find_opt p.image_bases im.im_name in
  let pick_base len =
    if im.im_owner = App then
      match section with `Text -> 0x0040_0000 | `Data -> 0x0050_0000
    else begin
      let b = p.mmap_cursor in
      p.mmap_cursor <- p.mmap_cursor + align len + 0x10000;
      b
    end
  in
  let bytes, perm, sec =
    match section with
    | `Text -> (prog.K23_isa.Asm.text, Memory.perm_rx, `Text)
    | `Data -> (prog.K23_isa.Asm.data, Memory.perm_rw, `Data)
  in
  let len = max 1 (Bytes.length bytes) in
  let already =
    match (existing, section) with
    | Some (t, _), `Text when t <> 0 || im.im_owner = App -> Some t
    | Some (_, d), `Data when d <> 0 -> Some d
    | _ -> None
  in
  match already with
  | Some b -> b
  | None ->
    let base = pick_base len in
    Memory.map p.mem ~addr:base ~len ~perm;
    Memory.write_bytes_raw p.mem base bytes;
    add_region p
      {
        r_start = base;
        r_len = align len;
        r_perm = perm;
        r_name = im.im_name;
        r_owner = im.im_owner;
        r_image = Some im;
        r_sec = sec;
      };
    (* record the base *)
    let t0, d0 = Option.value existing ~default:(0, 0) in
    let entry = match section with `Text -> (base, d0) | `Data -> (t0, base) in
    Hashtbl.replace p.image_bases im.im_name entry;
    (* export symbols of this section *)
    List.iter
      (fun (name, (ssec, off)) ->
        match (ssec, section) with
        | `Text, `Text | `Data, `Data -> Hashtbl.replace p.globals name (base + off)
        | _ -> ())
      prog.K23_isa.Asm.symbols;
    ignore w;
    base

(** Map both sections. *)
let map_image (w : world) (p : proc) (im : image) =
  let t = map_image_section w p im ~section:`Text in
  let d =
    if Bytes.length im.im_prog.K23_isa.Asm.data > 0 then
      map_image_section w p im ~section:`Data
    else 0
  in
  (t, d)

(** Address of a symbol defined by [im] in [p]'s address space. *)
let image_sym (p : proc) (im : image) name =
  match
    ( Hashtbl.find_opt p.image_bases im.im_name,
      List.assoc_opt name im.im_prog.K23_isa.Asm.symbols )
  with
  | Some (t, _d), Some (`Text, off) -> Some (t + off)
  | Some (_t, d), Some (`Data, off) -> Some (d + off)
  | _ -> None

let lookup_sym (p : proc) name = Hashtbl.find_opt p.globals name

(** Apply [im]'s relocations: patch each 8-byte slot with the absolute
    address of the referenced symbol, resolved through the process-wide
    dynamic symbol table (ld.so semantics). *)
let apply_relocs (p : proc) (im : image) =
  match Hashtbl.find_opt p.image_bases im.im_name with
  | None -> ()
  | Some (t, d) ->
    List.iter
      (fun { K23_isa.Asm.reloc_section; reloc_offset; reloc_symbol } ->
        let slot = (match reloc_section with `Text -> t | `Data -> d) + reloc_offset in
        match lookup_sym p reloc_symbol with
        | Some addr -> Memory.write_u64_raw p.mem slot addr
        | None ->
          (* vdso symbols are weak: absent when the vdso is disabled
             (K23's ptracer does exactly that); everything else is a
             hard error *)
          if String.length reloc_symbol >= 6 && String.sub reloc_symbol 0 6 = "__vdso" then
            Memory.write_u64_raw p.mem slot 0
          else panic "pid %d: unresolved symbol %S in %s" p.pid reloc_symbol im.im_name)
      im.im_prog.K23_isa.Asm.relocs
