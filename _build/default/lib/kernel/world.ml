(** World assembly: wires the syscall table and the loader into a
    {!Kern.world} and provides the high-level API used by examples,
    tests and benchmarks. *)

open Kern

(** Create a fully wired world: syscall dispatch, execve, the dynamic
    linker, the vdso and a minimal filesystem skeleton. *)
let create ?ncores ?quantum ?seed ?aslr ?cost () =
  let w = create_world ?ncores ?quantum ?seed ?aslr ?cost () in
  w.syscall_impl <- Some Syscalls.dispatch;
  w.execve_impl <- Some Loader.do_execve;
  register_library w (Loader.ldso_image ());
  register_library w (Loader.vdso_image ());
  List.iter
    (fun d -> ignore (Vfs.mkdir_p w.vfs d))
    [ "/bin"; "/usr/lib"; "/etc"; "/tmp"; "/home/user"; "/k23" ];
  ignore (Vfs.write_file w.vfs "/etc/ld.so.cache" "ld.so cache\n");
  ignore (Vfs.write_file w.vfs "/etc/hostname" "sim\n");
  w

(** Spawn a process running [path].  [env] is a list of "K=V" strings;
    LD_PRELOAD is honoured exactly as by the dynamic loader.  A
    [tracer] attaches before the initial execve, so it observes the
    program from its very first instruction (the property only ptrace
    offers; Section 5.2). *)
let spawn (w : world) ~path ?(argv = []) ?(env = []) ?tracer ?(vdso = true) () =
  let p = new_proc w ~parent:None ~cmd:path in
  let th = new_thread w p in
  p.tracer <- tracer;
  p.vdso_enabled <- vdso;
  let argv = if argv = [] then [ path ] else argv in
  match w.execve_impl with
  | None -> panic "world not wired"
  | Some f ->
    let ret = f { world = w; thread = th } ~path ~argv ~envp:env in
    if ret < 0 then begin
      exit_proc p ~status:127;
      Error ret
    end
    else Ok p

(** Attach a ptrace-style tracer to a process (host-agent model; see
    {!Kern.tracer}). *)
let attach_tracer (p : proc) (tr : tracer) = p.tracer <- Some tr

let detach_tracer (p : proc) = p.tracer <- None

let run = Kern.run

(** Run until [p] terminates (or the step budget is exhausted). *)
let run_until_exit ?max_steps (w : world) (p : proc) =
  run ?max_steps ~until:(fun () -> proc_dead p) w

let exit_code (p : proc) = p.exit_status

let stdout_of = console_output

(** Total simulated wall-clock time (cycles) — the busiest core. *)
let elapsed_cycles (w : world) = now w
