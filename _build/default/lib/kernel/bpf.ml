(** Classic-BPF filters for seccomp (the third Linux interposition
    interface discussed in Sections 1 and 8).

    Implements the cBPF subset the kernel accepts for
    SECCOMP_SET_MODE_FILTER: loads from [struct seccomp_data],
    conditional jumps, and returns.  A filter program decides, per
    system call, among ALLOW / ERRNO / TRAP (SIGSYS) / KILL.

    The expressiveness boundary the paper points out is visible in the
    types: a filter sees the syscall number, the instruction pointer
    and the six {e register} arguments — it can never dereference a
    pointer argument, which is why seccomp alone cannot support deep
    argument inspection. *)

(* Offsets into struct seccomp_data, as on Linux x86-64. *)
let data_nr = 0
let data_arch = 4
let data_ip = 8
let data_arg n = 16 + (8 * n)

type action =
  | Allow
  | Errno of int  (** fail the syscall with -errno, kernel not entered *)
  | Trap  (** deliver SIGSYS to the process *)
  | Kill  (** kill the process *)
  | Log  (** allow, but count (SECCOMP_RET_LOG) *)

(* Precedence, most restrictive first (kernel semantics when multiple
   filters are installed). *)
let action_rank = function Kill -> 0 | Trap -> 1 | Errno _ -> 2 | Log -> 3 | Allow -> 4

type insn =
  | Ld of int  (** A := seccomp_data[offset] (32/64-bit as stored) *)
  | Jeq of int * int * int  (** if A = k then skip jt else skip jf *)
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int  (** if A land k <> 0 *)
  | And of int  (** A := A land k *)
  | Ret of action

type filter = insn array

type data = { nr : int; arch : int; ip : int; args : int array }

exception Bad_filter of string

(** Evaluate one filter over one syscall.  The kernel validates
    programs at install time; here malformed jumps surface as
    [Bad_filter]. *)
let eval (f : filter) (d : data) : action =
  let load off =
    if off = data_nr then d.nr
    else if off = data_arch then d.arch
    else if off = data_ip then d.ip
    else
      let rec find n = if n >= 6 then raise (Bad_filter "bad load offset")
        else if off = data_arg n then d.args.(n)
        else find (n + 1)
      in
      find 0
  in
  let acc = ref 0 in
  let pc = ref 0 in
  let result = ref None in
  let steps = ref 0 in
  while !result = None do
    incr steps;
    if !steps > 4096 then raise (Bad_filter "filter does not terminate");
    if !pc < 0 || !pc >= Array.length f then raise (Bad_filter "fell off the program");
    let jump jt jf cond = pc := !pc + 1 + (if cond then jt else jf) in
    (match f.(!pc) with
    | Ld off ->
      acc := load off;
      incr pc
    | Jeq (k, jt, jf) -> jump jt jf (!acc = k)
    | Jgt (k, jt, jf) -> jump jt jf (!acc > k)
    | Jge (k, jt, jf) -> jump jt jf (!acc >= k)
    | Jset (k, jt, jf) -> jump jt jf (!acc land k <> 0)
    | And k ->
      acc := !acc land k;
      incr pc
    | Ret a -> result := Some a)
  done;
  Option.get !result

(** Evaluate a filter stack: every installed filter runs; the most
    restrictive verdict wins (kernel semantics). *)
let eval_all (filters : filter list) (d : data) : action =
  List.fold_left
    (fun best f ->
      let a = eval f d in
      if action_rank a < action_rank best then a else best)
    Allow filters

(* ------------------------------------------------------------------ *)
(* Builders (the libseccomp-style convenience layer)                   *)

(** [policy ~default rules]: per-syscall-number actions with a default.
    Compiles to a linear match, like seccomp_export_bpf output. *)
let policy ~default (rules : (int * action) list) : filter =
  let body =
    List.concat_map
      (fun (nr, act) -> [ Jeq (nr, 0, 1) (* fall through to ret *); Ret act ])
      rules
  in
  Array.of_list ((Ld data_nr :: body) @ [ Ret default ])

(** Trap every syscall whose instruction pointer lies outside
    [lo, hi) — the recipe a seccomp-based interposer uses so that its
    own handler's re-issued syscalls are not re-trapped. *)
let trap_outside_ip_range ~lo ~hi : filter =
  [|
    Ld data_ip;
    Jge (lo, 0, 2) (* ip < lo -> Ret Trap *);
    Jge (hi, 1, 0) (* ip >= hi -> Ret Trap, else Ret Allow *);
    Ret Allow;
    Ret Trap;
  |]

(** Deny a syscall unless a register argument matches: demonstrates
    both what seccomp {e can} check (register values) and what it
    cannot (memory behind pointers). *)
let arg_equals ~nr ~arg ~value ~mismatch : filter =
  [|
    Ld data_nr;
    Jeq (nr, 0, 4) (* other syscalls: allow *);
    Ld (data_arg arg);
    Jeq (value, 0, 1);
    Ret Allow;
    Ret mismatch;
    Ret Allow;
  |]
