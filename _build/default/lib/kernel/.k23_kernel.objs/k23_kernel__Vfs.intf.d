lib/kernel/vfs.mli: Bytes Hashtbl
