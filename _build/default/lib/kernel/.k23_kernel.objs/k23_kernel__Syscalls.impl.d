lib/kernel/syscalls.ml: Array Buffer Bytes Errno Filename Hashtbl K23_machine Kern List Mapper Memory Net Option Printf Regs String Sysno Vfs
