lib/kernel/kern.ml: Array Bpf Buffer Cost Cpu Hashtbl Icache K23_isa K23_machine K23_util List Memory Net Option Printf Regs String Sysno Vfs
