lib/kernel/sysno.ml: Printf
