lib/kernel/world.ml: Kern List Loader Syscalls Vfs
