lib/kernel/bpf.ml: Array List Option
