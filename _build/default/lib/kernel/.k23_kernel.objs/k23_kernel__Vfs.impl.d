lib/kernel/vfs.ml: Bytes Errno Filename Hashtbl List Option String
