lib/kernel/mapper.ml: Bytes Hashtbl K23_isa K23_machine Kern List Memory Option String
