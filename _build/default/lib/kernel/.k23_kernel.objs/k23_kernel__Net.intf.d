lib/kernel/net.mli: Bytes Hashtbl
