lib/kernel/net.ml: Buffer Bytes Hashtbl
