lib/kernel/bpf.mli:
