lib/kernel/loader.ml: Array Asm Bytes Errno Filename Hashtbl K23_isa K23_machine K23_util Kern List Mapper Memory Option Regs String Sysno
