(** Proof-of-Concept programs for the System Call Interposition
    Pitfalls (Section 4).  Each PoC is a small binary for the simulated
    machine; {!Harness} runs them under each interposer and classifies
    the outcome into the paper's Table 3. *)

open K23_isa
open K23_kernel

(* ------------------------------------------------------------------ *)
(* Shared target: 10 invocations of the non-existent syscall 500, then
   write+exit. *)

let target_path = "/bin/poc_target"

let target_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, 10));
    Asm.Label "t_loop";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "t_loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

(* ------------------------------------------------------------------ *)
(* P1a — interposition bypass via environment scrubbing (Listing 1):
   fork, then execve the target with an empty environment. *)

let p1a_path = "/bin/poc_p1a"

let p1a_items =
  [
    Asm.Label "main";
    Asm.Call_sym "fork";
    Asm.I (Insn.Test_rr (RAX, RAX));
    Asm.Jc (Insn.Z, "child");
    (* parent: wait for the child, then exit 0 *)
    Asm.I (Insn.Mov_ri (RDI, -1));
    Asm.I (Insn.Xor_rr (RSI, RSI));
    Asm.I (Insn.Xor_rr (RDX, RDX));
    Asm.Call_sym "wait4";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Label "child";
    (* execve("/bin/poc_target", argv, envp = { NULL }): LD_PRELOAD is
       not inherited — Listing 1 of the paper *)
    Asm.Mov_sym (RDI, "tpath");
    Asm.Mov_sym (RSI, "argvv");
    Asm.I (Insn.Xor_rr (RDX, RDX));  (* envp = NULL *)
    Asm.Call_sym "execve";
    Asm.I (Insn.Mov_ri (RDI, 9));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "tpath";
    Asm.Strz target_path;
    Asm.Label "argvv";
    Asm.Quad 0;
  ]

(* ------------------------------------------------------------------ *)
(* P1b — disable SUD-based interposition via prctl (Listing 2), then
   issue fresh (never-before-executed) syscalls. *)

let p1b_path = "/bin/poc_p1b"

let p1b_items =
  [
    Asm.Label "main";
    (* prctl(PR_SET_SYSCALL_USER_DISPATCH, PR_SYS_DISPATCH_OFF, 0,0,0) —
       issued through libc syscall(2) like the paper's Listing 2 *)
    Asm.I (Insn.Mov_ri (RDI, Sysno.prctl));
    Asm.I (Insn.Mov_ri (RSI, Sysno.pr_set_syscall_user_dispatch));
    Asm.I (Insn.Mov_ri (RDX, Sysno.pr_sys_dispatch_off));
    Asm.I (Insn.Mov_ri (RCX, 0));
    Asm.I (Insn.Mov_ri (R8, 0));
    Asm.I (Insn.Mov_ri (R9, 0));
    Asm.Call_sym "syscall";
    (* now issue 10 syscall-500s from a site that was never executed
       before the prctl — a lazy rewriter has had no chance to claim it *)
    Asm.I (Insn.Mov_ri (R13, 10));
    Asm.Label "after_off";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "after_off");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

(* ------------------------------------------------------------------ *)
(* P2a — syscalls from code that did not exist at load time: mmap an
   anonymous rwx page, copy a freshly generated stub into it, call it
   10 times. *)

let p2a_path = "/bin/poc_p2a"

(* the generated code: mov rax, 500; syscall; ret *)
let jit_stub =
  Encode.assemble [ Mov_ri (RAX, Sysno.bench_nonexistent); Syscall; Ret ]

let p2a_items =
  [
    Asm.Label "main";
    (* mmap(NULL, 4096, RWX, ANON, -1, 0) *)
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RSI, 4096));
    Asm.I (Insn.Mov_ri (RDX, 7));
    Asm.I (Insn.Mov_ri (RCX, 0x20));
    Asm.I (Insn.Mov_ri (R8, -1));
    Asm.I (Insn.Mov_ri (R9, 0));
    Asm.Call_sym "mmap";
    Asm.I (Insn.Mov_rr (R14, RAX));
    (* memcpy(page, stub, len) *)
    Asm.I (Insn.Mov_rr (RDI, R14));
    Asm.Mov_sym (RSI, "stub");
    Asm.I (Insn.Mov_ri (RDX, Bytes.length jit_stub));
    Asm.Call_sym "memcpy";
    (* call it 10 times *)
    Asm.I (Insn.Mov_ri (R13, 10));
    Asm.Label "jit_loop";
    Asm.I (Insn.Call_reg R14);
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "jit_loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "stub";
    Asm.Blob jit_stub;
  ]

(* ------------------------------------------------------------------ *)
(* P2b — startup-window and vdso blindness: the program itself only
   calls clock_gettime (vdso fast path when available) a few times;
   the startup syscalls come from the loader. *)

let p2b_path = "/bin/poc_p2b"

let p2b_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, 10));
    Asm.Label "cg_loop";
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.Mov_sym (RSI, "ts");
    Asm.Call_sym "clock_gettime";
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "cg_loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "ts";
    Asm.Zeros 16;
  ]

(* ------------------------------------------------------------------ *)
(* P3a — embedded data in an executable page that a linear sweep
   misreads as syscall instructions.  The program treats the blob as
   data (a lookup table) and verifies its integrity. *)

let p3a_path = "/bin/poc_p3a"

(* a "jump table" whose byte pattern contains 0f 05 pairs at decode
   positions a linear sweep will reach *)
let p3a_blob = Bytes.of_string "\x0f\x05\x11\x22\x0f\x05\x33\x44\x0f\x34\x55\x66"

let p3a_host_fns =
  [
    ( "check_table",
      fun (ctx : Kern.ctx) ->
        let p = ctx.thread.t_proc in
        match Mapper.image_sym p (List.find (fun r -> r.Kern.r_owner = Kern.App) p.regions |> fun r -> Option.get r.Kern.r_image) "table" with
        | Some addr ->
          let got = K23_machine.Memory.read_bytes_raw p.mem addr (Bytes.length p3a_blob) in
          K23_machine.Regs.set ctx.thread.regs RAX (if Bytes.equal got p3a_blob then 0 else 1)
        | None -> K23_machine.Regs.set ctx.thread.regs RAX 2 );
  ]

let p3a_items =
  [
    Asm.Label "main";
    (* a couple of real syscalls around the table read *)
    Asm.Call_sym "getpid";
    Asm.Vcall_named "check_table";
    Asm.I (Insn.Mov_rr (RDI, RAX));
    Asm.Call_sym "exit";
    (* embedded data inside the text section, after the code *)
    Asm.Label "table";
    Asm.Blob p3a_blob;
  ]

(* ------------------------------------------------------------------ *)
(* P3b — attack-induced misidentification: control flow is redirected
   into the middle of a longer instruction whose immediate encodes
   [0f 05 c3] (syscall; ret).  A lazy rewriter will "rewrite" those
   bytes, corrupting the instruction. *)

let p3b_path = "/bin/poc_p3b"

(* mov eax, 0x00c3050f : bytes b8 0f 05 c3 00.  Jumping to gadget+1
   executes syscall; ret. *)
let p3b_gadget = Bytes.of_string "\xb8\x0f\x05\xc3\x00"

let p3b_host_fns =
  [
    ( "check_gadget",
      fun (ctx : Kern.ctx) ->
        let p = ctx.thread.t_proc in
        let im =
          List.find (fun r -> r.Kern.r_owner = Kern.App) p.regions |> fun r ->
          Option.get r.Kern.r_image
        in
        match Mapper.image_sym p im "gadget" with
        | Some addr ->
          let got = K23_machine.Memory.read_bytes_raw p.mem addr (Bytes.length p3b_gadget) in
          K23_machine.Regs.set ctx.thread.regs RAX (if Bytes.equal got p3b_gadget then 0 else 1)
        | None -> K23_machine.Regs.set ctx.thread.regs RAX 2 );
  ]

(* The attack is gated on argc: the offline phase runs the benign path
   (a controlled environment, per Section 5.1); the attacker triggers
   the hijack at run time by invoking the binary with an argument. *)
let p3b_items =
  [
    Asm.Label "main";
    Asm.Call_sym "getpid";
    Asm.I (Insn.Cmp_ri (RDI, 2));
    Asm.Jc (Insn.LT, "no_attack");
    (* simulate the hijack: call into the partial instruction *)
    Asm.Mov_sym (R14, "gadget");
    Asm.I (Insn.Add_ri (R14, 1));
    Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
    Asm.I (Insn.Call_reg R14);
    Asm.Label "no_attack";
    (* integrity check on the gadget bytes *)
    Asm.Vcall_named "check_gadget";
    Asm.I (Insn.Mov_rr (RDI, RAX));
    Asm.Call_sym "exit";
    Asm.Label "gadget";
    Asm.Blob p3b_gadget;
  ]

(* ------------------------------------------------------------------ *)
(* P4a — NULL code-pointer bug: call through a NULL function pointer.
   With the trampoline mapped at 0 and no execution check, the call is
   silently misdirected into the interposer and the program "works". *)

let p4a_path = "/bin/poc_p4a"

let p4a_items =
  [
    Asm.Label "main";
    Asm.Call_sym "getpid";
    Asm.I (Insn.Cmp_ri (RDI, 2));
    Asm.Jc (Insn.LT, "skip_null");
    Asm.I (Insn.Mov_ri (R11, 0));  (* the NULL function pointer *)
    Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
    Asm.I (Insn.Call_reg R11);
    Asm.Label "skip_null";
    (* reached only if the NULL call silently "returned" (or was not
       attempted) *)
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

(* ------------------------------------------------------------------ *)
(* P5 — concurrent first executions of the same syscall site: two
   threads hammer one shared site while a lazy rewriter patches it. *)

let p5_path = "/bin/poc_p5"

let p5_items =
  [
    Asm.Label "main";
    (* mmap a stack for the worker thread *)
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RSI, 0x10000));
    Asm.I (Insn.Mov_ri (RDX, 3));
    Asm.I (Insn.Mov_ri (RCX, 0x20));
    Asm.I (Insn.Mov_ri (R8, -1));
    Asm.I (Insn.Mov_ri (R9, 0));
    Asm.Call_sym "mmap";
    Asm.I (Insn.Mov_rr (RSI, RAX));
    Asm.I (Insn.Mov_ri (R9, 0xf000));
    Asm.I (Insn.Add_rr (RSI, R9));  (* stack grows down from near the top *)
    (* clone(worker, stack, 0) *)
    Asm.Mov_sym (RDI, "worker");
    Asm.I (Insn.Mov_ri (RDX, 0));
    Asm.Call_sym "clone";
    (* main thread hammers the shared site too *)
    Asm.I (Insn.Mov_ri (R13, 300));
    Asm.Label "m_loop";
    Asm.Calll "shared_fn";
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "m_loop");
    (* wait for the worker to finish *)
    Asm.Label "m_wait";
    Asm.Mov_sym (R9, "done_flag");
    Asm.I (Insn.Load (RAX, R9, 0));
    Asm.I (Insn.Cmp_ri (RAX, 1));
    Asm.Jc (Insn.NZ, "m_wait");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Label "worker";
    Asm.I (Insn.Mov_ri (R13, 300));
    Asm.Label "w_loop";
    Asm.Calll "shared_fn";
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "w_loop");
    Asm.Mov_sym (R9, "done_flag");
    Asm.I (Insn.Mov_ri (RAX, 1));
    Asm.I (Insn.Store (R9, 0, RAX));
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit_thread";
    (* the shared syscall site *)
    Asm.Label "shared_fn";
    Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
    Asm.Label "shared_site";
    Asm.I Insn.Syscall;
    Asm.I Insn.Ret;
    Asm.Section `Data;
    Asm.Label "done_flag";
    Asm.Quad 0;
  ]

(** Register every PoC binary in a world. *)
let register_all w =
  let open K23_userland in
  ignore (Sim.register_app w ~path:target_path target_items);
  ignore (Sim.register_app w ~path:p1a_path p1a_items);
  ignore (Sim.register_app w ~path:p1b_path p1b_items);
  ignore (Sim.register_app w ~path:p2a_path p2a_items);
  ignore (Sim.register_app w ~path:p2b_path p2b_items);
  ignore (Sim.register_app w ~path:p3a_path ~host_fns:p3a_host_fns p3a_items);
  ignore (Sim.register_app w ~path:p3b_path ~host_fns:p3b_host_fns p3b_items);
  ignore (Sim.register_app w ~path:p4a_path p4a_items);
  ignore (Sim.register_app w ~path:p5_path p5_items)
