lib/pitfalls/harness.ml: Buffer Hashtbl K23_baselines K23_core K23_interpose K23_kernel K23_userland Kern List Option Pocs Printf Sim Sysno
