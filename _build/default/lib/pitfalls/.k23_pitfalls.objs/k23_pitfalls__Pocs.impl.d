lib/pitfalls/pocs.ml: Asm Bytes Encode Insn K23_isa K23_kernel K23_machine K23_userland Kern List Mapper Option Sim Sysno
