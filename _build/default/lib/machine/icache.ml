(** Per-core instruction cache model.

    Each core caches 64-byte lines on first fetch.  Lines are dropped
    when

    - the core itself writes to the line (self-snoop),
    - the core executes a serialising instruction ([Cpuid]/[Mfence]),
    - or the kernel performs a cache-coherent code write on behalf of
      any core ({!Kern.code_write_barrier}) — x86 caches are coherent,
      so cross-core stores become fetchable immediately.

    Coherence is what makes pitfall P5 bite: lazypoline's two-byte
    rewrite is two separate coherent stores, so between them every
    other core can fetch (and execute) the torn [ff 05] byte pair.
    Real hardware adds a second failure mode — already-decoded stale
    micro-ops absent explicit serialisation — which is UB and
    timing-dependent; we model the deterministic torn-write half and
    document the serialisation half (see DESIGN.md). *)

let line_size = 64

type t = { lines : (int, Bytes.t) Hashtbl.t }

let create () = { lines = Hashtbl.create 256 }

let line_base addr = addr land lnot (line_size - 1)

(** Fetch one instruction byte through the cache.  Fills the line from
    memory on miss (checking execute permission on the fill). *)
let fetch_u8 t (mem : Memory.t) addr =
  let base = line_base addr in
  match Hashtbl.find_opt t.lines base with
  | Some line -> Char.code (Bytes.get line (addr - base))
  | None ->
    Memory.check_exec mem addr;
    let line = Bytes.create line_size in
    for i = 0 to line_size - 1 do
      let b = try Memory.read_u8_raw mem (base + i) with Memory.Fault _ -> 0 in
      Bytes.set line i (Char.chr b)
    done;
    Hashtbl.replace t.lines base line;
    Char.code (Bytes.get line (addr - base))

(** Invalidate all lines overlapping [addr, addr+len): models the
    self-snoop a core performs on its own stores. *)
let invalidate_range t ~addr ~len =
  let first = line_base addr and last = line_base (addr + len - 1) in
  let b = ref first in
  while !b <= last do
    Hashtbl.remove t.lines !b;
    b := !b + line_size
  done

(** Full flush: serialising instruction executed. *)
let flush t = Hashtbl.reset t.lines

(** True when the cache currently holds a (possibly stale) copy of the
    line containing [addr]; used by tests. *)
let holds t addr = Hashtbl.mem t.lines (line_base addr)
