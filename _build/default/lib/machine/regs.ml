(** CPU register file of one simulated thread. *)

type t = {
  gpr : int array;  (** 16 general-purpose registers, indexed per {!K23_isa.Reg} *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable pkru : int;  (** protection-key rights register (2 bits/key) *)
}

let create () = { gpr = Array.make 16 0; rip = 0; zf = false; sf = false; pkru = 0 }

let get t r = t.gpr.(K23_isa.Reg.index r)
let set t r v = t.gpr.(K23_isa.Reg.index r) <- v

let copy t = { t with gpr = Array.copy t.gpr }

(** Restore [t] from [src] in place (sigreturn, ptrace SETREGS). *)
let restore t ~from =
  Array.blit from.gpr 0 t.gpr 0 16;
  t.rip <- from.rip;
  t.zf <- from.zf;
  t.sf <- from.sf;
  t.pkru <- from.pkru

let pp fmt t =
  let open K23_isa in
  List.iter
    (fun r -> Format.fprintf fmt "%s=%#x " (Reg.to_string r) (get t r))
    Reg.all;
  Format.fprintf fmt "rip=%#x zf=%b sf=%b pkru=%#x" t.rip t.zf t.sf t.pkru
