lib/machine/cpu.mli: Cost Icache Memory Regs
