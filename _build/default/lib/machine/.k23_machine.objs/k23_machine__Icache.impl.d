lib/machine/icache.ml: Bytes Char Hashtbl Memory
