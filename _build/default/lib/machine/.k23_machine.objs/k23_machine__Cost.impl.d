lib/machine/cost.ml: K23_isa
