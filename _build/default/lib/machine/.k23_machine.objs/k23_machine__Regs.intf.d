lib/machine/regs.mli: Format K23_isa
