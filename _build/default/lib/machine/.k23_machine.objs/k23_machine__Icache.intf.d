lib/machine/icache.mli: Memory
