lib/machine/memory.ml: Buffer Bytes Char Hashtbl Option Printf String
