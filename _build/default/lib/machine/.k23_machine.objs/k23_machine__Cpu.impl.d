lib/machine/cpu.ml: Cost Decode Icache Insn K23_isa Memory Regs
