lib/machine/regs.ml: Array Format K23_isa List Reg
