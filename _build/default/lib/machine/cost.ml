(** Cycle-cost model.

    The simulation measures time in deterministic "cycles".  The
    constants below are calibrated so that the *relative* overheads of
    the interposition mechanisms land where the paper's testbed
    measured them (Table 5); see EXPERIMENTS.md for the calibration
    notes.  Absolute cycle values are meaningless — only ratios are
    reported, exactly as in the paper.

    The model is a record so ablation benchmarks can vary individual
    costs. *)

type model = {
  insn : int;  (** ordinary instruction *)
  nop : int;  (** nop-sled entries are effectively free on real hardware *)
  syscall_base : int;  (** kernel entry + dispatch + exit for a fast syscall *)
  sud_armed_extra : int;
      (** extra kernel-path cost for every syscall once SUD is
          initialised, even with interposition toggled off via the
          selector ("SUD-no-interposition" in Table 5) *)
  sigsys_delivery : int;  (** building + delivering a SIGSYS signal frame *)
  sigreturn_extra : int;  (** rt_sigreturn beyond its own syscall cost *)
  ptrace_stop : int;  (** one tracee stop + tracer round trip *)
  ptrace_mem_op : int;  (** one PTRACE_PEEK/POKE-style remote access *)
}

let default =
  {
    insn = 1;
    nop = 0;
    syscall_base = 150;
    sud_armed_extra = 35;
    sigsys_delivery = 905;
    sigreturn_extra = 705;
    ptrace_stop = 3000;
    ptrace_mem_op = 400;
  }

(** Per-instruction execution cost (kernel-side trap costs are added by
    the kernel, not here). *)
let insn_cost m (i : K23_isa.Insn.t) =
  match i with
  | Nop -> m.nop
  | Cpuid | Mfence -> 30  (* serialising instructions drain the pipeline *)
  | Wrpkru | Rdpkru -> 20  (* measured ~20-60 cycles on real parts *)
  | _ -> m.insn
