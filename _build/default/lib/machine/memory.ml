(** Sparse paged virtual memory with RWX permissions and protection keys.

    Pages are 4 KiB.  Each page carries a protection key (pkey); data
    accesses are additionally checked against the accessing thread's
    PKRU register, mirroring Intel MPK semantics:

    - bit [2k] of PKRU (Access Disable) forbids all data access to
      pages tagged with key [k];
    - bit [2k+1] (Write Disable) forbids writes;
    - {b instruction fetch is never blocked by PKRU} — which is exactly
      why zpoline/lazypoline/K23 can build eXecute-Only Memory (XOM)
      out of PKU, and why NULL {e execution} is not stopped by it
      (pitfall P4a).

    The [*_raw] accessors bypass permission checks; they model kernel
    accesses (and tooling).  Checked accessors raise {!Fault}. *)

let page_size = 4096
let page_shift = 12

type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }
let perm_x = { r = false; w = false; x = true }

let perm_to_string p =
  Printf.sprintf "%c%c%c" (if p.r then 'r' else '-') (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

type access = [ `Read | `Write | `Exec ]

type fault = { fault_addr : int; access : access }

exception Fault of fault

type page = { bytes : Bytes.t; mutable perm : perm; mutable pkey : int }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable committed_bytes : int;
      (** physical memory actually allocated (touched pages) *)
  mutable reserved_bytes : int;
      (** virtual reservations including MAP_NORESERVE-style mappings
          that never allocate pages (zpoline's full-address-space
          bitmap); the basis of the P4b memory-overhead measurement *)
}

let create () = { pages = Hashtbl.create 1024; committed_bytes = 0; reserved_bytes = 0 }

let page_index addr = addr lsr page_shift

let align_down addr = addr land lnot (page_size - 1)

let align_up addr = (addr + page_size - 1) land lnot (page_size - 1)

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let find_page t addr = Hashtbl.find_opt t.pages (page_index addr)

(** [map t ~addr ~len ~perm] maps (and commits) pages covering
    [addr, addr+len).  [addr] must be page-aligned.  Already-mapped
    pages in the range are remapped fresh (MAP_FIXED semantics). *)
let map ?(pkey = 0) t ~addr ~len ~perm =
  if addr land (page_size - 1) <> 0 then invalid_arg "Memory.map: unaligned addr";
  if len <= 0 then invalid_arg "Memory.map: bad length";
  let npages = (align_up len) lsr page_shift in
  for i = 0 to npages - 1 do
    let idx = page_index addr + i in
    if not (Hashtbl.mem t.pages idx) then t.committed_bytes <- t.committed_bytes + page_size;
    Hashtbl.replace t.pages idx { bytes = Bytes.make page_size '\000'; perm; pkey }
  done;
  t.reserved_bytes <- t.reserved_bytes + (npages * page_size)

(** Record a virtual-only reservation (MAP_NORESERVE): no pages are
    committed, but the reservation is accounted, so the P4b bench can
    compare zpoline's 2^48-bit bitmap against K23's hash set. *)
let reserve t ~len = t.reserved_bytes <- t.reserved_bytes + len

let unmap t ~addr ~len =
  let npages = (align_up len) lsr page_shift in
  for i = 0 to npages - 1 do
    let idx = page_index addr + i in
    if Hashtbl.mem t.pages idx then begin
      Hashtbl.remove t.pages idx;
      t.committed_bytes <- t.committed_bytes - page_size
    end
  done;
  t.reserved_bytes <- t.reserved_bytes - (npages * page_size)

(** mprotect: change permissions of every mapped page in range. *)
let set_perm t ~addr ~len ~perm =
  let npages = (align_up (len + (addr land (page_size - 1)))) lsr page_shift in
  for i = 0 to max 0 (npages - 1) do
    match Hashtbl.find_opt t.pages (page_index addr + i) with
    | Some p -> p.perm <- perm
    | None -> ()
  done

let set_pkey t ~addr ~len ~pkey =
  let npages = (align_up (len + (addr land (page_size - 1)))) lsr page_shift in
  for i = 0 to max 0 (npages - 1) do
    match Hashtbl.find_opt t.pages (page_index addr + i) with
    | Some p -> p.pkey <- pkey
    | None -> ()
  done

let get_perm t addr = Option.map (fun p -> p.perm) (find_page t addr)
let get_pkey t addr = Option.map (fun p -> p.pkey) (find_page t addr)

(* ------------------------------------------------------------------ *)
(* Raw (kernel-view) access                                            *)

let read_u8_raw t addr =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Read })
  | Some p -> Char.code (Bytes.get p.bytes (addr land (page_size - 1)))

let write_u8_raw t addr v =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Write })
  | Some p -> Bytes.set p.bytes (addr land (page_size - 1)) (Char.chr (v land 0xff))

let read_bytes_raw t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (read_u8_raw t (addr + i)))
  done;
  out

let write_bytes_raw t addr b =
  Bytes.iteri (fun i c -> write_u8_raw t (addr + i) (Char.code c)) b

let read_u64_raw t addr =
  let rec go i acc = if i = 8 then acc else go (i + 1) (acc lor (read_u8_raw t (addr + i) lsl (8 * i))) in
  go 0 0

let write_u64_raw t addr v =
  for i = 0 to 7 do
    write_u8_raw t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

(* ------------------------------------------------------------------ *)
(* PKRU-checked (user-view) access                                     *)

let pkru_access_disabled pkru pkey = pkru land (1 lsl (2 * pkey)) <> 0
let pkru_write_disabled pkru pkey = pkru land (1 lsl ((2 * pkey) + 1)) <> 0

let check_read t ~pkru addr =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Read })
  | Some p ->
    if (not p.perm.r) || pkru_access_disabled pkru p.pkey then
      raise (Fault { fault_addr = addr; access = `Read })

let check_write t ~pkru addr =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Write })
  | Some p ->
    if
      (not p.perm.w)
      || pkru_access_disabled pkru p.pkey
      || pkru_write_disabled pkru p.pkey
    then raise (Fault { fault_addr = addr; access = `Write })

(** Instruction fetch check: exec permission only — PKU does not apply
    to fetches (the XOM / P4a story). *)
let check_exec t addr =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Exec })
  | Some p -> if not p.perm.x then raise (Fault { fault_addr = addr; access = `Exec })

let read_u8 t ~pkru addr =
  check_read t ~pkru addr;
  read_u8_raw t addr

let write_u8 t ~pkru addr v =
  check_write t ~pkru addr;
  write_u8_raw t addr v

let read_u64 t ~pkru addr =
  for i = 0 to 7 do
    check_read t ~pkru (addr + i)
  done;
  read_u64_raw t addr

let write_u64 t ~pkru addr v =
  for i = 0 to 7 do
    check_write t ~pkru (addr + i)
  done;
  write_u64_raw t addr v

let fetch_u8 t addr =
  check_exec t addr;
  read_u8_raw t addr

(* ------------------------------------------------------------------ *)

(** Deep copy, for fork(). *)
let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun idx p -> Hashtbl.replace pages idx { p with bytes = Bytes.copy p.bytes })
    t.pages;
  { pages; committed_bytes = t.committed_bytes; reserved_bytes = t.reserved_bytes }

(** C-string helpers (argv/envp live in simulated memory so that a
    ptrace-based tracer can inspect and rewrite them). *)
let read_cstr ?(max = 4096) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8_raw t (addr + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

let write_cstr t addr s =
  String.iteri (fun i c -> write_u8_raw t (addr + i) (Char.code c)) s;
  write_u8_raw t (addr + String.length s) 0
