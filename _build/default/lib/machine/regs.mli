(** Register file of one simulated thread: 16 GPRs, rip, ZF/SF flags
    and the PKRU protection-key rights register. *)

type t = {
  gpr : int array;
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable pkru : int;
}

val create : unit -> t
val get : t -> K23_isa.Reg.t -> int
val set : t -> K23_isa.Reg.t -> int -> unit

val copy : t -> t
(** Snapshot (signal frames, fork). *)

val restore : t -> from:t -> unit
(** Restore in place (sigreturn, clone child setup). *)

val pp : Format.formatter -> t -> unit
