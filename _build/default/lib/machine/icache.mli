(** Per-core instruction cache (64-byte lines).

    Lines are filled on first fetch (checking execute permission) and
    dropped on self-snoop ({!invalidate_range}), serialising
    instructions ({!flush}), or a kernel cache-coherent code write
    ([Kern.code_write_barrier]).  Coherence is what exposes
    lazypoline's torn two-byte rewrite to other cores (pitfall P5). *)

val line_size : int

type t

val create : unit -> t

val fetch_u8 : t -> Memory.t -> int -> int
(** Fetch one instruction byte through the cache; fills the containing
    line on miss.
    @raise Memory.Fault when the line's page is not executable. *)

val invalidate_range : t -> addr:int -> len:int -> unit
val flush : t -> unit

val holds : t -> int -> bool
(** Whether the cache currently holds the line containing the
    address (tests). *)
