(* Machine-layer tests: memory, PKU/XOM, I-cache, CPU semantics. *)

open K23_machine
open K23_isa

(* ---------------- memory ---------------- *)

let test_map_read_write () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8_raw m 0x1234 0xab;
  Alcotest.(check int) "byte" 0xab (Memory.read_u8_raw m 0x1234);
  Memory.write_u64_raw m 0x1100 0xdeadbeef;
  Alcotest.(check int) "u64" 0xdeadbeef (Memory.read_u64_raw m 0x1100)

let test_unmapped_faults () =
  let m = Memory.create () in
  Alcotest.check_raises "read fault"
    (Memory.Fault { fault_addr = 0x9000; access = `Read })
    (fun () -> ignore (Memory.read_u8_raw m 0x9000))

let test_perm_checks () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_r;
  Alcotest.(check int) "read ok" 0 (Memory.read_u8 m ~pkru:0 0x1000);
  Alcotest.check_raises "write faults"
    (Memory.Fault { fault_addr = 0x1000; access = `Write })
    (fun () -> Memory.write_u8 m ~pkru:0 0x1000 1);
  Memory.set_perm m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8 m ~pkru:0 0x1000 1;
  Alcotest.(check int) "after mprotect" 1 (Memory.read_u8 m ~pkru:0 0x1000)

(* XOM via PKU: data reads blocked, instruction fetch allowed — the
   property both trampolines rely on (and the hole of P4a). *)
let test_pku_xom () =
  let m = Memory.create () in
  Memory.map m ~addr:0 ~len:4096 ~perm:Memory.perm_rx ~pkey:1;
  let pkru = 1 lsl 2 (* AD for key 1 *) in
  Alcotest.check_raises "PKU blocks data read"
    (Memory.Fault { fault_addr = 0; access = `Read })
    (fun () -> ignore (Memory.read_u8 m ~pkru 0));
  (* fetch is NOT blocked by PKU *)
  Alcotest.(check int) "fetch allowed" 0 (Memory.fetch_u8 m 0)

let test_fetch_needs_exec () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Alcotest.check_raises "NX fetch faults"
    (Memory.Fault { fault_addr = 0x1000; access = `Exec })
    (fun () -> ignore (Memory.fetch_u8 m 0x1000))

let test_clone_is_deep () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8_raw m 0x1000 7;
  let c = Memory.clone m in
  Memory.write_u8_raw m 0x1000 9;
  Alcotest.(check int) "clone unaffected" 7 (Memory.read_u8_raw c 0x1000)

let test_cstr_roundtrip () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_cstr m 0x1500 "hello";
  Alcotest.(check string) "cstr" "hello" (Memory.read_cstr m 0x1500)

let test_reservation_accounting () =
  let m = Memory.create () in
  Memory.reserve m ~len:(1 lsl 45);
  Alcotest.(check int) "reserved" (1 lsl 45) m.reserved_bytes;
  Alcotest.(check int) "not committed" 0 m.committed_bytes

let prop_memory_bytes =
  QCheck.Test.make ~name:"memory: write/read byte roundtrip" ~count:500
    QCheck.(pair (int_range 0 4095) (int_range 0 255))
    (fun (off, v) ->
      let m = Memory.create () in
      Memory.map m ~addr:0x2000 ~len:4096 ~perm:Memory.perm_rw;
      Memory.write_u8_raw m (0x2000 + off) v;
      Memory.read_u8_raw m (0x2000 + off) = v)

(* ---------------- icache ---------------- *)

let test_icache_caches_stale () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.write_u8_raw m 0x1000 0x90;
  let ic = Icache.create () in
  Alcotest.(check int) "first fetch" 0x90 (Icache.fetch_u8 ic m 0x1000);
  (* an uncoordinated raw write is invisible through the cache *)
  Memory.write_u8_raw m 0x1000 0xc3;
  Alcotest.(check int) "stale without invalidate" 0x90 (Icache.fetch_u8 ic m 0x1000);
  Icache.invalidate_range ic ~addr:0x1000 ~len:1;
  Alcotest.(check int) "fresh after invalidate" 0xc3 (Icache.fetch_u8 ic m 0x1000)

let test_icache_flush () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  let ic = Icache.create () in
  ignore (Icache.fetch_u8 ic m 0x1040);
  Alcotest.(check bool) "holds" true (Icache.holds ic 0x1040);
  Icache.flush ic;
  Alcotest.(check bool) "flushed" false (Icache.holds ic 0x1040)

(* ---------------- cpu ---------------- *)

let exec_prog ?(steps = 100) insns =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.map m ~addr:0x8000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_bytes_raw m 0x1000 (Encode.assemble insns);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  Regs.set regs RSP 0x8800;
  let ic = Icache.create () in
  let trap = ref None in
  (try
     for _ = 1 to steps do
       match Cpu.step regs m ic with
       | Cpu.Stepped _ -> ()
       | Cpu.Trapped (t, _) ->
         trap := Some t;
         raise Exit
     done
   with Exit -> ());
  (regs, !trap)

let test_arith_flags () =
  let regs, _ =
    exec_prog [ Mov_ri (RAX, 5); Sub_ri (RAX, 5); Hlt ]
  in
  Alcotest.(check bool) "zf set" true regs.zf;
  Alcotest.(check int) "rax zero" 0 (Regs.get regs RAX)

let test_branching () =
  let regs, _ =
    exec_prog
      [ Mov_ri (RAX, 3); Cmp_ri (RAX, 3); Jcc (Z, 11); Mov_ri (RBX, 111); Hlt; Mov_ri (RBX, 222); Hlt ]
  in
  (* jz +11 skips the 10-byte mov rbx,111 and the hlt *)
  Alcotest.(check int) "took branch" 222 (Regs.get regs RBX)

let test_push_pop_call_ret () =
  let regs, _ =
    exec_prog
      [
        Mov_ri (RAX, 42);
        Push RAX;
        Mov_ri (RAX, 0);
        Pop RBX;
        Call_rel 1; (* call next+1: skips the hlt below? no: call jumps forward 1 byte *)
        Hlt;
        Mov_ri (RCX, 7);
        Hlt;
      ]
  in
  Alcotest.(check int) "pop" 42 (Regs.get regs RBX);
  Alcotest.(check int) "call target ran" 7 (Regs.get regs RCX)

let test_syscall_clobbers () =
  (* x86-64: syscall sets rcx to the next rip and clobbers r11 — the
     behaviour K23's trampoline exploits *)
  let regs, trap = exec_prog [ Mov_ri (RAX, 39); Syscall; Hlt ] in
  (match trap with
  | Some (Cpu.Syscall_trap { site; kind = `Syscall }) ->
    Alcotest.(check int) "site" (0x1000 + 10) site;
    Alcotest.(check int) "rcx = next rip" (0x1000 + 12) (Regs.get regs RCX)
  | _ -> Alcotest.fail "expected syscall trap");
  Alcotest.(check int) "rip advanced" (0x1000 + 12) regs.rip

let test_vcall_trap () =
  let _, trap = exec_prog [ Vcall 5 ] in
  match trap with
  | Some (Cpu.Vcall_trap 5) -> ()
  | _ -> Alcotest.fail "expected vcall trap"

let test_ud_on_garbage () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.write_u8_raw m 0x1000 0xfe (* not a valid first byte *);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  let ic = Icache.create () in
  match Cpu.step regs m ic with
  | Cpu.Trapped (Cpu.Ud_trap 0x1000, _) -> ()
  | _ -> Alcotest.fail "expected #UD"

(* torn lazypoline bytes decode to #UD: the P5 crash mechanism *)
let test_torn_rewrite_is_ud () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  (* original syscall, first byte already rewritten: ff 05 *)
  Memory.write_bytes_raw m 0x1000 (Bytes.of_string "\xff\x05");
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  match Cpu.step regs m (Icache.create ()) with
  | Cpu.Trapped (Cpu.Ud_trap _, _) -> ()
  | _ -> Alcotest.fail "torn bytes must fault"

let test_wrpkru () =
  let regs, _ = exec_prog [ Mov_ri (RAX, 0xc); Wrpkru; Hlt ] in
  Alcotest.(check int) "pkru loaded" 0xc regs.pkru

let tests =
  ( "machine",
    [
      Alcotest.test_case "map/read/write" `Quick test_map_read_write;
      Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
      Alcotest.test_case "permission checks" `Quick test_perm_checks;
      Alcotest.test_case "PKU XOM (fetch allowed, read blocked)" `Quick test_pku_xom;
      Alcotest.test_case "NX fetch faults" `Quick test_fetch_needs_exec;
      Alcotest.test_case "clone is deep" `Quick test_clone_is_deep;
      Alcotest.test_case "cstr roundtrip" `Quick test_cstr_roundtrip;
      Alcotest.test_case "MAP_NORESERVE accounting" `Quick test_reservation_accounting;
      QCheck_alcotest.to_alcotest prop_memory_bytes;
      Alcotest.test_case "icache serves stale lines" `Quick test_icache_caches_stale;
      Alcotest.test_case "icache flush" `Quick test_icache_flush;
      Alcotest.test_case "arithmetic flags" `Quick test_arith_flags;
      Alcotest.test_case "conditional branch" `Quick test_branching;
      Alcotest.test_case "push/pop/call/ret" `Quick test_push_pop_call_ret;
      Alcotest.test_case "syscall clobbers rcx/r11" `Quick test_syscall_clobbers;
      Alcotest.test_case "vcall trap" `Quick test_vcall_trap;
      Alcotest.test_case "#UD on garbage" `Quick test_ud_on_garbage;
      Alcotest.test_case "torn rewrite is #UD (P5)" `Quick test_torn_rewrite_is_ud;
      Alcotest.test_case "wrpkru" `Quick test_wrpkru;
    ] )
