(* P2a, dlopen flavour: syscalls from a library loaded at runtime via
   dlopen (the paper names dlopen/dlmopen explicitly in Section 2.2.2)
   are invisible to load-time rewriting but caught by SUD-based
   mechanisms. *)

open K23_isa
open K23_kernel
open K23_userland
module Zp = K23_baselines.Zpoline
module Lp = K23_baselines.Lazypoline
module K23 = K23_core.K23

let plugin_path = "/usr/lib/plugin.so"

(* the plugin: one exported function issuing syscall 500 *)
let plugin_image : Kern.image =
  {
    im_name = plugin_path;
    im_prog =
      Asm.assemble
        [
          Asm.Label "plugin_fn";
          Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
          Asm.I Insn.Syscall;
          Asm.I Insn.Ret;
        ];
    im_host_fns = [];
    im_init = None;
    im_entry = None;
    im_needed = [];
    im_owner = Lib "plugin.so";
  }

let app_items =
  [
    Asm.Label "main";
    (* handle = dlopen("/usr/lib/plugin.so") *)
    Asm.Mov_sym (RDI, "plug");
    Asm.Call_sym "dlopen";
    (* fn = dlsym(handle, "plugin_fn") *)
    Asm.I (Insn.Mov_rr (RDI, RAX));
    Asm.Mov_sym (RSI, "sym");
    Asm.Call_sym "dlsym";
    Asm.I (Insn.Mov_rr (R14, RAX));
    (* call it 10 times *)
    Asm.I (Insn.Mov_ri (R13, 10));
    Asm.Label "loop";
    Asm.I (Insn.Call_reg R14);
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "plug";
    Asm.Strz plugin_path;
    Asm.Label "sym";
    Asm.Strz "plugin_fn";
  ]

let make_world () =
  let w = Sim.create_world () in
  Kern.register_library w plugin_image;
  ignore (Sim.register_app w ~path:"/bin/plugged" app_items);
  w

let count_500 (stats : K23_interpose.Interpose.stats) =
  Option.value ~default:0 (Hashtbl.find_opt stats.by_nr Sysno.bench_nonexistent)

let test_zpoline_misses_dlopened () =
  let w = make_world () in
  match Zp.launch w ~variant:Zp.Default ~path:"/bin/plugged" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "dlopen'ed syscalls escape zpoline (P2a)" 0 (count_500 stats)

let test_lazypoline_catches_dlopened () =
  let w = make_world () in
  match Lp.launch w ~path:"/bin/plugged" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "lazypoline interposes them" 10 (count_500 stats)

let test_k23_catches_dlopened () =
  let w = make_world () in
  ignore (K23.offline_run w ~path:"/bin/plugged" ());
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Ultra ~path:"/bin/plugged" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "K23 interposes them (SUD fallback)" 10 (count_500 stats);
    Alcotest.(check int) "still exhaustive" p.counters.c_app stats.interposed

(* the offline logger deliberately refuses to log dlopen'ed regions?
   No — a dlopen'ed library IS an expected executable non-writable
   region, so it may be logged and later rewritten if it is mapped
   again; what is never logged is truly dynamic (anonymous rwx)
   code.  Verify the anonymous-region filter: *)
let test_logger_skips_anon_code () =
  let w = Sim.create_world () in
  K23_pitfalls.Pocs.register_all w;
  let entries = K23.offline_run w ~path:K23_pitfalls.Pocs.p2a_path () in
  Alcotest.(check bool) "no [anon] regions in logs" true
    (List.for_all
       (fun e -> e.K23_core.Log_store.region.[0] = '/')
       entries)

let tests =
  ( "dlopen (P2a variant)",
    [
      Alcotest.test_case "zpoline misses dlopen'ed code" `Quick test_zpoline_misses_dlopened;
      Alcotest.test_case "lazypoline catches it" `Quick test_lazypoline_catches_dlopened;
      Alcotest.test_case "K23 catches it, exhaustively" `Quick test_k23_catches_dlopened;
      Alcotest.test_case "offline logger skips anonymous code" `Quick test_logger_skips_anon_code;
    ] )
