(* End-to-end boot tests: a hello-world binary runs through the full
   loader pipeline (interpreter syscalls, relocation, constructors,
   main, exit) on the simulated kernel. *)

open K23_isa
open K23_kernel
open K23_userland

let hello_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "msg");
    Asm.I (Insn.Mov_ri (RDX, 14));
    Asm.Call_sym "write";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "msg";
    Asm.Strz "hello, world!\n";
  ]

let boot_hello ?env () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/hello" hello_items);
  let p = Sim.run_to_exit w ~path:"/bin/hello" ?env () in
  (w, p)

let test_hello_runs () =
  let _w, p = boot_hello () in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check string) "stdout" "hello, world!\n" (World.stdout_of p)

let test_startup_syscalls_counted () =
  let _w, p = boot_hello () in
  (* loader boilerplate + per-library sequences + libc constructor all
     happen before main; with no LD_PRELOAD, startup_done is set just
     before entering main *)
  Alcotest.(check bool)
    (Printf.sprintf "many startup syscalls (%d)" p.counters.c_startup)
    true
    (p.counters.c_startup > 20)

let test_ground_truth_counting () =
  let _w, p = boot_hello () in
  (* the write from main and the exit_group must be counted as app
     syscalls after startup *)
  let post_startup = p.counters.c_app - p.counters.c_startup in
  Alcotest.(check bool) "app syscalls after startup" true (post_startup >= 2)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_maps_has_regions () =
  let _w, p = boot_hello () in
  let maps = Kern.maps_string p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("maps contains " ^ needle) true (contains_substring maps needle))
    [ "libc.so.6"; "/bin/hello"; "[stack]"; "ld-linux" ]

let test_aslr_offsets_stable () =
  (* two boots: libc base differs, but the offset of the write wrapper
     within libc is identical — the invariant K23's offline logs rely
     on *)
  let base_and_sym seed =
    let w = Sim.create_world ~seed () in
    ignore (Sim.register_app w ~path:"/bin/hello" hello_items);
    let p = Sim.run_to_exit w ~path:"/bin/hello" () in
    let r =
      List.find (fun r -> r.Kern.r_name = Libc.path && r.Kern.r_sec = `Text) p.regions
    in
    let sym = Hashtbl.find p.globals "write" in
    (r.Kern.r_start, sym - r.Kern.r_start)
  in
  let b1, o1 = base_and_sym 1 in
  let b2, o2 = base_and_sym 2 in
  Alcotest.(check bool) "bases differ under ASLR" true (b1 <> b2);
  Alcotest.(check int) "offsets stable" o1 o2

let test_vdso_mapped_by_default () =
  let _w, p = boot_hello () in
  Alcotest.(check bool) "vdso region present" true
    (List.exists (fun r -> r.Kern.r_owner = Kern.Vdso) p.regions)

let test_env_passed () =
  let _w, p = boot_hello ~env:[ "FOO=bar"; "LD_PRELOAD=" ] () in
  Alcotest.(check (option string)) "env visible" (Some "bar") (List.assoc_opt "FOO" p.env)

(* a program with two threads via clone(): both run and exit *)
let threads_items =
  [
    Asm.Label "main";
    (* clone(child, stack, arg) *)
    Asm.Mov_sym (RDI, "child");
    Asm.I (Insn.Mov_ri (RSI, 0x7ff0_0000));
    Asm.I (Insn.Mov_ri (RDX, 7));
    Asm.Call_sym "clone";
    (* parent: wait a bit, then check the flag the child set *)
    Asm.Label "spin";
    Asm.Call_sym "sched_yield";
    Asm.Mov_sym (R9, "flag");
    Asm.I (Insn.Load (RAX, R9, 0));
    Asm.I (Insn.Cmp_ri (RAX, 1));
    Asm.Jc (Insn.NZ, "spin");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Label "child";
    Asm.Mov_sym (R9, "flag");
    Asm.I (Insn.Mov_ri (RAX, 1));
    Asm.I (Insn.Store (R9, 0, RAX));
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit_thread";
    Asm.Section `Data;
    Asm.Label "flag";
    Asm.Quad 0;
  ]

let test_threads () =
  let w = Sim.create_world () in
  (* the clone child needs a stack: map one eagerly via a tiny init — here
     we just reuse a high scratch address; give it a page *)
  ignore (Sim.register_app w ~path:"/bin/threads" threads_items);
  match World.spawn w ~path:"/bin/threads" () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    (* pre-map the child stack region the program hardcodes *)
    K23_machine.Memory.map p.mem ~addr:0x7fef_0000 ~len:0x10000 ~perm:K23_machine.Memory.perm_rw;
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status

(* fork + wait4 *)
let fork_items =
  [
    Asm.Label "main";
    Asm.Call_sym "fork";
    Asm.I (Insn.Test_rr (RAX, RAX));
    Asm.Jc (Insn.Z, "in_child");
    (* parent: wait4(-1, 0, 0, 0) *)
    Asm.I (Insn.Mov_ri (RDI, -1));
    Asm.I (Insn.Xor_rr (RSI, RSI));
    Asm.I (Insn.Xor_rr (RDX, RDX));
    Asm.Call_sym "wait4";
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.Call_sym "exit";
    Asm.Label "in_child";
    Asm.I (Insn.Mov_ri (RDI, 7));
    Asm.Call_sym "exit";
  ]

let test_fork_wait () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/forker" fork_items);
  let p = Sim.run_to_exit w ~path:"/bin/forker" () in
  Alcotest.(check (option int)) "parent exit 0" (Some 0) p.exit_status;
  let child =
    List.find (fun q -> match q.Kern.parent with Some pp -> pp == p | None -> false) w.procs
  in
  Alcotest.(check (option int)) "child exit 7" (Some 7) child.exit_status

let tests =
  ( "boot",
    [
      Alcotest.test_case "hello world" `Quick test_hello_runs;
      Alcotest.test_case "startup syscalls (P2b substrate)" `Quick test_startup_syscalls_counted;
      Alcotest.test_case "ground-truth counters" `Quick test_ground_truth_counting;
      Alcotest.test_case "maps content" `Quick test_maps_has_regions;
      Alcotest.test_case "ASLR: bases move, offsets stable" `Quick test_aslr_offsets_stable;
      Alcotest.test_case "vdso mapped by default" `Quick test_vdso_mapped_by_default;
      Alcotest.test_case "environment passing" `Quick test_env_passed;
      Alcotest.test_case "threads via clone" `Quick test_threads;
      Alcotest.test_case "fork + wait4" `Quick test_fork_wait;
    ] )
