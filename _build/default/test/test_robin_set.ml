(* Robin-Hood hash set: unit tests + model-based qcheck against a
   reference implementation. *)

module R = K23_core.Robin_set

let test_basic () =
  let t = R.create () in
  Alcotest.(check bool) "empty" false (R.mem t 42);
  R.add t 42;
  Alcotest.(check bool) "mem" true (R.mem t 42);
  Alcotest.(check int) "card" 1 (R.cardinal t);
  R.add t 42;
  Alcotest.(check int) "idempotent add" 1 (R.cardinal t);
  Alcotest.(check bool) "remove" true (R.remove t 42);
  Alcotest.(check bool) "gone" false (R.mem t 42);
  Alcotest.(check bool) "remove missing" false (R.remove t 42)

let test_grows () =
  let t = R.create ~capacity:8 () in
  for i = 0 to 999 do
    R.add t (i * 7919)
  done;
  Alcotest.(check int) "cardinal" 1000 (R.cardinal t);
  for i = 0 to 999 do
    Alcotest.(check bool) (Printf.sprintf "mem %d" i) true (R.mem t (i * 7919))
  done;
  Alcotest.(check bool) "load factor <= 0.75" true
    (R.cardinal t * 4 <= R.capacity t * 3)

let test_clustered_keys () =
  (* syscall sites are page-base + small offsets: heavy clustering *)
  let t = R.create () in
  let keys = List.init 200 (fun i -> 0x7f0000_0000 + (i * 2)) in
  List.iter (R.add t) keys;
  List.iter (fun k -> Alcotest.(check bool) "clustered mem" true (R.mem t k)) keys;
  Alcotest.(check bool) "near miss" false (R.mem t (0x7f0000_0000 + 401))

let test_to_list_sorted () =
  let t = R.of_list [ 5; 3; 9; 3; 1 ] in
  Alcotest.(check (list int)) "sorted uniq" [ 1; 3; 5; 9 ] (R.to_list t)

let test_memory_bytes_small () =
  let t = R.of_list (List.init 92 (fun i -> i * 1000)) in
  (* Table 2's biggest log (redis, 92 sites) still needs ~1-2 KiB *)
  Alcotest.(check bool) "small footprint" true (R.memory_bytes t < 4096)

(* model-based: random add/remove/mem sequences agree with Hashtbl *)
let prop_model =
  let open QCheck in
  let op =
    Gen.oneof
      [
        Gen.map (fun k -> `Add k) (Gen.int_range 0 200);
        Gen.map (fun k -> `Remove k) (Gen.int_range 0 200);
        Gen.map (fun k -> `Mem k) (Gen.int_range 0 200);
      ]
  in
  Test.make ~name:"robin_set agrees with Hashtbl model" ~count:1000
    (make Gen.(list_size (int_range 0 200) op))
    (fun ops ->
      let t = R.create () in
      let model = Hashtbl.create 64 in
      List.for_all
        (function
          | `Add k ->
            R.add t k;
            Hashtbl.replace model k ();
            R.cardinal t = Hashtbl.length model
          | `Remove k ->
            let was = Hashtbl.mem model k in
            Hashtbl.remove model k;
            R.remove t k = was && R.cardinal t = Hashtbl.length model
          | `Mem k -> R.mem t k = Hashtbl.mem model k)
        ops)

(* invariant: after any add sequence, every inserted key is found and
   no others are *)
let prop_complete =
  let open QCheck in
  Test.make ~name:"robin_set completeness" ~count:500
    (make Gen.(list_size (int_range 0 100) (int_range 0 1_000_000)))
    (fun keys ->
      let t = R.of_list keys in
      List.for_all (R.mem t) keys
      && R.cardinal t = List.length (List.sort_uniq compare keys))

let tests =
  ( "robin_set",
    [
      Alcotest.test_case "basic ops" `Quick test_basic;
      Alcotest.test_case "growth under load" `Quick test_grows;
      Alcotest.test_case "clustered keys (syscall sites)" `Quick test_clustered_keys;
      Alcotest.test_case "to_list" `Quick test_to_list_sorted;
      Alcotest.test_case "memory footprint (P4b)" `Quick test_memory_bytes_small;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_complete;
    ] )
