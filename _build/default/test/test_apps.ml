(* Workload applications: coreutils behave like their namesakes, the
   servers serve, the clients measure. *)

open K23_kernel
open K23_userland
module Apps = K23_apps

let boot_coreutil ?argv name =
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  let p = Sim.run_to_exit w ~path:(Apps.Coreutils.path name) ?argv () in
  (w, p)

let test_pwd () =
  let _, p = boot_coreutil "pwd" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status

let test_touch_creates () =
  let w, p = boot_coreutil "touch" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check bool) "file created" true (Vfs.exists w.vfs "/tmp/touched")

let test_ls_lists_root () =
  let _, p = boot_coreutil "ls" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  let out = World.stdout_of p in
  Alcotest.(check bool) "mentions /etc" true
    (String.split_on_char '\000' out |> List.exists (( = ) "etc"))

let test_cat_prints_file () =
  let _, p = boot_coreutil "cat" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check string) "prints /etc/hostname" "sim\n" (World.stdout_of p)

let test_clear_outputs_escape () =
  let _, p = boot_coreutil "clear" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check string) "ANSI clear" "\x1b[H\x1b[2J" (World.stdout_of p)

(* a server spec end-to-end, natively: all requests complete *)
let drive spec =
  let w = Sim.create_world ~quantum:8 () in
  let path, port = K23_eval.Macro.register_workload w spec in
  (match World.spawn w ~path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.sync_cores w;
  let client = Option.get (K23_eval.Macro.client_for spec ~rounds:4) in
  let results = Apps.Wrk.register w client in
  (match World.spawn w ~path:client.Apps.Wrk.path () with
  | Error e -> Alcotest.failf "client spawn: %d" e
  | Ok cp -> Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  K23_eval.Macro.kill_everything w;
  (client, results)

let expect_all_requests spec () =
  let client, results = drive spec in
  let expected = client.Apps.Wrk.threads * client.conns * client.depth * client.rounds in
  Alcotest.(check int) "all requests answered" expected results.Apps.Wrk.completed;
  Alcotest.(check int) "no errors" 0 results.errors

let test_sqlite_runs () =
  let w = Sim.create_world () in
  Apps.Sqlite_like.register w (Apps.Sqlite_like.default ~ops:50 ());
  let p = Sim.run_to_exit w ~path:"/usr/bin/sqlite3" () in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  (* 50 WAL frames of 128 bytes appended *)
  match Vfs.read_file w.vfs Apps.Sqlite_like.wal_path with
  | Ok s -> Alcotest.(check int) "wal size" (50 * 128) (String.length s)
  | Error _ -> Alcotest.fail "wal missing"

(* the redis serial section caps aggregate throughput *)
let test_redis_serial_scaling () =
  let tput io_threads =
    K23_eval.Macro.run_spec (K23_eval.Macro.redis ~io_threads) K23_eval.Mech.Native ~seed:7
  in
  let one = tput 1 and six = tput 6 in
  Alcotest.(check bool)
    (Printf.sprintf "6 threads faster than 1 (%f vs %f)" six one)
    true (six > one *. 1.2);
  Alcotest.(check bool)
    (Printf.sprintf "but sublinear (%f < 4x %f)" six one)
    true
    (six < one *. 4.0)

let tests =
  ( "apps",
    [
      Alcotest.test_case "pwd" `Quick test_pwd;
      Alcotest.test_case "touch creates file" `Quick test_touch_creates;
      Alcotest.test_case "ls lists cwd" `Quick test_ls_lists_root;
      Alcotest.test_case "cat prints file" `Quick test_cat_prints_file;
      Alcotest.test_case "clear emits escape" `Quick test_clear_outputs_escape;
      Alcotest.test_case "nginx serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.nginx ~workers:1 ~kb:0));
      Alcotest.test_case "nginx 4KB + multiworker" `Quick
        (expect_all_requests (K23_eval.Macro.nginx ~workers:4 ~kb:4));
      Alcotest.test_case "lighttpd serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.lighttpd ~workers:1 ~kb:0));
      Alcotest.test_case "redis serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.redis ~io_threads:2));
      Alcotest.test_case "sqlite writes its WAL" `Quick test_sqlite_runs;
      Alcotest.test_case "redis serial-section scaling" `Quick test_redis_serial_scaling;
    ] )
