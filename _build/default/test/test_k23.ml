(* K23 end-to-end: offline phase, handoff, exhaustive online
   interposition, execve restart, log sealing. *)

open K23_isa
open K23_kernel
open K23_userland
module I = K23_interpose.Interpose
module K23 = K23_core.K23
module Log_store = K23_core.Log_store

let app_path = "/bin/k23app"

(* 40 inlined syscall-500s + write + exit: one unique inlined site plus
   the libc write/exit_group sites *)
let app_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, 40));
    Asm.Label "loop";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "loop");
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "m");
    Asm.I (Insn.Mov_ri (RDX, 3));
    Asm.Call_sym "write";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "m";
    Asm.Strz "ok\n";
  ]

let make_world ?seed () =
  let w = Sim.create_world ?seed () in
  ignore (Sim.register_app w ~path:app_path app_items);
  w

let test_offline_produces_logs () =
  let w = make_world () in
  let entries = K23.offline_run w ~path:app_path () in
  Alcotest.(check bool)
    (Printf.sprintf "logged %d unique sites" (List.length entries))
    true
    (List.length entries >= 3);
  (* entries name real regions: app binary and libc *)
  Alcotest.(check bool) "app site logged" true
    (List.exists (fun e -> e.Log_store.region = app_path) entries);
  Alcotest.(check bool) "libc site logged" true
    (List.exists (fun e -> e.Log_store.region = Libc.path) entries)

let test_offline_logs_stable_across_aslr () =
  let w = make_world ~seed:5 () in
  let e1 = K23.offline_run w ~path:app_path () in
  let e2 = K23.offline_run w ~path:app_path () in
  (* second run under different ASLR slides adds no new entries *)
  Alcotest.(check int) "same unique sites" (List.length e1) (List.length e2)

let launch_and_run ?(variant = K23.Ultra) w =
  match K23.launch w ~variant ~path:app_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    (p, stats)

let test_online_exhaustive () =
  let w = make_world () in
  ignore (K23.offline_run w ~path:app_path ());
  K23.seal_logs w;
  let p, stats = launch_and_run w in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  (* THE headline property: every application system call was
     interposed — startup window (ptrace), logged sites (rewrite),
     missed sites (SUD fallback) *)
  Alcotest.(check int) "exhaustive interposition" p.counters.c_app stats.interposed;
  Alcotest.(check bool) "startup window via ptrace" true (stats.via_ptrace > 20);
  Alcotest.(check bool)
    (Printf.sprintf "fast path dominates after offline (%d rewrites, %d traps)"
       stats.via_rewrite stats.via_sigsys)
    true
    (stats.via_rewrite > stats.via_sigsys);
  Alcotest.(check bool) "sites were rewritten" true (K23.rewritten_sites p >= 2)

let test_online_without_offline_falls_back () =
  (* no offline phase: no rewrites, everything post-detach goes through
     the SUD fallback — still exhaustive *)
  let w = make_world () in
  let p, stats = launch_and_run w in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check int) "still exhaustive" p.counters.c_app stats.interposed;
  Alcotest.(check int) "no rewrites" 0 K23.(rewritten_sites p);
  Alcotest.(check bool) "fallback used" true (stats.via_sigsys > 0)

let test_handoff_state () =
  let w = make_world () in
  ignore (K23.offline_run w ~path:app_path ());
  let p, _stats = launch_and_run w in
  (* the ptracer handed its startup syscall count to libK23 via the
     fake-syscall protocol *)
  Alcotest.(check bool)
    (Printf.sprintf "handoff carries startup count (%d)" (K23.startup_handed_over p))
    true
    (K23.startup_handed_over p > 20)

let test_vdso_disabled () =
  let w = make_world () in
  let p, _ = launch_and_run w in
  Alcotest.(check bool) "no vdso region under K23" true
    (not (List.exists (fun r -> r.Kern.r_owner = Kern.Vdso) p.regions));
  Alcotest.(check int) "no vdso fast-path calls" 0 p.counters.c_vdso

let test_seal_blocks_tampering () =
  let w = make_world () in
  ignore (K23.offline_run w ~path:app_path ());
  K23.seal_logs w;
  (match Vfs.write_file w.vfs (Log_store.path_for ~app:app_path) "evil" with
  | Ok _ -> Alcotest.fail "tampering with sealed logs must fail"
  | Error `Perm -> ()
  | Error _ -> Alcotest.fail "expected EPERM");
  Alcotest.(check bool) "sealed" true (Log_store.sealed w)

let test_hash_set_memory_small () =
  let w = make_world () in
  ignore (K23.offline_run w ~path:app_path ());
  let p, _ = launch_and_run ~variant:K23.Ultra w in
  let bytes = K23.check_memory_bytes p in
  (* P4b: the validation state is a few hundred bytes, vs zpoline's
     2^45-byte reservation *)
  Alcotest.(check bool) (Printf.sprintf "tiny check state (%d bytes)" bytes) true (bytes < 4096)

(* execve restart: parent execve's into the same app; the online phase
   must restart (ptracer re-attached, rewrite redone) and interposition
   must stay exhaustive in the new image. *)
let exec_app_path = "/bin/k23exec"

let exec_app_items =
  [
    Asm.Label "main";
    (* execve("/bin/k23app", argv, envp=current) *)
    Asm.Call_sym "build_envp";
    Asm.I (Insn.Mov_rr (RDX, RAX));
    Asm.Mov_sym (RDI, "target");
    Asm.Mov_sym (RSI, "argvv");
    Asm.Call_sym "execve";
    (* only reached on failure *)
    Asm.I (Insn.Mov_ri (RDI, 9));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "target";
    Asm.Strz "/bin/k23app";
    Asm.Label "argvv";
    Asm.Quad 0;
  ]

let test_execve_restart () =
  let w = make_world () in
  ignore (Sim.register_app w ~path:exec_app_path exec_app_items);
  ignore (K23.offline_run w ~path:app_path ());
  (match K23.launch w ~variant:K23.Default ~path:exec_app_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    (* the process is now the exec'd k23app and must have completed *)
    Alcotest.(check (option int)) "exit 0 after exec" (Some 0) p.exit_status;
    Alcotest.(check string) "ran the target" "ok\n" (World.stdout_of p);
    Alcotest.(check string) "cmd updated" "/bin/k23app" p.cmd;
    (* interposition survived the exec: the 40 bench syscalls of the
       new image were interposed *)
    Alcotest.(check bool)
      (Printf.sprintf "interposed across exec (%d)" stats.interposed)
      true
      (stats.interposed > 100))

let tests =
  ( "k23",
    [
      Alcotest.test_case "offline phase logs sites" `Quick test_offline_produces_logs;
      Alcotest.test_case "offline logs ASLR-stable" `Quick test_offline_logs_stable_across_aslr;
      Alcotest.test_case "online exhaustive" `Quick test_online_exhaustive;
      Alcotest.test_case "no offline -> SUD fallback" `Quick test_online_without_offline_falls_back;
      Alcotest.test_case "fake-syscall handoff" `Quick test_handoff_state;
      Alcotest.test_case "vdso disabled" `Quick test_vdso_disabled;
      Alcotest.test_case "sealed logs are immutable" `Quick test_seal_blocks_tampering;
      Alcotest.test_case "hash-set memory (P4b)" `Quick test_hash_set_memory_small;
      Alcotest.test_case "execve restarts online phase" `Quick test_execve_restart;
    ] )
