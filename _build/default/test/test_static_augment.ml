(* The static-augmentation future-work prototype (Section 7): it buys
   fast-path coverage without representative inputs, and it re-imports
   exactly the misidentification risk (P3a) the offline phase was
   designed to avoid — both directions demonstrated. *)

open K23_kernel
open K23_userland
module K23 = K23_core.K23
module I = K23_interpose.Interpose

(* benefit: a program with NO dynamic offline run still gets most of
   its syscalls onto the rewritten fast path *)
let test_augmentation_widens_fast_path () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:K23_eval.Micro.app_path (K23_eval.Micro.app_items 100));
  let added = K23.offline_augment_static w ~path:K23_eval.Micro.app_path () in
  Alcotest.(check bool) "sweep found sites" true (added > 10);
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Default ~path:K23_eval.Micro.app_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "still exhaustive" p.counters.c_app stats.interposed;
    Alcotest.(check bool)
      (Printf.sprintf "fast path dominates with no dynamic run (%d rw / %d sigsys)"
         stats.via_rewrite stats.via_sigsys)
      true
      (stats.via_rewrite > stats.via_sigsys)

(* risk: on a binary with data embedded in text (the P3a PoC), the
   augmented logs contain a data "site" whose bytes genuinely encode
   [0f 05]; libK23's byte validation passes and the data is corrupted —
   K23 degrades to zpoline's behaviour.  This is why the paper leaves
   static augmentation as future work gated on better analyses. *)
let test_augmentation_reintroduces_p3a () =
  let w = Sim.create_world () in
  K23_pitfalls.Pocs.register_all w;
  ignore (K23.offline_augment_static w ~path:K23_pitfalls.Pocs.p3a_path ());
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Default ~path:K23_pitfalls.Pocs.p3a_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) ->
    World.run_until_exit w p;
    Alcotest.(check (option int))
      "embedded data corrupted (exit 1): the P3a risk is back" (Some 1) p.exit_status

(* control: the paper's dynamic-only offline phase keeps P3a handled *)
let test_dynamic_only_stays_safe () =
  let w = Sim.create_world () in
  K23_pitfalls.Pocs.register_all w;
  ignore (K23.offline_run w ~path:K23_pitfalls.Pocs.p3a_path ());
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Default ~path:K23_pitfalls.Pocs.p3a_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "embedded data intact" (Some 0) p.exit_status

let tests =
  ( "static augmentation (future work)",
    [
      Alcotest.test_case "widens the fast path" `Quick test_augmentation_widens_fast_path;
      Alcotest.test_case "re-imports P3a" `Quick test_augmentation_reintroduces_p3a;
      Alcotest.test_case "dynamic-only control stays safe" `Quick test_dynamic_only_stays_safe;
    ] )
