(* Threat-model (Section 3) extension: in the ultra+ variant, the
   interposer's internal state — the SUD selector page — is protected
   with a dedicated protection key, so application code cannot flip
   the selector even though it shares the address space. *)

open K23_kernel
open K23_userland
module K23 = K23_core.K23

let app_path = "/bin/isapp"

let app =
  [
    K23_isa.Asm.Label "main";
    K23_isa.Asm.I (K23_isa.Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    K23_isa.Asm.I K23_isa.Insn.Syscall;
    K23_isa.Asm.I (K23_isa.Insn.Xor_rr (RDI, RDI));
    K23_isa.Asm.Call_sym "exit";
  ]

let launch variant =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:app_path app);
  ignore (K23.offline_run w ~path:app_path ());
  K23.seal_logs w;
  match K23.launch w ~variant ~path:app_path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "exhaustive" p.counters.c_app stats.interposed;
    p

let selector_addr (p : Kern.proc) =
  match Hashtbl.find_opt p.globals "k23_selector" with
  | Some a -> a
  | None -> Alcotest.fail "no selector symbol"

let test_ultra_plus_protects_selector () =
  let p = launch K23.Ultra_plus in
  let sel = selector_addr p in
  let th = List.hd p.threads in
  (* the page carries a non-default protection key... *)
  (match K23_machine.Memory.get_pkey p.mem sel with
  | Some k -> Alcotest.(check bool) "pkey assigned" true (k > 0)
  | None -> Alcotest.fail "selector unmapped");
  (* ...and an application-level store with the thread's PKRU faults *)
  Alcotest.check_raises "app write faults"
    (K23_machine.Memory.Fault { fault_addr = sel; access = `Write })
    (fun () -> K23_machine.Memory.write_u8 p.mem ~pkru:th.regs.pkru sel 0);
  Alcotest.check_raises "app read faults too"
    (K23_machine.Memory.Fault { fault_addr = sel; access = `Read })
    (fun () -> ignore (K23_machine.Memory.read_u8 p.mem ~pkru:th.regs.pkru sel))

let test_default_leaves_selector_writable () =
  (* the default/ultra variants rely on the deployer's own isolation
     choice (Section 3); without ultra+ the page stays ordinary rw *)
  let p = launch K23.Ultra in
  let sel = selector_addr p in
  let th = List.hd p.threads in
  K23_machine.Memory.write_u8 p.mem ~pkru:th.regs.pkru sel 0;
  Alcotest.(check int) "plain write went through" 0
    (K23_machine.Memory.read_u8 p.mem ~pkru:th.regs.pkru sel)

let tests =
  ( "internal-state protection (Section 3)",
    [
      Alcotest.test_case "ultra+ PKU-protects the selector" `Quick
        test_ultra_plus_protects_selector;
      Alcotest.test_case "default variant leaves it to the deployer" `Quick
        test_default_leaves_selector_writable;
    ] )
