test/test_static_augment.ml: Alcotest K23_core K23_eval K23_interpose K23_kernel K23_pitfalls K23_userland Printf Sim World
