test/test_xom.ml: Alcotest Asm Bytes Hashtbl Insn K23_baselines K23_interpose K23_isa K23_kernel K23_machine K23_userland K23_util Kern List Sim
