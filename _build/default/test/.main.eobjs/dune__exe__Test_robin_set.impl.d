test/test_robin_set.ml: Alcotest Gen Hashtbl K23_core List Printf QCheck QCheck_alcotest Test
