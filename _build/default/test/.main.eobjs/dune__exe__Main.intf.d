test/main.mli:
