test/test_cost_model.ml: Alcotest Array Cost K23_apps K23_isa K23_kernel K23_machine K23_userland List
