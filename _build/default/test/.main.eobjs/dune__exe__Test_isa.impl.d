test/test_isa.ml: Alcotest Bytes Decode Disasm Encode Gen Insn K23_isa K23_util List QCheck QCheck_alcotest Reg Test
