test/test_k23.ml: Alcotest Asm Insn K23_core K23_interpose K23_isa K23_kernel K23_userland Kern Libc List Printf Sim Sysno Vfs World
