test/test_seccomp.ml: Alcotest Asm Bpf Char Errno Format Insn K23_baselines K23_isa K23_kernel K23_pitfalls K23_userland Kern List Option Printf QCheck QCheck_alcotest Sim Sysno World
