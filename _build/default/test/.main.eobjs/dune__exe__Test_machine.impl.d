test/test_machine.ml: Alcotest Bytes Cpu Encode Icache K23_isa K23_machine Memory QCheck QCheck_alcotest Regs
