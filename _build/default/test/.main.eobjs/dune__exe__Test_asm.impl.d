test/test_asm.ml: Alcotest Asm Bytes Decode Insn K23_isa List
