test/test_dlopen.ml: Alcotest Asm Hashtbl Insn K23_baselines K23_core K23_interpose K23_isa K23_kernel K23_pitfalls K23_userland Kern List Option Sim String Sysno World
