test/test_arm.ml: Alcotest Bytes Decode Encode Gen Insn K23_isa K23_isa_arm List QCheck QCheck_alcotest
