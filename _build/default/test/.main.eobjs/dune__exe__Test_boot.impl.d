test/test_boot.ml: Alcotest Asm Hashtbl Insn K23_isa K23_kernel K23_machine K23_userland Kern Libc List Printf Sim String World
