test/test_determinism.ml: Alcotest K23_apps K23_core K23_eval K23_kernel K23_userland Kern Sim World
