test/test_interposers.ml: Alcotest Array Asm Insn K23_baselines K23_interpose K23_isa K23_kernel K23_machine K23_userland Kern Printf Sim Sysno World
