test/test_kernel.ml: Alcotest Asm Buffer Bytes Char Hashtbl Insn K23_isa K23_kernel K23_machine K23_userland K23_util Kern List Net QCheck QCheck_alcotest Sim String Vfs
