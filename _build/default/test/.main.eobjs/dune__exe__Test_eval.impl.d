test/test_eval.ml: Alcotest K23_core K23_eval List String
