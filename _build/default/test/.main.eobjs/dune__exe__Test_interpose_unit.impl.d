test/test_interpose_unit.ml: Alcotest Asm Bytes Hashtbl K23_apps K23_baselines K23_eval K23_interpose K23_isa K23_kernel K23_machine K23_userland K23_util Kern List Option Sim World
