test/test_internal_state.ml: Alcotest Hashtbl K23_core K23_isa K23_kernel K23_machine K23_userland Kern List Sim Sysno World
