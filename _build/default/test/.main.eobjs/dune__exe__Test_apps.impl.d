test/test_apps.ml: Alcotest K23_apps K23_eval K23_kernel K23_userland Kern List Option Printf Sim String Vfs World
