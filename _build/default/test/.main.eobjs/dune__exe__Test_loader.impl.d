test/test_loader.ml: Alcotest Asm Errno Insn K23_isa K23_kernel K23_userland Libc List Loader Sim Stdlibs World
