test/test_pitfalls.ml: Alcotest K23_pitfalls List Printf
