(* The permission-restore half of pitfall P5: lazypoline "restores"
   page permissions to an assumed r-x, silently stripping eXecute-Only
   Memory; zpoline/K23 save and restore the real permissions. *)

open K23_isa
open K23_kernel
open K23_userland
module I = K23_interpose.Interpose
module Lp = K23_baselines.Lazypoline

(* a process with an XOM page holding a syscall instruction *)
let xom_fixture () =
  let w = Sim.create_world () in
  ignore
    (Sim.register_app w ~path:"/bin/x"
       [ Asm.Label "main"; Asm.I (Insn.Xor_rr (RDI, RDI)); Asm.Call_sym "exit" ]);
  let p = Sim.run_to_exit w ~path:"/bin/x" () in
  let th = List.hd p.threads in
  K23_machine.Memory.map p.mem ~addr:0x5_0000 ~len:4096 ~perm:K23_machine.Memory.perm_x;
  K23_machine.Memory.write_bytes_raw p.mem 0x5_0000 (Bytes.of_string "\x0f\x05");
  (w, p, th)

let perm_at p addr =
  match K23_machine.Memory.get_perm p addr with
  | Some perm -> K23_machine.Memory.perm_to_string perm
  | None -> "(unmapped)"

let test_lazypoline_strips_xom () =
  let w, p, th = xom_fixture () in
  (* simulate lazypoline's SIGSYS-driven rewrite of the XOM site: push
     the frame its handler would see, then run its two store steps *)
  th.frames <-
    [
      {
        Kern.fr_regs = K23_machine.Regs.copy th.regs;
        fr_signo = 31;
        fr_sysno = 39;
        fr_site = 0x5_0000;
        fr_args = [| 0; 0; 0; 0; 0; 0 |];
      };
    ];
  let states : Lp.states = Hashtbl.create 4 in
  let ctx = { Kern.world = w; thread = th } in
  Lp.rw_step1 states ctx;
  Lp.rw_step2 states ctx;
  Alcotest.(check string) "rewritten" "ff d0"
    (K23_util.Hexdump.of_bytes (K23_machine.Memory.read_bytes_raw p.mem 0x5_0000 2));
  (* the flaw: execute-only became readable *)
  Alcotest.(check string) "XOM silently stripped to r-x" "r-x" (perm_at p.mem 0x5_0000)

let test_k23_preserves_xom () =
  let w, p, th = xom_fixture () in
  ignore p;
  I.rewrite_site_atomic { Kern.world = w; thread = th } ~site:0x5_0000;
  Alcotest.(check string) "XOM preserved" "--x" (perm_at th.Kern.t_proc.mem 0x5_0000)

let tests =
  ( "XOM restore (P5 permissions)",
    [
      Alcotest.test_case "lazypoline strips XOM" `Quick test_lazypoline_strips_xom;
      Alcotest.test_case "K23-style rewrite preserves XOM" `Quick test_k23_preserves_xom;
    ] )
