(* Interposition-framework unit tests + regressions. *)

open K23_kernel
open K23_userland
open K23_isa
module I = K23_interpose.Interpose
module Lp = K23_baselines.Lazypoline
module Zp = K23_baselines.Zpoline

let test_add_preload () =
  Alcotest.(check (list string)) "adds to empty" [ "LD_PRELOAD=/l.so" ] (I.add_preload [] "/l.so");
  Alcotest.(check (list string)) "prepends to existing"
    [ "FOO=1"; "LD_PRELOAD=/l.so:/other.so" ]
    (I.add_preload [ "FOO=1"; "LD_PRELOAD=/other.so" ] "/l.so");
  Alcotest.(check (list string)) "keeps other vars"
    [ "A=b"; "LD_PRELOAD=/l.so" ]
    (I.add_preload [ "A=b" ] "/l.so")

let test_trampoline_layout () =
  (* the trampoline contract: a nop sled covering every syscall number
     (rax < 512), then [vcall pre][syscall][vcall post][ret] *)
  Alcotest.(check int) "sled covers syscall numbers" 512 I.nop_sled_len;
  Alcotest.(check int) "entry" 512 I.trampoline_entry;
  Alcotest.(check int) "syscall at entry+6" 518 I.trampoline_syscall_addr;
  Alcotest.(check int) "post at entry+8" 520 I.trampoline_post_addr

let test_counting_handler () =
  let stats = I.fresh_stats () in
  let h = I.counting_handler stats in
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/x" [ Asm.Label "main"; Asm.Call_sym "exit" ]);
  let p = Sim.run_to_exit w ~path:"/bin/x" () in
  let ctx = { Kern.world = w; thread = List.hd p.threads } in
  (match h ctx ~nr:39 ~args:[| 0; 0; 0; 0; 0; 0 |] ~site:0 with
  | I.Forward -> ()
  | I.Emulate _ -> Alcotest.fail "default is Forward");
  Alcotest.(check int) "counted" 1 stats.interposed;
  Alcotest.(check (option int)) "by_nr" (Some 1) (Hashtbl.find_opt stats.by_nr 39)

(* rewriting saves and restores page permissions (the zpoline/K23
   behaviour, contrast with lazypoline's P5 flaw) *)
let test_rewrite_preserves_perms () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/x" [ Asm.Label "main"; Asm.Call_sym "exit" ]);
  let p = Sim.run_to_exit w ~path:"/bin/x" () in
  let th = List.hd p.threads in
  (* plant a syscall in an executable page with unusual permissions *)
  K23_machine.Memory.map p.mem ~addr:0x4_0000 ~len:4096 ~perm:K23_machine.Memory.perm_x;
  K23_machine.Memory.write_bytes_raw p.mem 0x4_0000 (Bytes.of_string "\x0f\x05");
  I.rewrite_site_atomic { Kern.world = w; thread = th } ~site:0x4_0000;
  Alcotest.(check string) "rewritten" "ff d0"
    (K23_util.Hexdump.of_bytes (K23_machine.Memory.read_bytes_raw p.mem 0x4_0000 2));
  match K23_machine.Memory.get_perm p.mem 0x4_0000 with
  | Some perm ->
    Alcotest.(check string) "XOM preserved" "--x" (K23_machine.Memory.perm_to_string perm)
  | None -> Alcotest.fail "page vanished"

(* regression: under lazypoline, a server that forks workers from
   inside the SIGSYS handler (the fork syscall is re-issued there)
   must not lose any worker *)
let test_lazypoline_fork_workers () =
  let w = Sim.create_world ~quantum:8 () in
  let spec = K23_eval.Macro.nginx ~workers:4 ~kb:0 in
  let path, port = K23_eval.Macro.register_workload w spec in
  (match Lp.launch w ~path () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.sync_cores w;
  let client = Option.get (K23_eval.Macro.client_for spec ~rounds:4) in
  let results = K23_apps.Wrk.register w client in
  (match World.spawn w ~path:client.K23_apps.Wrk.path () with
  | Error e -> Alcotest.failf "client: %d" e
  | Ok cp -> Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  let dead_workers =
    List.filter (fun p -> p.Kern.cmd = path && p.Kern.term_signal <> None) w.procs
  in
  Alcotest.(check int) "no worker died" 0 (List.length dead_workers);
  Alcotest.(check int) "all requests served"
    (client.threads * client.depth * client.rounds)
    results.completed;
  K23_eval.Macro.kill_everything w

(* regression: a process exit must not tear down descriptors still
   held by fork siblings (listener refcounting) *)
let test_fd_refcount_across_fork () =
  let w = Sim.create_world ~quantum:8 () in
  let spec = K23_eval.Macro.nginx ~workers:2 ~kb:0 in
  let path, port = K23_eval.Macro.register_workload w spec in
  (match World.spawn w ~path () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  (* let the master finish forking its sibling *)
  Kern.run ~max_steps:1_000_000
    ~until:(fun () -> List.length (List.filter (fun p -> p.Kern.cmd = path) w.procs) >= 2)
    w;
  (* kill one worker; the listener must survive via its sibling *)
  let workers = List.filter (fun p -> p.Kern.cmd = path) w.procs in
  Alcotest.(check int) "both workers exist" 2 (List.length workers);
  Kern.kill_proc (List.nth workers (List.length workers - 1)) ~signal:9;
  Alcotest.(check bool) "listener survives" true (Hashtbl.mem w.net.listeners port);
  K23_eval.Macro.kill_everything w;
  Alcotest.(check bool) "listener released with last holder" false
    (Hashtbl.mem w.net.listeners port)

let tests =
  ( "interpose-framework",
    [
      Alcotest.test_case "add_preload" `Quick test_add_preload;
      Alcotest.test_case "trampoline layout" `Quick test_trampoline_layout;
      Alcotest.test_case "counting handler" `Quick test_counting_handler;
      Alcotest.test_case "rewrite preserves perms" `Quick test_rewrite_preserves_perms;
      Alcotest.test_case "lazypoline fork workers (regression)" `Quick test_lazypoline_fork_workers;
      Alcotest.test_case "fd refcount across fork (regression)" `Quick test_fd_refcount_across_fork;
    ] )
