(* The pitfall matrix: every (system, pitfall) verdict must reproduce
   the paper's Table 3 exactly. *)

module H = K23_pitfalls.Harness

let check_cell sys pf () =
  let v = H.check sys pf in
  let expected = H.paper_expectation sys pf in
  Alcotest.(check bool)
    (Printf.sprintf "%s under %s (%s)" (H.pitfall_to_string pf) (H.system_to_string sys) v.detail)
    expected v.handled

let tests =
  ( "pitfalls (Table 3)",
    List.concat_map
      (fun pf ->
        List.map
          (fun sys ->
            Alcotest.test_case
              (Printf.sprintf "%s / %s" (H.pitfall_to_string pf) (H.system_to_string sys))
              `Quick (check_cell sys pf))
          H.all_systems)
      H.all_pitfalls )
