(* Reproducibility invariants: the whole simulation is a deterministic
   function of the seed — the property every benchmark number in
   EXPERIMENTS.md rests on. *)

open K23_kernel
open K23_userland
module K23 = K23_core.K23

let fingerprint ~seed =
  let w = Sim.create_world ~seed () in
  K23_apps.Coreutils.register_all w;
  ignore (K23.offline_run w ~path:"/bin/ls" ());
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Ultra ~path:"/bin/ls" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    ( Kern.now w,
      w.steps,
      p.counters.c_app,
      stats.interposed,
      stats.via_rewrite,
      stats.via_ptrace,
      World.stdout_of p )

let test_same_seed_same_world () =
  let a = fingerprint ~seed:77 in
  let b = fingerprint ~seed:77 in
  Alcotest.(check bool) "bit-for-bit identical" true (a = b)

let test_different_seed_different_layout () =
  let _, _, _, _, _, _, _ = fingerprint ~seed:77 in
  let cycles_a, _, apps_a, int_a, _, _, out_a = fingerprint ~seed:77 in
  let cycles_b, _, apps_b, int_b, _, _, out_b = fingerprint ~seed:78 in
  (* different machine-state skew => different cycle totals ... *)
  Alcotest.(check bool) "cycle totals differ" true (cycles_a <> cycles_b);
  (* ... but identical semantics *)
  Alcotest.(check int) "same app syscalls" apps_a apps_b;
  Alcotest.(check int) "same interposed count" int_a int_b;
  Alcotest.(check string) "same output" out_a out_b

(* the benchmark's own samples: repeated micro runs with one seed are
   exactly equal (no hidden global state leaks between worlds) *)
let test_micro_repeatable () =
  let a = K23_eval.Micro.cycles_per_iter ~mech:K23_eval.Mech.Zpoline_default ~seed:5 in
  let b = K23_eval.Micro.cycles_per_iter ~mech:K23_eval.Mech.Zpoline_default ~seed:5 in
  Alcotest.(check (float 0.0)) "identical" a b

let tests =
  ( "determinism",
    [
      Alcotest.test_case "same seed, same world" `Quick test_same_seed_same_world;
      Alcotest.test_case "seeds change timing, not semantics" `Quick
        test_different_seed_different_layout;
      Alcotest.test_case "micro samples repeatable" `Quick test_micro_repeatable;
    ] )
