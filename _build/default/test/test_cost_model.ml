(* Cost-model invariants the calibration (EXPERIMENTS.md) relies on. *)

open K23_machine
module Appkit = K23_apps.Appkit

let test_insn_costs () =
  let m = Cost.default in
  Alcotest.(check int) "nop free" 0 (Cost.insn_cost m K23_isa.Insn.Nop);
  Alcotest.(check int) "mov 1 cycle" 1 (Cost.insn_cost m (K23_isa.Insn.Mov_rr (RAX, RBX)));
  Alcotest.(check bool) "serialising insns cost more" true
    (Cost.insn_cost m K23_isa.Insn.Cpuid > 10);
  Alcotest.(check bool) "wrpkru costs tens of cycles" true
    (Cost.insn_cost m K23_isa.Insn.Wrpkru >= 10)

let test_cost_ratios_documented () =
  (* the constants EXPERIMENTS.md documents; a change here must update
     the calibration table *)
  let m = Cost.default in
  Alcotest.(check int) "syscall_base" 150 m.syscall_base;
  Alcotest.(check int) "sud_armed_extra" 35 m.sud_armed_extra;
  Alcotest.(check int) "sigsys_delivery" 905 m.sigsys_delivery;
  Alcotest.(check int) "sigreturn_extra" 705 m.sigreturn_extra;
  Alcotest.(check int) "ptrace_stop" 3000 m.ptrace_stop

(* the serial-section model: the chain never runs backwards and
   aggregates at most 1/cost *)
let test_serial_chain () =
  let w = K23_userland.Sim.create_world () in
  K23_apps.Coreutils.register_all w;
  let p = K23_userland.Sim.run_to_exit w ~path:"/bin/pwd" () in
  let th = List.hd p.threads in
  let ctx = { K23_kernel.Kern.world = w; thread = th } in
  let s = Appkit.serial_create () in
  let t0 = w.core_cycles.(th.core) in
  Appkit.serial_enter ctx s ~cost:1000;
  let t1 = w.core_cycles.(th.core) in
  Alcotest.(check bool) "charged at least the cost" true (t1 - t0 >= 1000);
  (* a second entry on the same (only) core continues the chain *)
  Appkit.serial_enter ctx s ~cost:1000;
  Alcotest.(check bool) "chain monotone" true (s.until >= t1 + 1000)

let test_charge_work_jitter_bounded () =
  let w = K23_userland.Sim.create_world () in
  K23_apps.Coreutils.register_all w;
  let p = K23_userland.Sim.run_to_exit w ~path:"/bin/pwd" () in
  let th = List.hd p.threads in
  let ctx = { K23_kernel.Kern.world = w; thread = th } in
  for _ = 1 to 50 do
    let before = w.core_cycles.(th.core) in
    Appkit.charge_work ctx 10_000;
    let d = w.core_cycles.(th.core) - before in
    Alcotest.(check bool) "within +2% band" true (d >= 10_000 && d <= 10_200)
  done

let tests =
  ( "cost model",
    [
      Alcotest.test_case "instruction costs" `Quick test_insn_costs;
      Alcotest.test_case "calibration constants" `Quick test_cost_ratios_documented;
      Alcotest.test_case "serial chain" `Quick test_serial_chain;
      Alcotest.test_case "work jitter bounded" `Quick test_charge_work_jitter_bounded;
    ] )
