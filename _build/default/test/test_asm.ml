(* Assembler DSL: labels, sections, relocations, vcall numbering. *)

open K23_isa

let test_label_branches () =
  let prog =
    Asm.assemble
      [
        Asm.Label "start";
        Asm.I (Insn.Mov_ri (RAX, 1));
        Asm.J "end";
        Asm.I (Insn.Mov_ri (RAX, 2));
        Asm.Label "end";
        Asm.I Insn.Ret;
      ]
  in
  (* decode the jmp at offset 10; it must skip the second 10-byte mov *)
  match Decode.decode_bytes prog.Asm.text 10 with
  | Ok (Insn.Jmp_rel d, len) -> Alcotest.(check int) "skips mov" 10 (d + len - len)
  | _ -> Alcotest.fail "expected jmp"

let test_backward_branch () =
  let prog =
    Asm.assemble [ Asm.Label "top"; Asm.I Insn.Nop; Asm.J "top" ]
  in
  match Decode.decode_bytes prog.Asm.text 1 with
  | Ok (Insn.Jmp_rel d, _) -> Alcotest.(check int) "back to top" (-6) d
  | _ -> Alcotest.fail "expected jmp"

let test_sections_and_symbols () =
  let prog =
    Asm.assemble
      [
        Asm.Label "code";
        Asm.I Insn.Ret;
        Asm.Section `Data;
        Asm.Label "d1";
        Asm.Quad 0x1122334455;
        Asm.Label "d2";
        Asm.Strz "xy";
      ]
  in
  Alcotest.(check int) "text size" 1 (Bytes.length prog.Asm.text);
  Alcotest.(check int) "data size" 11 (Bytes.length prog.Asm.data);
  (match List.assoc "d2" prog.Asm.symbols with
  | `Data, 8 -> ()
  | _ -> Alcotest.fail "d2 at data+8");
  Alcotest.(check char) "strz content" 'x' (Bytes.get prog.Asm.data 8)

let test_relocs_recorded () =
  let prog =
    Asm.assemble [ Asm.Label "main"; Asm.Call_sym "write"; Asm.Mov_sym (RDI, "msg"); Asm.I Insn.Ret ]
  in
  Alcotest.(check int) "two relocs" 2 (List.length prog.Asm.relocs);
  let r = List.hd prog.Asm.relocs in
  Alcotest.(check string) "first reloc symbol" "write" r.Asm.reloc_symbol;
  (* imm64 slot of mov r11 is 2 bytes into the pseudo-instruction *)
  Alcotest.(check int) "slot offset" 2 r.Asm.reloc_offset

let test_vcall_indices () =
  let prog =
    Asm.assemble
      [
        Asm.Vcall_named "alpha";
        Asm.Vcall_named "beta";
        Asm.Vcall_named "alpha";  (* repeated name reuses the index *)
      ]
  in
  Alcotest.(check (list string)) "table" [ "alpha"; "beta" ] prog.Asm.vcalls;
  (match Decode.decode_bytes prog.Asm.text 0 with
  | Ok (Insn.Vcall 0, _) -> ()
  | _ -> Alcotest.fail "alpha=0");
  (match Decode.decode_bytes prog.Asm.text 6 with
  | Ok (Insn.Vcall 1, _) -> ()
  | _ -> Alcotest.fail "beta=1");
  match Decode.decode_bytes prog.Asm.text 12 with
  | Ok (Insn.Vcall 0, _) -> ()
  | _ -> Alcotest.fail "alpha reused"

let test_undefined_label_raises () =
  match Asm.assemble [ Asm.J "nowhere" ] with
  | exception Asm.Asm_error _ -> ()
  | _ -> Alcotest.fail "must reject undefined label"

let test_blob_and_zeros_layout () =
  let prog =
    Asm.assemble
      [ Asm.Blob (Bytes.of_string "\x0f\x05"); Asm.Zeros 3; Asm.Label "after"; Asm.I Insn.Ret ]
  in
  (match List.assoc "after" prog.Asm.symbols with
  | `Text, 5 -> ()
  | _ -> Alcotest.fail "label after blob+zeros");
  Alcotest.(check char) "blob bytes" '\x0f' (Bytes.get prog.Asm.text 0)

let tests =
  ( "asm",
    [
      Alcotest.test_case "forward branch" `Quick test_label_branches;
      Alcotest.test_case "backward branch" `Quick test_backward_branch;
      Alcotest.test_case "sections and symbols" `Quick test_sections_and_symbols;
      Alcotest.test_case "relocations" `Quick test_relocs_recorded;
      Alcotest.test_case "vcall numbering" `Quick test_vcall_indices;
      Alcotest.test_case "undefined label" `Quick test_undefined_label_raises;
      Alcotest.test_case "blob/zeros layout" `Quick test_blob_and_zeros_layout;
    ] )
