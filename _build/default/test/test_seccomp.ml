(* seccomp substrate: BPF evaluation, kernel integration, the trap
   interposer, and the expressiveness boundary the paper describes. *)

open K23_isa
open K23_kernel
open K23_userland
module Sc = K23_baselines.Seccomp_interposer

(* ---------------- BPF evaluation ---------------- *)

let data ?(nr = 0) ?(ip = 0) ?(args = [| 0; 0; 0; 0; 0; 0 |]) () =
  { Bpf.nr; arch = 0xc000003e; ip; args }

let action =
  Alcotest.testable
    (fun fmt a ->
      Format.pp_print_string fmt
        (match a with
        | Bpf.Allow -> "allow"
        | Bpf.Errno e -> Printf.sprintf "errno %d" e
        | Bpf.Trap -> "trap"
        | Bpf.Kill -> "kill"
        | Bpf.Log -> "log"))
    ( = )

let test_policy_builder () =
  let f = Bpf.policy ~default:Bpf.Allow [ (Sysno.execve, Bpf.Errno Errno.eperm); (62, Bpf.Kill) ] in
  Alcotest.check action "execve -> EPERM" (Bpf.Errno Errno.eperm)
    (Bpf.eval f (data ~nr:Sysno.execve ()));
  Alcotest.check action "kill -> Kill" Bpf.Kill (Bpf.eval f (data ~nr:62 ()));
  Alcotest.check action "rest allowed" Bpf.Allow (Bpf.eval f (data ~nr:Sysno.read ()))

let test_ip_range_filter () =
  let f = Bpf.trap_outside_ip_range ~lo:0x7000 ~hi:0x8000 in
  Alcotest.check action "below traps" Bpf.Trap (Bpf.eval f (data ~ip:0x6fff ()));
  Alcotest.check action "inside allows" Bpf.Allow (Bpf.eval f (data ~ip:0x7800 ()));
  Alcotest.check action "boundary lo allows" Bpf.Allow (Bpf.eval f (data ~ip:0x7000 ()));
  Alcotest.check action "boundary hi traps" Bpf.Trap (Bpf.eval f (data ~ip:0x8000 ()))

let test_arg_filter () =
  let f = Bpf.arg_equals ~nr:Sysno.write ~arg:0 ~value:1 ~mismatch:(Bpf.Errno Errno.eacces) in
  Alcotest.check action "write(1,..) ok" Bpf.Allow
    (Bpf.eval f (data ~nr:Sysno.write ~args:[| 1; 0; 0; 0; 0; 0 |] ()));
  Alcotest.check action "write(2,..) denied" (Bpf.Errno Errno.eacces)
    (Bpf.eval f (data ~nr:Sysno.write ~args:[| 2; 0; 0; 0; 0; 0 |] ()));
  Alcotest.check action "other syscalls pass" Bpf.Allow (Bpf.eval f (data ~nr:Sysno.read ()))

let test_most_restrictive_wins () =
  let allow_all = Bpf.policy ~default:Bpf.Allow [] in
  let kill_write = Bpf.policy ~default:Bpf.Allow [ (Sysno.write, Bpf.Kill) ] in
  let errno_write = Bpf.policy ~default:Bpf.Allow [ (Sysno.write, Bpf.Errno 1) ] in
  Alcotest.check action "kill beats errno" Bpf.Kill
    (Bpf.eval_all [ errno_write; kill_write; allow_all ] (data ~nr:Sysno.write ()))

let prop_policy_matches_assoc =
  QCheck.Test.make ~name:"policy builder = assoc lookup" ~count:500
    QCheck.(pair (list (pair (int_range 0 50) (int_range 1 30))) (int_range 0 50))
    (fun (rules, nr) ->
      let rules = List.map (fun (n, e) -> (n, Bpf.Errno e)) rules in
      let f = Bpf.policy ~default:Bpf.Allow rules in
      Bpf.eval f (data ~nr ())
      = (match List.assoc_opt nr rules with Some a -> a | None -> Bpf.Allow))

(* ---------------- kernel integration ---------------- *)

let errno_app =
  [
    Asm.Label "main";
    (* getpid; exit with its (possibly filtered) result *)
    Asm.Call_sym "getpid";
    Asm.I (Insn.Cmp_ri (RAX, 0));
    Asm.Jc (Insn.GE, "fine");
    (* negative: return -result as exit code *)
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Sub_rr (RDI, RAX));
    Asm.Call_sym "exit";
    Asm.Label "fine";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

let test_errno_filter () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/sc" errno_app);
  let filters = [ Bpf.policy ~default:Bpf.Allow [ (Sysno.getpid, Bpf.Errno Errno.eperm) ] ] in
  match Sc.launch_filter_only w ~filters ~path:"/bin/sc" () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "getpid failed with EPERM" (Some Errno.eperm) p.exit_status

let test_kill_filter () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/sc" errno_app);
  let filters = [ Bpf.policy ~default:Bpf.Allow [ (Sysno.getpid, Bpf.Kill) ] ] in
  match Sc.launch_filter_only w ~filters ~path:"/bin/sc" () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "killed by SIGSYS" (Some 31) p.term_signal

let test_trap_interposition_exhaustive () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/sc" errno_app);
  match Sc.launch w ~path:"/bin/sc" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check bool) "interposed post-load syscalls" true (stats.interposed >= 2);
    Alcotest.(check int) "all via SIGSYS" stats.interposed stats.via_sigsys

(* The expressiveness boundary: a filter keyed on a pointer argument's
   VALUE cannot distinguish different buffer CONTENTS at the same
   address — precisely why the paper says seccomp "lacks support for
   deep inspection of pointer arguments". *)
let content_app =
  [
    Asm.Label "main";
    (* two writes from the same buffer address, different contents *)
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "buf");
    Asm.I (Insn.Mov_ri (RDX, 5));
    Asm.Call_sym "write";
    Asm.I (Insn.Mov_rr (R14, RAX));
    Asm.Mov_sym (R9, "buf");
    Asm.I (Insn.Mov_ri (RAX, Char.code 'X'));
    Asm.I (Insn.Store8 (R9, 0, RAX));
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "buf");
    Asm.I (Insn.Mov_ri (RDX, 5));
    Asm.Call_sym "write";
    (* exit 0 iff both writes got the same verdict *)
    Asm.I (Insn.Cmp_rr (RAX, R14));
    Asm.Jc (Insn.Z, "same");
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Call_sym "exit";
    Asm.Label "same";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "buf";
    Asm.Strz "safe";
  ]

let test_pointer_blindness () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/sc" content_app);
  (* deny writes whose BUFFER POINTER equals the data address?  A
     filter can only see the pointer value, which is identical for
     both writes — so both get the same verdict despite different
     contents. *)
  match Sc.launch_filter_only w ~filters:[ Bpf.policy ~default:Bpf.Allow [] ] ~path:"/bin/sc" ()
  with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "same verdict for both contents" (Some 0) p.exit_status

let test_filters_survive_fork_and_exec () =
  let w = Sim.create_world () in
  K23_pitfalls.Pocs.register_all w;
  (* deny syscall 500 with ENOSYS->EPERM under the P1a program: the
     fork child execs the target with an empty env; LD_PRELOAD-based
     mechanisms die (P1a) but seccomp filters survive both fork and
     execve *)
  let filters =
    [ Bpf.policy ~default:Bpf.Allow [ (Sysno.bench_nonexistent, Bpf.Errno Errno.eperm) ] ]
  in
  match Sc.launch_filter_only w ~filters ~path:K23_pitfalls.Pocs.p1a_path () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    World.run_until_exit w p;
    let child =
      List.find (fun q -> match q.Kern.parent with Some pp -> pp == p | None -> false) w.procs
    in
    Alcotest.(check bool) "child inherited the filter" true (child.seccomp <> []);
    Alcotest.(check (option int))
      "child's 500s hit the filter (counted as EPERM, not ENOSYS)" (Some 1)
      (Option.map (fun _ -> 1) (List.nth_opt child.seccomp 0))

let tests =
  ( "seccomp",
    [
      Alcotest.test_case "policy builder" `Quick test_policy_builder;
      Alcotest.test_case "ip-range filter" `Quick test_ip_range_filter;
      Alcotest.test_case "register-argument filter" `Quick test_arg_filter;
      Alcotest.test_case "most restrictive wins" `Quick test_most_restrictive_wins;
      QCheck_alcotest.to_alcotest prop_policy_matches_assoc;
      Alcotest.test_case "ERRNO filter" `Quick test_errno_filter;
      Alcotest.test_case "KILL filter" `Quick test_kill_filter;
      Alcotest.test_case "TRAP interposition" `Quick test_trap_interposition_exhaustive;
      Alcotest.test_case "pointer blindness (expressiveness)" `Quick test_pointer_blindness;
      Alcotest.test_case "filters survive fork+exec" `Quick test_filters_survive_fork_and_exec;
    ] )
