(* Dynamic-loader unit tests: preload parsing, dependency resolution,
   stack layout, relocation, and graceful handling of missing
   libraries. *)

open K23_isa
open K23_kernel
open K23_userland

let test_split_preload () =
  Alcotest.(check (list string)) "colon-separated" [ "/a.so"; "/b.so" ]
    (Loader.split_preload "/a.so:/b.so");
  Alcotest.(check (list string)) "empty" [] (Loader.split_preload "");
  Alcotest.(check (list string)) "stray colons" [ "/x.so" ] (Loader.split_preload ":/x.so:")

let test_transitive_deps () =
  let w = Sim.create_world () in
  (* libselinux depends on libpcre (see Stdlibs) *)
  let deps = Loader.transitive_deps w [] [ Stdlibs.libselinux ] in
  Alcotest.(check bool) "direct dep present" true (List.mem Stdlibs.libselinux deps);
  Alcotest.(check bool) "transitive dep pulled in" true (List.mem Stdlibs.libpcre deps);
  (* deduplication *)
  let deps2 = Loader.transitive_deps w [] [ Stdlibs.libselinux; Stdlibs.libpcre ] in
  Alcotest.(check int) "no duplicates"
    (List.length (List.sort_uniq compare deps2))
    (List.length deps2)

(* argc/argv reach main through the System-V-style stack block *)
let argv_app =
  [
    Asm.Label "main";
    (* exit(argc) — argc arrives in rdi *)
    Asm.Call_sym "exit";
  ]

let test_argc_passed () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/argv" argv_app);
  let p = Sim.run_to_exit w ~path:"/bin/argv" ~argv:[ "/bin/argv"; "one"; "two" ] () in
  Alcotest.(check (option int)) "argc = 3" (Some 3) p.exit_status

let argv_read_app =
  [
    Asm.Label "main";
    (* print argv[1] (8 bytes): rsi = argv array *)
    Asm.I (Insn.Load (R14, RSI, 8));
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.I (Insn.Mov_rr (RSI, R14));
    Asm.I (Insn.Mov_ri (RDX, 5));
    Asm.Call_sym "write";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

let test_argv_strings_on_stack () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/argv2" argv_read_app);
  let p = Sim.run_to_exit w ~path:"/bin/argv2" ~argv:[ "/bin/argv2"; "hello" ] () in
  Alcotest.(check string) "argv[1] readable" "hello" (World.stdout_of p)

(* a missing dependency degrades gracefully: its openat fails like
   ld.so's search, the program still runs if it never calls into it *)
let test_missing_library_tolerated () =
  let w = Sim.create_world () in
  ignore
    (Sim.register_app w ~path:"/bin/m"
       ~needed:[ Libc.path; "/usr/lib/does-not-exist.so" ]
       [ Asm.Label "main"; Asm.I (Insn.Xor_rr (RDI, RDI)); Asm.Call_sym "exit" ]);
  let p = Sim.run_to_exit w ~path:"/bin/m" () in
  Alcotest.(check (option int)) "still runs" (Some 0) p.exit_status

(* spawn of a non-registered binary fails with ENOENT *)
let test_spawn_missing_binary () =
  let w = Sim.create_world () in
  match World.spawn w ~path:"/bin/nothing" () with
  | Error e -> Alcotest.(check int) "ENOENT" (-Errno.enoent) e
  | Ok _ -> Alcotest.fail "must fail"

(* relocations: Call_sym into libc really lands (write produced
   output), and Mov_sym yields a usable data address — implicitly
   covered everywhere, asserted once explicitly here *)
let test_relocation_end_to_end () =
  let w = Sim.create_world () in
  ignore
    (Sim.register_app w ~path:"/bin/rel"
       [
         Asm.Label "main";
         Asm.Mov_sym (R14, "blob");
         Asm.I (Insn.Load8 (RDI, R14, 2));  (* third byte: 'C' = 67 *)
         Asm.Call_sym "exit";
         Asm.Section `Data;
         Asm.Label "blob";
         Asm.Strz "ABCD";
       ]);
  let p = Sim.run_to_exit w ~path:"/bin/rel" () in
  Alcotest.(check (option int)) "data reloc resolved" (Some 67) p.exit_status

(* the vdso symbol resolves weakly: binaries link fine with the vdso
   disabled, and clock_gettime falls back to the syscall *)
let test_weak_vdso_symbol () =
  let w = Sim.create_world () in
  ignore
    (Sim.register_app w ~path:"/bin/clk"
       [
         Asm.Label "main";
         Asm.I (Insn.Mov_ri (RDI, 0));
         Asm.Mov_sym (RSI, "ts");
         Asm.Call_sym "clock_gettime";
         Asm.I (Insn.Mov_rr (RDI, RAX));
         Asm.Call_sym "exit";
         Asm.Section `Data;
         Asm.Label "ts";
         Asm.Zeros 16;
       ]);
  (match World.spawn w ~path:"/bin/clk" ~vdso:false () with
  | Error e -> Alcotest.failf "spawn: %d" e
  | Ok p ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "fallback syscall path worked" (Some 0) p.exit_status;
    Alcotest.(check int) "no vdso calls" 0 p.counters.c_vdso);
  (* and with the vdso on, the fast path is used *)
  let w2 = Sim.create_world () in
  ignore
    (Sim.register_app w2 ~path:"/bin/clk"
       [
         Asm.Label "main";
         Asm.I (Insn.Mov_ri (RDI, 0));
         Asm.Mov_sym (RSI, "ts");
         Asm.Call_sym "clock_gettime";
         Asm.I (Insn.Mov_rr (RDI, RAX));
         Asm.Call_sym "exit";
         Asm.Section `Data;
         Asm.Label "ts";
         Asm.Zeros 16;
       ]);
  let p2 = Sim.run_to_exit w2 ~path:"/bin/clk" () in
  Alcotest.(check (option int)) "vdso path worked" (Some 0) p2.exit_status;
  Alcotest.(check int) "one vdso call" 1 p2.counters.c_vdso

let tests =
  ( "loader",
    [
      Alcotest.test_case "LD_PRELOAD parsing" `Quick test_split_preload;
      Alcotest.test_case "transitive dependencies" `Quick test_transitive_deps;
      Alcotest.test_case "argc passed to main" `Quick test_argc_passed;
      Alcotest.test_case "argv strings on the stack" `Quick test_argv_strings_on_stack;
      Alcotest.test_case "missing library tolerated" `Quick test_missing_library_tolerated;
      Alcotest.test_case "spawn of missing binary" `Quick test_spawn_missing_binary;
      Alcotest.test_case "relocation end to end" `Quick test_relocation_end_to_end;
      Alcotest.test_case "weak vdso symbol + fallback" `Quick test_weak_vdso_symbol;
    ] )
