(* Integration tests: each baseline interposer drives the counting
   handler over a small application; interposed counts are compared
   against kernel ground truth. *)

open K23_isa
open K23_kernel
open K23_userland
module I = K23_interpose.Interpose
module Zp = K23_baselines.Zpoline
module Lp = K23_baselines.Lazypoline
module Sud = K23_baselines.Sud_interposer
module Pt = K23_baselines.Ptrace_interposer

(* A program that issues [n] inlined syscall-500s plus write+exit via
   libc. *)
let bench_app n =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, n));
    Asm.Label "loop";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "loop");
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "m");
    Asm.I (Insn.Mov_ri (RDX, 3));
    Asm.Call_sym "write";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "m";
    Asm.Strz "ok\n";
  ]

let world_with_app ?seed n =
  let w = Sim.create_world ?seed () in
  ignore (Sim.register_app w ~path:"/bin/bench" (bench_app n));
  w

let post_startup_syscalls (p : Kern.proc) = p.counters.c_app - p.counters.c_startup

let test_zpoline_interposes () =
  let w = world_with_app 50 in
  match Zp.launch w ~variant:Zp.Default ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check string) "stdout" "ok\n" (World.stdout_of p);
    (* zpoline interposes the app's post-startup syscalls... *)
    Alcotest.(check bool)
      (Printf.sprintf "interposed %d >= 52" stats.interposed)
      true (stats.interposed >= 52);
    (* ...entirely through the rewritten fast path *)
    Alcotest.(check int) "no SIGSYS path" 0 stats.via_sigsys;
    (* ...but misses every startup syscall (P2b) *)
    Alcotest.(check bool)
      (Printf.sprintf "startup blind spot: %d missed" p.counters.c_startup)
      true
      (p.counters.c_startup > 20)

let test_zpoline_ultra_null_check () =
  let w = world_with_app 5 in
  match Zp.launch w ~variant:Zp.Ultra ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check int) "no aborts on legitimate sites" 0 stats.aborts;
    let reserved, committed = Zp.check_memory_bytes p in
    Alcotest.(check bool) "bitmap reserves 2^45 bytes (P4b)" true (reserved = 1 lsl 45);
    Alcotest.(check bool) "committed pages are small" true (committed < 1 lsl 20)

let test_lazypoline_interposes () =
  let w = world_with_app 50 in
  match Lp.launch w ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check bool)
      (Printf.sprintf "interposed %d >= 52" stats.interposed)
      true (stats.interposed >= 52);
    (* first execution of each site goes through SIGSYS, the rest are
       rewritten *)
    Alcotest.(check bool) "some SIGSYS discoveries" true (stats.via_sigsys >= 1);
    Alcotest.(check bool)
      (Printf.sprintf "fast path dominates (%d rewrites vs %d traps)" stats.via_rewrite
         stats.via_sigsys)
      true
      (stats.via_rewrite > stats.via_sigsys)

let test_sud_interposes () =
  let w = world_with_app 50 in
  match Sud.launch w ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    Alcotest.(check bool) "interposed" true (stats.interposed >= 52);
    Alcotest.(check int) "all via SIGSYS" stats.interposed stats.via_sigsys

let test_ptrace_interposes_everything () =
  let w = world_with_app 50 in
  match Pt.launch w ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
    (* ptrace sees every app syscall including the startup window:
       exhaustiveness means interposed = ground truth *)
    Alcotest.(check int) "exhaustive" p.counters.c_app stats.interposed;
    Alcotest.(check bool) "startup window covered" true (p.counters.c_startup > 20)

(* Deep argument inspection: the handler reads the buffer passed to
   write(2) out of the target's memory — the expressiveness that
   seccomp-style filters lack. *)
let test_argument_inspection () =
  let w = world_with_app 1 in
  let seen = ref "" in
  let inner : I.handler =
   fun ctx ~nr ~args ~site:_ ->
    if nr = Sysno.write then
      seen := K23_machine.Memory.read_cstr ctx.thread.t_proc.mem args.(1);
    I.Forward
  in
  (match Zp.launch w ~variant:Zp.Default ~inner ~path:"/bin/bench" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) -> World.run_until_exit w p);
  Alcotest.(check string) "handler saw the write buffer" "ok\n" !seen

(* Emulation: the handler rewrites the result of syscall 500 without
   entering the kernel. *)
let emulate_app =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    (* exit with the (emulated) syscall result as status *)
    Asm.I (Insn.Mov_rr (RDI, RAX));
    Asm.Call_sym "exit";
  ]

let test_emulation () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/emu" emulate_app);
  let inner : I.handler =
   fun _ ~nr ~args:_ ~site:_ -> if nr = Sysno.bench_nonexistent then I.Emulate 42 else I.Forward
  in
  (match Zp.launch w ~variant:Zp.Default ~inner ~path:"/bin/emu" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "emulated result becomes exit code" (Some 42) p.exit_status)

let test_emulation_sud () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/emu" emulate_app);
  let inner : I.handler =
   fun _ ~nr ~args:_ ~site:_ -> if nr = Sysno.bench_nonexistent then I.Emulate 42 else I.Forward
  in
  match Sud.launch w ~inner ~path:"/bin/emu" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) ->
    World.run_until_exit w p;
    Alcotest.(check (option int)) "emulated via SIGSYS path" (Some 42) p.exit_status

let tests =
  ( "interposers",
    [
      Alcotest.test_case "zpoline interposes (fast path only)" `Quick test_zpoline_interposes;
      Alcotest.test_case "zpoline-ultra bitmap (P4b numbers)" `Quick test_zpoline_ultra_null_check;
      Alcotest.test_case "lazypoline trap-then-rewrite" `Quick test_lazypoline_interposes;
      Alcotest.test_case "SUD interposes everything post-init" `Quick test_sud_interposes;
      Alcotest.test_case "ptrace is exhaustive (incl. startup)" `Quick test_ptrace_interposes_everything;
      Alcotest.test_case "deep argument inspection" `Quick test_argument_inspection;
      Alcotest.test_case "emulation via rewrite path" `Quick test_emulation;
      Alcotest.test_case "emulation via SIGSYS path" `Quick test_emulation_sud;
    ] )
