(* N-variant execution on K23 (the paper's Bunshin motivation for
   exhaustive interposition, Section 4.2): run two variants of the same
   program and cross-check their system call streams in lockstep; any
   divergence signals memory corruption or compromise of one variant.

   This only works if *every* system call of both variants is
   observed: a missed call desynchronises the monitor.  K23's
   exhaustiveness (ptrace startup + rewriting + SUD fallback) is what
   makes the check sound without Bunshin's kernel modifications.

   Run with:  dune exec examples/nvariant.exe *)

open K23_isa
open K23_kernel
open K23_userland
module K23 = K23_core.K23
module I = K23_interpose.Interpose

let app =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, 5));
    Asm.Label "loop";
    Asm.Call_sym "getpid";
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "msg");
    Asm.I (Insn.Mov_ri (RDX, 6));
    Asm.Call_sym "write";
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "msg";
    Asm.Strz "tick\n";
  ]

(* The lockstep monitor: each variant appends (nr, arg-digest) events
   to its stream; a divergence check compares the streams index by
   index.  Events that legitimately differ across variants (addresses
   under ASLR) are digested by syscall number + buffer contents, not
   raw pointer values — standard MVX practice. *)
type event = { nr : int; digest : string }

let monitor streams idx : I.handler =
 fun ctx ~nr ~args ~site:_ ->
  let p = ctx.thread.t_proc in
  (* digest policy: compare what is semantically observable.  Write
     buffers are compared by content; pointer-valued arguments vary
     legitimately under ASLR and are normalised away; fd-valued
     arguments are compared directly. *)
  let digest =
    if nr = Sysno.write then
      Printf.sprintf "fd%d:%s" args.(0) (K23_machine.Memory.read_cstr p.mem args.(1))
    else if nr = Sysno.read || nr = Sysno.close then string_of_int args.(0)
    else "-"
  in
  streams.(idx) <- { nr; digest } :: streams.(idx);
  Forward

let () =
  let streams = [| []; [] |] in
  let run idx ~seed =
    let w = Sim.create_world ~seed () in
    ignore (Sim.register_app w ~path:"/bin/variant" app);
    ignore (K23.offline_run w ~path:"/bin/variant" ());
    K23.seal_logs w;
    match K23.launch w ~variant:K23.Ultra ~inner:(monitor streams idx) ~path:"/bin/variant" () with
    | Error e -> failwith (Printf.sprintf "variant %d failed: %d" idx e)
    | Ok (p, stats) ->
      World.run_until_exit w p;
      Printf.printf "variant %d (seed %d, ASLR slide %#x): %d syscalls, exhaustive=%b\n" idx seed
        p.aslr_slide stats.interposed
        (stats.interposed = p.counters.c_app)
  in
  (* two variants: different ASLR layouts, same program *)
  run 0 ~seed:101;
  run 1 ~seed:202;
  let a = List.rev streams.(0) and b = List.rev streams.(1) in
  Printf.printf "\nlockstep check over %d / %d events: " (List.length a) (List.length b);
  if List.length a <> List.length b then print_endline "DIVERGENCE (length)"
  else begin
    let diverged =
      List.exists2 (fun x y -> x.nr <> y.nr || x.digest <> y.digest) a b
    in
    print_endline (if diverged then "DIVERGENCE" else "variants agree — no corruption detected")
  end
