(* A guided tour of the System Call Interposition Pitfalls: runs every
   PoC of Section 4 under zpoline, lazypoline and K23, narrating what
   happens — the executable version of the paper's Table 3.

   Run with:  dune exec examples/pitfall_tour.exe *)

module H = K23_pitfalls.Harness

let () =
  List.iter
    (fun pf ->
      Printf.printf "\n%s — %s\n" (H.pitfall_to_string pf) (H.pitfall_description pf);
      List.iter
        (fun sys ->
          let v = H.check sys pf in
          Printf.printf "  %-12s %s  (%s)\n" (H.system_to_string sys)
            (if v.H.handled then "handled    " else "NOT handled")
            v.H.detail)
        H.all_systems)
    H.all_pitfalls;
  print_newline ();
  print_string (H.render_table3 (H.run_table3 ()))
