examples/pitfall_tour.mli:
