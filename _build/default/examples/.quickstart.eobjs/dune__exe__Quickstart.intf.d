examples/quickstart.mli:
