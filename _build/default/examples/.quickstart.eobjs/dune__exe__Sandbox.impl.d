examples/sandbox.ml: Array Asm Errno Insn K23_core K23_interpose K23_isa K23_kernel K23_machine K23_userland Kern Printf Sim String Sysno Vfs World
