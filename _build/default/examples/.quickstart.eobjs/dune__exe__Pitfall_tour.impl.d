examples/pitfall_tour.ml: K23_pitfalls List Printf
