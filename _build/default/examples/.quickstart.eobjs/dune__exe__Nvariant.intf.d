examples/nvariant.mli:
