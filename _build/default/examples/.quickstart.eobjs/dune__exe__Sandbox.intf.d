examples/sandbox.mli:
