examples/tracer.mli:
