examples/nvariant.ml: Array Asm Insn K23_core K23_interpose K23_isa K23_kernel K23_machine K23_userland List Printf Sim Sysno World
