examples/tracer.ml: Array K23_apps K23_core K23_interpose K23_kernel K23_machine K23_userland Kern Printf String Sysno World
