(* strace built on K23: print every system call of /bin/ls with
   decoded arguments — including the >100 calls the dynamic loader
   issues before main, which LD_PRELOAD-only tools cannot see.

   Run with:  dune exec examples/tracer.exe *)

open K23_kernel
module K23 = K23_core.K23
module Apps = K23_apps

let string_arg ctx addr =
  if addr = 0 then "NULL"
  else
    match K23_machine.Memory.read_cstr ctx.Kern.thread.t_proc.mem addr with
    | s when String.length s > 0 && String.length s < 60 -> Printf.sprintf "%S" s
    | _ -> Printf.sprintf "%#x" addr

(* decode the interesting arguments per syscall, strace-style *)
let render ctx ~nr ~(args : int array) =
  let s = string_arg ctx in
  match Sysno.name nr with
  | "openat" -> Printf.sprintf "openat(AT_FDCWD, %s, %#x)" (s args.(1)) args.(2)
  | "open" | "stat" | "access" | "unlink" | "chdir" | "mkdir" ->
    Printf.sprintf "%s(%s)" (Sysno.name nr) (s args.(0))
  | "read" | "write" ->
    Printf.sprintf "%s(%d, %#x, %d)" (Sysno.name nr) args.(0) args.(1) args.(2)
  | "mmap" ->
    Printf.sprintf "mmap(%#x, %d, prot=%d, flags=%#x, fd=%d)" args.(0) args.(1) args.(2)
      args.(3) args.(4)
  | "execve" -> Printf.sprintf "execve(%s, ...)" (s args.(0))
  | name -> Printf.sprintf "%s(%d, %d, %d)" name args.(0) args.(1) args.(2)

let () =
  let w = K23_userland.Sim.create_world () in
  Apps.Coreutils.register_all w;
  let path = Apps.Coreutils.path "ls" in
  ignore (K23.offline_run w ~path ());
  K23.seal_logs w;
  let count = ref 0 in
  let inner : K23_interpose.Interpose.handler =
   fun ctx ~nr ~args ~site ->
    incr count;
    let phase = if ctx.thread.t_proc.startup_done then "      " else "start>" in
    Printf.printf "%s %-4d %s @%#x\n" phase !count (render ctx ~nr ~args) site;
    Forward
  in
  match K23.launch w ~variant:K23.Default ~inner ~path () with
  | Error e -> Printf.eprintf "launch failed: %d\n" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Printf.printf "--- %d syscalls traced (%d during startup, invisible to LD_PRELOAD tools)\n"
      stats.interposed p.counters.c_startup
