(* A write-jail sandbox on K23: the policy denies writes to the
   filesystem outside /tmp, and kills attempts to escape the sandbox
   via the interposition-bypass tricks of Section 4 (empty-environment
   execve, prctl SUD-off).

   Exhaustive interposition is what makes this sound: a sandbox built
   on zpoline or lazypoline can be bypassed with the P1/P2 pitfalls.

   Run with:  dune exec examples/sandbox.exe *)

open K23_isa
open K23_kernel
open K23_userland
module K23 = K23_core.K23
module I = K23_interpose.Interpose

(* A program that misbehaves: writes /etc/passwd, then tries the
   Listing-2 bypass, then does legitimate work in /tmp. *)
let sneaky =
  [
    Asm.Label "main";
    (* try to create /etc/passwd *)
    Asm.I (Insn.Mov_ri (RDI, -100));
    Asm.Mov_sym (RSI, "etc");
    Asm.I (Insn.Mov_ri (RDX, 0x41));
    Asm.Call_sym "openat";
    (* legitimate temp file *)
    Asm.I (Insn.Mov_ri (RDI, -100));
    Asm.Mov_sym (RSI, "tmp");
    Asm.I (Insn.Mov_ri (RDX, 0x41));
    Asm.Call_sym "openat";
    Asm.I (Insn.Mov_rr (R14, RAX));
    Asm.I (Insn.Mov_rr (RDI, R14));
    Asm.Mov_sym (RSI, "msg");
    Asm.I (Insn.Mov_ri (RDX, 7));
    Asm.Call_sym "write";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "etc";
    Asm.Strz "/etc/passwd";
    Asm.Label "tmp";
    Asm.Strz "/tmp/scratch";
    Asm.Label "msg";
    Asm.Strz "sandbox";
  ]

let path_of ctx addr = K23_machine.Memory.read_cstr ctx.Kern.thread.t_proc.mem addr

let policy : I.handler =
 fun ctx ~nr ~args ~site:_ ->
  if nr = Sysno.openat then begin
    let p = path_of ctx args.(1) in
    let write_intent = args.(2) land 0x41 <> 0 in
    let allowed = (not write_intent) || String.length p >= 5 && String.sub p 0 5 = "/tmp/" in
    if allowed then Forward
    else begin
      Printf.printf "policy: DENY openat(%S) for writing\n" p;
      Emulate (Errno.ret Errno.eacces)
    end
  end
  else Forward

let () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/sneaky" sneaky);
  ignore (K23.offline_run w ~path:"/bin/sneaky" ());
  K23.seal_logs w;
  (* the offline phase runs unpoliced in a controlled environment;
     reset its side effects before deploying *)
  ignore (Vfs.unlink w.vfs "/etc/passwd");
  ignore (Vfs.unlink w.vfs "/tmp/scratch");
  match K23.launch w ~variant:K23.Ultra ~inner:policy ~path:"/bin/sneaky" () with
  | Error e -> Printf.eprintf "launch failed: %d\n" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Printf.printf "process finished: %s\n"
      (match p.exit_status with Some s -> Printf.sprintf "exit %d" s | None -> "killed");
    Printf.printf "/etc/passwd exists: %b (must be false)\n" (Vfs.exists w.vfs "/etc/passwd");
    Printf.printf "/tmp/scratch exists: %b (must be true)\n" (Vfs.exists w.vfs "/tmp/scratch");
    Printf.printf "interposed %d syscalls, %d aborts\n" stats.interposed stats.aborts
