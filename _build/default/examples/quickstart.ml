(* Quickstart: interpose every system call of a program with K23.

   Run with:  dune exec examples/quickstart.exe

   The flow is the paper's Figure 2 + Figure 4 end to end:
   1. build a world (simulated machine + kernel + userland),
   2. register an application binary,
   3. offline phase: run it under libLogger to learn its syscall sites,
   4. seal the logs,
   5. online phase: ptracer covers startup, libK23 rewrites the logged
      sites and arms the SUD fallback,
   6. every application system call reaches your handler. *)

open K23_isa
open K23_kernel
open K23_userland
module K23 = K23_core.K23

(* A small program: greets, reads a file, exits. *)
let app =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, "greeting");
    Asm.I (Insn.Mov_ri (RDX, 30));
    Asm.Call_sym "write";
    Asm.I (Insn.Mov_ri (RDI, -100));
    Asm.Mov_sym (RSI, "cfg");
    Asm.I (Insn.Mov_ri (RDX, 0));
    Asm.Call_sym "openat";
    Asm.I (Insn.Mov_rr (RDI, RAX));
    Asm.Call_sym "close";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "greeting";
    Asm.Strz "hello from the simulated app!\n";
    Asm.Label "cfg";
    Asm.Strz "/etc/hostname";
  ]

let () =
  (* 1-2: world + app *)
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/demo" app);

  (* 3-4: offline phase *)
  let entries = K23.offline_run w ~path:"/bin/demo" () in
  Printf.printf "offline phase logged %d unique syscall sites:\n" (List.length entries);
  List.iter
    (fun e -> Printf.printf "  %s,%d\n" e.K23_core.Log_store.region e.K23_core.Log_store.offset)
    entries;
  K23.seal_logs w;

  (* 5-6: online phase with a handler that watches openat *)
  let inner : K23_interpose.Interpose.handler =
   fun ctx ~nr ~args ~site:_ ->
    if nr = Sysno.openat then
      Printf.printf "handler: app opens %S\n"
        (K23_machine.Memory.read_cstr ctx.thread.t_proc.mem args.(1));
    Forward
  in
  match K23.launch w ~variant:K23.Ultra ~inner ~path:"/bin/demo" () with
  | Error e -> Printf.eprintf "launch failed: %d\n" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    Printf.printf "\napp stdout: %s" (World.stdout_of p);
    Printf.printf "\nexhaustiveness: %d app syscalls, %d interposed%s\n" p.counters.c_app
      stats.interposed
      (if p.counters.c_app = stats.interposed then "  [exhaustive]" else "  [MISSED SOME]");
    Printf.printf "paths: %d via ptrace (startup), %d via rewritten sites, %d via SUD fallback\n"
      stats.via_ptrace stats.via_rewrite stats.via_sigsys
