(* k23 — command-line front end.

   Subcommands:
     k23 run <app> [--under MECH]     run a bundled app under an interposer
     k23 trace <app>                  strace-style listing via K23
     k23 record <app> --mech M -o F   record a run's full ktrace log to F
     k23 replay F [--at N]            re-drive a recording, diff every event
     k23 offline <app>                run the offline phase, print the log
     k23 pitfalls                     run the PoCs, print Table 3
     k23 fuzz [--jobs N]              differential conformance fuzzing
     k23 bench table5|table6|fuzz     evaluation sweeps, --jobs to shard
     k23 apps                         list bundled applications

   Bundled apps are the simulated coreutils (pwd, touch, ls, cat,
   clear). *)

open Cmdliner
open K23_kernel
open K23_userland
module Apps = K23_apps
module K23 = K23_core.K23
module I = K23_interpose.Interpose

let setup_world () =
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  w

let resolve_app name =
  if List.exists (fun (n, _, _) -> n = name) Apps.Coreutils.all then Apps.Coreutils.path name
  else name

(* names come from the single Mech registry — no table to keep in sync *)
let mech_conv =
  let parse s =
    match K23_eval.Mech.of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown mechanism %S (known: %s)" s
             (String.concat ", " (List.map K23_eval.Mech.to_string K23_eval.Mech.all))))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (K23_eval.Mech.to_string m))

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Bundled app name or path.")

let run_cmd =
  let under =
    Arg.(
      value
      & opt mech_conv K23_eval.Mech.K23_ultra
      & info [ "under"; "u" ] ~docv:"MECH"
          ~doc:
            "Interposer: native, zpoline, zpoline-ultra, lazypoline, k23, k23-ultra, k23-ultra+, \
             sud.")
  in
  let run app mech =
    let w = setup_world () in
    let path = resolve_app app in
    if K23_eval.Mech.needs_offline mech then begin
      ignore (K23.offline_run w ~path ());
      K23.seal_logs w
    end;
    match K23_eval.Mech.launch mech w ~path () with
    | Error e -> Printf.eprintf "launch failed: %s\n" (Errno.to_string e)
    | Ok (p, stats) ->
      World.run_until_exit w p;
      print_string (World.stdout_of p);
      Printf.printf "[%s] %s; %d app syscalls" (K23_eval.Mech.to_string mech)
        (match (p.exit_status, p.term_signal) with
        | Some s, _ -> Printf.sprintf "exit %d" s
        | None, Some sg -> Printf.sprintf "killed by signal %d" sg
        | None, None -> "did not terminate")
        p.counters.c_app;
      (match stats with
      | Some s ->
        Printf.printf ", %d interposed (%d ptrace / %d rewrite / %d SUD)\n" s.I.interposed
          s.via_ptrace s.via_rewrite s.via_sigsys
      | None -> print_newline ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an app under an interposition mechanism.")
    Term.(const run $ app_arg $ under)

let trace_cmd =
  let mech_opt =
    Arg.(
      value
      & opt (some mech_conv) None
      & info [ "mech"; "m" ] ~docv:"MECH"
          ~doc:
            "Record a structured ktrace event stream under this mechanism instead of the \
             default strace-style K23 listing.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the ktrace event stream (plus counters) as JSON on stdout.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"World RNG seed; two runs with the same seed produce byte-identical streams.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:
            "Print only the first N events of the stream (human and JSON); the footer still \
             reports the full event count.")
  in
  (* Structured path: run [app] under [mech] with the ktrace ring
     enabled (after K23's offline phase, so the stream covers the
     online run) and render the events human- or JSON-style. *)
  let run_ktrace ~mech ~json ~seed ~limit path =
    let w = Sim.create_world ?seed () in
    Apps.Coreutils.register_all w;
    if K23_eval.Mech.needs_offline mech then begin
      ignore (K23.offline_run w ~path ());
      K23.seal_logs w
    end;
    let t = Kern.ktrace_enable w in
    match K23_eval.Mech.launch mech w ~path () with
    | Error e -> Printf.eprintf "launch failed: %s\n" (Errno.to_string e)
    | Ok (p, _stats) ->
      World.run_until_exit w p;
      let events = K23_obs.Trace.events t in
      let total = List.length events in
      let shown =
        match limit with
        | Some n when n >= 0 && n < total -> List.filteri (fun i _ -> i < n) events
        | _ -> events
      in
      if json then
        print_string
          (K23_obs.Render.json_stream ~namer:Sysno.name
             ~counters:(K23_obs.Counters.to_alist t.K23_obs.Trace.counters)
             ~dropped:(K23_obs.Trace.dropped t) shown)
      else begin
        print_string (K23_obs.Render.human_stream ~namer:Sysno.name shown);
        if List.length shown < total then
          Printf.printf "--- showing first %d of %d events (%d dropped)\n" (List.length shown)
            total (K23_obs.Trace.dropped t)
        else
          Printf.printf "--- %d events (%d dropped)\n" total (K23_obs.Trace.dropped t)
      end
  in
  (* Legacy path: the exhaustive strace-style listing via a K23 inner
     handler, byte-compatible with earlier releases. *)
  let run_legacy path =
    let w = setup_world () in
    ignore (K23.offline_run w ~path ());
    K23.seal_logs w;
    let inner : I.handler =
     fun ctx ~nr ~args ~site ->
      Printf.printf "%s%-18s(%#x, %#x, %#x) @%#x\n"
        (if ctx.thread.t_proc.startup_done then "" else "[startup] ")
        (Sysno.name nr) args.(0) args.(1) args.(2) site;
      Forward
    in
    match K23.launch w ~variant:K23.Default ~inner ~path () with
    | Error e -> Printf.eprintf "launch failed: %s\n" (Errno.to_string e)
    | Ok (p, stats) ->
      World.run_until_exit w p;
      Printf.printf "--- %d syscalls (exhaustive: %b)\n" stats.interposed
        (stats.interposed = p.counters.c_app)
  in
  let run app mech json seed limit =
    let path = resolve_app app in
    match (mech, json, limit) with
    | None, false, None -> run_legacy path
    | Some m, _, _ -> run_ktrace ~mech:m ~json ~seed ~limit path
    | None, _, _ -> run_ktrace ~mech:K23_eval.Mech.K23_default ~json ~seed ~limit path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Syscall tracing: strace-style listing via K23 by default; with $(b,--mech), \
          $(b,--json) or $(b,--limit), a structured ktrace event stream under any mechanism.")
    Term.(const run $ app_arg $ mech_opt $ json $ seed $ limit)

let record_cmd =
  let module R = K23_replay in
  let mech =
    Arg.(
      value
      & opt mech_conv K23_eval.Mech.K23_ultra
      & info [ "mech"; "m" ] ~docv:"MECH" ~doc:"Mechanism to record the run under.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Recording file to write (default: $(docv) is <app>.k23rec).")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"World RNG seed baked into the recording.")
  in
  let run app mech out seed =
    let path = resolve_app app in
    let cfg =
      match seed with
      | None -> World.Config.default
      | Some s -> { World.Config.default with World.Config.seed = s }
    in
    match
      R.Recorder.record ~cfg ~register:(fun w -> Apps.Coreutils.register_all w) ~mech ~path ()
    with
    | Error e ->
      Printf.eprintf "launch failed: %s\n" (Errno.to_string e);
      Stdlib.exit 1
    | Ok r ->
      let out =
        match out with Some o -> o | None -> Filename.basename path ^ ".k23rec"
      in
      R.Recording.save ~path:out r;
      Printf.printf "recorded %s under %s: %d events, %s -> %s\n" path
        (K23_eval.Mech.to_string mech)
        (List.length r.R.Recording.rc_events)
        (match List.assoc_opt r.R.Recording.rc_root r.R.Recording.rc_fates with
        | Some f -> R.Recording.fate_to_string f
        | None -> "?")
        out
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Record a run: capture the complete ktrace event stream (unbounded sink — nothing is \
          dropped) plus the world recipe into a replayable .k23rec file.")
    Term.(const run $ app_arg $ mech $ out $ seed)

let replay_cmd =
  let module R = K23_replay in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Recording written by $(b,k23 record).")
  in
  let at =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"N"
          ~doc:
            "Time travel: halt the replayed world the instant event N is emitted and dump the \
             machine state (registers, memory map, fd table).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the replay verdict as JSON.") in
  let run file at json =
    let r =
      try R.Recording.load file with
      | R.Recording.Parse_error m ->
        Printf.eprintf "%s: %s\n" file m;
        Stdlib.exit 2
      | Sys_error m ->
        Printf.eprintf "%s\n" m;
        Stdlib.exit 2
    in
    match R.Replayer.replay ?at ~register:(fun w -> Apps.Coreutils.register_all w) r with
    | Error e ->
      Printf.eprintf "launch failed: %s\n" (Errno.to_string e);
      Stdlib.exit 1
    | Ok o ->
      if json then print_endline (R.Replayer.render_json r o)
      else print_string (R.Replayer.render r o);
      if not (R.Replayer.ok o) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-drive a recorded run in a fresh world, substituting recorded syscall results and \
          diffing the live event stream against the log; reports the first divergence with \
          context.  Exit status 1 on divergence.")
    Term.(const run $ file $ at $ json)

let offline_cmd =
  let run app =
    let w = setup_world () in
    let path = resolve_app app in
    let entries = K23.offline_run w ~path () in
    Printf.printf "%d unique syscall sites:\n" (List.length entries);
    List.iter
      (fun e -> Printf.printf "%s,%d\n" e.K23_core.Log_store.region e.K23_core.Log_store.offset)
      entries
  in
  Cmd.v
    (Cmd.info "offline" ~doc:"Run K23's offline phase and print the site log (Figure 3 format).")
    Term.(const run $ app_arg)

let pitfalls_cmd =
  let run () =
    print_string (K23_pitfalls.Harness.render_table3 (K23_pitfalls.Harness.run_table3 ()))
  in
  Cmd.v
    (Cmd.info "pitfalls" ~doc:"Run the P1-P5 PoCs; print the Table 3 matrix.")
    Term.(const run $ const ())

let fuzz_cmd =
  let module F = K23_fuzz in
  let seed =
    Arg.(
      value & opt int 23
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; determines every generated program.")
  in
  let iters =
    Arg.(
      value & opt int 100
      & info [ "iters"; "n" ] ~docv:"N" ~doc:"Number of programs to generate and check.")
  in
  let mech =
    Arg.(
      value
      & opt (some mech_conv) None
      & info [ "mech"; "m" ] ~docv:"MECH"
          ~doc:
            "Check only this mechanism (default on x86-64: zpoline-ultra, lazypoline, sud, \
             ptrace, seccomp, k23-ultra; on arm64: asc-hook, sud, ptrace, seccomp).  Must be \
             available on the selected $(b,--isa).")
  in
  let isa =
    let isa_conv =
      let parse s =
        match K23_isa.Isa.of_string s with
        | Some i -> Ok i
        | None -> Error (`Msg (Printf.sprintf "unknown isa %S (x86-64 or arm64)" s))
      in
      Arg.conv (parse, fun fmt i -> Format.pp_print_string fmt (K23_isa.Isa.to_string i))
    in
    Arg.(
      value
      & opt isa_conv K23_isa.Isa.X86_64
      & info [ "isa" ] ~docv:"ISA"
          ~doc:
            "Instruction set of the fuzzed worlds: $(b,x86-64) (default) or $(b,arm64).  \
             Selects the generator backend, the default mechanism column and which \
             mechanisms $(b,--mech) accepts.")
  in
  let shapes =
    Arg.(
      value
      & opt (some string) None
      & info [ "shapes" ] ~docv:"S1,S2"
          ~doc:
            "Comma-separated hazard shapes: raw, embedded, straddle, smc, fork, signal, plus the \
             opt-in divergent shapes null-call and execve-scrub.  Default: the conformance-safe \
             mix.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ] ~doc:"Shrink each divergence to a minimal repro (delta debugging).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"With $(b,--minimize): write each minimized repro to DIR as a corpus file.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the campaign report as JSON.") in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Run native and every mechanism under the same seeded fault schedule (EINTR with \
             restart semantics, short reads/writes, errno storms): a divergence then means the \
             mechanism mishandles an interrupted or restarted syscall.  The schedule seed is \
             the campaign seed, so reports stay byte-identical at any $(b,--jobs).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard iterations across N domains.  The report (text or JSON) is byte-identical \
             for every N.")
  in
  let oracle =
    let oracle_conv =
      let parse s =
        match F.Campaign.oracle_mode_of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg (Printf.sprintf "unknown oracle mode %S (live or replay)" s))
      in
      Arg.conv
        (parse, fun fmt m -> Format.pp_print_string fmt (F.Campaign.oracle_mode_to_string m))
    in
    Arg.(
      value
      & opt oracle_conv F.Campaign.Live
      & info [ "oracle" ] ~docv:"MODE"
          ~doc:
            "Native-reference mode: $(b,live) projects the native run straight off its world; \
             $(b,replay) records it once (lib/replay), round-trips the recording through the \
             wire format and projects off the log.  Verdicts are identical either way — gated \
             in runtest.")
  in
  let run seed iters mech shapes minimize save json faults jobs oracle isa =
    let shapes =
      match shapes with
      | None -> F.Gen.default_shapes
      | Some s ->
        String.split_on_char ',' s
        |> List.map (fun name ->
               match F.Gen.shape_of_string (String.trim name) with
               | Some sh when List.mem sh (F.Gen.all_shapes_for isa) -> sh
               | Some sh ->
                 Printf.eprintf "shape %S has no %s realisation\n"
                   (F.Gen.shape_to_string sh) (K23_isa.Isa.to_string isa);
                 Stdlib.exit 2
               | None ->
                 Printf.eprintf "unknown shape %S\n" name;
                 Stdlib.exit 2)
    in
    let mechs =
      match mech with
      | None -> F.Oracle.default_mechs_for isa
      | Some m ->
        let avail = K23_eval.Mech.available ~isa in
        if not (List.mem m avail) then begin
          Printf.eprintf "mechanism %s is not available on %s (available: %s)\n"
            (K23_eval.Mech.to_string m) (K23_isa.Isa.to_string isa)
            (String.concat ", " (List.map K23_eval.Mech.to_string avail));
          Stdlib.exit 2
        end;
        [ m ]
    in
    let world =
      let base =
        { F.Campaign.default_config.c_world with K23_kernel.World.Config.isa }
      in
      if faults then
        { base with K23_kernel.World.Config.faults = K23_faults.Faults.chaos ~fseed:seed () }
      else base
    in
    let config =
      {
        F.Campaign.default_config with
        c_seed = seed;
        c_iters = iters;
        c_mechs = mechs;
        c_shapes = shapes;
        c_minimize = minimize;
        c_world = world;
        c_oracle = oracle;
      }
    in
    let report = F.Campaign.run ~jobs config in
    if json then print_string (F.Campaign.render_json report)
    else print_string (F.Campaign.render_text report);
    (match save with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iteri
        (fun i (f : F.Campaign.finding) ->
          match f.f_minimized with
          | None -> ()
          | Some e ->
            let name =
              Printf.sprintf "%s-seed%d-%d.repro"
                (K23_eval.Mech.to_string f.f_mech)
                f.f_prog_seed i
            in
            let path = Filename.concat dir name in
            F.Corpus.save ~path e;
            Printf.eprintf "saved %s\n" path)
        report.r_findings);
    if F.Campaign.total_divergences report > 0 then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: run seeded adversarial programs natively and under \
          interposition mechanisms; any observable difference is a mechanism bug.  Exit status 1 \
          if divergences were found.")
    Term.(
      const run $ seed $ iters $ mech $ shapes $ minimize $ save $ json $ faults $ jobs $ oracle
      $ isa)

let bench_cmd =
  let module F = K23_fuzz in
  let exps =
    Arg.(
      non_empty
      & pos_all (enum [ ("table5", `Table5); ("table6", `Table6); ("fuzz", `Fuzz) ]) []
      & info [] ~docv:"EXPERIMENT" ~doc:"$(b,table5), $(b,table6) or $(b,fuzz).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Shard the sweep across N domains; tables and reports are identical for every N.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer repetitions per cell / fewer iterations.")
  in
  let run exps jobs quick =
    List.iter
      (fun exp ->
        match exp with
        | `Table5 ->
          print_string
            (K23_eval.Micro.render (K23_eval.Micro.table5 ~runs:(if quick then 3 else 10) ~jobs ()))
        | `Table6 ->
          print_string
            (K23_eval.Macro.render (K23_eval.Macro.table6 ~runs:(if quick then 3 else 5) ~jobs ()))
        | `Fuzz ->
          let config =
            { F.Campaign.default_config with c_iters = (if quick then 50 else 300) }
          in
          (* wall clock, not Sys.time: CPU time sums across domains *)
          let t0 = Unix.gettimeofday () in
          let r = F.Campaign.run ~jobs config in
          let dt = Unix.gettimeofday () -. t0 in
          print_string (F.Campaign.render_text r);
          Printf.printf "throughput: %d oracle runs in %.2fs (%.0f execs/sec, jobs=%d)\n"
            r.F.Campaign.r_runs dt
            (float_of_int r.F.Campaign.r_runs /. dt)
            jobs)
      exps
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run an evaluation sweep — Table 5 microbenchmarks, Table 6 macrobenchmarks, or the \
          fuzzer throughput experiment — optionally sharded across domains with $(b,--jobs).")
    Term.(const run $ exps $ jobs $ quick)

let apps_cmd =
  let run () = List.iter (fun (n, _, _) -> Printf.printf "%s\n" n) Apps.Coreutils.all in
  Cmd.v (Cmd.info "apps" ~doc:"List bundled applications.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "k23" ~version:"1.0.0"
      ~doc:"K23 system call interposition on a simulated x86-64/Linux substrate"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            trace_cmd;
            record_cmd;
            replay_cmd;
            offline_cmd;
            pitfalls_cmd;
            fuzz_cmd;
            bench_cmd;
            apps_cmd;
          ]))
