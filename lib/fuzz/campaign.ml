(** Fuzzing campaigns: generate [iters] programs from a seed, run each
    through the differential oracle against a set of mechanisms, and
    collect divergences plus coverage statistics into a report.

    Everything in the report is a pure function of the configuration —
    per-iteration program seeds are derived from the campaign seed, the
    oracle worlds use a fixed world seed, and the report carries no
    timing — so the same seed renders byte-identical JSON on every
    machine.  Throughput (execs/sec) is measured by the bench harness
    around this module, never inside the report. *)

module Mech = K23_eval.Mech
module Rng = K23_util.Rng

type config = {
  c_seed : int;
  c_iters : int;
  c_mechs : Mech.t list;
  c_shapes : Gen.shape list;
  c_minimize : bool;  (** shrink each divergence to a minimal repro *)
  c_world_seed : int;
  c_max_steps : int;
}

let default_config =
  {
    c_seed = 23;
    c_iters = 100;
    c_mechs = Oracle.default_mechs;
    c_shapes = Gen.default_shapes;
    c_minimize = false;
    c_world_seed = Oracle.default_world_seed;
    c_max_steps = Oracle.default_max_steps;
  }

(** Per-iteration program seed: decoupled from iteration order only by
    the campaign seed, so any iteration can be replayed alone. *)
let iter_seed config i = (config.c_seed * 1_000_003) + i

type finding = {
  f_iter : int;
  f_prog_seed : int;
  f_mech : Mech.t;
  f_divergence : Oracle.divergence;
  f_shapes : Gen.shape list;
  f_minimized : Corpus.entry option;  (** present when [c_minimize] *)
  f_min_insns : int option;
}

type report = {
  r_config : config;
  r_programs : int;
  r_runs : int;  (** oracle executions, native reference included *)
  r_insns : int;  (** static instructions generated *)
  r_divergent : (Mech.t * int) list;  (** per mechanism, campaign total *)
  r_findings : finding list;
  r_insn_hist : (string * int) list;
  r_sys_hist : (int * int) list;
}

let total_divergences r = List.fold_left (fun a (_, n) -> a + n) 0 r.r_divergent

(** Run a campaign.  [on_finding] fires as divergences are found (for
    live CLI output); the report is assembled at the end. *)
let run ?(on_finding = fun (_ : finding) -> ()) config =
  let progs = ref [] in
  let findings = ref [] in
  let runs = ref 0 in
  let counts = List.map (fun m -> (m, ref 0)) config.c_mechs in
  for i = 0 to config.c_iters - 1 do
    let pseed = iter_seed config i in
    let rng = Rng.create ~seed:pseed in
    let prog = Gen.generate ~shapes:config.c_shapes rng in
    progs := prog :: !progs;
    incr runs;
    match
      Oracle.run ~world_seed:config.c_world_seed ~max_steps:config.c_max_steps ~mech:Mech.Native
        prog.Gen.items
    with
    | Oracle.Launch_failed e ->
      failwith (Printf.sprintf "fuzz iter %d: native launch failed (%d)" i e)
    | Oracle.Ok_run native ->
      List.iter
        (fun mech ->
          incr runs;
          let dv =
            match
              Oracle.run ~world_seed:config.c_world_seed ~max_steps:config.c_max_steps ~mech
                prog.Gen.items
            with
            | Oracle.Launch_failed e ->
              Some
                {
                  Oracle.d_mech = Mech.to_string mech;
                  d_where = "launch";
                  d_native = "ok";
                  d_mech_val = Printf.sprintf "error %d" e;
                }
            | Oracle.Ok_run m -> Oracle.compare_projected ~mech native m
          in
          match dv with
          | None -> ()
          | Some d ->
            incr (List.assoc mech counts);
            let minimized, min_insns =
              if not config.c_minimize then (None, None)
              else
                match
                  Shrink.minimize ~world_seed:config.c_world_seed
                    ~max_steps:config.c_max_steps ~mech prog.Gen.items
                with
                | None -> (None, None)
                | Some r ->
                  ( Some
                      {
                        Corpus.e_mech = mech;
                        e_seed = pseed;
                        e_expect = Oracle.render_divergence r.Shrink.divergence;
                        e_items = r.Shrink.items;
                      },
                    Some (Gen.insn_count r.Shrink.items) )
            in
            let f =
              {
                f_iter = i;
                f_prog_seed = pseed;
                f_mech = mech;
                f_divergence = d;
                f_shapes = prog.Gen.shapes;
                f_minimized = minimized;
                f_min_insns = min_insns;
              }
            in
            findings := f :: !findings;
            on_finding f)
        config.c_mechs
  done;
  let progs = List.rev !progs in
  {
    r_config = config;
    r_programs = List.length progs;
    r_runs = !runs;
    r_insns = List.fold_left (fun a p -> a + Gen.insn_count p.Gen.items) 0 progs;
    r_divergent = List.map (fun (m, c) -> (m, !c)) counts;
    r_findings = List.rev !findings;
    r_insn_hist = Gen.insn_histogram progs;
    r_sys_hist = Gen.syscall_histogram progs;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Deterministic JSON: fixed key order, no timing, no floats. *)
let render_json (r : report) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"seed\": %d,\n" r.r_config.c_seed);
  add (Printf.sprintf "  \"iters\": %d,\n" r.r_config.c_iters);
  add
    (Printf.sprintf "  \"shapes\": [%s],\n"
       (String.concat ", "
          (List.map (fun s -> "\"" ^ Gen.shape_to_string s ^ "\"") r.r_config.c_shapes)));
  add
    (Printf.sprintf "  \"mechs\": [%s],\n"
       (String.concat ", "
          (List.map (fun m -> "\"" ^ Mech.to_string m ^ "\"") r.r_config.c_mechs)));
  add (Printf.sprintf "  \"programs\": %d,\n" r.r_programs);
  add (Printf.sprintf "  \"runs\": %d,\n" r.r_runs);
  add (Printf.sprintf "  \"insns\": %d,\n" r.r_insns);
  add (Printf.sprintf "  \"divergences\": %d,\n" (total_divergences r));
  add "  \"divergent_by_mech\": {";
  add
    (String.concat ", "
       (List.map
          (fun (m, n) -> Printf.sprintf "\"%s\": %d" (Mech.to_string m) n)
          r.r_divergent));
  add "},\n";
  add "  \"findings\": [\n";
  List.iteri
    (fun i f ->
      add
        (Printf.sprintf
           "    {\"iter\": %d, \"prog_seed\": %d, \"mech\": \"%s\", \"shapes\": [%s], \
            \"divergence\": \"%s\"%s}%s\n"
           f.f_iter f.f_prog_seed (Mech.to_string f.f_mech)
           (String.concat ", "
              (List.map (fun s -> "\"" ^ Gen.shape_to_string s ^ "\"") f.f_shapes))
           (json_escape (Oracle.render_divergence f.f_divergence))
           (match f.f_min_insns with
           | None -> ""
           | Some n -> Printf.sprintf ", \"min_insns\": %d" n)
           (if i = List.length r.r_findings - 1 then "" else ",")))
    r.r_findings;
  add "  ],\n";
  add "  \"insn_histogram\": {";
  add
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) r.r_insn_hist));
  add "},\n";
  add "  \"syscall_histogram\": {";
  add
    (String.concat ", "
       (List.map
          (fun (nr, v) -> Printf.sprintf "\"%s\": %d" (K23_kernel.Sysno.name nr) v)
          r.r_sys_hist));
  add "}\n";
  add "}\n";
  Buffer.contents buf

let render_text (r : report) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf "fuzz: seed=%d iters=%d programs=%d runs=%d insns=%d\n" r.r_config.c_seed
       r.r_config.c_iters r.r_programs r.r_runs r.r_insns);
  add
    (Printf.sprintf "shapes: %s\n"
       (String.concat " " (List.map Gen.shape_to_string r.r_config.c_shapes)));
  List.iter
    (fun (m, n) ->
      add
        (Printf.sprintf "  %-16s %s\n" (Mech.to_string m)
           (if n = 0 then "conforms" else Printf.sprintf "%d DIVERGENT" n)))
    r.r_divergent;
  List.iter
    (fun f ->
      add
        (Printf.sprintf "  iter %d (seed %d, shapes %s): %s\n" f.f_iter f.f_prog_seed
           (String.concat "+" (List.map Gen.shape_to_string f.f_shapes))
           (Oracle.render_divergence f.f_divergence));
      match f.f_minimized with
      | None -> ()
      | Some e ->
        add
          (Printf.sprintf "    minimized to %d insns:\n"
             (Option.value ~default:0 f.f_min_insns));
        List.iter (fun it -> add ("      " ^ Corpus.item_to_line it ^ "\n")) e.Corpus.e_items)
    r.r_findings;
  add
    (Printf.sprintf "total: %d divergence%s\n" (total_divergences r)
       (if total_divergences r = 1 then "" else "s"));
  Buffer.contents buf
