(** Fuzzing campaigns: generate [iters] programs from a seed, run each
    through the differential oracle against a set of mechanisms, and
    collect divergences plus coverage statistics into a report.

    Everything in the report is a pure function of the configuration —
    per-iteration program seeds are derived from the campaign seed, the
    oracle worlds are described by one [World.Config.t] record, and the
    report carries no timing — so the same seed renders byte-identical
    JSON on every machine.  Throughput (execs/sec) is measured by the
    bench harness around this module, never inside the report.

    Iterations are fully independent (each one builds fresh worlds
    from [c_world]), so {!run} shards them across a domain pool when
    [~jobs] is above 1: one run-spec per iteration, results merged in
    iteration order, shrinking kept sequential in the merge phase.
    The report is byte-identical whatever [jobs] is — dune runtest
    pins [--jobs 1] against [--jobs 4] on the CLI's JSON output. *)

module Mech = K23_eval.Mech
module Rng = K23_util.Rng
module World = K23_kernel.World

(** How the native reference column is produced.  [Live] runs it and
    projects straight off the world; [Replay] records it once
    (unbounded sink), round-trips the recording through the wire
    format, and projects off the log — so every verdict the replay
    oracle renders passed through serialise → parse.  Verdicts must
    be identical either way (gated in runtest on a 200-iter
    campaign); the mode is deliberately {e not} part of the report,
    so live and replay reports diff byte-for-byte. *)
type oracle_mode = Live | Replay

let oracle_mode_to_string = function Live -> "live" | Replay -> "replay"

let oracle_mode_of_string = function
  | "live" -> Some Live
  | "replay" -> Some Replay
  | _ -> None

type config = {
  c_seed : int;
  c_iters : int;
  c_mechs : Mech.t list;
  c_shapes : Gen.shape list;
  c_minimize : bool;  (** shrink each divergence to a minimal repro *)
  c_world : World.Config.t;  (** recipe for every oracle world (the run-spec key) *)
  c_max_steps : int;
  c_oracle : oracle_mode;
}

let default_config =
  {
    c_seed = 23;
    c_iters = 100;
    c_mechs = Oracle.default_mechs;
    c_shapes = Gen.default_shapes;
    c_minimize = false;
    c_world = Oracle.default_world_cfg;
    c_max_steps = Oracle.default_max_steps;
    c_oracle = Live;
  }

(** Per-iteration program seed: decoupled from iteration order only by
    the campaign seed, so any iteration can be replayed alone. *)
let iter_seed config i = (config.c_seed * 1_000_003) + i

(** Per-iteration world: with the fault plane enabled, each iteration
    rolls its own schedule ([fseed] offset by the iteration index) —
    fuzz programs make only a handful of syscalls, so replaying one
    fixed schedule from tick 0 every iteration would exercise almost
    no faults.  Native and every mechanism column of iteration [i]
    still share the exact same config, which is the alignment the
    differential oracle needs. *)
let iter_world config i =
  let f = config.c_world.World.Config.faults in
  if K23_faults.Faults.enabled f then
    {
      config.c_world with
      World.Config.faults = { f with K23_faults.Faults.fseed = f.K23_faults.Faults.fseed + (i * 7919) }
    }
  else config.c_world

type finding = {
  f_iter : int;
  f_prog_seed : int;
  f_mech : Mech.t;
  f_divergence : Oracle.divergence;
  f_shapes : Gen.shape list;
  f_minimized : Corpus.entry option;  (** present when [c_minimize] *)
  f_min_insns : int option;
}

type report = {
  r_config : config;
  r_programs : int;
  r_runs : int;  (** oracle executions, native reference included *)
  r_insns : int;  (** static instructions generated *)
  r_divergent : (Mech.t * int) list;  (** per mechanism, campaign total *)
  r_findings : finding list;
  r_insn_hist : (string * int) list;
  r_sys_hist : (int * int) list;
}

let total_divergences r = List.fold_left (fun a (_, n) -> a + n) 0 r.r_divergent

(** One iteration's merged share: the generated program and the raw
    divergences, in [c_mechs] order.  Shrinking and report assembly
    happen in the sequential merge so that [on_finding] ordering,
    shrink scheduling and the report bytes never depend on [jobs]. *)
type iter_out = { io_prog : Gen.prog; io_divs : (Mech.t * Oracle.divergence) list }

(* Phase A task: generate iteration [i]'s program and run the native
   reference once.  Both outputs are immutable data (the program is
   the generator's item list; the projection is ints and strings), so
   sharing them with phase B tasks on other domains is safe. *)
let gen_native config i : Gen.prog * Oracle.projected =
  let pseed = iter_seed config i in
  let rng = Rng.create ~seed:pseed in
  let prog =
    Gen.generate ~shapes:config.c_shapes ~isa:config.c_world.World.Config.isa rng
  in
  let native =
    match config.c_oracle with
    | Live -> (
      match
        Oracle.run ~cfg:(iter_world config i) ~max_steps:config.c_max_steps ~mech:Mech.Native
          prog.Gen.items
      with
      | Oracle.Launch_failed e ->
        failwith (Printf.sprintf "fuzz iter %d: native launch failed (%d)" i e)
      | Oracle.Ok_run native -> native)
    | Replay -> (
      match
        Oracle.record ~cfg:(iter_world config i) ~max_steps:config.c_max_steps ~mech:Mech.Native
          prog.Gen.items
      with
      | Error e -> failwith (Printf.sprintf "fuzz iter %d: native launch failed (%d)" i e)
      | Ok rec0 ->
        (* always through the wire format: the replay oracle's native
           column is serialised and re-parsed every iteration, so the
           codec round-trip is exercised — and the jobs / live-vs-
           replay gates bite on it — at campaign scale *)
        let rec1 = K23_replay.Recording.of_string (K23_replay.Recording.to_string rec0) in
        Oracle.project_recording rec1)
  in
  (prog, native)

(** Run a campaign.  [on_finding] fires as divergences are merged (for
    live CLI output); the report is assembled at the end.  [jobs]
    shards the work across a domain pool ({!K23_par.Pool}) in two
    phases: phase A generates each program and computes its native
    projection {e once}; phase B is one compare task per
    (program × mechanism), claimed in chunks of one iteration's
    mechanism row.  The old shape — one task per iteration re-running
    the native column for all seven worlds — wasted 1/7th of the work
    and made each task as slow as its slowest mechanism.  The report
    is byte-identical for every value of [jobs] — dune runtest pins
    [--jobs 1] against [--jobs 4] on the CLI's JSON output. *)
let run ?(on_finding = fun (_ : finding) -> ()) ?(jobs = 1) config =
  (* phase A: one run-spec per iteration — generate + native column *)
  let gen_specs =
    List.init config.c_iters (fun i ->
        K23_par.Run_spec.v ~world:(iter_world config i) ~mech:"native" ~index:i (fun () ->
            gen_native config i))
  in
  let natives = Array.of_list (List.map snd (K23_par.Run_spec.run_all ~jobs gen_specs)) in
  (* phase B: one run-spec per (iteration × mechanism); [diverges
     ~native] reuses phase A's projection instead of re-running it *)
  let mechs = Array.of_list config.c_mechs in
  let nmechs = Array.length mechs in
  let cmp_specs =
    List.concat
      (List.init config.c_iters (fun i ->
           let prog, native = natives.(i) in
           List.map
             (fun mech ->
               K23_par.Run_spec.v ~world:(iter_world config i) ~mech:(Mech.to_string mech)
                 ~index:i (fun () ->
                   Oracle.diverges ~cfg:(iter_world config i) ~max_steps:config.c_max_steps
                     ~native ~mech prog.Gen.items))
             config.c_mechs))
  in
  (* chunk = one iteration's mechanism row: a single queue claim per
     iteration, and consecutive compares share the domain's scratch
     world while it is cache-hot *)
  let cmp =
    Array.of_list
      (List.map snd (K23_par.Run_spec.run_all ~jobs ~chunk:(max 1 nmechs) cmp_specs))
  in
  let outs =
    List.init config.c_iters (fun i ->
        let prog, _ = natives.(i) in
        let divs = ref [] in
        for j = nmechs - 1 downto 0 do
          match cmp.((i * nmechs) + j) with
          | None -> ()
          | Some d -> divs := (mechs.(j), d) :: !divs
        done;
        { io_prog = prog; io_divs = !divs })
  in
  (* sequential merge, in (iteration, mechanism) order: counts,
     findings, shrinking *)
  let findings = ref [] in
  let counts = List.map (fun m -> (m, ref 0)) config.c_mechs in
  List.iteri
    (fun i out ->
      let pseed = iter_seed config i in
      List.iter
        (fun (mech, d) ->
          incr (List.assoc mech counts);
          let minimized, min_insns =
            if not config.c_minimize then (None, None)
            else
              match
                Shrink.minimize ~cfg:(iter_world config i) ~max_steps:config.c_max_steps ~mech
                  out.io_prog.Gen.items
              with
              | None -> (None, None)
              | Some r ->
                ( Some
                    {
                      Corpus.e_mech = mech;
                      e_seed = pseed;
                      e_expect = Oracle.render_divergence r.Shrink.divergence;
                      e_faults =
                        (let f = (iter_world config i).World.Config.faults in
                         if K23_faults.Faults.enabled f then Some f else None);
                      e_items = r.Shrink.items;
                    },
                  Some (Gen.insn_count r.Shrink.items) )
          in
          let f =
            {
              f_iter = i;
              f_prog_seed = pseed;
              f_mech = mech;
              f_divergence = d;
              f_shapes = out.io_prog.Gen.shapes;
              f_minimized = minimized;
              f_min_insns = min_insns;
            }
          in
          findings := f :: !findings;
          on_finding f)
        out.io_divs)
    outs;
  let progs = List.map (fun o -> o.io_prog) outs in
  {
    r_config = config;
    r_programs = List.length progs;
    r_runs = config.c_iters * (1 + List.length config.c_mechs);
    r_insns = List.fold_left (fun a p -> a + Gen.insn_count p.Gen.items) 0 progs;
    r_divergent = List.map (fun (m, c) -> (m, !c)) counts;
    r_findings = List.rev !findings;
    r_insn_hist = Gen.insn_histogram progs;
    r_sys_hist = Gen.syscall_histogram progs;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Deterministic JSON: fixed key order, no timing, no floats. *)
let render_json (r : report) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"seed\": %d,\n" r.r_config.c_seed);
  add (Printf.sprintf "  \"iters\": %d,\n" r.r_config.c_iters);
  (* emitted only off x86 so pre-existing x86 reports stay byte-identical *)
  (match r.r_config.c_world.World.Config.isa with
  | K23_isa.Isa.X86_64 -> ()
  | isa -> add (Printf.sprintf "  \"isa\": \"%s\",\n" (K23_isa.Isa.to_string isa)));
  add
    (Printf.sprintf "  \"faults\": \"%s\",\n"
       (K23_faults.Faults.to_string r.r_config.c_world.World.Config.faults));
  add
    (Printf.sprintf "  \"shapes\": [%s],\n"
       (String.concat ", "
          (List.map (fun s -> "\"" ^ Gen.shape_to_string s ^ "\"") r.r_config.c_shapes)));
  add
    (Printf.sprintf "  \"mechs\": [%s],\n"
       (String.concat ", "
          (List.map (fun m -> "\"" ^ Mech.to_string m ^ "\"") r.r_config.c_mechs)));
  add (Printf.sprintf "  \"programs\": %d,\n" r.r_programs);
  add (Printf.sprintf "  \"runs\": %d,\n" r.r_runs);
  add (Printf.sprintf "  \"insns\": %d,\n" r.r_insns);
  add (Printf.sprintf "  \"divergences\": %d,\n" (total_divergences r));
  add "  \"divergent_by_mech\": {";
  add
    (String.concat ", "
       (List.map
          (fun (m, n) -> Printf.sprintf "\"%s\": %d" (Mech.to_string m) n)
          r.r_divergent));
  add "},\n";
  add "  \"findings\": [\n";
  List.iteri
    (fun i f ->
      add
        (Printf.sprintf
           "    {\"iter\": %d, \"prog_seed\": %d, \"mech\": \"%s\", \"shapes\": [%s], \
            \"divergence\": \"%s\"%s}%s\n"
           f.f_iter f.f_prog_seed (Mech.to_string f.f_mech)
           (String.concat ", "
              (List.map (fun s -> "\"" ^ Gen.shape_to_string s ^ "\"") f.f_shapes))
           (json_escape (Oracle.render_divergence f.f_divergence))
           (match f.f_min_insns with
           | None -> ""
           | Some n -> Printf.sprintf ", \"min_insns\": %d" n)
           (if i = List.length r.r_findings - 1 then "" else ",")))
    r.r_findings;
  add "  ],\n";
  add "  \"insn_histogram\": {";
  add
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) r.r_insn_hist));
  add "},\n";
  add "  \"syscall_histogram\": {";
  add
    (String.concat ", "
       (List.map
          (fun (nr, v) -> Printf.sprintf "\"%s\": %d" (K23_kernel.Sysno.name nr) v)
          r.r_sys_hist));
  add "}\n";
  add "}\n";
  Buffer.contents buf

let render_text (r : report) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf "fuzz: seed=%d iters=%d programs=%d runs=%d insns=%d\n" r.r_config.c_seed
       r.r_config.c_iters r.r_programs r.r_runs r.r_insns);
  add
    (Printf.sprintf "shapes: %s\n"
       (String.concat " " (List.map Gen.shape_to_string r.r_config.c_shapes)));
  List.iter
    (fun (m, n) ->
      add
        (Printf.sprintf "  %-16s %s\n" (Mech.to_string m)
           (if n = 0 then "conforms" else Printf.sprintf "%d DIVERGENT" n)))
    r.r_divergent;
  List.iter
    (fun f ->
      add
        (Printf.sprintf "  iter %d (seed %d, shapes %s): %s\n" f.f_iter f.f_prog_seed
           (String.concat "+" (List.map Gen.shape_to_string f.f_shapes))
           (Oracle.render_divergence f.f_divergence));
      match f.f_minimized with
      | None -> ()
      | Some e ->
        add
          (Printf.sprintf "    minimized to %d insns:\n"
             (Option.value ~default:0 f.f_min_insns));
        let lines =
          match e.Corpus.e_items with
          | Gen.X86 its -> List.map Corpus.item_to_line its
          | Gen.A64 its -> List.map Corpus.arm_item_to_line its
        in
        List.iter (fun l -> add ("      " ^ l ^ "\n")) lines)
    r.r_findings;
  add
    (Printf.sprintf "total: %d divergence%s\n" (total_divergences r)
       (if total_divergences r = 1 then "" else "s"));
  Buffer.contents buf
