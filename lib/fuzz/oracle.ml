(** Differential conformance oracle.

    A generated program is run in fresh, identically-seeded worlds —
    natively and under each interposition mechanism — with the ktrace
    ring enabled, and the runs are compared on their {e application-
    observable} behaviour:

    - the per-process sequence of {e executed} application syscalls
      (number and normalised return value),
    - every process's exit fate (exit status / fatal signal / still
      running at the step cap),
    - the root process's console bytes.

    Raw event streams are {e not} comparable across mechanisms: an
    interposer adds selector toggles, SIGSYS round trips, ptrace stops
    and its own housekeeping syscalls, shifts every library's load
    address (one more preload changes the ASLR draw sequence), and
    skews fd and pid numbering (extra [openat]s, K23's offline
    process).  The projection in this module is the per-mechanism
    allowlist, made systematic:

    - events are grouped per process; only syscalls that {e executed}
      (entered and exited) survive;
    - syscalls owned by the dynamic loader are dropped (mechanism
      launch changes what ld.so loads), as are [rt_sigreturn] and
      K23's fake syscall numbers;
    - an interposer-owned execution is the SIGSYS gadget re-issuing a
      blocked application attempt (SUD or seccomp-TRAP): it is matched
      FIFO to the preceding blocked [Syscall_enter] of the same thread
      and replayed as that application syscall, with the re-issue's
      return value.  Unmatched interposer syscalls are the
      interposer's own housekeeping and are dropped;
    - return values are normalised: addresses ([mmap]/[brk]) to a
      token, descriptors to a per-process first-use index, pids/tids
      to a per-run first-appearance index.  Everything else (byte
      counts, errnos) must match exactly.

    [Trace_diff] still guards the stronger property that the same
    mechanism with the same seed yields byte-identical streams; this
    module owns the cross-mechanism question. *)

open K23_kernel
open K23_userland
module Event = K23_obs.Event
module Mech = K23_eval.Mech
module K23 = K23_core.K23
module Recording = K23_replay.Recording

let target_path = "/bin/fuzz_target"

(** The six mechanisms checked by default (plus native as reference). *)
let default_mechs : Mech.t list =
  [ Mech.Zpoline_ultra; Mech.Lazypoline; Mech.Sud; Mech.Ptrace; Mech.Seccomp; Mech.K23_ultra ]

(** Default mechanism column per ISA: on Arm the rewriting family is
    ASC-Hook and the kernel-mediated mechanisms carry over; the x86
    trampoline mechanisms have no Arm realisation. *)
let default_mechs_for = function
  | K23_isa.Isa.X86_64 -> default_mechs
  | K23_isa.Isa.Arm64 -> [ Mech.Asc_hook; Mech.Sud; Mech.Ptrace; Mech.Seccomp ]

type fate = Exit of int | Killed of int | Running

let fate_to_string = function
  | Exit n -> Printf.sprintf "exit %d" n
  | Killed s -> Printf.sprintf "killed %d" s
  | Running -> "running"

type projected = {
  streams : (int * string list) list;
      (** canonical pid -> rendered (nr, normalised ret) records *)
  fates : (int * fate) list;  (** canonical pid -> fate *)
  console : string;  (** root process console bytes *)
}

type outcome =
  | Ok_run of projected
  | Launch_failed of int

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

let default_world_seed = 97
let default_max_steps = 3_000_000

(** The oracle's world recipe: the fixed fuzz seed over the default
    configuration.  Campaigns carry (and may override) this record —
    it is the [k_world] half of every run-spec's key. *)
let default_world_cfg = { World.Config.default with World.Config.seed = default_world_seed }

(* Register the target, run the offline phase if the mechanism needs
   one, launch and run to completion.  Takes the world as an argument
   so the fresh-world ({!run_raw}) and scratch-world ({!run}) paths
   share one setup sequence. *)
let launch_in ?unbounded w ~max_steps ~mech (items : Gen.items) =
  if w.Kern.isa <> Gen.items_isa items then
    invalid_arg
      (Printf.sprintf "Oracle: %s program on a %s world"
         (K23_isa.Isa.to_string (Gen.items_isa items))
         (K23_isa.Isa.to_string w.Kern.isa));
  (match items with
  | Gen.X86 its ->
    ignore (Sim.register_app w ~path:target_path its);
    ignore (Sim.register_app w ~path:Gen.exec_child_path Gen.exec_child_items)
  | Gen.A64 its ->
    let module A = K23_isa_arm.Asm_arm in
    ignore (Sim.register_app_prog w ~path:target_path (A.assemble its));
    ignore (Sim.register_app_prog w ~path:Gen.exec_child_path (A.assemble Gen.exec_child_items_arm)));
  if Mech.needs_offline mech then begin
    ignore (K23.offline_run w ~path:target_path ());
    K23.seal_logs w
  end;
  (* the offline phase consumed app syscalls that a native run never
     makes: rewind the fault schedule so every mechanism's measured
     run starts it from tick 0 *)
  Kern.fault_reset w;
  let t = Kern.ktrace_enable ?unbounded w in
  match Mech.launch mech w ~path:target_path () with
  | Error e -> Error e
  | Ok (p, _stats) ->
    (try World.run_until_exit ~max_steps w p with Kern.Deadlock _ -> ());
    Ok (p, K23_obs.Trace.events t)

(** Run [items] (plus the execve helper) under [mech] in a fresh world
    built from [cfg]; returns the raw material for projection.  Always
    builds a {e fresh} world — the world escapes to the caller, so the
    scratch-world cache must not recycle it underneath them. *)
let run_raw ?(cfg = default_world_cfg) ?(max_steps = default_max_steps) ~mech items =
  let w = Sim.create_world_cfg cfg in
  match launch_in w ~max_steps ~mech items with
  | Error e -> Error e
  | Ok (p, events) -> Ok (w, p, events)

(** Run [f] on a world observably equal to [Sim.create_world_cfg cfg],
    recycled per domain.  Nothing world-owned may escape [f]; only
    project inside and return the (immutable) projection. *)
let with_scratch_world cfg f =
  K23_par.World_cache.with_world ~build:Sim.create_world_cfg ~reset:Sim.reset_world_cfg cfg f

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)

(* owners whose syscalls are part of application behaviour *)
let keep_owner = function
  | "app" | "libc" | "trampoline" | "anon" | "stack" -> true
  | "interposer" | "ld.so" | "vdso" -> false
  | _ -> true (* named shared libraries *)

(* direct int tests, not [List.mem] over heap lists: [norm_ret] runs
   once per kept record and the projection is on the campaign's hot
   path *)
let is_addr_nr nr = nr = Sysno.mmap || nr = Sysno.brk

let is_fd_nr nr =
  nr = Sysno.open_ || nr = Sysno.openat || nr = Sysno.dup || nr = Sysno.socket
  || nr = Sysno.accept

let is_pid_nr nr =
  nr = Sysno.fork || nr = Sysno.clone || nr = Sysno.getpid || nr = Sysno.gettid
  || nr = Sysno.wait4

type pend = { pd_nr : int; pd_owner : string; mutable pd_blocked : bool }

(** Project a run into comparable per-process syscall records, from
    pure data: the root pid, every traced process's fate (by raw
    pid), the root console bytes and the event stream.  Shared by the
    live path ({!project}, straight off a world) and the replay
    oracle ({!project_recording}, off a {!Recording.t} — same
    function, so a recorded run projects identically by
    construction). *)
let project_events ~root_pid ~(fates : (int * fate) list) ~console events =
  (* canonical pid numbering: root first, then first appearance *)
  let pid_map = Hashtbl.create 8 in
  Hashtbl.replace pid_map root_pid 0;
  let next_pid = ref 1 in
  let canon_pid pid =
    match Hashtbl.find_opt pid_map pid with
    | Some c -> c
    | None ->
      let c = !next_pid in
      incr next_pid;
      Hashtbl.replace pid_map pid c;
      c
  in
  (* tids normalised the same way (the offline phase consumes tids) *)
  let tid_map = Hashtbl.create 8 in
  let next_tid = ref 0 in
  let canon_tid tid =
    match Hashtbl.find_opt tid_map tid with
    | Some c -> c
    | None ->
      let c = !next_tid in
      incr next_tid;
      Hashtbl.replace tid_map tid c;
      c
  in
  (* per-pid fd numbering by first use as a return value *)
  let fd_maps : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let canon_fd pid fd =
    let m =
      match Hashtbl.find_opt fd_maps pid with
      | Some m -> m
      | None ->
        let m = Hashtbl.create 8 in
        Hashtbl.replace fd_maps pid m;
        m
    in
    match Hashtbl.find_opt m fd with
    | Some c -> c
    | None ->
      let c = Hashtbl.length m in
      Hashtbl.replace m fd c;
      c
  in
  let norm_ret pid nr ret =
    if ret < 0 then string_of_int ret
    else if is_addr_nr nr then (if ret >= 4096 then "addr" else string_of_int ret)
    else if is_fd_nr nr then Printf.sprintf "fd%d" (canon_fd pid ret)
    else if is_pid_nr nr then
      if ret = 0 then "0" else Printf.sprintf "pid%d" (canon_pid ret)
    else string_of_int ret
  in
  let streams : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let emit pid nr ret =
    if nr <> Sysno.rt_sigreturn && nr < 1023 then begin
      let cpid = canon_pid pid in
      let q =
        match Hashtbl.find_opt streams cpid with
        | Some q -> q
        | None ->
          let q = ref [] in
          Hashtbl.replace streams cpid q;
          q
      in
      q := Printf.sprintf "%s->%s" (Sysno.name nr) (norm_ret pid nr ret) :: !q
    end
  in
  (* per-(pid,tid) in-flight slot + FIFO of blocked app attempts *)
  let slots : (int * int, pend) Hashtbl.t = Hashtbl.create 8 in
  let blocked : (int * int, pend Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let blocked_q key =
    match Hashtbl.find_opt blocked key with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace blocked key q;
      q
  in
  let retire key =
    (* an enter that never exited: keep it if it was diverted (the
       re-issue will claim it), drop it otherwise (seccomp ERRNO-style
       short circuits) *)
    match Hashtbl.find_opt slots key with
    | None -> ()
    | Some pd ->
      Hashtbl.remove slots key;
      if pd.pd_blocked then Queue.add pd (blocked_q key)
  in
  List.iter
    (fun (e : Event.t) ->
      let key = (e.ev_pid, e.ev_tid) in
      (* fix the canonical ids in stream order; ev_pid = 0 marks
         events with no process context (rewrites, world bookkeeping)
         and must not consume a slot *)
      if e.ev_pid <> 0 then begin
        ignore (canon_pid e.ev_pid);
        ignore (canon_tid e.ev_tid)
      end;
      match e.ev_payload with
      | Event.Syscall_enter { nr; owner; _ } ->
        retire key;
        Hashtbl.replace slots key { pd_nr = nr; pd_owner = owner; pd_blocked = false }
      | Event.Sud_block { nr; _ } -> (
        match Hashtbl.find_opt slots key with
        | Some pd when pd.pd_nr = nr -> pd.pd_blocked <- true
        | _ -> ())
      | Event.Seccomp { nr; verdict = "trap" } -> (
        match Hashtbl.find_opt slots key with
        | Some pd when pd.pd_nr = nr -> pd.pd_blocked <- true
        | _ -> ())
      | Event.Syscall_exit { nr; ret } -> (
        match Hashtbl.find_opt slots key with
        | Some pd when pd.pd_nr = nr ->
          Hashtbl.remove slots key;
          if keep_owner pd.pd_owner then emit e.ev_pid nr ret
          else if pd.pd_owner = "interposer" then begin
            (* gadget re-issue: replay the blocked application attempt *)
            let q = blocked_q key in
            match Queue.peek_opt q with
            | Some bp when bp.pd_nr = nr ->
              ignore (Queue.pop q);
              if keep_owner bp.pd_owner then emit e.ev_pid nr ret
            | _ -> () (* interposer housekeeping *)
          end
        | _ -> ())
      | _ -> ())
    events;
  (* fates, in canonical order, for every traced process *)
  let fates =
    Hashtbl.fold (fun pid cpid acc -> (pid, cpid) :: acc) pid_map []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> List.filter_map (fun (pid, cpid) ->
           Option.map (fun f -> (cpid, f)) (List.assoc_opt pid fates))
  in
  let streams =
    Hashtbl.fold (fun cpid q acc -> (cpid, List.rev !q) :: acc) streams []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { streams; fates; console }

let fate_of_recorded : Recording.fate -> fate = function
  | Recording.Exit n -> Exit n
  | Recording.Killed s -> Killed s
  | Recording.Running -> Running

(** Project a raw run straight off its (still-live) world. *)
let project (p : Kern.proc) (w : Kern.world) events =
  project_events ~root_pid:p.Kern.pid
    ~fates:(List.map (fun (pid, f) -> (pid, fate_of_recorded f)) (Recording.fates_of_world w))
    ~console:(World.stdout_of p) events

(** Project a recording — the replay oracle's native column. *)
let project_recording (r : Recording.t) =
  project_events ~root_pid:r.Recording.rc_root
    ~fates:(List.map (fun (pid, f) -> (pid, fate_of_recorded f)) r.Recording.rc_fates)
    ~console:r.Recording.rc_console r.Recording.rc_events

(** Run under [mech] and project.  Uses the per-domain scratch world:
    the world is recycled between calls, and only the immutable
    {!projected} escapes.  Callers that need the raw world use
    {!run_raw}. *)
let run ?(cfg = default_world_cfg) ?(max_steps = default_max_steps) ~mech items =
  with_scratch_world cfg (fun w ->
      match launch_in w ~max_steps ~mech items with
      | Error e -> Launch_failed e
      | Ok (p, events) -> Ok_run (project p w events))

(** Run [items] under [mech] and package the run as a
    {!Recording.t} (unbounded sink: a recording must be complete).
    Uses the scratch world — only the immutable recording escapes.
    The replay-checked oracle records the native column once with
    this and projects each iteration off the log. *)
let record ?(cfg = default_world_cfg) ?(max_steps = default_max_steps) ~mech items =
  with_scratch_world cfg (fun w ->
      match launch_in ~unbounded:true w ~max_steps ~mech items with
      | Error e -> Error e
      | Ok (p, events) ->
        Ok
          {
            Recording.rc_app = target_path;
            rc_argv = [];
            rc_mech = mech;
            rc_cfg = { cfg with World.Config.ktrace = false };
            rc_root = p.Kern.pid;
            rc_console = World.stdout_of p;
            rc_fates = Recording.fates_of_world w;
            rc_events = events;
          })

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

type divergence = {
  d_mech : string;
  d_where : string;  (** what differed, e.g. "pid 0 syscall 3" *)
  d_native : string;
  d_mech_val : string;
}

let render_divergence d =
  Printf.sprintf "[%s] %s: native=%s mech=%s" d.d_mech d.d_where d.d_native d.d_mech_val

let escape = String.map (fun c -> if c = '\n' then ';' else c)

(** First application-observable difference between a native and a
    mechanism projection, if any. *)
let compare_projected ~mech (native : projected) (m : projected) : divergence option =
  let mk where n v = Some { d_mech = Mech.to_string mech; d_where = where; d_native = n; d_mech_val = v } in
  let rec cmp_stream cpid i (a : string list) (b : string list) =
    match (a, b) with
    | [], [] -> None
    | x :: _, [] -> mk (Printf.sprintf "pid %d record %d" cpid i) x "<missing>"
    | [], y :: _ -> mk (Printf.sprintf "pid %d record %d" cpid i) "<missing>" y
    | x :: xs, y :: ys ->
      if x = y then cmp_stream cpid (i + 1) xs ys
      else mk (Printf.sprintf "pid %d record %d" cpid i) x y
  in
  let rec cmp_streams = function
    | [], [] -> None
    | (cpid, s) :: _, [] -> mk (Printf.sprintf "pid %d" cpid) (Printf.sprintf "%d records" (List.length s)) "<no process>"
    | [], (cpid, s) :: _ -> mk (Printf.sprintf "pid %d" cpid) "<no process>" (Printf.sprintf "%d records" (List.length s))
    | (ca, sa) :: ra, (cb, sb) :: rb ->
      if ca <> cb then mk "pid order" (string_of_int ca) (string_of_int cb)
      else (
        match cmp_stream ca 0 sa sb with Some d -> Some d | None -> cmp_streams (ra, rb))
  in
  match cmp_streams (native.streams, m.streams) with
  | Some d -> Some d
  | None -> (
    let rec cmp_fates = function
      | [], [] -> None
      | (cpid, f) :: _, [] -> mk (Printf.sprintf "pid %d fate" cpid) (fate_to_string f) "<no process>"
      | [], (cpid, f) :: _ -> mk (Printf.sprintf "pid %d fate" cpid) "<no process>" (fate_to_string f)
      | (ca, fa) :: ra, (cb, fb) :: rb ->
        if ca <> cb || fa <> fb then
          mk
            (Printf.sprintf "pid %d fate" ca)
            (fate_to_string fa)
            (Printf.sprintf "pid %d %s" cb (fate_to_string fb))
        else cmp_fates (ra, rb)
    in
    match cmp_fates (native.fates, m.fates) with
    | Some d -> Some d
    | None ->
      if native.console <> m.console then
        mk "console" (escape native.console) (escape m.console)
      else None)

(** Run [items] natively and under [mech]; [Some divergence] if the
    application-observable behaviour differs.

    [?native] supplies an already-computed native projection (the
    campaign computes it {e once} per program and shares it across all
    mechanisms — [projected] is immutable, so sharing it between
    domains is safe); without it the native column is re-run here. *)
let diverges ?cfg ?max_steps ?native ~mech items =
  let native_outcome =
    match native with
    | Some n -> Ok_run n
    | None -> run ?cfg ?max_steps ~mech:Mech.Native items
  in
  match native_outcome with
  | Launch_failed e ->
    Some
      {
        d_mech = Mech.to_string mech;
        d_where = "native launch";
        d_native = Printf.sprintf "error %d" e;
        d_mech_val = "";
      }
  | Ok_run native -> (
    match run ?cfg ?max_steps ~mech items with
    | Launch_failed e ->
      Some
        {
          d_mech = Mech.to_string mech;
          d_where = "launch";
          d_native = "ok";
          d_mech_val = Printf.sprintf "error %d" e;
        }
    | Ok_run m -> compare_projected ~mech native m)
