(** Seeded generator of adversarial programs for the differential
    conformance fuzzer.

    Programs are built from weighted {e hazard shapes} — the encoding-
    and control-flow corner cases of the paper's pitfall catalogue
    (raw SYSCALL/SYSENTER, syscall opcode bytes embedded in longer
    instructions' immediates, instructions straddling page boundaries,
    JIT-style self-modifying stores over fresh code, fork/signal-heavy
    sequences, boundary syscall arguments).  Everything draws from one
    {!K23_util.Rng}, so a seed determines the program byte-for-byte.

    The default mix is {e conformance-safe}: every shape in it has the
    same application-observable behaviour natively and under a correct
    interposer, so any divergence the oracle reports is a mechanism
    bug.  Shapes that are {e designed} to diverge under specific
    mechanisms (NULL-call misdirection, execve with a scrubbed
    environment) exist but are opt-in ({!unsafe_shapes}) — they are
    how the fuzzer demonstrates a disabled mitigation within a few
    iterations.

    Register discipline: values derived from immediates are "clean"
    and may be printed or branched on; address-valued registers
    (symbol addresses, mmap returns) and syscall-clobbered registers
    (RAX result, RCX/R11) are "dirty" — they differ across mechanisms
    (extra preload libraries shift ASLR draws and fd numbering), so
    generated programs never write them to the console.  The only
    sanctioned exception is branching on the {e zero-ness} of a fork
    return, which is portable by definition. *)

open K23_isa
module Rng = K23_util.Rng
module Sysno = K23_kernel.Sysno

type shape =
  | Raw  (** raw SYSCALL/SYSENTER with benign or boundary arguments *)
  | Embedded  (** 0f05/0f34/ffd0 byte patterns inside immediates *)
  | Straddle  (** an instruction crossing a page boundary *)
  | Smc  (** mmap RWX, store a fresh stub byte-by-byte, call it *)
  | Forky  (** fork / wait4 with console writes ordered by wait *)
  | Sigheavy  (** install a fault handler, fault into it, exit there *)
  | Null_call  (** call *rax with rax=0 (P4a) — diverges by design *)
  | Execve_scrub  (** execve with envp=NULL (P1a) — diverges by design *)
  | Svc_alias
      (** ARM only: a text literal aliasing [svc], read back by the
          program (P3a) — diverges under ASC-Hook by design *)

let shape_to_string = function
  | Raw -> "raw"
  | Embedded -> "embedded"
  | Straddle -> "straddle"
  | Smc -> "smc"
  | Forky -> "fork"
  | Sigheavy -> "signal"
  | Null_call -> "null-call"
  | Execve_scrub -> "execve-scrub"
  | Svc_alias -> "svc-alias"

let shape_of_string = function
  | "raw" -> Some Raw
  | "embedded" -> Some Embedded
  | "straddle" -> Some Straddle
  | "smc" -> Some Smc
  | "fork" -> Some Forky
  | "signal" -> Some Sigheavy
  | "null-call" -> Some Null_call
  | "execve-scrub" -> Some Execve_scrub
  | "svc-alias" -> Some Svc_alias
  | _ -> None

let default_shapes = [ Raw; Embedded; Straddle; Smc; Forky; Sigheavy ]
let unsafe_shapes = [ Null_call; Execve_scrub ]
let all_shapes = default_shapes @ unsafe_shapes

(* the safe mix is ISA-independent (each shape has a per-ISA
   realisation); the designed-to-diverge shapes differ: P4a's NULL
   call is an x86 trampoline artefact, P3a's alias literal needs a
   fixed-width ISA with in-text literal pools *)
let unsafe_shapes_for = function
  | K23_isa.Isa.X86_64 -> unsafe_shapes
  | K23_isa.Isa.Arm64 -> [ Svc_alias; Execve_scrub ]

let all_shapes_for isa = default_shapes @ unsafe_shapes_for isa

(** A generated program, tagged by the ISA its items are written in.
    Both arms assemble to the neutral {!Asm.program}; the tag is what
    lets the oracle pick the right registration path and sanity-check
    the world's ISA. *)
type items = X86 of Asm.item list | A64 of K23_isa_arm.Asm_arm.item list

let items_isa = function X86 _ -> K23_isa.Isa.X86_64 | A64 _ -> K23_isa.Isa.Arm64

type prog = {
  items : items;
  shapes : shape list;  (** shape instances, in emission order *)
  nrs : int list;  (** statically chosen syscall numbers *)
}

(* --- building blocks ----------------------------------------------- *)

(* Scratch registers safe across raw syscalls: not argument registers,
   not RAX (result), not RCX/R11 (clobbered by the syscall
   instruction), not R13 (loop counter). *)
let scratch = [| Reg.RBX; R12; R14; R15 |]

let pick rng arr = arr.(Rng.int rng (Array.length arr))
let pick_l rng l = List.nth l (Rng.int rng (List.length l))

(* Immediates whose little-endian bytes contain the interposition-
   relevant patterns: 0f 05 (syscall), 0f 34 (sysenter), ff d0
   (callq *rax).  A linear sweep that stays in sync never treats these
   as instruction starts; a desynchronised or byte-scanning rewriter
   would (P2a/P3a). *)
let hazard_imms =
  [| 0x050f; 0x340f; 0xd0ff; 0x050f_050f; 0x050f_340f; 0x90d0_ff05_0f90; 0x0f05_050f_340f |]

let boundary_args = [| 0; 1; -1; 4095; 4096; 4097; max_int; min_int; 0xdeadbeef |]

let sigill = 4
let sigtrap = 5

(* one raw syscall: load the six argument registers (as needed), load
   RAX, execute SYSCALL or SYSENTER *)
let trap_insn rng = if Rng.int rng 4 = 0 then Insn.Sysenter else Insn.Syscall

(* labels must be unique per program *)
type st = {
  rng : Rng.t;
  mutable uid : int;
  mutable data : Asm.item list;  (** accumulated data-section items *)
  mutable tail : Asm.item list;  (** code placed after the epilogue *)
  mutable used : shape list;
  mutable sysnrs : int list;
}

let fresh st prefix =
  st.uid <- st.uid + 1;
  Printf.sprintf "%s%d" prefix st.uid

let note_nr st nr = st.sysnrs <- nr :: st.sysnrs

let exit_items st code =
  note_nr st Sysno.exit_group;
  [ Asm.I (Insn.Mov_ri (RDI, code)); Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group)); Asm.I Insn.Syscall ]

(* a console write of a fresh short message; the bytes land in the
   shared console buffer and are part of the oracle's comparison *)
let write_items st =
  let lbl = fresh st "m" in
  let len = 1 + Rng.int st.rng 8 in
  let msg = String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int st.rng 26)) in
  st.data <- st.data @ [ Asm.Label lbl; Asm.Strz msg ];
  note_nr st Sysno.write;
  [
    Asm.I (Insn.Mov_ri (RDI, 1));
    Asm.Mov_sym (RSI, lbl);
    Asm.I (Insn.Mov_ri (RDX, len));
    Asm.I (Insn.Mov_ri (RAX, Sysno.write));
    Asm.I (trap_insn st.rng);
  ]

let raw_syscall_items st =
  match Rng.int st.rng 6 with
  | 0 ->
    note_nr st Sysno.getpid;
    [ Asm.I (Insn.Mov_ri (RAX, Sysno.getpid)); Asm.I (trap_insn st.rng) ]
  | 1 ->
    note_nr st Sysno.gettid;
    [ Asm.I (Insn.Mov_ri (RAX, Sysno.gettid)); Asm.I (trap_insn st.rng) ]
  | 2 ->
    (* the non-existent syscall with boundary arguments: the kernel
       answers -ENOSYS whatever the registers hold, so wild values are
       conformance-safe while stressing argument plumbing *)
    note_nr st Sysno.bench_nonexistent;
    [
      Asm.I (Insn.Mov_ri (RDI, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (RSI, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (RDX, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (R10, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (R8, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (R9, pick st.rng boundary_args));
      Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
      Asm.I (trap_insn st.rng);
    ]
  | 3 ->
    note_nr st Sysno.brk;
    [ Asm.I (Insn.Mov_ri (RDI, 0)); Asm.I (Insn.Mov_ri (RAX, Sysno.brk)); Asm.I (trap_insn st.rng) ]
  | 4 ->
    note_nr st Sysno.close;
    [
      Asm.I (Insn.Mov_ri (RDI, 99 + Rng.int st.rng 100));
      Asm.I (Insn.Mov_ri (RAX, Sysno.close));
      Asm.I (trap_insn st.rng);
    ]
  | _ -> write_items st

(* executed filler with hazard bytes in the immediates; the registers
   written are scratch, so the values never escape *)
let embedded_filler st =
  let r = pick st.rng scratch in
  match Rng.int st.rng 4 with
  | 0 -> [ Asm.I (Insn.Mov_ri (r, pick st.rng hazard_imms)) ]
  | 1 ->
    (* Mov_ri32 only encodes RAX..RDI; RBX is our only low scratch *)
    [ Asm.I (Insn.Mov_ri32 (RBX, 0x050f_050f)) ]
  | 2 ->
    let r2 = pick st.rng scratch in
    [ Asm.I (Insn.Mov_ri (r, pick st.rng hazard_imms)); Asm.I (Insn.Add_rr (r, r2)) ]
  | _ -> [ Asm.I (Insn.Lea (r, pick st.rng scratch, 0x050f)) ]

(* --- shapes -------------------------------------------------------- *)

let raw_block st =
  let one () = raw_syscall_items st in
  if Rng.int st.rng 3 = 0 then begin
    (* bounded counted loop around one syscall (R13 is reserved) *)
    let n = 2 + Rng.int st.rng 4 in
    let lbl = fresh st "loop" in
    let body = one () in
    [ Asm.I (Insn.Mov_ri (R13, n)); Asm.Label lbl ]
    @ body
    @ [ Asm.I (Insn.Sub_ri (R13, 1)); Asm.Jc (Insn.NZ, lbl) ]
  end
  else
    List.concat (List.init (1 + Rng.int st.rng 3) (fun _ -> one ()))

let embedded_block st =
  let fillers = List.concat (List.init (2 + Rng.int st.rng 3) (fun _ -> embedded_filler st)) in
  (* a raw syscall right after the hazard bytes: a rewriter whose scan
     desynchronised on them would miss or corrupt this site *)
  fillers @ raw_syscall_items st

(* place a long instruction (or a SYSCALL) across a page boundary of
   the app's text.  App text is mapped at a fixed page-aligned base, so
   an [Align 4096] inside the image is a runtime page boundary. *)
let straddle_block st =
  let k = 1 + Rng.int st.rng 9 in
  let r = pick st.rng scratch in
  let nops n = Asm.Blob (Bytes.make n '\x90') in
  if k < 2 then begin
    (* the 2-byte SYSCALL itself straddles: opcode byte on one page,
       0x05 on the next *)
    note_nr st Sysno.getpid;
    [ Asm.I (Insn.Mov_ri (RAX, Sysno.getpid)); Asm.Align 4096; nops (4096 - 1); Asm.I Insn.Syscall ]
  end
  else
    (* a 10-byte mov with hazard bytes in the immediate straddles *)
    [ Asm.Align 4096; nops (4096 - k); Asm.I (Insn.Mov_ri (r, pick st.rng hazard_imms)) ]
    @ raw_syscall_items st

(* mmap an anonymous RWX page, store a freshly "generated" stub into it
   byte by byte (exercising the store-over-code coherence path), then
   call it — pitfall P2a's late-appearing code as a fuzz shape *)
let smc_block st =
  let nr = pick_l st.rng [ Sysno.getpid; Sysno.gettid; Sysno.bench_nonexistent ] in
  note_nr st Sysno.mmap;
  note_nr st nr;
  let stub = Encode.assemble [ Mov_ri32 (RAX, nr); Syscall; Ret ] in
  let stores = ref [] in
  Bytes.iteri
    (fun i c ->
      stores :=
        !stores
        @ [ Asm.I (Insn.Mov_ri (RBX, Char.code c)); Asm.I (Insn.Store8 (R14, i, RBX)) ])
    stub;
  [
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RSI, 4096));
    Asm.I (Insn.Mov_ri (RDX, 7));
    Asm.I (Insn.Mov_ri (R10, 0x20));
    Asm.I (Insn.Mov_ri (R8, -1));
    Asm.I (Insn.Mov_ri (R9, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.mmap));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_rr (R14, RAX));
  ]
  @ !stores
  @ [ Asm.I (Insn.Call_reg R14) ]

(* fork; the child runs a small body and exits, the parent blocks in
   wait4 before continuing — so console bytes stay ordered *)
let forky_block st =
  let child = fresh st "child" and join = fresh st "join" in
  note_nr st Sysno.fork;
  note_nr st Sysno.wait4;
  let child_body =
    List.concat (List.init (1 + Rng.int st.rng 2) (fun _ -> raw_syscall_items st))
    @ (if Rng.int st.rng 2 = 0 then write_items st else [])
    @ exit_items st (Rng.int st.rng 32)
  in
  [
    Asm.I (Insn.Mov_ri (RAX, Sysno.fork));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Test_rr (RAX, RAX));
    Asm.Jc (Insn.Z, child);
    Asm.I (Insn.Mov_ri (RDI, -1));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.I (Insn.Mov_ri (RDX, 0));
    Asm.I (Insn.Mov_ri (R10, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.wait4));
    Asm.I Insn.Syscall;
    Asm.J join;
    Asm.Label child;
  ]
  @ child_body
  @ [ Asm.Label join ]

(* install a handler for a synchronous fault signal, then fault; the
   handler writes a marker and exits — signal delivery, the sigframe
   and handler-issued syscalls all get exercised.  Terminal: nothing
   after this block runs. *)
let sig_block st =
  let handler = fresh st "handler" in
  let signo, trigger = if Rng.int st.rng 2 = 0 then (sigill, Asm.I Insn.Ud2) else (sigtrap, Asm.I Insn.Int3) in
  note_nr st Sysno.rt_sigaction;
  let handler_code = write_items st @ exit_items st (32 + Rng.int st.rng 32) in
  st.tail <- st.tail @ [ Asm.Label handler ] @ handler_code;
  [
    Asm.I (Insn.Mov_ri (RDI, signo));
    Asm.Mov_sym (RSI, handler);
    Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigaction));
    Asm.I Insn.Syscall;
    trigger;
  ]

(* P4a as a shape: call *rax with rax = 0.  Natively this is a fatal
   jump to an unmapped page; a rewriting interposer without the NULL
   check silently slides down its page-0 trampoline and "returns" from
   a syscall the program never made.  RDI is parked on a dead fd so
   the misdirected read(2) fails fast instead of blocking. *)
let null_call_block _st =
  [
    Asm.I (Insn.Mov_ri (RDI, 199));
    Asm.I (Insn.Xor_rr (RAX, RAX));
    Asm.I (Insn.Call_reg RAX);
  ]

(* P1a as a shape: fork + execve(helper, argv, envp=NULL).  The
   scrubbed environment drops LD_PRELOAD, so preload-based mechanisms
   lose the child — and seccomp's inherited filter kills it. *)
let exec_child_path = "/bin/fuzz_exec_child"

let exec_child_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, 3));
    Asm.Label "el";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "el");
    Asm.I (Insn.Mov_ri (RDI, 7));
    Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group));
    Asm.I Insn.Syscall;
  ]

let execve_scrub_block st =
  let child = fresh st "xchild" and join = fresh st "xjoin" in
  let epath = fresh st "epath" and argvv = fresh st "argvv" in
  st.data <- st.data @ [ Asm.Label epath; Asm.Strz exec_child_path; Asm.Align 8; Asm.Label argvv; Asm.Quad 0 ];
  note_nr st Sysno.fork;
  note_nr st Sysno.wait4;
  note_nr st Sysno.execve;
  [
    Asm.I (Insn.Mov_ri (RAX, Sysno.fork));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Test_rr (RAX, RAX));
    Asm.Jc (Insn.Z, child);
    Asm.I (Insn.Mov_ri (RDI, -1));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.I (Insn.Mov_ri (RDX, 0));
    Asm.I (Insn.Mov_ri (R10, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.wait4));
    Asm.I Insn.Syscall;
    Asm.J join;
    Asm.Label child;
    Asm.Mov_sym (RDI, epath);
    Asm.Mov_sym (RSI, argvv);
    Asm.I (Insn.Xor_rr (RDX, RDX));
    Asm.I (Insn.Mov_ri (RAX, Sysno.execve));
    Asm.I Insn.Syscall;
    (* execve failed: die loudly *)
    Asm.I (Insn.Mov_ri (RDI, 9));
    Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group));
    Asm.I Insn.Syscall;
    Asm.Label join;
  ]

let block_of_shape st = function
  | Raw | Svc_alias (* no x86 realisation: alias literals need fixed width *) -> raw_block st
  | Embedded -> embedded_block st
  | Straddle -> straddle_block st
  | Smc -> smc_block st
  | Forky -> forky_block st
  | Sigheavy -> sig_block st
  | Null_call -> null_call_block st
  | Execve_scrub -> execve_scrub_block st

(* weights: raw syscalls dominate, structural shapes salt the mix *)
let weight = function
  | Raw -> 5
  | Embedded -> 3
  | Straddle -> 1
  | Smc -> 1
  | Forky -> 1
  | Sigheavy -> 1
  | Null_call -> 2
  | Execve_scrub -> 2
  | Svc_alias -> 2

let pick_shape rng shapes =
  let total = List.fold_left (fun a s -> a + weight s) 0 shapes in
  let roll = Rng.int rng total in
  let rec go acc = function
    | [] -> List.hd shapes
    | s :: rest -> if roll < acc + weight s then s else go (acc + weight s) rest
  in
  go 0 shapes

(* Structure: 1-4 shape blocks, a final exit_group, plus any handler
   code and the data section.  At most one straddle and one terminal
   (signal) block per program; the terminal block, if drawn, goes
   last. *)
let generate_x86 ~shapes rng =
  let st = { rng; uid = 0; data = []; tail = []; used = []; sysnrs = [] } in
  let nblocks = 1 + Rng.int rng 4 in
  let straddled = ref false and terminal = ref false in
  let body = ref [] in
  for _ = 1 to nblocks do
    if not !terminal then begin
      let s = ref (pick_shape rng shapes) in
      if !s = Straddle && !straddled then s := Raw;
      if !s = Straddle then straddled := true;
      if !s = Sigheavy then terminal := true;
      st.used <- st.used @ [ !s ];
      body := !body @ block_of_shape st !s
    end
  done;
  let items =
    [ Asm.Label "main" ]
    @ !body
    @ (if !terminal then [] else exit_items st (Rng.int st.rng 64))
    @ st.tail
    @ (match st.data with [] -> [] | d -> Asm.Section `Data :: d)
  in
  { items = X86 items; shapes = st.used; nrs = List.rev st.sysnrs }


(* --- the AArch64 generator ----------------------------------------- *)

(* The same shape mix realised in the fixed-width ISA.  Register
   discipline mirrors x86: x0-x5 are syscall arguments, x8 the number,
   x0 the (dirty) result; x16/x17 are the assembler's literal-pool
   scratch, x19/x20 the loader's dispatch cell and x30 the link
   register — all avoided.  General scratch is x9-x15, the loop
   counter x21.  [svc] clobbers nothing, so unlike x86 no register
   needs reloading across a syscall. *)

module A = K23_isa_arm.Asm_arm
module Arm = K23_isa_arm.Arm

type st_arm = {
  arng : Rng.t;
  mutable auid : int;
  mutable adata : A.item list;
  mutable atail : A.item list;
  mutable aused : shape list;
  mutable asysnrs : int list;
}

let afresh st prefix =
  st.auid <- st.auid + 1;
  Printf.sprintf "%s%d" prefix st.auid

let anote st nr = st.asysnrs <- nr :: st.asysnrs
let ascratch = [| 9; 10; 11; 12; 13; 15 |]
let li rd v = List.map (fun i -> A.I i) (Arm.li rd v)
let svc st = A.I (Arm.Svc (Rng.int st.arng 8))

(* an executable sled of [nwords] nops (Blob keeps the item count and
   therefore the page-offset arithmetic exact) *)
let nop_pad nwords =
  let w = Arm.bytes_of_word (Arm.encode Arm.Nop) in
  let b = Bytes.create (4 * nwords) in
  for i = 0 to nwords - 1 do
    Bytes.blit w 0 b (4 * i) 4
  done;
  A.Blob b

let exit_items_arm st code =
  anote st Sysno.exit_group;
  li 0 code @ li 8 Sysno.exit_group @ [ A.I (Arm.Svc 0) ]

let write_const_arm st msg =
  let lbl = afresh st "m" in
  st.adata <- st.adata @ [ A.Label lbl; A.Strz msg ];
  anote st Sysno.write;
  li 0 1 @ [ A.Mov_sym (1, lbl) ] @ li 2 (String.length msg) @ li 8 Sysno.write @ [ svc st ]

let write_items_arm st =
  let len = 1 + Rng.int st.arng 8 in
  let msg = String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int st.arng 26)) in
  write_const_arm st msg

let raw_syscall_items_arm st =
  match Rng.int st.arng 6 with
  | 0 ->
    anote st Sysno.getpid;
    li 8 Sysno.getpid @ [ svc st ]
  | 1 ->
    anote st Sysno.gettid;
    li 8 Sysno.gettid @ [ svc st ]
  | 2 ->
    (* -ENOSYS whatever the registers hold; [Arm.li] materialises any
       OCaml int exactly (movz/movk field reassembly), so the x86
       boundary values carry over unchanged *)
    anote st Sysno.bench_nonexistent;
    List.concat (List.init 6 (fun i -> li i (pick st.arng boundary_args)))
    @ li 8 Sysno.bench_nonexistent
    @ [ svc st ]
  | 3 ->
    anote st Sysno.brk;
    li 0 0 @ li 8 Sysno.brk @ [ svc st ]
  | 4 ->
    anote st Sysno.close;
    li 0 (99 + Rng.int st.arng 100) @ li 8 Sysno.close @ [ svc st ]
  | _ -> write_items_arm st

(* immediates and register values that contain the [svc] word pattern:
   split across movz/movk 16-bit fields or materialised whole.  An
   aligned sweep never treats them as sites; only in-text {e data}
   words can alias (the [Svc_alias] shape). *)
let embedded_filler_arm st =
  let r = pick st.arng ascratch in
  let alias = Arm.encode (Arm.Svc (Rng.int st.arng 0x10000)) in
  match Rng.int st.arng 4 with
  | 0 -> [ A.I (Arm.Movz (r, alias land 0xffff)) ]
  | 1 -> li r alias
  | 2 ->
    let r2 = pick st.arng ascratch in
    li r alias @ [ A.I (Arm.Add_rr (r, r, r2)) ]
  | _ -> [ A.I (Arm.Movz (r, alias land 0xffff)); A.I (Arm.Movk (r, (alias lsr 16) land 0xffff, 1)) ]

let raw_block_arm st =
  let one () = raw_syscall_items_arm st in
  if Rng.int st.arng 3 = 0 then begin
    (* bounded counted loop around one syscall (x21 is reserved) *)
    let n = 2 + Rng.int st.arng 4 in
    let lbl = afresh st "loop" in
    let body = one () in
    li 21 n @ [ A.Label lbl ] @ body
    @ [ A.I (Arm.Subs_imm (21, 21, 1)); A.Jc (Insn.NZ, lbl) ]
  end
  else List.concat (List.init (1 + Rng.int st.arng 3) (fun _ -> one ()))

let embedded_block_arm st =
  let fillers = List.concat (List.init (2 + Rng.int st.arng 3) (fun _ -> embedded_filler_arm st)) in
  fillers @ raw_syscall_items_arm st

(* no instruction can straddle a page on a fixed-width ISA; the shape
   instead parks genuine [svc] sites on both edges of a page boundary,
   where a patcher's permission and barrier handling must span pages *)
let straddle_block_arm st =
  anote st Sysno.getpid;
  if Rng.int st.arng 2 = 0 then
    (* svc in the last word of a page *)
    li 8 Sysno.getpid @ [ A.Align 4096; nop_pad 1023; A.I (Arm.Svc 0) ]
  else begin
    (* back-to-back sites bracketing the boundary: last word of one
       page, first word of the next (x8 survives the first svc) *)
    anote st Sysno.getpid;
    li 8 Sysno.getpid @ [ A.Align 4096; nop_pad 1023; A.I (Arm.Svc 0); A.I (Arm.Svc 1) ]
  end

let smc_block_arm st =
  let nr = pick_l st.arng [ Sysno.getpid; Sysno.gettid; Sysno.bench_nonexistent ] in
  anote st Sysno.mmap;
  anote st nr;
  let stub = Arm.assemble (Arm.li 8 nr @ [ Arm.Svc 0; Arm.Ret ]) in
  let stores = ref [] in
  Bytes.iteri
    (fun i c -> stores := !stores @ li 9 (Char.code c) @ [ A.I (Arm.Strb (9, 14, i)) ])
    stub;
  li 0 0 @ li 1 4096 @ li 2 7 @ li 3 0x20 @ li 4 (-1) @ li 5 0 @ li 8 Sysno.mmap
  @ [ A.I (Arm.Svc 0); A.I (Arm.Mov_rr (14, 0)) ]
  @ !stores
  @ [ A.I (Arm.Blr 14) ]

let forky_block_arm st =
  let child = afresh st "child" and join = afresh st "join" in
  anote st Sysno.fork;
  anote st Sysno.wait4;
  let child_body =
    List.concat (List.init (1 + Rng.int st.arng 2) (fun _ -> raw_syscall_items_arm st))
    @ (if Rng.int st.arng 2 = 0 then write_items_arm st else [])
    @ exit_items_arm st (Rng.int st.arng 32)
  in
  li 8 Sysno.fork
  @ [ A.I (Arm.Svc 0); A.I (Arm.Subs_imm (31, 0, 0)); A.Jc (Insn.Z, child) ]
  @ li 0 (-1) @ li 1 0 @ li 2 0 @ li 3 0 @ li 8 Sysno.wait4
  @ [ A.I (Arm.Svc 0); A.J join; A.Label child ]
  @ child_body
  @ [ A.Label join ]

let sig_block_arm st =
  let handler = afresh st "handler" in
  let signo, trigger =
    if Rng.int st.arng 2 = 0 then (sigill, A.Blob (Bytes.make 4 '\x00')) (* zero word: undefined *)
    else (sigtrap, A.I (Arm.Brk 0))
  in
  anote st Sysno.rt_sigaction;
  let handler_code = write_items_arm st @ exit_items_arm st (32 + Rng.int st.arng 32) in
  st.atail <- st.atail @ [ A.Label handler ] @ handler_code;
  li 0 signo @ [ A.Mov_sym (1, handler) ] @ li 8 Sysno.rt_sigaction @ [ A.I (Arm.Svc 0); trigger ]

(* P3a as a shape: a literal-pool word whose value aliases the [svc]
   encoding, read back and compared.  An exact aligned sweep cannot
   tell it from code, so ASC-Hook patches it and the program observes
   the rewrite — native and rewriting runs diverge by design. *)
let svc_alias_block st =
  let cont = afresh st "cont" and patched = afresh st "patched" and fin = afresh st "fin" in
  let alias = Arm.encode (Arm.Svc (1 + Rng.int st.arng 0x7fff)) in
  [ A.I (Arm.Ldr_lit (9, 2)) (* x9 := the quad two words below *); A.J cont; A.Quad alias; A.Label cont ]
  @ li 10 alias
  @ [ A.I (Arm.Subs_rr (31, 9, 10)); A.Jc (Insn.NZ, patched) ]
  @ write_const_arm st "literal-intact"
  @ [ A.J fin; A.Label patched ]
  @ write_const_arm st "literal-PATCHED"
  @ [ A.Label fin ]

let exec_child_items_arm =
  [ A.Label "main" ]
  @ li 21 3
  @ [ A.Label "el" ]
  @ li 8 Sysno.bench_nonexistent
  @ [ A.I (Arm.Svc 0); A.I (Arm.Subs_imm (21, 21, 1)); A.Jc (Insn.NZ, "el") ]
  @ li 0 7 @ li 8 Sysno.exit_group
  @ [ A.I (Arm.Svc 0) ]

let execve_scrub_block_arm st =
  let child = afresh st "xchild" and join = afresh st "xjoin" in
  let epath = afresh st "epath" and argvv = afresh st "argvv" in
  st.adata <-
    st.adata @ [ A.Label epath; A.Strz exec_child_path; A.Align 8; A.Label argvv; A.Quad 0 ];
  anote st Sysno.fork;
  anote st Sysno.wait4;
  anote st Sysno.execve;
  li 8 Sysno.fork
  @ [ A.I (Arm.Svc 0); A.I (Arm.Subs_imm (31, 0, 0)); A.Jc (Insn.Z, child) ]
  @ li 0 (-1) @ li 1 0 @ li 2 0 @ li 3 0 @ li 8 Sysno.wait4
  @ [ A.I (Arm.Svc 0); A.J join; A.Label child; A.Mov_sym (0, epath); A.Mov_sym (1, argvv) ]
  @ li 2 0 @ li 8 Sysno.execve
  @ [ A.I (Arm.Svc 0) ]
  (* execve failed: die loudly *)
  @ li 0 9 @ li 8 Sysno.exit_group
  @ [ A.I (Arm.Svc 0); A.Label join ]

let block_of_shape_arm st = function
  | Raw | Null_call (* no ARM realisation: NULL-call misdirection is an x86 trampoline artefact *) ->
    raw_block_arm st
  | Embedded -> embedded_block_arm st
  | Straddle -> straddle_block_arm st
  | Smc -> smc_block_arm st
  | Forky -> forky_block_arm st
  | Sigheavy -> sig_block_arm st
  | Svc_alias -> svc_alias_block st
  | Execve_scrub -> execve_scrub_block_arm st

let generate_arm ~shapes rng =
  let st = { arng = rng; auid = 0; adata = []; atail = []; aused = []; asysnrs = [] } in
  let nblocks = 1 + Rng.int rng 4 in
  let straddled = ref false and terminal = ref false in
  let body = ref [] in
  for _ = 1 to nblocks do
    if not !terminal then begin
      let s = ref (pick_shape rng shapes) in
      if !s = Straddle && !straddled then s := Raw;
      if !s = Straddle then straddled := true;
      if !s = Sigheavy then terminal := true;
      st.aused <- st.aused @ [ !s ];
      body := !body @ block_of_shape_arm st !s
    end
  done;
  let items =
    [ A.Label "main" ]
    @ !body
    @ (if !terminal then [] else exit_items_arm st (Rng.int st.arng 64))
    @ st.atail
    @ (match st.adata with [] -> [] | d -> A.Section `Data :: d)
  in
  { items = A64 items; shapes = st.aused; nrs = List.rev st.asysnrs }

(** Generate one program for [isa].  Same seed, same ISA => the same
    program byte-for-byte; the two ISAs draw from the rng in different
    orders and are unrelated streams. *)
let generate ?(shapes = default_shapes) ?(isa = K23_isa.Isa.X86_64) rng =
  match isa with
  | K23_isa.Isa.X86_64 -> generate_x86 ~shapes rng
  | K23_isa.Isa.Arm64 -> generate_arm ~shapes rng

(* --- coverage accounting ------------------------------------------- *)

let insn_name (i : Insn.t) =
  match i with
  | Nop -> "nop" | Ret -> "ret" | Int3 -> "int3" | Hlt -> "hlt"
  | Syscall -> "syscall" | Sysenter -> "sysenter" | Ud2 -> "ud2" | Cpuid -> "cpuid"
  | Mfence -> "mfence" | Wrpkru -> "wrpkru" | Rdpkru -> "rdpkru" | Vcall _ -> "vcall"
  | Push _ -> "push" | Pop _ -> "pop" | Mov_ri _ -> "mov_ri" | Mov_ri32 _ -> "mov_ri32"
  | Mov_rr _ -> "mov_rr" | Add_rr _ -> "add_rr" | Sub_rr _ -> "sub_rr" | Xor_rr _ -> "xor_rr"
  | Test_rr _ -> "test_rr" | Cmp_rr _ -> "cmp_rr" | Add_ri _ -> "add_ri" | Sub_ri _ -> "sub_ri"
  | Cmp_ri _ -> "cmp_ri" | Load _ -> "load" | Store _ -> "store" | Load8 _ -> "load8"
  | Store8 _ -> "store8" | Lea _ -> "lea" | Jmp_rel _ -> "jmp_rel" | Call_rel _ -> "call_rel"
  | Jcc _ -> "jcc" | Jmp_reg _ -> "jmp_reg" | Call_reg _ -> "call_reg"

(** Count the executable instructions of a program's items (pseudo-
    items count as what they assemble to; data items count zero). *)
let insn_count = function
  | X86 items ->
    List.fold_left
      (fun acc item ->
        acc
        +
        match (item : Asm.item) with
        | Asm.I _ | Asm.J _ | Asm.Jc _ | Asm.Calll _ | Asm.Mov_sym _ | Asm.Vcall_named _ -> 1
        | Asm.Call_sym _ | Asm.Jmp_sym _ -> 2
        | Asm.Label _ | Asm.Blob _ | Asm.Zeros _ | Asm.Strz _ | Asm.Quad _ | Asm.Section _
        | Asm.Align _ ->
          0)
      0 items
  | A64 items ->
    List.fold_left
      (fun acc item ->
        acc
        +
        match (item : A.item) with
        | A.I _ | A.J _ | A.Jc _ | A.Calll _ | A.Vcall_named _ -> 1
        | A.Mov_sym _ -> 2 (* ldr + skip-branch (the pool quad is data) *)
        | A.Call_sym _ | A.Jmp_sym _ -> 3
        | A.Label _ | A.Blob _ | A.Zeros _ | A.Strz _ | A.Quad _ | A.Section _ | A.Align _ -> 0)
      0 items

let add_hist tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let arm_insn_name (i : Arm.insn) =
  match i with
  | Svc _ -> "svc" | Bl _ -> "bl" | B _ -> "b" | B_cond _ -> "b_cond" | Br _ -> "br"
  | Blr _ -> "blr" | Ret -> "ret" | Nop -> "nop" | Movz _ -> "movz" | Movk _ -> "movk"
  | Movn _ -> "movn" | Mov_rr _ -> "mov_rr" | Add_imm _ -> "add_imm" | Subs_imm _ -> "subs_imm"
  | Add_rr _ -> "add_rr" | Sub_rr _ -> "sub_rr" | Subs_rr _ -> "subs_rr" | Ldr_lit _ -> "ldr_lit"
  | Ldr _ -> "ldr" | Str _ -> "str" | Ldrb _ -> "ldrb" | Strb _ -> "strb" | Vcall _ -> "vcall"
  | Brk _ -> "brk"

(** Opcode histogram over programs' items (sorted by name); x86 and
    ARM opcode names never collide, so mixed populations are fine. *)
let insn_histogram progs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun p ->
      match p.items with
      | X86 items ->
        List.iter
          (fun item ->
            match (item : Asm.item) with
            | Asm.I i -> add_hist tbl (insn_name i) 1
            | Asm.J _ -> add_hist tbl "jmp_rel" 1
            | Asm.Jc _ -> add_hist tbl "jcc" 1
            | Asm.Calll _ -> add_hist tbl "call_rel" 1
            | Asm.Mov_sym _ -> add_hist tbl "mov_ri" 1
            | Asm.Call_sym _ | Asm.Jmp_sym _ -> add_hist tbl "mov_ri" 1
            | _ -> ())
          items
      | A64 items ->
        List.iter
          (fun item ->
            match (item : A.item) with
            | A.I i -> add_hist tbl (arm_insn_name i) 1
            | A.J _ -> add_hist tbl "b" 1
            | A.Jc _ -> add_hist tbl "b_cond" 1
            | A.Calll _ -> add_hist tbl "bl" 1
            | A.Mov_sym _ -> add_hist tbl "ldr_lit" 1
            | A.Call_sym _ | A.Jmp_sym _ -> add_hist tbl "ldr_lit" 1
            | _ -> ())
          items)
    progs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Static syscall-number histogram (sorted by nr). *)
let syscall_histogram progs =
  let tbl = Hashtbl.create 32 in
  List.iter (fun p -> List.iter (fun nr -> add_hist tbl nr 1) p.nrs) progs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* --- instruction generator shared with the round-trip property test - *)

let any_reg rng = Reg.of_index (Rng.int rng 16)
let low_reg rng = Reg.of_index (Rng.int rng 8)
let imm8 rng = Rng.int rng 256 - 128
let disp32 rng = Rng.int rng 0x1_0000_0000 - 0x8000_0000
let imm64 rng = Int64.to_int (Rng.next_int64 rng)  (* any 63-bit OCaml int *)

(** A random instruction over the full ISA with operands drawn from
    each encoding's legal range — the distribution the fuzzer feeds
    the machine and the encode->decode round-trip property tests. *)
let random_insn rng : Insn.t =
  match Rng.int rng 22 with
  | 0 -> ( match Rng.int rng 8 with
    | 0 -> Nop | 1 -> Ret | 2 -> Int3 | 3 -> Hlt | 4 -> Ud2 | 5 -> Cpuid | 6 -> Mfence
    | _ -> if Rng.int rng 2 = 0 then Wrpkru else Rdpkru)
  | 1 -> Syscall
  | 2 -> Sysenter
  | 3 -> Vcall (Rng.int rng 1024)
  | 4 -> Push (any_reg rng)
  | 5 -> Pop (any_reg rng)
  | 6 -> Mov_ri (any_reg rng, if Rng.int rng 2 = 0 then pick rng hazard_imms else imm64 rng)
  | 7 -> Mov_ri32 (low_reg rng, if Rng.int rng 2 = 0 then 0x050f_050f else Rng.int rng 0x1_0000_0000)
  | 8 -> Mov_rr (any_reg rng, any_reg rng)
  | 9 -> Add_rr (any_reg rng, any_reg rng)
  | 10 -> Sub_rr (any_reg rng, any_reg rng)
  | 11 -> Xor_rr (any_reg rng, any_reg rng)
  | 12 -> Test_rr (any_reg rng, any_reg rng)
  | 13 -> Cmp_rr (any_reg rng, any_reg rng)
  | 14 -> ( match Rng.int rng 3 with
    | 0 -> Add_ri (any_reg rng, imm8 rng)
    | 1 -> Sub_ri (any_reg rng, imm8 rng)
    | _ -> Cmp_ri (any_reg rng, imm8 rng))
  | 15 -> Load (any_reg rng, any_reg rng, disp32 rng)
  | 16 -> Store (any_reg rng, disp32 rng, any_reg rng)
  | 17 -> ( match Rng.int rng 2 with
    | 0 -> Load8 (any_reg rng, any_reg rng, disp32 rng)
    | _ -> Store8 (any_reg rng, disp32 rng, any_reg rng))
  | 18 -> Lea (any_reg rng, any_reg rng, disp32 rng)
  | 19 -> ( match Rng.int rng 2 with
    | 0 -> Jmp_rel (disp32 rng)
    | _ -> Call_rel (disp32 rng))
  | 20 ->
    let c : Insn.cond =
      match Rng.int rng 6 with 0 -> Z | 1 -> NZ | 2 -> LT | 3 -> GE | 4 -> LE | _ -> GT
    in
    Jcc (c, disp32 rng)
  | _ -> if Rng.int rng 2 = 0 then Jmp_reg (any_reg rng) else Call_reg (any_reg rng)
