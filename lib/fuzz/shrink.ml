(** Delta-debugging minimiser for divergence repros.

    Given an item list on which [Oracle.diverges ~mech] reports a
    divergence, shrink it to a locally minimal list that still
    diverges: classic ddmin over chunks (try dropping ever-smaller
    slices of the program), finished by a one-minimal pass that tries
    deleting each remaining item alone.

    Dropping items can orphan a label a branch still targets, or drop
    "main" itself — the assembler raises on both, and a candidate that
    no longer assembles (or no longer launches) simply doesn't
    reproduce, so ddmin discards it without special-casing.  The
    oracle is fully deterministic, which delta debugging quietly
    assumes; here it actually holds. *)

type result = {
  items : Gen.items;  (** the minimal reproducer *)
  divergence : Oracle.divergence;  (** what it still reproduces *)
  tests : int;  (** oracle runs spent shrinking *)
}

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

(** Remove the slice [lo, lo+len) of [l]. *)
let without l lo len = take lo l @ drop (lo + len) l

(* the ddmin loop itself is item-representation-agnostic: [wrap]
   re-tags the candidate list for the oracle *)
let minimize_list ?cfg ?max_steps ~mech ~wrap items =
  let tests = ref 0 in
  let check its =
    incr tests;
    match Oracle.diverges ?cfg ?max_steps ~mech (wrap its) with
    | exception _ -> None (* no longer assembles / launches: not a repro *)
    | d -> d
  in
  match check items with
  | None -> None
  | Some d0 ->
    let best = ref items and best_d = ref d0 in
    (* ddmin: try removing chunks of shrinking size *)
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let n = List.length !best in
      let chunk = ref (max 1 (n / 2)) in
      while !chunk >= 1 do
        let lo = ref 0 in
        while !lo < List.length !best do
          let cand = without !best !lo !chunk in
          (match check cand with
          | Some d when cand <> !best ->
            best := cand;
            best_d := d;
            continue_ := true
            (* retry the same offset: the next chunk slid into place *)
          | _ -> lo := !lo + !chunk)
        done;
        chunk := !chunk / 2
      done
    done;
    (* one-minimal pass: no single remaining item can be deleted *)
    let one = ref true in
    while !one do
      one := false;
      let n = List.length !best in
      let i = ref 0 in
      while !i < n && not !one do
        let cand = without !best !i 1 in
        (match check cand with
        | Some d ->
          best := cand;
          best_d := d;
          one := true
        | None -> incr i)
      done
    done;
    Some { items = wrap !best; divergence = !best_d; tests = !tests }

let minimize ?cfg ?max_steps ~mech = function
  | Gen.X86 its -> minimize_list ?cfg ?max_steps ~mech ~wrap:(fun l -> Gen.X86 l) its
  | Gen.A64 its -> minimize_list ?cfg ?max_steps ~mech ~wrap:(fun l -> Gen.A64 l) its
