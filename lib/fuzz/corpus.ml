(** Corpus of minimized divergence reproducers.

    Each repro is a standalone text file: a small header (mechanism,
    generator seed, a one-line description of the expected divergence)
    followed by the minimized program as an assembly listing, one item
    per line in constructor-token form.  The format round-trips
    exactly, so files checked in under [test/corpus/] are replayed
    verbatim by [dune runtest]: the suite re-runs the oracle on each
    and asserts the divergence is still detected — regression tests
    distilled from fuzzing campaigns, in the tradition of a crash
    corpus. *)

open K23_isa
module Mech = K23_eval.Mech

type entry = {
  e_mech : Mech.t;  (** mechanism the repro diverges under *)
  e_seed : int;  (** generator seed that first produced it *)
  e_expect : string;  (** rendered divergence at save time *)
  e_faults : K23_faults.Faults.plan option;
      (** fault plan active when the divergence was found; replay arms
          the same plan so fault-triggered repros stay reproducible *)
  e_items : Gen.items;
}

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)

let reg_to_s = Reg.to_string

let reg_of_s s =
  match List.find_opt (fun r -> Reg.to_string r = s) Reg.all with
  | Some r -> r
  | None -> raise (Parse_error ("bad register: " ^ s))

let cond_to_s : Insn.cond -> string = function
  | Z -> "z"
  | NZ -> "nz"
  | LT -> "lt"
  | GE -> "ge"
  | LE -> "le"
  | GT -> "gt"

let cond_of_s : string -> Insn.cond = function
  | "z" -> Z
  | "nz" -> NZ
  | "lt" -> LT
  | "ge" -> GE
  | "le" -> LE
  | "gt" -> GT
  | s -> raise (Parse_error ("bad condition: " ^ s))

let insn_to_line (i : Insn.t) =
  match i with
  | Nop -> "nop"
  | Ret -> "ret"
  | Int3 -> "int3"
  | Hlt -> "hlt"
  | Syscall -> "syscall"
  | Sysenter -> "sysenter"
  | Ud2 -> "ud2"
  | Cpuid -> "cpuid"
  | Mfence -> "mfence"
  | Wrpkru -> "wrpkru"
  | Rdpkru -> "rdpkru"
  | Vcall n -> Printf.sprintf "vcall %d" n
  | Push r -> Printf.sprintf "push %s" (reg_to_s r)
  | Pop r -> Printf.sprintf "pop %s" (reg_to_s r)
  | Mov_ri (r, v) -> Printf.sprintf "mov_ri %s %d" (reg_to_s r) v
  | Mov_ri32 (r, v) -> Printf.sprintf "mov_ri32 %s %d" (reg_to_s r) v
  | Mov_rr (d, s) -> Printf.sprintf "mov_rr %s %s" (reg_to_s d) (reg_to_s s)
  | Add_rr (d, s) -> Printf.sprintf "add_rr %s %s" (reg_to_s d) (reg_to_s s)
  | Sub_rr (d, s) -> Printf.sprintf "sub_rr %s %s" (reg_to_s d) (reg_to_s s)
  | Xor_rr (d, s) -> Printf.sprintf "xor_rr %s %s" (reg_to_s d) (reg_to_s s)
  | Test_rr (a, b) -> Printf.sprintf "test_rr %s %s" (reg_to_s a) (reg_to_s b)
  | Cmp_rr (a, b) -> Printf.sprintf "cmp_rr %s %s" (reg_to_s a) (reg_to_s b)
  | Add_ri (r, v) -> Printf.sprintf "add_ri %s %d" (reg_to_s r) v
  | Sub_ri (r, v) -> Printf.sprintf "sub_ri %s %d" (reg_to_s r) v
  | Cmp_ri (r, v) -> Printf.sprintf "cmp_ri %s %d" (reg_to_s r) v
  | Load (d, b, o) -> Printf.sprintf "load %s %s %d" (reg_to_s d) (reg_to_s b) o
  | Store (b, o, s) -> Printf.sprintf "store %s %d %s" (reg_to_s b) o (reg_to_s s)
  | Load8 (d, b, o) -> Printf.sprintf "load8 %s %s %d" (reg_to_s d) (reg_to_s b) o
  | Store8 (b, o, s) -> Printf.sprintf "store8 %s %d %s" (reg_to_s b) o (reg_to_s s)
  | Lea (d, b, o) -> Printf.sprintf "lea %s %s %d" (reg_to_s d) (reg_to_s b) o
  | Jmp_rel d -> Printf.sprintf "jmp_rel %d" d
  | Call_rel d -> Printf.sprintf "call_rel %d" d
  | Jcc (c, d) -> Printf.sprintf "jcc %s %d" (cond_to_s c) d
  | Jmp_reg r -> Printf.sprintf "jmp_reg %s" (reg_to_s r)
  | Call_reg r -> Printf.sprintf "call_reg %s" (reg_to_s r)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  if String.length s mod 2 <> 0 then raise (Parse_error "odd hex length");
  Bytes.init (String.length s / 2) (fun i ->
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some v -> Char.chr v
      | None -> raise (Parse_error ("bad hex: " ^ s)))

let item_to_line (it : Asm.item) =
  match it with
  | Asm.I i -> insn_to_line i
  | Asm.Label l -> "label " ^ l
  | Asm.Blob b -> "blob " ^ hex_of_bytes b
  | Asm.Zeros n -> Printf.sprintf "zeros %d" n
  | Asm.Strz s -> "strz " ^ String.escaped s
  | Asm.Quad n -> Printf.sprintf "quad %d" n
  | Asm.J l -> "j " ^ l
  | Asm.Jc (c, l) -> Printf.sprintf "jc %s %s" (cond_to_s c) l
  | Asm.Calll l -> "calll " ^ l
  | Asm.Call_sym s -> "call_sym " ^ s
  | Asm.Jmp_sym s -> "jmp_sym " ^ s
  | Asm.Mov_sym (r, s) -> Printf.sprintf "mov_sym %s %s" (reg_to_s r) s
  | Asm.Vcall_named s -> "vcall_named " ^ s
  | Asm.Section `Text -> "section text"
  | Asm.Section `Data -> "section data"
  | Asm.Align n -> Printf.sprintf "align %d" n

let num s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Parse_error ("bad number: " ^ s))

let item_of_line line : Asm.item =
  let line = String.trim line in
  let tok, rest =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  let args () = String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") in
  match (tok, args ()) with
  | "label", [ l ] -> Asm.Label l
  | "blob", [ h ] -> Asm.Blob (bytes_of_hex h)
  | "zeros", [ n ] -> Asm.Zeros (num n)
  | "strz", _ -> Asm.Strz (Scanf.unescaped rest)
  | "quad", [ n ] -> Asm.Quad (num n)
  | "j", [ l ] -> Asm.J l
  | "jc", [ c; l ] -> Asm.Jc (cond_of_s c, l)
  | "calll", [ l ] -> Asm.Calll l
  | "call_sym", [ s ] -> Asm.Call_sym s
  | "jmp_sym", [ s ] -> Asm.Jmp_sym s
  | "mov_sym", [ r; s ] -> Asm.Mov_sym (reg_of_s r, s)
  | "vcall_named", [ s ] -> Asm.Vcall_named s
  | "section", [ "text" ] -> Asm.Section `Text
  | "section", [ "data" ] -> Asm.Section `Data
  | "align", [ n ] -> Asm.Align (num n)
  (* instructions *)
  | "nop", [] -> Asm.I Nop
  | "ret", [] -> Asm.I Ret
  | "int3", [] -> Asm.I Int3
  | "hlt", [] -> Asm.I Hlt
  | "syscall", [] -> Asm.I Syscall
  | "sysenter", [] -> Asm.I Sysenter
  | "ud2", [] -> Asm.I Ud2
  | "cpuid", [] -> Asm.I Cpuid
  | "mfence", [] -> Asm.I Mfence
  | "wrpkru", [] -> Asm.I Wrpkru
  | "rdpkru", [] -> Asm.I Rdpkru
  | "vcall", [ n ] -> Asm.I (Vcall (num n))
  | "push", [ r ] -> Asm.I (Push (reg_of_s r))
  | "pop", [ r ] -> Asm.I (Pop (reg_of_s r))
  | "mov_ri", [ r; v ] -> Asm.I (Mov_ri (reg_of_s r, num v))
  | "mov_ri32", [ r; v ] -> Asm.I (Mov_ri32 (reg_of_s r, num v))
  | "mov_rr", [ d; s ] -> Asm.I (Mov_rr (reg_of_s d, reg_of_s s))
  | "add_rr", [ d; s ] -> Asm.I (Add_rr (reg_of_s d, reg_of_s s))
  | "sub_rr", [ d; s ] -> Asm.I (Sub_rr (reg_of_s d, reg_of_s s))
  | "xor_rr", [ d; s ] -> Asm.I (Xor_rr (reg_of_s d, reg_of_s s))
  | "test_rr", [ a; b ] -> Asm.I (Test_rr (reg_of_s a, reg_of_s b))
  | "cmp_rr", [ a; b ] -> Asm.I (Cmp_rr (reg_of_s a, reg_of_s b))
  | "add_ri", [ r; v ] -> Asm.I (Add_ri (reg_of_s r, num v))
  | "sub_ri", [ r; v ] -> Asm.I (Sub_ri (reg_of_s r, num v))
  | "cmp_ri", [ r; v ] -> Asm.I (Cmp_ri (reg_of_s r, num v))
  | "load", [ d; b; o ] -> Asm.I (Load (reg_of_s d, reg_of_s b, num o))
  | "store", [ b; o; s ] -> Asm.I (Store (reg_of_s b, num o, reg_of_s s))
  | "load8", [ d; b; o ] -> Asm.I (Load8 (reg_of_s d, reg_of_s b, num o))
  | "store8", [ b; o; s ] -> Asm.I (Store8 (reg_of_s b, num o, reg_of_s s))
  | "lea", [ d; b; o ] -> Asm.I (Lea (reg_of_s d, reg_of_s b, num o))
  | "jmp_rel", [ d ] -> Asm.I (Jmp_rel (num d))
  | "call_rel", [ d ] -> Asm.I (Call_rel (num d))
  | "jcc", [ c; d ] -> Asm.I (Jcc (cond_of_s c, num d))
  | "jmp_reg", [ r ] -> Asm.I (Jmp_reg (reg_of_s r))
  | "call_reg", [ r ] -> Asm.I (Call_reg (reg_of_s r))
  | _ -> raise (Parse_error ("bad item line: " ^ line))


(* --- the AArch64 item codec ----------------------------------------
   Selected by the [isa:] header key; token names may overlap with the
   x86 codec because a file is parsed under exactly one of them. *)

module A = K23_isa_arm.Asm_arm
module Arm = K23_isa_arm.Arm

let arm_insn_to_line (i : Arm.insn) =
  match i with
  | Arm.Svc n -> Printf.sprintf "svc %d" n
  | Arm.Bl o -> Printf.sprintf "bl %d" o
  | Arm.B o -> Printf.sprintf "b %d" o
  | Arm.B_cond (c, o) -> Printf.sprintf "b_cond %s %d" (cond_to_s c) o
  | Arm.Br r -> Printf.sprintf "br %d" r
  | Arm.Blr r -> Printf.sprintf "blr %d" r
  | Arm.Ret -> "ret"
  | Arm.Nop -> "nop"
  | Arm.Movz (r, v) -> Printf.sprintf "movz %d %d" r v
  | Arm.Movk (r, v, hw) -> Printf.sprintf "movk %d %d %d" r v hw
  | Arm.Movn (r, v, hw) -> Printf.sprintf "movn %d %d %d" r v hw
  | Arm.Mov_rr (d, m) -> Printf.sprintf "mov_rr %d %d" d m
  | Arm.Add_imm (d, n, v) -> Printf.sprintf "add_imm %d %d %d" d n v
  | Arm.Subs_imm (d, n, v) -> Printf.sprintf "subs_imm %d %d %d" d n v
  | Arm.Add_rr (d, n, m) -> Printf.sprintf "add_rr %d %d %d" d n m
  | Arm.Sub_rr (d, n, m) -> Printf.sprintf "sub_rr %d %d %d" d n m
  | Arm.Subs_rr (d, n, m) -> Printf.sprintf "subs_rr %d %d %d" d n m
  | Arm.Ldr_lit (r, o) -> Printf.sprintf "ldr_lit %d %d" r o
  | Arm.Ldr (t, n, o) -> Printf.sprintf "ldr %d %d %d" t n o
  | Arm.Str (t, n, o) -> Printf.sprintf "str %d %d %d" t n o
  | Arm.Ldrb (t, n, o) -> Printf.sprintf "ldrb %d %d %d" t n o
  | Arm.Strb (t, n, o) -> Printf.sprintf "strb %d %d %d" t n o
  | Arm.Vcall n -> Printf.sprintf "vcall %d" n
  | Arm.Brk n -> Printf.sprintf "brk %d" n

let arm_item_to_line (it : A.item) =
  match it with
  | A.I i -> arm_insn_to_line i
  | A.Label l -> "label " ^ l
  | A.Blob b -> "blob " ^ hex_of_bytes b
  | A.Zeros n -> Printf.sprintf "zeros %d" n
  | A.Strz s -> "strz " ^ String.escaped s
  | A.Quad n -> Printf.sprintf "quad %d" n
  | A.J l -> "j " ^ l
  | A.Jc (c, l) -> Printf.sprintf "jc %s %s" (cond_to_s c) l
  | A.Calll l -> "calll " ^ l
  | A.Call_sym s -> "call_sym " ^ s
  | A.Jmp_sym s -> "jmp_sym " ^ s
  | A.Mov_sym (r, s) -> Printf.sprintf "mov_sym %d %s" r s
  | A.Vcall_named s -> "vcall_named " ^ s
  | A.Section `Text -> "section text"
  | A.Section `Data -> "section data"
  | A.Align n -> Printf.sprintf "align %d" n

let arm_item_of_line line : A.item =
  let line = String.trim line in
  let tok, rest =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  let args () = String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") in
  match (tok, args ()) with
  | "label", [ l ] -> A.Label l
  | "blob", [ h ] -> A.Blob (bytes_of_hex h)
  | "zeros", [ n ] -> A.Zeros (num n)
  | "strz", _ -> A.Strz (Scanf.unescaped rest)
  | "quad", [ n ] -> A.Quad (num n)
  | "j", [ l ] -> A.J l
  | "jc", [ c; l ] -> A.Jc (cond_of_s c, l)
  | "calll", [ l ] -> A.Calll l
  | "call_sym", [ s ] -> A.Call_sym s
  | "jmp_sym", [ s ] -> A.Jmp_sym s
  | "mov_sym", [ r; s ] -> A.Mov_sym (num r, s)
  | "vcall_named", [ s ] -> A.Vcall_named s
  | "section", [ "text" ] -> A.Section `Text
  | "section", [ "data" ] -> A.Section `Data
  | "align", [ n ] -> A.Align (num n)
  (* instructions *)
  | "svc", [ n ] -> A.I (Arm.Svc (num n))
  | "bl", [ o ] -> A.I (Arm.Bl (num o))
  | "b", [ o ] -> A.I (Arm.B (num o))
  | "b_cond", [ c; o ] -> A.I (Arm.B_cond (cond_of_s c, num o))
  | "br", [ r ] -> A.I (Arm.Br (num r))
  | "blr", [ r ] -> A.I (Arm.Blr (num r))
  | "ret", [] -> A.I Arm.Ret
  | "nop", [] -> A.I Arm.Nop
  | "movz", [ r; v ] -> A.I (Arm.Movz (num r, num v))
  | "movk", [ r; v; hw ] -> A.I (Arm.Movk (num r, num v, num hw))
  | "movn", [ r; v; hw ] -> A.I (Arm.Movn (num r, num v, num hw))
  | "mov_rr", [ d; m ] -> A.I (Arm.Mov_rr (num d, num m))
  | "add_imm", [ d; n; v ] -> A.I (Arm.Add_imm (num d, num n, num v))
  | "subs_imm", [ d; n; v ] -> A.I (Arm.Subs_imm (num d, num n, num v))
  | "add_rr", [ d; n; m ] -> A.I (Arm.Add_rr (num d, num n, num m))
  | "sub_rr", [ d; n; m ] -> A.I (Arm.Sub_rr (num d, num n, num m))
  | "subs_rr", [ d; n; m ] -> A.I (Arm.Subs_rr (num d, num n, num m))
  | "ldr_lit", [ r; o ] -> A.I (Arm.Ldr_lit (num r, num o))
  | "ldr", [ t; n; o ] -> A.I (Arm.Ldr (num t, num n, num o))
  | "str", [ t; n; o ] -> A.I (Arm.Str (num t, num n, num o))
  | "ldrb", [ t; n; o ] -> A.I (Arm.Ldrb (num t, num n, num o))
  | "strb", [ t; n; o ] -> A.I (Arm.Strb (num t, num n, num o))
  | "vcall", [ n ] -> A.I (Arm.Vcall (num n))
  | "brk", [ n ] -> A.I (Arm.Brk (num n))
  | _ -> raise (Parse_error ("bad arm item line: " ^ line))

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let to_string (e : entry) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# k23_fuzz minimized reproducer\n";
  Buffer.add_string buf (Printf.sprintf "mech: %s\n" (Mech.to_string e.e_mech));
  (* emitted only for non-x86 entries: existing x86 corpus files stay
     byte-identical, and old readers ignore unknown header keys *)
  (match e.e_items with
  | Gen.X86 _ -> ()
  | Gen.A64 _ -> Buffer.add_string buf (Printf.sprintf "isa: %s\n" (K23_isa.Isa.to_string K23_isa.Isa.Arm64)));
  Buffer.add_string buf (Printf.sprintf "seed: %d\n" e.e_seed);
  Buffer.add_string buf (Printf.sprintf "expect: %s\n" e.e_expect);
  (match e.e_faults with
  | None -> ()
  | Some p ->
    Buffer.add_string buf (Printf.sprintf "faults: %s\n" (K23_faults.Faults.to_string p)));
  Buffer.add_string buf "---\n";
  let lines =
    match e.e_items with
    | Gen.X86 its -> List.map item_to_line its
    | Gen.A64 its -> List.map arm_item_to_line its
  in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

let of_string s : entry =
  let lines = String.split_on_char '\n' s in
  let mech = ref None and seed = ref 0 and expect = ref "" and faults = ref None in
  let isa = ref K23_isa.Isa.X86_64 in
  let rec header = function
    | [] -> raise (Parse_error "missing --- separator")
    | l :: rest -> (
      let l = String.trim l in
      if l = "---" then rest
      else if l = "" || l.[0] = '#' then header rest
      else
        match String.index_opt l ':' with
        | None -> raise (Parse_error ("bad header line: " ^ l))
        | Some i ->
          let k = String.sub l 0 i
          and v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
          (match k with
          | "mech" -> (
            match Mech.of_string v with
            | Some m -> mech := Some m
            | None -> raise (Parse_error ("unknown mech: " ^ v)))
          | "seed" -> seed := num v
          | "isa" -> (
            match K23_isa.Isa.of_string v with
            | Some i -> isa := i
            | None -> raise (Parse_error ("unknown isa: " ^ v)))
          | "expect" -> expect := v
          | "faults" -> (
            match K23_faults.Faults.of_string v with
            | Some p -> faults := Some p
            | None -> raise (Parse_error ("bad fault plan: " ^ v)))
          | _ -> () (* forward-compatible: ignore unknown keys *));
          header rest)
  in
  let body = header lines in
  let body =
    List.filter_map
      (fun l ->
        let l = String.trim l in
        if l = "" || l.[0] = '#' then None else Some l)
      body
  in
  let items =
    match !isa with
    | K23_isa.Isa.X86_64 -> Gen.X86 (List.map item_of_line body)
    | K23_isa.Isa.Arm64 -> Gen.A64 (List.map arm_item_of_line body)
  in
  match !mech with
  | None -> raise (Parse_error "missing mech: header")
  | Some m ->
    { e_mech = m; e_seed = !seed; e_expect = !expect; e_faults = !faults; e_items = items }

let save ~path (e : entry) =
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(** All [*.repro] files in [dir], sorted by name (deterministic
    replay order); missing directory = empty corpus. *)
let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (fun f -> (f, load (Filename.concat dir f)))
