(** Instruction decoder.

    [decode fetch pos] decodes one instruction whose first byte is at
    [pos], reading bytes through the [fetch] callback (so the same
    decoder serves the CPU — fetching through the I-cache — and the
    static disassembler — reading raw memory).

    Returns [Ok (insn, len)] or [Error `Invalid] when the byte stream
    does not form a valid instruction.  Because the ISA is
    variable-length, decoding at a misaligned position can succeed and
    yield a *different* instruction than the one the compiler emitted —
    the root cause of pitfalls P2a/P3a. *)

type fetch = int -> int
(** [fetch addr] returns the byte at [addr] (0..255).  May raise; the
    caller converts exceptions into faults. *)

type error = [ `Invalid ]

let u32 (fetch : fetch) pos =
  fetch pos lor (fetch (pos + 1) lsl 8) lor (fetch (pos + 2) lsl 16)
  lor (fetch (pos + 3) lsl 24)

let s32 fetch pos =
  let v = u32 fetch pos in
  if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let s8 v = if v land 0x80 <> 0 then v - 256 else v

let u64 (fetch : fetch) pos =
  let rec go i acc =
    if i = 8 then acc
    else go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int (fetch (pos + i))) (8 * i)))
  in
  Int64.to_int (go 0 0L)

let cond_of_cc = function
  | 4 -> Some Insn.Z
  | 5 -> Some Insn.NZ
  | 0xc -> Some Insn.LT
  | 0xd -> Some Insn.GE
  | 0xe -> Some Insn.LE
  | 0xf -> Some Insn.GT
  | _ -> None

(* ff-group second byte: call *reg / jmp *reg. [hi] adds 8 to the
   register index (0x41 prefix). *)
let decode_ff b2 ~hi ~extra_len =
  let add = if hi then 8 else 0 in
  if b2 >= 0xd0 && b2 <= 0xd7 then Ok (Insn.Call_reg (Reg.of_index (b2 - 0xd0 + add)), 2 + extra_len)
  else if b2 >= 0xe0 && b2 <= 0xe7 then Ok (Insn.Jmp_reg (Reg.of_index (b2 - 0xe0 + add)), 2 + extra_len)
  else Error `Invalid

(* ModRM-based forms under a REX prefix. [reg_ext]/[rm_ext] are the
   REX.R/REX.B extensions. *)
let decode_rex fetch pos ~reg_ext ~rm_ext =
  let op = fetch (pos + 1) in
  let mrm = fetch (pos + 2) in
  let md = mrm lsr 6 in
  let reg = Reg.of_index (((mrm lsr 3) land 7) + reg_ext) in
  let rm = Reg.of_index ((mrm land 7) + rm_ext) in
  let ext = (mrm lsr 3) land 7 in
  match op with
  | b when b >= 0xb8 && b <= 0xbf ->
    (* REX.W B8+r : mov r64, imm64.  reg_ext must be 0 (prefix 48/49). *)
    if reg_ext <> 0 then Error `Invalid
    else Ok (Insn.Mov_ri (Reg.of_index (b - 0xb8 + rm_ext), u64 fetch (pos + 2)), 10)
  | 0x89 when md = 3 -> Ok (Insn.Mov_rr (rm, reg), 3)
  | 0x89 when md = 2 -> Ok (Insn.Store (rm, s32 fetch (pos + 3), reg), 7)
  | 0x01 when md = 3 -> Ok (Insn.Add_rr (rm, reg), 3)
  | 0x29 when md = 3 -> Ok (Insn.Sub_rr (rm, reg), 3)
  | 0x31 when md = 3 -> Ok (Insn.Xor_rr (rm, reg), 3)
  | 0x85 when md = 3 -> Ok (Insn.Test_rr (rm, reg), 3)
  | 0x39 when md = 3 -> Ok (Insn.Cmp_rr (rm, reg), 3)
  | 0x83 when md = 3 -> (
    let imm = s8 (fetch (pos + 3)) in
    match ext with
    | 0 -> Ok (Insn.Add_ri (rm, imm), 4)
    | 5 -> Ok (Insn.Sub_ri (rm, imm), 4)
    | 7 -> Ok (Insn.Cmp_ri (rm, imm), 4)
    | _ -> Error `Invalid)
  | 0x8b when md = 2 -> Ok (Insn.Load (reg, rm, s32 fetch (pos + 3)), 7)
  | 0x8a when md = 2 -> Ok (Insn.Load8 (reg, rm, s32 fetch (pos + 3)), 7)
  | 0x88 when md = 2 -> Ok (Insn.Store8 (rm, s32 fetch (pos + 3), reg), 7)
  | 0x8d when md = 2 -> Ok (Insn.Lea (reg, rm, s32 fetch (pos + 3)), 7)
  | _ -> Error `Invalid

let decode (fetch : fetch) pos : (Insn.t * int, error) result =
  let b0 = fetch pos in
  match b0 with
  | 0x90 -> Ok (Nop, 1)
  | 0xc3 -> Ok (Ret, 1)
  | 0xcc -> Ok (Int3, 1)
  | 0xf4 -> Ok (Hlt, 1)
  | 0x0f -> (
    let b1 = fetch (pos + 1) in
    match b1 with
    | 0x05 -> Ok (Syscall, 2)
    | 0x34 -> Ok (Sysenter, 2)
    | 0x0b -> Ok (Ud2, 2)
    | 0xa2 -> Ok (Cpuid, 2)
    | 0xae -> if fetch (pos + 2) = 0xf0 then Ok (Mfence, 3) else Error `Invalid
    | 0x01 -> (
      match fetch (pos + 2) with
      | 0xef -> Ok (Wrpkru, 3)
      | 0xee -> Ok (Rdpkru, 3)
      | _ -> Error `Invalid)
    | 0x3f -> Ok (Vcall (u32 fetch (pos + 2)), 6)
    | b when b >= 0x80 && b <= 0x8f -> (
      match cond_of_cc (b - 0x80) with
      | Some c -> Ok (Jcc (c, s32 fetch (pos + 2)), 6)
      | None -> Error `Invalid)
    | _ -> Error `Invalid)
  | b when b >= 0x50 && b <= 0x57 -> Ok (Push (Reg.of_index (b - 0x50)), 1)
  | b when b >= 0x58 && b <= 0x5f -> Ok (Pop (Reg.of_index (b - 0x58)), 1)
  | b when b >= 0xb8 && b <= 0xbf -> Ok (Mov_ri32 (Reg.of_index (b - 0xb8), u32 fetch (pos + 1)), 5)
  | 0xe9 -> Ok (Jmp_rel (s32 fetch (pos + 1)), 5)
  | 0xe8 -> Ok (Call_rel (s32 fetch (pos + 1)), 5)
  | 0xff -> decode_ff (fetch (pos + 1)) ~hi:false ~extra_len:0
  | 0x41 -> (
    let b1 = fetch (pos + 1) in
    if b1 >= 0x50 && b1 <= 0x57 then Ok (Push (Reg.of_index (b1 - 0x50 + 8)), 2)
    else if b1 >= 0x58 && b1 <= 0x5f then Ok (Pop (Reg.of_index (b1 - 0x58 + 8)), 2)
    else if b1 = 0xff then decode_ff (fetch (pos + 2)) ~hi:true ~extra_len:1
    else Error `Invalid)
  | 0x48 -> decode_rex fetch pos ~reg_ext:0 ~rm_ext:0
  | 0x49 -> decode_rex fetch pos ~reg_ext:0 ~rm_ext:8
  | 0x4c -> decode_rex fetch pos ~reg_ext:8 ~rm_ext:0
  | 0x4d -> decode_rex fetch pos ~reg_ext:8 ~rm_ext:8
  | _ -> Error `Invalid

(** [decode_bytes b pos] decodes from a byte buffer; out-of-range reads
    are treated as invalid encodings. *)
let decode_bytes (b : Bytes.t) pos =
  let fetch i = if i < 0 || i >= Bytes.length b then raise Exit else Char.code (Bytes.get b i) in
  try decode fetch pos with Exit -> Error `Invalid

(** [decode_in b ~base pos] decodes at absolute address [pos] reading
    only the buffer [b], which holds the bytes of
    [base, base + length b).  Returns [None] when the decode attempt
    reads outside the buffer — the caller must then fall back to a
    fetch that can cross the boundary.  Unlike {!decode_bytes}, an
    out-of-range read is {e not} folded into [`Invalid]: whether the
    bytes past the boundary form a valid instruction is precisely what
    this function cannot know.  This is the primitive behind the
    I-cache's per-line predecode (see Icache). *)
let decode_in (b : Bytes.t) ~base pos =
  let len = Bytes.length b in
  let fetch a =
    let i = a - base in
    if i < 0 || i >= len then raise_notrace Exit else Char.code (Bytes.unsafe_get b i)
  in
  match decode fetch pos with r -> Some r | exception Exit -> None
