(** The ISA as a first-class, pure-data parameter.

    Everything that keys worlds — [World.Config], Run-spec sharding,
    corpus entries, recordings — carries one of these.  It is a plain
    variant (no functions, no modules) so structural equality,
    [Hashtbl.hash] and the text wire formats keep working unchanged;
    behavioural dispatch happens with [match] at the few ABI seams
    (fetch/step, syscall register convention, signal frame layout)
    rather than through a first-class module.

    Conventions per backend:
    - {!X86_64}: variable-length insns, [syscall] = [0f 05], nr in
      rax, args rdi/rsi/rdx/r10/r8/r9, ret in rax.  Registers 0..15.
    - {!Arm64}: fixed 4-byte insns, [svc #0], nr in x8, args x0..x5,
      ret in x0.  Registers 0..30 plus sp at index 31. *)

type t = X86_64 | Arm64

let all = [ X86_64; Arm64 ]

let to_string = function X86_64 -> "x86-64" | Arm64 -> "arm64"

let of_string = function
  | "x86-64" | "x86_64" | "x86" | "amd64" -> Some X86_64
  | "arm64" | "aarch64" | "arm" -> Some Arm64
  | _ -> None

let equal (a : t) (b : t) = a = b

(** Width in bytes of one instruction slot for fixed-width ISAs; the
    minimum insn length for x86 (used only for sweep invariants). *)
let insn_align = function X86_64 -> 1 | Arm64 -> 4

(** Bytes occupied by the host-escape [Vcall] pseudo-instruction:
    6 on x86 (0f 1f /0 imm16-style), one word on arm64 (hlt-space). *)
let vcall_len = function X86_64 -> 6 | Arm64 -> 4

(** Index of the syscall-number register in the flat GPR file. *)
let nr_index = function X86_64 -> 0 (* rax *) | Arm64 -> 8 (* x8 *)

(** Indices of the six syscall argument registers, ABI order. *)
let arg_indices = function
  | X86_64 -> [| 7; 6; 2; 10; 8; 9 |] (* rdi rsi rdx r10 r8 r9 *)
  | Arm64 -> [| 0; 1; 2; 3; 4; 5 |] (* x0..x5 *)

(** Index of the syscall return register (rax / x0 — both 0). *)
let ret_index = function X86_64 | Arm64 -> 0

(** Index of the stack pointer. *)
let sp_index = function X86_64 -> 4 (* rsp *) | Arm64 -> 31 (* sp *)

(** Indices of the first three signal-handler argument registers
    (signo, site, sysno): rdi/rsi/rdx on x86, x0/x1/x2 on arm64. *)
let sig_arg_indices = function X86_64 -> [| 7; 6; 2 |] | Arm64 -> [| 0; 1; 2 |]

(** The AUDIT_ARCH_* value seccomp filters see in [seccomp_data.arch]. *)
let audit_arch = function
  | X86_64 -> 0xc000003e (* AUDIT_ARCH_X86_64 *)
  | Arm64 -> 0xc00000b7 (* AUDIT_ARCH_AARCH64 *)
