(** Instruction decoder.

    Because the ISA is variable-length, decoding at a misaligned
    position can succeed and yield a different instruction than the
    one assembled — the root cause of pitfalls P2a/P3a/P3b. *)

type fetch = int -> int
(** [fetch addr] returns the byte at [addr]; exceptions propagate to
    the caller (the CPU converts them into faults). *)

type error = [ `Invalid ]

val decode : fetch -> int -> (Insn.t * int, error) result
(** Decode one instruction starting at the given address; returns the
    instruction and its encoded length. *)

val decode_bytes : Bytes.t -> int -> (Insn.t * int, error) result
(** Convenience over a buffer; out-of-range reads are [`Invalid]. *)

val decode_in : Bytes.t -> base:int -> int -> (Insn.t * int, error) result option
(** [decode_in b ~base pos] decodes at absolute address [pos] using
    only the bytes of [b] (covering [base, base + length b)); [None]
    when the decode attempt reads outside the buffer, in which case
    the caller must re-decode through a boundary-crossing fetch.  The
    primitive behind the I-cache's per-line predecode. *)
