(** Static linear-sweep disassembler.

    This is the disassembly strategy zpoline-style rewriters rely on
    (the zpoline prototype uses a linear disassembler from GNU binutils).
    Linear sweep decodes from the start of a code region and, like real
    tools, has the two documented failure modes on variable-length ISAs
    (Andriesse et al., USENIX Sec'16; Pang et al., S&P'21):

    - {b misidentification} — embedded data, or the tail bytes of a
      longer instruction reached after desynchronisation, may decode as
      a spurious [syscall]/[sysenter] (pitfall P3a);
    - {b overlook} — a genuine [syscall] can be swallowed inside a
      misdecoded longer instruction and never reported (pitfall P2a).

    On invalid bytes the sweep resynchronises by skipping one byte,
    which is what objdump-style tools do. *)

type item = {
  addr : int;  (** absolute address of the first byte *)
  insn : Insn.t option;  (** [None] when the byte did not decode *)
  len : int;  (** bytes consumed (1 for undecodable bytes) *)
}

(** [sweep bytes ~base] decodes the whole buffer, resynchronising on
    invalid encodings. [base] is the virtual address of [bytes.(0)]. *)
let sweep (bytes : Bytes.t) ~base =
  let n = Bytes.length bytes in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match Decode.decode_bytes bytes pos with
      | Ok (insn, len) when pos + len <= n ->
        go (pos + len) ({ addr = base + pos; insn = Some insn; len } :: acc)
      | Ok _ | Error `Invalid ->
        go (pos + 1) ({ addr = base + pos; insn = None; len = 1 } :: acc)
  in
  go 0 []

(** Buffer-relative offsets at which the sweep believes a [syscall] or
    [sysenter] starts.  Exactly the decode walk of {!sweep} — same
    lengths, same byte-by-byte resynchronisation — but run as a tight
    loop that materialises nothing per position: the full [item] list
    costs an allocation per byte on desynchronised data, which made a
    libc-sized sweep the single hottest call in a zpoline launch.
    Offsets are base-independent (the sweep never looks at [base]),
    which is what makes the result cacheable across ASLR slides. *)
let find_syscall_offsets bytes =
  let n = Bytes.length bytes in
  let acc = ref [] in
  let pos = ref 0 in
  while !pos < n do
    match Decode.decode_bytes bytes !pos with
    | Ok (insn, len) when !pos + len <= n ->
      (match insn with
      | Insn.Syscall | Insn.Sysenter -> acc := !pos :: !acc
      | _ -> ());
      pos := !pos + len
    | Ok _ | Error `Invalid -> incr pos
  done;
  List.rev !acc

(** Addresses at which the sweep believes a [syscall] or [sysenter]
    instruction starts.  This is the site list a zpoline-style rewriter
    uses — complete with its false positives and false negatives. *)
let find_syscall_sites bytes ~base = List.map (fun off -> base + off) (find_syscall_offsets bytes)

(* ------------------------------------------------------------------ *)
(* Content-addressed sweep memo                                        *)

(* FNV-1a over the buffer: cheap (~0.1 ms on libc-sized text, vs tens
   of ms for the sweep it keys) and stable across runs. *)
let content_hash bytes =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length bytes - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get bytes i)))) 0x100000001b3L
  done;
  !h

(* One memo table per domain (Domain.DLS): rewriters on different
   domains never share it, so no synchronisation and no cross-domain
   mutable state (DESIGN.md §4f audit). *)
let memo_key : (int * int64, Bytes.t * int list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* library images in one world: a handful; bound keeps a pathological
   caller (many distinct JIT buffers) from growing the table forever *)
let memo_capacity = 64

(** {!find_syscall_sites} with a per-domain content-addressed memo.
    The sweep is a pure function of the bytes, so a hit (verified by
    [Bytes.equal], not just the hash) returns the identical site list;
    rewriters scanning the same library text in run after run — libc
    is ~200 KiB and never changes — pay the sweep once per domain.
    Misses (fresh application text, JIT pages) fall through to the
    plain sweep and are cached in turn. *)
let find_syscall_sites_memo bytes ~base =
  let tbl = Domain.DLS.get memo_key in
  let key = (Bytes.length bytes, content_hash bytes) in
  let offs =
    match Hashtbl.find_opt tbl key with
    | Some (stored, offs) when Bytes.equal stored bytes -> offs
    | _ ->
      let offs = find_syscall_offsets bytes in
      if Hashtbl.length tbl >= memo_capacity then Hashtbl.reset tbl;
      Hashtbl.replace tbl key (Bytes.copy bytes, offs);
      offs
  in
  List.map (fun off -> base + off) offs

(** Ground truth used by tests: all offsets where the literal 2-byte
    [0f 05]/[0f 34] pattern occurs, regardless of instruction
    boundaries. *)
let raw_pattern_sites bytes ~base =
  let n = Bytes.length bytes in
  let out = ref [] in
  for i = 0 to n - 2 do
    let b0 = Char.code (Bytes.get bytes i) and b1 = Char.code (Bytes.get bytes (i + 1)) in
    if b0 = 0x0f && (b1 = 0x05 || b1 = 0x34) then out := (base + i) :: !out
  done;
  List.rev !out

let listing bytes ~base =
  sweep bytes ~base
  |> List.map (fun { addr; insn; len = _ } ->
         match insn with
         | Some i -> Printf.sprintf "%08x: %s" addr (Insn.to_string i)
         | None -> Printf.sprintf "%08x: (bad)" addr)
  |> String.concat "\n"
