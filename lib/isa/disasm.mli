(** Static linear-sweep disassembler — the strategy zpoline-style
    rewriters depend on, complete with its documented failure modes on
    variable-length ISAs: misidentification of embedded data (P3a) and
    overlooking of syscalls swallowed by desynchronisation (P2a).
    Resynchronises byte-by-byte on invalid encodings, like
    objdump-style tools. *)

type item = {
  addr : int;  (** absolute address of the first byte *)
  insn : Insn.t option;  (** [None] when the byte did not decode *)
  len : int;
}

val sweep : Bytes.t -> base:int -> item list

val find_syscall_offsets : Bytes.t -> int list
(** Buffer-relative offsets of the sites {!find_syscall_sites} would
    report: the same decode walk as {!sweep}, run as an allocation-free
    loop.  Base-independent, hence cacheable across ASLR slides. *)

val find_syscall_sites : Bytes.t -> base:int -> int list
(** The site list a zpoline-style rewriter uses — including its false
    positives and false negatives. *)

val find_syscall_sites_memo : Bytes.t -> base:int -> int list
(** {!find_syscall_sites} through a per-domain content-addressed memo
    (hash plus [Bytes.equal] verification, so a hit is byte-exact).
    Identical results; the sweep of an unchanged buffer — library text
    rescanned by every launch — is paid once per domain. *)

val raw_pattern_sites : Bytes.t -> base:int -> int list
(** Ground truth for tests: every occurrence of the literal 2-byte
    [0f 05]/[0f 34] pattern, regardless of instruction boundaries. *)

val listing : Bytes.t -> base:int -> string
(** objdump-style text listing. *)
