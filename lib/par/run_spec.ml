(** The unified Run-spec API: one record per world-run.

    Every fan-out surface (fuzz campaigns, the Table 5/6 sweeps, the
    bench harness) used to describe a run as a pile of optional
    arguments threaded through ad-hoc call chains.  A run-spec makes
    the description first-class: the full world recipe
    ([World.Config.t]), the mechanism name, and the task's index in
    its sweep.  The key is pure data — hashable, serialisable
    ({!key_to_string}), and sufficient to replay the task alone —
    which is exactly what deterministic result merging needs: results
    are merged {e by key order of submission}, never by completion
    order, so a report assembled from [--jobs 64] is byte-identical to
    the sequential one. *)

module Config = K23_kernel.World.Config

type key = {
  k_world : Config.t;  (** the world recipe (carries the seed) *)
  k_mech : string;  (** mechanism under test, or ["*"] for a multi-mechanism task *)
  k_index : int;  (** position in the sweep (iteration, sample or cell number) *)
}

(** Stable, readable identity — (seed, mech, index) first, then the
    rest of the world recipe. *)
let key_to_string k =
  Printf.sprintf "seed=%d mech=%s index=%d [%s]" k.k_world.Config.seed k.k_mech k.k_index
    (Config.to_string k.k_world)

let equal_key (a : key) (b : key) = a = b
let hash_key (k : key) = Hashtbl.hash k

type 'a t = {
  key : key;
  run : unit -> 'a;  (** must build its own world(s) from [key.k_world]: nothing shared *)
}

let v ~world ~mech ~index run = { key = { k_world = world; k_mech = mech; k_index = index }; run }

(** Execute the specs on the pool; results are paired with their keys,
    in submission order (see {!Pool.map} for the determinism, chunking
    and exception contract). *)
let run_all ~jobs ?chunk (specs : 'a t list) : (key * 'a) list =
  Pool.map ~jobs ?chunk (fun spec -> (spec.key, spec.run ())) specs
