(** Bounded domain pool for independent world-runs.

    Every simulated world is fully isolated (its own memory, VFS, net,
    RNG, I-caches) and deterministically seeded, so running many of
    them is embarrassingly parallel — the same property rr's extended
    technical report exploits to farm out bit-identical replays.  The
    pool keeps that determinism visible in the API:

    - tasks are numbered by their position in the input list;
    - results come back {e in input order}, whatever interleaving the
      domains actually executed ([map ~jobs:1] and [map ~jobs:64]
      return the same list for pure tasks);
    - an exception raised by a task is re-raised by {!map} — and when
      several tasks fail, the one with the {e lowest index} wins, so
      failure reporting does not depend on scheduling either.

    [jobs <= 1] (or a single task) short-circuits to a plain
    sequential loop on the calling domain: no domains are spawned and
    the code path is byte-for-byte the pre-pool one.

    The pool is deliberately dumb: a work queue drained by
    [Atomic.fetch_and_add], one domain per job, no futures, no
    work-stealing.  World-runs are coarse (milliseconds to seconds);
    queue-pop cost is noise.  What matters — and what the tests pin
    down — is that nothing observable depends on domain scheduling.

    Tasks must not share mutable state; the simulator's audit
    (DESIGN.md §4f) keeps the tree free of domain-visible globals. *)

(** Natural parallelism of the host ([Domain.recommended_domain_count],
    which accounts for the machine's cores). *)
let default_jobs () = Domain.recommended_domain_count ()

(** [map ~jobs f tasks] applies [f] to every task, running up to
    [jobs] at a time, and returns the results in input order.
    Re-raises the lowest-indexed task exception, after every domain
    has been joined.

    [chunk] (default 1) batches queue claims: each
    [Atomic.fetch_and_add] hands a worker the index range
    [\[i, i+chunk)], cutting contention on the shared counter when
    tasks are small (the per-mechanism compare specs of a fuzz
    campaign).  Chunking never affects results — only which domain
    runs which task.  [jobs] is clamped to the number of {e chunks},
    not tasks, so a short list never spawns domains that would exit
    without claiming work. *)
let map ~jobs ?(chunk = 1) (f : 'a -> 'b) (tasks : 'a list) : 'b list =
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let nchunks = (n + chunk - 1) / chunk in
  let jobs = max 1 (min jobs nchunks) in
  if jobs <= 1 then List.map f tasks
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let base = Atomic.fetch_and_add next chunk in
        if base < n then begin
          let hi = min n (base + chunk) in
          (* one backtrace capture point per chunk: [f] runs inside the
             match so [get_raw_backtrace] reads the raising task's
             trace, not a stale one from a previous iteration *)
          for i = base to hi - 1 do
            let r =
              match f arr.(i) with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r
          done;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (* joins establish happens-before: every slot is visible and filled *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    List.init n (fun i ->
        match results.(i) with Some (Ok v) -> v | Some (Error _) | None -> assert false)
  end

(** [mapi] with the task index, same ordering/exception contract. *)
let mapi ~jobs ?chunk f tasks =
  map ~jobs ?chunk (fun (i, t) -> f i t) (List.mapi (fun i t -> (i, t)) tasks)
