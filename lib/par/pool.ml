(** Bounded domain pool for independent world-runs.

    Every simulated world is fully isolated (its own memory, VFS, net,
    RNG, I-caches) and deterministically seeded, so running many of
    them is embarrassingly parallel — the same property rr's extended
    technical report exploits to farm out bit-identical replays.  The
    pool keeps that determinism visible in the API:

    - tasks are numbered by their position in the input list;
    - results come back {e in input order}, whatever interleaving the
      domains actually executed ([map ~jobs:1] and [map ~jobs:64]
      return the same list for pure tasks);
    - an exception raised by a task is re-raised by {!map} — and when
      several tasks fail, the one with the {e lowest index} wins, so
      failure reporting does not depend on scheduling either.

    [jobs <= 1] (or a single task) short-circuits to a plain
    sequential loop on the calling domain: no domains are spawned and
    the code path is byte-for-byte the pre-pool one.

    The pool is deliberately dumb: a work queue drained by
    [Atomic.fetch_and_add], one domain per job, no futures, no
    work-stealing.  World-runs are coarse (milliseconds to seconds);
    queue-pop cost is noise.  What matters — and what the tests pin
    down — is that nothing observable depends on domain scheduling.

    Tasks must not share mutable state; the simulator's audit
    (DESIGN.md §4f) keeps the tree free of domain-visible globals. *)

(** Natural parallelism of the host ([Domain.recommended_domain_count],
    which accounts for the machine's cores). *)
let default_jobs () = Domain.recommended_domain_count ()

(** [map ~jobs f tasks] applies [f] to every task, running up to
    [jobs] at a time, and returns the results in input order.
    Re-raises the lowest-indexed task exception, after every domain
    has been joined. *)
let map ~jobs (f : 'a -> 'b) (tasks : 'a list) : 'b list =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f tasks
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (* joins establish happens-before: every slot is visible and filled *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    List.init n (fun i ->
        match results.(i) with Some (Ok v) -> v | Some (Error _) | None -> assert false)
  end

(** [mapi] with the task index, same ordering/exception contract. *)
let mapi ~jobs f tasks = map ~jobs (fun (i, t) -> f i t) (List.mapi (fun i t -> (i, t)) tasks)
