(** Per-domain scratch-world cache.

    Building a fully wired world is cheap but not free, and under the
    domain pool every run-spec used to pay it.  This cache keeps {e one}
    world per domain (via [Domain.DLS], so no locking and no
    cross-domain sharing — the seed-determinism audit of DESIGN.md §4f
    stays intact) and recycles it between runs with an in-place reset
    that is runtest-proven observationally identical to a fresh build
    (test_par.ml, "world reuse").

    The cache is callback-parameterised ([~build]/[~reset]) so this
    library needs only the kernel's types: the userland layer passes
    [Sim.create_world_cfg]/[Sim.reset_world_cfg].  A world is reusable
    whenever its {e structural} parameters (ncores, quantum) match the
    requested {!World.Config.t}; every other field is re-derived by the
    reset.  If the reset path itself raises, the slot falls back to a
    fresh build — correctness never depends on the cache hitting. *)

open K23_kernel

type slot = {
  mutable world : Kern.world option;
  mutable in_use : bool;  (** re-entrancy guard: nested calls build fresh *)
  mutable hits : int;
  mutable misses : int;
}

let slot_key : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { world = None; in_use = false; hits = 0; misses = 0 })

(** [(hits, misses)] of the calling domain's slot — bench visibility. *)
let stats () =
  let s = Domain.DLS.get slot_key in
  (s.hits, s.misses)

(** Run [f] with a world observably equal to [build cfg], reusing the
    domain's cached world when possible.  The world must not escape
    [f]: it is reset underneath any lingering reference on the next
    call. *)
let with_world ~(build : World.Config.t -> Kern.world)
    ~(reset : Kern.world -> World.Config.t -> unit) (cfg : World.Config.t) f =
  let s = Domain.DLS.get slot_key in
  if s.in_use then f (build cfg)
  else begin
    s.in_use <- true;
    Fun.protect
      ~finally:(fun () -> s.in_use <- false)
      (fun () ->
        let w =
          match s.world with
          | Some w
            when w.Kern.ncores = cfg.World.Config.ncores
                 && w.Kern.quantum = cfg.World.Config.quantum -> (
            match reset w cfg with
            | () ->
              s.hits <- s.hits + 1;
              w
            | exception _ ->
              s.misses <- s.misses + 1;
              build cfg)
          | _ ->
            s.misses <- s.misses + 1;
            build cfg
        in
        s.world <- Some w;
        f w)
  end
