(** Single-instruction execution engine.

    [step] fetches (through the core's I-cache), decodes and executes
    one instruction, returning either [Stepped] or a [Trapped] outcome
    that the kernel must handle (system calls, host-function escapes,
    faults).  The CPU knows nothing about processes or the kernel. *)

open K23_isa

type trap =
  | Syscall_trap of { site : int; kind : [ `Syscall | `Sysenter | `Svc ] }
      (** [site] is the address of the trapping instruction; rip has
          already been advanced past it (x86 syscall / arm64 svc
          semantics). *)
  | Vcall_trap of int  (** host-function escape; rip advanced *)
  | Fault_trap of Memory.fault  (** rip NOT advanced *)
  | Ud_trap of int  (** undecodable bytes / ud2 at [addr]; rip not advanced *)
  | Int3_trap of int
  | Hlt_trap of int

type outcome = Stepped of int | Trapped of trap * int
(** The [int] is the cycle cost charged for this step. *)

(** Stable short name per trap class; the kernel's ktrace hooks key
    machine-level events and counters on it ("trap.fault", ...). *)
let trap_name = function
  | Syscall_trap _ -> "syscall"
  | Vcall_trap _ -> "vcall"
  | Fault_trap _ -> "fault"
  | Ud_trap _ -> "ud"
  | Int3_trap _ -> "int3"
  | Hlt_trap _ -> "hlt"

let cond_holds (regs : Regs.t) = function
  | Insn.Z -> regs.zf
  | NZ -> not regs.zf
  | LT -> regs.sf
  | GE -> not regs.sf
  | LE -> regs.sf || regs.zf
  | GT -> not (regs.sf || regs.zf)

let set_flags (regs : Regs.t) result =
  regs.zf <- result = 0;
  regs.sf <- result < 0

(* Flags encoded into an int for the r11 <- rflags syscall clobber. *)
let flags_to_int (regs : Regs.t) = (if regs.zf then 0x40 else 0) lor if regs.sf then 0x80 else 0

let step ?(cost = Cost.default) (regs : Regs.t) (mem : Memory.t) (icache : Icache.t) : outcome =
  let pc = regs.rip in
  match Icache.fetch_decode icache mem pc with
  | exception Memory.Fault f -> Trapped (Fault_trap f, 1)
  | Error `Invalid -> Trapped (Ud_trap pc, 1)
  | Ok (insn, len) -> (
    let c = Cost.insn_cost cost insn in
    let next = pc + len in
    let ok () =
      regs.rip <- next;
      Stepped c
    in
    try
      match insn with
      | Nop ->
        (* fast-forward over nop runs: the page-0 trampoline begins
           with a ~512-byte nop sled, and stepping it one instruction
           at a time would only burn host time — nops are free in the
           cost model and have no architectural effect *)
        let rip = ref next in
        (try
           while Icache.fetch_u8 icache mem !rip = 0x90 do
             incr rip
           done
         with Memory.Fault _ -> ());
        regs.rip <- !rip;
        Stepped c
      | Ret ->
        let sp = Regs.get regs RSP in
        let ra = Memory.read_u64 mem ~pkru:regs.pkru sp in
        Regs.set regs RSP (sp + 8);
        regs.rip <- ra;
        Stepped c
      | Int3 -> Trapped (Int3_trap pc, c)
      | Hlt -> Trapped (Hlt_trap pc, c)
      | Ud2 -> Trapped (Ud_trap pc, c)
      | Syscall ->
        regs.rip <- next;
        (* x86-64 syscall clobbers: rcx <- next rip, r11 <- rflags.
           K23's trampoline exploits exactly this (Section 6.2.1). *)
        Regs.set regs RCX next;
        Regs.set regs R11 (flags_to_int regs);
        Trapped (Syscall_trap { site = pc; kind = `Syscall }, c)
      | Sysenter ->
        regs.rip <- next;
        Trapped (Syscall_trap { site = pc; kind = `Sysenter }, c)
      | Cpuid ->
        Icache.flush icache;
        Regs.set regs RAX 0;
        Regs.set regs RBX 0;
        Regs.set regs RCX 0;
        Regs.set regs RDX 0;
        ok ()
      | Mfence ->
        Icache.flush icache;
        ok ()
      | Wrpkru ->
        regs.pkru <- Regs.get regs RAX land 0xffff_ffff;
        ok ()
      | Rdpkru ->
        Regs.set regs RAX regs.pkru;
        ok ()
      | Vcall n ->
        regs.rip <- next;
        Trapped (Vcall_trap n, c)
      | Push r ->
        let sp = Regs.get regs RSP - 8 in
        Memory.write_u64 mem ~pkru:regs.pkru sp (Regs.get regs r);
        Icache.invalidate_range icache ~addr:sp ~len:8;
        Regs.set regs RSP sp;
        ok ()
      | Pop r ->
        let sp = Regs.get regs RSP in
        Regs.set regs r (Memory.read_u64 mem ~pkru:regs.pkru sp);
        Regs.set regs RSP (sp + 8);
        ok ()
      | Mov_ri (r, v) ->
        Regs.set regs r v;
        ok ()
      | Mov_ri32 (r, v) ->
        Regs.set regs r (v land 0xffff_ffff);
        ok ()
      | Mov_rr (d, s) ->
        Regs.set regs d (Regs.get regs s);
        ok ()
      | Add_rr (d, s) ->
        let v = Regs.get regs d + Regs.get regs s in
        Regs.set regs d v;
        set_flags regs v;
        ok ()
      | Sub_rr (d, s) ->
        let v = Regs.get regs d - Regs.get regs s in
        Regs.set regs d v;
        set_flags regs v;
        ok ()
      | Xor_rr (d, s) ->
        let v = Regs.get regs d lxor Regs.get regs s in
        Regs.set regs d v;
        set_flags regs v;
        ok ()
      | Test_rr (a, b) ->
        set_flags regs (Regs.get regs a land Regs.get regs b);
        ok ()
      | Cmp_rr (a, b) ->
        set_flags regs (Regs.get regs a - Regs.get regs b);
        ok ()
      | Add_ri (r, v) ->
        let v' = Regs.get regs r + v in
        Regs.set regs r v';
        set_flags regs v';
        ok ()
      | Sub_ri (r, v) ->
        let v' = Regs.get regs r - v in
        Regs.set regs r v';
        set_flags regs v';
        ok ()
      | Cmp_ri (r, v) ->
        set_flags regs (Regs.get regs r - v);
        ok ()
      | Load (d, b, o) ->
        Regs.set regs d (Memory.read_u64 mem ~pkru:regs.pkru (Regs.get regs b + o));
        ok ()
      | Store (b, o, s) ->
        let addr = Regs.get regs b + o in
        Memory.write_u64 mem ~pkru:regs.pkru addr (Regs.get regs s);
        Icache.invalidate_range icache ~addr ~len:8;
        ok ()
      | Load8 (d, b, o) ->
        Regs.set regs d (Memory.read_u8 mem ~pkru:regs.pkru (Regs.get regs b + o));
        ok ()
      | Store8 (b, o, s) ->
        let addr = Regs.get regs b + o in
        Memory.write_u8 mem ~pkru:regs.pkru addr (Regs.get regs s land 0xff);
        Icache.invalidate_range icache ~addr ~len:1;
        ok ()
      | Lea (d, b, o) ->
        Regs.set regs d (Regs.get regs b + o);
        ok ()
      | Jmp_rel d ->
        regs.rip <- next + d;
        Stepped c
      | Call_rel d ->
        let sp = Regs.get regs RSP - 8 in
        Memory.write_u64 mem ~pkru:regs.pkru sp next;
        Regs.set regs RSP sp;
        regs.rip <- next + d;
        Stepped c
      | Jcc (cnd, d) ->
        regs.rip <- (if cond_holds regs cnd then next + d else next);
        Stepped c
      | Jmp_reg r ->
        regs.rip <- Regs.get regs r;
        Stepped c
      | Call_reg r ->
        let sp = Regs.get regs RSP - 8 in
        Memory.write_u64 mem ~pkru:regs.pkru sp next;
        Regs.set regs RSP sp;
        regs.rip <- Regs.get regs r;
        Stepped c
    with Memory.Fault f -> Trapped (Fault_trap f, c))

(** One AArch64 instruction: fixed-width aligned word fetch through
    the I-cache, then direct execution.  No predecode memo — decoding
    a word is a single mask-compare chain, and skipping the memo keeps
    ARM lines byte-only (their lifetime semantics are identical).

    Differences from the x86 step that matter to interposition:
    [svc] clobbers {e nothing} (no rcx/r11 analogue — an ARM
    trampoline can forward a syscall without any register surgery),
    and calls link in x30 rather than pushing to the stack. *)
let step_arm ?(cost = Cost.default) (regs : Regs.t) (mem : Memory.t) (icache : Icache.t) :
    outcome =
  let pc = regs.rip in
  if pc land 3 <> 0 then Trapped (Ud_trap pc, 1)
  else
    match Icache.fetch_u32 icache mem pc with
    | exception Memory.Fault f -> Trapped (Fault_trap f, 1)
    | word -> (
      match K23_isa_arm.Arm.decode word with
      | None -> Trapped (Ud_trap pc, 1)
      | Some insn -> (
        let open K23_isa_arm.Arm in
        let c = match insn with Nop -> cost.Cost.nop | _ -> cost.Cost.insn in
        let next = pc + 4 in
        let ok () =
          regs.rip <- next;
          Stepped c
        in
        let g i = Regs.geti regs i in
        let s i v = Regs.seti regs i v in
        try
          match insn with
          | Nop -> ok ()
          | Svc _ ->
            regs.rip <- next;
            Trapped (Syscall_trap { site = pc; kind = `Svc }, c)
          | Vcall n ->
            regs.rip <- next;
            Trapped (Vcall_trap n, c)
          | Brk _ -> Trapped (Int3_trap pc, c)
          | Bl off ->
            s 30 next;
            regs.rip <- pc + (4 * off);
            Stepped c
          | B off ->
            regs.rip <- pc + (4 * off);
            Stepped c
          | B_cond (cnd, off) ->
            regs.rip <- (if cond_holds regs cnd then pc + (4 * off) else next);
            Stepped c
          | Br rn ->
            regs.rip <- g rn;
            Stepped c
          | Blr rn ->
            let t = g rn in
            s 30 next;
            regs.rip <- t;
            Stepped c
          | Ret ->
            regs.rip <- g 30;
            Stepped c
          | Movz (rd, imm) ->
            s rd imm;
            ok ()
          | Movk (rd, imm, hw) ->
            let sh = 16 * hw in
            s rd ((g rd land lnot (0xffff lsl sh)) lor (imm lsl sh));
            ok ()
          | Movn (rd, imm, hw) ->
            s rd (lnot (imm lsl (16 * hw)));
            ok ()
          | Mov_rr (rd, rm) ->
            s rd (g rm);
            ok ()
          | Add_imm (rd, rn, imm) ->
            s rd (g rn + imm);
            ok ()
          | Subs_imm (rd, rn, imm) ->
            let v = g rn - imm in
            if rd <> 31 then s rd v;
            set_flags regs v;
            ok ()
          | Add_rr (rd, rn, rm) ->
            s rd (g rn + g rm);
            ok ()
          | Sub_rr (rd, rn, rm) ->
            s rd (g rn - g rm);
            ok ()
          | Subs_rr (rd, rn, rm) ->
            let v = g rn - g rm in
            if rd <> 31 then s rd v;
            set_flags regs v;
            ok ()
          | Ldr_lit (rd, off) ->
            s rd (Memory.read_u64 mem ~pkru:regs.pkru (pc + (4 * off)));
            ok ()
          | Ldr (rt, rn, imm) ->
            s rt (Memory.read_u64 mem ~pkru:regs.pkru (g rn + imm));
            ok ()
          | Str (rt, rn, imm) ->
            let addr = g rn + imm in
            Memory.write_u64 mem ~pkru:regs.pkru addr (g rt);
            Icache.invalidate_range icache ~addr ~len:8;
            ok ()
          | Ldrb (rt, rn, imm) ->
            s rt (Memory.read_u8 mem ~pkru:regs.pkru (g rn + imm));
            ok ()
          | Strb (rt, rn, imm) ->
            let addr = g rn + imm in
            Memory.write_u8 mem ~pkru:regs.pkru addr (g rt land 0xff);
            Icache.invalidate_range icache ~addr ~len:1;
            ok ()
        with Memory.Fault f -> Trapped (Fault_trap f, c)))
