(** Sparse paged virtual memory with RWX permissions and protection
    keys (Intel MPK semantics).

    Pages are 4 KiB and carry a protection key; data accesses are
    checked against the accessing thread's PKRU register.  Instruction
    fetch is {e never} blocked by PKU — the property that makes
    PKU-based eXecute-Only Memory possible (and leaves pitfall P4a
    open).  [*_raw] accessors bypass checks (kernel view); checked
    accessors raise {!Fault}. *)

val page_size : int
val page_shift : int

type perm = { r : bool; w : bool; x : bool }

val perm_none : perm
val perm_r : perm
val perm_rw : perm
val perm_rx : perm
val perm_rwx : perm
val perm_x : perm

val perm_to_string : perm -> string
(** "rwx"-style rendering, as in /proc/PID/maps. *)

type access = [ `Read | `Write | `Exec ]

type fault = { fault_addr : int; access : access }

exception Fault of fault

type t = {
  pages : (int, page) Hashtbl.t;
  mutable committed_bytes : int;  (** physical memory actually allocated *)
  mutable reserved_bytes : int;
      (** virtual reservations incl. MAP_NORESERVE mappings — the basis
          of the P4b memory measurement *)
  mutable tlb_r_idx : int;
      (** one-entry data-TLBs (read/write/raw): last (page_index, page)
          binding per access kind, flushed on map/unmap.  Permissions
          are never cached — each access re-checks the page record, so
          mprotect/pkey_mprotect/wrpkru take effect immediately. *)
  mutable tlb_r_pg : page;
  mutable tlb_w_idx : int;
  mutable tlb_w_pg : page;
  mutable tlb_raw_idx : int;
  mutable tlb_raw_pg : page;
}

and page = { bytes : Bytes.t; mutable perm : perm; mutable pkey : int }

val create : unit -> t

val page_index : int -> int
val align_down : int -> int
val align_up : int -> int

val is_mapped : t -> int -> bool
val find_page : t -> int -> page option

val map : ?pkey:int -> t -> addr:int -> len:int -> perm:perm -> unit
(** Map (and commit) pages covering [addr, addr+len); [addr] must be
    page-aligned.  MAP_FIXED semantics on overlap. *)

val reserve : t -> len:int -> unit
(** Virtual-only reservation (MAP_NORESERVE): accounted, not
    committed. *)

val unmap : t -> addr:int -> len:int -> unit

val set_perm : t -> addr:int -> len:int -> perm:perm -> unit
(** mprotect. *)

val set_pkey : t -> addr:int -> len:int -> pkey:int -> unit
(** pkey_mprotect. *)

val get_perm : t -> int -> perm option
val get_pkey : t -> int -> int option

(** {2 Raw (kernel-view) access} *)

val read_u8_raw : t -> int -> int
val write_u8_raw : t -> int -> int -> unit
val read_bytes_raw : t -> int -> int -> Bytes.t
val write_bytes_raw : t -> int -> Bytes.t -> unit
val read_u64_raw : t -> int -> int
val write_u64_raw : t -> int -> int -> unit

val read_u32_raw : t -> int -> int

val write_u32_raw : t -> int -> int -> unit
(** 4-aligned words live in one page buffer: the store is a single
    access, modelling AArch64's architecturally atomic aligned 32-bit
    code patch (no torn-write P5). *)

(** {2 PKRU-checked (user-view) access} *)

val pkru_access_disabled : int -> int -> bool
val pkru_write_disabled : int -> int -> bool
val check_read : t -> pkru:int -> int -> unit
val check_write : t -> pkru:int -> int -> unit

val check_exec : t -> int -> unit
(** Fetch check: execute permission only — PKU does not apply. *)

val read_u8 : t -> pkru:int -> int -> int
val write_u8 : t -> pkru:int -> int -> int -> unit
val read_u64 : t -> pkru:int -> int -> int
val write_u64 : t -> pkru:int -> int -> int -> unit
val fetch_u8 : t -> int -> int

val clone : t -> t
(** Deep copy, for fork(). *)

val read_cstr : ?max:int -> t -> int -> string
val write_cstr : t -> int -> string -> unit
