(** Register file of one simulated thread: a flat GPR array wide
    enough for either backend (x86 0..15; arm64 x0..x30 + sp at 31),
    rip, ZF/SF flags and the PKRU protection-key rights register. *)

val width : int
(** Size of the flat register file (32). *)

type t = {
  gpr : int array;
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable pkru : int;
}

val create : unit -> t
val get : t -> K23_isa.Reg.t -> int
val set : t -> K23_isa.Reg.t -> int -> unit

val geti : t -> int -> int
(** Raw-index read — ISA-generic ABI seams (syscall args, signal
    frames) that dispatch on {!K23_isa.Isa.t}. *)

val seti : t -> int -> int -> unit

val copy : t -> t
(** Snapshot (signal frames, fork). *)

val restore : t -> from:t -> unit
(** Restore in place (sigreturn, clone child setup). *)

val pp : Format.formatter -> t -> unit
val pp_arm : Format.formatter -> t -> unit
