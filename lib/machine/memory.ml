(** Sparse paged virtual memory with RWX permissions and protection keys.

    Pages are 4 KiB.  Each page carries a protection key (pkey); data
    accesses are additionally checked against the accessing thread's
    PKRU register, mirroring Intel MPK semantics:

    - bit [2k] of PKRU (Access Disable) forbids all data access to
      pages tagged with key [k];
    - bit [2k+1] (Write Disable) forbids writes;
    - {b instruction fetch is never blocked by PKRU} — which is exactly
      why zpoline/lazypoline/K23 can build eXecute-Only Memory (XOM)
      out of PKU, and why NULL {e execution} is not stopped by it
      (pitfall P4a).

    The [*_raw] accessors bypass permission checks; they model kernel
    accesses (and tooling).  Checked accessors raise {!Fault}. *)

let page_size = 4096
let page_shift = 12

type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }
let perm_x = { r = false; w = false; x = true }

let perm_to_string p =
  Printf.sprintf "%c%c%c" (if p.r then 'r' else '-') (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

type access = [ `Read | `Write | `Exec ]

type fault = { fault_addr : int; access : access }

exception Fault of fault

type page = { bytes : Bytes.t; mutable perm : perm; mutable pkey : int }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable committed_bytes : int;
      (** physical memory actually allocated (touched pages) *)
  mutable reserved_bytes : int;
      (** virtual reservations including MAP_NORESERVE-style mappings
          that never allocate pages (zpoline's full-address-space
          bitmap); the basis of the P4b memory-overhead measurement *)
  (* One-entry data-TLBs: the last (page_index, page) pair seen per
     access kind, so the hot word-access paths skip the hashtable.
     They cache only the index->page *binding* — permissions are
     re-read from the page record on every access (set_perm/set_pkey
     mutate in place), so only map/unmap, which replace or drop page
     records, must flush them. *)
  mutable tlb_r_idx : int;
  mutable tlb_r_pg : page;
  mutable tlb_w_idx : int;
  mutable tlb_w_pg : page;
  mutable tlb_raw_idx : int;
  mutable tlb_raw_pg : page;
}

(* Placeholder behind an empty TLB slot (idx = -1, never a real page
   index since addresses shift right logically). *)
let no_page = { bytes = Bytes.empty; perm = perm_none; pkey = 0 }

let create () =
  {
    pages = Hashtbl.create 1024;
    committed_bytes = 0;
    reserved_bytes = 0;
    tlb_r_idx = -1;
    tlb_r_pg = no_page;
    tlb_w_idx = -1;
    tlb_w_pg = no_page;
    tlb_raw_idx = -1;
    tlb_raw_pg = no_page;
  }

let tlb_flush t =
  t.tlb_r_idx <- -1;
  t.tlb_r_pg <- no_page;
  t.tlb_w_idx <- -1;
  t.tlb_w_pg <- no_page;
  t.tlb_raw_idx <- -1;
  t.tlb_raw_pg <- no_page

let page_index addr = addr lsr page_shift

let align_down addr = addr land lnot (page_size - 1)

let align_up addr = (addr + page_size - 1) land lnot (page_size - 1)

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let find_page t addr = Hashtbl.find_opt t.pages (page_index addr)

(** [map t ~addr ~len ~perm] maps (and commits) pages covering
    [addr, addr+len).  [addr] must be page-aligned.  Already-mapped
    pages in the range are remapped fresh (MAP_FIXED semantics). *)
let map ?(pkey = 0) t ~addr ~len ~perm =
  if addr land (page_size - 1) <> 0 then invalid_arg "Memory.map: unaligned addr";
  if len <= 0 then invalid_arg "Memory.map: bad length";
  let npages = (align_up len) lsr page_shift in
  for i = 0 to npages - 1 do
    let idx = page_index addr + i in
    if not (Hashtbl.mem t.pages idx) then t.committed_bytes <- t.committed_bytes + page_size;
    Hashtbl.replace t.pages idx { bytes = Bytes.make page_size '\000'; perm; pkey }
  done;
  t.reserved_bytes <- t.reserved_bytes + (npages * page_size);
  tlb_flush t

(** Record a virtual-only reservation (MAP_NORESERVE): no pages are
    committed, but the reservation is accounted, so the P4b bench can
    compare zpoline's 2^48-bit bitmap against K23's hash set. *)
let reserve t ~len = t.reserved_bytes <- t.reserved_bytes + len

(* Only pages actually present are uncommitted/unreserved: unmapping
   an unmapped (or partially mapped) range is a no-op for the missing
   pages, as with munmap, rather than driving the counters negative. *)
let unmap t ~addr ~len =
  let npages = (align_up len) lsr page_shift in
  for i = 0 to npages - 1 do
    let idx = page_index addr + i in
    if Hashtbl.mem t.pages idx then begin
      Hashtbl.remove t.pages idx;
      t.committed_bytes <- t.committed_bytes - page_size;
      t.reserved_bytes <- t.reserved_bytes - page_size
    end
  done;
  tlb_flush t

(** mprotect: change permissions of every mapped page in range. *)
let set_perm t ~addr ~len ~perm =
  let npages = (align_up (len + (addr land (page_size - 1)))) lsr page_shift in
  for i = 0 to max 0 (npages - 1) do
    match Hashtbl.find_opt t.pages (page_index addr + i) with
    | Some p -> p.perm <- perm
    | None -> ()
  done

let set_pkey t ~addr ~len ~pkey =
  let npages = (align_up (len + (addr land (page_size - 1)))) lsr page_shift in
  for i = 0 to max 0 (npages - 1) do
    match Hashtbl.find_opt t.pages (page_index addr + i) with
    | Some p -> p.pkey <- pkey
    | None -> ()
  done

let get_perm t addr = Option.map (fun p -> p.perm) (find_page t addr)
let get_pkey t addr = Option.map (fun p -> p.pkey) (find_page t addr)

(* ------------------------------------------------------------------ *)
(* Raw (kernel-view) access                                            *)

let[@inline] lookup_raw t addr (access : access) =
  let idx = addr lsr page_shift in
  if t.tlb_raw_idx = idx then t.tlb_raw_pg
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      t.tlb_raw_idx <- idx;
      t.tlb_raw_pg <- p;
      p
    | None -> raise (Fault { fault_addr = addr; access })

let read_u8_raw t addr =
  let p = lookup_raw t addr `Read in
  Char.code (Bytes.get p.bytes (addr land (page_size - 1)))

let write_u8_raw t addr v =
  let p = lookup_raw t addr `Write in
  Bytes.set p.bytes (addr land (page_size - 1)) (Char.chr (v land 0xff))

let read_bytes_raw t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (read_u8_raw t (addr + i)))
  done;
  out

let write_bytes_raw t addr b =
  Bytes.iteri (fun i c -> write_u8_raw t (addr + i) (Char.code c)) b

(* Word accesses that stay within one page read/write the page buffer
   directly; straddles fall back byte-by-byte (same per-byte fault
   addresses as before).  The int<->int64 conversions reproduce the
   byte-loop exactly on 63-bit ints: OCaml's [lsl]/[lsr] drop bit 63,
   so byte 7's top bit is stored as 0 and ignored on load. *)
let word_mask = 0x7fff_ffff_ffff_ffffL

let read_u64_raw t addr =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = lookup_raw t addr `Read in
    Int64.to_int (Bytes.get_int64_le p.bytes off)
  else
    let rec go i acc =
      if i = 8 then acc else go (i + 1) (acc lor (read_u8_raw t (addr + i) lsl (8 * i)))
    in
    go 0 0

let write_u64_raw t addr v =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = lookup_raw t addr `Write in
    Bytes.set_int64_le p.bytes off (Int64.logand (Int64.of_int v) word_mask)
  else
    for i = 0 to 7 do
      write_u8_raw t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

(* 4-aligned words never cross a page: one buffer access, modelling an
   architecturally atomic aligned 32-bit load/store (AArch64 patching). *)
let read_u32_raw t addr =
  if addr land 3 <> 0 then
    let rec go i acc =
      if i = 4 then acc else go (i + 1) (acc lor (read_u8_raw t (addr + i) lsl (8 * i)))
    in
    go 0 0
  else
    let p = lookup_raw t addr `Read in
    Int32.to_int (Bytes.get_int32_le p.bytes (addr land (page_size - 1))) land 0xffff_ffff

let write_u32_raw t addr v =
  if addr land 3 <> 0 then
    for i = 0 to 3 do
      write_u8_raw t (addr + i) ((v lsr (8 * i)) land 0xff)
    done
  else
    let p = lookup_raw t addr `Write in
    Bytes.set_int32_le p.bytes (addr land (page_size - 1)) (Int32.of_int v)

(* ------------------------------------------------------------------ *)
(* PKRU-checked (user-view) access                                     *)

let pkru_access_disabled pkru pkey = pkru land (1 lsl (2 * pkey)) <> 0
let pkru_write_disabled pkru pkey = pkru land (1 lsl ((2 * pkey) + 1)) <> 0

(* The TLB caches only the index->page binding; the permission check
   itself runs on every access against the page's current perm/pkey
   and the caller's PKRU (mprotect and pkey_mprotect mutate the page
   record in place, wrpkru changes the register — neither may be
   cached away). *)
let[@inline] lookup_r t ~pkru addr =
  let idx = addr lsr page_shift in
  let p =
    if t.tlb_r_idx = idx then t.tlb_r_pg
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
        t.tlb_r_idx <- idx;
        t.tlb_r_pg <- p;
        p
      | None -> raise (Fault { fault_addr = addr; access = `Read })
  in
  if (not p.perm.r) || pkru_access_disabled pkru p.pkey then
    raise (Fault { fault_addr = addr; access = `Read });
  p

let[@inline] lookup_w t ~pkru addr =
  let idx = addr lsr page_shift in
  let p =
    if t.tlb_w_idx = idx then t.tlb_w_pg
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
        t.tlb_w_idx <- idx;
        t.tlb_w_pg <- p;
        p
      | None -> raise (Fault { fault_addr = addr; access = `Write })
  in
  if (not p.perm.w) || pkru_access_disabled pkru p.pkey || pkru_write_disabled pkru p.pkey then
    raise (Fault { fault_addr = addr; access = `Write });
  p

let check_read t ~pkru addr = ignore (lookup_r t ~pkru addr : page)

let check_write t ~pkru addr = ignore (lookup_w t ~pkru addr : page)

(** Instruction fetch check: exec permission only — PKU does not apply
    to fetches (the XOM / P4a story). *)
let check_exec t addr =
  match find_page t addr with
  | None -> raise (Fault { fault_addr = addr; access = `Exec })
  | Some p -> if not p.perm.x then raise (Fault { fault_addr = addr; access = `Exec })

let read_u8 t ~pkru addr =
  let p = lookup_r t ~pkru addr in
  Char.code (Bytes.get p.bytes (addr land (page_size - 1)))

let write_u8 t ~pkru addr v =
  let p = lookup_w t ~pkru addr in
  Bytes.set p.bytes (addr land (page_size - 1)) (Char.chr (v land 0xff))

(* In-page words: one page lookup (usually a TLB hit) and one
   permission check cover all 8 bytes.  Page-straddling words keep the
   per-byte loop so the faulting byte's address is preserved. *)
let read_u64 t ~pkru addr =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = lookup_r t ~pkru addr in
    Int64.to_int (Bytes.get_int64_le p.bytes off)
  else begin
    for i = 0 to 7 do
      check_read t ~pkru (addr + i)
    done;
    read_u64_raw t addr
  end

let write_u64 t ~pkru addr v =
  let off = addr land (page_size - 1) in
  if off <= page_size - 8 then
    let p = lookup_w t ~pkru addr in
    Bytes.set_int64_le p.bytes off (Int64.logand (Int64.of_int v) word_mask)
  else begin
    for i = 0 to 7 do
      check_write t ~pkru (addr + i)
    done;
    write_u64_raw t addr v
  end

let fetch_u8 t addr =
  check_exec t addr;
  read_u8_raw t addr

(* ------------------------------------------------------------------ *)

(** Deep copy, for fork(). *)
let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun idx p -> Hashtbl.replace pages idx { p with bytes = Bytes.copy p.bytes })
    t.pages;
  {
    pages;
    committed_bytes = t.committed_bytes;
    reserved_bytes = t.reserved_bytes;
    tlb_r_idx = -1;
    tlb_r_pg = no_page;
    tlb_w_idx = -1;
    tlb_w_pg = no_page;
    tlb_raw_idx = -1;
    tlb_raw_pg = no_page;
  }

(** C-string helpers (argv/envp live in simulated memory so that a
    ptrace-based tracer can inspect and rewrite them). *)
let read_cstr ?(max = 4096) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8_raw t (addr + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

let write_cstr t addr s =
  String.iteri (fun i c -> write_u8_raw t (addr + i) (Char.code c)) s;
  write_u8_raw t (addr + String.length s) 0
