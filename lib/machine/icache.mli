(** Per-core instruction cache (64-byte lines) with a predecode layer.

    Lines are filled on first fetch (checking execute permission) and
    dropped on self-snoop ({!invalidate_range}), serialising
    instructions ({!flush}), or a kernel cache-coherent code write
    ([Kern.code_write_barrier]).  Coherence is what exposes
    lazypoline's torn two-byte rewrite to other cores (pitfall P5).

    {!fetch_decode} additionally memoises decode results per
    (line, entry-offset); the memo shares the line's lifetime, so
    stale-cache (P3b) and torn-write (P5) semantics are bit-for-bit
    those of byte-by-byte decoding. *)

val line_size : int

type t

val create : ?predecode:bool -> unit -> t
(** [predecode] (default on) enables the per-line decode memo for this
    cache instance.  It is per-instance state on purpose: worlds run
    concurrently on separate domains ([K23_par.Pool]) and must share
    no mutable toggles. *)

val fetch_u8 : t -> Memory.t -> int -> int
(** Fetch one instruction byte through the cache; fills the containing
    line on miss.
    @raise Memory.Fault when the line's page is not executable. *)

val fetch_u32 : t -> Memory.t -> int -> int
(** Fetch one 4-aligned little-endian instruction word through the
    cache (arm64 fixed-width fetch).  Aligned words never straddle a
    line, so staleness is per-line exactly as for {!fetch_u8}.
    @raise Memory.Fault as {!fetch_u8}. *)

val fetch_decode : t -> Memory.t -> int -> (K23_isa.Insn.t * int, K23_isa.Decode.error) result
(** Fetch and decode the instruction starting at the address, serving
    the line's predecode memo when possible.  Instructions straddling
    a line boundary are decoded byte-by-byte and never memoised (their
    bytes live in two lines with independent lifetimes).
    @raise Memory.Fault as {!fetch_u8}. *)

val set_predecode : t -> bool -> unit
(** Enable/disable this instance's predecode memo.  Off,
    {!fetch_decode} decodes byte-by-byte through {!fetch_u8} — the
    reference path the coherence tests compare against.  Set it at
    creation time via [World.Config.predecode] — worlds configure
    every core's cache consistently from there. *)

val predecode_enabled : t -> bool

val invalidate_range : t -> addr:int -> len:int -> unit
val flush : t -> unit

val holds : t -> int -> bool
(** Whether the cache currently holds the line containing the
    address (tests). *)
