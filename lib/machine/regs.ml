(** CPU register file of one simulated thread.

    The flat array is sized for the widest backend (arm64: x0..x30
    plus sp at index 31); x86 worlds simply never touch indices 16+.
    Both ISAs keep their syscall return register at index 0 (rax / x0),
    which the kernel's [complete_syscall] relies on. *)

let width = 32

type t = {
  gpr : int array;
      (** flat register file: x86 rax..r15 at 0..15 per {!K23_isa.Reg};
          arm64 x0..x30 at 0..30, sp at 31 *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable pkru : int;  (** protection-key rights register (2 bits/key) *)
}

let create () = { gpr = Array.make width 0; rip = 0; zf = false; sf = false; pkru = 0 }

let get t r = t.gpr.(K23_isa.Reg.index r)
let set t r v = t.gpr.(K23_isa.Reg.index r) <- v

(** Raw-index accessors for ISA-generic kernel code (ABI seams). *)
let geti t i = t.gpr.(i)
let seti t i v = t.gpr.(i) <- v

let copy t = { t with gpr = Array.copy t.gpr }

(** Restore [t] from [src] in place (sigreturn, ptrace SETREGS). *)
let restore t ~from =
  Array.blit from.gpr 0 t.gpr 0 width;
  t.rip <- from.rip;
  t.zf <- from.zf;
  t.sf <- from.sf;
  t.pkru <- from.pkru

let pp fmt t =
  let open K23_isa in
  List.iter
    (fun r -> Format.fprintf fmt "%s=%#x " (Reg.to_string r) (get t r))
    Reg.all;
  Format.fprintf fmt "rip=%#x zf=%b sf=%b pkru=%#x" t.rip t.zf t.sf t.pkru

let pp_arm fmt t =
  for i = 0 to 30 do
    Format.fprintf fmt "x%d=%#x " i t.gpr.(i)
  done;
  Format.fprintf fmt "sp=%#x rip=%#x zf=%b sf=%b" t.gpr.(31) t.rip t.zf t.sf
