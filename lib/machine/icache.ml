(** Per-core instruction cache model, with a predecode layer.

    Each core caches 64-byte lines on first fetch.  Lines are dropped
    when

    - the core itself writes to the line (self-snoop),
    - the core executes a serialising instruction ([Cpuid]/[Mfence]),
    - or the kernel performs a cache-coherent code write on behalf of
      any core ({!Kern.code_write_barrier}) — x86 caches are coherent,
      so cross-core stores become fetchable immediately.

    Coherence is what makes pitfall P5 bite: lazypoline's two-byte
    rewrite is two separate coherent stores, so between them every
    other core can fetch (and execute) the torn [ff 05] byte pair.
    Real hardware adds a second failure mode — already-decoded stale
    micro-ops absent explicit serialisation — which is UB and
    timing-dependent; we model the deterministic torn-write half and
    document the serialisation half (see DESIGN.md).

    {2 Predecode}

    On top of the byte cache, each line lazily memoises decode results
    per entry offset ({!fetch_decode}), so the simulator's
    fetch-decode-execute loop decodes each (line, offset) pair once
    instead of re-decoding byte-by-byte every step.  The memo is part
    of the line: it is dropped on exactly the events that drop the
    line's bytes, so stale-I-cache behaviour (P3b) and torn-write
    behaviour (P5) are bit-for-bit those of the byte model.  Entries
    are keyed by offset, so jumping into the middle of an instruction
    still decodes the *different* overlapping instruction at that
    offset (the P2a/P3a root cause).  An instruction whose decode
    reads past the end of its line is never memoised: its bytes span
    two lines with independent lifetimes, and it takes the
    byte-by-byte path instead (see DESIGN.md §"Simulator performance
    architecture"). *)

open K23_isa

let line_size = 64

type line = {
  bytes : Bytes.t;
  decoded : (Insn.t * int, Decode.error) result option array;
      (** memoised decode per entry offset; only for instructions whose
          decode stayed within this line *)
}

type t = {
  lines : (int, line) Hashtbl.t;
  mutable last_base : int;
      (** one-entry line lookaside: base of [last_line], or [min_int].
          Straight-line execution touches the hashtable only on line
          crossings. *)
  mutable last_line : line;
  mutable predecode : bool;
      (** per-instance: worlds owned by different domains must not
          share any mutable toggle (this used to be a module-level
          [ref], which would race across a domain pool) *)
}

(* Shared placeholder behind an empty [last_base]; never read because
   every access guards on [last_base]. *)
let no_line = { bytes = Bytes.empty; decoded = [||] }

let set_predecode t on = t.predecode <- on

let predecode_enabled t = t.predecode

let create ?(predecode = true) () =
  { lines = Hashtbl.create 256; last_base = min_int; last_line = no_line; predecode }

let line_base addr = addr land lnot (line_size - 1)

(* Line holding [addr], filling from memory on miss (checking execute
   permission on the fill, at the faulting address). *)
let get_line t (mem : Memory.t) addr =
  let base = line_base addr in
  if t.last_base = base then t.last_line
  else
    match Hashtbl.find_opt t.lines base with
    | Some line ->
      t.last_base <- base;
      t.last_line <- line;
      line
    | None ->
      Memory.check_exec mem addr;
      let bytes = Bytes.create line_size in
      for i = 0 to line_size - 1 do
        let b = try Memory.read_u8_raw mem (base + i) with Memory.Fault _ -> 0 in
        Bytes.set bytes i (Char.chr b)
      done;
      let line = { bytes; decoded = Array.make line_size None } in
      Hashtbl.replace t.lines base line;
      t.last_base <- base;
      t.last_line <- line;
      line

(** Fetch one instruction byte through the cache.  Fills the line from
    memory on miss (checking execute permission on the fill). *)
let fetch_u8 t (mem : Memory.t) addr =
  let line = get_line t mem addr in
  Char.code (Bytes.get line.bytes (addr - line_base addr))

(** Fetch one aligned 32-bit little-endian instruction word (arm64
    fixed-width fetch).  [addr] must be 4-aligned, so the word never
    straddles a 64-byte line: it sees exactly one line's (possibly
    stale) bytes, preserving the P3b semantics of the byte model. *)
let fetch_u32 t (mem : Memory.t) addr =
  let line = get_line t mem addr in
  let off = addr - line_base addr in
  let b i = Char.code (Bytes.unsafe_get line.bytes (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

(** Fetch and decode the instruction at [addr] through the cache.
    With predecode on, serves/fills the line's per-offset memo;
    instructions straddling the line boundary (and all fetches with
    predecode off) re-decode byte-by-byte through {!fetch_u8}.  Either
    path sees exactly the cached bytes the byte model would serve.
    @raise Memory.Fault as {!fetch_u8} (NX / unmapped fill). *)
let fetch_decode t (mem : Memory.t) addr =
  if not t.predecode then Decode.decode (fun a -> fetch_u8 t mem a) addr
  else
    let line = get_line t mem addr in
    let off = addr - line_base addr in
    match Array.unsafe_get line.decoded off with
    | Some r -> r
    | None -> (
      match Decode.decode_in line.bytes ~base:(addr - off) addr with
      | Some r ->
        Array.unsafe_set line.decoded off (Some r);
        r
      | None ->
        (* straddles into the next line, whose lifetime is independent
           of this one's — decode through the byte path, uncached *)
        Decode.decode (fun a -> fetch_u8 t mem a) addr)

(** Invalidate all lines overlapping [addr, addr+len): models the
    self-snoop a core performs on its own stores.  Drops the lines'
    predecode memos with them. *)
let invalidate_range t ~addr ~len =
  let first = line_base addr and last = line_base (addr + len - 1) in
  let b = ref first in
  while !b <= last do
    Hashtbl.remove t.lines !b;
    b := !b + line_size
  done;
  if t.last_base >= first && t.last_base <= last then begin
    t.last_base <- min_int;
    t.last_line <- no_line
  end

(** Full flush: serialising instruction executed. *)
let flush t =
  Hashtbl.reset t.lines;
  t.last_base <- min_int;
  t.last_line <- no_line

(** True when the cache currently holds a (possibly stale) copy of the
    line containing [addr]; used by tests. *)
let holds t addr = Hashtbl.mem t.lines (line_base addr)
