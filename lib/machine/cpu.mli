(** Single-instruction execution engine.

    [step] fetches through the core's I-cache, decodes and executes one
    instruction.  The CPU knows nothing about processes or the kernel;
    anything privileged surfaces as a {!trap} for the kernel to
    handle. *)

type trap =
  | Syscall_trap of { site : int; kind : [ `Syscall | `Sysenter | `Svc ] }
      (** [site] is the trapping instruction's address; rip has already
          been advanced past it and rcx/r11 clobbered (x86 syscall
          semantics — the clobber K23's trampoline exploits). *)
  | Vcall_trap of int  (** host-function escape; rip advanced *)
  | Fault_trap of Memory.fault  (** rip NOT advanced *)
  | Ud_trap of int  (** undecodable bytes / ud2; rip not advanced *)
  | Int3_trap of int
  | Hlt_trap of int

type outcome = Stepped of int | Trapped of trap * int
(** The [int] is the cycle cost charged for the step. *)

val trap_name : trap -> string
(** Stable short name for a trap ("syscall", "fault", "ud", "int3",
    "hlt", "vcall") — the machine-level key used by the kernel's
    ktrace event/counter hooks. *)

val step : ?cost:Cost.model -> Regs.t -> Memory.t -> Icache.t -> outcome

val step_arm : ?cost:Cost.model -> Regs.t -> Memory.t -> Icache.t -> outcome
(** One AArch64 instruction: aligned 4-byte word fetch
    ({!Icache.fetch_u32}), mask-compare decode, direct execution.
    [svc] raises [Syscall_trap] with kind [`Svc] and clobbers no
    registers. *)
