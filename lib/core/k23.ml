(** K23 public API: the offline phase, the online launch, and the
    combined handler with the prctl guard and execve ptracer
    re-attachment.

    Typical use:
    {[
      let w = Sim.create_world () in
      (* offline phase: run with representative inputs *)
      ignore (K23.offline_run w ~path:"/bin/app" ());
      K23.seal_logs w;
      (* online phase *)
      let p, stats = Result.get_ok (K23.launch w ~variant:K23.Ultra ~path:"/bin/app" ()) in
      World.run_until_exit w p
    ]} *)

open K23_kernel
open Kern
open K23_interpose.Interpose

type variant = Libk23.variant = Default | Ultra | Ultra_plus

let variant_to_string = Libk23.variant_to_string

(* ------------------------------------------------------------------ *)
(* Offline phase                                                       *)

(** Run the offline phase once: the target executes under libLogger
    (plus the preload-enforcing companion tracer) and every unique
    syscall site lands in /k23/logs.  Returns the accumulated log. *)
let offline_run w ~path ?argv ?(env = []) ?(max_steps = 50_000_000) () =
  let stats = fresh_stats () in
  register_library w (Offline.image ~stats ());
  let env = add_preload env Offline.lib_path in
  let tracer = Ptracer.preload_enforcer ~lib_path:Offline.lib_path () in
  (* the offline phase mirrors the online environment: the vdso is
     disabled there too, so vdso-fallback syscall sites are observed
     and logged *)
  (match World.spawn w ~path ?argv ~env ~tracer ~vdso:false () with
  | Error e -> failwith (Printf.sprintf "offline_run: spawn failed (%d)" e)
  | Ok p -> World.run_until_exit ~max_steps w p);
  Log_store.read w ~app:path

(** Number of unique logged sites for [app] — the Table 2 metric. *)
let unique_sites w ~app = List.length (Log_store.read w ~app)

(** Future-work prototype (Section 7: "combine dynamic and static
    analysis to reliably identify syscall/sysenter instructions during
    the offline phase"): augment the offline logs with sites found by
    a static linear sweep over the program's loaded images.

    This widens fast-path coverage for programs without good benchmark
    suites, but it re-imports static disassembly's misidentification
    risk (P3a): a swept "site" inside embedded data passes libK23's
    byte validation — the bytes genuinely are [0f 05] — and gets
    rewritten.  The trade-off is demonstrated in
    test/test_static_augment.ml; use only on binaries known to keep
    data out of text. *)
let offline_augment_static w ~path () =
  match World.spawn w ~path () with
  | Error e -> failwith (Printf.sprintf "offline_augment_static: spawn failed (%d)" e)
  | Ok p ->
    (* run just past loading so every image is mapped *)
    run ~max_steps:20_000_000 ~until:(fun () -> p.startup_done || proc_dead p) w;
    let entries =
      List.concat_map
        (fun r ->
          let bytes = K23_machine.Memory.read_bytes_raw p.mem r.r_start r.r_len in
          K23_isa.Disasm.find_syscall_sites bytes ~base:0
          |> List.map (fun off -> { Log_store.region = r.r_name; offset = off }))
        (scannable_regions p)
    in
    kill_proc p ~signal:9;
    Log_store.append w ~app:path entries;
    List.length entries

let seal_logs = Log_store.seal

(* ------------------------------------------------------------------ *)
(* Online phase                                                        *)

(** Launch [path] under full K23: ptracer from the first instruction,
    libK23 injected via LD_PRELOAD (enforced), vdso disabled, SUD
    fallback armed.  Returns the process and shared statistics. *)
let launch w ~variant ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w ("mech:k23-" ^ variant_to_string variant);
  let stats = fresh_stats () in
  (* the handler: counting, plus K23's own interception duties *)
  let handler_ref = ref (fun _ ~nr:_ ~args:_ ~site:_ -> Forward) in
  let handler ctx ~nr ~args ~site = !handler_ref ctx ~nr ~args ~site in
  let reattach ctx =
    let p = ctx.thread.t_proc in
    p.tracer <- Some (Ptracer.online_tracer w ~stats ~handler ~lib_path:Libk23.lib_path ());
    p.vdso_enabled <- false
  in
  let k23_duties : handler =
   fun ctx ~nr ~args ~site ->
    if
      nr = Sysno.prctl
      && args.(0) = Sysno.pr_set_syscall_user_dispatch
      && args.(1) = Sysno.pr_sys_dispatch_off
    then begin
      (* P1b guard: an attempt to silently disable SUD-based
         interposition aborts the process (Section 5.2) *)
      stats.aborts <- stats.aborts + 1;
      abort ctx ~why:"K23: attempt to disable SUD-based interposition (P1b)";
      Emulate (Errno.ret Errno.eperm)
    end
    else begin
      if nr = Sysno.execve then
        (* restart the online phase for the new image: re-attach the
           ptracer just before the execve proceeds (Section 5.3) *)
        reattach ctx;
      match inner with Some h -> h ctx ~nr ~args ~site | None -> Forward
    end
  in
  handler_ref := counting_handler ~inner:k23_duties stats;
  register_library w (Libk23.image ~variant ~handler ~stats ());
  let env = add_preload env Libk23.lib_path in
  let tracer = Ptracer.online_tracer w ~stats ~handler ~lib_path:Libk23.lib_path () in
  match World.spawn w ~path ?argv ~env ~tracer ~vdso:false () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e

(** Convenience: offline + seal + launch in one call. *)
let offline_and_launch w ~variant ?inner ~path ?argv ?env ?(offline_runs = 1) () =
  for _ = 1 to offline_runs do
    ignore (offline_run w ~path ?argv ?env ())
  done;
  seal_logs w;
  launch w ~variant ?inner ~path ?argv ?env ()

(** Introspection for tests and benchmarks. *)
let rewritten_sites (p : proc) = (Libk23.get_state p).rewritten

let startup_handed_over (p : proc) = (Libk23.get_state p).startup_from_ptracer

let check_memory_bytes (p : proc) = Robin_set.memory_bytes (Libk23.get_state p).valid
