(** ptrace-based interposition (Section 2.1).

    The tracer attaches before the first instruction of the target, so
    it is the only mechanism that sees {e every} system call —
    including those issued by the dynamic loader before any library
    constructor runs, which is why K23 uses it during startup.  Each
    interposed call costs two stop/round-trips (syscall-entry and
    -exit), the paper's "prohibitive overhead". *)

open K23_kernel
open Kern
open K23_interpose.Interpose

(** Build a tracer wired to the handler ABI. *)
let tracer ?(name = "ptracer") ~handler ~(stats : stats) () =
  {
    tr_name = name;
    tr_trace_syscalls = true;
    tr_on_entry =
      Some
        (fun ctx ~nr ~site ~args ->
          stats.via_ptrace <- stats.via_ptrace + 1;
          match handler ctx ~nr ~args ~site with
          | Forward -> `Continue
          | Emulate v -> `Skip v);
    tr_on_exit = None;
    tr_on_exec = None;
    tr_on_exit_proc = None;
  }

let launch w ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w "mech:ptrace";
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  let tr = tracer ~handler ~stats () in
  match World.spawn w ~path ?argv ~env ~tracer:tr () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e
