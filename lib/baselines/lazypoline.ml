(** lazypoline (Jacobs et al., DSN'24), reimplemented faithfully —
    including the runtime-rewriting flaws the paper dissects.

    No static disassembly: SUD traps the {e first} execution of every
    [syscall]/[sysenter] site (so dynamically generated / dlopen'ed
    code is covered, fixing P2a), and the SIGSYS handler rewrites that
    site to [callq *%rax] before re-issuing the call.  Subsequent
    executions take the page-0 trampoline fast path.

    Deliberately preserved flaws (Sections 4.3-4.5):
    - the 2-byte rewrite is two separate 1-byte stores — not atomic
      (P5: another thread can execute the torn instruction);
    - no cross-core instruction-stream serialisation — other cores may
      keep executing stale bytes (P5);
    - page permissions are not saved before rewriting and are
      "restored" to an assumed r-x, destroying XOM (P5);
    - any trap is trusted: control flow hijacked into data that happens
      to encode [0f 05] gets that data rewritten (P3b);
    - nothing guards execution falling into the page-0 trampoline
      (P4a), and prctl(PR_SYS_DISPATCH_OFF) silently disables it
      (P1b). *)

open K23_isa
open K23_machine
open K23_kernel
open Kern
open K23_interpose.Interpose

let lib_path = "/usr/lib/liblazypoline.so"

type state = {
  rewritten : (int, unit) Hashtbl.t;
  mutable pending_rw : int option;  (** site currently half-rewritten *)
  mutable data_corruptions : int;  (** sites rewritten inside non-code bytes (for PoCs) *)
}

(* Per-PROCESS state, keyed by pid in the per-launch image closure:
   after fork each process has its own (copy-on-write) memory, so its
   rewriting progress is its own.  A child starts with an empty table
   and simply re-discovers sites through SUD, exactly like the real
   system after fork. *)
type states = (int, state) Hashtbl.t

let get_state (states : states) (p : proc) =
  match Hashtbl.find_opt states p.pid with
  | Some s -> s
  | None ->
    let s = { rewritten = Hashtbl.create 64; pending_rw = None; data_corruptions = 0 } in
    Hashtbl.replace states p.pid s;
    s

let make_config ~handler ~stats ~selector =
  {
    cfg_name = "lazypoline";
    (* calibrated near the paper's 1.3801x microbenchmark overhead *)
    pre_cost = 16;
    post_cost = 6;
    null_check = None (* P4a: no guard *);
    null_check_cost = 0;
    stack_switch = false;
    sud_selector = selector;
    handler;
    stats;
  }

(* --- the flawed two-step runtime rewrite ---------------------------- *)

(** Step 1: make the page writable (wihout saving what it was) and
    store the first byte of [callq *%rax].  Only the writing core's
    icache is invalidated; no serialisation reaches other cores. *)
let rw_step1 states (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  match th.frames with
  | [] -> ()
  | frame :: _ ->
    let site = frame.fr_site in
    let st = get_state states p in
    if Hashtbl.mem st.rewritten site || st.pending_rw <> None then ()
    else begin
      Memory.set_perm p.mem ~addr:site ~len:2 ~perm:Memory.perm_rwx;
      Memory.write_u8_raw p.mem site 0xff;
      (* caches are coherent: other cores can now fetch the torn
         [ff 05] bytes — the P5 window is open *)
      code_write_barrier ctx.world ~addr:site ~len:1;
      st.pending_rw <- Some site;
      charge ctx.world th 250
    end

(** Step 2: store the second byte and "restore" permissions to an
    assumed r-x. *)
let rw_step2 states (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  let st = get_state states p in
  match st.pending_rw with
  | None -> ()
  | Some site ->
    Memory.write_u8_raw p.mem (site + 1) 0xd0;
    (* flaw: the original permissions were never saved; XOM or rwx
       pages silently become r-x *)
    Memory.set_perm p.mem ~addr:site ~len:2 ~perm:Memory.perm_rx;
    code_write_barrier ctx.world ~addr:site ~len:2;
    Hashtbl.replace st.rewritten site ();
    (match find_region p site with
    | Some r when r.r_sec <> `Text || r.r_owner = Anon -> st.data_corruptions <- st.data_corruptions + 1
    | _ -> ());
    st.pending_rw <- None;
    charge ctx.world th 250

let image ~handler ~stats () : image =
  let states : states = Hashtbl.create 16 in
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let selector p = Mapper.image_sym p (Lazy.force lazy_im) "lp_selector" in
  let cfg = make_config ~handler ~stats ~selector in
  let init (ctx : ctx) =
    let p = ctx.thread.t_proc in
    Hashtbl.remove states p.pid;
    ignore (get_state states p);
    install_trampoline ctx cfg;
    let sel_addr = arm_sud ctx ~im:(Lazy.force lazy_im) ~selector_sym:"lp_selector" in
    set_selector_all_slots p ~sel_addr selector_block
  in
  let items =
    [ Asm.Label "__lazypoline_init"; Asm.Vcall_named "lp_init"; Asm.I Insn.Ret ]
    @ sigsys_handler_items
        ~extra_items:
          [
            Asm.Vcall_named "lp_rw1";
            (* the mprotect round trip between the two stores: on the
               real system this is a full syscall, leaving the torn
               [ff 05] bytes fetchable for thousands of cycles *)
            Asm.Vcall_named "lp_rw_mprotect";
            Asm.Vcall_named "lp_rw_mprotect";
            Asm.Vcall_named "lp_rw_mprotect";
            Asm.Vcall_named "lp_rw_mprotect";
            Asm.Vcall_named "lp_rw2";
          ]
        ()
    @ [ Asm.Section `Data; Asm.Label "lp_selector"; Asm.Zeros 64 ]
  in
  let im =
    {
      im_name = lib_path;
      im_prog = Asm.assemble items;
      im_host_fns =
        [
          ("lp_init", init);
          ("lp_rw1", rw_step1 states);
          ("lp_rw_mprotect", (fun ctx -> charge ctx.world ctx.thread 40));
          ("lp_rw2", rw_step2 states);
          ("sigsys_pre", sigsys_pre cfg ~im:lazy_im ());
          ("sigsys_post", sigsys_post cfg);
        ];
      im_init = Some "__lazypoline_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  im_ref := Some im;
  im

let launch w ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w "mech:lazypoline";
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  register_library w (image ~handler ~stats ());
  let env = add_preload env lib_path in
  match World.spawn w ~path ?argv ~env () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e
