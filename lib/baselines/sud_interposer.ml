(** Plain Syscall User Dispatch interposition (Section 2.1).

    Exhaustive (after its library loads) and fully expressive, but
    every interposed system call pays signal delivery + handler +
    re-issued syscall + rt_sigreturn — the ~15x microbenchmark
    overhead of Table 5 and the throughput collapse of Table 6. *)

open K23_isa
open K23_kernel
open Kern
open K23_interpose.Interpose

let lib_path = "/usr/lib/libsud.so"

let make_config ~handler ~stats ~selector =
  {
    cfg_name = "sud";
    pre_cost = 120;  (* handler prologue/epilogue work measured on real SUD *)
    post_cost = 60;
    null_check = None;
    null_check_cost = 0;
    stack_switch = false;
    sud_selector = selector;
    handler;
    stats;
  }

let image ?(interpose_on = true) ?(isa = Isa.X86_64) ~handler ~stats () : image =
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let selector p = Mapper.image_sym p (Lazy.force lazy_im) "sud_selector" in
  let cfg = make_config ~handler ~stats ~selector in
  let init (ctx : ctx) =
    let p = ctx.thread.t_proc in
    let sel_addr = arm_sud ctx ~im:(Lazy.force lazy_im) ~selector_sym:"sud_selector" in
    (* [interpose_on = false] gives the paper's "SUD-no-interposition"
       configuration: SUD initialised, selector left on ALLOW, so only
       the kernel slow path is measured *)
    set_selector_all_slots p ~sel_addr (if interpose_on then selector_block else selector_allow)
  in
  let prog =
    match isa with
    | Isa.X86_64 ->
      Asm.assemble
        ([ Asm.Label "__sud_init"; Asm.Vcall_named "sud_init"; Asm.I Insn.Ret ]
        @ sigsys_handler_items ()
        @ [ Asm.Section `Data; Asm.Label "sud_selector"; Asm.Zeros 64 ])
    | Isa.Arm64 ->
      let module A = K23_isa_arm.Asm_arm in
      A.assemble
        ([ A.Label "__sud_init"; A.Vcall_named "sud_init"; A.I K23_isa_arm.Arm.Ret ]
        @ sigsys_handler_items_arm ()
        @ [ A.Section `Data; A.Label "sud_selector"; A.Zeros 64 ])
  in
  let im =
    {
      im_name = lib_path;
      im_prog = prog;
      im_host_fns =
        [
          ("sud_init", init);
          ("sigsys_pre", sigsys_pre cfg ~im:lazy_im ());
          ("sigsys_post", sigsys_post cfg);
        ];
      im_init = Some "__sud_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  im_ref := Some im;
  im

let launch w ?(interpose_on = true) ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w (if interpose_on then "mech:sud" else "mech:sud-nointerpose");
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  register_library w (image ~interpose_on ~isa:w.isa ~handler ~stats ());
  let env = add_preload env lib_path in
  match World.spawn w ~path ?argv ~env () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e
