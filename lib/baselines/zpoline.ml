(** zpoline (Yasukata et al., USENIX ATC'23), reimplemented faithfully
    — including its documented weaknesses.

    At load time (LD_PRELOAD constructor) it:
    + statically disassembles every executable region with a linear
      sweep and rewrites each apparent [syscall]/[sysenter] to
      [callq *%rax] — inheriting the sweep's misidentifications
      (pitfall P3a) and overlooks (P2a);
    + installs the page-0 trampoline (nop sled + handler);
    + saves and restores page permissions around rewriting and does the
      whole rewrite in one quiescent step (so P5 does not apply);
    + in the [Ultra] variant, reserves a bitmap spanning the whole
      virtual address space for the NULL-execution check (handling P4a
      at the memory cost of P4b).

    It never touches code that appears later (dlopen, JIT) and is
    silently disabled by LD_PRELOAD scrubbing (P1a). *)

open K23_isa
open K23_machine
open K23_kernel
open Kern
open K23_interpose.Interpose

type variant = Default | Ultra

let lib_path = "/usr/lib/libzpoline.so"

type state = {
  sites : (int, unit) Hashtbl.t;  (** rewritten sites (the bitmap's content) *)
  mutable bitmap_pages : (int, unit) Hashtbl.t;  (** committed bitmap pages *)
  mutable rewrites : int;
}

type Kern.pstate += Zp of state

let state_key = "zpoline"

let get_state (p : proc) =
  match Hashtbl.find_opt p.pstates state_key with
  | Some (Zp s) -> s
  | _ -> panic "zpoline: no state in pid %d" p.pid

(* The bitmap covers all 2^48 virtual addresses at one bit each: 2^45
   bytes of reservation (pitfall P4b).  Physical pages are committed
   lazily, one 4-KiB page per 32768 marked addresses. *)
let bitmap_va = 0x5000_0000_0000
let bitmap_reservation = 1 lsl 45

let bitmap_mark (p : proc) st site =
  let page = site / (Memory.page_size * 8) in
  if not (Hashtbl.mem st.bitmap_pages page) then begin
    Hashtbl.replace st.bitmap_pages page ();
    Memory.map p.mem ~addr:(bitmap_va + (page * Memory.page_size)) ~len:Memory.page_size
      ~perm:Memory.perm_rw
  end

(** Memory cost of the NULL-execution-check state, for the P4b bench. *)
let check_memory_bytes (p : proc) =
  let st = get_state p in
  (bitmap_reservation, Hashtbl.length st.bitmap_pages * Memory.page_size)

let null_check (ctx : ctx) ~site =
  Hashtbl.mem (get_state ctx.thread.t_proc).sites site

let make_config ~variant ~handler ~stats =
  {
    cfg_name = "zpoline";
    (* calibrated so the microbenchmark lands near the paper's 1.1267x
       (default) / 1.1576x (ultra); see EXPERIMENTS.md *)
    pre_cost = 10;
    post_cost = 5;
    null_check = (match variant with Ultra -> Some null_check | Default -> None);
    null_check_cost = 5;
    stack_switch = false;
    sud_selector = (fun _ -> None);
    handler;
    stats;
  }

let init ~variant cfg (ctx : ctx) =
  let p = ctx.thread.t_proc in
  let st = { sites = Hashtbl.create 256; bitmap_pages = Hashtbl.create 16; rewrites = 0 } in
  Hashtbl.replace p.pstates state_key (Zp st);
  install_trampoline ctx cfg;
  if variant = Ultra then Memory.reserve p.mem ~len:bitmap_reservation;
  (* one-shot static scan + rewrite of everything executable *)
  List.iter
    (fun r ->
      let bytes = Memory.read_bytes_raw p.mem r.r_start r.r_len in
      (* the sweep dominates launch cost (libc alone is ~200 KiB of
         text) and its result depends only on the bytes: the memo
         returns the identical site list, re-based per ASLR slide *)
      let found = Disasm.find_syscall_sites_memo bytes ~base:r.r_start in
      List.iter
        (fun site ->
          rewrite_site_atomic ctx ~site;
          Hashtbl.replace st.sites site ();
          st.rewrites <- st.rewrites + 1;
          if variant = Ultra then bitmap_mark p st site)
        found)
    (scannable_regions p)

let image ~variant ~handler ~stats () : image =
  let cfg = make_config ~variant ~handler ~stats in
  let items =
    [
      Asm.Label "__zpoline_init";
      Asm.Vcall_named "zp_init";
      Asm.I Insn.Ret;
    ]
  in
  {
    im_name = lib_path;
    im_prog = Asm.assemble items;
    im_host_fns = [ ("zp_init", init ~variant cfg) ];
    im_init = Some "__zpoline_init";
    im_entry = None;
    im_needed = [];
    im_owner = Interposer;
  }

(** Launch [path] under zpoline.  Returns the process and the shared
    interposition statistics. *)
let launch w ~variant ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w
    ("mech:" ^ match variant with Default -> "zpoline" | Ultra -> "zpoline-ultra");
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  register_library w (image ~variant ~handler ~stats ());
  let env = add_preload env lib_path in
  match World.spawn w ~path ?argv ~env () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e
