(** seccomp-based interposition (Sections 1 and 8).

    Two deployment styles, mirroring how seccomp is used in practice:

    + {!launch} — SECCOMP_RET_TRAP interposition: every syscall outside
      the handler's own code range raises SIGSYS, the handler runs the
      user handler and re-issues the call.  Exhaustive (after load) and
      expressive, but it pays the full signal round trip like SUD —
      "comparable performance overheads" (Section 1).
    + {!launch_filter_only} — a pure in-kernel policy (ALLOW / ERRNO /
      KILL per syscall number, register-argument predicates).  Nearly
      free, but the interposer's expressiveness collapses: a cBPF
      filter can never dereference pointer arguments
      ("restricts the interposer's expressiveness", Section 1) and no
      user code runs per call. *)

open K23_isa
open K23_kernel
open Kern
open K23_interpose.Interpose

let lib_path = "/usr/lib/libseccomp-interposer.so"

let make_config ~handler ~stats =
  {
    cfg_name = "seccomp-trap";
    pre_cost = 120;
    post_cost = 60;
    null_check = None;
    null_check_cost = 0;
    stack_switch = false;
    sud_selector = (fun _ -> None);
    handler;
    stats;
  }

let image ?(isa = Isa.X86_64) ~handler ~stats () : image =
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let cfg = make_config ~handler ~stats in
  let init (ctx : ctx) =
    let p = ctx.thread.t_proc in
    (* SIGSYS handler *)
    (match Mapper.image_sym p (Lazy.force lazy_im) sigsys_handler_sym with
    | Some a -> Hashtbl.replace p.sig_handlers sigsys a
    | None -> panic "seccomp interposer: no handler");
    (* trap everything whose instruction pointer is outside our own
       text (so the handler's re-issued syscalls pass) *)
    let r =
      List.find
        (fun r ->
          (match r.r_image with Some i -> i == Lazy.force lazy_im | None -> false)
          && r.r_sec = `Text)
        p.regions
    in
    seccomp_install p (Bpf.trap_outside_ip_range ~lo:r.r_start ~hi:(r.r_start + r.r_len));
    charge ctx.world ctx.thread 600
  in
  let prog =
    match isa with
    | Isa.X86_64 ->
      Asm.assemble
        ([ Asm.Label "__seccomp_init"; Asm.Vcall_named "sc_init"; Asm.I Insn.Ret ]
        @ sigsys_handler_items ())
    | Isa.Arm64 ->
      let module A = K23_isa_arm.Asm_arm in
      A.assemble
        ([ A.Label "__seccomp_init"; A.Vcall_named "sc_init"; A.I K23_isa_arm.Arm.Ret ]
        @ sigsys_handler_items_arm ())
  in
  let im =
    {
      im_name = lib_path;
      im_prog = prog;
      im_host_fns =
        [
          ("sc_init", init);
          ("sigsys_pre", sigsys_pre cfg ~im:lazy_im ());
          ("sigsys_post", sigsys_post cfg);
        ];
      im_init = Some "__seccomp_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  im_ref := Some im;
  im

(** TRAP-style interposition (signal-based, expressive). *)
let launch w ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w "mech:seccomp-trap";
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  register_library w (image ~isa:w.isa ~handler ~stats ());
  let env = add_preload env lib_path in
  match World.spawn w ~path ?argv ~env () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e

(** Pure-filter policy: install [filters] right before main runs via a
    minimal preload whose constructor does only that.  No user handler
    ever runs — that is the point being demonstrated. *)
let launch_filter_only w ~filters ~path ?argv ?(env = []) () =
  ktrace_annot w "mech:seccomp-filter";
  let im : image =
    {
      im_name = "/usr/lib/libseccomp-policy.so";
      im_prog =
        Asm.assemble [ Asm.Label "__policy_init"; Asm.Vcall_named "pol_init"; Asm.I Insn.Ret ];
      im_host_fns =
        [
          ( "pol_init",
            fun ctx ->
              List.iter (seccomp_install ctx.thread.t_proc) filters;
              charge ctx.world ctx.thread (600 * List.length filters) );
        ];
      im_init = Some "__policy_init";
      im_entry = None;
      im_needed = [];
      im_owner = Interposer;
    }
  in
  register_library w im;
  let env = add_preload env im.im_name in
  World.spawn w ~path ?argv ~env ()
