(** Deterministic fault-injection plane.

    A fault {e plan} is pure data — a seed plus per-channel per-mille
    rates — so it can live inside {!K23_kernel.World.Config} and keep
    worlds structurally hashable, Run-spec parallel-safe, and
    byte-identical at any [--jobs].

    Decisions are a pure function of [(fseed, nr, tick)] where [tick]
    counts {e fault-eligible} dispatches of syscall number [nr] in the
    world so far.  Ticks advance only on logically-new application
    calls (the kernel skips interposer housekeeping, retries of parked
    calls, and restarted re-executions), so a native run and a
    mechanism-interposed run of the same program see the {e same}
    schedule — divergence under faults means the mechanism mishandled
    an interrupted/restarted syscall, not that the dice rolled
    differently.

    rr (PAPERS.md) identifies interrupted/restarted syscalls and
    signal-delivery points as the hardest nondeterminism to tame; this
    module makes them explicit, seeded inputs. *)

type plan = {
  fseed : int;  (** schedule seed; same seed ⇒ same decisions *)
  eintr_pm : int;  (** ‰ chance a blocking wait is interrupted *)
  short_pm : int;  (** ‰ chance a read/write is truncated *)
  eagain_pm : int;  (** ‰ chance a net op reports [EAGAIN] *)
  emfile_pm : int;  (** ‰ chance fd allocation reports [EMFILE]/[ENFILE] *)
  enomem_pm : int;  (** ‰ chance mmap reports [ENOMEM] *)
  reset_pm : int;  (** ‰ chance a connection op reports [ECONNRESET] *)
}

(** The disabled plan: every rate zero.  Worlds treat this exactly
    like "no fault plane" (zero per-dispatch overhead). *)
let none = { fseed = 0; eintr_pm = 0; short_pm = 0; eagain_pm = 0;
             emfile_pm = 0; enomem_pm = 0; reset_pm = 0 }

(** The stock chaos mix used by [k23 fuzz --faults] and the
    [table6-chaos] load row: frequent interrupts and short I/O, rarer
    resource exhaustion. *)
let chaos ?(fseed = 23) () =
  { fseed; eintr_pm = 60; short_pm = 90; eagain_pm = 45;
    emfile_pm = 10; enomem_pm = 8; reset_pm = 6 }

let enabled p =
  p.eintr_pm > 0 || p.short_pm > 0 || p.eagain_pm > 0 || p.emfile_pm > 0
  || p.enomem_pm > 0 || p.reset_pm > 0

let to_string p =
  if not (enabled p) then "faults:off"
  else
    Printf.sprintf "faults:s%d:i%d:sh%d:a%d:m%d:n%d:r%d" p.fseed p.eintr_pm
      p.short_pm p.eagain_pm p.emfile_pm p.enomem_pm p.reset_pm

(** Parse {!to_string}'s rendering back; [None] on malformed input.
    Gives corpus repro files and CLI flags a stable wire format. *)
let of_string s =
  if s = "faults:off" then Some none
  else
    match
      Scanf.sscanf_opt s "faults:s%d:i%d:sh%d:a%d:m%d:n%d:r%d%!"
        (fun fseed eintr_pm short_pm eagain_pm emfile_pm enomem_pm reset_pm ->
          { fseed; eintr_pm; short_pm; eagain_pm; emfile_pm; enomem_pm; reset_pm })
    with
    | Some p -> Some p
    | None -> None

(* ------------------------------------------------------------------ *)
(* Schedule: SplitMix64 finalizer over (fseed, nr, tick, channel)      *)

(* SplitMix64's finalizer with the constants truncated to OCaml's
   63-bit native int (arithmetic wraps, which is all the avalanche
   needs — we only ever consume the low 30 bits). *)
let mix64 z =
  let z = z + 0x1e3779b97f4a7c15 in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

(** Decision key for one logical syscall: mixes the plan seed, the
    syscall number, and the per-nr eligible-dispatch tick. *)
let key p ~nr ~tick = mix64 ((p.fseed * 0x100003) lxor (nr * 0x9e37) lxor tick)

(* Per-channel salts keep the channels' dice independent. *)
let s_eintr = 0x11
let s_short = 0x22
let s_eagain = 0x33
let s_emfile = 0x44
let s_enomem = 0x55
let s_reset = 0x66
let s_flip = 0x77
let s_len = 0x88

(** Roll one channel: true with probability [pm]/1000. *)
let roll ~key ~salt pm =
  pm > 0 && (mix64 (key lxor salt) land 0x3fffffff) mod 1000 < pm

let roll_eintr p ~key = roll ~key ~salt:s_eintr p.eintr_pm
let roll_short p ~key = roll ~key ~salt:s_short p.short_pm
let roll_eagain p ~key = roll ~key ~salt:s_eagain p.eagain_pm
let roll_emfile p ~key = roll ~key ~salt:s_emfile p.emfile_pm
let roll_enomem p ~key = roll ~key ~salt:s_enomem p.enomem_pm
let roll_reset p ~key = roll ~key ~salt:s_reset p.reset_pm

(** A fair coin tied to the key: picks EMFILE-vs-ENFILE and
    restart-vs-hard-EINTR. *)
let flip ~key = mix64 (key lxor s_flip) land 1 = 0

(** Truncated length for a short read/write of [n] bytes: uniform in
    [1, n-1] (callers only ask when [n > 1]). *)
let short_len ~key n =
  if n <= 1 then n else 1 + ((mix64 (key lxor s_len) land 0x3fffffff) mod (n - 1))
