(** Convenience layer: a world with the standard userland registered,
    and helpers to define application binaries. *)

open K23_kernel

(* Userland registration on top of the kernel wiring — shared verbatim
   by the fresh-create and in-place-reset paths. *)
let populate w =
  Kern.register_library w (Libc.image ());
  List.iter (Kern.register_library w) (Stdlibs.all ());
  ignore (Vfs.write_file w.vfs "/usr/lib/locale/locale-archive" (String.make 1024 'L'))

(** A wired world with libc, the stub libraries, and the files the
    startup sequence touches, built from a {!World.Config.t} — the
    run-spec form used by the domain pool ({!K23_par}). *)
let create_world_cfg cfg =
  let w = World.create_cfg cfg in
  populate w;
  w

(** In-place counterpart of {!create_world_cfg}: {!World.reset} plus
    the same userland registration.  The scratch-world cache
    ({!K23_par.World_cache}) uses this to recycle a dirty world into
    the exact observable state of a fresh one. *)
let reset_world_cfg w cfg =
  World.reset w cfg;
  populate w

(** Legacy optional-argument constructor (thin wrapper). *)
let create_world ?isa ?ncores ?quantum ?seed ?aslr ?cost ?ktrace ?predecode () =
  create_world_cfg
    (World.Config.make ?isa ?ncores ?quantum ?seed ?aslr ?cost ?ktrace ?predecode ())

(** Define and register an application binary.

    [items] is the program text/data (entry symbol ["main"] unless
    overridden); [needed] defaults to libc. *)
let register_app w ~path ?(needed = [ Libc.path ]) ?(entry = "main") ?init
    ?(host_fns = []) items =
  let im : Kern.image =
    {
      im_name = path;
      im_prog = K23_isa.Asm.assemble items;
      im_host_fns = host_fns;
      im_init = init;
      im_entry = Some entry;
      im_needed = needed;
      im_owner = App;
    }
  in
  Kern.register_library w im;
  im

(** {!register_app} for an already-assembled program — the seam that
    keeps this module ISA-agnostic: ARM callers assemble their items
    with [K23_isa_arm.Asm_arm.assemble] (the userland layer has no
    backend dependency) and register the resulting neutral program.
    [needed] defaults to [[]]: there is no ARM libc image, apps are
    freestanding (ld.so still runs its boilerplate, so P2b-class
    startup syscalls exist on ARM too). *)
let register_app_prog w ~path ?(needed = []) ?(entry = "main") ?init ?(host_fns = [])
    (prog : K23_isa.Asm.program) =
  let im : Kern.image =
    {
      im_name = path;
      im_prog = prog;
      im_host_fns = host_fns;
      im_init = init;
      im_entry = Some entry;
      im_needed = needed;
      im_owner = App;
    }
  in
  Kern.register_library w im;
  im

(** Spawn + run to completion; returns the process. *)
let run_to_exit ?max_steps w ~path ?argv ?env () =
  match World.spawn w ~path ?argv ?env () with
  | Error e -> failwith (Printf.sprintf "spawn %s failed: %d" path e)
  | Ok p ->
    World.run_until_exit ?max_steps w p;
    p
