(** The recording: one run's nondeterministic inputs as an
    append-only log, with a text serialisation that round-trips.

    A recording is the complete ktrace event stream of a run (captured
    through an {e unbounded} sink, so nothing is ever dropped) plus
    the recipe needed to re-drive it: the app path and argv, the
    mechanism, and the full {!World.Config} — seed, cost model, fault
    plan included.  Because every source of nondeterminism in the
    simulator is owned by the config (ASLR draws, cost skew, fault
    dice all flow from [seed]/[faults]), the log doubles as both the
    replay input {e and} the oracle: the replayer re-drives a fresh
    world from the header and diffs the live stream against the body.

    The wire format follows [Corpus]: `key: value` header lines, a
    `---` separator, then one event per line.  Unknown header keys are
    skipped (forward compatibility), [to_string]/[of_string] are exact
    inverses, and the `events:` header pins the body length so a
    truncated file is a parse error, not a silently-short replay. *)

module Event = K23_obs.Event
module Mech = K23_eval.Mech
module World = K23_kernel.World
module Kern = K23_kernel.Kern
module Faults = K23_faults.Faults
module Cost = K23_machine.Cost

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type fate = Exit of int | Killed of int | Running

type t = {
  rc_app : string;  (** registered path of the recorded program *)
  rc_argv : string list;  (** argv at launch; [] = mechanism default *)
  rc_mech : Mech.t;
  rc_cfg : World.Config.t;  (** the recipe; [ktrace] is always false
      (the recorder/replayer own the sink directly, unbounded) *)
  rc_root : int;  (** raw pid of the launched root process *)
  rc_console : string;  (** root console bytes at end of run *)
  rc_fates : (int * fate) list;  (** raw pid -> fate, ascending *)
  rc_events : Event.t list;  (** the full ktrace stream, in order *)
}

(* ------------------------------------------------------------------ *)
(* Fates                                                               *)

let fate_to_string = function
  | Exit n -> Printf.sprintf "exit %d" n
  | Killed n -> Printf.sprintf "killed %d" n
  | Running -> "running"

let fate_of_proc (q : Kern.proc) =
  match (q.Kern.exit_status, q.Kern.term_signal) with
  | Some s, _ -> Exit s
  | None, Some s -> Killed s
  | None, None -> Running

(** Every traced process's fate, by ascending raw pid. *)
let fates_of_world (w : Kern.world) =
  List.map (fun (q : Kern.proc) -> (q.Kern.pid, fate_of_proc q)) w.Kern.procs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Event line codec                                                    *)

(* One event per line: "<cycles> <pid> <tid> <tag> <fields...>".
   Fields are fixed-arity ints except for at most one trailing string
   per payload, written [String.escaped] (newline-safe) and parsed as
   the remainder of the line — so strings containing spaces survive.
   [Syscall_enter] carries a length-prefixed argument vector before
   its trailing owner string. *)

let event_to_line (e : Event.t) =
  let b = Buffer.create 64 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "%d %d %d" e.Event.ev_cycles e.Event.ev_pid e.Event.ev_tid;
  (match e.Event.ev_payload with
  | Event.Syscall_enter { nr; site; owner; args } ->
    pr " enter %d %d %d" nr site (Array.length args);
    Array.iter (fun a -> pr " %d" a) args;
    pr " %s" (String.escaped owner)
  | Event.Syscall_exit { nr; ret } -> pr " exit %d %d" nr ret
  | Event.Signal_deliver { signo; sysno; site } -> pr " signal %d %d %d" signo sysno site
  | Event.Sigreturn { depth } -> pr " sigreturn %d" depth
  | Event.Sud_toggle { armed; sel_addr; allow_lo; allow_hi } ->
    pr " sud_toggle %d %d %d %d" (Bool.to_int armed) sel_addr allow_lo allow_hi
  | Event.Sud_block { nr; site } -> pr " sud_block %d %d" nr site
  | Event.Seccomp { nr; verdict } -> pr " seccomp %d %s" nr (String.escaped verdict)
  | Event.Ptrace_stop { kind; nr } ->
    pr " ptrace %s %d" (match kind with Event.Entry -> "entry" | Event.Exit -> "exit") nr
  | Event.Code_write { addr; len } -> pr " code_write %d %d" addr len
  | Event.Fault { access; addr; rip } -> pr " fault %d %d %s" addr rip (String.escaped access)
  | Event.Exec { path } -> pr " exec %s" (String.escaped path)
  | Event.Vdso_call { sym } -> pr " vdso %s" (String.escaped sym)
  | Event.Sched_switch { core } -> pr " sched %d" core
  | Event.Req_send { conn; req; sched } -> pr " req_send %d %d %d" conn req sched
  | Event.Req_recv { conn; req } -> pr " req_recv %d %d" conn req
  | Event.Fault_injected { nr; site; kind } ->
    pr " fault_inj %d %d %s" nr site (String.escaped kind)
  | Event.Syscall_restarted { nr; site } -> pr " restart %d %d" nr site
  | Event.Annot s -> pr " annot %s" (String.escaped s));
  Buffer.contents b

let int_field what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "bad %s field: %S" what s

let str_field what toks =
  let s = String.concat " " toks in
  try Scanf.unescaped s with Scanf.Scan_failure _ | Failure _ -> fail "bad %s string: %S" what s

let event_of_line lineno line =
  let bad what = fail "event line %d: %s (%S)" lineno what line in
  match String.split_on_char ' ' line with
  | cy :: pid :: tid :: tag :: rest ->
    let i = int_field in
    let payload =
      match (tag, rest) with
      | "enter", nr :: site :: argc :: rest ->
        let argc = i "argc" argc in
        let rec split n acc l =
          if n = 0 then (List.rev acc, l)
          else match l with x :: l' -> split (n - 1) (x :: acc) l' | [] -> bad "truncated enter"
        in
        let args, owner = split argc [] rest in
        Event.Syscall_enter
          {
            nr = i "nr" nr;
            site = i "site" site;
            owner = str_field "owner" owner;
            args = Array.of_list (List.map (i "arg") args);
          }
      | "exit", [ nr; ret ] -> Event.Syscall_exit { nr = i "nr" nr; ret = i "ret" ret }
      | "signal", [ signo; sysno; site ] ->
        Event.Signal_deliver { signo = i "signo" signo; sysno = i "sysno" sysno; site = i "site" site }
      | "sigreturn", [ depth ] -> Event.Sigreturn { depth = i "depth" depth }
      | "sud_toggle", [ armed; sel; lo; hi ] ->
        Event.Sud_toggle
          { armed = i "armed" armed <> 0; sel_addr = i "sel" sel; allow_lo = i "lo" lo; allow_hi = i "hi" hi }
      | "sud_block", [ nr; site ] -> Event.Sud_block { nr = i "nr" nr; site = i "site" site }
      | "seccomp", nr :: v -> Event.Seccomp { nr = i "nr" nr; verdict = str_field "verdict" v }
      | "ptrace", [ kind; nr ] ->
        let kind =
          match kind with "entry" -> Event.Entry | "exit" -> Event.Exit | _ -> bad "bad stop kind"
        in
        Event.Ptrace_stop { kind; nr = i "nr" nr }
      | "code_write", [ addr; len ] -> Event.Code_write { addr = i "addr" addr; len = i "len" len }
      | "fault", addr :: rip :: access ->
        Event.Fault { addr = i "addr" addr; rip = i "rip" rip; access = str_field "access" access }
      | "exec", path -> Event.Exec { path = str_field "path" path }
      | "vdso", sym -> Event.Vdso_call { sym = str_field "sym" sym }
      | "sched", [ core ] -> Event.Sched_switch { core = i "core" core }
      | "req_send", [ conn; req; sched ] ->
        Event.Req_send { conn = i "conn" conn; req = i "req" req; sched = i "sched" sched }
      | "req_recv", [ conn; req ] -> Event.Req_recv { conn = i "conn" conn; req = i "req" req }
      | "fault_inj", nr :: site :: kind ->
        Event.Fault_injected { nr = i "nr" nr; site = i "site" site; kind = str_field "kind" kind }
      | "restart", [ nr; site ] -> Event.Syscall_restarted { nr = i "nr" nr; site = i "site" site }
      | "annot", s -> Event.Annot (str_field "annot" s)
      | _ -> bad ("unknown event tag " ^ tag)
    in
    {
      Event.ev_cycles = int_field "cycles" cy;
      ev_pid = int_field "pid" pid;
      ev_tid = int_field "tid" tid;
      ev_payload = payload;
    }
  | _ -> bad "malformed event line"

(* ------------------------------------------------------------------ *)
(* Header codec                                                        *)

let cost_to_string (m : Cost.model) =
  Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d" m.Cost.insn m.Cost.nop m.Cost.syscall_base
    m.Cost.sud_armed_extra m.Cost.sigsys_delivery m.Cost.sigreturn_extra m.Cost.ptrace_stop
    m.Cost.ptrace_mem_op

let cost_of_string s =
  match String.split_on_char ',' s |> List.map int_of_string_opt with
  | [
   Some insn; Some nop; Some syscall_base; Some sud_armed_extra; Some sigsys_delivery;
   Some sigreturn_extra; Some ptrace_stop; Some ptrace_mem_op;
  ] ->
    {
      Cost.insn; nop; syscall_base; sud_armed_extra; sigsys_delivery; sigreturn_extra;
      ptrace_stop; ptrace_mem_op;
    }
  | _ -> fail "bad cost model: %S" s

let magic = "# k23 recording v1"

let to_string r =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "%s\n" magic;
  pr "app: %s\n" r.rc_app;
  (* argv entries are space-separated tokens: escape embedded spaces
     as the decimal escape \032 (String.escaped leaves spaces alone,
     Scanf.unescaped reverses either form) *)
  let escape_token s = String.concat "\\032" (String.split_on_char ' ' (String.escaped s)) in
  if r.rc_argv <> [] then pr "argv: %s\n" (String.concat " " (List.map escape_token r.rc_argv));
  pr "mech: %s\n" (Mech.to_string r.rc_mech);
  let c = r.rc_cfg in
  (* emitted only for non-x86 recordings: pre-ISA files stay
     byte-identical and old readers skip the unknown key *)
  (match c.World.Config.isa with
  | K23_isa.Isa.X86_64 -> ()
  | isa -> pr "isa: %s\n" (K23_isa.Isa.to_string isa));
  pr "ncores: %d\n" c.World.Config.ncores;
  pr "quantum: %d\n" c.World.Config.quantum;
  pr "seed: %d\n" c.World.Config.seed;
  pr "aslr: %d\n" (Bool.to_int c.World.Config.aslr);
  pr "predecode: %d\n" (Bool.to_int c.World.Config.predecode);
  pr "cost: %s\n" (cost_to_string c.World.Config.cost);
  pr "faults: %s\n" (Faults.to_string c.World.Config.faults);
  pr "root: %d\n" r.rc_root;
  pr "console: %s\n" (String.escaped r.rc_console);
  List.iter (fun (pid, f) -> pr "fate: %d %s\n" pid (fate_to_string f)) r.rc_fates;
  pr "events: %d\n" (List.length r.rc_events);
  pr "---\n";
  List.iter (fun e -> pr "%s\n" (event_to_line e)) r.rc_events;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when first = magic ->
    let app = ref None and argv = ref [] and mech = ref None in
    let cfg = ref { World.Config.default with World.Config.ktrace = false } in
    let root = ref None and console = ref "" and fates = ref [] and nevents = ref None in
    let rec header = function
      | [] -> fail "missing --- separator"
      | "---" :: body -> body
      | line :: restl ->
        (match String.index_opt line ':' with
        | None -> if String.trim line <> "" then fail "bad header line: %S" line
        | Some ci ->
          let key = String.sub line 0 ci in
          let v =
            let raw = String.sub line (ci + 1) (String.length line - ci - 1) in
            if String.length raw > 0 && raw.[0] = ' ' then String.sub raw 1 (String.length raw - 1)
            else raw
          in
          let iv what = int_field what v in
          (match key with
          | "app" -> app := Some v
          | "argv" ->
            argv := List.map (fun a -> str_field "argv" [ a ]) (String.split_on_char ' ' v)
          | "mech" -> (
            match Mech.of_string v with
            | Some m -> mech := Some m
            | None -> fail "unknown mechanism: %S" v)
          | "isa" -> (
            match K23_isa.Isa.of_string v with
            | Some isa -> cfg := { !cfg with World.Config.isa = isa }
            | None -> fail "unknown isa: %S" v)
          | "ncores" -> cfg := { !cfg with World.Config.ncores = iv "ncores" }
          | "quantum" -> cfg := { !cfg with World.Config.quantum = iv "quantum" }
          | "seed" -> cfg := { !cfg with World.Config.seed = iv "seed" }
          | "aslr" -> cfg := { !cfg with World.Config.aslr = iv "aslr" <> 0 }
          | "predecode" -> cfg := { !cfg with World.Config.predecode = iv "predecode" <> 0 }
          | "cost" -> cfg := { !cfg with World.Config.cost = cost_of_string v }
          | "faults" -> (
            match Faults.of_string v with
            | Some p -> cfg := { !cfg with World.Config.faults = p }
            | None -> fail "bad fault plan: %S" v)
          | "root" -> root := Some (iv "root")
          | "console" -> console := str_field "console" [ v ]
          | "fate" -> (
            match String.split_on_char ' ' v with
            | [ pid; "exit"; n ] -> fates := (int_field "pid" pid, Exit (int_field "status" n)) :: !fates
            | [ pid; "killed"; n ] ->
              fates := (int_field "pid" pid, Killed (int_field "signal" n)) :: !fates
            | [ pid; "running" ] -> fates := (int_field "pid" pid, Running) :: !fates
            | _ -> fail "bad fate line: %S" v)
          | "events" -> nevents := Some (iv "events")
          | _ -> () (* unknown header keys are skipped: forward compatibility *)));
        header restl
    in
    let body = header rest in
    let events =
      List.filteri (fun _ l -> String.trim l <> "") body
      |> List.mapi (fun i l -> event_of_line (i + 1) l)
    in
    (match !nevents with
    | Some n when n <> List.length events ->
      fail "truncated recording: header says %d events, body has %d" n (List.length events)
    | _ -> ());
    let req what = function Some x -> x | None -> fail "missing %s header" what in
    {
      rc_app = req "app" !app;
      rc_argv = !argv;
      rc_mech = req "mech" !mech;
      rc_cfg = !cfg;
      rc_root = req "root" !root;
      rc_console = !console;
      rc_fates = List.rev !fates;
      rc_events = events;
    }
  | first :: _ when String.length first >= 15 && String.sub first 0 15 = "# k23 recording" ->
    fail "unsupported recording version: %S" first
  | _ -> fail "not a k23 recording (missing %S header)" magic

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let save ~path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string r))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
