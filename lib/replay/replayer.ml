(** The replayer: re-drive a fresh world from a {!Recording.t} and
    check it against the log, event by event, as it runs.

    Replay rebuilds a world from the recording's config (same seed,
    cost model, fault plan — so ASLR draws, cost skew and fault dice
    re-roll identically), re-launches the app under the recorded
    mechanism, and installs two live hooks:

    - the {e substitution} hook ([Kern.world.replay_exit]): every
      completing syscall's result is replaced by the recorded result
      for that thread's next matching [Syscall_exit], so the replayed
      world re-observes the recorded inputs even where the live
      implementation would diverge (rr's "replay reads from the log"
      — scheduling and signal delivery points need no forcing here
      because they are config-deterministic, and the diff below
      verifies exactly that);
    - the {e diff} observer ([Trace.on_event]): each live event is
      compared against the recorded stream at the cursor; the first
      mismatch halts the world and is reported with ±context in
      {!Trace_diff.divergence} shape.

    The same observer implements time travel: [~at:n] halts the world
    the instant event [n] is emitted — while machine state is live —
    and dumps the faulting thread's registers, the process's memory
    map, and its fd table. *)

module Event = K23_obs.Event
module Trace = K23_obs.Trace
module Trace_diff = K23_obs.Trace_diff
module Render = K23_obs.Render
module Mech = K23_eval.Mech
module K23 = K23_core.K23
open K23_kernel
open K23_userland

type stop = {
  st_index : int;  (** event index the world halted at *)
  st_event : Event.t;
  st_state : string;  (** rendered regs / maps / fd-table dump *)
}

type outcome = {
  o_total : int;  (** recorded events *)
  o_checked : int;  (** live events verified equal before halt/end *)
  o_divergence : Trace_diff.divergence option;  (** [None] = streams agree *)
  o_console_ok : bool;  (** root console matches (true when halted early) *)
  o_fates_ok : bool;  (** per-pid fates match (true when halted early) *)
  o_stop : stop option;  (** the [~at] inspector dump, if requested and reached *)
}

(** A replay is clean when the stream never diverged and the
    end-of-run state checks (skipped on an [~at] halt) passed. *)
let ok o = o.o_divergence = None && o.o_console_ok && o.o_fates_ok

(* ------------------------------------------------------------------ *)
(* State dump (the --at inspector)                                     *)

let fd_to_string = function
  | Kern.Fd_file { path; pos; _ } -> Printf.sprintf "file %s pos=%d" path pos
  | Kern.Fd_console _ -> "console"
  | Kern.Fd_listener _ -> "listener"
  | Kern.Fd_conn (_, ep) -> Printf.sprintf "conn.%s" (match ep with Net.A -> "a" | Net.B -> "b")
  | Kern.Fd_pipe_r _ -> "pipe.r"
  | Kern.Fd_pipe_w _ -> "pipe.w"
  | Kern.Fd_devnull -> "/dev/null"

let dump_state (w : Kern.world) ~index (ev : Event.t) =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "stopped at event #%d: %s\n" index (Render.human_event ~namer:Sysno.name ev);
  (match List.find_opt (fun (q : Kern.proc) -> q.Kern.pid = ev.Event.ev_pid) w.Kern.procs with
  | None -> pr "(no process context: pid %d)\n" ev.Event.ev_pid
  | Some p ->
    pr "pid %d cmd %s\n" p.Kern.pid p.Kern.cmd;
    (match List.find_opt (fun (th : Kern.thread) -> th.Kern.tid = ev.Event.ev_tid) p.Kern.threads with
    | None -> pr "(tid %d not live)\n" ev.Event.ev_tid
    | Some th ->
      pr "regs (tid %d):\n%s\n" th.Kern.tid
        (Format.asprintf "%a" K23_machine.Regs.pp th.Kern.regs));
    let maps = Kern.maps_string p in
    pr "maps:\n%s" maps;
    if maps = "" || maps.[String.length maps - 1] <> '\n' then pr "\n";
    pr "fds:\n";
    Hashtbl.fold (fun fd d acc -> (fd, d) :: acc) p.Kern.fds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (fd, d) -> pr "  %d -> %s\n" fd (fd_to_string d)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

(* Divergence at live index [i] against the recorded stream, in
   {!Trace_diff.divergence} shape: left = recorded, right = live.
   The shared context is the verified prefix expected[0..i-1]; the
   recorded side also contributes up to [context_len] following
   events.  The live side halts at the mismatch, so [after_right] is
   empty by construction. *)
let mismatch (expected : Event.t array) i (live : Event.t option) =
  let total = Array.length expected in
  let shared = min i total in
  let lo = max 0 (shared - Trace_diff.context_len) in
  let after_left =
    if i < total then
      let n = min Trace_diff.context_len (total - i - 1) in
      if n <= 0 then [] else Array.to_list (Array.sub expected (i + 1) n)
    else []
  in
  {
    Trace_diff.index = i;
    left = (if i < total then Some expected.(i) else None);
    right = live;
    context = Array.to_list (Array.sub expected lo (shared - lo));
    after_left;
    after_right = [];
  }

(** Re-drive [r] and diff.  [~at:n] halts the world when live event
    [n] is emitted (after verifying it) and captures the inspector
    dump.  [register] must install the same app set the recorder's
    did.  Returns [Error e] if the mechanism fails to launch. *)
let replay ?at ?(max_steps = Recorder.default_max_steps)
    ?(register = fun (_ : Kern.world) -> ()) (r : Recording.t) =
  let w = Sim.create_world_cfg r.Recording.rc_cfg in
  register w;
  if Mech.needs_offline r.Recording.rc_mech then begin
    ignore (K23.offline_run w ~path:r.Recording.rc_app ());
    K23.seal_logs w
  end;
  Kern.fault_reset w;
  let t = Kern.ktrace_enable ~unbounded:true w in
  let expected = Array.of_list r.Recording.rc_events in
  let total = Array.length expected in
  let idx = ref 0 in
  let div = ref None in
  let stop = ref None in
  let halted () = !div <> None || !stop <> None in
  (* recorded syscall results, FIFO per (pid, tid): the substitution
     queues.  Results are popped only when the completing nr matches
     the head — an interposer re-issue completes as the same nr, so
     the queues stay aligned through SIGSYS round trips. *)
  let results : (int * int, (int * int) Queue.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.ev_payload with
      | Event.Syscall_exit { nr; ret } ->
        let key = (e.Event.ev_pid, e.Event.ev_tid) in
        let q =
          match Hashtbl.find_opt results key with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace results key q;
            q
        in
        Queue.add (nr, ret) q
      | _ -> ())
    r.Recording.rc_events;
  w.Kern.replay_exit <-
    Some
      (fun th ~nr ~ret ->
        match Hashtbl.find_opt results (th.Kern.t_proc.Kern.pid, th.Kern.tid) with
        | None -> ret
        | Some q -> (
          match Queue.peek_opt q with
          | Some (rnr, rret) when rnr = nr ->
            ignore (Queue.pop q);
            rret
          | _ -> ret));
  t.Trace.on_event <-
    Some
      (fun ev ->
        if not (halted ()) then begin
          let i = !idx in
          if i < total && Event.equal expected.(i) ev then begin
            idx := i + 1;
            match at with
            | Some n when i = n -> stop := Some { st_index = i; st_event = ev; st_state = dump_state w ~index:i ev }
            | _ -> ()
          end
          else div := Some (mismatch expected i (Some ev))
        end);
  let finish root =
    w.Kern.replay_exit <- None;
    t.Trace.on_event <- None;
    (* a live stream that ended early (fewer events than recorded) is
       a divergence too: the left side goes on, the right ended *)
    (match !div with
    | Some _ -> ()
    | None ->
      if !stop = None && !idx < total then div := Some (mismatch expected !idx None));
    let clean_end = !div = None && !stop = None in
    {
      o_total = total;
      o_checked = !idx;
      o_divergence = !div;
      o_console_ok = (not clean_end) || World.stdout_of root = r.Recording.rc_console;
      o_fates_ok = (not clean_end) || Recording.fates_of_world w = r.Recording.rc_fates;
      o_stop = !stop;
    }
  in
  match
    Mech.launch r.Recording.rc_mech w ~path:r.Recording.rc_app
      ?argv:(if r.Recording.rc_argv = [] then None else Some r.Recording.rc_argv)
      ()
  with
  | Error e ->
    w.Kern.replay_exit <- None;
    t.Trace.on_event <- None;
    Error e
  | Ok (p, _stats) ->
    (try Kern.run ~max_steps ~until:(fun () -> halted () || Kern.proc_dead p) w
     with Kern.Deadlock _ -> ());
    Ok (finish p)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render (r : Recording.t) (o : outcome) =
  let b = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "replay %s under %s: " r.Recording.rc_app (Mech.to_string r.Recording.rc_mech);
  (match o.o_divergence with
  | Some d ->
    pr "DIVERGED after %d/%d events\n" o.o_checked o.o_total;
    pr "%s" (Trace_diff.render ~namer:Sysno.name (Trace_diff.Diverged d))
  | None -> (
    match o.o_stop with
    | Some s ->
      pr "halted at event %d/%d (--at)\n" s.st_index o.o_total;
      pr "%s" s.st_state
    | None ->
      pr "identical (%d events), console %s, fates %s\n" o.o_total
        (if o.o_console_ok then "ok" else "DIFFER")
        (if o.o_fates_ok then "ok" else "DIFFER")));
  Buffer.contents b

let render_json (r : Recording.t) (o : outcome) =
  let b = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"app\":\"%s\",\"mech\":\"%s\",\"events\":%d,\"checked\":%d,"
    (Render.json_escape r.Recording.rc_app)
    (Render.json_escape (Mech.to_string r.Recording.rc_mech))
    o.o_total o.o_checked;
  (match o.o_divergence with
  | None -> pr "\"divergence\":null,"
  | Some d ->
    let side = function
      | None -> "null"
      | Some e -> Render.json_event ~namer:Sysno.name e
    in
    pr "\"divergence\":{\"index\":%d,\"recorded\":%s,\"live\":%s}," d.Trace_diff.index
      (side d.Trace_diff.left) (side d.Trace_diff.right));
  (match o.o_stop with
  | None -> pr "\"stop\":null,"
  | Some s ->
    pr "\"stop\":{\"index\":%d,\"state\":\"%s\"}," s.st_index (Render.json_escape s.st_state));
  pr "\"console_ok\":%b,\"fates_ok\":%b,\"ok\":%b}" o.o_console_ok o.o_fates_ok (ok o);
  Buffer.contents b
