(** The recorder: run an app under a mechanism with an unbounded
    ktrace sink and package the run as a {!Recording.t}.

    There is no separate "record mode" in the kernel — the simulator
    is deterministic given its config, so recording is just a normal
    run with the complete event stream retained (rr's insight inverted:
    where rr must capture nondeterministic inputs because the host OS
    is uncontrolled, here the config {e is} the nondeterminism, and
    the stream is captured as the oracle for replay).  The setup
    sequence below (register, offline phase, [fault_reset], sink,
    launch) mirrors [Oracle.launch_in] exactly: the fault schedule's
    per-nr tick clocks start from zero at the measured run in both
    places, so a recording of a faulty run replays the same dice. *)

module Mech = K23_eval.Mech
module K23 = K23_core.K23
open K23_kernel
open K23_userland

let default_max_steps = 200_000_000

(** Record one run.  [register] installs the app(s) in the fresh
    world (coreutils for the CLI, the generated program for fuzz);
    [argv] defaults to the mechanism's own convention.  Returns
    [Error e] when the mechanism fails to launch. *)
let record ?(cfg = World.Config.default) ?(max_steps = default_max_steps)
    ?(register = fun (_ : Kern.world) -> ()) ?(argv = []) ~mech ~path () =
  (* the recorder owns the sink (unbounded); a config-enabled bounded
     ring would shadow it and drop events *)
  let cfg = { cfg with World.Config.ktrace = false } in
  let w = Sim.create_world_cfg cfg in
  register w;
  if Mech.needs_offline mech then begin
    ignore (K23.offline_run w ~path ());
    K23.seal_logs w
  end;
  (* offline phase consumed fault ticks a native run never sees:
     rewind so the measured run starts the schedule at tick 0 *)
  Kern.fault_reset w;
  let t = Kern.ktrace_enable ~unbounded:true w in
  match Mech.launch mech w ~path ?argv:(if argv = [] then None else Some argv) () with
  | Error e -> Error e
  | Ok (p, _stats) ->
    (try World.run_until_exit ~max_steps w p with Kern.Deadlock _ -> ());
    Ok
      {
        Recording.rc_app = path;
        rc_argv = argv;
        rc_mech = mech;
        rc_cfg = cfg;
        rc_root = p.Kern.pid;
        rc_console = World.stdout_of p;
        rc_fates = Recording.fates_of_world w;
        rc_events = K23_obs.Trace.events t;
      }
