(** Event-stream comparison: the determinism checker.

    Two runs of the same seeded world must produce structurally equal
    event streams; [diff] finds the first divergence and reports it
    with enough context to debug: the event index, both differing
    events, and up to [context_len] events on *either side* of the
    split (shared predecessors plus each stream's following events).
    This is the rr-style divergence check turned into a library: the
    determinism test asserts [Identical], and the replayer
    (lib/replay) reports divergences in the same shape. *)

type divergence = {
  index : int;  (** first differing position *)
  left : Event.t option;  (** [None] = stream ended early *)
  right : Event.t option;
  context : Event.t list;  (** up to [context_len] shared events before the split *)
  after_left : Event.t list;  (** up to [context_len] events past the split, left stream *)
  after_right : Event.t list;  (** same, right stream *)
}

type verdict = Identical of int  (** stream length *) | Diverged of divergence

let context_len = 3

let take n l = List.filteri (fun j _ -> j < n) l

let diff (a : Event.t list) (b : Event.t list) : verdict =
  let rec go i ctx a b =
    match (a, b) with
    | [], [] -> Identical i
    | x :: a', y :: b' when Event.equal x y ->
      (* keep the most recent [context_len] shared events, newest first *)
      let keep = take (context_len - 1) ctx in
      go (i + 1) (x :: keep) a' b'
    | _ ->
      let hd = function [] -> None | x :: _ -> Some x in
      let tl = function [] -> [] | _ :: t -> t in
      Diverged
        {
          index = i;
          left = hd a;
          right = hd b;
          context = List.rev ctx;
          after_left = take context_len (tl a);
          after_right = take context_len (tl b);
        }
  in
  go 0 [] a b

let is_identical = function Identical _ -> true | Diverged _ -> false

let render ?namer verdict =
  match verdict with
  | Identical n -> Printf.sprintf "identical (%d events)\n" n
  | Diverged { index; left; right; context; after_left; after_right } ->
    let buf = Buffer.create 256 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "streams diverge at event %d\n" index;
    let nctx = List.length context in
    List.iteri
      (fun j e -> pr "  #%-5d ... %s\n" (index - nctx + j) (Render.human_event ?namer e))
      context;
    let side tag = function
      | Some e -> pr "  #%-5d %s: %s\n" index tag (Render.human_event ?namer e)
      | None -> pr "  #%-5d %s: <end of stream>\n" index tag
    in
    side "left " left;
    side "right" right;
    let after tag evs =
      List.iteri
        (fun j e -> pr "  #%-5d %s+ %s\n" (index + 1 + j) tag (Render.human_event ?namer e))
        evs
    in
    after "left " after_left;
    after "right" after_right;
    Buffer.contents buf
