(** Event-stream comparison: the determinism checker.

    Two runs of the same seeded world must produce structurally equal
    event streams; [diff] finds the first divergence and reports it
    with enough context to debug (index, both events, a few
    predecessors).  This is the rr-style divergence check turned into a
    library: the determinism test asserts [Identical], and a future
    record/replay harness can bisect with the reported index. *)

type divergence = {
  index : int;  (** first differing position *)
  left : Event.t option;  (** [None] = stream ended early *)
  right : Event.t option;
  context : Event.t list;  (** up to [context_len] shared events before the split *)
}

type verdict = Identical of int  (** stream length *) | Diverged of divergence

let context_len = 5

let diff (a : Event.t list) (b : Event.t list) : verdict =
  let rec go i ctx a b =
    match (a, b) with
    | [], [] -> Identical i
    | x :: a', y :: b' when Event.equal x y ->
      (* keep the most recent [context_len] shared events, newest first *)
      let keep = List.filteri (fun j _ -> j < context_len - 1) ctx in
      go (i + 1) (x :: keep) a' b'
    | _ ->
      let hd = function [] -> None | x :: _ -> Some x in
      Diverged { index = i; left = hd a; right = hd b; context = List.rev ctx }
  in
  go 0 [] a b

let is_identical = function Identical _ -> true | Diverged _ -> false

let render ?namer verdict =
  match verdict with
  | Identical n -> Printf.sprintf "identical (%d events)\n" n
  | Diverged { index; left; right; context } ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "streams diverge at event %d\n" index);
    List.iter
      (fun e -> Buffer.add_string buf (Printf.sprintf "  ... %s\n" (Render.human_event ?namer e)))
      context;
    let side tag = function
      | Some e -> Buffer.add_string buf (Printf.sprintf "  %s: %s\n" tag (Render.human_event ?namer e))
      | None -> Buffer.add_string buf (Printf.sprintf "  %s: <end of stream>\n" tag)
    in
    side "left " left;
    side "right" right;
    Buffer.contents buf
