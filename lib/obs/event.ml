(** ktrace event taxonomy.

    One structured, cycle-stamped record per observable kernel action.
    Events are plain immutable data — integers and short strings only —
    so two runs of a deterministic world produce structurally equal
    event streams (the contract {!Trace_diff} checks).  Syscall numbers
    are stored raw; renderers accept a [namer] to print symbolic names
    without this library depending on the kernel's syscall table. *)

type stop_kind = Entry | Exit

let stop_kind_to_string = function Entry -> "entry" | Exit -> "exit"

(** What happened.  [owner] strings come from the kernel's region
    accounting ("app", "libc", "interposer", ...); [verdict] strings
    from the seccomp evaluator ("allow", "trap", ...). *)
type payload =
  | Syscall_enter of { nr : int; site : int; owner : string; args : int array }
  | Syscall_exit of { nr : int; ret : int }
  | Signal_deliver of { signo : int; sysno : int; site : int }
  | Sigreturn of { depth : int }  (** remaining frame depth after restore *)
  | Sud_toggle of { armed : bool; sel_addr : int; allow_lo : int; allow_hi : int }
  | Sud_block of { nr : int; site : int }  (** SUD diverted this call to SIGSYS *)
  | Seccomp of { nr : int; verdict : string }
  | Ptrace_stop of { kind : stop_kind; nr : int }
  | Code_write of { addr : int; len : int }  (** cross-core code-write barrier *)
  | Fault of { access : string; addr : int; rip : int }
  | Exec of { path : string }  (** execve committed; per-proc counters reset *)
  | Vdso_call of { sym : string }  (** user-space fast path, no kernel entry *)
  | Sched_switch of { core : int }  (** a different thread started on [core] *)
  | Req_send of { conn : int; req : int; sched : int }
      (** load-generator request [req] written to connection fd [conn];
          [sched] is the open-loop arrival process' scheduled send time
          in cycles (equal to the emission stamp minus any client-side
          backlog), so latency read from the event stream can include
          coordinated-omission delay *)
  | Req_recv of { conn : int; req : int }
      (** the matching response fully received (framed read complete);
          latency = this event's cycle stamp - the pair's [sched] *)
  | Fault_injected of { nr : int; site : int; kind : string }
      (** the fault plane fired on this syscall; [kind] names the
          channel ("eintr", "short", "eagain", "emfile", "enfile",
          "enomem", "reset") *)
  | Syscall_restarted of { nr : int; site : int }
      (** ERESTARTSYS-style restart: the blocked call was torn down and
          rip rewound to the syscall instruction, so the very next
          kernel entry of this thread re-executes it — through the
          interposer again, under interposition *)
  | Annot of string  (** free-form tag (mechanism launches use "mech:...") *)

type t = {
  ev_cycles : int;  (** issuing core's cycle counter at emission *)
  ev_pid : int;  (** 0 for events with no process context *)
  ev_tid : int;
  ev_payload : payload;
}

let make ~cycles ~pid ~tid payload =
  { ev_cycles = cycles; ev_pid = pid; ev_tid = tid; ev_payload = payload }

(** Short kind tag, used as the JSON ["ev"] field and as the default
    per-event counter name. *)
let kind = function
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall_exit"
  | Signal_deliver _ -> "signal_deliver"
  | Sigreturn _ -> "sigreturn"
  | Sud_toggle _ -> "sud_toggle"
  | Sud_block _ -> "sud_block"
  | Seccomp _ -> "seccomp"
  | Ptrace_stop _ -> "ptrace_stop"
  | Code_write _ -> "code_write"
  | Fault _ -> "fault"
  | Exec _ -> "exec"
  | Vdso_call _ -> "vdso_call"
  | Sched_switch _ -> "sched_switch"
  | Req_send _ -> "req_send"
  | Req_recv _ -> "req_recv"
  | Fault_injected _ -> "fault_injected"
  | Syscall_restarted _ -> "syscall_restarted"
  | Annot _ -> "annot"

(** Structural equality (int arrays compared element-wise). *)
let equal (a : t) (b : t) = a = b
