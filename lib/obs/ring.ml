(** Bounded ring buffer, overwrite-oldest.

    The ktrace event sink: a fixed-capacity circular array that keeps
    the most recent [capacity] entries and counts what it evicted.
    Overwriting (rather than blocking or growing) keeps recording
    allocation-free at steady state and makes the memory bound explicit
    — the same design as the kernel's own trace ring and rr's event
    buffers. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable next : int;  (** slot the next push writes *)
  mutable len : int;  (** live entries, <= cap *)
  mutable dropped : int;  (** entries overwritten since creation/clear *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; next = 0; len = 0; dropped = 0 }

let capacity r = r.cap
let length r = r.len
let dropped r = r.dropped

let push r x =
  if r.len = r.cap then r.dropped <- r.dropped + 1 else r.len <- r.len + 1;
  r.buf.(r.next) <- Some x;
  r.next <- (r.next + 1) mod r.cap

let clear r =
  Array.fill r.buf 0 r.cap None;
  r.next <- 0;
  r.len <- 0;
  r.dropped <- 0

(** Oldest-first snapshot of the live entries. *)
let to_list r =
  let start = (r.next - r.len + r.cap) mod r.cap in
  List.init r.len (fun i ->
      match r.buf.((start + i) mod r.cap) with
      | Some x -> x
      | None -> invalid_arg "Ring.to_list: corrupt ring")

(** Oldest-first fold without materialising a list: walks the circular
    array in place (once per-request latency events run through the
    ring at campaign scale, a [to_list] per fold would allocate the
    whole window on every summary pass). *)
let fold f acc r =
  let start = (r.next - r.len + r.cap) mod r.cap in
  let acc = ref acc in
  for i = 0 to r.len - 1 do
    match r.buf.((start + i) mod r.cap) with
    | Some x -> acc := f !acc x
    | None -> invalid_arg "Ring.fold: corrupt ring"
  done;
  !acc

let iter f r = fold (fun () x -> f x) () r
