(** Ring buffer event sink: bounded overwrite-oldest, or unbounded.

    The default ktrace sink is a fixed-capacity circular array that
    keeps the most recent [capacity] entries and counts what it
    evicted.  Overwriting (rather than blocking or growing) keeps
    recording allocation-free at steady state and makes the memory
    bound explicit — the same design as the kernel's own trace ring
    and rr's event buffers.

    The recorder (lib/replay) needs the complete stream: a recording
    with silently-dropped events can never replay.  [create_unbounded]
    builds a ring that grows geometrically instead of overwriting, so
    [dropped] stays 0 by construction and every push is retained. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable cap : int;
  bounded : bool;  (** false = grow on full instead of overwriting *)
  mutable next : int;  (** slot the next push writes *)
  mutable len : int;  (** live entries, <= cap *)
  mutable dropped : int;  (** entries overwritten since creation/clear *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; bounded = true; next = 0; len = 0; dropped = 0 }

let default_initial = 1024

let create_unbounded ?(initial = default_initial) () =
  if initial <= 0 then invalid_arg "Ring.create_unbounded: initial must be positive";
  { buf = Array.make initial None; cap = initial; bounded = false; next = 0; len = 0; dropped = 0 }

let capacity r = r.cap
let length r = r.len
let dropped r = r.dropped
let bounded r = r.bounded

(* Double the array, unrolling the circular window so the oldest entry
   lands at index 0 (after a grow, [next] never wraps until the next
   grow, since len = old cap < new cap). *)
let grow r =
  let ncap = r.cap * 2 in
  let nbuf = Array.make ncap None in
  let start = (r.next - r.len + r.cap) mod r.cap in
  for i = 0 to r.len - 1 do
    nbuf.(i) <- r.buf.((start + i) mod r.cap)
  done;
  r.buf <- nbuf;
  r.cap <- ncap;
  r.next <- r.len

let push r x =
  if r.len = r.cap then
    if r.bounded then r.dropped <- r.dropped + 1 else grow r;
  if r.len < r.cap then r.len <- r.len + 1;
  r.buf.(r.next) <- Some x;
  r.next <- (r.next + 1) mod r.cap

let clear r =
  Array.fill r.buf 0 r.cap None;
  r.next <- 0;
  r.len <- 0;
  r.dropped <- 0

(** Oldest-first snapshot of the live entries. *)
let to_list r =
  let start = (r.next - r.len + r.cap) mod r.cap in
  List.init r.len (fun i ->
      match r.buf.((start + i) mod r.cap) with
      | Some x -> x
      | None -> invalid_arg "Ring.to_list: corrupt ring")

(** Oldest-first fold without materialising a list: walks the circular
    array in place (once per-request latency events run through the
    ring at campaign scale, a [to_list] per fold would allocate the
    whole window on every summary pass). *)
let fold f acc r =
  let start = (r.next - r.len + r.cap) mod r.cap in
  let acc = ref acc in
  for i = 0 to r.len - 1 do
    match r.buf.((start + i) mod r.cap) with
    | Some x -> acc := f !acc x
    | None -> invalid_arg "Ring.fold: corrupt ring"
  done;
  !acc

let iter f r = fold (fun () x -> f x) () r
