(** The ktrace sink: a bounded event ring plus world-level counters.

    A world owns at most one [Trace.t]; the kernel guards every
    emission site with a single [match] on that option field, so a
    world with tracing off pays one branch and zero allocation per
    would-be event (the "zero-overhead when disabled" contract,
    verified by the simperf numbers in EXPERIMENTS.md). *)

type t = {
  ring : Event.t Ring.t;
  counters : Counters.t;
      (** world-level named counters: lifetime totals, never reset by
          execve (unlike the per-process registry in [Kern.counters]) *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  { ring = Ring.create ~capacity; counters = Counters.create () }

let emit t ~cycles ~pid ~tid payload =
  Ring.push t.ring (Event.make ~cycles ~pid ~tid payload)

(** Record an already-built event (lets a caller share one event value
    between the ring and another consumer, e.g. a debug renderer). *)
let push t ev = Ring.push t.ring ev

(** Oldest-first snapshot of the retained events. *)
let events t = Ring.to_list t.ring

let dropped t = Ring.dropped t.ring
let event_count t = Ring.length t.ring + Ring.dropped t.ring

let clear t =
  Ring.clear t.ring;
  Counters.clear t.counters
