(** The ktrace sink: an event ring plus world-level counters.

    A world owns at most one [Trace.t]; the kernel guards every
    emission site with a single [match] on that option field, so a
    world with tracing off pays one branch and zero allocation per
    would-be event (the "zero-overhead when disabled" contract,
    verified by the simperf numbers in EXPERIMENTS.md).

    The sink is bounded overwrite-oldest by default (tracing);
    [~unbounded:true] switches to a growing ring that never drops — the
    recorder's mode, where a lost event means an unreplayable log.  The
    optional [on_event] observer fires synchronously after each event
    is retained; the replayer uses it to diff the live stream against a
    recording *as the world runs* and to stop at an exact event index
    while machine state is still live. *)

type t = {
  ring : Event.t Ring.t;
  counters : Counters.t;
      (** world-level named counters: lifetime totals, never reset by
          execve (unlike the per-process registry in [Kern.counters]) *)
  mutable on_event : (Event.t -> unit) option;
      (** synchronous observer, called after each retained event *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?(unbounded = false) () =
  let ring =
    if unbounded then Ring.create_unbounded () else Ring.create ~capacity
  in
  { ring; counters = Counters.create (); on_event = None }

(** Record an already-built event (lets a caller share one event value
    between the ring and another consumer, e.g. a debug renderer). *)
let push t ev =
  Ring.push t.ring ev;
  match t.on_event with None -> () | Some f -> f ev

let emit t ~cycles ~pid ~tid payload = push t (Event.make ~cycles ~pid ~tid payload)

(** Oldest-first snapshot of the retained events. *)
let events t = Ring.to_list t.ring

let dropped t = Ring.dropped t.ring
let event_count t = Ring.length t.ring + Ring.dropped t.ring

let clear t =
  Ring.clear t.ring;
  Counters.clear t.counters
