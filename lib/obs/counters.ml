(** Named-counter registry.

    Replaces ad-hoc mutable counter fields with a string-keyed registry:
    any subsystem can mint a counter by incrementing it, and consumers
    enumerate whatever exists — no record edit per new metric.  Reads of
    absent counters are 0, so producers and consumers stay decoupled.

    Naming convention (dotted hierarchy): ["sys.app"], ["sys.nr.<n>"],
    ["sud.block"], ["ptrace.stop"], ["trap.fault"], ... *)

type t = { tbl : (string, int ref) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.tbl name (ref by)

let get t name = match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0

let clear t = Hashtbl.reset t.tbl

(* raw hash-order enumeration; never exposed *)
let fold_unsorted t = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tbl []

(** All counters, sorted by name at the source — the only enumeration
    order offered, so every consumer (renderers, summaries, reports)
    is deterministic regardless of hash order without sorting
    themselves. *)
let to_list t = List.sort (fun (a, _) (b, _) -> String.compare a b) (fold_unsorted t)

let to_alist = to_list

(** Merge [src] into [dst] (sum on collision).  Used to aggregate
    per-process registries into a world summary; addition commutes, so
    this can skip [to_list]'s sort. *)
let merge_into ~dst src = List.iter (fun (k, v) -> incr ~by:v dst k) (fold_unsorted src)
