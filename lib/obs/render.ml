(** Event renderers: the CLI's human-readable lines and a
    machine-readable JSON stream.

    [namer] maps syscall numbers to names (the kernel passes
    [Sysno.name]); the default prints raw numbers.  The human format
    for [Syscall_enter] reproduces the simulator's historical
    [w.trace] stderr line byte-for-byte, so routing the legacy debug
    path through this renderer changed no CLI output.

    JSON is emitted by hand (fixed key order, no dependency): every
    value is an int or an escaped string, so a seeded run renders to a
    byte-identical stream. *)

open Event

let default_namer nr = string_of_int nr

(* ------------------------------------------------------------------ *)
(* Human                                                               *)

let human_payload ?(namer = default_namer) ~pid ~tid payload =
  match payload with
  | Syscall_enter { nr; site; owner; args = _ } ->
    Printf.sprintf "[pid %d tid %d] %s(...) @%x (%s)" pid tid (namer nr) site owner
  | Syscall_exit { nr; ret } -> Printf.sprintf "[pid %d tid %d] %s -> %d" pid tid (namer nr) ret
  | Signal_deliver { signo; sysno; site } ->
    Printf.sprintf "[pid %d tid %d] signal %d (sysno %d) @%x" pid tid signo sysno site
  | Sigreturn { depth } -> Printf.sprintf "[pid %d tid %d] sigreturn (depth %d)" pid tid depth
  | Sud_toggle { armed; sel_addr; allow_lo; allow_hi } ->
    Printf.sprintf "[pid %d tid %d] sud %s sel=%x allow=[%x,%x)" pid tid
      (if armed then "arm" else "disarm")
      sel_addr allow_lo allow_hi
  | Sud_block { nr; site } ->
    Printf.sprintf "[pid %d tid %d] sud-block %s @%x" pid tid (namer nr) site
  | Seccomp { nr; verdict } ->
    Printf.sprintf "[pid %d tid %d] seccomp %s -> %s" pid tid (namer nr) verdict
  | Ptrace_stop { kind; nr } ->
    Printf.sprintf "[pid %d tid %d] ptrace-stop %s %s" pid tid (stop_kind_to_string kind)
      (namer nr)
  | Code_write { addr; len } -> Printf.sprintf "code-write @%x+%d" addr len
  | Fault { access = "ILL"; addr; rip = _ } -> Printf.sprintf "[pid %d] SIGILL at %x" pid addr
  | Fault { access; addr; rip } ->
    Printf.sprintf "[pid %d] fault %s @%x rip=%x" pid access addr rip
  | Exec { path } -> Printf.sprintf "[pid %d tid %d] exec %s" pid tid path
  | Vdso_call { sym } -> Printf.sprintf "[pid %d tid %d] vdso %s" pid tid sym
  | Sched_switch { core } -> Printf.sprintf "[core %d] switch -> pid %d tid %d" core pid tid
  | Req_send { conn; req; sched } ->
    Printf.sprintf "[pid %d tid %d] req %d -> fd %d (sched %d)" pid tid req conn sched
  | Req_recv { conn; req } -> Printf.sprintf "[pid %d tid %d] req %d <- fd %d" pid tid req conn
  | Fault_injected { nr; site; kind } ->
    Printf.sprintf "[pid %d tid %d] fault-inject %s %s @%x" pid tid kind (namer nr) site
  | Syscall_restarted { nr; site } ->
    Printf.sprintf "[pid %d tid %d] restart %s @%x" pid tid (namer nr) site
  | Annot s -> Printf.sprintf "# %s" s

let human_event ?namer (e : t) =
  human_payload ?namer ~pid:e.ev_pid ~tid:e.ev_tid e.ev_payload

let human_stream ?namer events =
  String.concat "" (List.map (fun e -> human_event ?namer e ^ "\n") events)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kv_int k v = Printf.sprintf "%S:%d" k v
let kv_str k v = Printf.sprintf "%S:\"%s\"" k (json_escape v)
let kv_bool k v = Printf.sprintf "%S:%b" k v

let json_fields ?(namer = default_namer) payload =
  match payload with
  | Syscall_enter { nr; site; owner; args } ->
    [
      kv_int "nr" nr;
      kv_str "name" (namer nr);
      kv_int "site" site;
      kv_str "owner" owner;
      Printf.sprintf "\"args\":[%s]"
        (String.concat "," (Array.to_list (Array.map string_of_int args)));
    ]
  | Syscall_exit { nr; ret } -> [ kv_int "nr" nr; kv_str "name" (namer nr); kv_int "ret" ret ]
  | Signal_deliver { signo; sysno; site } ->
    [ kv_int "signo" signo; kv_int "sysno" sysno; kv_int "site" site ]
  | Sigreturn { depth } -> [ kv_int "depth" depth ]
  | Sud_toggle { armed; sel_addr; allow_lo; allow_hi } ->
    [ kv_bool "armed" armed; kv_int "sel" sel_addr; kv_int "lo" allow_lo; kv_int "hi" allow_hi ]
  | Sud_block { nr; site } -> [ kv_int "nr" nr; kv_str "name" (namer nr); kv_int "site" site ]
  | Seccomp { nr; verdict } -> [ kv_int "nr" nr; kv_str "verdict" verdict ]
  | Ptrace_stop { kind; nr } ->
    [ kv_str "stop" (stop_kind_to_string kind); kv_int "nr" nr; kv_str "name" (namer nr) ]
  | Code_write { addr; len } -> [ kv_int "addr" addr; kv_int "len" len ]
  | Fault { access; addr; rip } -> [ kv_str "access" access; kv_int "addr" addr; kv_int "rip" rip ]
  | Exec { path } -> [ kv_str "path" path ]
  | Vdso_call { sym } -> [ kv_str "sym" sym ]
  | Sched_switch { core } -> [ kv_int "core" core ]
  | Req_send { conn; req; sched } ->
    [ kv_int "conn" conn; kv_int "req" req; kv_int "sched" sched ]
  | Req_recv { conn; req } -> [ kv_int "conn" conn; kv_int "req" req ]
  | Fault_injected { nr; site; kind } ->
    [ kv_int "nr" nr; kv_str "name" (namer nr); kv_int "site" site; kv_str "kind" kind ]
  | Syscall_restarted { nr; site } ->
    [ kv_int "nr" nr; kv_str "name" (namer nr); kv_int "site" site ]
  | Annot s -> [ kv_str "text" s ]

let json_event ?namer (e : t) =
  String.concat ","
    ([ kv_str "ev" (kind e.ev_payload); kv_int "cycles" e.ev_cycles; kv_int "pid" e.ev_pid;
       kv_int "tid" e.ev_tid ]
    @ json_fields ?namer e.ev_payload)
  |> Printf.sprintf "{%s}"

let json_counters counters =
  counters
  |> List.map (fun (k, v) -> Printf.sprintf "    %S: %d" k v)
  |> String.concat ",\n"
  |> Printf.sprintf "{\n%s\n  }"

(** The full `k23 trace --json` document: events (oldest first), the
    drop count, and a sorted counter object. *)
let json_stream ?namer ?(counters = []) ~dropped events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"events\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (json_event ?namer e);
      if i < List.length events - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    events;
  Buffer.add_string buf (Printf.sprintf "  ],\n  \"dropped\": %d,\n  \"counters\": " dropped);
  Buffer.add_string buf (json_counters counters);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
