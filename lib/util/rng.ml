(** Deterministic pseudo-random number generator (SplitMix64).

    The whole simulation must be reproducible bit-for-bit, so every source
    of "randomness" (ASLR slides, benchmark jitter, scheduler seeds) draws
    from an explicitly seeded [Rng.t] instead of [Stdlib.Random]. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(** [reseed t ~seed] rewinds [t] to exactly the state of
    [create ~seed]: the subsequent draw sequence is bit-identical.
    This is what lets a scratch world be reset in place instead of
    rebuilt — the world RNG must replay the same ASLR/jitter stream. *)
let reseed t ~seed = t.state <- Int64.of_int seed

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 step: well-distributed 64-bit outputs from a 64-bit counter. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is a uniform value in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

(** [float t] is a uniform float in [0, 1). *)
let float t =
  let v = Int64.to_int (next_int64 t) land ((1 lsl 53) - 1) in
  float_of_int v /. float_of_int (1 lsl 53)

(** [split t] derives an independent generator; used to give each
    subsystem its own stream without coupling their consumption order. *)
let split t = { state = next_int64 t }
