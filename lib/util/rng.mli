(** Deterministic SplitMix64 PRNG: every source of "randomness" in the
    simulation (ASLR slides, cost jitter) draws from an explicitly
    seeded stream, so runs reproduce bit-for-bit. *)

type t

val create : seed:int -> t

val reseed : t -> seed:int -> unit
(** Rewind to exactly the state of [create ~seed]; the subsequent draw
    sequence is bit-identical (world reset relies on this). *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** Derive an independent stream. *)
