(** Small statistics helpers used by the benchmark harness.

    The paper (Section 6.2) runs each experiment 10 times, discards the
    minimum and maximum as outliers, and reports the geometric mean of the
    overhead plus the standard deviation as a percentage of the mean.
    These helpers implement exactly that methodology. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (n - 1))

(** Standard deviation as a percentage of the mean, the paper's
    "(±0.042%)" figures. *)
let stddev_pct xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
    (* log of a non-positive sample is nan/-inf and would silently
       poison the whole mean; overhead ratios are positive by
       construction, so a bad sample is a harness bug — fail loudly. *)
    List.iter
      (fun x ->
        if not (Float.is_finite x) || x <= 0.0 then
          invalid_arg
            (Printf.sprintf "Stats.geomean: non-positive or non-finite sample %g" x))
      xs;
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

(** Median (lower of the two middle elements for even lengths, so the
    result is always an actual sample).  Rejects nan like
    {!drop_outliers}: ordering is meaningless with nan present. *)
let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty"
  | _ ->
    List.iter (fun x -> if Float.is_nan x then invalid_arg "Stats.median: nan sample") xs;
    let sorted = List.sort Float.compare xs in
    List.nth sorted ((List.length sorted - 1) / 2)

(** Drop one minimum and one maximum element (the paper's outlier rule).
    Lists shorter than 3 are returned unchanged. *)
let drop_outliers xs =
  (* Polymorphic [compare] orders nan below every float, so a nan
     sample used to masquerade as the minimum and evict a real run.
     There is no meaningful min/max with nan present — reject it. *)
  List.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.drop_outliers: nan sample")
    xs;
  if List.length xs < 3 then xs
  else
    let sorted = List.sort Float.compare xs in
    match sorted with
    | _min :: rest ->
      (match List.rev rest with _max :: kept -> List.rev kept | [] -> rest)
    | [] -> xs
