(** Small statistics helpers used by the benchmark harness.

    The paper (Section 6.2) runs each experiment 10 times, discards the
    minimum and maximum as outliers, and reports the geometric mean of the
    overhead plus the standard deviation as a percentage of the mean.
    These helpers implement exactly that methodology. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (n - 1))

(** Standard deviation as a percentage of the mean, the paper's
    "(±0.042%)" figures. *)
let stddev_pct xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
    (* log of a non-positive sample is nan/-inf and would silently
       poison the whole mean; overhead ratios are positive by
       construction, so a bad sample is a harness bug — fail loudly. *)
    List.iter
      (fun x ->
        if not (Float.is_finite x) || x <= 0.0 then
          invalid_arg
            (Printf.sprintf "Stats.geomean: non-positive or non-finite sample %g" x))
      xs;
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

(** Median (lower of the two middle elements for even lengths, so the
    result is always an actual sample).  Rejects nan like
    {!drop_outliers}: ordering is meaningless with nan present. *)
let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty"
  | _ ->
    List.iter (fun x -> if Float.is_nan x then invalid_arg "Stats.median: nan sample") xs;
    let sorted = List.sort Float.compare xs in
    List.nth sorted ((List.length sorted - 1) / 2)

(** Nearest-rank percentile on the raw samples: [percentile p xs] is
    the smallest sample such that at least [p]% of the samples are <=
    it.  [p] must lie in [0, 100]; p0 is the minimum, p100 the
    maximum, and the result is always an actual sample (p50 agrees
    with {!median}).  Rejects nan like {!median}: ordering is
    meaningless with nan present. *)
let percentile p xs =
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Stats.percentile: p %g outside [0,100]" p);
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    List.iter
      (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: nan sample")
      xs;
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(** Log-bucketed histogram over non-negative integer samples (latency
    in cycles).  HdrHistogram's log-linear layout: 16 linear
    sub-buckets per power-of-two decade, so the bucket containing a
    value is never wider than 1/16 (6.25%) of the value — percentile
    reads off the histogram stay within that relative error while the
    whole structure is one fixed 1040-slot int array, whatever the
    latency range.  Exact values below 16 get unit-width buckets. *)
module Hist = struct
  let sub_bits = 4
  let sub = 1 lsl sub_bits (* 16 sub-buckets per decade *)

  (* decades for values up to max_int (62 value bits) plus the linear
     prefix: index space is fixed and small *)
  let nslots = sub + (sub * (63 - sub_bits))

  type t = { counts : int array; mutable total : int; mutable sum : int }

  let create () = { counts = Array.make nslots 0; total = 0; sum = 0 }

  let index v =
    if v < sub then v
    else begin
      (* msb = floor log2 v >= sub_bits *)
      let msb = ref sub_bits in
      while v lsr (!msb + 1) > 0 do
        incr msb
      done;
      let exp = !msb - sub_bits in
      (* top [sub_bits+1] bits of v, minus the implicit leading one *)
      sub * exp + (v lsr exp)
    end

  (** Bucket [i] covers cycles [lo, hi). *)
  let bounds i =
    if i < sub then (i, i + 1)
    else begin
      let exp = (i / sub) - 1 in
      let lo = (i - (sub * exp)) lsl exp in
      (lo, lo + (1 lsl exp))
    end

  let add t v =
    let v = max 0 v in
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v

  let total t = t.total
  let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

  (** Non-empty buckets, ascending: [(lo, hi, count); ...]. *)
  let buckets t =
    let out = ref [] in
    for i = nslots - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bounds i in
        out := (lo, hi, t.counts.(i)) :: !out
      end
    done;
    !out

  (** Approximate percentile read off the buckets: the exclusive upper
      bound of the first bucket at which the cumulative count reaches
      [p]% of the total (<= 6.25% relative error by construction).
      Same [p] domain contract as {!percentile}. *)
  let percentile t p =
    if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
      invalid_arg (Printf.sprintf "Stats.Hist.percentile: p %g outside [0,100]" p);
    if t.total = 0 then invalid_arg "Stats.Hist.percentile: empty";
    let need = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let need = max 1 need in
    let seen = ref 0 and i = ref 0 and result = ref 0 in
    while !seen < need && !i < nslots do
      if t.counts.(!i) > 0 then begin
        seen := !seen + t.counts.(!i);
        result := snd (bounds !i)
      end;
      incr i
    done;
    !result
end

(** Drop one minimum and one maximum element (the paper's outlier rule).
    Lists shorter than 3 are returned unchanged. *)
let drop_outliers xs =
  (* Polymorphic [compare] orders nan below every float, so a nan
     sample used to masquerade as the minimum and evict a real run.
     There is no meaningful min/max with nan present — reject it. *)
  List.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.drop_outliers: nan sample")
    xs;
  if List.length xs < 3 then xs
  else
    let sorted = List.sort Float.compare xs in
    match sorted with
    | _min :: rest ->
      (match List.rev rest with _max :: kept -> List.rev kept | [] -> rest)
    | [] -> xs
