(** Statistics used by the benchmark harness, implementing the paper's
    §6.2 methodology: N runs, min/max dropped as outliers, geometric
    mean, standard deviation as a percentage of the mean. *)

val mean : float list -> float
val stddev : float list -> float
val stddev_pct : float list -> float
val geomean : float list -> float
(** Geometric mean.  Raises [Invalid_argument] on an empty list or on
    any non-finite or non-positive sample (whose log would silently
    poison the result with nan). *)

val median : float list -> float
(** Median; even lengths return the lower middle element, so the
    result is always an actual sample.  Raises [Invalid_argument] on
    an empty list or any nan sample. *)

val drop_outliers : float list -> float list
(** Drop one minimum and one maximum; lists shorter than 3 are
    returned unchanged.  Raises [Invalid_argument] if any sample is
    nan (min/max are meaningless under nan). *)
