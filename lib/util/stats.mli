(** Statistics used by the benchmark harness, implementing the paper's
    §6.2 methodology: N runs, min/max dropped as outliers, geometric
    mean, standard deviation as a percentage of the mean. *)

val mean : float list -> float
val stddev : float list -> float
val stddev_pct : float list -> float
val geomean : float list -> float
(** Geometric mean.  Raises [Invalid_argument] on an empty list or on
    any non-finite or non-positive sample (whose log would silently
    poison the result with nan). *)

val median : float list -> float
(** Median; even lengths return the lower middle element, so the
    result is always an actual sample.  Raises [Invalid_argument] on
    an empty list or any nan sample. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank percentile: the smallest
    sample such that at least [p]% of the samples are <= it.  The
    result is always an actual sample; [percentile 0.] is the minimum,
    [percentile 100.] the maximum, and [percentile 50.] agrees with
    {!median}.  Raises [Invalid_argument] on an empty list, any nan
    sample, or [p] outside [0, 100]. *)

(** Log-bucketed histogram over non-negative integer samples (latency
    in cycles): HdrHistogram's log-linear layout with 16 linear
    sub-buckets per power-of-two decade, so any bucket is at most
    6.25% of its value wide.  Fixed-size (no allocation per sample);
    negative samples are clamped to 0. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val total : t -> int
  val mean : t -> float

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets, ascending: [(lo, hi, count)] with the bucket
      covering cycles [lo, hi). *)

  val percentile : t -> float -> int
  (** Upper bound of the first bucket at which the cumulative count
      reaches [p]% of the total (<= 6.25% relative error).  Raises
      [Invalid_argument] on an empty histogram or [p] outside
      [0, 100]. *)
end

val drop_outliers : float list -> float list
(** Drop one minimum and one maximum; lists shorter than 3 are
    returned unchanged.  Raises [Invalid_argument] if any sample is
    nan (min/max are meaningless under nan). *)
