(** A fixed-length (AArch64-flavoured) ISA — a real machine target.

    The paper's Discussion (Section 7) argues that porting K23-style
    rewriting to fixed-instruction-length architectures such as ARM is
    {e less challenging} than on x86-64.  This module makes that claim
    executable: a 4-byte-instruction ISA with AArch64 encodings, an
    exact disassembler, and an atomic rewriter — together with the
    properties that distinguish it from the x86-64 case:

    - decoding positions are 4-byte aligned, so a syscall pattern
      embedded {e inside} another instruction can never be executed or
      misdecoded at an unaligned boundary (no P2a-style overlook, no
      P3b partial-instruction gadgets);
    - [svc #0] and a [b]/[bl] redirection have the {e same} size, so
      rewriting is a single aligned 32-bit store — architecturally
      atomic, eliminating the torn-write half of P5;
    - embedded data words (literal pools live in text on AArch64!) can
      still coincide with the [svc] encoding, so P3a-style false
      positives are reduced but not gone — which is why an offline
      validation phase remains useful even on ARM (and why ASC-Hook
      style patch-everything rewriting stays unsound: see
      [Asc_hook]).

    The instruction set is the subset an interposable Linux userland
    needs: immediate building (movz/movk/movn), ALU + flags, memory,
    branches, [svc], plus two simulator escapes in the
    exception-generation space ([Vcall] in hlt's encoding, [Brk]).
    Register operands are flat indices 0..31; index 31 is the stack
    pointer for loads/stores and "discard" (xzr) as an ALU
    destination.  Encodings follow the ARMv8-A manual for the
    instructions used. *)

type cond = K23_isa.Insn.cond

(** AArch64 condition-code nibble for a {!cond}. *)
let cond_code : cond -> int = function
  | K23_isa.Insn.Z -> 0x0 (* eq *)
  | K23_isa.Insn.NZ -> 0x1 (* ne *)
  | K23_isa.Insn.GE -> 0xa
  | K23_isa.Insn.LT -> 0xb
  | K23_isa.Insn.GT -> 0xc
  | K23_isa.Insn.LE -> 0xd

let cond_of_code = function
  | 0x0 -> Some K23_isa.Insn.Z
  | 0x1 -> Some K23_isa.Insn.NZ
  | 0xa -> Some K23_isa.Insn.GE
  | 0xb -> Some K23_isa.Insn.LT
  | 0xc -> Some K23_isa.Insn.GT
  | 0xd -> Some K23_isa.Insn.LE
  | _ -> None

type insn =
  | Svc of int  (** supervisor call: 1101_0100_000 imm16 00001 *)
  | Bl of int  (** branch-and-link, imm26 words: 100101 imm26 *)
  | B of int  (** branch: 000101 imm26 *)
  | B_cond of cond * int  (** b.cond, imm19 words: 0101_0100 imm19 0 cond *)
  | Br of int  (** branch to register *)
  | Blr of int  (** branch-and-link to register *)
  | Ret  (** 0xd65f03c0 (ret x30) *)
  | Nop  (** 0xd503201f *)
  | Movz of int * int  (** movz xD, #imm16: 1101_0010_100 imm16 rd *)
  | Movk of int * int * int  (** movk xD, #imm16, lsl #(16*hw) *)
  | Movn of int * int * int  (** movn xD, #imm16, lsl #(16*hw): xD <- ~(imm<<sh) *)
  | Mov_rr of int * int  (** mov xD, xM (orr xD, xzr, xM) *)
  | Add_imm of int * int * int  (** add xD, xN, #imm12 *)
  | Subs_imm of int * int * int  (** subs xD, xN, #imm12 (cmp when xD=31) *)
  | Add_rr of int * int * int  (** add xD, xN, xM *)
  | Sub_rr of int * int * int  (** sub xD, xN, xM *)
  | Subs_rr of int * int * int  (** subs xD, xN, xM (cmp when xD=31) *)
  | Ldr_lit of int * int  (** ldr xD, [pc + imm19*4] — 8-byte literal load *)
  | Ldr of int * int * int  (** ldr xT, [xN + #imm] (imm bytes, 8-aligned) *)
  | Str of int * int * int  (** str xT, [xN + #imm] *)
  | Ldrb of int * int * int  (** ldrb wT, [xN + #imm] *)
  | Strb of int * int * int  (** strb wT, [xN + #imm] *)
  | Vcall of int  (** simulator host-escape, hlt encoding space: 0xd44 imm16 00000 *)
  | Brk of int  (** brk #imm16 (SIGTRAP) *)

let mask19 = (1 lsl 19) - 1
let mask26 = (1 lsl 26) - 1

let encode = function
  | Svc imm -> 0xd4000001 lor ((imm land 0xffff) lsl 5)
  | Bl off -> 0x94000000 lor (off land mask26)
  | B off -> 0x14000000 lor (off land mask26)
  | B_cond (c, off) -> 0x54000000 lor ((off land mask19) lsl 5) lor cond_code c
  | Br rn -> 0xd61f0000 lor ((rn land 31) lsl 5)
  | Blr rn -> 0xd63f0000 lor ((rn land 31) lsl 5)
  | Ret -> 0xd65f03c0
  | Nop -> 0xd503201f
  | Movz (rd, imm) -> 0xd2800000 lor ((imm land 0xffff) lsl 5) lor (rd land 31)
  | Movk (rd, imm, hw) ->
    0xf2800000 lor ((hw land 3) lsl 21) lor ((imm land 0xffff) lsl 5) lor (rd land 31)
  | Movn (rd, imm, hw) ->
    0x92800000 lor ((hw land 3) lsl 21) lor ((imm land 0xffff) lsl 5) lor (rd land 31)
  | Mov_rr (rd, rm) -> 0xaa0003e0 lor ((rm land 31) lsl 16) lor (rd land 31)
  | Add_imm (rd, rn, imm) ->
    0x91000000 lor ((imm land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Subs_imm (rd, rn, imm) ->
    0xf1000000 lor ((imm land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Add_rr (rd, rn, rm) ->
    0x8b000000 lor ((rm land 31) lsl 16) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Sub_rr (rd, rn, rm) ->
    0xcb000000 lor ((rm land 31) lsl 16) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Subs_rr (rd, rn, rm) ->
    0xeb000000 lor ((rm land 31) lsl 16) lor ((rn land 31) lsl 5) lor (rd land 31)
  | Ldr_lit (rd, off) -> 0x58000000 lor ((off land mask19) lsl 5) lor (rd land 31)
  | Ldr (rt, rn, imm) ->
    0xf9400000 lor (((imm / 8) land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rt land 31)
  | Str (rt, rn, imm) ->
    0xf9000000 lor (((imm / 8) land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rt land 31)
  | Ldrb (rt, rn, imm) ->
    0x39400000 lor ((imm land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rt land 31)
  | Strb (rt, rn, imm) ->
    0x39000000 lor ((imm land 0xfff) lsl 10) lor ((rn land 31) lsl 5) lor (rt land 31)
  | Vcall n -> 0xd4400000 lor ((n land 0xffff) lsl 5)
  | Brk n -> 0xd4200000 lor ((n land 0xffff) lsl 5)

let sign_extend width v = if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let decode word : insn option =
  if word land 0xffe0001f = 0xd4000001 then Some (Svc ((word lsr 5) land 0xffff))
  else if word land 0xffe0001f = 0xd4400000 then Some (Vcall ((word lsr 5) land 0xffff))
  else if word land 0xffe0001f = 0xd4200000 then Some (Brk ((word lsr 5) land 0xffff))
  else if word land 0xfc000000 = 0x94000000 then Some (Bl (sign_extend 26 (word land mask26)))
  else if word land 0xfc000000 = 0x14000000 then Some (B (sign_extend 26 (word land mask26)))
  else if word land 0xff000010 = 0x54000000 then
    Option.map
      (fun c -> B_cond (c, sign_extend 19 ((word lsr 5) land mask19)))
      (cond_of_code (word land 0xf))
  else if word land 0xfffffc1f = 0xd61f0000 then Some (Br ((word lsr 5) land 31))
  else if word land 0xfffffc1f = 0xd63f0000 then Some (Blr ((word lsr 5) land 31))
  else if word = 0xd65f03c0 then Some Ret
  else if word = 0xd503201f then Some Nop
  else if word land 0xffe00000 = 0xd2800000 then
    Some (Movz (word land 31, (word lsr 5) land 0xffff))
  else if word land 0xff800000 = 0xf2800000 then
    Some (Movk (word land 31, (word lsr 5) land 0xffff, (word lsr 21) land 3))
  else if word land 0xff800000 = 0x92800000 then
    Some (Movn (word land 31, (word lsr 5) land 0xffff, (word lsr 21) land 3))
  else if word land 0xffe0ffe0 = 0xaa0003e0 then
    Some (Mov_rr (word land 31, (word lsr 16) land 31))
  else if word land 0xff000000 = 0x91000000 then
    Some (Add_imm (word land 31, (word lsr 5) land 31, (word lsr 10) land 0xfff))
  else if word land 0xff000000 = 0xf1000000 then
    Some (Subs_imm (word land 31, (word lsr 5) land 31, (word lsr 10) land 0xfff))
  else if word land 0xffe0fc00 = 0x8b000000 then
    Some (Add_rr (word land 31, (word lsr 5) land 31, (word lsr 16) land 31))
  else if word land 0xffe0fc00 = 0xcb000000 then
    Some (Sub_rr (word land 31, (word lsr 5) land 31, (word lsr 16) land 31))
  else if word land 0xffe0fc00 = 0xeb000000 then
    Some (Subs_rr (word land 31, (word lsr 5) land 31, (word lsr 16) land 31))
  else if word land 0xff000000 = 0x58000000 then
    Some (Ldr_lit (word land 31, sign_extend 19 ((word lsr 5) land mask19)))
  else if word land 0xffc00000 = 0xf9400000 then
    Some (Ldr (word land 31, (word lsr 5) land 31, ((word lsr 10) land 0xfff) * 8))
  else if word land 0xffc00000 = 0xf9000000 then
    Some (Str (word land 31, (word lsr 5) land 31, ((word lsr 10) land 0xfff) * 8))
  else if word land 0xffc00000 = 0x39400000 then
    Some (Ldrb (word land 31, (word lsr 5) land 31, (word lsr 10) land 0xfff))
  else if word land 0xffc00000 = 0x39000000 then
    Some (Strb (word land 31, (word lsr 5) land 31, (word lsr 10) land 0xfff))
  else None

(* little-endian 32-bit words, as AArch64 stores instructions *)
let word_of_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let bytes_of_word w =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (w land 0xff));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((w lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((w lsr 24) land 0xff));
  b

let assemble insns =
  let b = Buffer.create (4 * List.length insns) in
  List.iter (fun i -> Buffer.add_bytes b (bytes_of_word (encode i))) insns;
  Buffer.to_bytes b

(** Exact disassembly: on a fixed-length ISA the sweep {e is} the
    instruction stream — there is no resynchronisation problem. *)
let sweep (code : Bytes.t) ~base =
  let n = Bytes.length code / 4 in
  List.init n (fun i -> (base + (4 * i), decode (word_of_bytes code (4 * i))))

(** Syscall sites found by the sweep. *)
let find_svc_sites code ~base =
  sweep code ~base
  |> List.filter_map (function addr, Some (Svc _) -> Some addr | _ -> None)

(** Ground truth for tests: word-aligned positions whose 32-bit value
    encodes [svc] — on this ISA identical to what the sweep reports
    for code words; only embedded {e data} words can add to it. *)
let raw_svc_pattern_sites code ~base =
  let n = Bytes.length code / 4 in
  List.init n (fun i -> (base + (4 * i), word_of_bytes code (4 * i)))
  |> List.filter_map (fun (addr, w) ->
         if w land 0xffe0001f = 0xd4000001 then Some addr else None)

(** Rewrite an [svc] site to [bl target]: one aligned 32-bit store —
    architecturally atomic on AArch64, so the torn-write component of
    pitfall P5 cannot exist. *)
let rewrite_svc_to_bl code ~site_off ~rel_words =
  Bytes.blit (bytes_of_word (encode (Bl rel_words))) 0 code site_off 4

(** Build an arbitrary 63-bit immediate in [rd]: movz + up to three
    movk.  Small negatives (≥ -65536) via a single movn. *)
let li rd v =
  if v < 0 && v >= -65536 then [ Movn (rd, lnot v land 0xffff, 0) ]
  else begin
    let chunks = List.init 4 (fun i -> (i, (v lsr (16 * i)) land 0xffff)) in
    match List.filter (fun (_, c) -> c <> 0) chunks with
    | [] -> [ Movz (rd, 0) ]
    | (0, c0) :: rest ->
      Movz (rd, c0) :: List.map (fun (hw, c) -> Movk (rd, c, hw)) rest
    | rest ->
      (* low 16 bits zero: movz still clears the register *)
      Movz (rd, 0) :: List.map (fun (hw, c) -> Movk (rd, c, hw)) rest
  end

let to_string = function
  | Svc n -> Printf.sprintf "svc #%d" n
  | Bl o -> Printf.sprintf "bl %+d" o
  | B o -> Printf.sprintf "b %+d" o
  | B_cond (c, o) -> Printf.sprintf "b.%s %+d" (K23_isa.Insn.cond_to_string c) o
  | Br r -> Printf.sprintf "br x%d" r
  | Blr r -> Printf.sprintf "blr x%d" r
  | Ret -> "ret"
  | Nop -> "nop"
  | Movz (d, i) -> Printf.sprintf "movz x%d, #%d" d i
  | Movk (d, i, hw) -> Printf.sprintf "movk x%d, #%d, lsl #%d" d i (16 * hw)
  | Movn (d, i, hw) -> Printf.sprintf "movn x%d, #%d, lsl #%d" d i (16 * hw)
  | Mov_rr (d, m) -> Printf.sprintf "mov x%d, x%d" d m
  | Add_imm (d, n, i) -> Printf.sprintf "add x%d, x%d, #%d" d n i
  | Subs_imm (d, n, i) -> Printf.sprintf "subs x%d, x%d, #%d" d n i
  | Add_rr (d, n, m) -> Printf.sprintf "add x%d, x%d, x%d" d n m
  | Sub_rr (d, n, m) -> Printf.sprintf "sub x%d, x%d, x%d" d n m
  | Subs_rr (d, n, m) -> Printf.sprintf "subs x%d, x%d, x%d" d n m
  | Ldr_lit (d, o) -> Printf.sprintf "ldr x%d, [pc%+d]" d (4 * o)
  | Ldr (t, n, i) -> Printf.sprintf "ldr x%d, [x%d, #%d]" t n i
  | Str (t, n, i) -> Printf.sprintf "str x%d, [x%d, #%d]" t n i
  | Ldrb (t, n, i) -> Printf.sprintf "ldrb w%d, [x%d, #%d]" t n i
  | Strb (t, n, i) -> Printf.sprintf "strb w%d, [x%d, #%d]" t n i
  | Vcall n -> Printf.sprintf "vcall #%d" n
  | Brk n -> Printf.sprintf "brk #%d" n
