(** Fixed-length (AArch64-flavoured) ISA, grown from a Discussion-
    section study into a real machine target: aligned 4-byte decoding
    cannot desynchronise (no P2a overlook, no P3b partial-instruction
    gadgets) and [svc]→branch rewriting is one atomic aligned store
    (no torn-write P5).  Data words aliasing [svc] keep a residual P3a
    risk — literal pools live in text on AArch64 — so offline
    validation remains useful. *)

type cond = K23_isa.Insn.cond

val cond_code : cond -> int
val cond_of_code : int -> cond option

type insn =
  | Svc of int
  | Bl of int  (** branch-and-link, offset in words *)
  | B of int
  | B_cond of cond * int  (** offset in words *)
  | Br of int
  | Blr of int
  | Ret
  | Nop
  | Movz of int * int
  | Movk of int * int * int  (** rd, imm16, hw (shift = 16*hw) *)
  | Movn of int * int * int
  | Mov_rr of int * int
  | Add_imm of int * int * int
  | Subs_imm of int * int * int  (** cmp when rd = 31 *)
  | Add_rr of int * int * int
  | Sub_rr of int * int * int
  | Subs_rr of int * int * int
  | Ldr_lit of int * int
  | Ldr of int * int * int  (** byte offset, 8-aligned *)
  | Str of int * int * int
  | Ldrb of int * int * int
  | Strb of int * int * int
  | Vcall of int  (** simulator host-escape (hlt encoding space) *)
  | Brk of int

val encode : insn -> int
(** 32-bit instruction word (ARMv8-A encodings). *)

val decode : int -> insn option

val sign_extend : int -> int -> int

val word_of_bytes : Bytes.t -> int -> int
val bytes_of_word : int -> Bytes.t

val assemble : insn list -> Bytes.t

val sweep : Bytes.t -> base:int -> (int * insn option) list
(** Exact disassembly: on a fixed-length ISA there is no
    resynchronisation problem. *)

val find_svc_sites : Bytes.t -> base:int -> int list

val raw_svc_pattern_sites : Bytes.t -> base:int -> int list
(** Word-aligned positions whose value encodes [svc] (ground truth for
    aliasing tests — and exactly what an ASC-Hook-style patcher must
    treat as a site). *)

val rewrite_svc_to_bl : Bytes.t -> site_off:int -> rel_words:int -> unit
(** One aligned 32-bit store: architecturally atomic. *)

val li : int -> int -> insn list
(** [li rd v]: materialise immediate [v] in [xrd] (movz/movk/movn). *)

val to_string : insn -> string
