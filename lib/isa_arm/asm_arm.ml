(** Two-pass assembler DSL for the AArch64 backend.

    Mirrors {!K23_isa.Asm} (same item vocabulary, same two-pass
    constant-size layout) and emits the {e same} ISA-neutral
    {!K23_isa.Asm.program} record, so the mapper, loader and
    relocation machinery work unchanged on ARM images.

    The interesting difference is symbol addressing: x86 materialises
    absolute addresses with [mov r64, imm64] (a 10-byte instruction
    holding the 8-byte reloc slot {e inside} the instruction), while
    AArch64 has no 64-bit-immediate move — the idiomatic lowering is a
    pc-relative literal load.  [Mov_sym]/[Call_sym]/[Jmp_sym] therefore
    emit an inline literal pool:

    {v
      ldr  xN, [pc, #8]      ; load the 8-byte literal
      b    +16               ; skip over it
      .quad <reloc slot>     ; patched by the loader (R_AARCH64_ABS64)
      (blr/br x17)           ; Call_sym / Jmp_sym only
    v}

    which means {b data words live in executable text} — the authentic
    AArch64 property that keeps pitfall P3a alive on a fixed-width ISA
    (a literal whose value aliases the [svc] encoding is
    indistinguishable from code to any sweep). *)

open K23_isa

type item =
  | I of Arm.insn  (** a literal instruction *)
  | Label of string  (** local label; also exported as a symbol *)
  | Blob of bytes  (** raw bytes (literal pools, shellcode...) *)
  | Zeros of int  (** reserve n zero bytes *)
  | Strz of string  (** NUL-terminated string *)
  | Quad of int  (** 8-byte little-endian literal *)
  | J of string  (** b label *)
  | Jc of Insn.cond * string  (** b.cond label *)
  | Calll of string  (** bl label *)
  | Call_sym of string  (** call external symbol via inline literal + blr x17 *)
  | Jmp_sym of string  (** tail-jump to external symbol via br x17 *)
  | Mov_sym of int * string  (** xN := absolute address of symbol (reloc literal) *)
  | Vcall_named of string  (** host-function escape, resolved per-image *)
  | Section of Asm.section  (** switch emission section *)
  | Align of int  (** pad current section to a multiple *)

let err : 'a 'b. ('a, unit, string, 'b) format4 -> 'a =
 fun fmt -> Printf.ksprintf (fun s -> raise (Asm.Asm_error s)) fmt

let item_size = function
  | I _ | J _ | Jc _ | Calll _ | Vcall_named _ -> 4
  | Label _ | Section _ -> 0
  | Blob b -> Bytes.length b
  | Zeros n -> n
  | Strz s -> String.length s + 1
  | Quad _ -> 8
  | Call_sym _ | Jmp_sym _ -> 20 (* ldr x17,lit ; b +16 ; .quad ; blr/br x17 *)
  | Mov_sym _ -> 16 (* ldr xN,lit ; b +16 ; .quad *)
  | Align _ -> 0 (* variable; handled specially in layout *)

let nop_word = Arm.bytes_of_word (Arm.encode Arm.Nop)

let assemble (items : item list) : Asm.program =
  (* Pass 1: offsets + symbol table. *)
  let text_len = ref 0 and data_len = ref 0 in
  let symbols = ref [] in
  let sec = ref `Text in
  let off_of = function `Text -> text_len | `Data -> data_len in
  let layout =
    List.map
      (fun item ->
        (match item with Section s -> sec := s | _ -> ());
        let here = !(off_of !sec) in
        (match item with
        | Align n ->
          let pad = (n - (here mod n)) mod n in
          (off_of !sec) := here + pad
        | Label name -> symbols := (name, (!sec, here)) :: !symbols
        | other -> (off_of !sec) := here + item_size other);
        (item, !sec, here))
      items
  in
  let find_label name =
    match List.assoc_opt name !symbols with
    | Some (s, o) -> (s, o)
    | None -> err "undefined label %S" name
  in
  (* Pass 2: emit. *)
  let text = Bytes.make !text_len '\000'
  and data = Bytes.make !data_len '\000' in
  let relocs = ref [] in
  let vcalls = ref [] in
  let vcall_index name =
    match List.find_index (String.equal name) !vcalls with
    | Some i -> i
    | None ->
      vcalls := !vcalls @ [ name ];
      List.length !vcalls - 1
  in
  let put sec off b =
    let target = match sec with `Text -> text | `Data -> data in
    Bytes.blit b 0 target off (Bytes.length b)
  in
  let emit sec here insn =
    if sec = `Text && here land 3 <> 0 then
      err "arm insn at unaligned text offset %#x (%s)" here (Arm.to_string insn);
    put sec here (Arm.bytes_of_word (Arm.encode insn))
  in
  (* word displacement from the branch instruction itself (AArch64
     branches are pc-of-insn-relative, unlike x86's end-relative) *)
  let label_rel name sec here =
    let tsec, toff = find_label name in
    if tsec <> sec then err "cross-section branch to %S" name;
    if (toff - here) land 3 <> 0 then err "unaligned branch target %S" name;
    (toff - here) asr 2
  in
  let quad v =
    let b = Bytes.create 8 in
    for i = 0 to 7 do
      Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
    done;
    b
  in
  List.iter
    (fun (item, sec, here) ->
      match item with
      | Section _ | Label _ -> ()
      | Align n ->
        let pad = (n - (here mod n)) mod n in
        if sec = `Text && pad land 3 = 0 then
          for i = 0 to (pad / 4) - 1 do
            Bytes.blit nop_word 0 text (here + (4 * i)) 4
          done
        (* unaligned text padding / data padding stays zero *)
      | I insn -> emit sec here insn
      | Blob b -> put sec here b
      | Zeros _ -> ()
      | Strz s -> put sec here (Bytes.of_string s) (* trailing NUL already zero *)
      | Quad v -> put sec here (quad v)
      | J name -> emit sec here (Arm.B (label_rel name sec here))
      | Jc (c, name) -> emit sec here (Arm.B_cond (c, label_rel name sec here))
      | Calll name -> emit sec here (Arm.Bl (label_rel name sec here))
      | Call_sym name ->
        emit sec here (Arm.Ldr_lit (17, 2));
        emit sec (here + 4) (Arm.B 3);
        relocs := { Asm.reloc_section = sec; reloc_offset = here + 8; reloc_symbol = name } :: !relocs;
        emit sec (here + 16) (Arm.Blr 17)
      | Jmp_sym name ->
        emit sec here (Arm.Ldr_lit (17, 2));
        emit sec (here + 4) (Arm.B 3);
        relocs := { Asm.reloc_section = sec; reloc_offset = here + 8; reloc_symbol = name } :: !relocs;
        emit sec (here + 16) (Arm.Br 17)
      | Mov_sym (rd, name) ->
        emit sec here (Arm.Ldr_lit (rd, 2));
        emit sec (here + 4) (Arm.B 3);
        relocs := { Asm.reloc_section = sec; reloc_offset = here + 8; reloc_symbol = name } :: !relocs
      | Vcall_named name -> emit sec here (Arm.Vcall (vcall_index name)))
    layout;
  {
    Asm.text;
    data;
    symbols = List.rev !symbols;
    relocs = List.rev !relocs;
    vcalls = !vcalls;
  }
