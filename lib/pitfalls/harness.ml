(** Pitfall harness: runs every PoC under zpoline, lazypoline and K23
    and classifies the outcome — regenerating the paper's Table 3.

    "Handled" means the pitfall does not manifest: either the
    interposer is immune by design, or it detects the attempt and
    fails safe (abort), matching the paper's ✓/✗ semantics. *)

open K23_kernel
open K23_userland
module I = K23_interpose.Interpose
module Zp = K23_baselines.Zpoline
module Lp = K23_baselines.Lazypoline
module K23 = K23_core.K23

type pitfall = P1a | P1b | P2a | P2b | P3a | P3b | P4a | P4b | P5

let all_pitfalls = [ P1a; P1b; P2a; P2b; P3a; P3b; P4a; P4b; P5 ]

let pitfall_to_string = function
  | P1a -> "P1a"
  | P1b -> "P1b"
  | P2a -> "P2a"
  | P2b -> "P2b"
  | P3a -> "P3a"
  | P3b -> "P3b"
  | P4a -> "P4a"
  | P4b -> "P4b"
  | P5 -> "P5"

let pitfall_description = function
  | P1a -> "interposition bypass via LD_PRELOAD scrubbing"
  | P1b -> "interposition bypass via prctl(PR_SYS_DISPATCH_OFF)"
  | P2a -> "system call overlook: late-appearing code"
  | P2b -> "system call overlook: startup window + vdso"
  | P3a -> "misidentification by static disassembly"
  | P3b -> "attack-induced misidentification"
  | P4a -> "NULL execution silently misdirected"
  | P4b -> "NULL-check memory overhead"
  | P5 -> "runtime rewriting races"

type system = Zpoline | Lazypoline | K23_sys

let all_systems = [ Zpoline; Lazypoline; K23_sys ]

let system_to_string = function
  | Zpoline -> "zpoline"
  | Lazypoline -> "lazypoline"
  | K23_sys -> "K23"

type verdict = { handled : bool; detail : string }

(* --- plumbing ------------------------------------------------------- *)

let fresh_world ?quantum ?seed ?predecode () =
  let w = Sim.create_world ?quantum ?seed ?predecode () in
  Pocs.register_all w;
  w

let launch_under sys w ~path ?argv () =
  match sys with
  | Zpoline -> Zp.launch w ~variant:Zp.Ultra ~path ?argv ()
  | Lazypoline -> Lp.launch w ~path ?argv ()
  | K23_sys -> K23.launch w ~variant:K23.Ultra ~path ?argv ()

(** Run one PoC under one system.  For K23, the offline phase runs
    first with benign arguments, then the logs are sealed.
    [~ktrace:true] records the run's event stream and named counters
    (read them back via [w.Kern.ktrace]); recording stays off by
    default so Table 3 regeneration pays nothing. *)
let run_poc sys ?predecode ~path ?argv ?quantum ?(ktrace = false) ?(max_steps = 30_000_000) () =
  let w = fresh_world ?quantum ?predecode () in
  if ktrace then ignore (Kern.ktrace_enable w);
  (match sys with
  | K23_sys ->
    ignore (K23.offline_run w ~path ());
    K23.seal_logs w
  | Zpoline | Lazypoline -> ());
  match launch_under sys w ~path ?argv () with
  | Error e -> failwith (Printf.sprintf "PoC %s failed to launch: %d" path e)
  | Ok (p, stats) ->
    (try Kern.run ~max_steps ~until:(fun () -> Kern.proc_dead p) w
     with Kern.Deadlock _ -> ());
    (w, p, stats)

let count_500 (stats : I.stats) =
  Option.value ~default:0 (Hashtbl.find_opt stats.by_nr Sysno.bench_nonexistent)

let exit_desc (p : Kern.proc) =
  match (p.exit_status, p.term_signal) with
  | Some s, _ -> Printf.sprintf "exit %d" s
  | None, Some 6 -> "aborted (SIGABRT)"
  | None, Some 4 -> "killed (SIGILL)"
  | None, Some 11 -> "killed (SIGSEGV)"
  | None, Some s -> Printf.sprintf "killed (signal %d)" s
  | None, None -> "did not terminate"

(* --- the checks ----------------------------------------------------- *)

let check ?predecode sys pitfall : verdict =
  match pitfall with
  | P1a ->
    let _, _, stats = run_poc sys ?predecode ~path:Pocs.p1a_path () in
    let n = count_500 stats in
    {
      handled = n >= 10;
      detail =
        Printf.sprintf "%d/10 syscalls of the execve'd (empty-env) child interposed" n;
    }
  | P1b ->
    let _, _, stats = run_poc sys ?predecode ~path:Pocs.p1b_path () in
    let n = count_500 stats in
    if stats.aborts > 0 then
      { handled = true; detail = "prctl(PR_SYS_DISPATCH_OFF) detected; process aborted" }
    else
      {
        handled = n >= 10;
        detail = Printf.sprintf "%d/10 post-disable syscalls interposed" n;
      }
  | P2a ->
    let _, _, stats = run_poc sys ?predecode ~path:Pocs.p2a_path () in
    let n = count_500 stats in
    {
      handled = n >= 10;
      detail = Printf.sprintf "%d/10 syscalls from JIT-style code interposed" n;
    }
  | P2b ->
    let _, p, stats = run_poc sys ?predecode ~path:Pocs.p2b_path () in
    let missed = p.counters.c_app - stats.interposed in
    {
      handled = missed = 0 && p.counters.c_vdso = 0;
      detail =
        Printf.sprintf "%d syscalls missed (startup window %d); %d vdso calls bypassed"
          missed p.counters.c_startup p.counters.c_vdso;
    }
  | P3a ->
    let _, p, _ = run_poc sys ?predecode ~path:Pocs.p3a_path () in
    {
      handled = p.exit_status = Some 0;
      detail =
        (match p.exit_status with
        | Some 0 -> "embedded data intact"
        | Some 1 -> "embedded data corrupted by rewriting"
        | _ -> exit_desc p);
    }
  | P3b ->
    let _, p, _ =
      run_poc sys ?predecode ~path:Pocs.p3b_path ~argv:[ Pocs.p3b_path; "attack" ] ()
    in
    {
      handled = p.exit_status = Some 0;
      detail =
        (match p.exit_status with
        | Some 0 -> "partial instruction intact after hijack"
        | Some 1 -> "partial instruction corrupted by runtime rewriting"
        | _ -> exit_desc p);
    }
  | P4a ->
    let _, p, stats =
      run_poc sys ?predecode ~path:Pocs.p4a_path ~argv:[ Pocs.p4a_path; "attack" ] ()
    in
    if stats.aborts > 0 && p.term_signal = Some 6 then
      { handled = true; detail = "NULL execution detected; process aborted" }
    else if p.exit_status = Some 0 then
      { handled = false; detail = "NULL call silently misdirected into the trampoline" }
    else { handled = true; detail = exit_desc p }
  | P4b ->
    let _, p, _ = run_poc sys ?predecode ~path:Pocs.target_path () in
    let reserved, resident, desc =
      match sys with
      | Zpoline ->
        let r, c = Zp.check_memory_bytes p in
        (r, c, "address-space bitmap")
      | Lazypoline -> (0, 0, "no validation state (and no check)")
      | K23_sys ->
        let b = K23.check_memory_bytes p in
        (b, b, "Robin-Hood hash set")
    in
    {
      handled = reserved < (1 lsl 20);
      detail =
        Printf.sprintf "%s: %d bytes reserved, %d resident" desc reserved resident;
    }
  | P5 ->
    let _, p, _ = run_poc sys ?predecode ~path:Pocs.p5_path ~quantum:1 () in
    {
      handled = p.exit_status = Some 0;
      detail =
        (match (p.exit_status, p.term_signal) with
        | Some 0, _ -> "concurrent first executions completed safely"
        | _, Some 4 -> "torn 2-byte rewrite executed: SIGILL"
        | _ -> exit_desc p);
    }

(* --- Table 3 -------------------------------------------------------- *)

(** The paper's Table 3, as ground truth for tests and the bench
    harness. *)
let paper_expectation sys pitfall =
  match (sys, pitfall) with
  | Zpoline, (P1b | P3b | P4a | P5) -> true
  | Zpoline, (P1a | P2a | P2b | P3a | P4b) -> false
  | Lazypoline, (P2a | P3a | P4b) -> true
  | Lazypoline, (P1a | P1b | P2b | P3b | P4a | P5) -> false
  | K23_sys, _ -> true

type row = { pitfall : pitfall; verdicts : (system * verdict) list }

let run_table3 () =
  List.map
    (fun pf -> { pitfall = pf; verdicts = List.map (fun s -> (s, check s pf)) all_systems })
    all_pitfalls

let render_table3 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-5s %-12s %-12s %-12s  (paper: z/l/K)\n" "" "zpoline" "lazypoline" "K23");
  List.iter
    (fun { pitfall; verdicts } ->
      let mark sys =
        let v = List.assoc sys verdicts in
        if v.handled then "Y" else "x"
      in
      let paper sys = if paper_expectation sys pitfall then "Y" else "x" in
      Buffer.add_string buf
        (Printf.sprintf "%-5s %-12s %-12s %-12s  (%s/%s/%s)  %s\n" (pitfall_to_string pitfall)
           (mark Zpoline) (mark Lazypoline) (mark K23_sys) (paper Zpoline) (paper Lazypoline)
           (paper K23_sys) (pitfall_description pitfall)))
    rows;
  Buffer.contents buf
