(** Open-loop heavy-traffic latency campaign (the [table6-load]
    experiment).

    Table 6 reports mean closed-loop requests/sec, but the production
    question is tail-shaped: what happens to p99/p999 request latency
    under each interposer when requests keep arriving whether or not
    the server has caught up?  This campaign drives the Table 6 server
    models with {!Apps.Wrk}'s open-loop mode — a seeded-PRNG Poisson
    arrival process scheduling sends independently of responses — and
    reads per-request latency from the kernel's simulated-time request
    stamps, so queueing delay is visible instead of being absorbed by
    the closed loop.

    Rows:
    - one per mechanism (native baseline + the Table 6 columns) for a
      webserver fleet and a redis-like fleet, and
    - one {e mixed-tenant} row: three single-worker webservers in the
      {e same world}, one native, one under K23, one under SUD — the
      per-tenant-privilege scenario of "Making 'syscall' a Privilege
      not a Right" (PAPERS.md).  Tenants share the simulated machine,
      so a heavyweight interposer on one tenant shows up in the
      others' tails.

    Every (row, seed) pair is an independent {!K23_par.Run_spec} task:
    results merge in submission order, so the report is byte-identical
    at any [--jobs]. *)

open K23_kernel
open K23_userland
module F = K23_faults.Faults
module I = K23_interpose.Interpose
module Stats = K23_util.Stats
module Apps = K23_apps
module K23 = K23_core.K23
module Rs = K23_par.Run_spec

type workload = Web | Redis

type tenant = {
  t_tag : string;  (** distinguishes paths/ports within one world *)
  t_mech : Mech.t;
  t_workload : workload;
  t_workers : int;  (** server workers = client threads (conns=1 each) *)
}

type row_spec = { rs_workload : string; rs_mech_label : string; rs_tenants : tenant list }

(* Arrival rates (requests/sec per client thread), chosen to put the
   native server at moderate utilisation so the interposers' extra
   per-request cycles move the queue, not just the mean: the
   webserver's ~22k-cycle request service costs ~0.4 utilisation at
   60k req/s on a 3.2 GHz simulated core. *)
let web_rate = 60_000
let redis_rate = 80_000

let uniform wl mech =
  match wl with
  | Web ->
    {
      rs_workload = "nginx-open (2 workers, 0 KB)";
      rs_mech_label = Mech.to_string mech;
      rs_tenants = [ { t_tag = "t0"; t_mech = mech; t_workload = Web; t_workers = 2 } ];
    }
  | Redis ->
    {
      rs_workload = "redis-open (1 I/O thread)";
      rs_mech_label = Mech.to_string mech;
      rs_tenants = [ { t_tag = "t0"; t_mech = mech; t_workload = Redis; t_workers = 1 } ];
    }

let mixed =
  {
    rs_workload = "nginx-open mixed tenants (1 worker each)";
    rs_mech_label = "mixed(native+K23-default+SUD)";
    rs_tenants =
      [
        { t_tag = "native"; t_mech = Mech.Native; t_workload = Web; t_workers = 1 };
        { t_tag = "k23"; t_mech = Mech.K23_default; t_workload = Web; t_workers = 1 };
        { t_tag = "sud"; t_mech = Mech.Sud; t_workload = Web; t_workers = 1 };
      ];
  }

(** The full campaign: native + Table 6 columns per workload, then the
    mixed-tenant row. *)
let all_specs =
  let mechs = Mech.Native :: Mech.table6_cols in
  List.map (uniform Web) mechs @ List.map (uniform Redis) mechs @ [ mixed ]

(* ------------------------------------------------------------------ *)
(* One world-run                                                       *)

(** Per-tenant outcome of one seeded run. *)
type tenant_out = {
  to_completed : int;
  to_errors : int;
  to_lat : int list;  (** per-request latency, cycles, oldest first *)
  to_tput : float;  (** completed req/s over the load phase *)
}

(* client-side parameters matched to the server, as in Macro.client_for *)
let client_params t =
  match t.t_workload with
  | Web -> (Apps.Webserver.header_len, 300)
  | Redis -> (64, 12_500)

let rate_of t = match t.t_workload with Web -> web_rate | Redis -> redis_rate

(** Register a tenant's server app; returns its (path, port).  Paths
    and ports are suffixed per tenant so several servers coexist in
    one world. *)
let register_tenant w idx t ~resilient =
  match t.t_workload with
  | Web ->
    let cfg = Apps.Webserver.nginx ~workers:t.t_workers ~file_size:0 ~resilient () in
    let cfg = { cfg with Apps.Webserver.path = cfg.path ^ "#" ^ t.t_tag; port = 8080 + idx } in
    Apps.Webserver.register w cfg;
    (cfg.path, cfg.port)
  | Redis ->
    let cfg = Apps.Redis_like.default ~io_threads:t.t_workers ~resilient () in
    let cfg = { cfg with Apps.Redis_like.path = cfg.path ^ "#" ^ t.t_tag; port = 6379 + idx } in
    Apps.Redis_like.register w cfg;
    (cfg.path, cfg.port)

(** K23's offline phase for one tenant: run its server briefly under
    libLogger + the ptracer enforcer, drive a short closed-loop warmup
    client, then clear the world (same recipe as {!Macro.offline_spec}). *)
let offline_tenant w t ~path ~port =
  let stats = I.fresh_stats () in
  Kern.register_library w (K23_core.Offline.image ~stats ());
  let env = I.add_preload [] K23_core.Offline.lib_path in
  let tracer = Ptracer_enforcer.enforcer () in
  (match World.spawn w ~path ~env ~tracer ~vdso:false () with
  | Error e -> failwith (Printf.sprintf "load: offline spawn failed: %d" e)
  | Ok _ -> ());
  Macro.wait_for_listener w port;
  let resp_len, req_cost = client_params t in
  let warm =
    {
      Apps.Wrk.path = "/usr/bin/wrk-warm#" ^ t.t_tag;
      port;
      threads = t.t_workers;
      conns = 1;
      depth = 16;
      rounds = 3;
      req_cost;
      resp_len;
      arrival = Apps.Wrk.Closed;
      retries = 0;
    }
  in
  ignore (Macro.drive_client w ~client:warm);
  Macro.kill_everything w;
  K23.seal_logs w

let progress fmt = Printf.eprintf fmt

(** One seeded world-run of a row: register every tenant's server, run
    the K23 offline phases, launch all servers under their mechanisms,
    then spawn one open-loop client per tenant and run until every
    client exits.  Returns per-tenant outcomes in tenant order.

    With [?faults] (the chaos row), servers are built resilient,
    clients retry, and the fault plane is armed only once every server
    is listening: registration, offline phases, and mechanism launches
    run clean, so chaos perturbs the measured load phase and nothing
    else.  The armed plan derives its seed from the run seed, keeping
    every (row, seed) task's schedule independent but reproducible. *)
let run_one ~requests ~seed ?faults (rs : row_spec) : (string * tenant_out) list =
  progress "[load] %s / %s / seed %d\n%!" rs.rs_workload rs.rs_mech_label seed;
  let w = Sim.create_world ~seed ~quantum:8 () in
  let infos =
    List.mapi
      (fun idx t ->
        let path, port = register_tenant w idx t ~resilient:(faults <> None) in
        (t, path, port))
      rs.rs_tenants
  in
  List.iter
    (fun (t, path, port) -> if Mech.needs_offline t.t_mech then offline_tenant w t ~path ~port)
    infos;
  Kern.sync_cores w;
  List.iter
    (fun (t, path, _) ->
      match Mech.launch t.t_mech w ~path () with
      | Error e ->
        failwith (Printf.sprintf "load: %s launch failed: %d" (Mech.to_string t.t_mech) e)
      | Ok _ -> ())
    infos;
  List.iter (fun (_, _, port) -> Macro.wait_for_listener w port) infos;
  (* phase boundary: wall time has passed on every core *)
  Kern.sync_cores w;
  (match faults with
  | None -> ()
  | Some p ->
    w.Kern.faults <- Some { p with F.fseed = p.F.fseed + seed };
    Kern.fault_reset w);
  let clients =
    List.map
      (fun (t, _, port) ->
        let resp_len, req_cost = client_params t in
        let ccfg =
          {
            Apps.Wrk.path = "/usr/bin/wrk#" ^ t.t_tag;
            port;
            threads = t.t_workers;
            conns = 1;
            depth = 0;
            rounds = 0;
            req_cost;
            resp_len;
            arrival = Apps.Wrk.Open { rate = rate_of t; requests; seed = seed + 77 };
            retries = (if faults = None then 0 else 8);
          }
        in
        (t, Apps.Wrk.register w ccfg, ccfg))
      infos
  in
  let procs =
    List.map
      (fun (_, _, ccfg) ->
        match World.spawn w ~path:ccfg.Apps.Wrk.path () with
        | Error e -> failwith (Printf.sprintf "load: client spawn failed: %d" e)
        | Ok p -> p)
      clients
  in
  (* under chaos a pathological fault draw can strand a client mid
     protocol (e.g. a reset abandoning a half-sent frame); a deadlocked
     world just means those requests are lost, which the completed
     counters already reflect — don't lose the whole row to it *)
  (try Kern.run ~max_steps:600_000_000 ~until:(fun () -> List.for_all Kern.proc_dead procs) w
   with Kern.Deadlock _ -> ());
  let t_end = Kern.now w in
  Macro.kill_everything w;
  List.map
    (fun (t, (res : Apps.Wrk.results), _) ->
      let tput =
        match res.started_at with
        | Some t0 when res.completed > 0 && t_end > t0 ->
          float_of_int res.completed *. float_of_int Kern.cycles_per_sec
          /. float_of_int (t_end - t0)
        | _ -> 0.0
      in
      ( t.t_tag,
        {
          to_completed = res.completed;
          to_errors = res.errors;
          to_lat = List.rev res.latencies;
          to_tput = tput;
        } ))
    clients

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

type tenant_row = {
  tr_tag : string;
  tr_mech : string;
  tr_samples : int;
  tr_completed : int;
  tr_errors : int;
  tr_p50 : int;
  tr_p99 : int;
  tr_p999 : int;
}

type row = {
  r_workload : string;
  r_mech : string;
  r_samples : int;
  r_completed : int;
  r_errors : int;
  r_tput : float;  (** req/s summed over tenants, mean over seeds *)
  r_p50 : int;
  r_p99 : int;
  r_p999 : int;
  r_mean : float;
  r_hist : (int * int * int) list;  (** log-bucketed: (lo, hi, count) *)
  r_tenants : tenant_row list;
}

type report = {
  rep_quick : bool;
  rep_runs : int;
  rep_requests : int;
  rep_faults : string option;
      (** chaos row only: the armed plan, {!F.to_string}-rendered *)
  rep_rows : row list;
}

let pct lat p =
  match lat with
  | [] -> 0
  | _ -> int_of_float (Stats.percentile p (List.map float_of_int lat))

(** Fold one row's seeded runs (tenant outcomes per seed) into a
    reported row: latency samples pool across seeds — and, for the
    row-level figures, across tenants. *)
let assemble rs (outs : (string * tenant_out) list list) =
  let runs = List.length outs in
  let tenant_rows =
    List.map
      (fun t ->
        let mine = List.map (fun ro -> List.assoc t.t_tag ro) outs in
        let lat = List.concat_map (fun o -> o.to_lat) mine in
        {
          tr_tag = t.t_tag;
          tr_mech = Mech.to_string t.t_mech;
          tr_samples = List.length lat;
          tr_completed = List.fold_left (fun a o -> a + o.to_completed) 0 mine;
          tr_errors = List.fold_left (fun a o -> a + o.to_errors) 0 mine;
          tr_p50 = pct lat 50.0;
          tr_p99 = pct lat 99.0;
          tr_p999 = pct lat 99.9;
        })
      rs.rs_tenants
  in
  let all_lat = List.concat_map (fun ro -> List.concat_map (fun (_, o) -> o.to_lat) ro) outs in
  let hist = Stats.Hist.create () in
  List.iter (Stats.Hist.add hist) all_lat;
  let tput_per_run =
    List.map (fun ro -> List.fold_left (fun a (_, o) -> a +. o.to_tput) 0.0 ro) outs
  in
  {
    r_workload = rs.rs_workload;
    r_mech = rs.rs_mech_label;
    r_samples = List.length all_lat;
    r_completed = List.fold_left (fun a t -> a + t.tr_completed) 0 tenant_rows;
    r_errors = List.fold_left (fun a t -> a + t.tr_errors) 0 tenant_rows;
    r_tput = (if runs = 0 then 0.0 else List.fold_left ( +. ) 0.0 tput_per_run /. float_of_int runs);
    r_p50 = pct all_lat 50.0;
    r_p99 = pct all_lat 99.0;
    r_p999 = pct all_lat 99.9;
    r_mean = Stats.Hist.mean hist;
    r_hist = Stats.Hist.buckets hist;
    r_tenants = tenant_rows;
  }

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

let seeds runs = List.init runs (fun i -> 4_000 + (i * 17))

(** Run the campaign: one Run-spec task per (row, seed), sharded over
    [jobs] domains, merged in submission order — the report (and its
    JSON rendering) is byte-identical whatever [jobs] is. *)
let campaign ?(quick = false) ?(jobs = 1) ?runs ?requests ?(specs = all_specs) ?faults () =
  let runs = match runs with Some r -> r | None -> if quick then 1 else 3 in
  let requests = match requests with Some r -> r | None -> if quick then 64 else 400 in
  let tasks = List.concat_map (fun rs -> List.map (fun seed -> (rs, seed)) (seeds runs)) specs in
  let rlist =
    List.mapi
      (fun idx (rs, seed) ->
        (* the per-seed derived plan goes into the Run-spec world key
           too, so a chaos task never shares a scratch world with a
           clean one *)
        let wcfg =
          match faults with
          | None -> World.Config.make ~quantum:8 ~seed ()
          | Some p ->
            World.Config.make ~quantum:8 ~seed ~faults:{ p with F.fseed = p.F.fseed + seed } ()
        in
        Rs.v ~world:wcfg ~mech:rs.rs_mech_label ~index:idx (fun () ->
            run_one ~requests ~seed ?faults rs))
      tasks
  in
  let outs = List.map snd (Rs.run_all ~jobs rlist) in
  (* regroup row-major: spec i owns outs [i*runs, (i+1)*runs) *)
  let rows =
    List.mapi (fun i rs -> assemble rs (List.filteri (fun j _ -> j / runs = i) outs)) specs
  in
  {
    rep_quick = quick;
    rep_runs = runs;
    rep_requests = requests;
    rep_faults = Option.map F.to_string faults;
    rep_rows = rows;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let us_of_cycles c = float_of_int c *. 1e6 /. float_of_int Kern.cycles_per_sec

let render rep =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%d seed(s), %d requests/thread, open-loop Poisson arrivals\n" rep.rep_runs
       rep.rep_requests);
  (match rep.rep_faults with
  | None -> ()
  | Some f -> Buffer.add_string buf (Printf.sprintf "chaos: %s (+seed per run)\n" f));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%-36s %-28s %9s %9s %9s %10s %7s %9s\n" "workload" "mechanism" "p50_us"
       "p99_us" "p999_us" "completed" "errors" "kreq/s");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %-28s %9.1f %9.1f %9.1f %10d %7d %9.1f\n" r.r_workload r.r_mech
           (us_of_cycles r.r_p50) (us_of_cycles r.r_p99) (us_of_cycles r.r_p999) r.r_completed
           r.r_errors (r.r_tput /. 1000.0));
      if List.length r.r_tenants > 1 then
        List.iter
          (fun t ->
            Buffer.add_string buf
              (Printf.sprintf "  tenant %-29s %-28s %9.1f %9.1f %9.1f %10d %7d\n" t.tr_tag
                 t.tr_mech (us_of_cycles t.tr_p50) (us_of_cycles t.tr_p99)
                 (us_of_cycles t.tr_p999) t.tr_completed t.tr_errors))
          r.r_tenants)
    rep.rep_rows;
  Buffer.contents buf

(** Hand-rendered JSON, like {!K23_obs.Render}: fixed key order, ints
    and fixed-precision floats only, so a seeded campaign renders to a
    byte-identical document at any [--jobs]. *)
let render_json rep =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"experiment\": \"%s\",\n"
       (match rep.rep_faults with None -> "table6-load" | Some _ -> "table6-chaos"));
  (match rep.rep_faults with
  | None -> ()
  | Some f -> Buffer.add_string buf (Printf.sprintf "  \"faults\": \"%s\",\n" f));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"quick\": %b,\n\
       \  \"runs\": %d,\n\
       \  \"requests_per_thread\": %d,\n\
       \  \"web_rate\": %d,\n\
       \  \"redis_rate\": %d,\n\
       \  \"cycles_per_sec\": %d,\n\
       \  \"rows\": [\n"
       rep.rep_quick rep.rep_runs rep.rep_requests web_rate redis_rate Kern.cycles_per_sec);
  let nrows = List.length rep.rep_rows in
  List.iteri
    (fun i r ->
      let tenants =
        String.concat ","
          (List.map
             (fun t ->
               Printf.sprintf
                 "{\"tenant\": \"%s\", \"mech\": \"%s\", \"samples\": %d, \"completed\": %d, \
                  \"errors\": %d, \"p50\": %d, \"p99\": %d, \"p999\": %d}"
                 t.tr_tag t.tr_mech t.tr_samples t.tr_completed t.tr_errors t.tr_p50 t.tr_p99
                 t.tr_p999)
             r.r_tenants)
      in
      let hist =
        String.concat ","
          (List.map (fun (lo, hi, n) -> Printf.sprintf "[%d,%d,%d]" lo hi n) r.r_hist)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"mech\": \"%s\", \"samples\": %d, \"completed\": %d, \
            \"errors\": %d, \"throughput_rps\": %.1f, \"p50\": %d, \"p99\": %d, \"p999\": %d, \
            \"mean\": %.1f,\n\
           \     \"tenants\": [%s],\n\
           \     \"histogram\": [%s]}%s\n"
           r.r_workload r.r_mech r.r_samples r.r_completed r.r_errors r.r_tput r.r_p50 r.r_p99
           r.r_p999 r.r_mean tenants hist
           (if i < nrows - 1 then "," else "")))
    rep.rep_rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
