(** Microbenchmark (Table 5): a stress loop around the non-existent
    system call 500, "selected because it spends minimal time in the
    kernel, thereby emphasising the overhead introduced by each
    interposition technique" (Section 6.2.1).

    Per-iteration cost is measured as the marginal slope between two
    iteration counts, which cancels process-startup and
    interposer-initialisation costs — the moral equivalent of the
    paper's 100M-iteration amortisation. *)

open K23_isa
open K23_kernel
open K23_userland
module Stats = K23_util.Stats

let app_path = "/bin/syscall_stress"

let app_items n =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (R13, n));
    Asm.Label "loop";
    Asm.I (Insn.Mov_ri (RAX, Sysno.bench_nonexistent));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Sub_ri (R13, 1));
    Asm.Jc (Insn.NZ, "loop");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
  ]

(* NOTE: the iteration count is a same-width immediate, so the layout
   (and thus every syscall-site offset) is identical across counts —
   K23's offline logs transfer between them. *)
let lo_iters = 2_000
let hi_iters = 12_000

let run_one ~mech ~seed ~iters =
  let w = Sim.create_world ~seed () in
  ignore (Sim.register_app w ~path:app_path (app_items iters));
  if Mech.needs_offline mech then begin
    (* offline phase on a short run of the same binary *)
    ignore (Sim.register_app w ~path:app_path (app_items 200));
    ignore (K23_core.K23.offline_run w ~path:app_path ());
    K23_core.Log_store.seal w;
    ignore (Sim.register_app w ~path:app_path (app_items iters))
  end;
  match Mech.launch mech w ~path:app_path () with
  | Error e -> failwith (Printf.sprintf "micro: launch %s failed (%d)" (Mech.to_string mech) e)
  | Ok (p, _stats) ->
    (* measure the stress process's own core: offline-phase cycles (on
       other cores / processes) must not leak into the measurement *)
    let core = (List.hd p.threads).Kern.core in
    let before = w.core_cycles.(core) in
    World.run_until_exit w p;
    (match p.exit_status with
    | Some 0 -> ()
    | _ -> failwith (Printf.sprintf "micro: %s did not exit cleanly" (Mech.to_string mech)));
    w.core_cycles.(core) - before

(** Marginal cycles per iteration under [mech]. *)
let cycles_per_iter ~mech ~seed =
  let lo = run_one ~mech ~seed ~iters:lo_iters in
  let hi = run_one ~mech ~seed ~iters:hi_iters in
  float_of_int (hi - lo) /. float_of_int (hi_iters - lo_iters)

type row = { mech : Mech.t; overhead : float; stddev_pct : float }

(* per-repetition seed, as in the paper's repeated-run methodology *)
let run_seed i = 1000 + (i * 7)

(** One repetition of one row: the (mech, run-index) sample.  Each
    sample builds four fresh worlds (lo/hi iteration counts, mech and
    native) and is a pure function of its seed — the unit of work the
    domain pool shards. *)
let sample ~mech i =
  let seed = run_seed i in
  cycles_per_iter ~mech ~seed /. cycles_per_iter ~mech:Mech.Native ~seed

(** Assemble a row following the paper's methodology: min/max
    discarded, geometric mean, stddev as % of mean. *)
let row_of_samples mech samples =
  let kept = Stats.drop_outliers samples in
  { mech; overhead = Stats.geomean kept; stddev_pct = Stats.stddev_pct kept }

(** Overhead of one mechanism relative to native ([runs] repetitions),
    measured sequentially. *)
let overhead_row ?(runs = 10) mech = row_of_samples mech (List.init runs (sample ~mech))

(** Table 5, with one run-spec per (row, repetition) pair.  Samples
    come back in submission order whatever [jobs] is, so the rendered
    table is byte-identical to the sequential sweep. *)
let table5 ?(runs = 10) ?(jobs = 1) () =
  let module Rs = K23_par.Run_spec in
  let specs =
    List.concat_map
      (fun mech ->
        List.init runs (fun i ->
            Rs.v
              ~world:(K23_kernel.World.Config.make ~seed:(run_seed i) ())
              ~mech:(Mech.to_string mech) ~index:i
              (fun () -> sample ~mech i)))
      Mech.table5_rows
  in
  let samples = List.map snd (Rs.run_all ~jobs specs) in
  (* regroup row-major: row i owns samples [i*runs, (i+1)*runs) *)
  List.mapi
    (fun i mech -> row_of_samples mech (List.filteri (fun j _ -> j / runs = i) samples))
    Mech.table5_rows

let render rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-22s %-12s\n" "Mechanism" "Overhead");
  List.iter
    (fun { mech; overhead; stddev_pct } ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %.4fx (+/-%.3f%%)\n" (Mech.to_string mech) overhead stddev_pct))
    rows;
  Buffer.contents buf
