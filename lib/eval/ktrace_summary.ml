(** Per-mechanism ktrace summaries.

    Runs the Table 5 stress app under each mechanism with the ktrace
    subsystem enabled and condenses the resulting event stream into an
    event-kind histogram plus the world-level named counters — the
    observability companion to the overhead tables: where Table 5 says
    *how much* a mechanism costs, this shows *what it does* (SIGSYS
    deliveries, selector toggles, ptrace stops, rewrites...). *)

open K23_kernel
open K23_userland

type row = {
  mech : Mech.t;
  recorded : int;  (** events still in the ring *)
  dropped : int;  (** overwritten by ring overflow *)
  kinds : (string * int) list;  (** event-kind histogram, sorted by name *)
  counters : (string * int) list;  (** world-lifetime named counters *)
}

let histogram events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let k = K23_obs.Event.kind ev.K23_obs.Event.ev_payload in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(** One traced run of the syscall-stress app under [mech]. *)
let run_mech ?(seed = 42) ?(iters = 300) mech =
  let w = Sim.create_world ~seed () in
  let t = Kern.ktrace_enable w in
  ignore (Sim.register_app w ~path:Micro.app_path (Micro.app_items iters));
  if Mech.needs_offline mech then begin
    ignore (Sim.register_app w ~path:Micro.app_path (Micro.app_items 100));
    ignore (K23_core.K23.offline_run w ~path:Micro.app_path ());
    K23_core.Log_store.seal w;
    ignore (Sim.register_app w ~path:Micro.app_path (Micro.app_items iters))
  end;
  match Mech.launch mech w ~path:Micro.app_path () with
  | Error e ->
    failwith (Printf.sprintf "ktrace_summary: launch %s failed (%d)" (Mech.to_string mech) e)
  | Ok (p, _stats) ->
    World.run_until_exit w p;
    let events = K23_obs.Trace.events t in
    {
      mech;
      recorded = List.length events;
      dropped = K23_obs.Trace.dropped t;
      kinds = histogram events;
      counters = K23_obs.Counters.to_alist t.K23_obs.Trace.counters;
    }

let run ?seed ?iters () = List.map (run_mech ?seed ?iters) Mech.table5_rows

let render rows =
  let buf = Buffer.create 1024 in
  let pairs ps =
    String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ps)
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %6d events (%d dropped)\n" (Mech.to_string r.mech) r.recorded
           r.dropped);
      Buffer.add_string buf (Printf.sprintf "  events:   %s\n" (pairs r.kinds));
      (* the nr-indexed counters are one line per syscall number — too
         noisy for a summary table; keep the semantic ones *)
      let interesting =
        List.filter (fun (k, _) -> not (String.length k > 7 && String.sub k 0 7 = "sys.nr.")) r.counters
      in
      Buffer.add_string buf (Printf.sprintf "  counters: %s\n" (pairs interesting)))
    rows;
  Buffer.contents buf
