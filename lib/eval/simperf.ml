(** Bechamel measurements of the simulator's own hot paths.

    Not a paper artifact, but the perf trajectory every table depends
    on (billions of simulated steps per full run).  Lives in the eval
    library — rather than the bench executable — so the test suite can
    run a fast smoke invocation ([run ~quota:0.02 ~limit:20]) and so
    [bench/main.exe simperf --json] stays a thin wrapper.  The JSON
    layout matches BENCH_simperf.json, which tracks the numbers across
    PRs (see EXPERIMENTS.md). *)

open Bechamel
open Toolkit
open K23_machine

type t = {
  ns_per_op : (string * float) list;  (** in declaration order *)
  steps_per_run : int;
  steps_per_sec : float;
}

let prog =
  K23_isa.Encode.assemble
    [ Mov_ri (RAX, 500); Syscall; Mov_rr (RDI, RSI); Add_ri (RSP, 8); Ret ]

(* Fixed fetch-decode-execute workload: a register/branch-heavy loop
   (no data memory traffic), so the measurement is dominated by the
   fetch+decode dispatch path that [Cpu.step] takes per instruction. *)
let loop_insns : K23_isa.Insn.t list =
  [
    Mov_ri (RCX, 32);
    (* loop body: 24 bytes, jcc jumps back to its start *)
    Mov_rr (RAX, RCX);
    Add_rr (RAX, RCX);
    Sub_ri (RAX, 1);
    Cmp_ri (RCX, 0);
    Sub_ri (RCX, 1);
    Jcc (NZ, -24);
    Hlt;
  ]

(* Same shape with a load/store pair in the body: exercises the
   [Memory] word-access path (page lookup + permission checks). *)
let mem_loop_insns : K23_isa.Insn.t list =
  [
    Mov_ri (RCX, 32);
    Mov_ri (RBX, 0x8000);
    (* loop body: 3+7+7+4+4+6 = 31 bytes *)
    Mov_rr (RAX, RCX);
    Store (RBX, 0, RAX);
    Load (RAX, RBX, 0);
    Cmp_ri (RCX, 0);
    Sub_ri (RCX, 1);
    Jcc (NZ, -31);
    Hlt;
  ]

let make_step_loop insns =
  let mem = Memory.create () in
  Memory.map mem ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.map mem ~addr:0x8000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_bytes_raw mem 0x1000 (K23_isa.Encode.assemble insns);
  let regs = Regs.create () in
  let ic = Icache.create () in
  let run () =
    regs.rip <- 0x1000;
    Regs.set regs RSP 0x8800;
    let steps = ref 0 in
    let continue = ref true in
    while !continue do
      incr steps;
      match Cpu.step regs mem ic with
      | Cpu.Stepped _ -> ()
      | Cpu.Trapped _ -> continue := false
    done;
    !steps
  in
  run

(** [quota] is the per-test time budget in seconds; [limit] the max
    sample count.  Bench uses the defaults; the test-suite smoke run
    shrinks both. *)
let run ?(quota = 0.5) ?(limit = 500) () =
  let set = K23_core.Robin_set.of_list (List.init 64 (fun i -> 0x400000 + (i * 16))) in
  let step_loop = make_step_loop loop_insns in
  let step_loop_mem = make_step_loop mem_loop_insns in
  let steps_per_run = step_loop () in
  let mem_u64 =
    let mem = Memory.create () in
    Memory.map mem ~addr:0x8000 ~len:8192 ~perm:Memory.perm_rw;
    mem
  in
  let tests =
    [
      Test.make ~name:"isa.decode" (Staged.stage (fun () -> K23_isa.Decode.decode_bytes prog 0));
      Test.make ~name:"isa.linear-sweep"
        (Staged.stage (fun () -> K23_isa.Disasm.find_syscall_sites prog ~base:0));
      Test.make ~name:"robin_set.mem"
        (Staged.stage (fun () -> K23_core.Robin_set.mem set 0x400080));
      Test.make ~name:"cpu.step-loop" (Staged.stage (fun () -> ignore (step_loop ())));
      Test.make ~name:"cpu.step-loop-mem" (Staged.stage (fun () -> ignore (step_loop_mem ())));
      Test.make ~name:"mem.read_u64"
        (Staged.stage (fun () -> Memory.read_u64 mem_u64 ~pkru:0 0x8100));
      Test.make ~name:"mem.write_u64"
        (Staged.stage (fun () -> Memory.write_u64 mem_u64 ~pkru:0 0x8100 0xdeadbeef));
    ]
  in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let estimates = ref [] in
  List.iter
    (fun t ->
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] t in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols Instance.monotonic_clock raw) with
          | Some (est :: _) -> estimates := (name, est) :: !estimates
          | Some [] | None -> estimates := (name, nan) :: !estimates)
        results)
    tests;
  let ns_per_op = List.rev !estimates in
  let steps_per_sec =
    match List.assoc_opt "cpu.step-loop" ns_per_op with
    | Some ns when ns > 0. -> float_of_int steps_per_run *. 1e9 /. ns
    | _ -> 0.
  in
  { ns_per_op; steps_per_run; steps_per_sec }

let render r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Buffer.add_string buf (Printf.sprintf "%-24s (no estimate)\n" name)
      else Buffer.add_string buf (Printf.sprintf "%-24s %12.1f ns/op\n" name est))
    r.ns_per_op;
  Buffer.add_string buf
    (Printf.sprintf "%-24s %12.0f steps/sec (%d-step workload)\n" "cpu.step-loop"
       r.steps_per_sec r.steps_per_run);
  Buffer.contents buf

let write_json r path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"experiment\": \"simperf\",\n  \"ns_per_op\": {\n";
  let rows = List.filter (fun (_, est) -> not (Float.is_nan est)) r.ns_per_op in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name est
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  },\n  \"step_loop\": { \"steps_per_run\": %d, \"steps_per_sec\": %.0f }\n}\n"
    r.steps_per_run r.steps_per_sec;
  close_out oc
