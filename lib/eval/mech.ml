(** The interposition mechanisms compared in the evaluation
    (Tables 4-6). *)

open K23_kernel
module Zp = K23_baselines.Zpoline
module Lp = K23_baselines.Lazypoline
module Sud = K23_baselines.Sud_interposer
module Pt = K23_baselines.Ptrace_interposer
module Sc = K23_baselines.Seccomp_interposer
module K23 = K23_core.K23
module Asc = K23_interpose.Asc_hook

type t =
  | Native
  | Zpoline_default
  | Zpoline_ultra
  | Lazypoline
  | K23_default
  | K23_ultra
  | K23_ultra_plus
  | Sud_no_interposition  (** SUD armed, selector left on ALLOW *)
  | Sud
  | Ptrace  (** host-agent tracer, entry/exit stops (Section 2.1) *)
  | Seccomp  (** SECCOMP_RET_TRAP outside the interposer's text *)
  | Asc_hook  (** AArch64 svc->b rewriting with per-site slots (Section 8) *)

(** Every mechanism, in declaration order — the single source of truth
    for name tables, CLI converters and round-trip serialisation
    (corpus files, campaign reports).  Extending [t] without extending
    this list is caught by the exhaustive round-trip test. *)
let all =
  [
    Native;
    Zpoline_default;
    Zpoline_ultra;
    Lazypoline;
    K23_default;
    K23_ultra;
    K23_ultra_plus;
    Sud_no_interposition;
    Sud;
    Ptrace;
    Seccomp;
    Asc_hook;
  ]

(** The mechanisms that exist on [isa].  Rewriting an x86 variable-
    length instruction stream (zpoline/lazypoline/K23) has no meaning
    on AArch64 and vice versa for ASC-Hook; SUD, seccomp and ptrace
    are kernel interfaces and work on both. *)
let available ~isa =
  let open K23_isa.Isa in
  match isa with
  | X86_64 ->
    [
      Native;
      Zpoline_default;
      Zpoline_ultra;
      Lazypoline;
      K23_default;
      K23_ultra;
      K23_ultra_plus;
      Sud_no_interposition;
      Sud;
      Ptrace;
      Seccomp;
    ]
  | Arm64 -> [ Native; Asc_hook; Sud_no_interposition; Sud; Ptrace; Seccomp ]

let to_string = function
  | Native -> "native"
  | Zpoline_default -> "zpoline-default"
  | Zpoline_ultra -> "zpoline-ultra"
  | Lazypoline -> "lazypoline"
  | K23_default -> "K23-default"
  | K23_ultra -> "K23-ultra"
  | K23_ultra_plus -> "K23-ultra+"
  | Sud_no_interposition -> "SUD-no-interposition"
  | Sud -> "SUD"
  | Ptrace -> "ptrace"
  | Seccomp -> "seccomp"
  | Asc_hook -> "asc-hook"

(** Inverse of {!to_string}, case-insensitively, plus the short CLI
    aliases ["zpoline"] and ["k23"] for the default variants. *)
let of_string s =
  let ls = String.lowercase_ascii s in
  match List.find_opt (fun m -> String.lowercase_ascii (to_string m) = ls) all with
  | Some m -> Some m
  | None -> (
    match ls with
    | "zpoline" -> Some Zpoline_default
    | "k23" -> Some K23_default
    | _ -> None)

(** Table 5 rows, in the paper's order. *)
let table5_rows =
  [
    Zpoline_default;
    Zpoline_ultra;
    Lazypoline;
    K23_default;
    K23_ultra;
    K23_ultra_plus;
    Sud_no_interposition;
    Sud;
  ]

(** Table 6 columns. *)
let table6_cols =
  [ Zpoline_default; Zpoline_ultra; Lazypoline; K23_default; K23_ultra; K23_ultra_plus; Sud ]

let needs_offline = function
  | K23_default | K23_ultra | K23_ultra_plus -> true
  | Native | Zpoline_default | Zpoline_ultra | Lazypoline | Sud | Sud_no_interposition | Ptrace
  | Seccomp | Asc_hook ->
    false

(** Launch [path] under the mechanism.  Returns the process (and the
    interposition stats for non-native mechanisms). *)
let launch mech w ~path ?argv ?env () =
  let ok = function Ok (p, s) -> Ok (p, Some s) | Error e -> Error e in
  match mech with
  | Native -> (
    match World.spawn w ~path ?argv ?env () with Ok p -> Ok (p, None) | Error e -> Error e)
  | Zpoline_default -> ok (Zp.launch w ~variant:Zp.Default ~path ?argv ?env ())
  | Zpoline_ultra -> ok (Zp.launch w ~variant:Zp.Ultra ~path ?argv ?env ())
  | Lazypoline -> ok (Lp.launch w ~path ?argv ?env ())
  | K23_default -> ok (K23.launch w ~variant:K23.Default ~path ?argv ?env ())
  | K23_ultra -> ok (K23.launch w ~variant:K23.Ultra ~path ?argv ?env ())
  | K23_ultra_plus -> ok (K23.launch w ~variant:K23.Ultra_plus ~path ?argv ?env ())
  | Sud -> ok (Sud.launch w ~interpose_on:true ~path ?argv ?env ())
  | Sud_no_interposition -> ok (Sud.launch w ~interpose_on:false ~path ?argv ?env ())
  | Ptrace -> ok (Pt.launch w ~path ?argv ?env ())
  | Seccomp -> ok (Sc.launch w ~path ?argv ?env ())
  | Asc_hook -> ok (Asc.launch w ~path ?argv ?env ())
