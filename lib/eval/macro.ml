(** Macrobenchmarks (Table 6): nginx / lighttpd (1 and 10 workers, 0
    and 4 KiB files), redis (1 and 6 I/O threads, 100% GET), and
    sqlite speedtest1 — each driven exactly as in Section 6.2.2:
    clients and servers on the same machine over loopback, client
    threads matched to server workers, 16 connections per client
    thread. *)

open K23_kernel
open K23_userland
module I = K23_interpose.Interpose
module Stats = K23_util.Stats
module Apps = K23_apps
module K23 = K23_core.K23

type workload =
  | Web of Apps.Webserver.config
  | Redis of Apps.Redis_like.config
  | Sqlite of Apps.Sqlite_like.config

type spec = { label : string; workload : workload; rounds : int }

let nginx ~workers ~kb =
  {
    label = Printf.sprintf "nginx (%d worker%s, %d KB)" workers (if workers > 1 then "s" else "") kb;
    workload = Web (Apps.Webserver.nginx ~workers ~file_size:(kb * 1024) ());
    rounds = 24;
  }

let lighttpd ~workers ~kb =
  {
    label =
      Printf.sprintf "lighttpd (%d worker%s, %d KB)" workers (if workers > 1 then "s" else "") kb;
    workload = Web (Apps.Webserver.lighttpd ~workers ~file_size:(kb * 1024) ());
    rounds = 24;
  }

let redis ~io_threads =
  {
    label = Printf.sprintf "redis (%d I/O thread%s)" io_threads (if io_threads > 1 then "s" else "");
    workload = Redis (Apps.Redis_like.default ~io_threads ());
    rounds = 24;
  }

let sqlite =
  {
    label = "sqlite (speedtest1, size 800)";
    workload = Sqlite (Apps.Sqlite_like.default ~ops:4000 ());
    rounds = 0;
  }

(** The paper's Table 6 rows. *)
let all_specs =
  [
    nginx ~workers:1 ~kb:0;
    nginx ~workers:1 ~kb:4;
    nginx ~workers:10 ~kb:0;
    nginx ~workers:10 ~kb:4;
    lighttpd ~workers:1 ~kb:0;
    lighttpd ~workers:1 ~kb:4;
    lighttpd ~workers:10 ~kb:0;
    lighttpd ~workers:10 ~kb:4;
    redis ~io_threads:1;
    redis ~io_threads:6;
    sqlite;
  ]

let is_throughput spec = match spec.workload with Sqlite _ -> false | Web _ | Redis _ -> true

let register_workload w spec =
  match spec.workload with
  | Web cfg ->
    Apps.Webserver.register w cfg;
    (cfg.path, cfg.port)
  | Redis cfg ->
    Apps.Redis_like.register w cfg;
    (cfg.path, cfg.port)
  | Sqlite cfg ->
    Apps.Sqlite_like.register w cfg;
    (cfg.path, 0)

(** Client configuration matched to the server: one client thread per
    worker/IO-thread, 16 connections each (Section 6.2.2).  The
    redis-benchmark client does substantially more per-request work
    than wrk, which is what makes single-threaded redis client-bound. *)
let client_for spec ~rounds =
  match spec.workload with
  | Web cfg ->
    Some
      {
        Apps.Wrk.path = "/usr/bin/wrk";
        port = cfg.port;
        threads = cfg.workers;
        conns = 1;
        depth = 16;
        rounds;
        req_cost = 300;
        resp_len = Apps.Webserver.header_len + cfg.file_size;
        arrival = Apps.Wrk.Closed;
        retries = 0;
      }
  | Redis cfg ->
    Some
      {
        Apps.Wrk.path = "/usr/bin/redis-benchmark";
        port = cfg.port;
        threads = cfg.io_threads;
        conns = 1;
        depth = 16;
        rounds;
        req_cost = 12_500;
        resp_len = 64;
        arrival = Apps.Wrk.Closed;
        retries = 0;
      }
  | Sqlite _ -> None

let wait_for_listener w port =
  Kern.run ~max_steps:20_000_000 ~until:(fun () -> Hashtbl.mem w.Kern.net.listeners port) w

let kill_everything w =
  List.iter (fun p -> if not (Kern.proc_dead p) then Kern.kill_proc p ~signal:9) w.Kern.procs

(** Spawn the client against a running server; returns requests/sec. *)
let drive_client w ~client =
  let results = Apps.Wrk.register w client in
  (match World.spawn w ~path:client.Apps.Wrk.path () with
  | Error e -> failwith (Printf.sprintf "client spawn failed: %d" e)
  | Ok cp -> Kern.run ~max_steps:400_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  let t_end = Kern.now w in
  match results.started_at with
  | Some t0 when results.completed > 0 && t_end > t0 ->
    float_of_int results.completed *. float_of_int Kern.cycles_per_sec /. float_of_int (t_end - t0)
  | _ -> 0.0

(** K23's offline phase for a server spec: run the real workload
    briefly under libLogger (Section 6.2: "we first performed its
    offline phase by running the relevant benchmarks"). *)
let offline_spec w spec ~path ~port =
  (match spec.workload with
  | Sqlite _ -> ignore (K23.offline_run w ~path ~max_steps:80_000_000 ())
  | Web _ | Redis _ ->
    let stats = I.fresh_stats () in
    Kern.register_library w (K23_core.Offline.image ~stats ());
    let env = I.add_preload [] K23_core.Offline.lib_path in
    let tracer = Ptracer_enforcer.enforcer () in
    (* vdso disabled, matching K23's online environment *)
    (match World.spawn w ~path ~env ~tracer ~vdso:false () with
    | Error e -> failwith (Printf.sprintf "offline server spawn failed: %d" e)
    | Ok _ -> ());
    wait_for_listener w port;
    (match client_for spec ~rounds:3 with
    | Some client -> ignore (drive_client w ~client)
    | None -> ());
    kill_everything w);
  K23.seal_logs w

(** One measurement: requests/sec for servers, elapsed cycles for
    sqlite. *)
let progress fmt = Printf.eprintf fmt

let run_spec spec mech ~seed =
  progress "[macro] %s / %s / seed %d\n%!" spec.label (Mech.to_string mech) seed;
  (* a fine scheduling quantum approximates truly concurrent cores:
     with coarse slices the simulated servers can drain their request
     queues and stall in lockstep, an artifact real hardware does not
     have *)
  let w = Sim.create_world ~seed ~quantum:8 () in
  let path, port = register_workload w spec in
  if Mech.needs_offline mech then begin
    offline_spec w spec ~path ~port;
    Kern.sync_cores w
  end;
  match spec.workload with
  | Sqlite _ -> (
    let t0 = Kern.now w in
    match Mech.launch mech w ~path () with
    | Error e -> failwith (Printf.sprintf "sqlite launch failed: %d" e)
    | Ok (p, _) ->
      World.run_until_exit ~max_steps:400_000_000 w p;
      float_of_int (Kern.now w - t0))
  | Web _ | Redis _ -> (
    match Mech.launch mech w ~path () with
    | Error e -> failwith (Printf.sprintf "server launch failed: %d" e)
    | Ok (_sp, _) ->
      wait_for_listener w port;
      (* phase boundary: wall time has passed on every core *)
      Kern.sync_cores w;
      let client = Option.get (client_for spec ~rounds:spec.rounds) in
      let tput = drive_client w ~client in
      kill_everything w;
      tput)

type cell = { rel_mean : float; rel_std : float }

type row = {
  spec : spec;
  native_mean : float;  (** req/s; meaningless for sqlite *)
  cells : (Mech.t * cell) list;
}

let run_seeds runs = List.init runs (fun i -> 2_000 + (i * 13))

(** Raw measurements for one Table 6 cell: the native column
    ([mech = None]) or one mechanism's column of a spec.  A cell is a
    pure function of (spec, mech, runs) — each run builds a fresh world
    from its seed — so cells are the unit of work the domain pool
    shards.  Relative values pair interposed and native runs
    seed-by-seed (interposed runs use seed+1, as the paper pairs a
    fresh machine state with each mechanism). *)
let measure_cell ~runs spec mech =
  match mech with
  | None -> List.map (fun seed -> run_spec spec Mech.Native ~seed) (run_seeds runs)
  | Some mech -> List.map (fun seed -> run_spec spec mech ~seed:(seed + 1)) (run_seeds runs)

(** Fold raw cell measurements into a row.  Each interposed run is
    compared against the native mean — per-run machine-state variation
    shows up in the reported standard deviation, as in the paper's
    methodology; for sqlite the ratio is inverted (completion time,
    Section 6.2.2). *)
let assemble_row spec native mech_raws =
  let native_mean = Stats.mean (Stats.drop_outliers native) in
  let cells =
    List.map2
      (fun mech raw ->
        let rels =
          List.map
            (fun v ->
              if is_throughput spec then 100.0 *. v /. native_mean
              else 100.0 *. native_mean /. v)
            raw
        in
        let kept = Stats.drop_outliers rels in
        (mech, { rel_mean = Stats.mean kept; rel_std = Stats.stddev_pct kept }))
      Mech.table6_cols mech_raws
  in
  { spec; native_mean; cells }

(** Benchmark one spec across all Table 6 mechanisms, sequentially. *)
let bench_spec ?(runs = 5) spec =
  assemble_row spec
    (measure_cell ~runs spec None)
    (List.map (fun m -> measure_cell ~runs spec (Some m)) Mech.table6_cols)

(** Table 6, with one run-spec per (spec, column) cell — the native
    column included.  Cells come back in submission order whatever
    [jobs] is and the fold into rows is the same [assemble_row] the
    sequential path uses, so the rendered table is identical. *)
let table6 ?(runs = 5) ?(specs = all_specs) ?(jobs = 1) () =
  let module Rs = K23_par.Run_spec in
  let cols = None :: List.map Option.some Mech.table6_cols in
  let cell_world = K23_kernel.World.Config.make ~quantum:8 ~seed:2_000 () in
  let tasks = List.concat_map (fun spec -> List.map (fun m -> (spec, m)) cols) specs in
  let rs =
    List.mapi
      (fun idx (spec, m) ->
        Rs.v ~world:cell_world
          ~mech:(match m with None -> "native" | Some m -> Mech.to_string m)
          ~index:idx
          (fun () -> measure_cell ~runs spec m))
      tasks
  in
  let cells = List.map snd (Rs.run_all ~jobs rs) in
  (* regroup row-major: spec i owns cells [i*ncols, (i+1)*ncols) *)
  let ncols = List.length cols in
  List.mapi
    (fun i spec ->
      match List.filteri (fun j _ -> j / ncols = i) cells with
      | native :: mech_raws -> assemble_row spec native mech_raws
      | [] -> assert false)
    specs

let render rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "%-28s %12s" "Application (workload)" "Native");
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf " %16s" (Mech.to_string m)))
    Mech.table6_cols;
  Buffer.add_string buf "\n";
  List.iter
    (fun { spec; native_mean; cells } ->
      let native_str =
        if is_throughput spec then Printf.sprintf "%.0f req/s" native_mean else "N/A"
      in
      Buffer.add_string buf (Printf.sprintf "%-28s %12s" spec.label native_str);
      List.iter
        (fun (_, c) ->
          Buffer.add_string buf (Printf.sprintf " %8.2f(+-%.2f)" c.rel_mean c.rel_std))
        cells;
      Buffer.add_string buf "\n")
    rows;
  (* geometric-mean row, as in the paper *)
  Buffer.add_string buf (Printf.sprintf "%-28s %12s" "geomean" "");
  List.iter
    (fun m ->
      let vals =
        List.map (fun r -> (List.assoc m r.cells).rel_mean) rows |> List.filter (fun v -> v > 0.0)
      in
      Buffer.add_string buf (Printf.sprintf " %8.2f        " (Stats.geomean vals)))
    Mech.table6_cols;
  Buffer.add_string buf "\n";
  Buffer.contents buf
