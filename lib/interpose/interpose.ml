(** Common interposition framework shared by every interposer
    (zpoline, lazypoline, plain SUD, ptrace, K23).

    Provides:
    - the handler ABI: a user-supplied OCaml function with full
      expressiveness (deep argument inspection, emulation, veto);
    - the page-0 trampoline (nop sled + entry sequence), installed by
      rewriting-based interposers, with PKU-based XOM protection;
    - the SIGSYS handler skeleton used by every SUD-based path;
    - shared statistics so benchmarks can compare mechanisms.

    Every interposition path — rewritten [callq *%rax], SIGSYS
    fallback, ptrace stop — funnels into the same user handler, which
    is the paper's definition of a flexible interposer. *)

open K23_isa
open K23_machine
open K23_kernel
open Kern

(* ------------------------------------------------------------------ *)
(* Handler ABI                                                         *)

type action =
  | Forward  (** execute the original system call *)
  | Emulate of int  (** skip the kernel; return this value to the app *)

type handler = ctx -> nr:int -> args:int array -> site:int -> action
(** The interposition function.  [site] is the address of the
    triggering [syscall]/[sysenter] instruction. *)

type stats = {
  mutable interposed : int;
  mutable via_rewrite : int;  (** fast path: rewritten call *)
  mutable via_sigsys : int;  (** SUD fallback *)
  mutable via_ptrace : int;  (** ptrace stops *)
  mutable aborts : int;  (** NULL-execution / prctl-guard aborts *)
  by_nr : (int, int) Hashtbl.t;
}

let fresh_stats () =
  { interposed = 0; via_rewrite = 0; via_sigsys = 0; via_ptrace = 0; aborts = 0; by_nr = Hashtbl.create 32 }

(** The paper's evaluation handler: "an empty interposition function
    that simply invokes the original system call and returns its
    result" — plus counting so exhaustiveness can be verified. *)
let counting_handler ?inner stats : handler =
 fun ctx ~nr ~args ~site ->
  stats.interposed <- stats.interposed + 1;
  Hashtbl.replace stats.by_nr nr (1 + Option.value ~default:0 (Hashtbl.find_opt stats.by_nr nr));
  match inner with Some h -> h ctx ~nr ~args ~site | None -> Forward

(** Abort the target process (SIGABRT), as K23/zpoline do on failed
    runtime checks. *)
let abort ctx ~why =
  if ctx.world.trace then Printf.eprintf "[interpose] abort pid %d: %s\n%!" ctx.thread.t_proc.pid why;
  kill_proc ctx.thread.t_proc ~signal:6

(** Add a library to LD_PRELOAD in an environment list. *)
let add_preload env path =
  let rec go acc found = function
    | [] -> List.rev (if found then acc else (("LD_PRELOAD=" ^ path) :: acc))
    | kv :: rest ->
      if String.length kv >= 11 && String.sub kv 0 11 = "LD_PRELOAD=" then
        go (("LD_PRELOAD=" ^ path ^ ":" ^ String.sub kv 11 (String.length kv - 11)) :: acc) true rest
      else go (kv :: acc) found rest
  in
  go [] false env

(* ------------------------------------------------------------------ *)
(* Configuration shared by trampoline and SIGSYS paths                 *)

type config = {
  cfg_name : string;
  pre_cost : int;  (** trampoline handler-entry cost (calibration) *)
  post_cost : int;  (** trampoline handler-exit cost *)
  null_check : (ctx -> site:int -> bool) option;
      (** NULL-execution check: return false to abort (zpoline-ultra's
          bitmap, K23-ultra's hash set) *)
  null_check_cost : int;
  stack_switch : bool;  (** K23-ultra+: switch to a dedicated stack on entry *)
  sud_selector : (proc -> int option);
      (** address of the SUD selector byte, when SUD-based *)
  handler : handler;
  stats : stats;
}

let selector_allow = Sysno.syscall_dispatch_filter_allow
let selector_block = Sysno.syscall_dispatch_filter_block

(** Toggle the calling thread's own selector slot (TLS semantics). *)
let set_selector (th : thread) cfg v =
  match cfg.sud_selector th.t_proc with
  | Some addr -> Memory.write_u8_raw th.t_proc.mem (selector_slot th addr) v
  | None -> ()

(** Initialise every selector slot (current and future threads). *)
let set_selector_all_slots (p : proc) ~sel_addr v =
  for i = 0 to 63 do
    Memory.write_u8_raw p.mem (sel_addr + i) v
  done

(* ------------------------------------------------------------------ *)
(* Trampoline                                                          *)

(** Length of the nop sled: virtual addresses 0..511 all fall through
    to the entry point, so a rewritten [callq *%rax] with any syscall
    number in rax lands here. *)
let nop_sled_len = 512

let trampoline_entry = nop_sled_len
let trampoline_syscall_addr = nop_sled_len + 6 (* after the 6-byte pre vcall *)
let trampoline_post_addr = nop_sled_len + 8 (* after the 2-byte syscall *)

(** Host function run at trampoline entry (fast path). *)
let tramp_pre (cfg : config) (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  let w = ctx.world in
  charge w th cfg.pre_cost;
  (* the rewritten callq pushed the return address: site + 2 *)
  let ret_addr = Memory.read_u64_raw p.mem (Regs.get th.regs RSP) in
  let site = ret_addr - 2 in
  (match cfg.null_check with
  | Some check ->
    charge w th cfg.null_check_cost;
    if not (check ctx ~site) then begin
      cfg.stats.aborts <- cfg.stats.aborts + 1;
      abort ctx ~why:(Printf.sprintf "%s: call into trampoline from unknown site %#x" cfg.cfg_name site)
    end
  | None -> ());
  if proc_dead p then ()
  else begin
    if cfg.stack_switch then charge w th 1;
    (* disable SUD-based interposition via the selector while we are
       handling (Section 5.2) *)
    set_selector th cfg selector_allow;
    let nr = Regs.get th.regs RAX in
    let args = syscall_args th in
    cfg.stats.via_rewrite <- cfg.stats.via_rewrite + 1;
    match cfg.handler ctx ~nr ~args ~site with
    | Forward -> () (* fall through into the trampoline's syscall *)
    | Emulate v ->
      Regs.set th.regs RAX v;
      th.regs.rip <- trampoline_post_addr
  end

let tramp_post (cfg : config) (ctx : ctx) =
  let th = ctx.thread in
  charge ctx.world th cfg.post_cost;
  set_selector th cfg selector_block

(** Build the trampoline pseudo-image for an interposer. *)
let trampoline_image (cfg : config) : image =
  let items =
    [
      Asm.Blob (Bytes.make nop_sled_len '\x90');
      Asm.Label "tramp_entry";
      Asm.Vcall_named "tramp_pre";
      Asm.Label "tramp_syscall";
      Asm.I Insn.Syscall;
      Asm.Label "tramp_post";
      Asm.Vcall_named "tramp_post";
      Asm.I Insn.Ret;
    ]
  in
  {
    im_name = "[trampoline:" ^ cfg.cfg_name ^ "]";
    im_prog = Asm.assemble items;
    im_host_fns = [ ("tramp_pre", tramp_pre cfg); ("tramp_post", tramp_post cfg) ];
    im_init = None;
    im_entry = None;
    im_needed = [];
    im_owner = Trampoline;
  }

(** Map the trampoline at virtual address 0 and protect it as
    eXecute-Only Memory via PKU: data reads/writes to page 0 still
    fault (NULL safety), instruction fetch does not (pitfall P4a). *)
let install_trampoline (ctx : ctx) (cfg : config) =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  let im = trampoline_image cfg in
  let text = im.im_prog.Asm.text in
  let len = Memory.align_up (Bytes.length text) in
  Memory.map p.mem ~addr:0 ~len ~perm:Memory.perm_rx;
  Memory.write_bytes_raw p.mem 0 text;
  add_region p
    {
      r_start = 0;
      r_len = len;
      r_perm = Memory.perm_rx;
      r_name = "[trampoline]";
      r_owner = Trampoline;
      r_image = Some im;
      r_sec = `Text;
    };
  (* XOM: allocate a pkey, tag the page, set Access-Disable in PKRU *)
  let pkey = p.next_pkey in
  p.next_pkey <- pkey + 1;
  Memory.set_pkey p.mem ~addr:0 ~len ~pkey;
  List.iter (fun th -> th.regs.pkru <- th.regs.pkru lor (1 lsl (2 * pkey))) p.threads;
  charge w ctx.thread 800

(* ------------------------------------------------------------------ *)
(* Two-byte rewriting                                                  *)

(** Rewrite a [syscall]/[sysenter] site to [callq *%rax], the zpoline
    transformation.  [atomic] writes both bytes in one step and flushes
    the writer's icache (safe at load time); the unsafe split used by
    lazypoline lives in that module. *)
let rewrite_site_atomic (ctx : ctx) ~site =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  (* save page permissions, make writable, restore — the correct
     sequence (zpoline / K23; Section 4.5) *)
  let saved = Memory.get_perm p.mem site in
  Memory.set_perm p.mem ~addr:site ~len:2 ~perm:Memory.perm_rwx;
  Memory.write_u8_raw p.mem site 0xff;
  Memory.write_u8_raw p.mem (site + 1) 0xd0;
  (match saved with
  | Some perm -> Memory.set_perm p.mem ~addr:site ~len:2 ~perm
  | None -> ());
  code_write_barrier w ~addr:site ~len:2;
  charge w ctx.thread 400

(** The regions a rewriter scans: executable, and not the interposer's
    own code (real interposers live in a separate dlmopen namespace). *)
let scannable_regions (p : proc) =
  List.filter
    (fun r ->
      r.r_perm.Memory.x
      && match r.r_owner with
         | App | Libc | Ldso | Lib _ -> true
         | Vdso | Interposer | Trampoline | Anon | Stack -> false)
    p.regions

(* ------------------------------------------------------------------ *)
(* SIGSYS handler skeleton                                             *)

(** Labels used by the generated handler code. *)
let sigsys_handler_sym = "__sigsys_handler"

let sigsys_post_sym = "__sigsys_post"

(** Assembly of a SIGSYS handler: [extra_items] run first (lazypoline
    splices its two rewriting steps there), then the common
    pre-vcall / syscall gadget / post-vcall / rt_sigreturn sequence.
    The gadget and the sigreturn syscall live in the interposer's own
    text, which SUD allowlists — the standard recipe from Section 2.1. *)
let sigsys_handler_items ?(extra_items = []) () =
  [ Asm.Label sigsys_handler_sym ]
  @ extra_items
  @ [
      Asm.Vcall_named "sigsys_pre";
      Asm.Label "__sigsys_gadget";
      Asm.I Insn.Syscall;
      Asm.Label sigsys_post_sym;
      Asm.Vcall_named "sigsys_post";
      Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigreturn));
      Asm.I Insn.Syscall;
    ]

(** AArch64 twin of {!sigsys_handler_items}: same labels, same vcall
    names, [svc #0] gadgets instead of [syscall] and the sigreturn
    number materialised into [x8].  Both assemble to the ISA-neutral
    program type, so the host side ({!sigsys_pre}/{!sigsys_post}) is
    shared. *)
let sigsys_handler_items_arm ?(extra_items = []) () =
  let module A = K23_isa_arm.Asm_arm in
  let module Arm = K23_isa_arm.Arm in
  [ A.Label sigsys_handler_sym ]
  @ extra_items
  @ [
      A.Vcall_named "sigsys_pre";
      A.Label "__sigsys_gadget";
      A.I (Arm.Svc 0);
      A.Label sigsys_post_sym;
      A.Vcall_named "sigsys_post";
    ]
  @ List.map (fun i -> A.I i) (Arm.li 8 Sysno.rt_sigreturn)
  @ [ A.I (Arm.Svc 0) ]

(** Host side of the SIGSYS path.  [im] is the interposer image (for
    label address lookup); [on_sigsys] is an optional extra step run
    before the user handler (K23 uses it for the prctl guard). *)
let sigsys_pre (cfg : config) ~(im : image Lazy.t) ?(on_sigsys = fun _ ~site:_ ~nr:_ -> ()) ()
    (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  let w = ctx.world in
  charge w th (cfg.pre_cost + 40);
  match th.frames with
  | [] -> abort ctx ~why:"sigsys_pre outside signal handler"
  | frame :: _ ->
    let nr = frame.fr_sysno and site = frame.fr_site and args = frame.fr_args in
    set_selector th cfg selector_allow;
    on_sigsys ctx ~site ~nr;
    if proc_dead p then ()
    else begin
      cfg.stats.via_sigsys <- cfg.stats.via_sigsys + 1;
      let post_addr =
        match Mapper.image_sym p (Lazy.force im) sigsys_post_sym with
        | Some a -> a
        | None -> panic "%s: missing %s" cfg.cfg_name sigsys_post_sym
      in
      match cfg.handler ctx ~nr ~args ~site with
      | Forward ->
        (* load the attempted syscall into the register file and fall
           into the gadget (ABI register indices come from the ISA:
           rax/rdi/... on x86-64, x8/x0..x5 on arm64) *)
        let isa = w.isa in
        Regs.seti th.regs (K23_isa.Isa.nr_index isa) nr;
        Array.iteri (fun i idx -> Regs.seti th.regs idx args.(i)) (K23_isa.Isa.arg_indices isa)
      | Emulate v ->
        Regs.set th.regs RAX v;
        th.regs.rip <- post_addr
    end

let sigsys_post (cfg : config) (ctx : ctx) =
  let th = ctx.thread in
  charge ctx.world th cfg.post_cost;
  match th.frames with
  | [] -> abort ctx ~why:"sigsys_post outside signal handler"
  | frame :: _ ->
    (* store the result into the saved context; the saved rip already
       points past the trapping instruction, so sigreturn resumes
       cleanly (the modern modify-the-signal-context technique) *)
    Regs.set frame.fr_regs RAX (Regs.get th.regs RAX);
    set_selector th cfg selector_block

(** Install the SIGSYS handler and arm SUD for the current thread (and
    have children inherit it), allowlisting the interposer's own text
    region.  Runs from an interposer constructor (host side; the
    corresponding sigaction/prctl kernel work is charged). *)
let arm_sud (ctx : ctx) ~(im : image) ~selector_sym =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  let handler_addr =
    match Mapper.image_sym p im sigsys_handler_sym with
    | Some a -> a
    | None -> panic "arm_sud: image %s has no SIGSYS handler" im.im_name
  in
  Hashtbl.replace p.sig_handlers sigsys handler_addr;
  let sel_addr =
    match Mapper.image_sym p im selector_sym with
    | Some a -> a
    | None -> panic "arm_sud: image %s has no selector %s" im.im_name selector_sym
  in
  (* allowlist: the interposer's text region *)
  let text_region =
    List.find
      (fun r ->
        (match r.r_image with Some i -> i == im | None -> false) && r.r_sec = `Text)
      p.regions
  in
  let allow_lo = text_region.r_start in
  let allow_hi = text_region.r_start + text_region.r_len in
  ctx.thread.sud <- Some { sel_addr; allow_lo; allow_hi };
  w.sud_ever_armed <- true;
  Kern.ktrace_count w p "sud.arm";
  Kern.ktrace_event w ctx.thread
    (K23_obs.Event.Sud_toggle { armed = true; sel_addr; allow_lo; allow_hi });
  charge w ctx.thread 500;
  sel_addr
