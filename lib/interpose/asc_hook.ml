(** ASC-Hook-style AArch64 rewriting interposition.

    The fixed-width twin of zpoline's transformation (Section 8's
    "other ISAs" discussion, made concrete): every word that encodes
    [svc] is overwritten with a single [b] to a per-site 16-byte
    trampoline slot

    {v
      slot+0   vcall asc_pre     ; handler entry (host escape)
      slot+4   svc  #0           ; the re-issued syscall
      slot+8   vcall asc_post    ; handler exit
      slot+12  b    site+4       ; statically-known return
    v}

    What the shape buys, structurally:
    - the patch is one aligned 32-bit store — architecturally atomic,
      so the torn-write pitfall (P5) cannot arise;
    - aligned 4-byte decode cannot desynchronise, so the sweep that
      discovers sites is exact over {e instructions} (no P2a overlook,
      no P3b partial-instruction gadgets);
    - entry is a plain [b], not [bl]: unlike an x86 [callq *%rax]
      rewrite there is no pushed return address and no clobbered link
      register, and [svc] itself clobbers nothing (x86's [syscall]
      trashes rcx/r11) — the trampoline is register-transparent, so no
      per-site register spill is needed.

    What it cannot buy: on AArch64 literal pools live in executable
    text, and to a fixed-width sweep a data word whose value aliases
    the [svc] encoding is indistinguishable from code.  Offline
    validation is exactly {!K23_isa_arm.Arm.raw_svc_pattern_sites} —
    the same predicate the patcher uses — so aliasing words {e will}
    be patched and the P3a residual is structural, not a bug.  The
    fuzzer's [Svc_alias] shape exercises precisely this.

    Slots must be [b]-reachable (±2^25 words) from the site; slabs are
    therefore allocated near the region they serve, mirroring
    ASC-Hook's near-code mmap hint.  Unreachable sites are left
    unpatched and counted. *)

open K23_isa
open K23_machine
open K23_kernel
open Kern
open Interpose
module Arm = K23_isa_arm.Arm

let lib_path = "/usr/lib/libasc.so"

let make_config ~handler ~stats =
  {
    cfg_name = "asc-hook";
    pre_cost = 30;  (* branch + host entry: no signal, no stack switch *)
    post_cost = 15;
    null_check = None;
    null_check_cost = 0;
    stack_switch = false;
    sud_selector = (fun _ -> None);
    handler;
    stats;
  }

let slot_len = 16
let b_range = 1 lsl 25 (* [b] reach in words, signed *)

(** Find a free, page-aligned range of [len] bytes near [near]:
    low-memory regions (the fixed-address main executable) get slabs
    from a low cursor so the app heap never grows into them; everything
    else rides the process mmap cursor, which already sits next to the
    libraries.  Mirrors mmap-with-hint placement. *)
let alloc_near (p : proc) ~near ~len =
  let len = Memory.align_up len in
  if near < 0x4000_0000 then begin
    let overlaps a =
      List.exists (fun r -> a < r.r_start + r.r_len && r.r_start < a + len) p.regions
    in
    let rec go a = if overlaps a then go (a + 0x10000) else a in
    go 0x0400_0000
  end
  else begin
    let base = Memory.align_up p.mmap_cursor in
    p.mmap_cursor <- base + len + 0x10000;
    base
  end

(** Build, map and wire one trampoline slab serving [sites] (addresses
    of svc-pattern words inside one region), then atomically patch each
    reachable site.  Returns the number of sites actually patched. *)
let install_slab (ctx : ctx) (cfg : config) ~region_name sites =
  let th = ctx.thread in
  let p = th.t_proc in
  let w = ctx.world in
  let n = List.length sites in
  let sites = Array.of_list sites in
  let base = alloc_near p ~near:sites.(0) ~len:(n * slot_len) in
  (* host side: recover the slot index from rip (asc_pre runs with rip
     just past the vcall at slot+0, i.e. at slot+4) *)
  let asc_pre ctx =
    let th = ctx.thread in
    let w = ctx.world in
    charge w th cfg.pre_cost;
    let slot = th.regs.rip - 4 in
    let idx = (slot - base) / slot_len in
    let site = sites.(idx) in
    let nr = Regs.geti th.regs (Isa.nr_index w.isa) in
    let args = syscall_args th in
    cfg.stats.via_rewrite <- cfg.stats.via_rewrite + 1;
    match cfg.handler ctx ~nr ~args ~site with
    | Forward -> () (* fall into the slot's svc: registers untouched *)
    | Emulate v ->
      Regs.set th.regs RAX v;
      th.regs.rip <- slot + 8
  in
  let asc_post ctx = charge ctx.world ctx.thread cfg.post_cost in
  let text = Bytes.create (n * slot_len) in
  Array.iteri
    (fun i site ->
      let slot = base + (i * slot_len) in
      let word off insn = Bytes.blit (Arm.bytes_of_word (Arm.encode insn)) 0 text ((i * slot_len) + off) 4 in
      word 0 (Arm.Vcall 0);
      word 4 (Arm.Svc 0);
      word 8 (Arm.Vcall 1);
      word 12 (Arm.B ((site + 4 - (slot + 12)) asr 2)))
    sites;
  let im =
    {
      im_name = Printf.sprintf "[asc-slab:%s]" region_name;
      im_prog =
        {
          Asm.text;
          data = Bytes.create 0;
          symbols = [];
          relocs = [];
          vcalls = [ "asc_pre"; "asc_post" ];
        };
      im_host_fns = [ ("asc_pre", asc_pre); ("asc_post", asc_post) ];
      im_init = None;
      im_entry = None;
      im_needed = [];
      im_owner = Trampoline;
    }
  in
  let len = Memory.align_up (Bytes.length text) in
  Memory.map p.mem ~addr:base ~len ~perm:Memory.perm_rx;
  Memory.write_bytes_raw p.mem base text;
  add_region p
    {
      r_start = base;
      r_len = len;
      r_perm = Memory.perm_rx;
      r_name = im.im_name;
      r_owner = Trampoline;
      r_image = Some im;
      r_sec = `Text;
    };
  charge w th 800;
  (* the patches themselves: one aligned store per site *)
  let patched = ref 0 in
  Array.iteri
    (fun i site ->
      let slot = base + (i * slot_len) in
      let rel = (slot - site) asr 2 in
      if rel >= b_range || rel < -b_range then
        ktrace_count w p "asc.unreachable"
      else begin
        let saved = Memory.get_perm p.mem site in
        Memory.set_perm p.mem ~addr:site ~len:4 ~perm:Memory.perm_rwx;
        Memory.write_u32_raw p.mem site (Arm.encode (Arm.B rel));
        (match saved with
        | Some perm -> Memory.set_perm p.mem ~addr:site ~len:4 ~perm
        | None -> ());
        code_write_barrier w ~addr:site ~len:4;
        charge w th 400;
        incr patched
      end)
    sites;
  !patched

(** Patch every svc-pattern word of every scannable region.  Site
    discovery {e is} the offline validation: on a fixed-width ISA the
    exact sweep and the raw pattern scan agree by construction, so
    aliasing data words are patched too (the residual P3a). *)
let patch_all (ctx : ctx) (cfg : config) =
  let p = ctx.thread.t_proc in
  let w = ctx.world in
  List.iter
    (fun r ->
      let bytes = Memory.read_bytes_raw p.mem r.r_start r.r_len in
      match Arm.raw_svc_pattern_sites bytes ~base:r.r_start with
      | [] -> ()
      | sites ->
        let n = install_slab ctx cfg ~region_name:r.r_name sites in
        Kern.ktrace_count w p "asc.patch";
        if w.trace then
          Printf.eprintf "[asc-hook] %s: %d/%d sites patched\n%!" r.r_name n (List.length sites))
    (scannable_regions p)

let image ~handler ~stats () : image =
  let module A = K23_isa_arm.Asm_arm in
  let cfg = make_config ~handler ~stats in
  let items = [ A.Label "__asc_init"; A.Vcall_named "asc_init"; A.I Arm.Ret ] in
  {
    im_name = lib_path;
    im_prog = A.assemble items;
    im_host_fns = [ ("asc_init", fun ctx -> patch_all ctx cfg) ];
    im_init = Some "__asc_init";
    im_entry = None;
    im_needed = [];
    im_owner = Interposer;
  }

let launch w ?inner ~path ?argv ?(env = []) () =
  ktrace_annot w "mech:asc-hook";
  let stats = fresh_stats () in
  let handler = counting_handler ?inner stats in
  register_library w (image ~handler ~stats ());
  let env = add_preload env lib_path in
  match World.spawn w ~path ?argv ~env () with
  | Ok p -> Ok (p, stats)
  | Error e -> Error e
