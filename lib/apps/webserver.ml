(** Parameterised static-file web server: instantiated as the
    nginx-like and lighttpd-like workloads of Section 6.2.2.

    Architecture mirrors nginx: a master process creates the listening
    socket, forks [workers - 1] children, and every worker runs an
    accept/read/respond loop over persistent connections.  The
    per-request syscall sequence and the request-processing cost are
    parameters; Table 6's configurations (1/10 workers x 0/4 KiB
    files) map to instances of this builder. *)

open K23_isa
open K23_kernel

type req_op =
  | Read_req  (** read(conn, buf, 8192); connection closes on 0 *)
  | Compute  (** the parsing/response-generation work (host cost) *)
  | Write_resp  (** write(conn, resp, header + body) *)
  | Stat_file  (** cache-validation stat() *)
  | Fstat_conn
  | Ioctl_conn
  | Fcntl_conn
  | Clock  (** clock_gettime: vdso fast path when available *)
  | Open_file  (** openat the served file -> r12 *)
  | Read_file  (** read(r12, fbuf, 4096) *)
  | Close_file

type config = {
  name : string;
  path : string;
  port : int;
  workers : int;
  file_size : int;  (** 0 or 4096 *)
  init_site_count : int;  (** distinct startup syscall sites (Table 2) *)
  per_request : req_op list;
  compute_cost : int;
  resilient : bool;
      (** emit fault-tolerant request/response loops: framed reads,
          bounded [EINTR]/[EAGAIN] retry with a short [nanosleep]
          backoff, partial-write resumption, and an [accept] return
          check.  [false] (the default) emits the legacy instruction
          stream byte-for-byte — the chaos row ({!K23_eval.Load}) is
          the only user. *)
}

let served_file = "/srv/www/file4k"

let header_len = 128

(* nginx-like: 7 kernel syscalls per 0-KiB request, more for 4 KiB *)
let nginx ?(workers = 1) ?(file_size = 0) ?(resilient = false) () =
  {
    name = "nginx";
    path = "/usr/sbin/nginx";
    port = 8080;
    workers;
    file_size;
    init_site_count = 33;
    per_request =
      [ Read_req; Clock; Compute; Stat_file; Ioctl_conn; Fcntl_conn; Fstat_conn ]
      @ (if file_size > 0 then [ Open_file; Read_file; Close_file ] else [])
      @ [ Write_resp ];
    compute_cost = (if file_size > 0 then 19500 else 16000);
    resilient;
  }

(* lighttpd-like: leaner per-request syscall sequence *)
let lighttpd ?(workers = 1) ?(file_size = 0) ?(resilient = false) () =
  {
    name = "lighttpd";
    path = "/usr/sbin/lighttpd";
    port = 8081;
    workers;
    file_size;
    init_site_count = 36;
    per_request =
      [ Read_req; Clock; Compute; Fcntl_conn; Ioctl_conn ]
      @ (if file_size > 0 then [ Open_file; Read_file; Close_file ] else [])
      @ [ Write_resp ];
    compute_cost = (if file_size > 0 then 19000 else 15800);
    resilient;
  }

(* Backoff before a retry: nanosleep(200).  RSI must be 0 — the
   kernel stashes the wake deadline in arg 1. *)
let backoff_items =
  [
    Asm.I (Insn.Mov_ri (RDI, 200));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.Call_sym "nanosleep";
  ]

(* rax <= 0 after a read/write: jump to [retry] on EINTR/EAGAIN, give
   the connection up otherwise.  ECONNRESET also retries: the fault
   plane injects it as errno noise on an intact connection, so closing
   would orphan every later request the client sends on it. *)
let retry_or_close ~retry =
  [
    Asm.I (Insn.Cmp_ri (RAX, -Errno.eintr));
    Asm.Jc (Insn.Z, retry);
    Asm.I (Insn.Cmp_ri (RAX, -Errno.eagain));
    Asm.Jc (Insn.Z, retry);
    Asm.I (Insn.Cmp_ri (RAX, -Errno.econnreset));
    Asm.Jc (Insn.Z, retry);
    Asm.J "close_conn";
  ]

let op_items cfg = function
  | Read_req when cfg.resilient ->
    (* framed read: accumulate the fixed 64-byte request in r13,
       retrying EINTR/EAGAIN (budget in r15) with a short backoff — a
       short read must not desynchronize the framing *)
    [
      Asm.I (Insn.Mov_ri (R13, 0));
      Asm.I (Insn.Mov_ri (R15, 8));
      Asm.Label "rq_read";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "buf");
      Asm.I (Insn.Add_rr (RSI, R13));
      Asm.I (Insn.Mov_ri (RDX, 64));
      Asm.I (Insn.Sub_rr (RDX, R13));
      Asm.Call_sym "read";
      Asm.I (Insn.Cmp_ri (RAX, 0));
      Asm.Jc (Insn.GT, "rq_got");
    ]
    @ retry_or_close ~retry:"rq_retry"
    @ [
        Asm.Label "rq_retry";
        Asm.I (Insn.Sub_ri (R15, 1));
        Asm.Jc (Insn.LE, "close_conn");
      ]
    @ backoff_items
    @ [
        Asm.J "rq_read";
        Asm.Label "rq_got";
        Asm.I (Insn.Add_rr (R13, RAX));
        Asm.I (Insn.Cmp_ri (R13, 64));
        Asm.Jc (Insn.LT, "rq_read");
      ]
  | Read_req ->
    [
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "buf");
      (* requests are fixed 64-byte frames *)
      Asm.I (Insn.Mov_ri (RDX, 64));
      Asm.Call_sym "read";
      Asm.I (Insn.Cmp_ri (RAX, 0));
      Asm.Jc (Insn.LE, "close_conn");
    ]
  | Compute -> [ Asm.Vcall_named "srv_work" ]
  | Write_resp when cfg.resilient ->
    (* partial-write resumption: r13 counts the bytes still owed
       (countdown, so the length is never a Cmp_ri imm8 operand);
       EINTR/EAGAIN retry until the frame is out — abandoning a
       half-written response would desynchronize the client *)
    let len = header_len + cfg.file_size in
    [
      Asm.I (Insn.Mov_ri (R13, len));
      Asm.Label "wr_loop";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "resp");
      Asm.I (Insn.Mov_ri (RDX, len));
      Asm.I (Insn.Add_rr (RSI, RDX));
      Asm.I (Insn.Sub_rr (RSI, R13));
      Asm.I (Insn.Mov_rr (RDX, R13));
      Asm.Call_sym "write";
      Asm.I (Insn.Cmp_ri (RAX, 0));
      Asm.Jc (Insn.GT, "wr_ok");
    ]
    @ retry_or_close ~retry:"wr_retry"
    @ [ Asm.Label "wr_retry" ]
    @ backoff_items
    @ [
        Asm.J "wr_loop";
        Asm.Label "wr_ok";
        Asm.I (Insn.Sub_rr (R13, RAX));
        Asm.I (Insn.Cmp_ri (R13, 0));
        Asm.Jc (Insn.GT, "wr_loop");
      ]
  | Write_resp ->
    [
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "resp");
      Asm.I (Insn.Mov_ri (RDX, header_len + cfg.file_size));
      Asm.Call_sym "write";
    ]
  | Stat_file ->
    [
      Asm.Mov_sym (RDI, "fpath");
      Asm.Mov_sym (RSI, "statbuf");
      Asm.Call_sym "stat";
    ]
  | Fstat_conn ->
    [
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "statbuf");
      Asm.Call_sym "fstat";
    ]
  | Ioctl_conn ->
    [ Asm.I (Insn.Mov_rr (RDI, R14)); Asm.I (Insn.Mov_ri (RSI, 0x541b)); Asm.Call_sym "ioctl" ]
  | Fcntl_conn ->
    [ Asm.I (Insn.Mov_rr (RDI, R14)); Asm.I (Insn.Mov_ri (RSI, 4)); Asm.Call_sym "fcntl" ]
  | Clock ->
    [ Asm.I (Insn.Mov_ri (RDI, 0)); Asm.Mov_sym (RSI, "ts"); Asm.Call_sym "clock_gettime" ]
  | Open_file ->
    [
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "fpath");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R12, RAX));
    ]
  | Read_file ->
    [
      Asm.I (Insn.Mov_rr (RDI, R12));
      Asm.Mov_sym (RSI, "fbuf");
      Asm.I (Insn.Mov_ri (RDX, 4096));
      Asm.Call_sym "read";
    ]
  | Close_file -> [ Asm.I (Insn.Mov_rr (RDI, R12)); Asm.Call_sym "close" ]

let items cfg =
  [ Asm.Label "main" ]
  @ Appkit.init_sites cfg.init_site_count
  @ [
      (* socket / bind / listen *)
      Asm.I (Insn.Mov_ri (RDI, 2));
      Asm.I (Insn.Mov_ri (RSI, 1));
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "socket";
      Asm.I (Insn.Mov_rr (RBX, RAX));
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.I (Insn.Mov_ri (RSI, cfg.port));
      Asm.Call_sym "bind";
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.I (Insn.Mov_ri (RSI, 128));
      Asm.Call_sym "listen";
      (* fork the additional workers *)
      Asm.I (Insn.Mov_ri (R15, cfg.workers - 1));
      Asm.Label "fork_loop";
      Asm.I (Insn.Cmp_ri (R15, 0));
      Asm.Jc (Insn.LE, "accept_loop");
      Asm.Call_sym "fork";
      Asm.I (Insn.Test_rr (RAX, RAX));
      Asm.Jc (Insn.Z, "accept_loop");
      Asm.I (Insn.Sub_ri (R15, 1));
      Asm.J "fork_loop";
      (* worker *)
      Asm.Label "accept_loop";
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.Call_sym "accept";
    ]
  @ (if cfg.resilient then
       (* injected EMFILE/EAGAIN: re-accept instead of reading a
          garbage fd *)
       [ Asm.I (Insn.Cmp_ri (RAX, 0)); Asm.Jc (Insn.LT, "accept_loop") ]
     else [])
  @ [
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.Label "conn_loop";
    ]
  @ List.concat_map (op_items cfg) cfg.per_request
  @ [
      Asm.J "conn_loop";
      Asm.Label "close_conn";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
      Asm.J "accept_loop";
      (* data *)
      Asm.Section `Data;
      Asm.Label "buf";
      Asm.Zeros 8192;
      Asm.Label "fbuf";
      Asm.Zeros 4096;
      Asm.Label "statbuf";
      Asm.Zeros 64;
      Asm.Label "ts";
      Asm.Zeros 16;
      Asm.Label "fpath";
      Asm.Strz served_file;
      Asm.Label "resp";
      Asm.Blob (Bytes.make (header_len + cfg.file_size) 'R');
    ]

let host_fns cfg = [ ("srv_work", fun ctx -> Appkit.charge_work ctx cfg.compute_cost) ]

(** Register the server binary (and the file it serves). *)
let register w cfg =
  ignore (Vfs.write_file w.Kern.vfs served_file (String.make 4096 'F'));
  let needed =
    K23_userland.
      [ Libc.path; Stdlibs.libcrypto; Stdlibs.libz; Stdlibs.libpcre ]
  in
  ignore
    (K23_userland.Sim.register_app w ~path:cfg.path ~needed ~host_fns:(host_fns cfg)
       (items cfg))
