(** redis-like in-memory key-value server (Section 6.2.2).

    Mirrors redis' threading model: I/O threads read and write client
    sockets in parallel, but command execution is serialised through a
    single logical execution context (the "main thread" in redis).  We
    model that serial section analytically ({!Appkit.serial_enter});
    it is what makes the 6-I/O-thread configuration scale sub-linearly
    exactly as the paper's numbers show. *)

open K23_isa

type config = {
  path : string;
  port : int;
  io_threads : int;
  init_site_count : int;
  parse_cost : int;  (** per-request protocol parsing (parallel part) *)
  serial_cost : int;  (** per-request command execution (serial part) *)
  resilient : bool;
      (** fault-tolerant I/O loops (framed reads, EINTR/EAGAIN retry,
          partial-write resumption, accept check), as in
          {!Webserver}.  [false] emits the legacy stream. *)
}

let default ?(io_threads = 1) ?(resilient = false) () =
  {
    path = "/usr/bin/redis-server";
    port = 6379;
    io_threads;
    init_site_count = 86;
    parse_cost = 500;
    serial_cost = 7800;
    resilient;
  }

(* shared retry snippets for the resilient variant, mirroring
   {!Webserver}: backoff is nanosleep(200) with RSI = 0 (arg 1 is the
   kernel's wake-deadline stash slot) *)
let backoff_items =
  [
    Asm.I (Insn.Mov_ri (RDI, 200));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.Call_sym "nanosleep";
  ]

let retry_or_close ~retry =
  [
    Asm.I (Insn.Cmp_ri (RAX, -K23_kernel.Errno.eintr));
    Asm.Jc (Insn.Z, retry);
    Asm.I (Insn.Cmp_ri (RAX, -K23_kernel.Errno.eagain));
    Asm.Jc (Insn.Z, retry);
    (* injected reset noise on an intact connection: retry, as in
       {!Webserver.retry_or_close} *)
    Asm.I (Insn.Cmp_ri (RAX, -K23_kernel.Errno.econnreset));
    Asm.Jc (Insn.Z, retry);
    Asm.J "close_conn";
  ]

let items cfg =
  [ Asm.Label "main" ]
  @ Appkit.init_sites cfg.init_site_count
  @ [
      Asm.I (Insn.Mov_ri (RDI, 2));
      Asm.I (Insn.Mov_ri (RSI, 1));
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "socket";
      Asm.I (Insn.Mov_rr (RBX, RAX));
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.I (Insn.Mov_ri (RSI, cfg.port));
      Asm.Call_sym "bind";
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.I (Insn.Mov_ri (RSI, 511));
      Asm.Call_sym "listen";
      (* spawn the extra I/O threads *)
      Asm.I (Insn.Mov_ri (R15, cfg.io_threads - 1));
      Asm.Label "spawn_loop";
      Asm.I (Insn.Cmp_ri (R15, 0));
      Asm.Jc (Insn.LE, "accept_loop");
      (* mmap a stack for the thread *)
      Asm.I (Insn.Mov_ri (RDI, 0));
      Asm.I (Insn.Mov_ri (RSI, 0x10000));
      Asm.I (Insn.Mov_ri (RDX, 3));
      Asm.I (Insn.Mov_ri (RCX, 0x20));
      Asm.I (Insn.Mov_ri (R8, -1));
      Asm.I (Insn.Mov_ri (R9, 0));
      Asm.Call_sym "mmap";
      Asm.I (Insn.Mov_rr (RSI, RAX));
      Asm.I (Insn.Mov_ri (R9, 0xf000));
      Asm.I (Insn.Add_rr (RSI, R9));
      Asm.Mov_sym (RDI, "io_worker");
      Asm.I (Insn.Mov_rr (RDX, RBX));  (* pass the listening fd *)
      Asm.Call_sym "clone";
      Asm.I (Insn.Sub_ri (R15, 1));
      Asm.J "spawn_loop";
      (* thread entry: listening fd arrives in rdi *)
      Asm.Label "io_worker";
      Asm.I (Insn.Mov_rr (RBX, RDI));
      Asm.Label "accept_loop";
      Asm.I (Insn.Mov_rr (RDI, RBX));
      Asm.Call_sym "accept";
    ]
  @ (if cfg.resilient then
       [ Asm.I (Insn.Cmp_ri (RAX, 0)); Asm.Jc (Insn.LT, "accept_loop") ]
     else [])
  @ [
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.Label "conn_loop";
    ]
  @ (if cfg.resilient then
       (* framed 64-byte read with bounded EINTR/EAGAIN retry, as in
          {!Webserver.op_items}; r13 accumulates, r15 is the budget *)
       [
         Asm.I (Insn.Mov_ri (R13, 0));
         Asm.I (Insn.Mov_ri (R15, 8));
         Asm.Label "rq_read";
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "buf");
         Asm.I (Insn.Add_rr (RSI, R13));
         Asm.I (Insn.Mov_ri (RDX, 64));
         Asm.I (Insn.Sub_rr (RDX, R13));
         Asm.Call_sym "read";
         Asm.I (Insn.Cmp_ri (RAX, 0));
         Asm.Jc (Insn.GT, "rq_got");
       ]
       @ retry_or_close ~retry:"rq_retry"
       @ [
           Asm.Label "rq_retry";
           Asm.I (Insn.Sub_ri (R15, 1));
           Asm.Jc (Insn.LE, "close_conn");
         ]
       @ backoff_items
       @ [
           Asm.J "rq_read";
           Asm.Label "rq_got";
           Asm.I (Insn.Add_rr (R13, RAX));
           Asm.I (Insn.Cmp_ri (R13, 64));
           Asm.Jc (Insn.LT, "rq_read");
         ]
     else
       [
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "buf");
         Asm.I (Insn.Mov_ri (RDX, 64));
         Asm.Call_sym "read";
         Asm.I (Insn.Cmp_ri (RAX, 0));
         Asm.Jc (Insn.LE, "close_conn");
       ])
  @ [
      Asm.Vcall_named "rd_parse";
      (* command execution happens on the serial (main-thread) path;
         with multiple I/O threads the hand-off costs a real
         notification syscall on that critical path *)
      Asm.Vcall_named "rd_mark";
    ]
  @ (if cfg.io_threads > 1 then
       [
         Asm.I (Insn.Mov_ri (RAX, K23_kernel.Sysno.getpid));
         Asm.I Insn.Syscall;
       ]
     else [])
  @ [ Asm.Vcall_named "rd_exec" ]
  @ (if cfg.resilient then
       (* partial-write resumption with EINTR/EAGAIN retry (countdown
          of bytes owed in r13), as in {!Webserver.op_items} *)
       [
         Asm.I (Insn.Mov_ri (R13, 64));
         Asm.Label "wr_loop";
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "resp");
         Asm.I (Insn.Mov_ri (RDX, 64));
         Asm.I (Insn.Add_rr (RSI, RDX));
         Asm.I (Insn.Sub_rr (RSI, R13));
         Asm.I (Insn.Mov_rr (RDX, R13));
         Asm.Call_sym "write";
         Asm.I (Insn.Cmp_ri (RAX, 0));
         Asm.Jc (Insn.GT, "wr_ok");
       ]
       @ retry_or_close ~retry:"wr_retry"
       @ [ Asm.Label "wr_retry" ]
       @ backoff_items
       @ [
           Asm.J "wr_loop";
           Asm.Label "wr_ok";
           Asm.I (Insn.Sub_rr (R13, RAX));
           Asm.I (Insn.Cmp_ri (R13, 0));
           Asm.Jc (Insn.GT, "wr_loop");
         ]
     else
       [
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "resp");
         Asm.I (Insn.Mov_ri (RDX, 64));
         Asm.Call_sym "write";
       ])
  @ [
      Asm.J "conn_loop";
      Asm.Label "close_conn";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Call_sym "close";
      Asm.J "accept_loop";
      Asm.Section `Data;
      Asm.Label "buf";
      Asm.Zeros 8192;
      Asm.Label "resp";
      Asm.Blob (Bytes.make 64 '$');
    ]

let register w cfg =
  let serial = Appkit.serial_create () in
  let marks : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let clock (ctx : K23_kernel.Kern.ctx) = ctx.world.core_cycles.(ctx.thread.core) in
  let host_fns =
    [
      ("rd_parse", fun ctx -> Appkit.charge_work ctx cfg.parse_cost);
      ("rd_mark", fun ctx -> Hashtbl.replace marks ctx.K23_kernel.Kern.thread.tid (clock ctx));
      ( "rd_exec",
        fun ctx ->
          let tid = ctx.K23_kernel.Kern.thread.tid in
          let measured_extra =
            match Hashtbl.find_opt marks tid with Some m -> clock ctx - m | None -> 0
          in
          Appkit.serial_enter_measured ctx serial ~cost:cfg.serial_cost ~measured_extra );
    ]
  in
  let needed = K23_userland.[ Libc.path; Stdlibs.libcrypto; Stdlibs.libz ] in
  ignore (K23_userland.Sim.register_app w ~path:cfg.path ~needed ~host_fns (items cfg))
