(** wrk-like / redis-benchmark-like load generator.

    One client process with [threads] threads, driving connections in
    one of two arrival disciplines:

    - {b Closed loop} (the paper's Table 6 setup): each thread opens
      [conns] connections sequentially and drives each in rounds — it
      primes a pipeline of [depth] requests, then slides the window
      (one response in, one request out).  A request is only sent once
      an earlier response made room, so server-side queueing delay is
      invisible: the client slows down with the server.

    - {b Open loop}: a deterministic seeded-PRNG arrival process
      (exponential inter-arrival gaps) schedules request send times
      independently of response arrival, the way real users behave.
      When the server falls behind, requests keep arriving on
      schedule and queueing delay shows up in the measured latency.
      Each request is stamped with global-simulated-time send/receive
      cycles through the kernel's {!Kern.note_req_send} /
      {!Kern.note_req_recv} hooks, and latency is measured from the
      {e scheduled} send time — including any client-side backlog — so
      the numbers are immune to coordinated omission.

    A per-request cost models the client's own protocol work: small
    for wrk, substantial for redis-benchmark (which is why the paper's
    1-I/O-thread redis configuration is client-bound and barely feels
    the interposer).

    The thread logic is a host-side state machine (same pattern as the
    dynamic loader): every system call the client performs is still a
    genuine [syscall] instruction in the client binary. *)

open K23_util
open K23_isa
open K23_kernel
open K23_machine

type arrival =
  | Closed
  | Open of { rate : int; requests : int; seed : int }
      (** [rate] requests/sec per thread, [requests] total per thread;
          [seed] makes the arrival process reproducible. *)

type config = {
  path : string;
  port : int;
  threads : int;
  conns : int;
      (** connections per thread: served sequentially in closed loop,
          concurrently (round-robin sends) in open loop *)
  depth : int;  (** closed loop: outstanding requests per connection *)
  rounds : int;  (** closed loop: rounds of [depth] requests per connection *)
  req_cost : int;  (** client-side work per request *)
  resp_len : int;  (** exact response size, for framed reads *)
  arrival : arrival;
  retries : int;
      (** bounded retry-with-backoff budget for [EINTR]/[EAGAIN] and
          failed socket allocation, plus partial-write resumption —
          the chaos-row client ({!K23_eval.Load}).  [0] (the default)
          is the legacy client, instruction-for-instruction. *)
}

type results = {
  mutable completed : int;
  mutable started_at : int option;  (** cycles when the load phase began *)
  mutable errors : int;
  mutable latencies : int list;
      (** open loop only: per-request latency in cycles (receive stamp
          minus scheduled send time), newest first *)
}

type mode =
  | Spawn of int  (** remaining threads to create *)
  | Mmap_stack of int
  | Socket
  | Connect
  | Close_retry  (** connect failed: release the fd before retrying *)
  | Fill  (** prime the pipeline with [depth] requests *)
  | Steady_recv  (** sliding window: read one response ... *)
  | Steady_send  (** ... then send the next request *)
  | Close
  | Open_step  (** open loop: send on schedule, read what's ready *)
  | Open_close of int  (** open loop: close connection [i] and up *)
  | Backoff of mode
      (** [retries > 0] only: sleep briefly, then resume the wrapped
          mode — the retry half of retry-with-backoff *)
  | Finished

(** Open-loop per-thread state: all [conns] connections live at once. *)
type ostate = {
  o_fds : int array;
  o_pending : (int * int) Queue.t array;
      (** per-connection FIFO of in-flight (request id, scheduled send
          cycles); responses arrive in order on a connection *)
  o_partial : int array;  (** bytes of the current response already read *)
  mutable o_next_at : int;  (** scheduled send time of the next request *)
  mutable o_sent : int;
  mutable o_wpart : int;
      (** bytes of the due request already written ([retries > 0]:
          short writes resume the frame instead of desynchronizing the
          server's framing; only one send is in flight at a time) *)
  o_rng : Rng.t;
}

type tstate = {
  mutable mode : mode;
  mutable nconn : int;
  mutable cur_fd : int;
  mutable sent : int;
  mutable received : int;
  mutable partial : int;  (** closed loop: bytes of the current response read *)
  mutable stack : int;
  mutable post : int -> unit;
  mutable attempts : int;  (** consecutive retries of the current call *)
  mutable wpart : int;  (** closed loop: bytes of the current request written *)
  ost : ostate option;  (** [Some] iff [cfg.arrival] is [Open] *)
}

let fresh_tstate cfg ~tid mode =
  let ost =
    match cfg.arrival with
    | Closed -> None
    | Open { seed; _ } ->
      Some
        {
          o_fds = Array.make (max 1 cfg.conns) (-1);
          o_pending = Array.init (max 1 cfg.conns) (fun _ -> Queue.create ());
          o_partial = Array.make (max 1 cfg.conns) 0;
          o_next_at = 0;
          o_sent = 0;
          o_wpart = 0;
          (* distinct stream per thread; tids are assigned
             deterministically, so the arrival schedule is too *)
          o_rng = Rng.create ~seed:(seed + (0x9e3779b9 * tid));
        }
  in
  {
    mode;
    nconn = 0;
    cur_fd = -1;
    sent = 0;
    received = 0;
    partial = 0;
    stack = 0;
    post = ignore;
    attempts = 0;
    wpart = 0;
    ost;
  }

(** Exponential inter-arrival gap in cycles (Poisson arrivals), at
    least 1 so the schedule always advances. *)
let draw_gap rng ~rate =
  let u = Rng.float rng in
  let mean = float_of_int Kern.cycles_per_sec /. float_of_int rate in
  max 1 (int_of_float (-.log (1.0 -. u) *. mean))

let items () =
  [
    Asm.Label "main";
    Asm.Label "wk_thread_entry";
    Asm.Label "wk_loop";
    Asm.Vcall_named "wk_step";
    Asm.I (Insn.Cmp_ri (RBX, 0));
    Asm.Jc (Insn.NZ, "wk_notsys");
    Asm.I Insn.Syscall;
    Asm.Vcall_named "wk_ret";
    Asm.J "wk_loop";
    Asm.Label "wk_notsys";
    Asm.I (Insn.Cmp_ri (RBX, 1));
    Asm.Jc (Insn.NZ, "wk_exit_proc");
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit_thread";
    Asm.Label "wk_exit_proc";
    Asm.I (Insn.Xor_rr (RDI, RDI));
    Asm.Call_sym "exit";
    Asm.Section `Data;
    Asm.Label "wk_req";
    Asm.Blob (Bytes.make 64 'Q');
    Asm.Label "wk_buf";
    Asm.Zeros 8192;
  ]

(** Build and register the client; returns the shared results record. *)
let register w cfg : results =
  let results = { completed = 0; started_at = None; errors = 0; latencies = [] } in
  let states : (int, tstate) Hashtbl.t = Hashtbl.create 16 in
  let live_threads = ref cfg.threads in
  let im_ref = ref None in
  let lazy_im = lazy (Option.get !im_ref) in
  let state_of (ctx : Kern.ctx) =
    match Hashtbl.find_opt states ctx.thread.tid with
    | Some st -> st
    | None ->
      (* the first thread to step is the main thread: it spawns the
         others, which go straight to connecting *)
      let is_main = Hashtbl.length states = 0 in
      let st =
        fresh_tstate cfg ~tid:ctx.thread.tid
          (if is_main && cfg.threads > 1 then Spawn (cfg.threads - 1) else Socket)
      in
      Hashtbl.replace states ctx.thread.tid st;
      st
  in
  let data_sym (ctx : Kern.ctx) name =
    match Mapper.image_sym ctx.thread.t_proc (Lazy.force lazy_im) name with
    | Some a -> a
    | None -> Kern.panic "wrk: missing symbol %s" name
  in
  let set ctx r v = Regs.set ctx.Kern.thread.regs r v in
  let sys (ctx : Kern.ctx) st nr a0 a1 a2 ~post =
    set ctx RAX nr;
    set ctx RDI a0;
    set ctx RSI a1;
    set ctx RDX a2;
    set ctx R10 0;
    set ctx R8 0;
    set ctx R9 0;
    set ctx RBX 0;
    st.post <- post
  in
  let sys6 (ctx : Kern.ctx) st nr args ~post =
    set ctx RAX nr;
    set ctx RDI args.(0);
    set ctx RSI args.(1);
    set ctx RDX args.(2);
    set ctx R10 args.(3);
    set ctx R8 args.(4);
    set ctx R9 args.(5);
    set ctx RBX 0;
    st.post <- post
  in
  (* host-side readiness probe, standing in for epoll: data queued (or
     a FIN) on the connection's receive side *)
  let conn_readable (ctx : Kern.ctx) fd =
    match Hashtbl.find_opt ctx.thread.t_proc.Kern.fds fd with
    | Some (Kern.Fd_conn (c, ep)) ->
      Net.Byteq.length (Net.recv_q c ep) > 0 || Net.peer_closed c ep
    | _ -> true (* stale fd: let the read fail promptly *)
  in
  (* retry-with-backoff plumbing, live only when [cfg.retries > 0]
     (the chaos row): a retryable errno re-enters the same mode after a
     short sleep, growing linearly with consecutive attempts.
     ECONNRESET counts as retryable because the fault plane injects it
     as errno noise on a connection that is still intact — the retry
     stands in for the reconnect a real benchmark client would do. *)
  let retryable r = r = -Errno.eintr || r = -Errno.eagain || r = -Errno.econnreset in
  let backoff st next =
    st.attempts <- st.attempts + 1;
    st.mode <- Backoff next
  in
  let rec wk_step (ctx : Kern.ctx) =
    let st = state_of ctx in
    match st.mode with
    | Spawn 0 ->
      st.mode <- Socket;
      wk_step ctx
    | Spawn n ->
      st.mode <- Mmap_stack n;
      sys6 ctx st Sysno.mmap [| 0; 0x10000; 3; 0x20; -1; 0 |] ~post:(fun r ->
          if cfg.retries > 0 && r < 0 then begin
            (* injected ENOMEM: cloning onto a garbage stack would
               fault the child, so re-request the mapping *)
            results.errors <- results.errors + 1;
            backoff st (Spawn n)
          end
          else st.stack <- r)
    | Mmap_stack n ->
      st.mode <- Spawn (n - 1);
      sys ctx st Sysno.clone (data_sym ctx "wk_thread_entry") (st.stack + 0xf000) 0 ~post:ignore
    | Socket ->
      sys ctx st Sysno.socket 2 1 0 ~post:(fun r ->
          if cfg.retries > 0 && r < 0 then begin
            (* injected EMFILE/ENFILE: fds free up as other connections
               close, so back off and re-try the allocation *)
            results.errors <- results.errors + 1;
            backoff st Socket
          end
          else begin
            st.cur_fd <- r;
            st.attempts <- 0;
            st.mode <- Connect
          end)
    | Connect ->
      sys ctx st Sysno.connect st.cur_fd cfg.port 0 ~post:(fun r ->
          if r < 0 then begin
            (* server not listening yet: close the failed socket first,
               then retry with a fresh one (retrying without the close
               leaked one fd per attempt and exhausted the fd table
               under slow-start servers) *)
            results.errors <- results.errors + 1;
            st.mode <- Close_retry
          end
          else begin
            st.nconn <- st.nconn + 1;
            if results.started_at = None then results.started_at <- Some (Kern.now ctx.world);
            match cfg.arrival with
            | Closed ->
              st.sent <- 0;
              st.received <- 0;
              st.partial <- 0;
              (* rounds = 0 means "no requests": go straight to Close
                 instead of pushing one request through Fill *)
              st.mode <- (if cfg.depth * cfg.rounds = 0 then Close else Fill)
            | Open { rate; _ } ->
              let ost = Option.get st.ost in
              ost.o_fds.(st.nconn - 1) <- st.cur_fd;
              if st.nconn < cfg.conns then st.mode <- Socket
              else begin
                ost.o_next_at <- Kern.now ctx.world + draw_gap ost.o_rng ~rate;
                st.mode <- Open_step
              end
          end)
    | Close_retry ->
      sys ctx st Sysno.close st.cur_fd 0 0 ~post:(fun _ ->
          st.cur_fd <- -1;
          st.mode <- Socket)
    | Fill ->
      (* prime the pipeline: [depth] outstanding requests, like wrk's
         16 concurrent connections per thread *)
      let total = cfg.depth * cfg.rounds in
      if st.wpart = 0 then Appkit.charge_work ctx cfg.req_cost;
      sys ctx st Sysno.write st.cur_fd (data_sym ctx "wk_req" + st.wpart) (64 - st.wpart)
        ~post:(fun r ->
          if cfg.retries > 0 && retryable r && (st.attempts < cfg.retries || st.wpart > 0)
          then backoff st Fill
          else if cfg.retries > 0 && r >= 0 && st.wpart + r < 64 then
            (* short write: resume the frame from the offset, or the
               server's 64-byte request framing desynchronizes *)
            st.wpart <- st.wpart + r
          else begin
            st.attempts <- 0;
            st.wpart <- 0;
            st.sent <- st.sent + 1;
            if st.sent >= min cfg.depth total then st.mode <- Steady_recv
          end)
    | Steady_recv ->
      (* sliding window: one response in, one request out — the
         pipeline never drains, so the server never starves.  The read
         is framed: keep reading until the full [resp_len] bytes of
         the current response arrived (a short read used to count as a
         completed response, inflating [completed] and desynchronizing
         the framing for the rest of the run). *)
      let total = cfg.depth * cfg.rounds in
      let advance () =
        st.received <- st.received + 1;
        if st.received >= total then st.mode <- Close
        else if st.sent < total then st.mode <- Steady_send
      in
      sys ctx st Sysno.read st.cur_fd (data_sym ctx "wk_buf") (cfg.resp_len - st.partial)
        ~post:(fun r ->
          if cfg.retries > 0 && retryable r && st.attempts < cfg.retries then
            backoff st Steady_recv
          else if r <= 0 then begin
            (* EOF or error mid-frame: this response will never
               complete *)
            results.errors <- results.errors + 1;
            st.partial <- 0;
            st.attempts <- 0;
            advance ()
          end
          else begin
            st.partial <- st.partial + r;
            st.attempts <- 0;
            if st.partial >= cfg.resp_len then begin
              st.partial <- 0;
              results.completed <- results.completed + 1;
              advance ()
            end
            (* else: short read — stay in Steady_recv for the rest *)
          end)
    | Steady_send ->
      if st.wpart = 0 then Appkit.charge_work ctx cfg.req_cost;
      sys ctx st Sysno.write st.cur_fd (data_sym ctx "wk_req" + st.wpart) (64 - st.wpart)
        ~post:(fun r ->
          if cfg.retries > 0 && retryable r && (st.attempts < cfg.retries || st.wpart > 0)
          then backoff st Steady_send
          else if cfg.retries > 0 && r >= 0 && st.wpart + r < 64 then
            st.wpart <- st.wpart + r
          else begin
            st.attempts <- 0;
            st.wpart <- 0;
            st.sent <- st.sent + 1;
            st.mode <- Steady_recv
          end)
    | Close ->
      (* finish this connection; open the next one if any remain *)
      sys ctx st Sysno.close st.cur_fd 0 0 ~post:(fun _ ->
          st.mode <- (if st.nconn >= cfg.conns then Finished else Socket))
    | Open_step -> (
      let ost = Option.get st.ost in
      let rate, requests =
        match cfg.arrival with
        | Open { rate; requests; _ } -> (rate, requests)
        | Closed -> assert false
      in
      let now = Kern.now ctx.world in
      (* framed read of the oldest in-flight response on connection [c];
         shared by the opportunistic (data ready) and draining (all
         sent, block for the rest) paths *)
      let read_conn c =
        let fd = ost.o_fds.(c) in
        sys ctx st Sysno.read fd (data_sym ctx "wk_buf") (cfg.resp_len - ost.o_partial.(c))
          ~post:(fun r ->
            if cfg.retries > 0 && retryable r && st.attempts < cfg.retries then
              backoff st Open_step
            else if r <= 0 then begin
              results.errors <- results.errors + 1;
              ignore (Queue.pop ost.o_pending.(c));
              ost.o_partial.(c) <- 0;
              st.attempts <- 0
            end
            else begin
              st.attempts <- 0;
              ost.o_partial.(c) <- ost.o_partial.(c) + r;
              if ost.o_partial.(c) >= cfg.resp_len then begin
                ost.o_partial.(c) <- 0;
                let req, sched = Queue.pop ost.o_pending.(c) in
                let stamp = Kern.note_req_recv ctx.world ctx.thread ~conn:fd ~req in
                results.completed <- results.completed + 1;
                results.latencies <- (stamp - sched) :: results.latencies
              end
            end)
      in
      let first_conn p =
        let found = ref (-1) in
        for c = cfg.conns - 1 downto 0 do
          if (not (Queue.is_empty ost.o_pending.(c))) && p c then found := c
        done;
        !found
      in
      if ost.o_sent < requests && now >= ost.o_next_at then begin
        (* a send is due (possibly overdue: the scheduled time, not
           the actual send time, is what latency is measured from) *)
        let c = ost.o_sent mod cfg.conns in
        let fd = ost.o_fds.(c) in
        let req = ost.o_sent in
        let sched = ost.o_next_at in
        if ost.o_wpart = 0 then Appkit.charge_work ctx cfg.req_cost;
        sys ctx st Sysno.write fd (data_sym ctx "wk_req" + ost.o_wpart) (64 - ost.o_wpart)
          ~post:(fun r ->
            if cfg.retries > 0 && retryable r && (st.attempts < cfg.retries || ost.o_wpart > 0)
            then backoff st Open_step (* still due: o_sent unchanged *)
            else if cfg.retries > 0 && r >= 0 && ost.o_wpart + r < 64 then
              ost.o_wpart <- ost.o_wpart + r
            else begin
              st.attempts <- 0;
              if r < 0 then results.errors <- results.errors + 1
              else begin
                Queue.push (req, sched) ost.o_pending.(c);
                ignore (Kern.note_req_send ctx.world ctx.thread ~conn:fd ~req ~sched)
              end;
              ost.o_wpart <- 0;
              ost.o_sent <- ost.o_sent + 1;
              ost.o_next_at <- sched + draw_gap ost.o_rng ~rate
            end)
      end
      else
        let ready = first_conn (fun c -> conn_readable ctx ost.o_fds.(c)) in
        if ready >= 0 then read_conn ready
        else if ost.o_sent < requests then
          (* nothing to read yet and the next send is in the future:
             sleep up to it (never block on a read here — the arrival
             process must not be gated on the server responding) *)
          sys ctx st Sysno.nanosleep (ost.o_next_at - now) 0 0 ~post:ignore
        else
          let pending = first_conn (fun _ -> true) in
          if pending >= 0 then read_conn pending (* all sent: drain, blocking *)
          else begin
            st.mode <- Open_close 0;
            wk_step ctx
          end)
    | Open_close k ->
      let ost = Option.get st.ost in
      sys ctx st Sysno.close ost.o_fds.(k) 0 0 ~post:(fun _ ->
          st.mode <- (if k + 1 >= cfg.conns then Finished else Open_close (k + 1)))
    | Backoff next ->
      (* RSI must be 0: the kernel stashes the wake deadline in arg 1 *)
      sys ctx st Sysno.nanosleep (200 * st.attempts) 0 0 ~post:(fun _ -> st.mode <- next)
    | Finished ->
      decr live_threads;
      (* last thread out terminates the whole benchmark process *)
      set ctx RBX (if !live_threads <= 0 then 2 else 1)
  in
  let wk_ret (ctx : Kern.ctx) =
    let st = state_of ctx in
    let f = st.post in
    st.post <- ignore;
    f (Regs.get ctx.thread.regs RAX)
  in
  let im =
    K23_userland.Sim.register_app w ~path:cfg.path
      ~host_fns:[ ("wk_step", wk_step); ("wk_ret", wk_ret) ]
      (items ())
  in
  im_ref := Some im;
  results
