(** Program loading: execve and the simulated dynamic linker.

    Fidelity matters here because of pitfall P2b: a real process issues
    {e many} system calls before any LD_PRELOAD-injected library gets a
    chance to initialise (the paper measured over 100 for [ls]).  We
    reproduce that by running an ld.so-like loader {e as simulated
    code}: execve maps the interpreter and hands it a {e plan} of
    loading steps, and the interpreter executes each step by issuing a
    genuine [syscall] instruction from its own text segment (openat /
    read / fstat / mmap / mprotect / close per library, plus the usual
    boilerplate).  LD_PRELOAD-library constructors — where interposers
    bootstrap — only run after all of that, exactly as on Linux. *)

open K23_machine
open K23_isa
open Kern

let at_fdcwd = -100

(* ------------------------------------------------------------------ *)
(* Loader plan                                                         *)

type op =
  | Op_sys of { nr : int; make_args : unit -> int array; post : int -> unit }
      (** issue one system call through the interpreter's syscall
          gadget; [make_args] runs just before (so it can use results
          of earlier steps), [post] receives the return value *)
  | Op_call of (unit -> int)  (** call a constructor at the returned address *)
  | Op_host of (unit -> unit)  (** loader-internal work with no syscall (relocation...) *)
  | Op_enter of (unit -> int * int * int)  (** (entry, argc, argv): transfer to main *)

type ldso_state = { mutable plan : op list; mutable post : (int -> unit) option }

type Kern.pstate += Ldso of ldso_state

let ldso_key = "ldso"

let get_state (p : proc) =
  match Hashtbl.find_opt p.pstates ldso_key with
  | Some (Ldso st) -> st
  | _ -> panic "pid %d: no ld.so state" p.pid

(* ------------------------------------------------------------------ *)
(* The interpreter's code                                              *)

let nosys nr = Op_sys { nr; make_args = (fun () -> [| 0; 0; 0; 0; 0; 0 |]); post = ignore }

(* The interpreter's dispatch registers: a flag ("issue a syscall" /
   "call a ctor" / "enter main") and a branch target.  Callee-saved on
   either ABI: rbx/r12 on x86, x19/x20 on arm64. *)
let dispatch_flag_index = function K23_isa.Isa.X86_64 -> 3 (* rbx *) | K23_isa.Isa.Arm64 -> 19
let dispatch_target_index = function K23_isa.Isa.X86_64 -> 12 (* r12 *) | K23_isa.Isa.Arm64 -> 20

let ldso_step (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  let st = get_state p in
  let isa = ctx.world.isa in
  let seti i v = Regs.seti th.regs i v in
  let args_idx = K23_isa.Isa.arg_indices isa in
  let flag = dispatch_flag_index isa and target = dispatch_target_index isa in
  let rec go () =
    match st.plan with
    | [] -> panic "pid %d: ld.so plan exhausted" p.pid
    | op :: rest -> (
      st.plan <- rest;
      match op with
      | Op_host f ->
        f ();
        go ()
      | Op_sys { nr; make_args; post } ->
        let a = make_args () in
        seti (K23_isa.Isa.nr_index isa) nr;
        Array.iteri (fun i idx -> seti idx a.(i)) args_idx;
        seti flag 0;
        st.post <- Some post
      | Op_call get_addr ->
        seti flag 1;
        seti target (get_addr ())
      | Op_enter f ->
        let entry, argc, argv = f () in
        seti flag 2;
        seti target entry;
        seti args_idx.(0) argc;
        seti args_idx.(1) argv)
  in
  go ()

let ldso_ret (ctx : ctx) =
  let st = get_state ctx.thread.t_proc in
  match st.post with
  | Some f ->
    st.post <- None;
    f (Regs.get ctx.thread.regs RAX)
  | None -> ()

let ldso_path = "/usr/lib/ld-linux-x86-64.so.2"
let ldso_path_arm = "/usr/lib/ld-linux-aarch64.so.1"

let ldso_path_for = function
  | K23_isa.Isa.X86_64 -> ldso_path
  | K23_isa.Isa.Arm64 -> ldso_path_arm

let ldso_image () : image =
  let prog =
    Asm.assemble
      [
        Label "_start";
        Label "loop";
        Vcall_named "ldso_step";
        I (Cmp_ri (RBX, 0));
        Jc (NZ, "not_sys");
        Label "ldso_syscall_gadget";
        I Syscall;
        Vcall_named "ldso_ret";
        J "loop";
        Label "not_sys";
        I (Cmp_ri (RBX, 1));
        Jc (NZ, "enter_main");
        I (Call_reg R12);
        J "loop";
        Label "enter_main";
        I (Jmp_reg R12);
      ]
  in
  {
    im_name = ldso_path;
    im_prog = prog;
    im_host_fns = [ ("ldso_step", ldso_step); ("ldso_ret", ldso_ret) ];
    im_init = None;
    im_entry = Some "_start";
    im_needed = [];
    im_owner = Ldso;
  }

(** The same interpreter loop, compiled for AArch64: dispatch flag in
    x19, branch target in x20, the syscall gadget a real [svc #0] in
    the interpreter's own text (P2b fidelity: all pre-preload startup
    syscalls execute as genuine trapping instructions on ARM too). *)
let ldso_image_arm () : image =
  let open K23_isa_arm in
  let prog =
    Asm_arm.assemble
      [
        Asm_arm.Label "_start";
        Asm_arm.Label "loop";
        Asm_arm.Vcall_named "ldso_step";
        Asm_arm.I (Arm.Subs_imm (31, 19, 0)) (* cmp x19, #0 *);
        Asm_arm.Jc (K23_isa.Insn.NZ, "not_sys");
        Asm_arm.Label "ldso_syscall_gadget";
        Asm_arm.I (Arm.Svc 0);
        Asm_arm.Vcall_named "ldso_ret";
        Asm_arm.J "loop";
        Asm_arm.Label "not_sys";
        Asm_arm.I (Arm.Subs_imm (31, 19, 1)) (* cmp x19, #1 *);
        Asm_arm.Jc (K23_isa.Insn.NZ, "enter_main");
        Asm_arm.I (Arm.Blr 20);
        Asm_arm.J "loop";
        Asm_arm.Label "enter_main";
        Asm_arm.I (Arm.Br 20);
      ]
  in
  {
    im_name = ldso_path_arm;
    im_prog = prog;
    im_host_fns = [ ("ldso_step", ldso_step); ("ldso_ret", ldso_ret) ];
    im_init = None;
    im_entry = Some "_start";
    im_needed = [];
    im_owner = Ldso;
  }

(* ------------------------------------------------------------------ *)
(* vdso                                                                *)

let vdso_name = "[vdso]"

let vdso_clock_gettime (ctx : ctx) =
  let th = ctx.thread in
  let p = th.t_proc in
  (* executes entirely in user space: no kernel entry, invisible to
     every syscall-instruction-based interposer (pitfall P2b) *)
  p.counters.c_vdso <- p.counters.c_vdso + 1;
  ktrace_count ctx.world p "sys.vdso";
  ktrace_event ctx.world th (K23_obs.Event.Vdso_call { sym = "clock_gettime" });
  charge ctx.world th 25;
  let ns = now ctx.world * 10 / 32 in
  let arg1 = (K23_isa.Isa.arg_indices ctx.world.isa).(1) in
  (try Memory.write_u64_raw p.mem (Regs.geti th.regs arg1) ns with Memory.Fault _ -> ());
  Regs.set th.regs RAX 0

let vdso_image () : image =
  let prog =
    Asm.assemble
      [ Label "__vdso_clock_gettime"; Vcall_named "vdso_clock_gettime"; I Ret ]
  in
  {
    im_name = vdso_name;
    im_prog = prog;
    im_host_fns = [ ("vdso_clock_gettime", vdso_clock_gettime) ];
    im_init = None;
    im_entry = None;
    im_needed = [];
    im_owner = Vdso;
  }

let vdso_image_arm () : image =
  let open K23_isa_arm in
  let prog =
    Asm_arm.assemble
      [
        Asm_arm.Label "__vdso_clock_gettime";
        Asm_arm.Vcall_named "vdso_clock_gettime";
        Asm_arm.I Arm.Ret;
      ]
  in
  {
    im_name = vdso_name;
    im_prog = prog;
    im_host_fns = [ ("vdso_clock_gettime", vdso_clock_gettime) ];
    im_init = None;
    im_entry = None;
    im_needed = [];
    im_owner = Vdso;
  }

(* ------------------------------------------------------------------ *)
(* Dependency resolution                                               *)

let rec transitive_deps (w : world) seen = function
  | [] -> List.rev seen
  | path :: rest ->
    if List.mem path seen then transitive_deps w seen rest
    else (
      match find_library w path with
      | None -> transitive_deps w seen rest (* missing deps surface at openat time *)
      | Some im -> transitive_deps w (path :: seen) (im.im_needed @ rest))

let split_preload s = String.split_on_char ':' s |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)

let stack_top = 0x7fff_8000
let stack_size = 0x10000

let setup_stack (p : proc) ~argv ~envp =
  Memory.map p.mem ~addr:(stack_top - stack_size) ~len:stack_size ~perm:Memory.perm_rw;
  add_region p
    {
      r_start = stack_top - stack_size;
      r_len = stack_size;
      r_perm = Memory.perm_rw;
      r_name = "[stack]";
      r_owner = Stack;
      r_image = None;
      r_sec = `Other;
    };
  (* strings first (top-down), then pointer arrays, then argc *)
  let cursor = ref stack_top in
  let push_str s =
    cursor := !cursor - (String.length s + 1);
    Memory.write_cstr p.mem !cursor s;
    !cursor
  in
  let argv_ptrs = List.map push_str argv in
  let env_ptrs = List.map push_str envp in
  cursor := !cursor land lnot 15;
  let push_u64 v =
    cursor := !cursor - 8;
    Memory.write_u64_raw p.mem !cursor v
  in
  push_u64 0;
  List.iter push_u64 (List.rev env_ptrs);
  let envv = !cursor in
  push_u64 0;
  List.iter push_u64 (List.rev argv_ptrs);
  let argvv = !cursor in
  push_u64 (List.length argv);
  ignore envv;
  (* leave headroom *)
  let rsp = (!cursor - 256) land lnot 15 in
  (rsp, argvv)

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)

(** The per-library loading sequence.  [im] may be [None] (missing
    library): the openat simply fails, mirroring ld.so's search. *)
let lib_ops (w : world) (p : proc) ~buf path =
  let fd = ref (-1) in
  let path_addr = scratch_write_cstr p path in
  let hwcaps_addr =
    scratch_write_cstr p ("/usr/lib/glibc-hwcaps/x86-64-v3/" ^ Filename.basename path)
  in
  let sys nr make_args post = Op_sys { nr; make_args; post } in
  let lib = find_library w path in
  let text_len =
    match lib with Some i -> max 1 (Bytes.length i.im_prog.Asm.text) | None -> 0
  in
  let data_len =
    match lib with Some i -> Bytes.length i.im_prog.Asm.data | None -> 0
  in
  [
    (* glibc-hwcaps probes: fail with ENOENT like on a real system *)
    sys Sysno.openat (fun () -> [| at_fdcwd; hwcaps_addr; 0; 0; 0; 0 |]) ignore;
    sys Sysno.access (fun () -> [| hwcaps_addr; 4; 0; 0; 0; 0 |]) ignore;
    sys Sysno.stat (fun () -> [| path_addr; buf; 0; 0; 0; 0 |]) ignore;
    sys Sysno.openat
      (fun () -> [| at_fdcwd; path_addr; 0; 0; 0; 0 |])
      (fun r -> fd := r);
    sys Sysno.read (fun () -> [| !fd; buf; 832; 0; 0; 0 |]) ignore;
    sys Sysno.read (fun () -> [| !fd; buf; 784; 0; 0; 0 |]) ignore;
    sys Sysno.fstat (fun () -> [| !fd; buf; 0; 0; 0; 0 |]) ignore;
    sys Sysno.lseek (fun () -> [| !fd; 0; 0; 0; 0; 0 |]) ignore;
    sys Sysno.mmap (fun () -> [| 0; text_len; 5; 2; !fd; 0 |]) ignore;
  ]
  @ (if data_len > 0 then
       [ sys Sysno.mmap (fun () -> [| 0; data_len; 3; 2; !fd; 1 |]) ignore ]
     else [])
  @ [
      (* RELRO-style mprotect on the freshly mapped data page *)
      sys Sysno.mprotect
        (fun () ->
          match Hashtbl.find_opt p.image_bases path with
          | Some (_, d) when d <> 0 -> [| d; 4096; 3; 0; 0; 0 |]
          | _ -> [| 0; 0; 0; 0; 0; 0 |])
        ignore;
      sys Sysno.close (fun () -> [| !fd; 0; 0; 0; 0; 0 |]) ignore;
    ]

let boilerplate_ops (p : proc) ~buf =
  let preload_path = scratch_write_cstr p "/etc/ld.so.preload" in
  let cache_path = scratch_write_cstr p "/etc/ld.so.cache" in
  let fd = ref (-1) in
  let sys nr make_args post = Op_sys { nr; make_args; post } in
  [
    sys Sysno.access (fun () -> [| preload_path; 4; 0; 0; 0; 0 |]) ignore;
    sys Sysno.openat (fun () -> [| at_fdcwd; cache_path; 0; 0; 0; 0 |]) (fun r -> fd := r);
    sys Sysno.fstat (fun () -> [| !fd; buf; 0; 0; 0; 0 |]) ignore;
    sys Sysno.mmap (fun () -> [| 0; 4096; 1; 2; !fd; 0 |]) ignore;
    sys Sysno.close (fun () -> [| !fd; 0; 0; 0; 0; 0 |]) ignore;
    nosys Sysno.arch_prctl;
    nosys Sysno.ioctl;
    nosys Sysno.getpid;
    sys Sysno.brk (fun () -> [| 0; 0; 0; 0; 0; 0 |]) ignore;
    sys Sysno.brk (fun () -> [| p.brk_cur + 0x21000; 0; 0; 0; 0; 0 |]) ignore;
    sys Sysno.mprotect (fun () -> [| stack_top - stack_size; 4096; 3; 0; 0; 0 |]) ignore;
    nosys Sysno.rt_sigprocmask;
    nosys Sysno.rt_sigaction;
    nosys Sysno.sched_yield;
    nosys Sysno.gettid;
    nosys Sysno.gettimeofday;
    nosys Sysno.fcntl;
  ]

(* ------------------------------------------------------------------ *)
(* execve                                                              *)

let env_assoc envp =
  List.filter_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i -> Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
      | None -> None)
    envp

let do_execve (ctx : ctx) ~path ~argv ~envp : int =
  let w = ctx.world and th = ctx.thread in
  let p = th.t_proc in
  let main_im =
    match find_library w path with
    | Some im when im.im_entry <> None -> Some im
    | _ -> None
  in
  match main_im with
  | None -> Errno.ret Errno.enoent
  | Some main_im ->
    charge w th 5000;
    (* the per-proc counter registry resets with the record below, so
       the trace marks the boundary for consumers summing counters *)
    ktrace_count w p "exec";
    ktrace_event w th (K23_obs.Event.Exec { path });
    (* wipe the old address space and per-exec state *)
    p.mem <- Memory.create ();
    p.regions <- [];
    p.globals <- Hashtbl.create 64;
    p.pstates <- Hashtbl.create 8;
    p.image_bases <- Hashtbl.create 8;
    p.counters <- fresh_counters ();
    p.sig_handlers <- Hashtbl.create 8;
    p.startup_done <- false;
    p.scratch_cursor <- 0;
    p.brk_cur <- 0x0060_0000;
    (* library-area ASLR: up to 1024 pages of slide keeps the mmap
       area clear of the scratch region (0x7ffd0000) and the stack *)
    p.aslr_slide <- (if w.aslr then K23_util.Rng.int w.rng 1024 else 0);
    p.mmap_cursor <- 0x7f00_0000 + (p.aslr_slide * Memory.page_size);
    p.cmd <- path;
    p.argv <- argv;
    p.env <- env_assoc envp;
    List.iter (fun t -> if t != th then t.state <- Dead) p.threads;
    p.threads <- [ th ];
    th.sud <- None;
    th.frames <- [];
    th.pending <- None;
    w.core_resident.(th.core) <- -1;
    (* map interpreter, main binary and (unless disabled) the vdso *)
    let ldso =
      match find_library w (ldso_path_for w.isa) with Some i -> i | None -> panic "no ld.so"
    in
    ignore (Mapper.map_image w p ldso);
    ignore (Mapper.map_image w p main_im);
    if p.vdso_enabled then begin
      match find_library w vdso_name with
      | Some v -> ignore (Mapper.map_image w p v)
      | None -> ()
    end;
    ensure_scratch p;
    let rsp, argvv = setup_stack p ~argv ~envp in
    (* build the loading plan *)
    let buf = scratch_alloc p 1024 in
    let env = env_assoc envp in
    let preloads =
      match List.assoc_opt "LD_PRELOAD" env with Some s -> split_preload s | None -> []
    in
    let deps = transitive_deps w [] main_im.im_needed in
    let load_order = preloads @ List.filter (fun d -> not (List.mem d preloads)) deps in
    let per_lib = List.concat_map (fun lp -> lib_ops w p ~buf lp) load_order in
    let images_loaded () =
      (* every image with a recorded base, for relocation *)
      List.filter_map (find_library w) (ldso_path_for w.isa :: path :: load_order)
    in
    let ctor_of im_path =
      match find_library w im_path with
      | Some im when im.im_init <> None ->
        [ Op_call
            (fun () ->
              match Mapper.image_sym p im (Option.get im.im_init) with
              | Some a -> a
              | None -> panic "missing init symbol in %s" im_path) ]
      | _ -> []
    in
    (* constructor order: dependencies first (libc before the rest),
       preloads last among libraries, then main *)
    let libc_first =
      List.stable_sort
        (fun a b ->
          let rank x =
            if Filename.basename x |> fun n -> String.length n >= 4 && String.sub n 0 4 = "libc"
            then 0
            else if List.mem x preloads then 2
            else 1
          in
          compare (rank a) (rank b))
        load_order
    in
    let ctors = List.concat_map ctor_of libc_first in
    let plan =
      boilerplate_ops p ~buf
      @ per_lib
      @ [ Op_host (fun () -> List.iter (Mapper.apply_relocs p) (images_loaded ())) ]
      @ ctors
      @ [
          Op_host (fun () -> p.startup_done <- true);
          Op_enter
            (fun () ->
              match Mapper.image_sym p main_im (Option.get main_im.im_entry) with
              | Some e -> (e, List.length argv, argvv)
              | None -> panic "missing entry symbol in %s" path);
        ]
    in
    Hashtbl.replace p.pstates ldso_key (Ldso { plan; post = None });
    (* reset registers; start in the interpreter *)
    Array.fill th.regs.gpr 0 Regs.width 0;
    th.regs.pkru <- 0;
    Regs.seti th.regs (K23_isa.Isa.sp_index w.isa) rsp;
    th.regs.rip <-
      (match Mapper.image_sym p ldso "_start" with Some a -> a | None -> panic "ld.so entry");
    (* ptrace exec event *)
    (match p.tracer with
    | Some tr -> ( match tr.tr_on_exec with Some f -> f { world = w; thread = th } | None -> ())
    | None -> ());
    Regs.get th.regs RAX
