(** Kernel core: processes, threads, scheduling, trap handling, SUD,
    ptrace and signals.

    This module holds the mutually-recursive heart of the simulated
    OS.  System call {e semantics} live in {!Syscalls} and program
    loading in {!Loader}; both are wired in through the [syscall_impl]
    / [execve_impl] hooks so the dependency graph stays acyclic. *)

open K23_machine
module Rng = K23_util.Rng

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

(** Who owns a mapped region; used for ground-truth accounting (an
    interposer's re-issued system calls must not be confused with the
    application's own). *)
type owner =
  | App  (** the main executable *)
  | Libc
  | Ldso  (** the dynamic linker *)
  | Vdso
  | Lib of string  (** other shared library *)
  | Interposer  (** an interposition library's own code *)
  | Trampoline  (** the page-0 trampoline *)
  | Anon
  | Stack

let owner_to_string = function
  | App -> "app"
  | Libc -> "libc"
  | Ldso -> "ld.so"
  | Vdso -> "vdso"
  | Lib s -> s
  | Interposer -> "interposer"
  | Trampoline -> "trampoline"
  | Anon -> "anon"
  | Stack -> "stack"

type region = {
  r_start : int;
  r_len : int;
  mutable r_perm : Memory.perm;
  r_name : string;  (** path-like name shown in /proc/PID/maps *)
  r_owner : owner;
  r_image : image option;
  r_sec : [ `Text | `Data | `Other ];
}

and image = {
  im_name : string;  (** full path, e.g. "/usr/lib/x86_64-linux-gnu/libc.so.6" *)
  im_prog : K23_isa.Asm.program;
  im_host_fns : (string * hostfn) list;
  im_init : string option;  (** constructor symbol run by the loader *)
  im_entry : string option;  (** entry symbol (executables) *)
  im_needed : string list;  (** dependency library paths *)
  im_owner : owner;
}

and hostfn = ctx -> unit
(** A host (OCaml) function reachable from simulated code via the
    [Vcall] instruction.  Host functions implement application logic
    and interposer internals; they may manipulate registers, memory
    and kernel state but can never enter the kernel's syscall path —
    that always requires executing a real [syscall] instruction. *)

and ctx = { world : world; thread : thread }

and pstate = ..
(** Extensible per-process state bag: interposers and the loader stash
    their private state here (keyed by name in [proc.pstates]). *)

and sud_state = {
  mutable sel_addr : int;  (** userspace selector byte address *)
  mutable allow_lo : int;
  mutable allow_hi : int;  (** [allow_lo, allow_hi): always-allowed range *)
}

and sigframe = {
  fr_regs : Regs.t;  (** saved context; handlers mutate it, sigreturn restores it *)
  fr_signo : int;
  fr_sysno : int;  (** SIGSYS: attempted syscall number *)
  fr_site : int;  (** SIGSYS: address of the trapping syscall instruction *)
  fr_args : int array;  (** SIGSYS: the attempted syscall's six arguments *)
}

and tstate =
  | Runnable
  | Blocked of { why : string; ready : unit -> bool; deadline : int option }
  | Dead

and thread = {
  tid : int;
  t_proc : proc;
  regs : Regs.t;
  core : int;
  mutable state : tstate;
  mutable sud : sud_state option;
  mutable frames : sigframe list;
  mutable pending : (int * int array) option;  (** blocked syscall to retry *)
  mutable sc_site : int;  (** address of the syscall insn now dispatching *)
  mutable fault_key : int;  (** fault-schedule key of the in-flight call; 0 = none *)
  mutable fault_retry : bool;  (** re-dispatch of a parked call: don't re-tick *)
  mutable fault_restart : bool;  (** re-execution of a restarted call: don't re-tick *)
  fault_divq : int Queue.t;
      (** syscall numbers diverted to the interposer (SUD/seccomp-trap)
          whose re-issue from interposer code must tick the schedule as
          the application call it stands for — FIFO, mirroring the
          oracle projection's attempt-matching *)
}

and fdesc =
  | Fd_file of { file : Vfs.file; mutable pos : int; path : string }
  | Fd_console of Buffer.t  (** process stdout/stderr capture *)
  | Fd_listener of Net.listener
  | Fd_conn of Net.conn * Net.endpoint
  | Fd_pipe_r of Net.Byteq.t
  | Fd_pipe_w of Net.Byteq.t
  | Fd_devnull

and counters = {
  mutable c_app : int;  (** application syscalls (ground truth) *)
  mutable c_interposer : int;  (** syscalls re-issued from interposer code *)
  mutable c_startup : int;  (** app syscalls before the preload library initialised *)
  mutable c_vdso : int;  (** vdso fast-path calls that bypassed the kernel *)
  mutable c_sigsys : int;  (** SIGSYS deliveries *)
  c_by_nr : (int, int) Hashtbl.t;
  c_named : K23_obs.Counters.t;
      (** named-counter registry extending the flat fields above; only
          updated while the world's ktrace is enabled.  Reset together
          with the record (execve), so ["sys.app"] etc. stay in exact
          parity with [c_app] etc. — see test_obs.ml *)
}

and tracer = {
  tr_name : string;
  mutable tr_trace_syscalls : bool;
  mutable tr_on_entry : (ctx -> nr:int -> site:int -> args:int array -> [ `Continue | `Skip of int ]) option;
  mutable tr_on_exit : (ctx -> nr:int -> ret:int -> unit) option;
  mutable tr_on_exec : (ctx -> unit) option;
  mutable tr_on_exit_proc : (proc -> unit) option;
}
(** A ptrace tracer, modelled as a host agent: callbacks run while the
    tracee is stopped, which is semantically what a real tracer process
    does.  The cycle cost of each stop round trip is charged to the
    tracee's core. *)

and proc = {
  pid : int;
  mutable parent : proc option;
  mutable mem : Memory.t;
  mutable regions : region list;
  mutable threads : thread list;
  mutable fds : (int, fdesc) Hashtbl.t;
  mutable next_fd : int;
  mutable env : (string * string) list;
  mutable cwd : string;
  mutable sig_handlers : (int, int) Hashtbl.t;  (** signo -> handler code address *)
  mutable exit_status : int option;
  mutable term_signal : int option;
  mutable reaped : bool;
  mutable tracer : tracer option;
  mutable vdso_enabled : bool;
  mutable globals : (string, int) Hashtbl.t;  (** dynamic symbol table *)
  mutable brk_cur : int;
  mutable mmap_cursor : int;
  mutable next_pkey : int;
  mutable cmd : string;
  mutable argv : string list;
  mutable pstates : (string, pstate) Hashtbl.t;
  mutable image_bases : (string, int * int) Hashtbl.t;
      (** image name -> (text base, data base) in this address space *)
  mutable counters : counters;
  mutable children : proc list;
  mutable startup_done : bool;
  mutable scratch_cursor : int;  (** bump allocator inside the scratch region *)
  mutable aslr_slide : int;
  mutable seccomp : Bpf.filter list;
      (** installed seccomp filters, most recent first; inherited on
          fork, preserved across execve (Linux semantics) *)
  w : world;
}

and world = {
  mutable cost : Cost.model;
      (** immutable in spirit; mutable only so {!World.reset} can
          replay the per-run skew draw of [create_world] in place *)
  isa : K23_isa.Isa.t;
      (** the machine's instruction set.  A world is single-ISA: every
          image it loads (ld.so, vdso, interposers, apps) targets this
          ISA, and the fetch/step path, syscall register convention and
          signal-frame register assignment all dispatch on it *)
  ncores : int;
  icaches : Icache.t array;
  core_cycles : int array;
  core_resident : int array;  (** pid whose code each core's icache holds *)
  mutable procs : proc list;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable next_core : int;
  vfs : Vfs.t;
  net : Net.t;
  libraries : (string, image) Hashtbl.t;  (** path -> image *)
  mutable syscall_impl : (ctx -> nr:int -> args:int array -> int) option;
  mutable execve_impl : (ctx -> path:string -> argv:string list -> envp:string list -> int) option;
  rng : Rng.t;
  quantum : int;
  mutable steps : int;
  mutable trace : bool;  (** print a line per syscall (debugging) *)
  mutable aslr : bool;
  mutable sud_ever_armed : bool;
  mutable ktrace : K23_obs.Trace.t option;
      (** the observability sink.  [None] (the default) is the
          zero-overhead mode: every emission site is guarded by a
          single match on this field, so nothing is allocated or
          recorded.  Enable with {!ktrace_enable}. *)
  ktrace_last_tid : int array;  (** per-core last-run tid, for sched-switch events *)
  mutable faults : K23_faults.Faults.plan option;
      (** the fault-injection plane.  [None] (the default) is the
          zero-overhead mode, same discipline as [ktrace]: every
          injection site is guarded by a single match on this field.
          Set from {!World.Config.faults} by [World.wire]. *)
  fault_ticks : (int, int) Hashtbl.t;
      (** nr -> count of fault-eligible dispatches so far; the
          schedule's per-nr clock *)
  mutable replay_exit : (thread -> nr:int -> ret:int -> int) option;
      (** replay substitution hook (lib/replay): called in
          [complete_syscall] with the live result, returns the value to
          actually store in RAX.  The replayer installs a function that
          substitutes the recorded result for this thread's next
          matching syscall, so a replayed world re-observes the
          recorded inputs even where the live implementation would
          diverge.  [None] (the default) is the zero-overhead mode,
          same single-match discipline as [ktrace] and [faults]. *)
}

exception Would_block of { why : string; ready : unit -> bool; deadline : int option }
(** Raised by syscall implementations that must wait; the scheduler
    parks the thread and retries when [ready ()] turns true.
    [deadline] is the cycle at which a timed wait (nanosleep) fires on
    its own: when every thread is blocked, the scheduler jumps virtual
    time straight to the earliest deadline instead of declaring
    deadlock.  [None] for waits that only external events satisfy. *)

exception Kernel_panic of string

let panic fmt = Printf.ksprintf (fun s -> raise (Kernel_panic s)) fmt

(* Signal numbers *)
let sigill = 4
let sigtrap = 5
let sigkill = 9
let sigsegv = 11
let sigsys = 31

(* ------------------------------------------------------------------ *)
(* World construction                                                  *)

let create_world ?(isa = K23_isa.Isa.X86_64) ?(ncores = 12) ?(quantum = 64) ?(seed = 23)
    ?(aslr = true) ?(cost = Cost.default) ?(predecode = true) () =
  let rng = Rng.create ~seed in
  (* per-run machine-state skew (~±0.7% on the kernel path): repeated
     runs with different seeds show realistic standard deviations *)
  let cost = { cost with syscall_base = cost.syscall_base + Rng.int rng 3 - 1 } in
  {
    cost;
    isa;
    ncores;
    icaches = Array.init ncores (fun _ -> Icache.create ~predecode ());
    core_cycles = Array.make ncores 0;
    core_resident = Array.make ncores (-1);
    procs = [];
    next_pid = 1;
    next_tid = 1;
    next_core = 0;
    vfs = Vfs.create ();
    net = Net.create ();
    libraries = Hashtbl.create 16;
    syscall_impl = None;
    execve_impl = None;
    rng;
    quantum;
    steps = 0;
    trace = false;
    aslr;
    sud_ever_armed = false;
    ktrace = None;
    ktrace_last_tid = Array.make ncores (-1);
    faults = None;
    fault_ticks = Hashtbl.create 16;
    replay_exit = None;
  }

let register_library w (im : image) =
  Hashtbl.replace w.libraries im.im_name im;
  (* make the file visible in the VFS so openat() works on it *)
  ignore (Vfs.write_file w.vfs im.im_name (Printf.sprintf "<image:%s>" im.im_name))

let find_library w path = Hashtbl.find_opt w.libraries path

let fresh_counters () =
  {
    c_app = 0;
    c_interposer = 0;
    c_startup = 0;
    c_vdso = 0;
    c_sigsys = 0;
    c_by_nr = Hashtbl.create 32;
    c_named = K23_obs.Counters.create ();
  }

let new_proc w ~parent ~cmd =
  let pid = w.next_pid in
  w.next_pid <- pid + 1;
  let p =
    {
      pid;
      parent;
      mem = Memory.create ();
      regions = [];
      threads = [];
      fds = Hashtbl.create 16;
      next_fd = 3;
      env = [];
      cwd = "/";
      sig_handlers = Hashtbl.create 8;
      exit_status = None;
      term_signal = None;
      reaped = false;
      tracer = None;
      vdso_enabled = true;
      globals = Hashtbl.create 64;
      brk_cur = 0x0060_0000;
      mmap_cursor = 0x7100_0000;
      next_pkey = 1;
      cmd;
      argv = [];
      pstates = Hashtbl.create 8;
      image_bases = Hashtbl.create 8;
      counters = fresh_counters ();
      children = [];
      startup_done = false;
      scratch_cursor = 0;
      aslr_slide = 0;
      seccomp = [];
      w;
    }
  in
  (* fd 0/1/2: console *)
  let console = Buffer.create 256 in
  Hashtbl.replace p.fds 0 Fd_devnull;
  Hashtbl.replace p.fds 1 (Fd_console console);
  Hashtbl.replace p.fds 2 (Fd_console console);
  w.procs <- w.procs @ [ p ];
  (match parent with Some pp -> pp.children <- p :: pp.children | None -> ());
  p

let new_thread w (p : proc) =
  let tid = w.next_tid in
  w.next_tid <- tid + 1;
  (* place the thread on the least-loaded core (live threads only):
     deterministic and balanced, like a kernel scheduler at steady
     state *)
  let load = Array.make w.ncores 0 in
  List.iter
    (fun q ->
      if q.exit_status = None && q.term_signal = None then
        List.iter
          (fun t -> if t.state <> Dead then load.(t.core) <- load.(t.core) + 1)
          q.threads)
    w.procs;
  let core = ref 0 in
  Array.iteri (fun i l -> if l < load.(!core) then core := i) load;
  let core = !core in
  w.next_core <- (core + 1) mod w.ncores;
  let th =
    {
      tid;
      t_proc = p;
      regs = Regs.create ();
      core;
      state = Runnable;
      sud = None;
      frames = [];
      pending = None;
      sc_site = 0;
      fault_key = 0;
      fault_retry = false;
      fault_restart = false;
      fault_divq = Queue.create ();
    }
  in
  p.threads <- p.threads @ [ th ];
  th

let console_output p =
  match Hashtbl.find_opt p.fds 1 with
  | Some (Fd_console b) -> Buffer.contents b
  | _ -> ""

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)

let add_region (p : proc) r = p.regions <- r :: p.regions

let remove_region (p : proc) ~start =
  p.regions <- List.filter (fun r -> r.r_start <> start) p.regions

let find_region (p : proc) addr =
  List.find_opt (fun r -> addr >= r.r_start && addr < r.r_start + r.r_len) p.regions

let region_owner p addr =
  match find_region p addr with Some r -> r.r_owner | None -> Anon

(** /proc/PID/maps content, parsed by K23's libLogger. *)
let maps_string (p : proc) =
  p.regions
  |> List.sort (fun a b -> compare a.r_start b.r_start)
  |> List.map (fun r ->
         Printf.sprintf "%012x-%012x %sp %08x 00:00 0 %s" r.r_start (r.r_start + r.r_len)
           (Memory.perm_to_string r.r_perm) 0 r.r_name)
  |> String.concat "\n"

(** Bump-allocate kernel scratch space in a process (used to inject
    strings, e.g. when ptracer rewrites LD_PRELOAD in the tracee). *)
let scratch_base = 0x7ffd_0000
let scratch_size = 0x10000

let ensure_scratch (p : proc) =
  if not (Memory.is_mapped p.mem scratch_base) then begin
    Memory.map p.mem ~addr:scratch_base ~len:scratch_size ~perm:Memory.perm_rw;
    add_region p
      {
        r_start = scratch_base;
        r_len = scratch_size;
        r_perm = Memory.perm_rw;
        r_name = "[scratch]";
        r_owner = Anon;
        r_image = None;
        r_sec = `Other;
      }
  end

let scratch_alloc (p : proc) len =
  ensure_scratch p;
  let addr = scratch_base + p.scratch_cursor in
  p.scratch_cursor <- p.scratch_cursor + ((len + 15) land lnot 15);
  if p.scratch_cursor > scratch_size then panic "scratch exhausted in pid %d" p.pid;
  addr

let scratch_write_cstr (p : proc) s =
  let addr = scratch_alloc p (String.length s + 1) in
  Memory.write_cstr p.mem addr s;
  addr

(* ------------------------------------------------------------------ *)
(* Cycle accounting                                                    *)

let charge (w : world) (th : thread) cycles = w.core_cycles.(th.core) <- w.core_cycles.(th.core) + cycles

(* ------------------------------------------------------------------ *)
(* ktrace: structured event recording (lib/obs)                        *)

(** Turn recording on; returns the sink for direct inspection.  The
    kernel emits cycle-stamped events (syscall enter/exit with owner,
    signals, SUD, seccomp, ptrace stops, code-write barriers, faults,
    scheduler switches) into a bounded overwrite-oldest ring, and
    mirrors the legacy counter fields into two named registries: the
    per-process [counters.c_named] (execve-reset, parity with the flat
    record) and the world-level lifetime registry in the sink.
    [~unbounded:true] swaps the ring for a growing one that never
    drops — required by the recorder, which cannot replay a log with
    holes in it. *)
let ktrace_enable ?capacity ?unbounded (w : world) =
  let t = K23_obs.Trace.create ?capacity ?unbounded () in
  w.ktrace <- Some t;
  t

let ktrace_disable (w : world) = w.ktrace <- None

(** Bump a named counter in both the per-proc and world registries.
    No-op (one branch) when tracing is off. *)
let ktrace_count (w : world) (p : proc) name =
  match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Counters.incr p.counters.c_named name;
    K23_obs.Counters.incr t.counters name

(** Record a thread-context event.  Callers on hot paths should match
    on [w.ktrace] themselves so the payload is never allocated while
    tracing is off; this helper is for cold paths. *)
let ktrace_event (w : world) (th : thread) payload =
  match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid payload

(** Free-form annotation with no thread context (mechanism launches
    tag their runs with ["mech:<name>"]). *)
let ktrace_annot (w : world) msg =
  match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t
      ~cycles:(Array.fold_left max 0 w.core_cycles)
      ~pid:0 ~tid:0 (K23_obs.Event.Annot msg)

(** Cache-coherent code write: invalidate the written lines in every
    core's I-cache.  x86 caches are coherent, so a store to code
    becomes fetchable by other cores immediately — which is exactly
    why a {e non-atomic} two-byte rewrite exposes a torn instruction
    to concurrently executing threads (pitfall P5).  What coherence
    does NOT give you is atomicity of multi-byte cross-modifying
    writes; that requires stopping the other cores or an
    instruction-stream serialisation protocol, which lazypoline
    lacks.

    The per-line invalidation also drops each line's predecode memo
    (the memo lives inside the line, see {!Icache.fetch_decode}), so a
    barriered code write is re-decoded by every core on its next fetch
    — the predecode layer snoops on exactly the same events as the
    byte cache. *)
let code_write_barrier (w : world) ~addr ~len =
  Array.iter (fun ic -> Icache.invalidate_range ic ~addr ~len) w.icaches;
  match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Counters.incr t.counters "code_write_barrier";
    K23_obs.Trace.emit t
      ~cycles:(Array.fold_left max 0 w.core_cycles)
      ~pid:0 ~tid:0
      (K23_obs.Event.Code_write { addr; len })

let now (w : world) = Array.fold_left max 0 w.core_cycles

(** Bring every core to the current wall-clock maximum.  Measurements
    call this at phase boundaries: wall time elapses on idle cores
    too, and per-phase deltas must not be polluted by how far ahead a
    previous phase pushed some other core. *)
let sync_cores (w : world) =
  let t = now w in
  Array.iteri (fun i _ -> w.core_cycles.(i) <- t) w.core_cycles

(** Simulated clock: 3.2 GHz, matching the paper's Xeon w5-3425. *)
let cycles_per_sec = 3_200_000_000

(* ------------------------------------------------------------------ *)
(* Request latency stamps                                              *)

(* Load generators stamp request boundaries in *global* simulated time
   ([now w], not the issuing core's counter): a latency sample must be
   comparable against the open-loop arrival schedule, which is itself
   global — a core-local stamp would stand still while the thread sat
   blocked in [read] and hide exactly the queueing delay the campaign
   exists to measure.  Both hooks return the stamp so the caller
   records the same value the event stream shows. *)

(** Request [req] was written to connection fd [conn]; [sched] is the
    arrival process' intended send time (= the stamp itself for
    closed-loop or un-backlogged sends). *)
let note_req_send (w : world) (th : thread) ~conn ~req ~sched =
  let stamp = now w in
  ktrace_count w th.t_proc "req.send";
  (match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:stamp ~pid:th.t_proc.pid ~tid:th.tid
      (K23_obs.Event.Req_send { conn; req; sched }));
  stamp

(** The matching response was fully received (framing complete). *)
let note_req_recv (w : world) (th : thread) ~conn ~req =
  let stamp = now w in
  ktrace_count w th.t_proc "req.recv";
  (match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:stamp ~pid:th.t_proc.pid ~tid:th.tid
      (K23_obs.Event.Req_recv { conn; req }));
  stamp

(* ------------------------------------------------------------------ *)
(* Process exit / signals                                              *)

(** On process death the kernel releases its descriptors: connections
    get a FIN (peers' reads return 0) and listeners disappear — but
    fork duplicates descriptors, so a resource is only released when
    the last live process holding it dies (refcount semantics). *)
let cleanup_fds (p : proc) =
  let held_elsewhere probe =
    List.exists
      (fun q ->
        q != p && q.exit_status = None && q.term_signal = None
        && Hashtbl.fold (fun _ fd acc -> acc || probe fd) q.fds false)
      p.w.procs
  in
  (* ascending fd order, matching the kernel's exit_files() table walk:
     release order (and hence FIN/unlisten and ktrace event order) must
     not depend on hash-table layout *)
  Hashtbl.fold (fun n fd acc -> (n, fd) :: acc) p.fds []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, fd) ->
         match fd with
         | Fd_conn (c, ep) ->
           if
             not
               (held_elsewhere (function
                 | Fd_conn (c', ep') -> c' == c && ep' = ep
                 | _ -> false))
           then Net.close c ep
         | Fd_listener l ->
           if not (held_elsewhere (function Fd_listener l' -> l' == l | _ -> false)) then
             Net.unlisten p.w.net l.port
         | Fd_file _ | Fd_console _ | Fd_pipe_r _ | Fd_pipe_w _ | Fd_devnull -> ())

let kill_proc (p : proc) ~signal =
  if p.exit_status = None && p.term_signal = None then begin
    p.term_signal <- Some signal;
    List.iter (fun th -> th.state <- Dead) p.threads;
    cleanup_fds p;
    (match p.tracer with
    | Some tr -> ( match tr.tr_on_exit_proc with Some f -> f p | None -> ())
    | None -> ())
  end

let exit_proc (p : proc) ~status =
  if p.exit_status = None && p.term_signal = None then begin
    p.exit_status <- Some status;
    List.iter (fun th -> th.state <- Dead) p.threads;
    cleanup_fds p;
    (match p.tracer with
    | Some tr -> ( match tr.tr_on_exit_proc with Some f -> f p | None -> ())
    | None -> ())
  end

let proc_dead (p : proc) = p.exit_status <> None || p.term_signal <> None

(** Deliver a signal to [th].  With no registered handler the process
    dies (all the signals we model are fatal by default). *)
let deliver_signal (w : world) (th : thread) ~signo ~sysno ~site ~args =
  let p = th.t_proc in
  ktrace_count w p "signal.deliver";
  (match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
      (K23_obs.Event.Signal_deliver { signo; sysno; site }));
  match Hashtbl.find_opt p.sig_handlers signo with
  | None -> kill_proc p ~signal:signo
  | Some handler_addr ->
    (* A signal wakes a thread parked in a blocking syscall before its
       deadline: the wait is torn down and completes with -EINTR {e
       now}, so the frame saved below restores to "syscall returned
       EINTR" when the handler sigreturns.  (Before this, a parked
       thread slept through signals until its ready/deadline fired —
       the latent bug test_faults pins.) *)
    (match th.state with
    | Blocked _ ->
      th.state <- Runnable;
      (match th.pending with
      | Some (pnr, _) ->
        th.pending <- None;
        th.fault_key <- 0;
        Regs.set th.regs RAX (-Errno.eintr);
        (match w.ktrace with
        | None -> ()
        | Some t ->
          K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
            (K23_obs.Event.Syscall_exit { nr = pnr; ret = -Errno.eintr }))
      | None -> ())
    | Runnable | Dead -> ());
    (* Signal delivery serialises against the rest of the thread group
       (sighand lock, task-list walks): in multi-threaded processes the
       per-delivery cost grows with the number of live threads.  This
       is what collapses SUD's throughput on redis with 6 I/O threads
       (Table 6) even below its single-threaded figure. *)
    let live = List.length (List.filter (fun t -> t.state <> Dead) p.threads) in
    charge w th (w.cost.sigsys_delivery * max 1 ((3 * live) - 2));
    let frame = { fr_regs = Regs.copy th.regs; fr_signo = signo; fr_sysno = sysno; fr_site = site; fr_args = args } in
    th.frames <- frame :: th.frames;
    (* Enter the handler: mimic the kernel building a signal frame on
       an offset stack; rdi/rsi/rdx (x0/x1/x2 on arm64) carry
       (signo, site, sysno) — the moral equivalent of siginfo +
       ucontext, which handlers access through kernel helpers in this
       model. *)
    let sp = K23_isa.Isa.sp_index w.isa and sig_args = K23_isa.Isa.sig_arg_indices w.isa in
    Regs.seti th.regs sp (Regs.geti th.regs sp - 512);
    Regs.seti th.regs sig_args.(0) signo;
    Regs.seti th.regs sig_args.(1) site;
    Regs.seti th.regs sig_args.(2) sysno;
    th.regs.rip <- handler_addr

(** rt_sigreturn: restore the (possibly handler-mutated) saved
    context. *)
let do_sigreturn (w : world) (th : thread) =
  match th.frames with
  | [] -> kill_proc th.t_proc ~signal:sigsegv
  | frame :: rest ->
    charge w th w.cost.sigreturn_extra;
    th.frames <- rest;
    ktrace_count w th.t_proc "sigreturn";
    (match w.ktrace with
    | None -> ()
    | Some t ->
      K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid
        (K23_obs.Event.Sigreturn { depth = List.length rest }));
    Regs.restore th.regs ~from:frame.fr_regs

(* ------------------------------------------------------------------ *)
(* Fault-injection plane (DESIGN.md §4i)                               *)

module Faults = K23_faults.Faults

(** The syscalls the fault schedule ever considers.  Everything else
    (getpid, prctl, the mechanisms' housekeeping...) never ticks the
    per-nr clock, so a mechanism's extra calls cannot skew the
    schedule relative to a native run. *)
let faultable nr =
  nr = Sysno.read || nr = Sysno.write || nr = Sysno.mmap || nr = Sysno.nanosleep
  || nr = Sysno.socket || nr = Sysno.connect || nr = Sysno.accept || nr = Sysno.sendto
  || nr = Sysno.recvfrom || nr = Sysno.wait4 || nr = Sysno.open_ || nr = Sysno.openat
  || nr = Sysno.dup

let is_rw nr = nr = Sysno.read || nr = Sysno.write || nr = Sysno.sendto || nr = Sysno.recvfrom

(** Forget all fault-schedule progress: per-nr ticks and per-thread
    in-flight state.  {!K23_fuzz.Oracle} calls this between K23's
    offline phase and the measured launch, so native and mechanism
    runs start the schedule from tick 0 (the offline phase consumes
    app syscalls a native run never makes). *)
let fault_reset (w : world) =
  Hashtbl.reset w.fault_ticks;
  List.iter
    (fun p ->
      List.iter
        (fun th ->
          th.fault_key <- 0;
          th.fault_retry <- false;
          th.fault_restart <- false;
          Queue.clear th.fault_divq)
        p.threads)
    w.procs

let fault_event (w : world) (th : thread) ~nr ~kind =
  ktrace_count w th.t_proc "fault.inject";
  match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid
      (K23_obs.Event.Fault_injected { nr; site = th.sc_site; kind })

(** Advance the fault schedule for one dispatch of [nr]; returns true
    when this dispatch is a {e logically new, fault-eligible}
    application call (a fresh arm).  The schedule's alignment contract
    — native and every mechanism roll the same dice for the same
    logical call — rests on which dispatches tick:
    - retries of a parked call ([fault_retry]) and restarted
      re-executions ([fault_restart]) reuse the in-flight key;
    - interposer-owner dispatches tick only when they re-issue a
      diverted application call (FIFO head of [fault_divq] — the
      kernel-side mirror of the oracle projection's attempt matching);
      interposer housekeeping never ticks;
    - ld.so/vdso-owner dispatches never tick (the oracle projection
      drops those owners). *)
let fault_arm (w : world) (th : thread) ~nr =
  match w.faults with
  | None -> false
  | Some plan ->
    if th.fault_restart then begin
      th.fault_restart <- false;
      false
    end
    else if th.fault_retry then begin
      th.fault_retry <- false;
      false
    end
    else begin
      th.fault_key <- 0;
      (if faultable nr then
         let eligible =
           match region_owner th.t_proc th.sc_site with
           | Interposer -> (
             match Queue.peek_opt th.fault_divq with
             | Some n when n = nr ->
               ignore (Queue.pop th.fault_divq);
               true
             | _ -> false)
           | Ldso | Vdso -> false
           | App | Libc | Trampoline | Lib _ | Anon | Stack -> true
         in
         if eligible then begin
           let tick = Option.value ~default:0 (Hashtbl.find_opt w.fault_ticks nr) in
           Hashtbl.replace w.fault_ticks nr (tick + 1);
           th.fault_key <- Faults.key plan ~nr ~tick
         end);
      th.fault_key <> 0
    end

(* ------------------------------------------------------------------ *)
(* Syscall entry                                                       *)

let note_syscall (w : world) (th : thread) ~nr ~site ~args =
  let p = th.t_proc in
  let c = p.counters in
  let owner = region_owner p site in
  (match owner with
  | Interposer ->
    (* a re-issue from an interposer's SIGSYS gadget: the application's
       original attempt was already counted when SUD diverted it *)
    c.c_interposer <- c.c_interposer + 1;
    ktrace_count w p "sys.interposer"
  | Trampoline | App | Libc | Ldso | Vdso | Lib _ | Anon | Stack ->
    (* trampoline-gadget syscalls ARE application syscalls: after a
       site is rewritten, its calls reach the kernel only through the
       trampoline, exactly one kernel entry per application attempt *)
    c.c_app <- c.c_app + 1;
    ktrace_count w p "sys.app";
    if not p.startup_done then begin
      c.c_startup <- c.c_startup + 1;
      ktrace_count w p "sys.startup"
    end;
    Hashtbl.replace c.c_by_nr nr (1 + Option.value ~default:0 (Hashtbl.find_opt c.c_by_nr nr));
    ktrace_count w p ("sys.nr." ^ string_of_int nr));
  (* one event serves both consumers: the structured ring and the
     legacy [w.trace] stderr line (same bytes as the historical
     Printf, now produced by the ktrace renderer) *)
  match (w.ktrace, w.trace) with
  | None, false -> ()
  | kt, tr ->
    let ev =
      K23_obs.Event.make ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
        (K23_obs.Event.Syscall_enter
           { nr; site; owner = owner_to_string owner; args = Array.copy args })
    in
    (match kt with Some t -> K23_obs.Trace.push t ev | None -> ());
    if tr then Printf.eprintf "%s\n%!" (K23_obs.Render.human_event ~namer:Sysno.name ev)

(** Per-thread selector slot.  Real interposers keep the SUD selector
    byte in TLS so each thread toggles its own; we model TLS with a
    64-slot array indexed by tid (documented limit: tids aliasing
    mod 64 would share a slot). *)
let selector_slot (th : thread) base = base + (th.tid land 63)

let sud_blocks (th : thread) ~site =
  match th.sud with
  | None -> false
  | Some s ->
    if site >= s.allow_lo && site < s.allow_hi then false
    else begin
      match Memory.read_u8_raw th.t_proc.mem (selector_slot th s.sel_addr) with
      | sel -> sel = Sysno.syscall_dispatch_filter_block
      | exception Memory.Fault _ -> false
    end

(** Install a seccomp filter (SECCOMP_SET_MODE_FILTER).  Filters are
    irrevocable: there is no uninstall, exactly as on Linux. *)
let seccomp_install (p : proc) (f : Bpf.filter) = p.seccomp <- f :: p.seccomp

let syscall_args (th : thread) =
  let idx = K23_isa.Isa.arg_indices th.t_proc.w.isa in
  Array.map (fun i -> Regs.geti th.regs i) idx

let exec_syscall (w : world) (th : thread) ~nr ~args =
  match w.syscall_impl with
  | None -> panic "no syscall implementation installed"
  | Some f -> f { world = w; thread = th } ~nr ~args

(* The completion half of a syscall: store the result, emit the exit
   event, fire the ptrace exit stop.  Shared by the normal path and
   the fault plane's hard-EINTR injection. *)
let complete_syscall (w : world) (th : thread) ~nr ~ret =
  (* replay substitution point: a replaying world stores the recorded
     result instead of the live one (see lib/replay/replayer.ml) *)
  let ret =
    match w.replay_exit with None -> ret | Some f -> f th ~nr ~ret
  in
  (* implementations that rewrite the register file (rt_sigreturn,
     execve) return the post-rewrite rax, making this a no-op *)
  Regs.set th.regs RAX ret;
  (match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid
      (K23_obs.Event.Syscall_exit { nr; ret }));
  match th.t_proc.tracer with
  | Some tr when tr.tr_trace_syscalls && not (proc_dead th.t_proc) ->
    charge w th w.cost.ptrace_stop;
    ktrace_count w th.t_proc "ptrace.stop";
    (match w.ktrace with
    | None -> ()
    | Some t ->
      K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid
        (K23_obs.Event.Ptrace_stop { kind = Exit; nr }));
    (match tr.tr_on_exit with
    | Some f -> f { world = w; thread = th } ~nr ~ret
    | None -> ())
  | _ -> ()

(** Complete a syscall: run the implementation (handling blocking),
    store the result, fire the ptrace exit stop. *)
let finish_syscall (w : world) (th : thread) ~nr ~args =
  (* fault plane: tick the schedule on logically-new eligible calls,
     and truncate fresh reads/writes chosen for short I/O (mutating
     [args] keeps retries of a parked call consistently truncated) *)
  let fresh = fault_arm w th ~nr in
  (match w.faults with
  | Some plan
    when fresh && is_rw nr && args.(2) > 1 && Faults.roll_short plan ~key:th.fault_key ->
    fault_event w th ~nr ~kind:"short";
    args.(2) <- Faults.short_len ~key:th.fault_key args.(2)
  | _ -> ());
  match exec_syscall w th ~nr ~args with
  | ret ->
    complete_syscall w th ~nr ~ret;
    true
  | exception Would_block { why; ready; deadline } -> (
    (* delivery point: a blocking wait is where a pending signal would
       interrupt the call.  The schedule either completes it with a
       visible -EINTR, or restarts it ERESTARTSYS-style: rip rewinds
       to the syscall instruction, so the very next step re-executes
       it from scratch — re-entering the interposer under SUD/seccomp
       diversion and re-stopping the tracer under ptrace (the paper's
       P4 shadow).  wait4 only ever restarts: a visible EINTR there
       would reorder fork-join programs by mechanism timing. *)
    let injected =
      match w.faults with
      | Some plan when th.fault_key <> 0 && Faults.roll_eintr plan ~key:th.fault_key ->
        let key = th.fault_key in
        th.fault_key <- 0;
        if nr <> Sysno.wait4 && Faults.flip ~key then begin
          fault_event w th ~nr ~kind:"eintr";
          complete_syscall w th ~nr ~ret:(-Errno.eintr);
          true
        end
        else begin
          ktrace_count w th.t_proc "fault.restart";
          (match w.ktrace with
          | None -> ()
          | Some t ->
            K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid
              ~tid:th.tid (K23_obs.Event.Syscall_restarted { nr; site = th.sc_site }));
          th.fault_restart <- true;
          th.regs.rip <- th.sc_site;
          true
        end
      | _ -> false
    in
    injected
    ||
    begin
      th.state <- Blocked { why; ready; deadline };
      th.pending <- Some (nr, args);
      false
    end)

(** Kernel entry for a trapping [syscall]/[sysenter] instruction. *)
let handle_syscall (w : world) (th : thread) ~site =
  let p = th.t_proc in
  let nr = Regs.geti th.regs (K23_isa.Isa.nr_index w.isa) in
  let args = syscall_args th in
  th.sc_site <- site;
  (* SUD: divert to SIGSYS when armed, outside the allowlisted range
     and with the selector set to BLOCK. *)
  if sud_blocks th ~site then begin
    note_syscall w th ~nr ~site ~args;
    charge w th w.cost.syscall_base;
    p.counters.c_sigsys <- p.counters.c_sigsys + 1;
    ktrace_count w p "sigsys";
    ktrace_count w p "sud.block";
    (* the diverted attempt's re-issue from interposer code must tick
       the fault schedule as the application call it stands for *)
    if w.faults <> None && faultable nr then Queue.push nr th.fault_divq;
    (match w.ktrace with
    | None -> ()
    | Some t ->
      K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
        (K23_obs.Event.Sud_block { nr; site }));
    if Hashtbl.mem p.sig_handlers sigsys then deliver_signal w th ~signo:sigsys ~sysno:nr ~site ~args
    else kill_proc p ~signal:sigsys
  end
  else begin
    note_syscall w th ~nr ~site ~args;
    (* Once SUD is initialised every kernel entry of that thread takes
       the slow path, even with interposition toggled off — the
       "SUD-no-interposition" overhead of Table 5. *)
    if th.sud <> None then charge w th w.cost.sud_armed_extra;
    (* base cost plus ~1% deterministic jitter, so repeated runs show
       realistic (non-zero) standard deviations *)
    charge w th (w.cost.syscall_base + Rng.int w.rng 3);
    (* seccomp filters run before ptrace and before execution *)
    let seccomp_verdict =
      match p.seccomp with
      | [] -> Bpf.Allow
      | filters ->
        charge w th (25 * List.length filters);
        let v =
          Bpf.eval_all filters
            { Bpf.nr; arch = K23_isa.Isa.audit_arch w.isa; ip = site; args = Array.copy args }
        in
        ktrace_count w p "seccomp.eval";
        (match w.ktrace with
        | None -> ()
        | Some t ->
          let verdict =
            match v with
            | Bpf.Allow -> "allow"
            | Bpf.Log -> "log"
            | Bpf.Kill -> "kill"
            | Bpf.Trap -> "trap"
            | Bpf.Errno e -> "errno:" ^ string_of_int e
          in
          K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
            (K23_obs.Event.Seccomp { nr; verdict }));
        v
    in
    match seccomp_verdict with
    | Bpf.Kill -> kill_proc p ~signal:sigsys
    | Bpf.Errno e -> Regs.set th.regs RAX (-e)
    | Bpf.Trap ->
      p.counters.c_sigsys <- p.counters.c_sigsys + 1;
      ktrace_count w p "sigsys";
      if w.faults <> None && faultable nr then Queue.push nr th.fault_divq;
      if Hashtbl.mem p.sig_handlers sigsys then
        deliver_signal w th ~signo:sigsys ~sysno:nr ~site ~args
      else kill_proc p ~signal:sigsys
    | Bpf.Allow | Bpf.Log -> (
    match p.tracer with
    | Some tr when tr.tr_trace_syscalls ->
      charge w th w.cost.ptrace_stop;
      ktrace_count w p "ptrace.stop";
      (match w.ktrace with
      | None -> ()
      | Some t ->
        K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
          (K23_obs.Event.Ptrace_stop { kind = Entry; nr }));
      let action =
        match tr.tr_on_entry with
        | Some f -> f { world = w; thread = th } ~nr ~site ~args
        | None -> `Continue
      in
      (match action with
      | `Skip ret ->
        Regs.set th.regs RAX ret;
        charge w th w.cost.ptrace_stop;
        ktrace_count w p "ptrace.stop";
        (match w.ktrace with
        | None -> ()
        | Some t ->
          K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:p.pid ~tid:th.tid
            (K23_obs.Event.Ptrace_stop { kind = Exit; nr }));
        (match tr.tr_on_exit with
        | Some f -> f { world = w; thread = th } ~nr ~ret
        | None -> ())
      | `Continue ->
        (* args may have been rewritten by the tracer *)
        let args = syscall_args th in
        ignore (finish_syscall w th ~nr ~args))
    | _ -> ignore (finish_syscall w th ~nr ~args))
  end

(* ------------------------------------------------------------------ *)
(* Vcall resolution                                                    *)

let resolve_vcall (p : proc) ~rip_after ~index =
  (* the Vcall instruction is 6 bytes on x86 and one word on arm64;
     its first byte locates the owning region *)
  match find_region p (rip_after - K23_isa.Isa.vcall_len p.w.isa) with
  | None -> None
  | Some r -> (
    match r.r_image with
    | None -> None
    | Some im -> (
      match List.nth_opt im.im_prog.vcalls index with
      | None -> None
      | Some name -> (
        match List.assoc_opt name im.im_host_fns with
        | None -> None
        | Some f -> Some (name, f))))

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)

let switch_address_space (w : world) (th : thread) =
  if w.core_resident.(th.core) <> th.t_proc.pid then begin
    Icache.flush w.icaches.(th.core);
    w.core_resident.(th.core) <- th.t_proc.pid
  end

(** Record a fault-class trap ({!Cpu.trap_name} keys the counter) and
    reproduce the historical [w.trace] stderr line via the renderer. *)
let emit_trap_event (w : world) (th : thread) trap payload =
  (match w.ktrace with
  | None -> ()
  | Some t ->
    K23_obs.Counters.incr th.t_proc.counters.c_named ("trap." ^ Cpu.trap_name trap);
    K23_obs.Counters.incr t.counters ("trap." ^ Cpu.trap_name trap));
  match (w.ktrace, w.trace) with
  | None, false -> ()
  | kt, tr ->
    let ev =
      K23_obs.Event.make ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid payload
    in
    (match kt with Some t -> K23_obs.Trace.push t ev | None -> ());
    if tr then (
      match payload with
      | K23_obs.Event.Fault { access = "BP"; _ } -> () (* int3 was never traced *)
      | _ -> Printf.eprintf "%s\n%!" (K23_obs.Render.human_event ev))

let step_thread (w : world) (th : thread) =
  switch_address_space w th;
  w.steps <- w.steps + 1;
  let step =
    match w.isa with K23_isa.Isa.X86_64 -> Cpu.step | K23_isa.Isa.Arm64 -> Cpu.step_arm
  in
  match step ~cost:w.cost th.regs th.t_proc.mem w.icaches.(th.core) with
  | Cpu.Stepped c -> charge w th c
  | Cpu.Trapped (trap, c) -> (
    charge w th c;
    match trap with
    | Cpu.Syscall_trap { site; kind = _ } -> handle_syscall w th ~site
    | Cpu.Vcall_trap idx -> (
      match resolve_vcall th.t_proc ~rip_after:th.regs.rip ~index:idx with
      | Some (_name, f) -> f { world = w; thread = th }
      | None -> panic "pid %d: unresolvable vcall %d at %x" th.t_proc.pid idx (th.regs.rip - 6))
    | Cpu.Fault_trap f ->
      let access = match f.access with `Read -> "R" | `Write -> "W" | `Exec -> "X" in
      emit_trap_event w th trap
        (K23_obs.Event.Fault { access; addr = f.fault_addr; rip = th.regs.rip });
      deliver_signal w th ~signo:sigsegv ~sysno:0 ~site:th.regs.rip ~args:[||]
    | Cpu.Ud_trap addr ->
      emit_trap_event w th trap (K23_obs.Event.Fault { access = "ILL"; addr; rip = th.regs.rip });
      deliver_signal w th ~signo:sigill ~sysno:0 ~site:addr ~args:[||]
    | Cpu.Int3_trap addr ->
      emit_trap_event w th trap (K23_obs.Event.Fault { access = "BP"; addr; rip = th.regs.rip });
      deliver_signal w th ~signo:sigtrap ~sysno:0 ~site:addr ~args:[||]
    | Cpu.Hlt_trap addr -> panic "pid %d: hlt at %x" th.t_proc.pid addr)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let runnable_threads (w : world) =
  List.concat_map
    (fun p -> if proc_dead p then [] else List.filter (fun t -> t.state = Runnable) p.threads)
    w.procs

let blocked_threads (w : world) =
  List.concat_map
    (fun p ->
      if proc_dead p then []
      else List.filter (fun t -> match t.state with Blocked _ -> true | _ -> false) p.threads)
    w.procs

let wake_ready (w : world) =
  List.iter
    (fun th ->
      match th.state with
      | Blocked { ready; _ } when ready () -> th.state <- Runnable
      | _ -> ())
    (blocked_threads w)

(** Run one quantum of a thread; completes a pending blocked syscall
    first if there is one. *)
let run_slice (w : world) (th : thread) =
  (match w.ktrace with
  | None -> ()
  | Some t ->
    (* a different thread starts running on this core: a context
       switch in real-kernel terms (same-thread quantum renewals are
       not events) *)
    if w.ktrace_last_tid.(th.core) <> th.tid then begin
      w.ktrace_last_tid.(th.core) <- th.tid;
      K23_obs.Counters.incr th.t_proc.counters.c_named "sched.switch";
      K23_obs.Counters.incr t.counters "sched.switch";
      K23_obs.Trace.emit t ~cycles:w.core_cycles.(th.core) ~pid:th.t_proc.pid ~tid:th.tid
        (K23_obs.Event.Sched_switch { core = th.core })
    end);
  (match th.pending with
  | Some (nr, args) when th.state = Runnable ->
    th.pending <- None;
    (* a retry of the parked call, not a new one: keep its fault key
       and don't tick the schedule again *)
    if w.faults <> None then th.fault_retry <- true;
    if not (finish_syscall w th ~nr ~args) then () (* re-blocked *)
  | _ -> ());
  let budget = ref w.quantum in
  while !budget > 0 && th.state = Runnable && not (proc_dead th.t_proc) do
    step_thread w th;
    decr budget
  done

exception Deadlock of string

(** Cooperative round-robin run loop.  Returns when every process has
    terminated, [max_steps] is exhausted, or [until] turns true. *)
let run ?(max_steps = 200_000_000) ?(until = fun () -> false) (w : world) =
  let start_steps = w.steps in
  let continue_ = ref true in
  while !continue_ do
    wake_ready w;
    let run_now = runnable_threads w in
    if run_now = [] then begin
      let blocked = blocked_threads w in
      if blocked = [] then continue_ := false
      else begin
        (* everything is waiting: advance virtual time so time-based
           waits can fire — straight to the earliest timed-wait
           deadline when one exists (an open-loop client sleeping out
           a long inter-arrival gap must not read as a deadlock), one
           bump otherwise; if nothing wakes, the world is deadlocked *)
        let deadlines =
          List.filter_map
            (fun th -> match th.state with Blocked { deadline; _ } -> deadline | _ -> None)
            blocked
        in
        let t =
          match deadlines with
          | [] -> now w + 10_000
          | ds -> List.fold_left min max_int ds
        in
        Array.iteri (fun i _ -> w.core_cycles.(i) <- max w.core_cycles.(i) t) w.core_cycles;
        wake_ready w;
        if runnable_threads w = [] then
          raise
            (Deadlock
               (String.concat ", "
                  (List.map
                     (fun th ->
                       match th.state with
                       | Blocked { why; _ } -> Printf.sprintf "tid %d: %s" th.tid why
                       | _ -> "?")
                     blocked)))
      end
    end
    else
      List.iter
        (fun th ->
          if !continue_ && th.state = Runnable then begin
            run_slice w th;
            if until () || w.steps - start_steps > max_steps then continue_ := false
          end)
        run_now
  done
