(** System call implementations.

    [dispatch] is installed into the world as [syscall_impl] by
    {!World.create}.  Conventions follow the Linux x86-64 ABI: the
    syscall number arrives in rax, arguments in rdi/rsi/rdx/r10/r8/r9,
    the result (or negated errno) is returned in rax.

    Simplifications relative to Linux, documented once here:
    - socket addresses are plain port numbers (loopback only);
    - [fstat] writes the file size as a u64 at offset 0 of the stat
      buffer;
    - [getdents64] writes NUL-separated names;
    - [nanosleep]'s argument is a cycle count rather than a timespec
      pointer;
    - [clone] takes (fn, stack, arg) directly — i.e. the
      pthread_create lowering, not raw clone flags. *)

open K23_machine
open Kern

(* open(2) flag bits we honour *)
let o_creat = 0x40
let o_trunc = 0x200
let o_wronly = 0x1

(* mmap prot/flags *)
let prot_read = 1
let prot_write = 2
let prot_exec = 4
let map_fixed = 0x10
let map_noreserve = 0x4000

let perm_of_prot prot =
  { Memory.r = prot land prot_read <> 0; w = prot land prot_write <> 0; x = prot land prot_exec <> 0 }

let prot_of_perm (p : Memory.perm) =
  (if p.r then prot_read else 0) lor (if p.w then prot_write else 0) lor if p.x then prot_exec else 0

let vfs_err e = Errno.ret (Vfs.err_to_errno e)

let alloc_fd (p : proc) fd =
  let n = p.next_fd in
  p.next_fd <- n + 1;
  Hashtbl.replace p.fds n fd;
  n

let read_user_cstr (p : proc) addr =
  try Ok (Memory.read_cstr p.mem addr) with Memory.Fault _ -> Error Errno.efault

(** Read a NULL-terminated array of string pointers (argv/envp). *)
let read_user_strv (p : proc) addr =
  if addr = 0 then Ok []
  else
    try
      let rec go i acc =
        if i > 256 then Ok (List.rev acc)
        else
          let ptr = Memory.read_u64_raw p.mem (addr + (8 * i)) in
          if ptr = 0 then Ok (List.rev acc)
          else go (i + 1) (Memory.read_cstr p.mem ptr :: acc)
      in
      go 0 []
    with Memory.Fault _ -> Error Errno.efault

(* ------------------------------------------------------------------ *)
(* File descriptors                                                    *)

let do_read (w : world) (th : thread) fd buf count =
  let p = th.t_proc in
  if count < 0 then Errno.ret Errno.einval
  else
  match Hashtbl.find_opt p.fds fd with
  | None -> Errno.ret Errno.ebadf
  | Some (Fd_file f) ->
    let avail = max 0 (Bytes.length f.file.content - f.pos) in
    let n = min avail count in
    (try
       Memory.write_bytes_raw p.mem buf (Bytes.sub f.file.content f.pos n);
       f.pos <- f.pos + n;
       charge w th (n / 16);
       n
     with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some (Fd_conn (c, ep)) ->
    let q = Net.recv_q c ep in
    if Net.Byteq.length q = 0 then
      if Net.peer_closed c ep then 0
      else
        raise
          (Would_block
             { why = Printf.sprintf "read(conn %d)" c.conn_id;
               ready = (fun () -> Net.Byteq.length q > 0 || Net.peer_closed c ep);
               deadline = None })
    else begin
      let b = Net.Byteq.pop q count in
      (try
         Memory.write_bytes_raw p.mem buf b;
         charge w th (Bytes.length b / 16);
         Bytes.length b
       with Memory.Fault _ -> Errno.ret Errno.efault)
    end
  | Some (Fd_pipe_r q) ->
    if Net.Byteq.length q = 0 then
      raise
        (Would_block
           { why = "read(pipe)"; ready = (fun () -> Net.Byteq.length q > 0); deadline = None })
    else
      let b = Net.Byteq.pop q count in
      (try
         Memory.write_bytes_raw p.mem buf b;
         Bytes.length b
       with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some (Fd_console _) | Some (Fd_devnull) -> 0
  | Some (Fd_listener _) | Some (Fd_pipe_w _) -> Errno.ret Errno.einval

let do_write (w : world) (th : thread) fd buf count =
  let p = th.t_proc in
  if count < 0 then Errno.ret Errno.einval
  else
  match Hashtbl.find_opt p.fds fd with
  | None -> Errno.ret Errno.ebadf
  | Some (Fd_console out) -> (
    try
      let b = Memory.read_bytes_raw p.mem buf count in
      Buffer.add_bytes out b;
      charge w th (count / 16);
      count
    with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some (Fd_file f) -> (
    if f.file.file_immutable then Errno.ret Errno.eperm
    else
      try
        let b = Memory.read_bytes_raw p.mem buf count in
        let newlen = max (Bytes.length f.file.content) (f.pos + count) in
        let content =
          if newlen > Bytes.length f.file.content then begin
            let c = Bytes.make newlen '\000' in
            Bytes.blit f.file.content 0 c 0 (Bytes.length f.file.content);
            c
          end
          else f.file.content
        in
        Bytes.blit b 0 content f.pos count;
        f.file.content <- content;
        f.pos <- f.pos + count;
        charge w th (count / 16);
        count
      with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some (Fd_conn (c, ep)) -> (
    if Net.peer_closed c ep then Errno.ret Errno.eio
    else
      try
        let b = Memory.read_bytes_raw p.mem buf count in
        Net.Byteq.push (Net.send_q c ep) b;
        charge w th (count / 16);
        count
      with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some (Fd_pipe_w q) -> (
    try
      let b = Memory.read_bytes_raw p.mem buf count in
      Net.Byteq.push q b;
      count
    with Memory.Fault _ -> Errno.ret Errno.efault)
  | Some Fd_devnull -> count
  | Some (Fd_listener _) | Some (Fd_pipe_r _) -> Errno.ret Errno.einval

let resolve_path (p : proc) path =
  if String.length path > 0 && path.[0] = '/' then path else Filename.concat p.cwd path

let do_open (w : world) (th : thread) path flags =
  let p = th.t_proc in
  let path = resolve_path p path in
  charge w th 120;
  (* /proc/PID/maps and /proc/self/maps are synthesised on open *)
  let proc_maps_of pid_str =
    let target =
      if pid_str = "self" then Some p
      else
        match int_of_string_opt pid_str with
        | Some pid -> List.find_opt (fun q -> q.pid = pid) w.procs
        | None -> None
    in
    match target with
    | None -> Errno.ret Errno.enoent
    | Some q ->
      let file =
        { Vfs.content = Bytes.of_string (maps_string q ^ "\n"); file_immutable = true; mode = 0o444 }
      in
      alloc_fd p (Fd_file { file; pos = 0; path })
  in
  match String.split_on_char '/' path with
  | [ ""; "proc"; pid_str; "maps" ] -> proc_maps_of pid_str
  | _ -> (
    if flags land o_creat <> 0 then
      match Vfs.mkdir_p w.vfs (Filename.dirname path) with
      | Error e -> vfs_err e
      | Ok _ -> (
        match
          if Vfs.exists w.vfs path && flags land o_trunc = 0 then Vfs.open_file w.vfs path
          else Vfs.create_file w.vfs path
        with
        | Error e -> vfs_err e
        | Ok f -> alloc_fd p (Fd_file { file = f; pos = 0; path }))
    else if Vfs.is_dir w.vfs path then
      (* opening a directory: an empty pseudo-file whose path getdents64
         resolves against *)
      alloc_fd p
        (Fd_file { file = { Vfs.content = Bytes.empty; file_immutable = true; mode = 0o555 }; pos = 0; path })
    else
      match Vfs.open_file w.vfs path with
      | Error e -> vfs_err e
      | Ok f ->
        if flags land o_trunc <> 0 && flags land o_wronly <> 0 then f.content <- Bytes.empty;
        alloc_fd p (Fd_file { file = f; pos = 0; path }))

(* ------------------------------------------------------------------ *)
(* Memory management                                                   *)

let do_mmap (w : world) (th : thread) addr len prot flags fd off =
  let p = th.t_proc in
  charge w th 200;
  if len <= 0 then Errno.ret Errno.einval
  else begin
    let perm = perm_of_prot prot in
    match (fd >= 0, Hashtbl.find_opt p.fds fd) with
    | true, Some (Fd_file f) -> (
      (* file-backed: if the file is a registered library image, map the
         requested section of that image *)
      match find_library w f.path with
      | Some im -> Mapper.map_image_section w p im ~section:(if off = 0 then `Text else `Data)
      | None ->
        (* plain file mapping: copy contents *)
        let base = p.mmap_cursor in
        p.mmap_cursor <- p.mmap_cursor + Memory.align_up len + 0x10000;
        Memory.map p.mem ~addr:base ~len ~perm;
        Memory.write_bytes_raw p.mem base f.file.content;
        add_region p
          { r_start = base; r_len = Memory.align_up len; r_perm = perm; r_name = f.path;
            r_owner = Anon; r_image = None; r_sec = `Other };
        base)
    | true, _ -> Errno.ret Errno.ebadf
    | false, _ ->
      (* anonymous *)
      let base =
        if flags land map_fixed <> 0 then addr
        else begin
          let b = p.mmap_cursor in
          p.mmap_cursor <- p.mmap_cursor + Memory.align_up len + 0x10000;
          b
        end
      in
      if base land (Memory.page_size - 1) <> 0 then Errno.ret Errno.einval
      else begin
        if flags land map_noreserve <> 0 && len > 0x1000_0000 then
          (* huge reservation (zpoline's bitmap): account virtual space
             only; pages materialise on first touch — we commit a token
             page so the accounting below is visible *)
          Memory.reserve p.mem ~len
        else Memory.map p.mem ~addr:base ~len ~perm;
        add_region p
          { r_start = base; r_len = Memory.align_up len; r_perm = perm;
            r_name = (if base = 0 then "[trampoline]" else "[anon]");
            r_owner = (if base = 0 then Trampoline else Anon); r_image = None; r_sec = `Other };
        base
      end
  end

let do_mprotect (w : world) (th : thread) addr len prot =
  let p = th.t_proc in
  charge w th 150;
  let perm = perm_of_prot prot in
  Memory.set_perm p.mem ~addr ~len ~perm;
  (match find_region p addr with
  | Some r when r.r_start = addr && r.r_len = Memory.align_up len -> r.r_perm <- perm
  | Some r -> r.r_perm <- perm (* partial: reflect latest change in maps *)
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* Process management                                                  *)

let do_fork (w : world) (th : thread) =
  let p = th.t_proc in
  charge w th 2000;
  let child = new_proc w ~parent:(Some p) ~cmd:p.cmd in
  child.mem <- Memory.clone p.mem;
  child.regions <- p.regions;
  child.fds <- Hashtbl.copy p.fds;
  child.next_fd <- p.next_fd;
  child.env <- p.env;
  child.cwd <- p.cwd;
  child.sig_handlers <- Hashtbl.copy p.sig_handlers;
  child.vdso_enabled <- p.vdso_enabled;
  child.globals <- Hashtbl.copy p.globals;
  child.brk_cur <- p.brk_cur;
  child.mmap_cursor <- p.mmap_cursor;
  child.next_pkey <- p.next_pkey;
  child.argv <- p.argv;
  (* pstates are shared with the parent (see DESIGN.md): interposer
     counters aggregate across fork trees, like a shared-memory page *)
  child.pstates <- p.pstates;
  child.image_bases <- Hashtbl.copy p.image_bases;
  child.startup_done <- p.startup_done;
  child.seccomp <- p.seccomp;
  child.aslr_slide <- p.aslr_slide;
  let cth = new_thread w child in
  Regs.restore cth.regs ~from:th.regs;
  cth.sud <- Option.map (fun s -> { sel_addr = s.sel_addr; allow_lo = s.allow_lo; allow_hi = s.allow_hi }) th.sud;
  (* signal frames live on the (copied) user stack on real hardware, so
     a child forked from inside a signal handler — e.g. an interposer
     re-issuing fork from its SIGSYS handler — can still sigreturn *)
  cth.frames <- List.map (fun fr -> { fr with fr_regs = Regs.copy fr.fr_regs }) th.frames;
  Regs.set cth.regs RAX 0;
  child.pid

let do_clone_thread (w : world) (th : thread) ~fn ~stack ~arg =
  charge w th 1500;
  let nt = new_thread w th.t_proc in
  Regs.restore nt.regs ~from:th.regs;
  nt.regs.rip <- fn;
  Regs.set nt.regs RSP stack;
  Regs.set nt.regs RDI arg;
  Regs.set nt.regs RAX 0;
  nt.sud <- Option.map (fun s -> { sel_addr = s.sel_addr; allow_lo = s.allow_lo; allow_hi = s.allow_hi }) th.sud;
  nt.tid

let do_wait4 (w : world) (th : thread) ~pid_sel ~status_ptr =
  let p = th.t_proc in
  let candidates () =
    List.filter
      (fun c -> (pid_sel = -1 || c.pid = pid_sel) && proc_dead c && not c.reaped)
      p.children
  in
  match candidates () with
  | [] ->
    if p.children = [] then Errno.ret Errno.echild
    else
      raise
        (Would_block { why = "wait4"; ready = (fun () -> candidates () <> []); deadline = None })
  | c :: _ ->
    charge w th 300;
    c.reaped <- true;
    let status =
      match (c.exit_status, c.term_signal) with
      | Some s, _ -> s lsl 8
      | None, Some sg -> sg
      | None, None -> 0
    in
    if status_ptr <> 0 then (try Memory.write_u64_raw p.mem status_ptr status with Memory.Fault _ -> ());
    c.pid

(* ------------------------------------------------------------------ *)
(* SUD via prctl                                                       *)

let do_prctl (w : world) (th : thread) args =
  match args.(0) with
  | op when op = Sysno.pr_set_syscall_user_dispatch ->
    charge w th 250;
    if args.(1) = Sysno.pr_sys_dispatch_off then begin
      th.sud <- None;
      ktrace_count w th.t_proc "sud.disarm";
      ktrace_event w th
        (K23_obs.Event.Sud_toggle { armed = false; sel_addr = 0; allow_lo = 0; allow_hi = 0 });
      0
    end
    else if args.(1) = Sysno.pr_sys_dispatch_on then begin
      th.sud <- Some { sel_addr = args.(4); allow_lo = args.(2); allow_hi = args.(2) + args.(3) };
      w.sud_ever_armed <- true;
      ktrace_count w th.t_proc "sud.arm";
      ktrace_event w th
        (K23_obs.Event.Sud_toggle
           { armed = true; sel_addr = args.(4); allow_lo = args.(2); allow_hi = args.(2) + args.(3) });
      0
    end
    else Errno.ret Errno.einval
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

(* Errno-storm half of the fault plane (DESIGN.md §4i): rolled before
   the implementation runs — and before any availability check — so a
   decision can never depend on mechanism-relative timing.  Only
   consults the key armed by {!Kern.fault_arm}, so a retry of a parked
   call replays the first dispatch's (negative) decisions instead of
   rolling new dice. *)
let fault_errno (w : world) (th : thread) (p : proc) ~nr ~args =
  match w.faults with
  | None -> None
  | Some plan ->
    let key = th.fault_key in
    if key = 0 then None
    else
      let inject kind e =
        fault_event w th ~nr ~kind;
        th.fault_key <- 0;
        Some (Errno.ret e)
      in
      if nr = Sysno.mmap then
        if Faults.roll_enomem plan ~key then inject "enomem" Errno.enomem else None
      else if
        nr = Sysno.socket || nr = Sysno.open_ || nr = Sysno.openat || nr = Sysno.dup
        || nr = Sysno.accept
      then
        if Faults.roll_emfile plan ~key then
          if Faults.flip ~key then inject "emfile" Errno.emfile else inject "enfile" Errno.enfile
        else if nr = Sysno.accept && Faults.roll_eagain plan ~key then
          inject "eagain" Errno.eagain
        else None
      else if nr = Sysno.connect then
        if Faults.roll_reset plan ~key then inject "reset" Errno.econnreset else None
      else if is_rw nr then (
        match Hashtbl.find_opt p.fds args.(0) with
        | Some (Fd_conn _) ->
          if Faults.roll_reset plan ~key then inject "reset" Errno.econnreset
          else if Faults.roll_eagain plan ~key then inject "eagain" Errno.eagain
          else None
        | _ -> None)
      else None

let dispatch (ctx : ctx) ~nr ~args : int =
  let w = ctx.world and th = ctx.thread in
  let p = th.t_proc in
  match fault_errno w th p ~nr ~args with
  | Some ret -> ret
  | None -> (
  match nr with
  | n when n = Sysno.read -> do_read w th args.(0) args.(1) args.(2)
  | n when n = Sysno.write -> do_write w th args.(0) args.(1) args.(2)
  | n when n = Sysno.open_ -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path -> do_open w th path args.(1))
  | n when n = Sysno.openat -> (
    match read_user_cstr p args.(1) with
    | Error e -> Errno.ret e
    | Ok path -> do_open w th path args.(2))
  | n when n = Sysno.close ->
    if Hashtbl.mem p.fds args.(0) then begin
      (match Hashtbl.find_opt p.fds args.(0) with
      | Some (Fd_conn (c, ep)) -> Net.close c ep
      | Some (Fd_listener l) -> Net.unlisten w.net l.port
      | _ -> ());
      Hashtbl.remove p.fds args.(0);
      0
    end
    else Errno.ret Errno.ebadf
  | n when n = Sysno.stat || n = Sysno.access -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path -> if Vfs.exists w.vfs (resolve_path p path) then 0 else Errno.ret Errno.enoent)
  | n when n = Sysno.fstat -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_file f) ->
      (try
         Memory.write_u64_raw p.mem args.(1) (Bytes.length f.file.content);
         0
       with Memory.Fault _ -> Errno.ret Errno.efault)
    | Some _ ->
      (try
         Memory.write_u64_raw p.mem args.(1) 0;
         0
       with Memory.Fault _ -> Errno.ret Errno.efault)
    | None -> Errno.ret Errno.ebadf)
  | n when n = Sysno.lseek -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_file f) ->
      let pos =
        match args.(2) with
        | 0 -> args.(1) (* SEEK_SET *)
        | 1 -> f.pos + args.(1)
        | 2 -> Bytes.length f.file.content + args.(1)
        | _ -> -1
      in
      if pos < 0 then Errno.ret Errno.einval
      else begin
        f.pos <- pos;
        pos
      end
    | _ -> Errno.ret Errno.ebadf)
  | n when n = Sysno.mmap -> do_mmap w th args.(0) args.(1) args.(2) args.(3) args.(4) args.(5)
  | n when n = Sysno.mprotect -> do_mprotect w th args.(0) args.(1) args.(2)
  | n when n = Sysno.munmap ->
    Memory.unmap p.mem ~addr:args.(0) ~len:args.(1);
    remove_region p ~start:args.(0);
    0
  | n when n = Sysno.brk ->
    if args.(0) > p.brk_cur then begin
      let old = Memory.align_up p.brk_cur in
      let new_ = Memory.align_up args.(0) in
      if new_ > old then Memory.map p.mem ~addr:old ~len:(new_ - old) ~perm:Memory.perm_rw;
      p.brk_cur <- args.(0)
    end;
    p.brk_cur
  | n when n = Sysno.rt_sigaction ->
    if args.(1) = 0 then Hashtbl.remove p.sig_handlers args.(0)
    else Hashtbl.replace p.sig_handlers args.(0) args.(1);
    0
  | n when n = Sysno.rt_sigprocmask -> 0
  | n when n = Sysno.rt_sigreturn ->
    do_sigreturn w th;
    Regs.get th.regs RAX
  | n when n = Sysno.ioctl || n = Sysno.fcntl || n = Sysno.futex || n = Sysno.arch_prctl -> 0
  | n when n = Sysno.pipe ->
    let q = Net.Byteq.create () in
    let rfd = alloc_fd p (Fd_pipe_r q) in
    let wfd = alloc_fd p (Fd_pipe_w q) in
    (try
       Memory.write_u64_raw p.mem args.(0) rfd;
       Memory.write_u64_raw p.mem (args.(0) + 8) wfd;
       0
     with Memory.Fault _ -> Errno.ret Errno.efault)
  | n when n = Sysno.dup -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some fd -> alloc_fd p fd
    | None -> Errno.ret Errno.ebadf)
  | n when n = Sysno.sched_yield -> 0
  | n when n = Sysno.nanosleep ->
    (* arg0 is the duration in cycles.  The absolute deadline must
       survive the block/retry cycle — the scheduler re-dispatches a
       woken syscall with the same args array, and recomputing
       [now + duration] there would re-arm the sleep forever — so the
       first dispatch stashes it in args.(1) (the rem-pointer slot,
       unused by this model; 0 from all in-tree callers). *)
    let deadline = if args.(1) <> 0 then args.(1) else now w + args.(0) in
    if now w >= deadline then 0
    else begin
      args.(1) <- deadline;
      raise
        (Would_block
           { why = "nanosleep"; ready = (fun () -> now w >= deadline); deadline = Some deadline })
    end
  | n when n = Sysno.getpid -> p.pid
  | n when n = Sysno.gettid -> th.tid
  | n when n = Sysno.socket ->
    (* socket(2): the fd is re-purposed by bind/listen/connect *)
    alloc_fd p Fd_devnull
  | n when n = Sysno.bind ->
    (* sockaddr is modelled as a bare port number (loopback only) *)
    if Hashtbl.mem p.fds args.(0) then begin
      Hashtbl.replace w.net.Net.bound_ports (p.pid, args.(0)) args.(1);
      0
    end
    else Errno.ret Errno.ebadf
  | n when n = Sysno.listen -> (
    match Hashtbl.find_opt w.net.Net.bound_ports (p.pid, args.(0)) with
    | None -> Errno.ret Errno.einval
    | Some port -> (
      match Net.listen w.net port with
      | Error `Addrinuse -> Errno.ret Errno.eaddrinuse
      | Ok l ->
        Hashtbl.replace p.fds args.(0) (Fd_listener l);
        0))
  | n when n = Sysno.accept -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_listener l) -> (
      match Net.accept l with
      | Some c ->
        charge w th 300;
        alloc_fd p (Fd_conn (c, Net.B))
      | None ->
        raise
          (Would_block
             {
               why = Printf.sprintf "accept(:%d)" l.port;
               ready = (fun () -> Net.backlog_length l > 0);
               deadline = None;
             }))
    | _ -> Errno.ret Errno.ebadf)
  | n when n = Sysno.connect -> (
    charge w th 400;
    match Net.connect w.net args.(1) with
    | Error `Refused -> Errno.ret Errno.econnrefused
    | Ok c ->
      Hashtbl.replace p.fds args.(0) (Fd_conn (c, Net.A));
      0)
  | n when n = Sysno.sendto -> do_write w th args.(0) args.(1) args.(2)
  | n when n = Sysno.recvfrom -> do_read w th args.(0) args.(1) args.(2)
  | n when n = Sysno.shutdown -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_conn (c, ep)) ->
      Net.close c ep;
      0
    | _ -> Errno.ret Errno.ebadf)
  | n when n = Sysno.fork -> do_fork w th
  | n when n = Sysno.clone -> do_clone_thread w th ~fn:args.(0) ~stack:args.(1) ~arg:args.(2)
  | n when n = Sysno.execve -> (
    match (read_user_cstr p args.(0), read_user_strv p args.(1), read_user_strv p args.(2)) with
    | Ok path, Ok argv, Ok envp -> (
      match w.execve_impl with
      | None -> panic "no execve implementation installed"
      | Some f -> f ctx ~path ~argv ~envp)
    | _ -> Errno.ret Errno.efault)
  | n when n = Sysno.exit ->
    th.state <- Dead;
    if List.for_all (fun t -> t.state = Dead) p.threads then exit_proc p ~status:args.(0);
    0
  | n when n = Sysno.exit_group ->
    exit_proc p ~status:args.(0);
    0
  | n when n = Sysno.wait4 -> do_wait4 w th ~pid_sel:args.(0) ~status_ptr:args.(1)
  | n when n = Sysno.kill -> (
    match List.find_opt (fun q -> q.pid = args.(0)) w.procs with
    | Some q -> (
      let signo = args.(1) in
      (* a registered handler catches the signal instead of dying; the
         delivery wakes a thread parked in a blocking syscall with
         -EINTR before its deadline (the signal-wake contract
         test_faults pins) *)
      match
        if Hashtbl.mem q.sig_handlers signo then
          List.find_opt (fun t -> t.state <> Dead) q.threads
        else None
      with
      | Some target ->
        deliver_signal w target ~signo ~sysno:0 ~site:0 ~args:[||];
        0
      | None ->
        kill_proc q ~signal:signo;
        0)
    | None -> Errno.ret Errno.esrch)
  | n when n = Sysno.getcwd -> (
    try
      Memory.write_cstr p.mem args.(0) p.cwd;
      String.length p.cwd + 1
    with Memory.Fault _ -> Errno.ret Errno.efault)
  | n when n = Sysno.chdir -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path ->
      let path = resolve_path p path in
      if Vfs.is_dir w.vfs path then begin
        p.cwd <- path;
        0
      end
      else Errno.ret Errno.enoent)
  | n when n = Sysno.mkdir -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path -> (
      match Vfs.mkdir_p w.vfs (resolve_path p path) with Ok _ -> 0 | Error e -> vfs_err e))
  | n when n = Sysno.unlink -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path -> ( match Vfs.unlink w.vfs (resolve_path p path) with Ok () -> 0 | Error e -> vfs_err e))
  | n when n = Sysno.rename -> (
    match (read_user_cstr p args.(0), read_user_cstr p args.(1)) with
    | Ok src, Ok dst -> (
      match Vfs.rename w.vfs (resolve_path p src) (resolve_path p dst) with
      | Ok () -> 0
      | Error e -> vfs_err e)
    | _ -> Errno.ret Errno.efault)
  | n when n = Sysno.chmod -> (
    match read_user_cstr p args.(0) with
    | Error e -> Errno.ret e
    | Ok path ->
      if Vfs.path_immutable w.vfs (resolve_path p path) then Errno.ret Errno.eperm else 0)
  | n when n = Sysno.ftruncate -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_file f) ->
      if f.file.file_immutable then Errno.ret Errno.eperm
      else begin
        let len = args.(1) in
        let c = Bytes.make len '\000' in
        Bytes.blit f.file.content 0 c 0 (min len (Bytes.length f.file.content));
        f.file.content <- c;
        0
      end
    | _ -> Errno.ret Errno.ebadf)
  | n when n = Sysno.fsync ->
    charge w th 3000;
    0
  | n when n = Sysno.getdents64 -> (
    match Hashtbl.find_opt p.fds args.(0) with
    | Some (Fd_file f) when Bytes.length f.file.content = 0 && Vfs.is_dir w.vfs f.path -> (
      (* opened a directory: emit the listing once *)
      match Vfs.listdir w.vfs f.path with
      | Error e -> vfs_err e
      | Ok names ->
        if f.pos > 0 then 0
        else begin
          let blob = String.concat "\000" names ^ "\000" in
          (try
             Memory.write_bytes_raw p.mem args.(1) (Bytes.of_string blob);
             f.pos <- 1;
             String.length blob
           with Memory.Fault _ -> Errno.ret Errno.efault)
        end)
    | Some _ -> 0
    | None -> Errno.ret Errno.ebadf)
  | n when n = Sysno.gettimeofday || n = Sysno.clock_gettime ->
    let ns = now w * 10 / 32 in
    (try
       let buf = if n = Sysno.clock_gettime then args.(1) else args.(0) in
       Memory.write_u64_raw p.mem buf ns;
       0
     with Memory.Fault _ -> Errno.ret Errno.efault)
  | n when n = Sysno.prctl -> do_prctl w th args
  | n when n = Sysno.pkey_alloc ->
    let k = p.next_pkey in
    p.next_pkey <- k + 1;
    if k > 15 then Errno.ret Errno.enomem else k
  | n when n = Sysno.pkey_free -> 0
  | n when n = Sysno.pkey_mprotect ->
    let ret = do_mprotect w th args.(0) args.(1) args.(2) in
    if ret = 0 then Memory.set_pkey p.mem ~addr:args.(0) ~len:args.(1) ~pkey:args.(3);
    ret
  | n when n = Sysno.ptrace || n = Sysno.process_vm_readv || n = Sysno.process_vm_writev ->
    (* tracers are host-level agents in this model; the syscalls exist
       only so strace-style examples can show them *)
    Errno.ret Errno.enosys
  | _ ->
    (* unknown / non-existent syscalls, including the microbenchmark's
       syscall 500 and K23's fake syscalls when no tracer intercepts
       them: ENOSYS, as on Linux *)
    Errno.ret Errno.enosys)
