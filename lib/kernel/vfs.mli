(** In-memory virtual filesystem: hierarchical directories, regular
    files, unlink/rename/truncate, and an {e immutable} attribute used
    by K23 to seal its offline-log directory (Section 5.3): once
    sealed, any write, rename or unlink below it fails with EPERM. *)

type node = Dir of dir | File of file

and dir = { entries : (string, node) Hashtbl.t; mutable dir_immutable : bool }

and file = {
  mutable content : Bytes.t;
  mutable file_immutable : bool;
  mutable mode : int;
}

type t = { root : dir }

type err = [ `Perm | `Noent | `Notdir | `Isdir | `Inval ]

val create : unit -> t

val reset : t -> unit
(** Empty the filesystem in place (seals included): observationally a
    fresh {!create}, reusing the root node. *)

val split_path : string -> string list
val lookup : t -> string -> node option
val exists : t -> string -> bool
val is_dir : t -> string -> bool

val path_immutable : t -> string -> bool
(** True when any immutable directory (or the file itself) lies on the
    path — mutations must then fail. *)

val mkdir_p : t -> string -> (dir, err) result
val create_file : t -> string -> (file, err) result
val open_file : t -> string -> (file, err) result
val write_file : t -> string -> string -> (file, err) result
val read_file : t -> string -> (string, err) result
val unlink : t -> string -> (unit, err) result
val rename : t -> string -> string -> (unit, err) result
val listdir : t -> string -> (string list, err) result

val set_immutable : t -> string -> bool -> (unit, err) result
(** Seal (or unseal) a directory or file. *)

val err_to_errno : err -> int
