(** In-memory virtual filesystem.

    Supports the subset of POSIX semantics the workloads and K23 need:
    hierarchical directories, regular files, unlink/rename/truncate,
    and an {e immutable} attribute.  K23 marks its offline-log
    directory immutable once the offline phase completes (Section 5.3);
    any later write, rename or unlink under an immutable directory
    fails with EPERM. *)

type node = Dir of dir | File of file

and dir = {
  entries : (string, node) Hashtbl.t;
  mutable dir_immutable : bool;
}

and file = {
  mutable content : Bytes.t;
  mutable file_immutable : bool;
  mutable mode : int;
}

type t = { root : dir }

type err = [ `Perm | `Noent | `Notdir | `Isdir | `Inval ]

let create () = { root = { entries = Hashtbl.create 16; dir_immutable = false } }

(** Empty the filesystem in place: equivalent to a fresh {!create}
    (immutable seals included — a reset world re-seals its own logs).
    Scratch-world reuse resets rather than reallocates. *)
let reset t =
  Hashtbl.reset t.root.entries;
  t.root.dir_immutable <- false

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(** Resolve a path to a node. *)
let rec lookup_in dir = function
  | [] -> Some (Dir dir)
  | [ last ] -> Hashtbl.find_opt dir.entries last
  | comp :: rest -> (
    match Hashtbl.find_opt dir.entries comp with
    | Some (Dir d) -> lookup_in d rest
    | Some (File _) | None -> None)

let lookup t path = lookup_in t.root (split_path path)

let exists t path = Option.is_some (lookup t path)

let is_dir t path = match lookup t path with Some (Dir _) -> true | _ -> false

(** Find the parent directory of [path]; [Error `Noent] when an
    intermediate component is missing. *)
let parent_of t path =
  match List.rev (split_path path) with
  | [] -> Error `Inval
  | name :: rev_dirs -> (
    match lookup_in t.root (List.rev rev_dirs) with
    | Some (Dir d) -> Ok (d, name)
    | Some (File _) -> Error `Notdir
    | None -> Error `Noent)

(** Any immutable directory on the path makes mutation fail (a coarse
    but sufficient model of `chattr +i` on the log directory). *)
let path_immutable t path =
  let rec go dir = function
    | [] -> dir.dir_immutable
    | comp :: rest ->
      dir.dir_immutable
      ||
      (match Hashtbl.find_opt dir.entries comp with
      | Some (Dir d) -> go d rest
      | Some (File f) -> f.file_immutable
      | None -> false)
  in
  go t.root (split_path path)

let mkdir_p t path =
  let rec go dir = function
    | [] -> Ok dir
    | comp :: rest -> (
      match Hashtbl.find_opt dir.entries comp with
      | Some (Dir d) -> go d rest
      | Some (File _) -> Error `Notdir
      | None ->
        let d = { entries = Hashtbl.create 8; dir_immutable = false } in
        Hashtbl.replace dir.entries comp (Dir d);
        go d rest)
  in
  go t.root (split_path path)

(** Create (or truncate) a regular file. *)
let create_file t path =
  if path_immutable t path then Error `Perm
  else
    match parent_of t path with
    | Error _ as e -> e
    | Ok (dir, name) -> (
      match Hashtbl.find_opt dir.entries name with
      | Some (Dir _) -> Error `Isdir
      | Some (File f) ->
        if f.file_immutable then Error `Perm
        else begin
          f.content <- Bytes.empty;
          Ok f
        end
      | None ->
        let f = { content = Bytes.empty; file_immutable = false; mode = 0o644 } in
        Hashtbl.replace dir.entries name (File f);
        Ok f)

let open_file t path =
  match lookup t path with
  | Some (File f) -> Ok f
  | Some (Dir _) -> Error `Isdir
  | None -> Error `Noent

(** Convenience used by world setup and tests. *)
let write_file t path content =
  match mkdir_p t (Filename.dirname path) with
  | Error _ as e -> e
  | Ok _ -> (
    match create_file t path with
    | Error _ as e -> e
    | Ok f ->
      f.content <- Bytes.of_string content;
      Ok f)

let read_file t path =
  match open_file t path with
  | Ok f -> Ok (Bytes.to_string f.content)
  | Error _ as e -> e

let unlink t path =
  if path_immutable t path then Error `Perm
  else
    match parent_of t path with
    | Error _ as e -> e
    | Ok (dir, name) ->
      if Hashtbl.mem dir.entries name then begin
        Hashtbl.remove dir.entries name;
        Ok ()
      end
      else Error `Noent

let rename t src dst =
  if path_immutable t src || path_immutable t dst then Error `Perm
  else
    match (parent_of t src, parent_of t dst) with
    | Ok (sdir, sname), Ok (ddir, dname) -> (
      match Hashtbl.find_opt sdir.entries sname with
      | None -> Error `Noent
      | Some node ->
        Hashtbl.remove sdir.entries sname;
        Hashtbl.replace ddir.entries dname node;
        Ok ())
    | (Error _ as e), _ -> e
    | _, (Error _ as e) -> e

let listdir t path =
  match lookup t path with
  | Some (Dir d) -> Ok (Hashtbl.fold (fun k _ acc -> k :: acc) d.entries [] |> List.sort compare)
  | Some (File _) -> Error `Notdir
  | None -> Error `Noent

(** Mark a directory (and implicitly everything below it) immutable —
    the paper's "we mark the log directory immutable once the offline
    phase completes". *)
let set_immutable t path v =
  match lookup t path with
  | Some (Dir d) ->
    d.dir_immutable <- v;
    Ok ()
  | Some (File f) ->
    f.file_immutable <- v;
    Ok ()
  | None -> Error `Noent

let err_to_errno (e : err) =
  match e with
  | `Perm -> Errno.eperm
  | `Noent -> Errno.enoent
  | `Notdir -> Errno.enotdir
  | `Isdir -> Errno.eisdir
  | `Inval -> Errno.einval
