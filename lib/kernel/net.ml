(** Loopback-only network model.

    The paper runs benchmark clients and servers on the same physical
    machine over localhost (Section 6.2.2); we model exactly that: TCP
    listeners keyed by port, connections as a pair of byte queues.
    Blocking behaviour (accept on an empty backlog, read on an empty
    queue) is implemented by the kernel scheduler, not here. *)

(** One direction of a connection: an unbounded FIFO of bytes.

    Two-list (Okasaki) queue: [push] conses onto [back], [pop] consumes
    [front] and reverses [back] only when [front] drains — amortised
    O(1) per chunk.  The previous representation appended with
    [q.chunks <- q.chunks @ [b]], making an N-chunk enqueue burst O(N²)
    — quadratic in exactly the server hot path (every [write] on a
    connection pushes a chunk). *)
module Byteq = struct
  type t = {
    mutable front : Bytes.t list;  (** oldest first *)
    mutable back : Bytes.t list;  (** newest first *)
    mutable head_off : int;  (** consumed prefix of [List.hd front] *)
    mutable size : int;
  }

  let create () = { front = []; back = []; head_off = 0; size = 0 }

  let length q = q.size

  let push q b =
    if Bytes.length b > 0 then begin
      q.back <- b :: q.back;
      q.size <- q.size + Bytes.length b
    end

  (* oldest chunk, shifting the back list in when the front drains *)
  let head q =
    match q.front with
    | c :: _ -> Some c
    | [] -> (
      match List.rev q.back with
      | [] -> None
      | front ->
        q.front <- front;
        q.back <- [];
        (match front with c :: _ -> Some c | [] -> None))

  let drop_head q =
    (match q.front with [] -> () | _ :: rest -> q.front <- rest);
    q.head_off <- 0

  (** Pop up to [max] bytes. *)
  let pop q max =
    let out = Buffer.create (min max q.size) in
    let rec go () =
      if Buffer.length out >= max then ()
      else
        match head q with
        | None -> ()
        | Some c ->
          let avail = Bytes.length c - q.head_off in
          let want = min avail (max - Buffer.length out) in
          Buffer.add_subbytes out c q.head_off want;
          if want = avail then drop_head q else q.head_off <- q.head_off + want;
          if want > 0 then go ()
    in
    go ();
    let b = Buffer.to_bytes out in
    q.size <- q.size - Bytes.length b;
    b
end

type conn = {
  conn_id : int;
  a_to_b : Byteq.t;
  b_to_a : Byteq.t;
  mutable closed_a : bool;
  mutable closed_b : bool;
}

type endpoint = A | B

(** Pending connections, same two-list queue shape as {!Byteq}:
    [connect] conses onto [bl_back], [accept] pops [bl_front] and
    reverses [bl_back] in only when the front drains — amortised O(1)
    per connection while keeping strict FIFO accept order.  The
    previous representation appended with [l.backlog <- l.backlog @ [c]],
    quadratic in a connect burst (every client of a benchmark run
    lands on the same listener). *)
type listener = {
  port : int;
  mutable bl_front : conn list;  (** oldest first *)
  mutable bl_back : conn list;  (** newest first *)
}

let backlog_length l = List.length l.bl_front + List.length l.bl_back

type t = {
  listeners : (int, listener) Hashtbl.t;
  mutable next_conn : int;
  bound_ports : (int * int, int) Hashtbl.t;
      (* (pid, sockfd) -> bound port; world-local so concurrent worlds
         on separate domains never share it (it used to be a
         module-level table in Syscalls) *)
}

let create () =
  { listeners = Hashtbl.create 8; next_conn = 1; bound_ports = Hashtbl.create 16 }

(** Back to the state of a fresh {!create}, in place: no listeners, no
    bound ports, connection ids restarting from 1 (ids feed normalised
    projections, so a reused world must replay the same sequence). *)
let reset t =
  Hashtbl.reset t.listeners;
  Hashtbl.reset t.bound_ports;
  t.next_conn <- 1

let listen t port =
  if Hashtbl.mem t.listeners port then Error `Addrinuse
  else begin
    let l = { port; bl_front = []; bl_back = [] } in
    Hashtbl.replace t.listeners port l;
    Ok l
  end

(** Client side: create a connection and queue it on the listener's
    backlog.  Endpoint [A] is the client, [B] the server. *)
let connect t port =
  match Hashtbl.find_opt t.listeners port with
  | None -> Error `Refused
  | Some l ->
    let c =
      {
        conn_id = t.next_conn;
        a_to_b = Byteq.create ();
        b_to_a = Byteq.create ();
        closed_a = false;
        closed_b = false;
      }
    in
    t.next_conn <- t.next_conn + 1;
    l.bl_back <- c :: l.bl_back;
    Ok c

(** Server side: take the next pending connection, if any. *)
let accept l =
  (match l.bl_front with
  | [] ->
    l.bl_front <- List.rev l.bl_back;
    l.bl_back <- []
  | _ -> ());
  match l.bl_front with
  | [] -> None
  | c :: rest ->
    l.bl_front <- rest;
    Some c

let send_q c = function A -> c.a_to_b | B -> c.b_to_a
let recv_q c = function A -> c.b_to_a | B -> c.a_to_b

let peer_closed c = function A -> c.closed_b | B -> c.closed_a

let close c = function A -> c.closed_a <- true | B -> c.closed_b <- true

let unlisten t port = Hashtbl.remove t.listeners port
