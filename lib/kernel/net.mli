(** Loopback-only network: TCP-ish listeners keyed by port and
    connections as paired byte queues — the paper's benchmarking setup
    (clients and servers on one machine, Section 6.2.2).  Blocking is
    the scheduler's job, not this module's. *)

module Byteq : sig
  type t

  val create : unit -> t
  val length : t -> int
  val push : t -> Bytes.t -> unit

  val pop : t -> int -> Bytes.t
  (** Pop up to [max] bytes (may span pushed chunks). *)
end

type conn = {
  conn_id : int;
  a_to_b : Byteq.t;
  b_to_a : Byteq.t;
  mutable closed_a : bool;
  mutable closed_b : bool;
}

type endpoint = A | B
(** [A] is the connecting (client) side, [B] the accepting side. *)

type listener = private {
  port : int;
  mutable bl_front : conn list;  (** oldest first *)
  mutable bl_back : conn list;  (** newest first *)
}
(** Pending connections as a two-list FIFO (the {!Byteq} shape):
    amortised O(1) per connect/accept instead of the old O(n²)
    list-append backlog.  [private] so only [connect]/[accept] shift
    the lists; read the depth via {!backlog_length}. *)

val backlog_length : listener -> int

type t = {
  listeners : (int, listener) Hashtbl.t;
  mutable next_conn : int;
  bound_ports : (int * int, int) Hashtbl.t;
      (** (pid, sockfd) -> bound port.  World-local state: keeping it
          here (rather than a module-level table) is what lets many
          worlds run concurrently on separate domains. *)
}

val create : unit -> t

val reset : t -> unit
(** Empty in place: observationally a fresh {!create}, including the
    connection-id sequence. *)

val listen : t -> int -> (listener, [ `Addrinuse ]) result
val connect : t -> int -> (conn, [ `Refused ]) result
val accept : listener -> conn option
val send_q : conn -> endpoint -> Byteq.t
val recv_q : conn -> endpoint -> Byteq.t
val peer_closed : conn -> endpoint -> bool
val close : conn -> endpoint -> unit
val unlisten : t -> int -> unit
