(** World assembly: wires the syscall table and the loader into a
    {!Kern.world} and provides the high-level API used by examples,
    tests and benchmarks. *)

open Kern

(** The complete recipe for one world, as a plain record.

    This is the unit of work of the domain pool ({!K23_par}): every
    run-spec embeds a [Config.t], two equal configs (plus equal
    programs) produce byte-identical worlds, and the record is
    structurally hashable/serialisable — so it doubles as the task
    descriptor that campaign reports and caches key on.  Prefer
    {!create_cfg} over the legacy optional-argument {!create}. *)
module Config = struct
  type t = {
    isa : K23_isa.Isa.t;  (** instruction set of every image this world loads *)
    ncores : int;
    quantum : int;  (** scheduler timeslice, in instructions *)
    seed : int;  (** world RNG seed: ASLR draws + cost skew *)
    aslr : bool;
    cost : K23_machine.Cost.model;
    ktrace : bool;  (** enable the ktrace ring at creation *)
    predecode : bool;  (** per-line decode memo in every I-cache *)
    faults : K23_faults.Faults.plan;  (** fault-injection schedule; {!K23_faults.Faults.none} = off *)
  }

  let default =
    {
      isa = K23_isa.Isa.X86_64;
      ncores = 12;
      quantum = 64;
      seed = 23;
      aslr = true;
      cost = K23_machine.Cost.default;
      ktrace = false;
      predecode = true;
      faults = K23_faults.Faults.none;
    }

  (** [default] with the given fields overridden — the bridge from the
      optional-argument world constructors. *)
  let make ?(isa = default.isa) ?(ncores = default.ncores) ?(quantum = default.quantum)
      ?(seed = default.seed) ?(aslr = default.aslr) ?(cost = default.cost)
      ?(ktrace = default.ktrace) ?(predecode = default.predecode) ?(faults = default.faults) () =
    { isa; ncores; quantum; seed; aslr; cost; ktrace; predecode; faults }

  (* every field is immutable ints/bools, so structural equality and
     the polymorphic hash are exact *)
  let equal (a : t) (b : t) = a = b
  let hash (t : t) = Hashtbl.hash t

  (** Deterministic one-line key, stable across processes (unlike
      [hash] it is readable in reports and cache file names). *)
  let to_string c =
    let m = c.cost in
    (* the isa prefix appears only for non-x86 configs so that every
       pre-existing x86 key (cache file names, reports) is unchanged *)
    (match c.isa with
    | K23_isa.Isa.X86_64 -> ""
    | isa -> Printf.sprintf "isa=%s " (K23_isa.Isa.to_string isa))
    ^ Printf.sprintf
        "ncores=%d quantum=%d seed=%d aslr=%b ktrace=%b predecode=%b \
         cost=%d,%d,%d,%d,%d,%d,%d,%d %s"
        c.ncores c.quantum c.seed c.aslr c.ktrace c.predecode m.insn m.nop m.syscall_base
        m.sud_armed_extra m.sigsys_delivery m.sigreturn_extra m.ptrace_stop m.ptrace_mem_op
        (K23_faults.Faults.to_string c.faults)
end

(* The wiring shared by {!create_cfg} and {!reset}: dispatch hooks,
   base images, filesystem skeleton.  Keeping it in one place is what
   makes "reset ≡ fresh create" an auditable claim rather than two
   code paths to keep in sync. *)
let wire (w : world) (cfg : Config.t) =
  w.syscall_impl <- Some Syscalls.dispatch;
  w.execve_impl <- Some Loader.do_execve;
  (match cfg.isa with
  | K23_isa.Isa.X86_64 ->
    register_library w (Loader.ldso_image ());
    register_library w (Loader.vdso_image ())
  | K23_isa.Isa.Arm64 ->
    register_library w (Loader.ldso_image_arm ());
    register_library w (Loader.vdso_image_arm ()));
  List.iter
    (fun d -> ignore (Vfs.mkdir_p w.vfs d))
    [ "/bin"; "/usr/lib"; "/etc"; "/tmp"; "/home/user"; "/k23" ];
  ignore (Vfs.write_file w.vfs "/etc/ld.so.cache" "ld.so cache\n");
  ignore (Vfs.write_file w.vfs "/etc/hostname" "sim\n");
  w.faults <- (if K23_faults.Faults.enabled cfg.faults then Some cfg.faults else None);
  Hashtbl.reset w.fault_ticks;
  if cfg.ktrace then ignore (ktrace_enable w)

(** Create a fully wired world from a {!Config.t}: syscall dispatch,
    execve, the dynamic linker, the vdso and a minimal filesystem
    skeleton. *)
let create_cfg (cfg : Config.t) =
  let w =
    create_world ~isa:cfg.isa ~ncores:cfg.ncores ~quantum:cfg.quantum ~seed:cfg.seed
      ~aslr:cfg.aslr ~cost:cfg.cost ~predecode:cfg.predecode ()
  in
  wire w cfg;
  w

(** Rebuild [w] in place to the exact observable state of
    [create_cfg cfg] — the scratch-world path of the domain pool
    ({!K23_par}): a reused world skips allocating the big structures
    (cores, I-caches, tables) that a fresh build would recreate.

    The invariants (test_par.ml pins them; DESIGN.md §4g):
    - the RNG is rewound and the per-run cost skew re-drawn, so the
      ASLR/jitter stream replays bit-for-bit;
    - every id sequence (pid, tid, connection id, steps) restarts;
    - the VFS (offline logs and their seals included), the network,
      the library table, the ktrace sink, SUD history and per-core
      state (cycles, residency, I-cache contents, predecode memos) are
      emptied exactly as a fresh world starts;
    - the world's {e structural} parameters ([ncores], [quantum])
      cannot change in place — a config differing there must rebuild
      ([Invalid_argument]). *)
let reset (w : world) (cfg : Config.t) =
  if cfg.ncores <> w.ncores || cfg.quantum <> w.quantum || cfg.isa <> w.isa then
    invalid_arg "World.reset: isa/ncores/quantum differ from the world being reset";
  Rng.reseed w.rng ~seed:cfg.seed;
  (* same draw order as create_world: skew first *)
  w.cost <- { cfg.cost with K23_machine.Cost.syscall_base = cfg.cost.K23_machine.Cost.syscall_base + Rng.int w.rng 3 - 1 };
  Array.fill w.core_cycles 0 w.ncores 0;
  Array.fill w.core_resident 0 w.ncores (-1);
  Array.iter
    (fun ic ->
      K23_machine.Icache.flush ic;
      K23_machine.Icache.set_predecode ic cfg.predecode)
    w.icaches;
  w.procs <- [];
  w.next_pid <- 1;
  w.next_tid <- 1;
  w.next_core <- 0;
  Vfs.reset w.vfs;
  Net.reset w.net;
  Hashtbl.reset w.libraries;
  w.syscall_impl <- None;
  w.execve_impl <- None;
  w.steps <- 0;
  w.trace <- false;
  w.aslr <- cfg.aslr;
  w.sud_ever_armed <- false;
  w.ktrace <- None;
  Array.fill w.ktrace_last_tid 0 w.ncores (-1);
  w.replay_exit <- None;
  wire w cfg

(** Spawn a process running [path].  [env] is a list of "K=V" strings;
    LD_PRELOAD is honoured exactly as by the dynamic loader.  A
    [tracer] attaches before the initial execve, so it observes the
    program from its very first instruction (the property only ptrace
    offers; Section 5.2). *)
let spawn (w : world) ~path ?(argv = []) ?(env = []) ?tracer ?(vdso = true) () =
  let p = new_proc w ~parent:None ~cmd:path in
  let th = new_thread w p in
  p.tracer <- tracer;
  p.vdso_enabled <- vdso;
  let argv = if argv = [] then [ path ] else argv in
  match w.execve_impl with
  | None -> panic "world not wired"
  | Some f ->
    let ret = f { world = w; thread = th } ~path ~argv ~envp:env in
    if ret < 0 then begin
      exit_proc p ~status:127;
      Error ret
    end
    else Ok p

(** Attach a ptrace-style tracer to a process (host-agent model; see
    {!Kern.tracer}). *)
let attach_tracer (p : proc) (tr : tracer) = p.tracer <- Some tr

let detach_tracer (p : proc) = p.tracer <- None

let run = Kern.run

(** Run until [p] terminates (or the step budget is exhausted). *)
let run_until_exit ?max_steps (w : world) (p : proc) =
  run ?max_steps ~until:(fun () -> proc_dead p) w

let exit_code (p : proc) = p.exit_status

let stdout_of = console_output

(** Total simulated wall-clock time (cycles) — the busiest core. *)
let elapsed_cycles (w : world) = now w
