(** Errno values, returned from system calls as negative numbers in
    rax, following the Linux x86-64 kernel ABI. *)

let eperm = 1
let enoent = 2
let esrch = 3
let eintr = 4
let eio = 5
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let eacces = 13
let efault = 14
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let enfile = 23
let emfile = 24
let enosys = 38
let enotempty = 39
let eaddrinuse = 98
let econnreset = 104
let econnrefused = 111

(** Kernel-internal "restart this syscall" sentinel (never visible to
    user space): the fault plane's restart channel re-dispatches the
    call instead of completing it, like Linux's ERESTARTSYS. *)
let erestartsys = 512

(** Encode an error as a syscall return value. *)
let ret e = -e

let is_error v = v < 0

let to_string e =
  match abs e with
  | 1 -> "EPERM"
  | 2 -> "ENOENT"
  | 3 -> "ESRCH"
  | 4 -> "EINTR"
  | 5 -> "EIO"
  | 9 -> "EBADF"
  | 10 -> "ECHILD"
  | 11 -> "EAGAIN"
  | 12 -> "ENOMEM"
  | 13 -> "EACCES"
  | 14 -> "EFAULT"
  | 17 -> "EEXIST"
  | 20 -> "ENOTDIR"
  | 21 -> "EISDIR"
  | 22 -> "EINVAL"
  | 23 -> "ENFILE"
  | 24 -> "EMFILE"
  | 38 -> "ENOSYS"
  | 39 -> "ENOTEMPTY"
  | 98 -> "EADDRINUSE"
  | 104 -> "ECONNRESET"
  | 111 -> "ECONNREFUSED"
  | 512 -> "ERESTARTSYS"
  | n -> Printf.sprintf "E%d" n

(** Reverse lookup: ["EINTR"] -> [Some 4].  Accepts anything
    {!to_string} can produce, including the ["E%d"] fallback spelling;
    returns [None] for strings that are not an errno name. *)
let of_string s =
  match s with
  | "EPERM" -> Some eperm
  | "ENOENT" -> Some enoent
  | "ESRCH" -> Some esrch
  | "EINTR" -> Some eintr
  | "EIO" -> Some eio
  | "EBADF" -> Some ebadf
  | "ECHILD" -> Some echild
  | "EAGAIN" -> Some eagain
  | "ENOMEM" -> Some enomem
  | "EACCES" -> Some eacces
  | "EFAULT" -> Some efault
  | "EEXIST" -> Some eexist
  | "ENOTDIR" -> Some enotdir
  | "EISDIR" -> Some eisdir
  | "EINVAL" -> Some einval
  | "ENFILE" -> Some enfile
  | "EMFILE" -> Some emfile
  | "ENOSYS" -> Some enosys
  | "ENOTEMPTY" -> Some enotempty
  | "EADDRINUSE" -> Some eaddrinuse
  | "ECONNRESET" -> Some econnreset
  | "ECONNREFUSED" -> Some econnrefused
  | "ERESTARTSYS" -> Some erestartsys
  | _ ->
    if String.length s > 1 && s.[0] = 'E' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n > 0 -> Some n
      | _ -> None
    else None
