(* lib/replay: recording round-trips (text codec + save/load), the
   replayer's zero-divergence invariant on faithful replays, divergence
   detection on tampered logs, the --at inspector, the replay-checked
   fuzz oracle (verdicts identical to live, byte-identical at any
   --jobs), and record/replay of the checked-in corpus repros —
   including the faults-plane restart repro, whose schedule must
   re-roll identically from the recorded config. *)

module R = K23_replay
module Recording = K23_replay.Recording
module Recorder = K23_replay.Recorder
module Replayer = K23_replay.Replayer
module Event = K23_obs.Event
module Oracle = K23_fuzz.Oracle
module Mech = K23_eval.Mech

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let register_coreutils w = K23_apps.Coreutils.register_all w

let record_ls mech =
  match
    Recorder.record ~register:register_coreutils ~mech ~path:(K23_apps.Coreutils.path "ls") ()
  with
  | Error e -> Alcotest.failf "record ls under %s failed (%d)" (Mech.to_string mech) e
  | Ok r -> r

(* text codec: parse (to_string r) back and re-serialise byte-identically,
   with every field surviving the trip *)
let test_recording_roundtrip () =
  let r = record_ls Mech.Zpoline_ultra in
  Alcotest.(check bool) "recording has events" true (r.Recording.rc_events <> []);
  let s = Recording.to_string r in
  let r' = Recording.of_string s in
  Alcotest.(check int)
    "event count survives"
    (List.length r.Recording.rc_events)
    (List.length r'.Recording.rc_events);
  Alcotest.(check bool)
    "events survive" true
    (List.for_all2 Event.equal r.Recording.rc_events r'.Recording.rc_events);
  Alcotest.(check string) "app survives" r.Recording.rc_app r'.Recording.rc_app;
  Alcotest.(check string)
    "mech survives"
    (Mech.to_string r.Recording.rc_mech)
    (Mech.to_string r'.Recording.rc_mech);
  Alcotest.(check bool) "config survives" true (r.Recording.rc_cfg = r'.Recording.rc_cfg);
  Alcotest.(check string) "console survives" r.Recording.rc_console r'.Recording.rc_console;
  Alcotest.(check bool) "fates survive" true (r.Recording.rc_fates = r'.Recording.rc_fates);
  Alcotest.(check int) "root pid survives" r.Recording.rc_root r'.Recording.rc_root;
  Alcotest.(check string) "re-serialisation byte-identical" s (Recording.to_string r')

(* save/load through an actual file *)
let test_recording_save_load () =
  let r = record_ls Mech.K23_ultra in
  let path = Filename.temp_file "k23rec" ".k23rec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Recording.save ~path r;
      let r' = Recording.load path in
      Alcotest.(check string)
        "file round-trip byte-identical" (Recording.to_string r) (Recording.to_string r'))

(* a truncated log body must be rejected, not silently shortened *)
let test_recording_truncation_rejected () =
  let r = record_ls Mech.Zpoline_ultra in
  let s = Recording.to_string r in
  let cut = String.sub s 0 (String.length s - 40) in
  match Recording.of_string cut with
  | exception Recording.Parse_error _ -> ()
  | _ -> Alcotest.fail "truncated recording parsed"

(* the tentpole invariant: replaying a parsed recording re-drives the
   identical stream, console and fates *)
let replay_clean mech =
  let r = record_ls mech in
  let r = Recording.of_string (Recording.to_string r) in
  match Replayer.replay ~register:register_coreutils r with
  | Error e -> Alcotest.failf "replay launch failed (%d)" e
  | Ok o ->
    Alcotest.(check bool)
      (Printf.sprintf "%s replay clean" (Mech.to_string mech))
      true (Replayer.ok o);
    Alcotest.(check int) "every event checked" o.Replayer.o_total o.Replayer.o_checked

let test_replay_identical_zpoline () = replay_clean Mech.Zpoline_ultra
let test_replay_identical_k23 () = replay_clean Mech.K23_ultra

(* a log with an event removed mid-stream must report the first
   divergence at exactly that index *)
let test_replay_detects_tampering () =
  let r = record_ls Mech.Zpoline_ultra in
  let n = List.length r.Recording.rc_events in
  let cut = n / 2 in
  let tampered =
    { r with Recording.rc_events = List.filteri (fun i _ -> i <> cut) r.Recording.rc_events }
  in
  match Replayer.replay ~register:register_coreutils tampered with
  | Error e -> Alcotest.failf "replay launch failed (%d)" e
  | Ok o -> (
    Alcotest.(check bool) "tampered replay not ok" false (Replayer.ok o);
    match o.Replayer.o_divergence with
    | None -> Alcotest.fail "no divergence reported"
    | Some d ->
      Alcotest.(check int) "first divergence at the cut" cut d.K23_obs.Trace_diff.index;
      Alcotest.(check bool)
        "context is bounded" true
        (List.length d.K23_obs.Trace_diff.context <= K23_obs.Trace_diff.context_len))

(* --at inspector on a signal-delivery-heavy run: under SUD every
   syscall is a SIGSYS round trip, so the log is dense with
   Signal_deliver events; stopping at one must dump live machine
   state (regs, maps, fd table) at that instant *)
let test_at_inspector () =
  let r = record_ls Mech.Sud in
  let sig_idx =
    let rec find i = function
      | [] -> Alcotest.fail "no Signal_deliver event in SUD recording"
      | (e : Event.t) :: tl -> (
        match e.Event.ev_payload with Event.Signal_deliver _ -> i | _ -> find (i + 1) tl)
    in
    find 0 r.Recording.rc_events
  in
  match Replayer.replay ~at:sig_idx ~register:register_coreutils r with
  | Error e -> Alcotest.failf "replay launch failed (%d)" e
  | Ok o -> (
    match o.Replayer.o_stop with
    | None -> Alcotest.failf "--at %d did not stop" sig_idx
    | Some s ->
      Alcotest.(check int) "stopped at the requested event" sig_idx s.Replayer.st_index;
      Alcotest.(check bool) "no divergence before the stop" true (o.Replayer.o_divergence = None);
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "dump has %s" needle)
            true
            (contains ~needle s.Replayer.st_state))
        [ "regs"; "maps:"; "fds:"; "rip" ])

(* replay-checked fuzz oracle: verdicts (and the whole JSON report)
   identical to the live oracle, and byte-identical across --jobs.
   The full 200-iteration gate runs in bin/dune; this is the in-suite
   fast version. *)
let test_replay_oracle_matches_live () =
  let module C = K23_fuzz.Campaign in
  let live = { C.default_config with c_seed = 23; c_iters = 20 } in
  let replayed = { live with C.c_oracle = C.Replay } in
  let j_live = C.render_json (C.run ~jobs:1 live) in
  let j_replay = C.render_json (C.run ~jobs:1 replayed) in
  Alcotest.(check string) "live and replay oracle reports byte-identical" j_live j_replay;
  let j_replay4 = C.render_json (C.run ~jobs:4 replayed) in
  Alcotest.(check string) "replay oracle jobs 1 = jobs 4" j_replay j_replay4

(* the recording wire format pins the world's ISA: an ARM recording
   carries an [isa: arm64] header that survives the round-trip, while
   x86 recordings keep their pre-ISA bytes (no isa line at all) *)
let test_recording_isa_wire_format () =
  let module Gen = K23_fuzz.Gen in
  let arm_cfg =
    { Oracle.default_world_cfg with K23_kernel.World.Config.isa = K23_isa.Isa.Arm64 }
  in
  let prog = Gen.generate ~isa:K23_isa.Isa.Arm64 (K23_util.Rng.create ~seed:5) in
  (match Oracle.record ~cfg:arm_cfg ~mech:Mech.Native prog.Gen.items with
  | Error e -> Alcotest.failf "arm record failed (%d)" e
  | Ok r ->
    let text = Recording.to_string r in
    Alcotest.(check bool) "isa header present" true (contains ~needle:"\nisa: arm64\n" text);
    let r' = Recording.of_string text in
    Alcotest.(check bool) "isa survives round-trip" true
      (r'.Recording.rc_cfg.K23_kernel.World.Config.isa = K23_isa.Isa.Arm64));
  let x86 = record_ls Mech.Zpoline_ultra in
  Alcotest.(check bool) "no isa header on x86" false
    (contains ~needle:"\nisa:" (Recording.to_string x86))

(* every checked-in repro records and replays cleanly under its own
   mechanism and fault plan — including the PR 8 restart repro, whose
   faults: header must re-arm the schedule from the recorded config *)
let test_corpus_record_replay () =
  let module Corpus = K23_fuzz.Corpus in
  let module Gen = K23_fuzz.Gen in
  let entries = Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  Alcotest.(check bool)
    "faults restart repro present" true
    (List.exists (fun (name, _) -> contains ~needle:"restart" name) entries);
  List.iter
    (fun (name, e) ->
      let cfg =
        let base =
          {
            Oracle.default_world_cfg with
            K23_kernel.World.Config.isa = Gen.items_isa e.Corpus.e_items
          }
        in
        match e.Corpus.e_faults with
        | Some p -> { base with K23_kernel.World.Config.faults = p }
        | None -> base
      in
      match Oracle.record ~cfg ~mech:e.Corpus.e_mech e.Corpus.e_items with
      | Error err -> Alcotest.failf "%s: record failed (%d)" name err
      | Ok r -> (
        let r = Recording.of_string (Recording.to_string r) in
        let register w =
          match e.Corpus.e_items with
          | Gen.X86 its ->
            ignore (K23_userland.Sim.register_app w ~path:Oracle.target_path its);
            ignore
              (K23_userland.Sim.register_app w ~path:Gen.exec_child_path Gen.exec_child_items)
          | Gen.A64 its ->
            let module A = K23_isa_arm.Asm_arm in
            ignore
              (K23_userland.Sim.register_app_prog w ~path:Oracle.target_path (A.assemble its));
            ignore
              (K23_userland.Sim.register_app_prog w ~path:Gen.exec_child_path
                 (A.assemble Gen.exec_child_items_arm))
        in
        match Replayer.replay ~register r with
        | Error err -> Alcotest.failf "%s: replay launch failed (%d)" name err
        | Ok o ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: replay clean (%d events)" name o.Replayer.o_total)
            true (Replayer.ok o)))
    entries

let tests =
  ( "replay",
    [
      Alcotest.test_case "recording round-trip" `Quick test_recording_roundtrip;
      Alcotest.test_case "recording save/load" `Quick test_recording_save_load;
      Alcotest.test_case "truncated recording rejected" `Quick test_recording_truncation_rejected;
      Alcotest.test_case "replay identical (zpoline-ultra)" `Quick test_replay_identical_zpoline;
      Alcotest.test_case "replay identical (K23-ultra)" `Quick test_replay_identical_k23;
      Alcotest.test_case "tampered log diverges at cut" `Quick test_replay_detects_tampering;
      Alcotest.test_case "--at inspector (SUD signal storm)" `Quick test_at_inspector;
      Alcotest.test_case "replay oracle = live oracle" `Quick test_replay_oracle_matches_live;
      Alcotest.test_case "recording isa wire format" `Quick test_recording_isa_wire_format;
      Alcotest.test_case "corpus record/replay (incl. faults)" `Quick test_corpus_record_replay;
    ] )
