(* Encoder/decoder/disassembler unit + property tests. *)

open K23_isa

let some_insns : Insn.t list =
  [
    Nop;
    Ret;
    Int3;
    Hlt;
    Syscall;
    Sysenter;
    Ud2;
    Cpuid;
    Mfence;
    Wrpkru;
    Rdpkru;
    Vcall 7;
    Push RAX;
    Push R12;
    Pop RDI;
    Pop R9;
    Mov_ri (RAX, 0x1234_5678_9abc);
    Mov_ri (R10, 500);
    Mov_ri32 (RDI, 0xdead);
    Mov_rr (RSI, RBP);
    Add_rr (RAX, RBX);
    Sub_rr (RDX, RCX);
    Xor_rr (RDI, RDI);
    Test_rr (R11, R11);
    Cmp_rr (RAX, RSI);
    Add_ri (RSP, 16);
    Sub_ri (RSP, -8);
    Cmp_ri (RAX, 0);
    Load (RAX, RSP, 0);
    Store (RSP, 8, RDI);
    Load8 (RCX, RBX, 100);
    Store8 (RBX, -4, RDX);
    Lea (RSI, RSP, 128);
    Jmp_rel 10;
    Call_rel (-20);
    Jcc (Z, 5);
    Jcc (GT, -6);
    Jmp_reg RAX;
    Call_reg RAX;
    Call_reg R11;
    Jmp_reg R12;
  ]

let check_roundtrip insn () =
  let b = Encode.to_bytes insn in
  match Decode.decode_bytes b 0 with
  | Ok (i, len) ->
    Alcotest.(check string) "insn" (Insn.to_string insn) (Insn.to_string i);
    Alcotest.(check int) "len" (Bytes.length b) len
  | Error `Invalid -> Alcotest.failf "did not decode: %s" (Insn.to_string insn)

let test_syscall_bytes () =
  Alcotest.(check string) "syscall is 0f 05" "0f 05" (K23_util.Hexdump.of_bytes (Encode.to_bytes Syscall));
  Alcotest.(check string) "sysenter is 0f 34" "0f 34"
    (K23_util.Hexdump.of_bytes (Encode.to_bytes Sysenter));
  Alcotest.(check string) "callq *rax is ff d0" "ff d0"
    (K23_util.Hexdump.of_bytes (Encode.to_bytes (Call_reg RAX)))

let test_rewrite_size_match () =
  (* the fundamental zpoline property: syscall and callq *rax are both
     2 bytes, so in-place rewriting is possible *)
  Alcotest.(check int) "same length" (Encode.length Syscall) (Encode.length (Call_reg RAX))

(* linear sweep finds plain syscall sites *)
let test_sweep_finds_sites () =
  let prog =
    Encode.assemble [ Nop; Syscall; Mov_ri32 (RAX, 42); Sysenter; Ret ]
  in
  let sites = Disasm.find_syscall_sites prog ~base:0x1000 in
  Alcotest.(check (list int)) "sites" [ 0x1001; 0x1008 ] sites

(* embedded data that contains 0f 05 is misidentified (pitfall P3a) *)
let test_sweep_misidentifies_data () =
  let data = Bytes.of_string "\x0f\x05\x0f\x05" in
  let prog = Bytes.cat (Encode.assemble [ Ret ]) data in
  let sites = Disasm.find_syscall_sites prog ~base:0 in
  Alcotest.(check bool) "false positives in data" true (List.length sites > 0)

(* a syscall hidden inside an immediate is overlooked (pitfall P2a):
   mov eax, imm32 where the immediate bytes are 0f 05 xx xx *)
let test_sweep_overlooks_embedded () =
  let imm = 0x0000_050f in
  let prog = Encode.assemble [ Mov_ri32 (RAX, imm); Ret ] in
  (* raw pattern scan sees the bytes, linear sweep does not *)
  let raw = Disasm.raw_pattern_sites prog ~base:0 in
  let sweep = Disasm.find_syscall_sites prog ~base:0 in
  Alcotest.(check bool) "raw finds the pattern" true (raw <> []);
  Alcotest.(check (list int)) "sweep sees no site" [] sweep

(* desynchronisation: decoding from a misaligned start yields different
   instructions *)
let test_desync () =
  let prog = Encode.assemble [ Mov_ri32 (RAX, 0x0000_050f); Ret ] in
  match Decode.decode_bytes prog 1 with
  | Ok (i, _) ->
    Alcotest.(check bool) "decodes to something else" true (i <> Mov_ri32 (RAX, 0x0000_050f))
  | Error `Invalid -> ()

let prop_roundtrip =
  let open QCheck in
  let reg = Gen.map Reg.of_index (Gen.int_range 0 15) in
  let low_reg = Gen.map Reg.of_index (Gen.int_range 0 7) in
  let imm8 = Gen.int_range (-128) 127 in
  let imm32 = Gen.int_range 0 0xffff_ffff in
  let rel = Gen.int_range (-100000) 100000 in
  let gen : Insn.t Gen.t =
    Gen.oneof
      [
        Gen.map (fun r -> Insn.Push r) reg;
        Gen.map (fun r -> Insn.Pop r) reg;
        Gen.map2 (fun r v -> Insn.Mov_ri (r, v)) reg (Gen.int_range 0 0x3fff_ffff_ffff);
        Gen.map2 (fun r v -> Insn.Mov_ri32 (r, v)) low_reg imm32;
        Gen.map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg;
        Gen.map2 (fun a b -> Insn.Add_rr (a, b)) reg reg;
        Gen.map2 (fun a b -> Insn.Cmp_rr (a, b)) reg reg;
        Gen.map2 (fun r v -> Insn.Add_ri (r, v)) reg imm8;
        Gen.map2 (fun r v -> Insn.Sub_ri (r, v)) reg imm8;
        Gen.map3 (fun a b d -> Insn.Load (a, b, d)) reg reg rel;
        Gen.map3 (fun a d b -> Insn.Store (a, d, b)) reg rel reg;
        Gen.map3 (fun a b d -> Insn.Load8 (a, b, d)) reg reg rel;
        Gen.map3 (fun a b d -> Insn.Lea (a, b, d)) reg reg rel;
        Gen.map (fun d -> Insn.Jmp_rel d) rel;
        Gen.map (fun d -> Insn.Call_rel d) rel;
        Gen.map (fun r -> Insn.Jmp_reg r) reg;
        Gen.map (fun r -> Insn.Call_reg r) reg;
        Gen.map (fun n -> Insn.Vcall n) (Gen.int_range 0 1000);
      ]
  in
  Test.make ~name:"encode/decode roundtrip" ~count:2000
    (make ~print:Insn.to_string gen)
    (fun insn ->
      let b = Encode.to_bytes insn in
      match Decode.decode_bytes b 0 with
      | Ok (i, len) -> i = insn && len = Bytes.length b
      | Error `Invalid -> false)

(* assembling N instructions then sweeping from offset 0 re-finds every
   boundary (sweep is exact when there is no embedded data) *)
let prop_sweep_clean =
  let open QCheck in
  let gen_clean =
    Gen.list_size (Gen.int_range 1 50)
      (Gen.oneofl
         [
           Insn.Nop;
           Insn.Ret;
           Insn.Syscall;
           Insn.Mov_rr (RAX, RBX);
           Insn.Add_ri (RSP, 8);
           Insn.Push RBP;
           Insn.Pop RBP;
         ])
  in
  Test.make ~name:"linear sweep is exact on data-free code" ~count:500 (make gen_clean)
    (fun insns ->
      let b = Encode.assemble insns in
      let items = Disasm.sweep b ~base:0 in
      List.length items = List.length insns
      && List.for_all2 (fun it i -> it.Disasm.insn = Some i) items insns)

(* encode→decode round-trip over the *fuzzer generator's* instruction
   distribution (hazard immediates, boundary displacements, full-width
   Mov_ri), each insn additionally decoded from a placement that
   straddles a 4096-byte page boundary — the straddle shape's decode
   path, minus the MMU *)
let prop_fuzz_gen_roundtrip =
  let open QCheck in
  let page = 4096 in
  let gen_case =
    Gen.map2
      (fun seed overhang -> (seed, overhang))
      (Gen.int_range 0 1_000_000) (Gen.int_range 1 9)
  in
  let print_case (seed, overhang) =
    let insn = K23_fuzz.Gen.random_insn (K23_util.Rng.create ~seed) in
    Printf.sprintf "seed=%d overhang=%d insn=%s" seed overhang (Insn.to_string insn)
  in
  Test.make ~name:"fuzz-gen distribution roundtrips (incl. page straddle)" ~count:2000
    (make ~print:print_case gen_case)
    (fun (seed, overhang) ->
      let insn = K23_fuzz.Gen.random_insn (K23_util.Rng.create ~seed) in
      let b = Encode.to_bytes insn in
      let flat =
        match Decode.decode_bytes b 0 with
        | Ok (i, len) -> i = insn && len = Bytes.length b
        | Error `Invalid -> false
      in
      (* place the insn so its first byte sits [overhang'] bytes before
         a page boundary: bytes split across the 4096 line *)
      let overhang' = min overhang (Bytes.length b) in
      let pos = page - overhang' in
      let buf = Bytes.make (page + Bytes.length b) '\x90' in
      Bytes.blit b 0 buf pos (Bytes.length b);
      let straddled =
        match Decode.decode_bytes buf pos with
        | Ok (i, len) -> i = insn && len = Bytes.length b
        | Error `Invalid -> false
      in
      flat && straddled)

let tests =
  ( "isa",
    List.map
      (fun i -> Alcotest.test_case ("roundtrip " ^ Insn.to_string i) `Quick (check_roundtrip i))
      some_insns
    @ [
        Alcotest.test_case "syscall opcode bytes" `Quick test_syscall_bytes;
        Alcotest.test_case "rewrite size match" `Quick test_rewrite_size_match;
        Alcotest.test_case "sweep finds sites" `Quick test_sweep_finds_sites;
        Alcotest.test_case "sweep misidentifies data (P3a)" `Quick test_sweep_misidentifies_data;
        Alcotest.test_case "sweep overlooks embedded (P2a)" `Quick test_sweep_overlooks_embedded;
        Alcotest.test_case "desync decode" `Quick test_desync;
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_sweep_clean;
        QCheck_alcotest.to_alcotest prop_fuzz_gen_roundtrip;
      ] )
