(* Kernel-layer tests: VFS, network queues, syscalls, scheduler,
   tracer plumbing, SUD semantics. *)

open K23_kernel
open K23_userland
open K23_isa

(* ---------------- vfs ---------------- *)

let test_vfs_files () =
  let v = Vfs.create () in
  (match Vfs.write_file v "/a/b/c.txt" "hello" with Ok _ -> () | Error _ -> Alcotest.fail "write");
  Alcotest.(check bool) "exists" true (Vfs.exists v "/a/b/c.txt");
  (match Vfs.read_file v "/a/b/c.txt" with
  | Ok s -> Alcotest.(check string) "content" "hello" s
  | Error _ -> Alcotest.fail "read");
  (match Vfs.rename v "/a/b/c.txt" "/a/d.txt" with Ok () -> () | Error _ -> Alcotest.fail "rename");
  Alcotest.(check bool) "old gone" false (Vfs.exists v "/a/b/c.txt");
  (match Vfs.unlink v "/a/d.txt" with Ok () -> () | Error _ -> Alcotest.fail "unlink");
  Alcotest.(check bool) "unlinked" false (Vfs.exists v "/a/d.txt")

let test_vfs_immutable () =
  let v = Vfs.create () in
  ignore (Vfs.write_file v "/logs/app.log" "data");
  (match Vfs.set_immutable v "/logs" true with Ok () -> () | Error _ -> Alcotest.fail "seal");
  (match Vfs.write_file v "/logs/app.log" "evil" with
  | Error `Perm -> ()
  | _ -> Alcotest.fail "write through immutable dir must fail");
  (match Vfs.unlink v "/logs/app.log" with
  | Error `Perm -> ()
  | _ -> Alcotest.fail "unlink through immutable dir must fail");
  (match Vfs.rename v "/logs/app.log" "/tmp/x" with
  | Error `Perm -> ()
  | _ -> Alcotest.fail "rename out of immutable dir must fail")

let test_vfs_listdir () =
  let v = Vfs.create () in
  ignore (Vfs.write_file v "/d/a" "1");
  ignore (Vfs.write_file v "/d/b" "2");
  match Vfs.listdir v "/d" with
  | Ok l -> Alcotest.(check (list string)) "entries" [ "a"; "b" ] l
  | Error _ -> Alcotest.fail "listdir"

(* ---------------- net ---------------- *)

let test_byteq_framing () =
  let q = Net.Byteq.create () in
  Net.Byteq.push q (Bytes.make 64 'a');
  Net.Byteq.push q (Bytes.make 64 'b');
  let first = Net.Byteq.pop q 64 in
  Alcotest.(check int) "frame size" 64 (Bytes.length first);
  Alcotest.(check char) "first frame" 'a' (Bytes.get first 0);
  let second = Net.Byteq.pop q 200 in
  Alcotest.(check int) "drains rest" 64 (Bytes.length second);
  Alcotest.(check char) "second frame" 'b' (Bytes.get second 0)

let test_byteq_partial_pop () =
  let q = Net.Byteq.create () in
  Net.Byteq.push q (Bytes.of_string "abcdef");
  Alcotest.(check string) "first 3" "abc" (Bytes.to_string (Net.Byteq.pop q 3));
  Alcotest.(check string) "rest" "def" (Bytes.to_string (Net.Byteq.pop q 100));
  Alcotest.(check int) "empty" 0 (Net.Byteq.length q)

let prop_byteq =
  QCheck.Test.make ~name:"byteq preserves byte order" ~count:300
    QCheck.(list (string_of_size (QCheck.Gen.int_range 0 20)))
    (fun chunks ->
      let q = Net.Byteq.create () in
      List.iter (fun c -> Net.Byteq.push q (Bytes.of_string c)) chunks;
      let out = Buffer.create 64 in
      let rec drain () =
        let b = Net.Byteq.pop q 7 in
        if Bytes.length b > 0 then begin
          Buffer.add_bytes out b;
          drain ()
        end
      in
      drain ();
      Buffer.contents out = String.concat "" chunks)

let test_listener_backlog () =
  let n = Net.create () in
  (match Net.listen n 80 with Ok _ -> () | Error _ -> Alcotest.fail "listen");
  (match Net.listen n 80 with Error `Addrinuse -> () | _ -> Alcotest.fail "EADDRINUSE");
  (match Net.connect n 81 with Error `Refused -> () | _ -> Alcotest.fail "refused");
  match Net.connect n 80 with
  | Error `Refused -> Alcotest.fail "connect"
  | Ok c ->
    let l = Hashtbl.find n.listeners 80 in
    (match Net.accept l with
    | Some c' -> Alcotest.(check int) "same conn" c.conn_id c'.conn_id
    | None -> Alcotest.fail "accept");
    Alcotest.(check bool) "backlog drained" true (Net.accept l = None)

(* the two-list backlog against a Queue.t model: random interleavings
   of connect/accept must agree on order, depth, and contents *)
let prop_backlog_fifo =
  QCheck.Test.make ~name:"listener backlog is FIFO (Queue model)" ~count:300
    QCheck.(list bool)
    (fun ops ->
      let n = Net.create () in
      (match Net.listen n 7 with Ok _ -> () | Error _ -> assert false);
      let l = Hashtbl.find n.listeners 7 in
      let model : int Queue.t = Queue.create () in
      List.for_all
        (fun is_connect ->
          if is_connect then (
            match Net.connect n 7 with
            | Ok c ->
              Queue.add c.Net.conn_id model;
              Net.backlog_length l = Queue.length model
            | Error `Refused -> false)
          else
            match (Net.accept l, Queue.take_opt model) with
            | None, None -> true
            | Some c, Some id ->
              c.Net.conn_id = id && Net.backlog_length l = Queue.length model
            | _ -> false)
        ops)

(* ---------------- syscalls via boot ---------------- *)

let run_app items =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/t" items);
  let p = Sim.run_to_exit w ~path:"/bin/t" () in
  (w, p)

let test_pipe_syscall () =
  (* pipe, write into it, read back, exit with the byte read *)
  let items =
    [
      Asm.Label "main";
      Asm.Mov_sym (RDI, "fds");
      Asm.Call_sym "pipe";
      Asm.Mov_sym (R9, "fds");
      Asm.I (Insn.Load (R14, R9, 0));  (* read fd *)
      Asm.I (Insn.Load (R13, R9, 8));  (* write fd *)
      Asm.I (Insn.Mov_rr (RDI, R13));
      Asm.Mov_sym (RSI, "payload");
      Asm.I (Insn.Mov_ri (RDX, 1));
      Asm.Call_sym "write";
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "buf");
      Asm.I (Insn.Mov_ri (RDX, 1));
      Asm.Call_sym "read";
      Asm.Mov_sym (R9, "buf");
      Asm.I (Insn.Load8 (RDI, R9, 0));
      Asm.Call_sym "exit";
      Asm.Section `Data;
      Asm.Label "fds";
      Asm.Zeros 16;
      Asm.Label "payload";
      Asm.Strz "*";
      Asm.Label "buf";
      Asm.Zeros 8;
    ]
  in
  let _, p = run_app items in
  Alcotest.(check (option int)) "read byte back" (Some (Char.code '*')) p.exit_status

let test_brk_and_heap () =
  (* malloc via libc host allocator, store + load through the pointer *)
  let items =
    [
      Asm.Label "main";
      Asm.I (Insn.Mov_ri (RDI, 64));
      Asm.Call_sym "malloc";
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.I (Insn.Mov_ri (RAX, 123));
      Asm.I (Insn.Store (R14, 0, RAX));
      Asm.I (Insn.Load (RDI, R14, 0));
      Asm.Call_sym "exit";
    ]
  in
  let _, p = run_app items in
  Alcotest.(check (option int)) "heap roundtrip" (Some 123) p.exit_status

let test_proc_maps_readable () =
  (* the app reads its own /proc/self/maps — the interface libLogger
     uses *)
  let items =
    [
      Asm.Label "main";
      Asm.I (Insn.Mov_ri (RDI, -100));
      Asm.Mov_sym (RSI, "mapsp");
      Asm.I (Insn.Mov_ri (RDX, 0));
      Asm.Call_sym "openat";
      Asm.I (Insn.Mov_rr (R14, RAX));
      Asm.I (Insn.Mov_rr (RDI, R14));
      Asm.Mov_sym (RSI, "buf");
      Asm.I (Insn.Mov_ri (RDX, 3000));
      Asm.Call_sym "read";
      Asm.I (Insn.Mov_rr (RDI, RAX));  (* exit status = bytes read > 0 *)
      Asm.I (Insn.Cmp_ri (RDI, 0));
      Asm.Jc (Insn.GT, "ok");
      Asm.I (Insn.Mov_ri (RDI, 1));
      Asm.Call_sym "exit";
      Asm.Label "ok";
      Asm.I (Insn.Xor_rr (RDI, RDI));
      Asm.Call_sym "exit";
      Asm.Section `Data;
      Asm.Label "mapsp";
      Asm.Strz "/proc/self/maps";
      Asm.Label "buf";
      Asm.Zeros 4096;
    ]
  in
  let _, p = run_app items in
  Alcotest.(check (option int)) "read maps" (Some 0) p.exit_status

(* ---------------- SUD semantics ---------------- *)

let test_sud_selector_and_allowlist () =
  let w = Sim.create_world () in
  ignore (Sim.register_app w ~path:"/bin/t" [ Asm.Label "main"; Asm.I (Insn.Xor_rr (RDI, RDI)); Asm.Call_sym "exit" ]);
  let p = Sim.run_to_exit w ~path:"/bin/t" () in
  let th = List.hd p.threads in
  (* craft SUD state manually against the dead process image *)
  K23_machine.Memory.map p.mem ~addr:0x6000_0000 ~len:4096 ~perm:K23_machine.Memory.perm_rw;
  th.sud <- Some { sel_addr = 0x6000_0000; allow_lo = 0x7000; allow_hi = 0x8000 };
  K23_machine.Memory.write_u8_raw p.mem (Kern.selector_slot th 0x6000_0000) 1;
  Alcotest.(check bool) "blocks outside allowlist" true (Kern.sud_blocks th ~site:0x1000);
  Alcotest.(check bool) "bypasses inside allowlist" false (Kern.sud_blocks th ~site:0x7800);
  K23_machine.Memory.write_u8_raw p.mem (Kern.selector_slot th 0x6000_0000) 0;
  Alcotest.(check bool) "selector ALLOW passes" false (Kern.sud_blocks th ~site:0x1000)

(* ---------------- stats helpers ---------------- *)

let test_stats_drop_outliers () =
  let open K23_util.Stats in
  Alcotest.(check (list (float 0.001))) "drops min and max" [ 2.0; 3.0 ]
    (drop_outliers [ 3.0; 1.0; 2.0; 9.0 ]);
  Alcotest.(check (float 0.0001)) "geomean" 2.0 (geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 0.0001)) "mean" 2.0 (mean [ 1.0; 2.0; 3.0 ])

let tests =
  ( "kernel",
    [
      Alcotest.test_case "vfs files" `Quick test_vfs_files;
      Alcotest.test_case "vfs immutable (log sealing)" `Quick test_vfs_immutable;
      Alcotest.test_case "vfs listdir" `Quick test_vfs_listdir;
      Alcotest.test_case "byteq framing" `Quick test_byteq_framing;
      Alcotest.test_case "byteq partial pop" `Quick test_byteq_partial_pop;
      QCheck_alcotest.to_alcotest prop_byteq;
      Alcotest.test_case "listener backlog" `Quick test_listener_backlog;
      QCheck_alcotest.to_alcotest prop_backlog_fifo;
      Alcotest.test_case "pipe syscalls" `Quick test_pipe_syscall;
      Alcotest.test_case "heap allocation" `Quick test_brk_and_heap;
      Alcotest.test_case "/proc/self/maps" `Quick test_proc_maps_readable;
      Alcotest.test_case "SUD selector + allowlist" `Quick test_sud_selector_and_allowlist;
      Alcotest.test_case "stats helpers" `Quick test_stats_drop_outliers;
    ] )
