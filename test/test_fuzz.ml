(* Differential conformance fuzzer: generator determinism, the
   zero-divergence smoke invariant, corpus round-trips, and replay of
   checked-in minimized repros. *)

module F = K23_fuzz
module Gen = K23_fuzz.Gen
module Oracle = K23_fuzz.Oracle
module Shrink = K23_fuzz.Shrink
module Corpus = K23_fuzz.Corpus
module Campaign = K23_fuzz.Campaign
module Mech = K23_eval.Mech
module Rng = K23_util.Rng

(* the smoke invariant the CI fuzz pass scales up: the conformance-safe
   shape mix must produce identical observable behaviour natively and
   under every mechanism *)
let test_smoke_no_divergence () =
  let config = { Campaign.default_config with c_seed = 23; c_iters = 12 } in
  let r = Campaign.run config in
  Alcotest.(check int) "programs" 12 r.Campaign.r_programs;
  List.iter
    (fun (m, n) ->
      Alcotest.(check int) (Printf.sprintf "%s divergences" (Mech.to_string m)) 0 n)
    r.Campaign.r_divergent

(* same seed -> byte-identical JSON report (the report carries no
   timing, and every program and world draw is seed-derived) *)
let test_report_deterministic () =
  let config = { Campaign.default_config with c_seed = 41; c_iters = 8 } in
  let j1 = Campaign.render_json (Campaign.run config) in
  let j2 = Campaign.render_json (Campaign.run config) in
  Alcotest.(check string) "byte-identical JSON" j1 j2

(* different seeds -> different programs (the seed actually matters) *)
let test_seed_varies_programs () =
  let p1 = Gen.generate (Rng.create ~seed:1) in
  let p2 = Gen.generate (Rng.create ~seed:2) in
  let p1' = Gen.generate (Rng.create ~seed:1) in
  Alcotest.(check bool) "same seed, same program" true (p1.Gen.items = p1'.Gen.items);
  Alcotest.(check bool) "different seed, different program" true (p1.Gen.items <> p2.Gen.items)

(* the generator's programs always terminate within the oracle budget
   natively (no runaway loops / missing epilogues) *)
let test_programs_terminate () =
  for seed = 100 to 109 do
    let prog = Gen.generate (Rng.create ~seed) in
    match Oracle.run ~mech:Mech.Native prog.Gen.items with
    | Oracle.Launch_failed e -> Alcotest.failf "seed %d: launch failed (%d)" seed e
    | Oracle.Ok_run pr ->
      List.iter
        (fun (cpid, fate) ->
          match fate with
          | Oracle.Running -> Alcotest.failf "seed %d: pid %d still running" seed cpid
          | _ -> ())
        pr.Oracle.fates
  done

(* a disabled mitigation must be caught: zpoline without the NULL check
   misdirects call *rax(0) down its page-0 trampoline, where natively
   the jump is a fatal fault (P4a) *)
let null_call_items =
  Gen.X86
    [
      K23_isa.Asm.Label "main";
      K23_isa.Asm.I (K23_isa.Insn.Xor_rr (RAX, RAX));
      K23_isa.Asm.I (K23_isa.Insn.Call_reg RAX);
    ]

let test_mitigation_off_detected () =
  match Oracle.diverges ~mech:Mech.Zpoline_default null_call_items with
  | None -> Alcotest.fail "zpoline-default NULL call not detected as divergent"
  | Some d ->
    Alcotest.(check string) "mech" "zpoline-default" d.Oracle.d_mech;
    (* the hardened variant detects the NULL execution and kills the
       process — a loud crash (SIGABRT vs native's SIGSEGV), never the
       default variant's silent misdirected read *)
    (match Oracle.diverges ~mech:Mech.Zpoline_ultra null_call_items with
    | None -> ()
    | Some d ->
      let killed s =
        match String.index_opt s 'k' with
        | Some i -> String.length s - i >= 6 && String.sub s i 6 = "killed"
        | None -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "ultra variant still dies, loudly (%s)" (Oracle.render_divergence d))
        true
        (killed d.Oracle.d_mech_val))

(* the shrinker reduces a divergent program to a tiny repro that still
   diverges *)
let test_shrink_minimizes () =
  let rng = Rng.create ~seed:23000071 in
  let prog = Gen.generate ~shapes:[ Gen.Null_call; Gen.Raw ] rng in
  match Shrink.minimize ~mech:Mech.Zpoline_default prog.Gen.items with
  | None -> Alcotest.fail "seeded null-call program did not diverge"
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "minimal repro is <= 16 insns (got %d)" (Gen.insn_count r.Shrink.items))
      true
      (Gen.insn_count r.Shrink.items <= 16);
    (match Oracle.diverges ~mech:Mech.Zpoline_default r.Shrink.items with
    | Some _ -> ()
    | None -> Alcotest.fail "minimized repro no longer diverges")

(* corpus serialisation round-trips exactly *)
let test_corpus_roundtrip () =
  let rng = Rng.create ~seed:7 in
  let prog = Gen.generate ~shapes:Gen.all_shapes rng in
  let e =
    {
      Corpus.e_mech = Mech.Zpoline_default;
      e_seed = 7;
      e_expect = "pid 0 record 1: native=a mech=b";
      e_faults = Some (K23_faults.Faults.chaos ~fseed:41 ());
      e_items = prog.Gen.items;
    }
  in
  let e' = Corpus.of_string (Corpus.to_string e) in
  Alcotest.(check bool) "items round-trip" true (e.Corpus.e_items = e'.Corpus.e_items);
  Alcotest.(check string) "expect round-trips" e.Corpus.e_expect e'.Corpus.e_expect;
  Alcotest.(check int) "seed round-trips" e.Corpus.e_seed e'.Corpus.e_seed;
  Alcotest.(check string) "mech round-trips"
    (Mech.to_string e.Corpus.e_mech)
    (Mech.to_string e'.Corpus.e_mech);
  Alcotest.(check bool) "fault plan round-trips" true (e.Corpus.e_faults = e'.Corpus.e_faults)

(* the ARM smoke invariant: the same conformance-safe mix, generated
   by the AArch64 backend, conforms under the ARM mechanism column *)
let arm_world_cfg =
  { Oracle.default_world_cfg with K23_kernel.World.Config.isa = K23_isa.Isa.Arm64 }

let test_arm_smoke_no_divergence () =
  let config =
    {
      Campaign.default_config with
      c_seed = 23;
      c_iters = 8;
      c_mechs = Oracle.default_mechs_for K23_isa.Isa.Arm64;
      c_world = arm_world_cfg;
    }
  in
  let r = Campaign.run config in
  Alcotest.(check int) "programs" 8 r.Campaign.r_programs;
  List.iter
    (fun (m, n) ->
      Alcotest.(check int) (Printf.sprintf "%s divergences" (Mech.to_string m)) 0 n)
    r.Campaign.r_divergent

(* the svc-alias shape is the designed ARM divergence: a campaign over
   it catches ASC-Hook patching the program's literal pool (P3a) *)
let test_arm_svc_alias_detected () =
  let config =
    {
      Campaign.default_config with
      c_seed = 23;
      c_iters = 6;
      c_mechs = [ Mech.Asc_hook ];
      c_shapes = [ Gen.Svc_alias; Gen.Raw ];
      c_world = arm_world_cfg;
    }
  in
  let r = Campaign.run config in
  Alcotest.(check bool) "asc-hook diverges on svc-alias" true
    (Campaign.total_divergences r > 0)

(* ARM corpus entries round-trip, and the [isa:] header key is emitted
   exactly for them — x86 entries keep their pre-ISA bytes *)
let test_arm_corpus_roundtrip () =
  let rng = Rng.create ~seed:11 in
  let prog = Gen.generate ~shapes:(Gen.all_shapes_for K23_isa.Isa.Arm64) ~isa:K23_isa.Isa.Arm64 rng in
  Alcotest.(check bool) "generator tags arm" true
    (Gen.items_isa prog.Gen.items = K23_isa.Isa.Arm64);
  let e =
    {
      Corpus.e_mech = Mech.Asc_hook;
      e_seed = 11;
      e_expect = "pid 0 record 1: native=a mech=b";
      e_faults = None;
      e_items = prog.Gen.items;
    }
  in
  let text = Corpus.to_string e in
  let contains ~needle s =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "isa header present" true (contains ~needle:"isa: arm64" text);
  let e' = Corpus.of_string text in
  Alcotest.(check bool) "arm items round-trip" true (e.Corpus.e_items = e'.Corpus.e_items);
  (* x86 entries must not grow an isa header (byte compatibility) *)
  let x86 = Gen.generate (Rng.create ~seed:11) in
  let ex = { e with Corpus.e_items = x86.Gen.items } in
  Alcotest.(check bool) "no isa header on x86" false
    (contains ~needle:"isa:" (Corpus.to_string ex))

(* every checked-in repro still reproduces its divergence, and stays
   within the minimality budget *)
let test_corpus_replay () =
  let entries = Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: <= 16 insns" name)
        true
        (Gen.insn_count e.Corpus.e_items <= 16);
      let cfg =
        let base =
          {
            Oracle.default_world_cfg with
            K23_kernel.World.Config.isa = Gen.items_isa e.Corpus.e_items
          }
        in
        Some
          (match e.Corpus.e_faults with
          | Some p -> { base with K23_kernel.World.Config.faults = p }
          | None -> base)
      in
      match Oracle.diverges ?cfg ~mech:e.Corpus.e_mech e.Corpus.e_items with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: divergence no longer reproduces" name)
    entries

let tests =
  ( "fuzz",
    [
      Alcotest.test_case "smoke: no divergence (safe shapes)" `Quick test_smoke_no_divergence;
      Alcotest.test_case "report JSON deterministic" `Quick test_report_deterministic;
      Alcotest.test_case "seed determines program" `Quick test_seed_varies_programs;
      Alcotest.test_case "generated programs terminate" `Quick test_programs_terminate;
      Alcotest.test_case "mitigation-off detected (P4a)" `Quick test_mitigation_off_detected;
      Alcotest.test_case "shrinker minimizes repro" `Quick test_shrink_minimizes;
      Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
      Alcotest.test_case "arm smoke: no divergence (safe shapes)" `Quick
        test_arm_smoke_no_divergence;
      Alcotest.test_case "arm svc-alias detected (P3a)" `Quick test_arm_svc_alias_detected;
      Alcotest.test_case "arm corpus round-trip (isa header)" `Quick test_arm_corpus_roundtrip;
      Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    ] )
