(* Workload applications: coreutils behave like their namesakes, the
   servers serve, the clients measure. *)

open K23_kernel
open K23_userland
module Apps = K23_apps

let boot_coreutil ?argv name =
  let w = Sim.create_world () in
  Apps.Coreutils.register_all w;
  let p = Sim.run_to_exit w ~path:(Apps.Coreutils.path name) ?argv () in
  (w, p)

let test_pwd () =
  let _, p = boot_coreutil "pwd" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status

let test_touch_creates () =
  let w, p = boot_coreutil "touch" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check bool) "file created" true (Vfs.exists w.vfs "/tmp/touched")

let test_ls_lists_root () =
  let _, p = boot_coreutil "ls" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  let out = World.stdout_of p in
  Alcotest.(check bool) "mentions /etc" true
    (String.split_on_char '\000' out |> List.exists (( = ) "etc"))

let test_cat_prints_file () =
  let _, p = boot_coreutil "cat" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check string) "prints /etc/hostname" "sim\n" (World.stdout_of p)

let test_clear_outputs_escape () =
  let _, p = boot_coreutil "clear" in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  Alcotest.(check string) "ANSI clear" "\x1b[H\x1b[2J" (World.stdout_of p)

(* a server spec end-to-end, natively: all requests complete *)
let drive spec =
  let w = Sim.create_world ~quantum:8 () in
  let path, port = K23_eval.Macro.register_workload w spec in
  (match World.spawn w ~path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.sync_cores w;
  let client = Option.get (K23_eval.Macro.client_for spec ~rounds:4) in
  let results = Apps.Wrk.register w client in
  (match World.spawn w ~path:client.Apps.Wrk.path () with
  | Error e -> Alcotest.failf "client spawn: %d" e
  | Ok cp -> Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  K23_eval.Macro.kill_everything w;
  (client, results)

let expect_all_requests spec () =
  let client, results = drive spec in
  let expected = client.Apps.Wrk.threads * client.conns * client.depth * client.rounds in
  Alcotest.(check int) "all requests answered" expected results.Apps.Wrk.completed;
  Alcotest.(check int) "no errors" 0 results.errors

(* --- wrk fd discipline and framing ---------------------------------- *)

(* Start the client with no server listening: every connect is refused.
   The client must close the refused socket before retrying — before
   the fix it leaked one fd per attempt, so a slow-starting server made
   the client's fd table grow without bound. *)
let test_connect_retry_no_fd_leak () =
  let w = Sim.create_world ~quantum:8 () in
  let spec = K23_eval.Macro.nginx ~workers:1 ~kb:0 in
  let path, port = K23_eval.Macro.register_workload w spec in
  let client = Option.get (K23_eval.Macro.client_for spec ~rounds:2) in
  let results = Apps.Wrk.register w client in
  let cp =
    match World.spawn w ~path:client.Apps.Wrk.path () with
    | Error e -> Alcotest.failf "client spawn: %d" e
    | Ok p -> p
  in
  Kern.run ~max_steps:5_000_000 ~until:(fun () -> results.Apps.Wrk.errors >= 25) w;
  Alcotest.(check bool) "connect retries happened" true (results.errors >= 25);
  let fds = Hashtbl.length cp.Kern.fds in
  Alcotest.(check bool)
    (Printf.sprintf "fd table bounded during retries (%d fds after %d refusals)" fds
       results.errors)
    true (fds <= 4);
  (* bring the server up: the same client must then complete every request *)
  (match World.spawn w ~path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w;
  K23_eval.Macro.kill_everything w;
  let expected = client.Apps.Wrk.threads * client.conns * client.depth * client.rounds in
  Alcotest.(check int) "all requests answered after recovery" expected results.completed

(* A deliberately dribbling server: its 64-byte response arrives in four
   16-byte chunks with a nanosleep between each, so the client's reads
   come up short.  The framed receive loop must count one completed
   request per full response — the pre-fix code counted one per read,
   so it would report 4x the real completions here and desynchronize. *)
let dribble_port = 9099
let dribble_path = "/usr/sbin/dribbled"

let register_dribble_server w =
  let open K23_isa in
  let chunk = 16 in
  ignore
    (Sim.register_app w ~path:dribble_path
       [
         Asm.Label "main";
         Asm.I (Insn.Mov_ri (RDI, 2));
         Asm.I (Insn.Mov_ri (RSI, 1));
         Asm.I (Insn.Mov_ri (RDX, 0));
         Asm.Call_sym "socket";
         Asm.I (Insn.Mov_rr (RBX, RAX));
         Asm.I (Insn.Mov_rr (RDI, RBX));
         Asm.I (Insn.Mov_ri (RSI, dribble_port));
         Asm.Call_sym "bind";
         Asm.I (Insn.Mov_rr (RDI, RBX));
         Asm.I (Insn.Mov_ri (RSI, 16));
         Asm.Call_sym "listen";
         Asm.Label "accept_loop";
         Asm.I (Insn.Mov_rr (RDI, RBX));
         Asm.Call_sym "accept";
         Asm.I (Insn.Mov_rr (R14, RAX));
         Asm.Label "conn_loop";
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "dbuf");
         Asm.I (Insn.Mov_ri (RDX, 64));
         Asm.Call_sym "read";
         Asm.I (Insn.Cmp_ri (RAX, 0));
         Asm.Jc (Insn.LE, "close_conn");
         Asm.I (Insn.Mov_ri (R15, 4));
         Asm.Label "chunk_loop";
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Mov_sym (RSI, "dresp");
         Asm.I (Insn.Mov_ri (RDX, chunk));
         Asm.Call_sym "write";
         (* stall before the next chunk so the client sees a short read;
            rem pointer explicitly NULL, as the kernel requires *)
         Asm.I (Insn.Mov_ri (RDI, 5_000));
         Asm.I (Insn.Mov_ri (RSI, 0));
         Asm.Call_sym "nanosleep";
         Asm.I (Insn.Sub_ri (R15, 1));
         Asm.I (Insn.Cmp_ri (R15, 0));
         Asm.Jc (Insn.NZ, "chunk_loop");
         Asm.J "conn_loop";
         Asm.Label "close_conn";
         Asm.I (Insn.Mov_rr (RDI, R14));
         Asm.Call_sym "close";
         Asm.J "accept_loop";
         Asm.Section `Data;
         Asm.Label "dbuf";
         Asm.Zeros 128;
         Asm.Label "dresp";
         Asm.Blob (Bytes.make chunk 'D');
       ])

let test_dribbling_server_framing () =
  let w = Sim.create_world ~quantum:8 () in
  register_dribble_server w;
  (match World.spawn w ~path:dribble_path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w dribble_port;
  Kern.sync_cores w;
  let client =
    {
      Apps.Wrk.path = "/usr/bin/wrk";
      port = dribble_port;
      threads = 1;
      conns = 1;
      depth = 1;
      rounds = 4;
      req_cost = 300;
      resp_len = 64;
      arrival = Apps.Wrk.Closed;
      retries = 0;
    }
  in
  let results = Apps.Wrk.register w client in
  (match World.spawn w ~path:client.Apps.Wrk.path () with
  | Error e -> Alcotest.failf "client spawn: %d" e
  | Ok cp -> Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  K23_eval.Macro.kill_everything w;
  Alcotest.(check int) "one completion per full response" 4 results.Apps.Wrk.completed;
  Alcotest.(check int) "no errors" 0 results.errors

(* rounds = 0 means "no requests": the client must close its connection
   and exit cleanly instead of pushing a request through the pipeline *)
let test_rounds_zero_clean_exit () =
  let w = Sim.create_world ~quantum:8 () in
  let spec = K23_eval.Macro.nginx ~workers:1 ~kb:0 in
  let path, port = K23_eval.Macro.register_workload w spec in
  (match World.spawn w ~path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.sync_cores w;
  let client = Option.get (K23_eval.Macro.client_for spec ~rounds:0) in
  let results = Apps.Wrk.register w client in
  let cp =
    match World.spawn w ~path:client.Apps.Wrk.path () with
    | Error e -> Alcotest.failf "client spawn: %d" e
    | Ok p -> p
  in
  Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w;
  K23_eval.Macro.kill_everything w;
  Alcotest.(check (option int)) "clean exit" (Some 0) cp.Kern.exit_status;
  Alcotest.(check int) "no requests sent" 0 results.Apps.Wrk.completed;
  Alcotest.(check int) "no errors" 0 results.errors

let test_sqlite_runs () =
  let w = Sim.create_world () in
  Apps.Sqlite_like.register w (Apps.Sqlite_like.default ~ops:50 ());
  let p = Sim.run_to_exit w ~path:"/usr/bin/sqlite3" () in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.exit_status;
  (* 50 WAL frames of 128 bytes appended *)
  match Vfs.read_file w.vfs Apps.Sqlite_like.wal_path with
  | Ok s -> Alcotest.(check int) "wal size" (50 * 128) (String.length s)
  | Error _ -> Alcotest.fail "wal missing"

(* the redis serial section caps aggregate throughput *)
let test_redis_serial_scaling () =
  let tput io_threads =
    K23_eval.Macro.run_spec (K23_eval.Macro.redis ~io_threads) K23_eval.Mech.Native ~seed:7
  in
  let one = tput 1 and six = tput 6 in
  Alcotest.(check bool)
    (Printf.sprintf "6 threads faster than 1 (%f vs %f)" six one)
    true (six > one *. 1.2);
  Alcotest.(check bool)
    (Printf.sprintf "but sublinear (%f < 4x %f)" six one)
    true
    (six < one *. 4.0)

let tests =
  ( "apps",
    [
      Alcotest.test_case "pwd" `Quick test_pwd;
      Alcotest.test_case "touch creates file" `Quick test_touch_creates;
      Alcotest.test_case "ls lists cwd" `Quick test_ls_lists_root;
      Alcotest.test_case "cat prints file" `Quick test_cat_prints_file;
      Alcotest.test_case "clear emits escape" `Quick test_clear_outputs_escape;
      Alcotest.test_case "nginx serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.nginx ~workers:1 ~kb:0));
      Alcotest.test_case "nginx 4KB + multiworker" `Quick
        (expect_all_requests (K23_eval.Macro.nginx ~workers:4 ~kb:4));
      Alcotest.test_case "lighttpd serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.lighttpd ~workers:1 ~kb:0));
      Alcotest.test_case "redis serves all requests" `Quick
        (expect_all_requests (K23_eval.Macro.redis ~io_threads:2));
      Alcotest.test_case "connect retries do not leak fds" `Quick test_connect_retry_no_fd_leak;
      Alcotest.test_case "framed reads against a dribbling server" `Quick
        test_dribbling_server_framing;
      Alcotest.test_case "rounds = 0 exits cleanly" `Quick test_rounds_zero_clean_exit;
      Alcotest.test_case "sqlite writes its WAL" `Quick test_sqlite_runs;
      Alcotest.test_case "redis serial-section scaling" `Quick test_redis_serial_scaling;
    ] )
