(* The fixed-length ISA study (paper Section 7): properties that hold
   on the AArch64-flavoured ISA but provably fail on the x86-64 one. *)

module Arm = K23_isa_arm.Arm
open K23_isa

let arm_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Arm.Ret;
      QCheck.Gen.return Arm.Nop;
      QCheck.Gen.map (fun i -> Arm.Svc (i land 0xffff)) QCheck.Gen.nat;
      QCheck.Gen.map (fun o -> Arm.Bl (o land 0xffff)) QCheck.Gen.nat;
      QCheck.Gen.map (fun o -> Arm.B (o land 0xffff)) QCheck.Gen.nat;
      QCheck.Gen.map2 (fun r i -> Arm.Movz (r land 31, i land 0xffff)) QCheck.Gen.nat QCheck.Gen.nat;
      QCheck.Gen.map2
        (fun r i -> Arm.Add_imm (r land 31, (r / 32) land 31, i land 0xfff))
        QCheck.Gen.nat QCheck.Gen.nat;
      QCheck.Gen.map2 (fun r o -> Arm.Ldr_lit (r land 31, o land 0xffff)) QCheck.Gen.nat QCheck.Gen.nat;
    ]

let test_roundtrip () =
  List.iter
    (fun i ->
      match Arm.decode (Arm.encode i) with
      | Some i' -> Alcotest.(check bool) "roundtrip" true (i = i')
      | None -> Alcotest.fail "did not decode")
    [ Arm.Svc 0; Arm.Bl 100; Arm.B (-3); Arm.Ret; Arm.Nop; Arm.Movz (3, 500); Arm.Add_imm (1, 2, 77); Arm.Ldr_lit (5, -9) ]

let prop_roundtrip =
  QCheck.Test.make ~name:"arm encode/decode roundtrip" ~count:1000 (QCheck.make arm_gen)
    (fun i -> Arm.decode (Arm.encode i) = Some i)

(* the full machine-target instruction set (grown for the backend):
   every constructor round-trips, mirroring x86's random_insn property *)
let arm_gen_full =
  let open QCheck.Gen in
  let reg = map (fun r -> r land 31) nat in
  let cond =
    oneofl [ Insn.Z; Insn.NZ; Insn.LT; Insn.GE; Insn.LE; Insn.GT ]
  in
  oneof
    [
      arm_gen;
      map (fun o -> Arm.B ((o land 0x7fff) - 0x4000)) nat;
      map (fun o -> Arm.Bl ((o land 0x7fff) - 0x4000)) nat;
      map2 (fun c o -> Arm.B_cond (c, (o land 0x7fff) - 0x4000)) cond nat;
      map (fun r -> Arm.Br r) reg;
      map (fun r -> Arm.Blr r) reg;
      map2 (fun r i -> Arm.Movk (r, i land 0xffff, (i lsr 16) land 3)) reg nat;
      map2 (fun r i -> Arm.Movn (r, i land 0xffff, (i lsr 16) land 3)) reg nat;
      map2 (fun rd rm -> Arm.Mov_rr (rd, rm)) reg reg;
      map3 (fun rd rn i -> Arm.Subs_imm (rd, rn, i land 0xfff)) reg reg nat;
      map3 (fun rd rn rm -> Arm.Add_rr (rd, rn, rm land 31)) reg reg nat;
      map3 (fun rd rn rm -> Arm.Sub_rr (rd, rn, rm land 31)) reg reg nat;
      map3 (fun rd rn rm -> Arm.Subs_rr (rd, rn, rm land 31)) reg reg nat;
      map3 (fun rt rn o -> Arm.Ldr (rt, rn, (o land 0xfff) * 8)) reg reg nat;
      map3 (fun rt rn o -> Arm.Str (rt, rn, (o land 0xfff) * 8)) reg reg nat;
      map3 (fun rt rn o -> Arm.Ldrb (rt, rn, o land 0xfff)) reg reg nat;
      map3 (fun rt rn o -> Arm.Strb (rt, rn, o land 0xfff)) reg reg nat;
      map (fun n -> Arm.Vcall (n land 0xffff)) nat;
      map (fun n -> Arm.Brk (n land 0xffff)) nat;
      map (fun o -> Arm.Ldr_lit (o land 31, ((o lsr 5) land 0x7fff) - 0x4000)) nat;
    ]

let prop_roundtrip_full =
  QCheck.Test.make ~name:"arm full insn set roundtrip" ~count:2000 (QCheck.make arm_gen_full)
    (fun i -> Arm.decode (Arm.encode i) = Some i)

(* sweeping arbitrary BYTE SOUP (not just code) never desynchronises:
   a fixed-width decoder visits exactly the aligned words, so every
   reported offset is 0 mod 4 and the site count is length/4 — the
   structural absence of P2a/P3b that the pitfall matrix claims *)
let prop_sweep_byte_soup =
  QCheck.Test.make ~name:"arm sweep never desynchronises on byte soup" ~count:500
    QCheck.(make Gen.(list_size (int_range 0 257) (int_range 0 255)))
    (fun bs ->
      let b = Bytes.init (List.length bs) (fun i -> Char.chr (List.nth bs i)) in
      let sw = Arm.sweep b ~base:0 in
      List.length sw = Bytes.length b / 4
      && List.for_all (fun (off, _) -> off land 3 = 0) sw
      && List.mapi (fun i (off, _) -> off = 4 * i) sw |> List.for_all Fun.id)

(* fixed length => sweep is exact on pure code, ALWAYS *)
let prop_sweep_exact =
  QCheck.Test.make ~name:"arm sweep is exact on any code" ~count:500
    QCheck.(make Gen.(list_size (int_range 1 60) arm_gen))
    (fun insns ->
      let code = Arm.assemble insns in
      let decoded = Arm.sweep code ~base:0 |> List.map snd in
      decoded = List.map (fun i -> Some i) insns)

(* THE contrast with x86-64: a syscall pattern inside another
   instruction's immediate is harmless on ARM (execution is aligned)
   but is a real executable gadget on x86-64 (pitfall P3b). *)
let test_embedded_svc_is_not_executable () =
  (* movz x1, #0xd401 — the immediate contains svc-looking bytes, but
     no aligned word decodes to svc *)
  let code = Arm.assemble [ Arm.Movz (1, 0xd401); Arm.Ret ] in
  Alcotest.(check (list int)) "no svc seen" [] (Arm.find_svc_sites code ~base:0);
  (* x86-64 contrast: bytes of a syscall inside a mov immediate ARE
     reachable by jumping into the instruction *)
  let x86 = Encode.assemble [ Mov_ri32 (RAX, 0x00c3050f) ] in
  match Decode.decode_bytes x86 1 with
  | Ok (Insn.Syscall, _) -> () (* misaligned execution reaches a syscall *)
  | _ -> Alcotest.fail "x86 embedded syscall should be executable at offset 1"

(* false negatives are impossible on ARM: every genuine svc in CODE is
   found by the sweep (compare x86's P2a, where a desynchronised sweep
   can swallow one) *)
let prop_no_overlook =
  QCheck.Test.make ~name:"arm sweep never overlooks an svc" ~count:500
    QCheck.(make Gen.(list_size (int_range 1 60) arm_gen))
    (fun insns ->
      let code = Arm.assemble insns in
      let expected =
        List.mapi (fun i insn -> (4 * i, insn)) insns
        |> List.filter_map (function addr, Arm.Svc _ -> Some addr | _ -> None)
      in
      Arm.find_svc_sites code ~base:0 = expected)

(* embedded DATA words can still alias the svc encoding: P3a-style
   false positives shrink but persist, so offline validation remains
   useful on ARM too *)
let test_data_word_can_alias_svc () =
  let data_word = Arm.bytes_of_word (Arm.encode (Arm.Svc 7)) in
  let code = Bytes.cat (Arm.assemble [ Arm.Ret ]) data_word in
  Alcotest.(check (list int)) "data word reported" [ 4 ] (Arm.find_svc_sites code ~base:0)

(* same-size rewriting: svc and bl are both 4 bytes; the rewrite is a
   single aligned store (no torn window — P5's non-atomicity vanishes) *)
let test_atomic_rewrite () =
  let code = Arm.assemble [ Arm.Movz (8, 64); Arm.Svc 0; Arm.Ret ] in
  Arm.rewrite_svc_to_bl code ~site_off:4 ~rel_words:1000;
  match Arm.decode (Arm.word_of_bytes code 4) with
  | Some (Arm.Bl 1000) -> ()
  | _ -> Alcotest.fail "rewrite must produce bl"

let tests =
  ( "arm (fixed-length ISA study)",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip_full;
      QCheck_alcotest.to_alcotest prop_sweep_byte_soup;
      QCheck_alcotest.to_alcotest prop_sweep_exact;
      Alcotest.test_case "embedded svc not executable (vs x86 P3b)" `Quick
        test_embedded_svc_is_not_executable;
      QCheck_alcotest.to_alcotest prop_no_overlook;
      Alcotest.test_case "data word can alias svc (P3a persists)" `Quick
        test_data_word_can_alias_svc;
      Alcotest.test_case "same-size atomic rewrite (no P5)" `Quick test_atomic_rewrite;
    ] )
