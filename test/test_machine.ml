(* Machine-layer tests: memory, PKU/XOM, I-cache, CPU semantics. *)

open K23_machine
open K23_isa

(* ---------------- memory ---------------- *)

let test_map_read_write () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8_raw m 0x1234 0xab;
  Alcotest.(check int) "byte" 0xab (Memory.read_u8_raw m 0x1234);
  Memory.write_u64_raw m 0x1100 0xdeadbeef;
  Alcotest.(check int) "u64" 0xdeadbeef (Memory.read_u64_raw m 0x1100)

let test_unmapped_faults () =
  let m = Memory.create () in
  Alcotest.check_raises "read fault"
    (Memory.Fault { fault_addr = 0x9000; access = `Read })
    (fun () -> ignore (Memory.read_u8_raw m 0x9000))

let test_perm_checks () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_r;
  Alcotest.(check int) "read ok" 0 (Memory.read_u8 m ~pkru:0 0x1000);
  Alcotest.check_raises "write faults"
    (Memory.Fault { fault_addr = 0x1000; access = `Write })
    (fun () -> Memory.write_u8 m ~pkru:0 0x1000 1);
  Memory.set_perm m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8 m ~pkru:0 0x1000 1;
  Alcotest.(check int) "after mprotect" 1 (Memory.read_u8 m ~pkru:0 0x1000)

(* XOM via PKU: data reads blocked, instruction fetch allowed — the
   property both trampolines rely on (and the hole of P4a). *)
let test_pku_xom () =
  let m = Memory.create () in
  Memory.map m ~addr:0 ~len:4096 ~perm:Memory.perm_rx ~pkey:1;
  let pkru = 1 lsl 2 (* AD for key 1 *) in
  Alcotest.check_raises "PKU blocks data read"
    (Memory.Fault { fault_addr = 0; access = `Read })
    (fun () -> ignore (Memory.read_u8 m ~pkru 0));
  (* fetch is NOT blocked by PKU *)
  Alcotest.(check int) "fetch allowed" 0 (Memory.fetch_u8 m 0)

let test_fetch_needs_exec () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Alcotest.check_raises "NX fetch faults"
    (Memory.Fault { fault_addr = 0x1000; access = `Exec })
    (fun () -> ignore (Memory.fetch_u8 m 0x1000))

let test_clone_is_deep () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u8_raw m 0x1000 7;
  let c = Memory.clone m in
  Memory.write_u8_raw m 0x1000 9;
  Alcotest.(check int) "clone unaffected" 7 (Memory.read_u8_raw c 0x1000)

let test_cstr_roundtrip () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_cstr m 0x1500 "hello";
  Alcotest.(check string) "cstr" "hello" (Memory.read_cstr m 0x1500)

let test_reservation_accounting () =
  let m = Memory.create () in
  Memory.reserve m ~len:(1 lsl 45);
  Alcotest.(check int) "reserved" (1 lsl 45) m.reserved_bytes;
  Alcotest.(check int) "not committed" 0 m.committed_bytes

let prop_memory_bytes =
  QCheck.Test.make ~name:"memory: write/read byte roundtrip" ~count:500
    QCheck.(pair (int_range 0 4095) (int_range 0 255))
    (fun (off, v) ->
      let m = Memory.create () in
      Memory.map m ~addr:0x2000 ~len:4096 ~perm:Memory.perm_rw;
      Memory.write_u8_raw m (0x2000 + off) v;
      Memory.read_u8_raw m (0x2000 + off) = v)

(* The single-lookup word fast path must leave the same byte image and
   read back the same value as the definitional little-endian byte
   loop, at every offset including page straddles. *)
let prop_memory_u64 =
  QCheck.Test.make ~name:"memory: u64 word path == byte loop" ~count:500
    QCheck.(pair (int_range 0 8184) int)
    (fun (off, v) ->
      let m = Memory.create () in
      Memory.map m ~addr:0x2000 ~len:8192 ~perm:Memory.perm_rw;
      let addr = 0x2000 + off in
      Memory.write_u64 m ~pkru:0 addr v;
      let byte i = Memory.read_u8_raw m (addr + i) in
      let bytes_ok = ref true in
      for i = 0 to 7 do
        if byte i <> (v lsr (8 * i)) land 0xff then bytes_ok := false
      done;
      !bytes_ok && Memory.read_u64 m ~pkru:0 addr = v && Memory.read_u64_raw m addr = v)

let test_unmap_accounting () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:8192 ~perm:Memory.perm_rw;
  Alcotest.(check int) "committed" 8192 m.committed_bytes;
  Alcotest.(check int) "reserved" 8192 m.reserved_bytes;
  (* the range covers two mapped and two unmapped pages: only the
     mapped ones may be deducted *)
  Memory.unmap m ~addr:0x0 ~len:16384;
  Alcotest.(check int) "committed after unmap" 0 m.committed_bytes;
  Alcotest.(check int) "reserved after unmap" 0 m.reserved_bytes;
  (* unmapping an already-unmapped range must be a no-op, not drive
     the counters negative *)
  Memory.unmap m ~addr:0x0 ~len:16384;
  Alcotest.(check int) "committed stays 0" 0 m.committed_bytes;
  Alcotest.(check int) "reserved stays 0" 0 m.reserved_bytes

let test_tlb_unmap_faults () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u64 m ~pkru:0 0x1100 42;
  Alcotest.(check int) "read back" 42 (Memory.read_u64 m ~pkru:0 0x1100);
  Memory.unmap m ~addr:0x1000 ~len:4096;
  Alcotest.check_raises "fault after unmap (TLB flushed)"
    (Memory.Fault { fault_addr = 0x1100; access = `Read })
    (fun () -> ignore (Memory.read_u64 m ~pkru:0 0x1100))

let test_tlb_remap_fresh () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u64 m ~pkru:0 0x1100 42;
  ignore (Memory.read_u64 m ~pkru:0 0x1100);
  (* MAP_FIXED remap replaces the page record: the TLB must not keep
     serving the old one *)
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Alcotest.(check int) "fresh zeroed page" 0 (Memory.read_u64 m ~pkru:0 0x1100)

let test_tlb_mprotect_immediate () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_u64 m ~pkru:0 0x1000 7;
  (* perm change mutates the cached page record in place; the next
     access must see it even on a TLB hit *)
  Memory.set_perm m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_r;
  Alcotest.check_raises "write faults after mprotect"
    (Memory.Fault { fault_addr = 0x1000; access = `Write })
    (fun () -> Memory.write_u64 m ~pkru:0 0x1000 9);
  Alcotest.(check int) "value intact" 7 (Memory.read_u64 m ~pkru:0 0x1000);
  (* same for pkey changes vs the caller's PKRU *)
  Memory.set_pkey m ~addr:0x1000 ~len:4096 ~pkey:1;
  Alcotest.check_raises "PKU read fault after pkey_mprotect"
    (Memory.Fault { fault_addr = 0x1000; access = `Read })
    (fun () -> ignore (Memory.read_u64 m ~pkru:(1 lsl 2) 0x1000))

let test_u64_straddle_fault_addr () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rw;
  (* word at 0x1ffc spills into the unmapped page at 0x2000: the fault
     must name the first inaccessible byte, as the byte loop did *)
  Alcotest.check_raises "straddle write fault at 0x2000"
    (Memory.Fault { fault_addr = 0x2000; access = `Write })
    (fun () -> Memory.write_u64 m ~pkru:0 0x1ffc 1);
  Alcotest.check_raises "straddle read fault at 0x2000"
    (Memory.Fault { fault_addr = 0x2000; access = `Read })
    (fun () -> ignore (Memory.read_u64 m ~pkru:0 0x1ffc))

(* ---------------- icache ---------------- *)

let test_icache_caches_stale () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.write_u8_raw m 0x1000 0x90;
  let ic = Icache.create () in
  Alcotest.(check int) "first fetch" 0x90 (Icache.fetch_u8 ic m 0x1000);
  (* an uncoordinated raw write is invisible through the cache *)
  Memory.write_u8_raw m 0x1000 0xc3;
  Alcotest.(check int) "stale without invalidate" 0x90 (Icache.fetch_u8 ic m 0x1000);
  Icache.invalidate_range ic ~addr:0x1000 ~len:1;
  Alcotest.(check int) "fresh after invalidate" 0xc3 (Icache.fetch_u8 ic m 0x1000)

let test_icache_flush () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  let ic = Icache.create () in
  ignore (Icache.fetch_u8 ic m 0x1040);
  Alcotest.(check bool) "holds" true (Icache.holds ic 0x1040);
  Icache.flush ic;
  Alcotest.(check bool) "flushed" false (Icache.holds ic 0x1040)

(* ---------------- predecode coherence ---------------- *)

let check_decode msg expected got =
  let pp r =
    match r with
    | Ok (i, len) -> Printf.sprintf "%s/%d" (Insn.to_string i) len
    | Error `Invalid -> "(bad)"
  in
  Alcotest.(check string) msg (pp expected) (pp got)

(* (a) a store into a predecoded line is self-snooped: the next fetch
   re-decodes the new bytes. *)
let test_predecode_self_store () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rwx;
  Memory.write_u8_raw m 0x1200 0x90;
  let ic = Icache.create () in
  check_decode "target predecoded as nop" (Ok (Insn.Nop, 1)) (Icache.fetch_decode ic m 0x1200);
  (* overwrite the target with hlt (0xf4) via an executed store *)
  Memory.write_bytes_raw m 0x1000
    (Encode.assemble [ Mov_ri (RBX, 0x1200); Mov_ri (RAX, 0xf4); Store8 (RBX, 0, RAX) ]);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  for _ = 1 to 3 do
    ignore (Cpu.step regs m ic)
  done;
  check_decode "self-store re-decodes" (Ok (Insn.Hlt, 1)) (Icache.fetch_decode ic m 0x1200)

(* (b) a cross-core store without [Kern.code_write_barrier] leaves the
   other core's predecoded instruction stale — the byte-model
   behaviour the P5 PoC depends on. *)
let test_predecode_cross_core_stale () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rwx;
  Memory.write_u8_raw m 0x1200 0x90;
  let ic1 = Icache.create () and ic2 = Icache.create () in
  check_decode "core1 predecodes nop" (Ok (Insn.Nop, 1)) (Icache.fetch_decode ic1 m 0x1200);
  (* core 2 executes the store; it snoops only its own cache *)
  Memory.write_bytes_raw m 0x1000
    (Encode.assemble [ Mov_ri (RBX, 0x1200); Mov_ri (RAX, 0xf4); Store8 (RBX, 0, RAX) ]);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  for _ = 1 to 3 do
    ignore (Cpu.step regs m ic2)
  done;
  Alcotest.(check int) "memory updated" 0xf4 (Memory.read_u8_raw m 0x1200);
  check_decode "core1 still stale without barrier" (Ok (Insn.Nop, 1))
    (Icache.fetch_decode ic1 m 0x1200);
  (* the kernel barrier invalidates every core's line *)
  Icache.invalidate_range ic1 ~addr:0x1200 ~len:1;
  check_decode "fresh after barrier" (Ok (Insn.Hlt, 1)) (Icache.fetch_decode ic1 m 0x1200)

(* Jumping into the middle of an instruction must decode the different
   overlapping instruction at that offset (P2a/P3a root cause): the
   memo is per entry offset, not per instruction span. *)
let test_predecode_overlap_entry () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  (* b8 90 90 90 90 = mov eax, 0x90909090; its tail bytes are nops *)
  Memory.write_bytes_raw m 0x1000 (Bytes.of_string "\xb8\x90\x90\x90\x90");
  let ic = Icache.create () in
  check_decode "aligned entry" (Ok (Insn.Mov_ri32 (Reg.RAX, 0x90909090), 5))
    (Icache.fetch_decode ic m 0x1000);
  check_decode "misaligned entry decodes the overlap" (Ok (Insn.Nop, 1))
    (Icache.fetch_decode ic m 0x1001)

(* Line-straddling instructions are never memoised: their bytes span
   two lines with independent lifetimes, so invalidating only the
   second line must be visible on the next decode. *)
let test_predecode_line_straddle () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  (* mov eax, imm32 at 0x103e: opcode+imm0 in line 0x1000, imm1..3 in
     line 0x1040 *)
  Memory.write_bytes_raw m 0x103e (Bytes.of_string "\xb8\x11\x22\x33\x44");
  let ic = Icache.create () in
  check_decode "straddling insn decodes" (Ok (Insn.Mov_ri32 (Reg.RAX, 0x44332211), 5))
    (Icache.fetch_decode ic m 0x103e);
  (* change an imm byte that lives in the second line *)
  Memory.write_u8_raw m 0x1041 0x55;
  check_decode "stale while both lines cached" (Ok (Insn.Mov_ri32 (Reg.RAX, 0x44332211), 5))
    (Icache.fetch_decode ic m 0x103e);
  Icache.invalidate_range ic ~addr:0x1041 ~len:1;
  check_decode "second-line invalidate is visible"
    (Ok (Insn.Mov_ri32 (Reg.RAX, 0x44552211), 5))
    (Icache.fetch_decode ic m 0x103e)

(* ---------------- cpu ---------------- *)

let exec_prog ?(steps = 100) insns =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.map m ~addr:0x8000 ~len:4096 ~perm:Memory.perm_rw;
  Memory.write_bytes_raw m 0x1000 (Encode.assemble insns);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  Regs.set regs RSP 0x8800;
  let ic = Icache.create () in
  let trap = ref None in
  (try
     for _ = 1 to steps do
       match Cpu.step regs m ic with
       | Cpu.Stepped _ -> ()
       | Cpu.Trapped (t, _) ->
         trap := Some t;
         raise Exit
     done
   with Exit -> ());
  (regs, !trap)

let test_arith_flags () =
  let regs, _ =
    exec_prog [ Mov_ri (RAX, 5); Sub_ri (RAX, 5); Hlt ]
  in
  Alcotest.(check bool) "zf set" true regs.zf;
  Alcotest.(check int) "rax zero" 0 (Regs.get regs RAX)

let test_branching () =
  let regs, _ =
    exec_prog
      [ Mov_ri (RAX, 3); Cmp_ri (RAX, 3); Jcc (Z, 11); Mov_ri (RBX, 111); Hlt; Mov_ri (RBX, 222); Hlt ]
  in
  (* jz +11 skips the 10-byte mov rbx,111 and the hlt *)
  Alcotest.(check int) "took branch" 222 (Regs.get regs RBX)

let test_push_pop_call_ret () =
  let regs, _ =
    exec_prog
      [
        Mov_ri (RAX, 42);
        Push RAX;
        Mov_ri (RAX, 0);
        Pop RBX;
        Call_rel 1; (* call next+1: skips the hlt below? no: call jumps forward 1 byte *)
        Hlt;
        Mov_ri (RCX, 7);
        Hlt;
      ]
  in
  Alcotest.(check int) "pop" 42 (Regs.get regs RBX);
  Alcotest.(check int) "call target ran" 7 (Regs.get regs RCX)

let test_syscall_clobbers () =
  (* x86-64: syscall sets rcx to the next rip and clobbers r11 — the
     behaviour K23's trampoline exploits *)
  let regs, trap = exec_prog [ Mov_ri (RAX, 39); Syscall; Hlt ] in
  (match trap with
  | Some (Cpu.Syscall_trap { site; kind = `Syscall }) ->
    Alcotest.(check int) "site" (0x1000 + 10) site;
    Alcotest.(check int) "rcx = next rip" (0x1000 + 12) (Regs.get regs RCX)
  | _ -> Alcotest.fail "expected syscall trap");
  Alcotest.(check int) "rip advanced" (0x1000 + 12) regs.rip

let test_vcall_trap () =
  let _, trap = exec_prog [ Vcall 5 ] in
  match trap with
  | Some (Cpu.Vcall_trap 5) -> ()
  | _ -> Alcotest.fail "expected vcall trap"

let test_ud_on_garbage () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  Memory.write_u8_raw m 0x1000 0xfe (* not a valid first byte *);
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  let ic = Icache.create () in
  match Cpu.step regs m ic with
  | Cpu.Trapped (Cpu.Ud_trap 0x1000, _) -> ()
  | _ -> Alcotest.fail "expected #UD"

(* torn lazypoline bytes decode to #UD: the P5 crash mechanism *)
let test_torn_rewrite_is_ud () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
  (* original syscall, first byte already rewritten: ff 05 *)
  Memory.write_bytes_raw m 0x1000 (Bytes.of_string "\xff\x05");
  let regs = Regs.create () in
  regs.rip <- 0x1000;
  match Cpu.step regs m (Icache.create ()) with
  | Cpu.Trapped (Cpu.Ud_trap _, _) -> ()
  | _ -> Alcotest.fail "torn bytes must fault"

let test_wrpkru () =
  let regs, _ = exec_prog [ Mov_ri (RAX, 0xc); Wrpkru; Hlt ] in
  Alcotest.(check int) "pkru loaded" 0xc regs.pkru

let tests =
  ( "machine",
    [
      Alcotest.test_case "map/read/write" `Quick test_map_read_write;
      Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
      Alcotest.test_case "permission checks" `Quick test_perm_checks;
      Alcotest.test_case "PKU XOM (fetch allowed, read blocked)" `Quick test_pku_xom;
      Alcotest.test_case "NX fetch faults" `Quick test_fetch_needs_exec;
      Alcotest.test_case "clone is deep" `Quick test_clone_is_deep;
      Alcotest.test_case "cstr roundtrip" `Quick test_cstr_roundtrip;
      Alcotest.test_case "MAP_NORESERVE accounting" `Quick test_reservation_accounting;
      Alcotest.test_case "unmap accounting (partial/missing ranges)" `Quick test_unmap_accounting;
      Alcotest.test_case "TLB: unmap faults" `Quick test_tlb_unmap_faults;
      Alcotest.test_case "TLB: MAP_FIXED remap serves fresh page" `Quick test_tlb_remap_fresh;
      Alcotest.test_case "TLB: mprotect/pkey visible immediately" `Quick
        test_tlb_mprotect_immediate;
      Alcotest.test_case "u64 page-straddle fault address" `Quick test_u64_straddle_fault_addr;
      QCheck_alcotest.to_alcotest prop_memory_bytes;
      QCheck_alcotest.to_alcotest prop_memory_u64;
      Alcotest.test_case "icache serves stale lines" `Quick test_icache_caches_stale;
      Alcotest.test_case "icache flush" `Quick test_icache_flush;
      Alcotest.test_case "predecode: self-store re-decodes (SMC)" `Quick
        test_predecode_self_store;
      Alcotest.test_case "predecode: cross-core store stays stale (P5)" `Quick
        test_predecode_cross_core_stale;
      Alcotest.test_case "predecode: misaligned entry overlap (P2a/P3a)" `Quick
        test_predecode_overlap_entry;
      Alcotest.test_case "predecode: line-straddling insn not memoised" `Quick
        test_predecode_line_straddle;
      Alcotest.test_case "arithmetic flags" `Quick test_arith_flags;
      Alcotest.test_case "conditional branch" `Quick test_branching;
      Alcotest.test_case "push/pop/call/ret" `Quick test_push_pop_call_ret;
      Alcotest.test_case "syscall clobbers rcx/r11" `Quick test_syscall_clobbers;
      Alcotest.test_case "vcall trap" `Quick test_vcall_trap;
      Alcotest.test_case "#UD on garbage" `Quick test_ud_on_garbage;
      Alcotest.test_case "torn rewrite is #UD (P5)" `Quick test_torn_rewrite_is_ud;
      Alcotest.test_case "wrpkru" `Quick test_wrpkru;
    ] )
