(* End-to-end tests of the AArch64 backend as a machine target: worlds
   created with [~isa:Arm64] boot through the ARM ld.so, run apps to
   completion, and support the ARM mechanism set (ASC-Hook, SUD,
   seccomp, ptrace) with the same observable behaviour as native —
   except where a pitfall is structurally present (P3a aliasing). *)

module Arm = K23_isa_arm.Arm
module A = K23_isa_arm.Asm_arm
open K23_kernel
open K23_userland

let isa = K23_isa.Isa.Arm64
let i l = List.map (fun x -> A.I x) l

let hello_text = "hello from arm\n"

let hello_items =
  [ A.Label "main" ]
  @ i (Arm.li 0 1)
  @ [ A.Mov_sym (1, "msg") ]
  @ i (Arm.li 2 (String.length hello_text))
  @ i (Arm.li 8 Sysno.write)
  @ [ A.I (Arm.Svc 0) ]
  @ i (Arm.li 0 0)
  @ i (Arm.li 8 Sysno.exit_group)
  @ [ A.I (Arm.Svc 0); A.Section `Data; A.Label "msg"; A.Strz hello_text ]

let boot ?(mech = K23_eval.Mech.Native) items =
  let w = Sim.create_world ~isa () in
  ignore (Sim.register_app_prog w ~path:"/bin/app" (A.assemble items));
  match K23_eval.Mech.launch mech w ~path:"/bin/app" () with
  | Error e -> Alcotest.failf "launch failed: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    (p, stats)

let test_hello_native () =
  let p, _ = boot hello_items in
  Alcotest.(check (option int)) "exit 0" (Some 0) p.Kern.exit_status;
  Alcotest.(check string) "stdout" hello_text (World.stdout_of p)

(* every ARM mechanism must be observably identical to native on a
   well-behaved program (the oracle's core claim, in miniature) *)
let test_mech_parity () =
  let native, _ = boot hello_items in
  List.iter
    (fun mech ->
      let p, stats = boot ~mech hello_items in
      let name = K23_eval.Mech.to_string mech in
      Alcotest.(check (option int)) (name ^ " exit") native.Kern.exit_status p.Kern.exit_status;
      Alcotest.(check string) (name ^ " stdout") (World.stdout_of native) (World.stdout_of p);
      match stats with
      | Some s ->
        Alcotest.(check bool) (name ^ " interposed something") true (s.K23_interpose.Interpose.interposed > 0)
      | None -> ())
    [ K23_eval.Mech.Asc_hook; K23_eval.Mech.Sud; K23_eval.Mech.Seccomp; K23_eval.Mech.Ptrace ]

(* ASC-Hook transparency: svc clobbers nothing on ARM and the slot is
   entered by [b], so a program that checks its registers around a
   syscall sees no difference *)
let clobber_items =
  [ A.Label "main" ]
  @ i (Arm.li 9 0x1234)
  @ i (Arm.li 30 0x5678) (* the link register: a call-based rewrite would trash it *)
  @ i (Arm.li 8 Sysno.getpid)
  @ [ A.I (Arm.Svc 0) ]
  @ i (Arm.li 10 0x1234)
  @ [ A.I (Arm.Subs_rr (31, 9, 10)); A.Jc (K23_isa.Insn.NZ, "bad") ]
  @ i (Arm.li 10 0x5678)
  @ [ A.I (Arm.Subs_rr (31, 30, 10)); A.Jc (K23_isa.Insn.NZ, "bad") ]
  @ i (Arm.li 0 0)
  @ i (Arm.li 8 Sysno.exit_group)
  @ [ A.I (Arm.Svc 0); A.Label "bad" ]
  @ i (Arm.li 0 1)
  @ i (Arm.li 8 Sysno.exit_group)
  @ [ A.I (Arm.Svc 0) ]

let test_asc_transparent () =
  let p, _ = boot ~mech:K23_eval.Mech.Asc_hook clobber_items in
  Alcotest.(check (option int)) "registers preserved" (Some 0) p.Kern.exit_status

(* P3a is structural under ASC-Hook: a data word in text whose value
   aliases [svc] is patched, so a program reading its own literal pool
   observes the rewrite.  Native and ASC-Hook runs diverge — exactly
   the residual the ISSUE's fuzz shape hunts. *)
let alias_items =
  let alias = Arm.encode (Arm.Svc 7) in
  [
    A.Label "main";
    A.I (Arm.Ldr_lit (3, 2)) (* x3 := the quad 8 bytes below *);
    A.J "cont";
    A.Quad alias (* low word aliases svc: indistinguishable from code *);
    A.Label "cont";
  ]
  @ i (Arm.li 4 alias)
  @ [ A.I (Arm.Subs_rr (31, 3, 4)); A.Jc (K23_isa.Insn.NZ, "patched") ]
  @ i (Arm.li 0 0)
  @ i (Arm.li 8 Sysno.exit_group)
  @ [ A.I (Arm.Svc 0); A.Label "patched" ]
  @ i (Arm.li 0 1)
  @ i (Arm.li 8 Sysno.exit_group)
  @ [ A.I (Arm.Svc 0) ]

let test_asc_p3a_residual () =
  let native, _ = boot alias_items in
  let asc, _ = boot ~mech:K23_eval.Mech.Asc_hook alias_items in
  Alcotest.(check (option int)) "native sees its literal" (Some 0) native.Kern.exit_status;
  Alcotest.(check (option int)) "asc-hook patched the literal" (Some 1) asc.Kern.exit_status

(* x86-only mechanisms are rejected up front on ARM worlds *)
let test_mech_availability () =
  let avail = K23_eval.Mech.available ~isa in
  Alcotest.(check bool) "no zpoline on arm" false (List.mem K23_eval.Mech.Zpoline_default avail);
  Alcotest.(check bool) "no k23 on arm" false (List.mem K23_eval.Mech.K23_default avail);
  Alcotest.(check bool) "asc-hook on arm" true (List.mem K23_eval.Mech.Asc_hook avail);
  Alcotest.(check bool) "asc-hook not on x86" false
    (List.mem K23_eval.Mech.Asc_hook (K23_eval.Mech.available ~isa:K23_isa.Isa.X86_64));
  (* every mechanism is available somewhere: nothing falls through the
     availability partition *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (K23_eval.Mech.to_string m ^ " reachable")
        true
        (List.mem m (K23_eval.Mech.available ~isa)
        || List.mem m (K23_eval.Mech.available ~isa:K23_isa.Isa.X86_64)))
    K23_eval.Mech.all

(* a world is single-ISA: resetting under a different ISA must refuse *)
let test_reset_isa_mismatch () =
  let w = Sim.create_world ~isa () in
  Alcotest.check_raises "reset refuses isa change"
    (Invalid_argument "World.reset: isa/ncores/quantum differ from the world being reset")
    (fun () -> ignore (World.reset w (World.Config.make ())))

let tests =
  ( "arm world (AArch64 backend)",
    [
      Alcotest.test_case "hello boots natively" `Quick test_hello_native;
      Alcotest.test_case "mech parity on well-behaved app" `Quick test_mech_parity;
      Alcotest.test_case "asc-hook is register-transparent" `Quick test_asc_transparent;
      Alcotest.test_case "asc-hook P3a residual (alias word patched)" `Quick test_asc_p3a_residual;
      Alcotest.test_case "mech availability partitions by isa" `Quick test_mech_availability;
      Alcotest.test_case "reset refuses isa mismatch" `Quick test_reset_isa_mismatch;
    ] )
