(* Evaluation-harness sanity: the headline shapes of Tables 2 and 5
   must hold on every test run (full repetitions live in bench/). *)

module Micro = K23_eval.Micro
module Mech = K23_eval.Mech
module OC = K23_eval.Offline_counts

let overhead mech = (Micro.overhead_row ~runs:2 mech).Micro.overhead

let test_table5_ordering () =
  let zp = overhead Mech.Zpoline_default in
  let zpu = overhead Mech.Zpoline_ultra in
  let k23 = overhead Mech.K23_default in
  let lp = overhead Mech.Lazypoline in
  let k23u = overhead Mech.K23_ultra in
  let sud_off = overhead Mech.Sud_no_interposition in
  let sud = overhead Mech.Sud in
  let checks =
    [
      ("zpoline is fastest", zp < k23);
      ("zpoline-ultra costs more than default", zpu > zp);
      ("K23-default beats lazypoline", k23 < lp);
      ("K23-ultra adds the hash-set check", k23u > k23);
      ("armed SUD slows even uninterposed syscalls", sud_off > 1.15 && sud_off < 1.35);
      ("SUD interposition is an order of magnitude", sud > 10.0);
      ("rewriting stays under 1.5x", k23u < 1.5 && lp < 1.5 && zpu < 1.5);
    ]
  in
  List.iter (fun (msg, ok) -> Alcotest.(check bool) msg true ok) checks

let test_table2_counts_match_paper () =
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (OC.coreutil_sites name))
    OC.coreutil_expected

(* the single mechanism-name registry: every variant round-trips
   through its canonical name, the short aliases resolve, and parsing
   is case-insensitive *)
let test_mech_roundtrip () =
  List.iter
    (fun m ->
      let name = Mech.to_string m in
      match Mech.of_string name with
      | Some m' -> Alcotest.(check bool) (name ^ " round-trips") true (m = m')
      | None -> Alcotest.failf "of_string rejected canonical name %S" name)
    Mech.all;
  Alcotest.(check int) "names are unique"
    (List.length Mech.all)
    (List.sort_uniq compare (List.map Mech.to_string Mech.all) |> List.length);
  Alcotest.(check bool) "zpoline alias" true (Mech.of_string "zpoline" = Some Mech.Zpoline_default);
  Alcotest.(check bool) "k23 alias" true (Mech.of_string "k23" = Some Mech.K23_default);
  Alcotest.(check bool) "case-insensitive" true (Mech.of_string "SECCOMP" = Some Mech.Seccomp);
  Alcotest.(check bool) "asc-hook parses" true (Mech.of_string "asc-hook" = Some Mech.Asc_hook);
  Alcotest.(check bool) "unknown rejected" true (Mech.of_string "frobnicate" = None)

let test_fig3_format () =
  let log = OC.fig3 () in
  let lines = String.split_on_char '\n' log |> List.filter (fun l -> l <> "") in
  Alcotest.(check bool) "several entries" true (List.length lines >= 8);
  List.iter
    (fun line ->
      match K23_core.Log_store.entry_of_line line with
      | Some e ->
        Alcotest.(check bool) "absolute region path" true (e.K23_core.Log_store.region.[0] = '/');
        Alcotest.(check bool) "positive offset" true (e.offset > 0)
      | None -> Alcotest.failf "unparseable log line: %s" line)
    lines

let tests =
  ( "eval",
    [
      Alcotest.test_case "Table 5 ordering" `Slow test_table5_ordering;
      Alcotest.test_case "Table 2 coreutil counts" `Slow test_table2_counts_match_paper;
      Alcotest.test_case "Figure 3 log format" `Quick test_fig3_format;
      Alcotest.test_case "Mech name registry round-trip" `Quick test_mech_roundtrip;
    ] )
