(* Open-loop latency campaign (lib/eval/load.ml) and the Stats
   percentile/histogram machinery beneath it. *)

module Stats = K23_util.Stats
module Load = K23_eval.Load
module Mech = K23_eval.Mech

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* --- Stats.percentile ------------------------------------------------- *)

let test_percentile_edges () =
  Alcotest.(check bool) "empty rejected" true
    (raises_invalid (fun () -> Stats.percentile 50.0 []));
  Alcotest.(check (float 1e-9)) "single sample p0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "single sample p50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "single sample p100" 7.0 (Stats.percentile 100.0 [ 7.0 ]);
  let xs = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p50 agrees with median" (Stats.median xs)
    (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "nearest rank returns an actual sample" 99.0
    (Stats.percentile 99.0 (List.init 100 (fun i -> float_of_int (i + 1))));
  Alcotest.(check bool) "nan rejected" true
    (raises_invalid (fun () -> Stats.percentile 50.0 [ 1.0; Float.nan ]));
  Alcotest.(check bool) "p < 0 rejected" true
    (raises_invalid (fun () -> Stats.percentile (-1.0) xs));
  Alcotest.(check bool) "p > 100 rejected" true
    (raises_invalid (fun () -> Stats.percentile 101.0 xs))

(* --- Stats.Hist ------------------------------------------------------- *)

let test_hist_sanity () =
  let h = Stats.Hist.create () in
  Alcotest.(check bool) "empty histogram percentile rejected" true
    (raises_invalid (fun () -> Stats.Hist.percentile h 50.0));
  let samples = [ 100; 200; 400; 800; 100_000 ] in
  List.iter (Stats.Hist.add h) samples;
  Alcotest.(check int) "total" 5 (Stats.Hist.total h);
  Alcotest.(check bool) "out-of-range p rejected" true
    (raises_invalid (fun () -> Stats.Hist.percentile h 101.0));
  (* every bucket is at most 6.25% of its value wide, so percentiles
     land just above the exact sample *)
  let p50 = Stats.Hist.percentile h 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 within bucket error of 400 (%d)" p50)
    true
    (p50 >= 400 && p50 <= 426);
  let p100 = Stats.Hist.percentile h 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p100 covers the max (%d)" p100)
    true
    (p100 >= 100_000 && p100 <= 106_250);
  Alcotest.(check int) "bucket counts sum to total" 5
    (List.fold_left (fun a (_, _, n) -> a + n) 0 (Stats.Hist.buckets h));
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "bucket bounds ordered" true (lo < hi))
    (Stats.Hist.buckets h);
  let true_mean =
    List.fold_left (fun a s -> a +. float_of_int s) 0.0 samples /. 5.0
  in
  Alcotest.(check bool) "mean within bucket error" true
    (Float.abs (Stats.Hist.mean h -. true_mean) /. true_mean < 0.0625)

(* --- campaign: determinism across --jobs, and latency physics --------- *)

(* a two-row slice of the real campaign, small enough for a test: the
   bench [table6-load --json] output is exactly [Load.render_json] of
   this report, so byte-equality here is the --jobs 1 vs --jobs 4
   determinism contract of the CLI *)
let test_campaign_determinism_and_tails () =
  let specs = [ Load.uniform Load.Web Mech.Native; Load.uniform Load.Web Mech.Sud ] in
  let run jobs = Load.campaign ~quick:true ~jobs ~runs:1 ~requests:64 ~specs () in
  let r1 = run 1 in
  let r4 = run 4 in
  Alcotest.(check string) "render_json byte-identical across --jobs"
    (Load.render_json r1) (Load.render_json r4);
  match r1.Load.rep_rows with
  | [ native; sud ] ->
    (* 2 workers -> 2 client threads x 64 requests, all accounted for *)
    Alcotest.(check int) "native: every request sampled" (2 * 64) native.Load.r_samples;
    Alcotest.(check int) "native: no errors" 0 native.Load.r_errors;
    Alcotest.(check int) "sud: no errors" 0 sud.Load.r_errors;
    Alcotest.(check bool) "latencies are positive" true (native.Load.r_p50 > 0);
    Alcotest.(check bool) "p50 <= p99 <= p999" true
      (native.Load.r_p50 <= native.Load.r_p99 && native.Load.r_p99 <= native.Load.r_p999);
    Alcotest.(check bool)
      (Printf.sprintf "SUD p50 >= native p50 (%d vs %d)" sud.Load.r_p50 native.Load.r_p50)
      true
      (sud.Load.r_p50 >= native.Load.r_p50)
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

(* the chaos row: same determinism contract with the fault plane armed,
   plus the resilience contract -- retries absorb the injected noise, so
   requests still complete and the JSON says which plan was in force *)
let test_chaos_row_determinism () =
  let specs = [ Load.uniform Load.Web Mech.Native; Load.uniform Load.Web Mech.Sud ] in
  let faults = K23_faults.Faults.chaos () in
  let run jobs = Load.campaign ~quick:true ~jobs ~runs:1 ~requests:64 ~specs ~faults () in
  let r1 = run 1 in
  let r4 = run 4 in
  Alcotest.(check string) "chaos render_json byte-identical across --jobs"
    (Load.render_json r1) (Load.render_json r4);
  Alcotest.(check (option string)) "plan recorded in the report"
    (Some (K23_faults.Faults.to_string faults))
    r1.Load.rep_faults;
  match r1.Load.rep_rows with
  | [ native; sud ] ->
    Alcotest.(check int) "native: storm absorbed, all requests complete" (2 * 64)
      native.Load.r_samples;
    Alcotest.(check int) "native: no errors" 0 native.Load.r_errors;
    Alcotest.(check int) "sud: no errors" 0 sud.Load.r_errors
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let tests =
  ( "load campaign",
    [
      Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
      Alcotest.test_case "histogram sanity" `Quick test_hist_sanity;
      Alcotest.test_case "campaign --jobs determinism + tail physics" `Quick
        test_campaign_determinism_and_tails;
      Alcotest.test_case "chaos row --jobs determinism + resilience" `Quick
        test_chaos_row_determinism;
    ] )
