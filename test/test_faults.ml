(* the deterministic fault-injection plane (lib/faults + kernel hooks)
   and its satellite contracts: errno spelling round-trips, the
   signal-wakes-blocked-wait fix, restart re-entering the interposer,
   and short-I/O framing in the resilient apps *)

open K23_isa
module Kern = K23_kernel.Kern
module Sysno = K23_kernel.Sysno
module Errno = K23_kernel.Errno
module World = K23_kernel.World
module Sim = K23_userland.Sim
module F = K23_faults.Faults
module Oracle = K23_fuzz.Oracle
module Mech = K23_eval.Mech
module Apps = K23_apps
module Event = K23_obs.Event

(* ------------------------------------------------------------------ *)
(* satellite (a): errno spellings *)

let test_errno_roundtrip () =
  let named =
    Errno.
      [
        eperm; enoent; esrch; eintr; eio; ebadf; echild; eagain; enomem; eacces;
        efault; eexist; enotdir; eisdir; einval; enfile; emfile; enosys;
        enotempty; eaddrinuse; econnreset; econnrefused; erestartsys;
      ]
  in
  List.iter
    (fun e ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s round-trips" (Errno.to_string e))
        (Some e)
        (Errno.of_string (Errno.to_string e)))
    named;
  (* negative returns spell the same name *)
  Alcotest.(check string) "negative spelling" "EINTR" (Errno.to_string (-Errno.eintr));
  (* the E%d fallback round-trips too *)
  Alcotest.(check (option int)) "fallback round-trips" (Some 77) (Errno.of_string (Errno.to_string 77));
  Alcotest.(check (option int)) "garbage rejected" None (Errno.of_string "bogus");
  Alcotest.(check (option int)) "empty rejected" None (Errno.of_string "")

let test_plan_roundtrip () =
  let chk p = Alcotest.(check (option string))
      ("plan round-trips: " ^ F.to_string p)
      (Some (F.to_string p))
      (Option.map F.to_string (F.of_string (F.to_string p)))
  in
  chk (F.chaos ());
  chk (F.chaos ~fseed:89 ());
  chk { F.none with F.fseed = 5; short_pm = 400 };
  Alcotest.(check bool) "off parses to disabled" true
    (match F.of_string "faults:off" with Some p -> not (F.enabled p) | None -> false);
  Alcotest.(check bool) "garbage rejected" true (F.of_string "faults:zzz" = None)

(* ------------------------------------------------------------------ *)
(* satellite (b): a signal wakes a thread parked in a timed wait *)

(* parent registers a handler and parks in a 5M-cycle nanosleep; the
   forked child sleeps briefly, then kill(parent, 10).  The delivery
   must tear the wait down NOW: nanosleep completes with -EINTR long
   before its deadline, the handler runs, sigreturn restores, and the
   parent exits 0.  (Before the fix a parked thread slept through the
   signal until its deadline fired.) *)
let parent_sleep = 5_000_000

let signal_wake_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (RDI, 10));
    Asm.Mov_sym (RSI, "handler");
    Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigaction));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_ri (RAX, Sysno.getpid));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_rr (R12, RAX));
    Asm.I (Insn.Mov_ri (RAX, Sysno.fork));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Cmp_ri (RAX, 0));
    Asm.Jc (Insn.Z, "child");
    (* parent: park *)
    Asm.I (Insn.Mov_ri (RAX, Sysno.nanosleep));
    Asm.I (Insn.Mov_ri (RDI, parent_sleep));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group));
    Asm.I Insn.Syscall;
    (* child: let the parent park, then signal it *)
    Asm.Label "child";
    Asm.I (Insn.Mov_ri (RAX, Sysno.nanosleep));
    Asm.I (Insn.Mov_ri (RDI, 2_000));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_rr (RDI, R12));
    Asm.I (Insn.Mov_ri (RSI, 10));
    Asm.I (Insn.Mov_ri (RAX, Sysno.kill));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group));
    Asm.I Insn.Syscall;
    Asm.Label "handler";
    Asm.I (Insn.Mov_ri (RAX, Sysno.rt_sigreturn));
    Asm.I Insn.Syscall;
  ]

let test_signal_wakes_blocked_wait () =
  match Oracle.run_raw ~mech:Mech.Native (K23_fuzz.Gen.X86 signal_wake_items) with
  | Error e -> Alcotest.failf "launch error %d" e
  | Ok (_, p, events) ->
    Alcotest.(check (option int)) "parent exits 0" (Some 0) p.Kern.exit_status;
    (* the parent's stream, in order: park in nanosleep, deliver,
       wake with -EINTR, handler's sigreturn *)
    let parent = List.filter (fun ev -> ev.Event.ev_pid = p.Kern.pid) events in
    let idx f =
      match
        List.find_index (fun ev -> f ev.Event.ev_payload) parent
      with
      | Some i -> i
      | None -> Alcotest.fail "expected parent ktrace event missing"
    in
    let enter_cycles =
      match
        List.find_opt
          (fun ev ->
            match ev.Event.ev_payload with
            | Event.Syscall_enter { nr; _ } -> nr = Sysno.nanosleep
            | _ -> false)
          parent
      with
      | Some ev -> ev.Event.ev_cycles
      | None -> Alcotest.fail "parent never entered nanosleep"
    in
    let i_deliver =
      idx (function Event.Signal_deliver { signo = 10; _ } -> true | _ -> false)
    in
    let i_eintr, eintr_cycles =
      match
        List.find_index
          (fun ev ->
            match ev.Event.ev_payload with
            | Event.Syscall_exit { nr; ret } -> nr = Sysno.nanosleep && ret = -Errno.eintr
            | _ -> false)
          parent
      with
      | Some i -> (i, (List.nth parent i).Event.ev_cycles)
      | None -> Alcotest.fail "nanosleep did not complete with -EINTR"
    in
    let i_sigreturn = idx (function Event.Sigreturn _ -> true | _ -> false) in
    Alcotest.(check bool) "deliver before -EINTR completion" true (i_deliver < i_eintr);
    Alcotest.(check bool) "-EINTR completion before sigreturn" true (i_eintr < i_sigreturn);
    Alcotest.(check bool)
      (Printf.sprintf "woke before the deadline (%d < enter+%d)" eintr_cycles parent_sleep)
      true
      (eintr_cycles < enter_cycles + parent_sleep)

(* ------------------------------------------------------------------ *)
(* tentpole: a restarted syscall re-enters the interposer *)

(* the corpus repro's head: chaos fseed 89 interrupts the first
   nanosleep and elects restart (not hard EINTR) *)
let restart_items =
  [
    Asm.Label "main";
    Asm.I (Insn.Mov_ri (RAX, Sysno.nanosleep));
    Asm.I (Insn.Mov_ri (RDI, 50_000));
    Asm.I (Insn.Mov_ri (RSI, 0));
    Asm.I Insn.Syscall;
    Asm.I (Insn.Mov_ri (RDI, 0));
    Asm.I (Insn.Mov_ri (RAX, Sysno.exit_group));
    Asm.I Insn.Syscall;
  ]

let restart_cfg =
  { Oracle.default_world_cfg with World.Config.faults = F.chaos ~fseed:89 () }

(* after [Syscall_restarted], the re-execution's kernel entry must come
   from interposition-owned code (trampoline or interposer), not from a
   raw kernel-side re-dispatch -- the paper's P4 shadow *)
let check_restart_reenters mech ~owner_ok =
  match Oracle.run_raw ~cfg:restart_cfg ~mech (K23_fuzz.Gen.X86 restart_items) with
  | Error e -> Alcotest.failf "%s: launch error %d" (Mech.to_string mech) e
  | Ok (_, p, events) ->
    Alcotest.(check (option int))
      (Mech.to_string mech ^ ": exits 0")
      (Some 0) p.Kern.exit_status;
    let rec scan seen_restart = function
      | [] -> Alcotest.failf "%s: no re-entry after restart" (Mech.to_string mech)
      | ev :: rest -> (
        match ev.Event.ev_payload with
        | Event.Syscall_restarted { nr; _ } when nr = Sysno.nanosleep -> scan true rest
        | Event.Syscall_enter { nr; owner; _ } when seen_restart && nr = Sysno.nanosleep ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: re-entry owner %S interposed" (Mech.to_string mech) owner)
            true (owner_ok owner)
        | _ -> scan seen_restart rest)
    in
    scan false events

let test_restart_reenters_interposer () =
  check_restart_reenters Mech.Zpoline_ultra ~owner_ok:(fun o -> o = "trampoline");
  check_restart_reenters Mech.K23_ultra ~owner_ok:(fun o -> o = "trampoline");
  check_restart_reenters Mech.Sud ~owner_ok:(fun o -> o = "interposer");
  (* native restarts too -- same schedule, app-owned re-entry *)
  check_restart_reenters Mech.Native ~owner_ok:(fun o -> o = "app")

(* ------------------------------------------------------------------ *)
(* satellite (c): short-read/short-write framing in the resilient apps *)

(* a short-I/O-only storm: no EINTR, no resource exhaustion -- every
   lost byte must be re-driven by the apps' framing loops *)
let short_storm fseed = { F.none with F.fseed; short_pm = 400 }

let drive_resilient_pair ~register_server ~port ~rounds ~resp_len ~req_cost ~fseed =
  let w = Sim.create_world ~quantum:8 () in
  register_server w;
  (match World.spawn w ~path:"/usr/bin/srv" () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w port;
  Kern.sync_cores w;
  (* arm the storm only for the measured exchange, as the chaos row does *)
  w.Kern.faults <- Some (short_storm fseed);
  Kern.fault_reset w;
  let client =
    {
      Apps.Wrk.path = "/usr/bin/wrk";
      port;
      threads = 1;
      conns = 1;
      depth = 1;
      rounds;
      req_cost;
      resp_len;
      arrival = Apps.Wrk.Closed;
      retries = 8;
    }
  in
  let results = Apps.Wrk.register w client in
  (match World.spawn w ~path:client.Apps.Wrk.path () with
  | Error e -> Alcotest.failf "client spawn: %d" e
  | Ok cp ->
    (try Kern.run ~max_steps:50_000_000 ~until:(fun () -> Kern.proc_dead cp) w
     with Kern.Deadlock _ -> ()));
  K23_eval.Macro.kill_everything w;
  Alcotest.(check int) "all requests complete through the storm" rounds
    results.Apps.Wrk.completed;
  Alcotest.(check int) "no errors" 0 results.errors

let test_short_io_framing_webserver () =
  let cfg = Apps.Webserver.nginx ~workers:1 ~file_size:0 ~resilient:true () in
  let cfg = { cfg with Apps.Webserver.path = "/usr/bin/srv"; port = 8099 } in
  drive_resilient_pair
    ~register_server:(fun w -> Apps.Webserver.register w cfg)
    ~port:8099 ~rounds:20 ~resp_len:Apps.Webserver.header_len ~req_cost:300 ~fseed:7

let test_short_io_framing_redis () =
  let cfg = Apps.Redis_like.default ~resilient:true () in
  let cfg = { cfg with Apps.Redis_like.path = "/usr/bin/srv"; port = 6399 } in
  drive_resilient_pair
    ~register_server:(fun w -> Apps.Redis_like.register w cfg)
    ~port:6399 ~rounds:20 ~resp_len:64 ~req_cost:12_500 ~fseed:8

let tests =
  ( "faults",
    [
      Alcotest.test_case "errno spelling round-trips" `Quick test_errno_roundtrip;
      Alcotest.test_case "fault plan round-trips" `Quick test_plan_roundtrip;
      Alcotest.test_case "signal wakes a blocked wait" `Quick test_signal_wakes_blocked_wait;
      Alcotest.test_case "restart re-enters the interposer" `Quick test_restart_reenters_interposer;
      Alcotest.test_case "short-I/O framing (webserver)" `Quick test_short_io_framing_webserver;
      Alcotest.test_case "short-I/O framing (redis)" `Quick test_short_io_framing_redis;
    ] )
