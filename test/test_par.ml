(* Domain pool and Run-spec API: results in input order whatever the
   scheduling, deterministic exception choice, and the headline
   guarantee — a parallel fuzz campaign renders byte-identical JSON. *)

module Pool = K23_par.Pool
module Rs = K23_par.Run_spec
module Config = K23_kernel.World.Config
module Campaign = K23_fuzz.Campaign

let squares n = List.init n (fun i -> i * i)

let test_map_order () =
  let tasks = List.init 53 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (squares 53)
        (Pool.map ~jobs (fun x -> x * x) tasks))
    [ 1; 2; 4; 16 ]

(* more workers than tasks: the surplus domains find the queue empty
   and exit; every task still runs exactly once *)
let test_jobs_exceed_tasks () =
  Alcotest.(check (list int)) "jobs=16, 3 tasks" [ 0; 1; 4 ]
    (Pool.map ~jobs:16 (fun x -> x * x) [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "jobs=0 clamps to sequential" (squares 5)
    (Pool.map ~jobs:0 (fun x -> x * x) (List.init 5 Fun.id));
  Alcotest.(check (list int)) "empty task list" [] (Pool.map ~jobs:4 (fun x -> x) [])

let test_mapi () =
  Alcotest.(check (list int)) "mapi passes positions" [ 10; 12; 14 ]
    (Pool.mapi ~jobs:4 (fun i x -> i + x) [ 10; 11; 12 ])

(* chunked claiming is a scheduling detail: results, order and the
   exception contract are unchanged for every (jobs, chunk) pair *)
let test_chunked_map () =
  let tasks = List.init 53 Fun.id in
  List.iter
    (fun chunk ->
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            (squares 53)
            (Pool.map ~jobs ~chunk (fun x -> x * x) tasks))
        [ 1; 2; 4; 16 ])
    [ 1; 2; 7; 16; 64 ];
  (match Pool.map ~jobs:2 ~chunk:0 Fun.id [ 1 ] with
  | _ -> Alcotest.fail "chunk=0 accepted"
  | exception Invalid_argument _ -> ())

(* regression: a single task with jobs and chunk both larger — jobs
   clamps to the chunk count (1), so the call short-circuits to the
   sequential path instead of spawning domains with no work *)
let test_single_task_large_chunk () =
  Alcotest.(check (list int)) "tasks=1 jobs=8 chunk=16" [ 49 ]
    (Pool.map ~jobs:8 ~chunk:16 (fun x -> x * x) [ 7 ]);
  Alcotest.(check (list int)) "mapi tasks=1 jobs=8 chunk=16" [ 107 ]
    (Pool.mapi ~jobs:8 ~chunk:16 (fun i x -> i + x) [ 107 ])

exception Boom of int

(* when several tasks fail, the lowest-indexed exception is re-raised
   (after all domains are joined) — failure reporting must not depend
   on which domain got there first *)
let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs (fun i -> if i = 3 || i = 7 then raise (Boom i) else i) (List.init 10 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Boom n -> Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) 3 n)
    [ 1; 4 ];
  (* same contract under chunked claiming *)
  match
    Pool.map ~jobs:4 ~chunk:4
      (fun i -> if i mod 5 = 3 then raise (Boom i) else i)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "chunked: expected an exception"
  | exception Boom n -> Alcotest.(check int) "chunked lowest index" 3 n

let test_run_spec_keys () =
  let specs =
    List.init 5 (fun i ->
        Rs.v ~world:(Config.make ~seed:(100 + i) ()) ~mech:"native" ~index:i (fun () -> i * 3))
  in
  let out = Rs.run_all ~jobs:3 specs in
  List.iteri
    (fun i (k, v) ->
      Alcotest.(check int) "index" i k.Rs.k_index;
      Alcotest.(check int) "seed" (100 + i) k.Rs.k_world.Config.seed;
      Alcotest.(check int) "value" (i * 3) v)
    out

(* the run-spec key is pure data: structural equality, stable hash,
   readable rendering *)
let test_config_key () =
  let a = Config.make ~seed:7 () and b = Config.make ~seed:7 () in
  Alcotest.(check bool) "equal configs" true (Config.equal a b);
  Alcotest.(check int) "equal hashes" (Config.hash a) (Config.hash b);
  Alcotest.(check bool) "seed differs" false (Config.equal a (Config.make ~seed:8 ()));
  let contains s needle =
    let ls = String.length s and ln = String.length needle in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  let k = { Rs.k_world = a; k_mech = "seccomp"; k_index = 4 } in
  let s = Rs.key_to_string k in
  List.iter
    (fun needle -> Alcotest.(check bool) ("key renders " ^ needle) true (contains s needle))
    [ "seed=7"; "mech=seccomp"; "index=4" ]

(* the tentpole invariant of the scratch-world cache: a world that ran
   a different program and was then reset in place is observationally
   identical to a freshly built one.  The dirty run is truncated
   mid-flight (step cap), so the reset has to clear live processes,
   open fds, mapped pages, pending signals and a non-empty ktrace
   ring; the probe then runs under zpoline-ultra (launch-time sweep,
   selector state) and must yield byte-identical ktrace streams and an
   equal oracle projection. *)
let test_world_reuse () =
  let module Oracle = K23_fuzz.Oracle in
  let module Gen = K23_fuzz.Gen in
  let module Sim = K23_userland.Sim in
  let cfg = Oracle.default_world_cfg in
  let gen seed = (Gen.generate ~shapes:Gen.default_shapes (K23_util.Rng.create ~seed)).Gen.items in
  let probe = gen 4242 and dirty = gen 777 in
  let run_in ?(max_steps = Oracle.default_max_steps) w items mech =
    match Oracle.launch_in w ~max_steps ~mech items with
    | Error e -> Alcotest.failf "launch failed: %d" e
    | Ok (p, events) ->
      ( String.concat "\n" (List.map K23_obs.Render.human_event events),
        Oracle.project p w events )
  in
  let w_fresh = Sim.create_world_cfg cfg in
  let fresh_trace, fresh_proj = run_in w_fresh probe K23_eval.Mech.Zpoline_ultra in
  let w = Sim.create_world_cfg cfg in
  (* dirty it: K23-ultra leaves offline logs plus a sealed (immutable)
     log directory in the VFS, and the truncated run leaves everything
     else mid-flight *)
  let _ = run_in ~max_steps:20_000 w dirty K23_eval.Mech.K23_ultra in
  Sim.reset_world_cfg w cfg;
  let reused_trace, reused_proj = run_in w probe K23_eval.Mech.Zpoline_ultra in
  Alcotest.(check string) "ktrace streams byte-identical" fresh_trace reused_trace;
  Alcotest.(check bool) "oracle projections equal" true (fresh_proj = reused_proj);
  (* and the cache path itself converges: run via Oracle.run (scratch
     world) twice — second call is a hit — against the fresh result *)
  let via_cache () =
    match Oracle.run ~cfg ~mech:K23_eval.Mech.Zpoline_ultra probe with
    | Oracle.Ok_run p -> p
    | Oracle.Launch_failed e -> Alcotest.failf "cached launch failed: %d" e
  in
  let first = via_cache () in
  let second = via_cache () in
  Alcotest.(check bool) "scratch-world runs equal fresh run" true
    (first = fresh_proj && second = fresh_proj)

(* the acceptance-grade invariant, sized for the unit suite: a real
   campaign (fresh worlds, all default mechanisms) renders the same
   JSON bytes sequentially and sharded across 4 domains *)
let test_campaign_jobs_identical () =
  let config = { Campaign.default_config with c_seed = 23; c_iters = 30 } in
  let j1 = Campaign.render_json (Campaign.run ~jobs:1 config) in
  let j4 = Campaign.render_json (Campaign.run ~jobs:4 config) in
  Alcotest.(check string) "jobs=1 vs jobs=4 JSON" j1 j4

let tests =
  ( "par",
    [
      Alcotest.test_case "map preserves input order" `Quick test_map_order;
      Alcotest.test_case "jobs exceed tasks" `Quick test_jobs_exceed_tasks;
      Alcotest.test_case "chunked map: same results, any (jobs, chunk)" `Quick test_chunked_map;
      Alcotest.test_case "single task, jobs=8 chunk=16" `Quick test_single_task_large_chunk;
      Alcotest.test_case "mapi indexes" `Quick test_mapi;
      Alcotest.test_case "world reuse == fresh world" `Quick test_world_reuse;
      Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
      Alcotest.test_case "run-spec keys in submission order" `Quick test_run_spec_keys;
      Alcotest.test_case "config is a pure-data key" `Quick test_config_key;
      Alcotest.test_case "campaign jobs=1 == jobs=4" `Slow test_campaign_jobs_identical;
    ] )
