(* Domain pool and Run-spec API: results in input order whatever the
   scheduling, deterministic exception choice, and the headline
   guarantee — a parallel fuzz campaign renders byte-identical JSON. *)

module Pool = K23_par.Pool
module Rs = K23_par.Run_spec
module Config = K23_kernel.World.Config
module Campaign = K23_fuzz.Campaign

let squares n = List.init n (fun i -> i * i)

let test_map_order () =
  let tasks = List.init 53 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (squares 53)
        (Pool.map ~jobs (fun x -> x * x) tasks))
    [ 1; 2; 4; 16 ]

(* more workers than tasks: the surplus domains find the queue empty
   and exit; every task still runs exactly once *)
let test_jobs_exceed_tasks () =
  Alcotest.(check (list int)) "jobs=16, 3 tasks" [ 0; 1; 4 ]
    (Pool.map ~jobs:16 (fun x -> x * x) [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "jobs=0 clamps to sequential" (squares 5)
    (Pool.map ~jobs:0 (fun x -> x * x) (List.init 5 Fun.id));
  Alcotest.(check (list int)) "empty task list" [] (Pool.map ~jobs:4 (fun x -> x) [])

let test_mapi () =
  Alcotest.(check (list int)) "mapi passes positions" [ 10; 12; 14 ]
    (Pool.mapi ~jobs:4 (fun i x -> i + x) [ 10; 11; 12 ])

exception Boom of int

(* when several tasks fail, the lowest-indexed exception is re-raised
   (after all domains are joined) — failure reporting must not depend
   on which domain got there first *)
let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs (fun i -> if i = 3 || i = 7 then raise (Boom i) else i) (List.init 10 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Boom n -> Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) 3 n)
    [ 1; 4 ]

let test_run_spec_keys () =
  let specs =
    List.init 5 (fun i ->
        Rs.v ~world:(Config.make ~seed:(100 + i) ()) ~mech:"native" ~index:i (fun () -> i * 3))
  in
  let out = Rs.run_all ~jobs:3 specs in
  List.iteri
    (fun i (k, v) ->
      Alcotest.(check int) "index" i k.Rs.k_index;
      Alcotest.(check int) "seed" (100 + i) k.Rs.k_world.Config.seed;
      Alcotest.(check int) "value" (i * 3) v)
    out

(* the run-spec key is pure data: structural equality, stable hash,
   readable rendering *)
let test_config_key () =
  let a = Config.make ~seed:7 () and b = Config.make ~seed:7 () in
  Alcotest.(check bool) "equal configs" true (Config.equal a b);
  Alcotest.(check int) "equal hashes" (Config.hash a) (Config.hash b);
  Alcotest.(check bool) "seed differs" false (Config.equal a (Config.make ~seed:8 ()));
  let contains s needle =
    let ls = String.length s and ln = String.length needle in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  let k = { Rs.k_world = a; k_mech = "seccomp"; k_index = 4 } in
  let s = Rs.key_to_string k in
  List.iter
    (fun needle -> Alcotest.(check bool) ("key renders " ^ needle) true (contains s needle))
    [ "seed=7"; "mech=seccomp"; "index=4" ]

(* the acceptance-grade invariant, sized for the unit suite: a real
   campaign (fresh worlds, all default mechanisms) renders the same
   JSON bytes sequentially and sharded across 4 domains *)
let test_campaign_jobs_identical () =
  let config = { Campaign.default_config with c_seed = 23; c_iters = 30 } in
  let j1 = Campaign.render_json (Campaign.run ~jobs:1 config) in
  let j4 = Campaign.render_json (Campaign.run ~jobs:4 config) in
  Alcotest.(check string) "jobs=1 vs jobs=4 JSON" j1 j4

let tests =
  ( "par",
    [
      Alcotest.test_case "map preserves input order" `Quick test_map_order;
      Alcotest.test_case "jobs exceed tasks" `Quick test_jobs_exceed_tasks;
      Alcotest.test_case "mapi indexes" `Quick test_mapi;
      Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
      Alcotest.test_case "run-spec keys in submission order" `Quick test_run_spec_keys;
      Alcotest.test_case "config is a pure-data key" `Quick test_config_key;
      Alcotest.test_case "campaign jobs=1 == jobs=4" `Slow test_campaign_jobs_identical;
    ] )
