(* Reproducibility invariants: the whole simulation is a deterministic
   function of the seed — the property every benchmark number in
   EXPERIMENTS.md rests on. *)

open K23_kernel
open K23_userland
module K23 = K23_core.K23

let fingerprint ~seed =
  let w = Sim.create_world ~seed () in
  K23_apps.Coreutils.register_all w;
  ignore (K23.offline_run w ~path:"/bin/ls" ());
  K23.seal_logs w;
  match K23.launch w ~variant:K23.Ultra ~path:"/bin/ls" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, stats) ->
    World.run_until_exit w p;
    ( Kern.now w,
      w.steps,
      p.counters.c_app,
      stats.interposed,
      stats.via_rewrite,
      stats.via_ptrace,
      World.stdout_of p )

let test_same_seed_same_world () =
  let a = fingerprint ~seed:77 in
  let b = fingerprint ~seed:77 in
  Alcotest.(check bool) "bit-for-bit identical" true (a = b)

let test_different_seed_different_layout () =
  let _, _, _, _, _, _, _ = fingerprint ~seed:77 in
  let cycles_a, _, apps_a, int_a, _, _, out_a = fingerprint ~seed:77 in
  let cycles_b, _, apps_b, int_b, _, _, out_b = fingerprint ~seed:78 in
  (* different machine-state skew => different cycle totals ... *)
  Alcotest.(check bool) "cycle totals differ" true (cycles_a <> cycles_b);
  (* ... but identical semantics *)
  Alcotest.(check int) "same app syscalls" apps_a apps_b;
  Alcotest.(check int) "same interposed count" int_a int_b;
  Alcotest.(check string) "same output" out_a out_b

(* the strong form of the invariant, via ktrace: two seeded runs emit
   byte-identical structured event streams — every syscall, signal,
   selector toggle and ptrace stop at the same cycle with the same
   payload.  Checked both structurally (Trace_diff) and on the
   rendered JSON bytes, for the three mechanism families the paper
   contrasts (rewriting, SUD, ptrace+SUD hybrid). *)
let traced_stream ~mech ~seed =
  let w = Sim.create_world ~seed () in
  K23_apps.Coreutils.register_all w;
  if K23_eval.Mech.needs_offline mech then begin
    ignore (K23.offline_run w ~path:"/bin/ls" ());
    K23.seal_logs w
  end;
  let t = Kern.ktrace_enable w in
  match K23_eval.Mech.launch mech w ~path:"/bin/ls" () with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) ->
    World.run_until_exit w p;
    let events = K23_obs.Trace.events t in
    let json =
      K23_obs.Render.json_stream ~namer:Sysno.name
        ~counters:(K23_obs.Counters.to_alist t.K23_obs.Trace.counters)
        ~dropped:(K23_obs.Trace.dropped t) events
    in
    (events, json)

let test_ktrace_streams_identical () =
  List.iter
    (fun mech ->
      let ev_a, json_a = traced_stream ~mech ~seed:7 in
      let ev_b, json_b = traced_stream ~mech ~seed:7 in
      let verdict = K23_obs.Trace_diff.diff ev_a ev_b in
      if not (K23_obs.Trace_diff.is_identical verdict) then
        Alcotest.failf "%s: %s" (K23_eval.Mech.to_string mech)
          (K23_obs.Trace_diff.render ~namer:Sysno.name verdict);
      Alcotest.(check bool)
        (K23_eval.Mech.to_string mech ^ ": non-trivial stream")
        true
        (List.length ev_a > 0);
      Alcotest.(check string) (K23_eval.Mech.to_string mech ^ ": JSON bytes") json_a json_b)
    [ K23_eval.Mech.K23_ultra; K23_eval.Mech.Zpoline_default; K23_eval.Mech.Sud ]

(* and different seeds shift timing without changing the event
   sequence's semantic spine (same syscall kinds in the same order) *)
let test_ktrace_seed_changes_cycles_only () =
  let kinds evs = List.map (fun e -> K23_obs.Event.kind e.K23_obs.Event.ev_payload) evs in
  let ev_a, _ = traced_stream ~mech:K23_eval.Mech.Zpoline_default ~seed:7 in
  let ev_b, _ = traced_stream ~mech:K23_eval.Mech.Zpoline_default ~seed:8 in
  Alcotest.(check (list string)) "same kind sequence" (kinds ev_a) (kinds ev_b)

(* the benchmark's own samples: repeated micro runs with one seed are
   exactly equal (no hidden global state leaks between worlds) *)
let test_micro_repeatable () =
  let a = K23_eval.Micro.cycles_per_iter ~mech:K23_eval.Mech.Zpoline_default ~seed:5 in
  let b = K23_eval.Micro.cycles_per_iter ~mech:K23_eval.Mech.Zpoline_default ~seed:5 in
  Alcotest.(check (float 0.0)) "identical" a b

let tests =
  ( "determinism",
    [
      Alcotest.test_case "same seed, same world" `Quick test_same_seed_same_world;
      Alcotest.test_case "seeds change timing, not semantics" `Quick
        test_different_seed_different_layout;
      Alcotest.test_case "micro samples repeatable" `Quick test_micro_repeatable;
      Alcotest.test_case "ktrace streams byte-identical (k23/zpoline/SUD)" `Quick
        test_ktrace_streams_identical;
      Alcotest.test_case "seeds shift cycles, not the event spine" `Quick
        test_ktrace_seed_changes_cycles_only;
    ] )
