(* ktrace observability subsystem (lib/obs) plus the satellite fixes
   that ride along with it: the Net.Byteq two-list queue and the
   Stats nan/non-positive hardening. *)

open K23_kernel
module Ring = K23_obs.Ring
module Counters = K23_obs.Counters
module Event = K23_obs.Event
module Trace = K23_obs.Trace
module Trace_diff = K23_obs.Trace_diff
module Render = K23_obs.Render
module Stats = K23_util.Stats
module H = K23_pitfalls.Harness

(* --- ring buffer ---------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r)

let test_ring_overflow () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 7; 8; 9; 10 ] (Ring.to_list r);
  Alcotest.(check int) "length capped" 4 (Ring.length r);
  Alcotest.(check int) "evictions counted" 6 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Ring.to_list r);
  Alcotest.(check int) "clear resets dropped" 0 (Ring.dropped r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0))

(* ring overflow through the real recording path: a tiny ring under a
   real run retains exactly [capacity] events and counts the rest *)
let test_ring_overflow_live () =
  let w = K23_userland.Sim.create_world ~seed:3 () in
  K23_apps.Coreutils.register_all w;
  let t = Kern.ktrace_enable ~capacity:16 w in
  (match K23_baselines.Zpoline.launch w ~variant:K23_baselines.Zpoline.Default ~path:"/bin/ls" ()
   with
  | Error e -> Alcotest.failf "launch: %d" e
  | Ok (p, _) -> World.run_until_exit w p);
  Alcotest.(check int) "ring full" 16 (List.length (Trace.events t));
  Alcotest.(check bool) "overflow happened" true (Trace.dropped t > 0);
  Alcotest.(check int) "event_count = live + dropped" (Trace.event_count t)
    (16 + Trace.dropped t)

(* unbounded mode: the recorder's sink must never drop — growth
   unrolls the circular window, so order survives arbitrary volume.
   The default ring stays bounded (pinned here and by the overflow
   tests above). *)
let test_ring_unbounded () =
  let r = Ring.create_unbounded ~initial:4 () in
  Alcotest.(check bool) "unbounded ring reports itself" false (Ring.bounded r);
  Alcotest.(check bool) "default ring is bounded" true (Ring.bounded (Ring.create ~capacity:4));
  for i = 1 to 10_000 do
    Ring.push r i
  done;
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check int) "everything retained" 10_000 (Ring.length r);
  Alcotest.(check (list int)) "order preserved across growth"
    (List.init 10_000 (fun i -> i + 1))
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Ring.to_list r);
  Ring.push r 42;
  Alcotest.(check (list int)) "usable after clear" [ 42 ] (Ring.to_list r)

(* growth mid-stream: push past the initial capacity and keep going —
   the unrolled window must stay oldest-first through the doubling *)
let test_ring_unbounded_growth_order () =
  let r = Ring.create_unbounded ~initial:4 () in
  for i = 1 to 6 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "grown mid-stream, oldest first" [ 1; 2; 3; 4; 5; 6 ]
    (Ring.to_list r);
  Alcotest.(check int) "fold parity after growth" 21 (Ring.fold ( + ) 0 r)

(* fold/iter walk the circular array in place; they must agree with
   to_list in every fill state, including after wrap-around *)
let test_ring_fold_iter_parity () =
  let parity r =
    Alcotest.(check (list int)) "fold parity" (Ring.to_list r)
      (List.rev (Ring.fold (fun acc x -> x :: acc) [] r));
    let seen = ref [] in
    Ring.iter (fun x -> seen := x :: !seen) r;
    Alcotest.(check (list int)) "iter parity" (Ring.to_list r) (List.rev !seen)
  in
  let r = Ring.create ~capacity:4 in
  parity r;
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  parity r;
  for i = 4 to 11 do
    Ring.push r i
  done;
  parity r;
  Alcotest.(check int) "fold sees live entries only" (8 + 9 + 10 + 11) (Ring.fold ( + ) 0 r)

(* --- request latency events ------------------------------------------ *)

(* run a small open-loop client under ktrace: every req_recv must pair
   with an earlier req_send on the same (conn, req), and the latencies
   derived from the event stream must equal what the client recorded *)
let test_req_event_pairing () =
  let requests = 12 in
  let w = K23_userland.Sim.create_world ~seed:11 ~quantum:8 () in
  let t = Kern.ktrace_enable ~capacity:65536 w in
  let scfg = K23_apps.Webserver.nginx ~workers:1 ~file_size:0 () in
  K23_apps.Webserver.register w scfg;
  (match World.spawn w ~path:scfg.K23_apps.Webserver.path () with
  | Error e -> Alcotest.failf "server spawn: %d" e
  | Ok _ -> ());
  K23_eval.Macro.wait_for_listener w scfg.port;
  Kern.sync_cores w;
  let ccfg =
    {
      K23_apps.Wrk.path = "/usr/bin/wrk";
      port = scfg.port;
      threads = 1;
      conns = 1;
      depth = 0;
      rounds = 0;
      req_cost = 300;
      resp_len = K23_apps.Webserver.header_len;
      arrival = K23_apps.Wrk.Open { rate = 200_000; requests; seed = 42 };
      retries = 0;
    }
  in
  let results = K23_apps.Wrk.register w ccfg in
  (match World.spawn w ~path:ccfg.K23_apps.Wrk.path () with
  | Error e -> Alcotest.failf "client spawn: %d" e
  | Ok cp -> Kern.run ~max_steps:200_000_000 ~until:(fun () -> Kern.proc_dead cp) w);
  K23_eval.Macro.kill_everything w;
  Alcotest.(check int) "all requests completed" requests results.K23_apps.Wrk.completed;
  Alcotest.(check int) "nothing dropped from the ring" 0 (Trace.dropped t);
  let sends = Hashtbl.create 16 in
  let lats = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.ev_payload with
      | Event.Req_send { conn; req; sched } ->
        Alcotest.(check bool) "send stamped at or after its schedule" true
          (e.Event.ev_cycles >= sched);
        Hashtbl.replace sends (conn, req) (sched, e.Event.ev_cycles)
      | Event.Req_recv { conn; req } -> (
        match Hashtbl.find_opt sends (conn, req) with
        | None -> Alcotest.failf "req_recv without req_send: conn %d req %d" conn req
        | Some (sched, sent_at) ->
          Alcotest.(check bool) "recv after send" true (e.Event.ev_cycles >= sent_at);
          lats := (e.Event.ev_cycles - sched) :: !lats)
      | _ -> ())
    (Trace.events t);
  Alcotest.(check int) "one req_recv per completion" requests (List.length !lats);
  (* both lists are newest-first, recorded at the same instants *)
  Alcotest.(check (list int)) "event-stream latencies = client latencies"
    results.K23_apps.Wrk.latencies !lats

(* --- counter registry ----------------------------------------------- *)

let test_counters () =
  let c = Counters.create () in
  Alcotest.(check int) "absent reads 0" 0 (Counters.get c "nope");
  Counters.incr c "a";
  Counters.incr c "a";
  Counters.incr ~by:5 c "b";
  Alcotest.(check int) "incr" 2 (Counters.get c "a");
  Alcotest.(check (list (pair string int))) "sorted alist" [ ("a", 2); ("b", 5) ]
    (Counters.to_alist c);
  let d = Counters.create () in
  Counters.incr ~by:3 d "a";
  Counters.merge_into ~dst:c d;
  Alcotest.(check int) "merge sums" 5 (Counters.get c "a");
  Counters.clear c;
  Alcotest.(check (list (pair string int))) "clear" [] (Counters.to_alist c)

(* --- trace-diff ------------------------------------------------------ *)

let ev i payload = Event.make ~cycles:(100 * i) ~pid:1 ~tid:1 payload

let test_trace_diff () =
  let mk n = List.init n (fun i -> ev i (Event.Annot (string_of_int i))) in
  (match Trace_diff.diff (mk 8) (mk 8) with
  | Trace_diff.Identical n -> Alcotest.(check int) "length reported" 8 n
  | Trace_diff.Diverged _ -> Alcotest.fail "equal streams reported as diverged");
  (* point divergence *)
  let left = mk 8 in
  let right = List.mapi (fun i e -> if i = 5 then ev i (Event.Annot "x") else e) left in
  (match Trace_diff.diff left right with
  | Trace_diff.Identical _ -> Alcotest.fail "diverged streams reported identical"
  | Trace_diff.Diverged d ->
    Alcotest.(check int) "first divergence index" 5 d.Trace_diff.index;
    Alcotest.(check bool) "both sides present" true
      (d.Trace_diff.left <> None && d.Trace_diff.right <> None);
    Alcotest.(check int) "context bounded to context_len" Trace_diff.context_len
      (List.length d.Trace_diff.context);
    (* the after-context: up to context_len events past the divergence
       on each side, so a report shows what each stream did next *)
    Alcotest.(check int) "left after-context has the remaining events"
      (min Trace_diff.context_len 2)
      (List.length d.Trace_diff.after_left);
    Alcotest.(check int) "right after-context has the remaining events"
      (min Trace_diff.context_len 2)
      (List.length d.Trace_diff.after_right));
  (* length divergence: one stream is a strict prefix *)
  match Trace_diff.diff (mk 8) (mk 6) with
  | Trace_diff.Identical _ -> Alcotest.fail "prefix streams reported identical"
  | Trace_diff.Diverged d ->
    Alcotest.(check int) "diverges at the shorter end" 6 d.Trace_diff.index;
    Alcotest.(check bool) "right ended" true (d.Trace_diff.right = None)

let test_render_json_shape () =
  let events =
    [
      ev 0 (Event.Syscall_enter { nr = 1; site = 0x1000; owner = "app"; args = [| 7; 8; 9 |] });
      ev 1 (Event.Syscall_exit { nr = 1; ret = -2 });
      ev 2 (Event.Annot "mech:\"quoted\"");
    ]
  in
  let s = Render.json_stream ~namer:string_of_int ~counters:[ ("sys.app", 1) ] ~dropped:0 events in
  Alcotest.(check bool) "object shape" true
    (String.length s > 2 && s.[0] = '{' && String.sub s (String.length s - 2) 2 = "}\n");
  Alcotest.(check bool) "quotes escaped" true
    (not (String.length s = 0)
    && (let ok = ref false in
        String.iteri (fun i c -> if c = '\\' && i + 1 < String.length s && s.[i + 1] = '"' then ok := true) s;
        !ok))

(* --- counters parity with the legacy record (Table 3 workloads) ------ *)

let check_parity (p : Kern.proc) =
  let named n = Counters.get p.Kern.counters.Kern.c_named n in
  Alcotest.(check int) "sys.app = c_app" p.Kern.counters.Kern.c_app (named "sys.app");
  Alcotest.(check int) "sys.interposer = c_interposer" p.Kern.counters.Kern.c_interposer
    (named "sys.interposer");
  Alcotest.(check int) "sys.startup = c_startup" p.Kern.counters.Kern.c_startup
    (named "sys.startup");
  Alcotest.(check int) "sys.vdso = c_vdso" p.Kern.counters.Kern.c_vdso (named "sys.vdso")

let test_counter_parity () =
  List.iter
    (fun sys ->
      List.iter
        (fun (path, argv) ->
          let _, p, _ = H.run_poc sys ~path ?argv ~ktrace:true () in
          check_parity p)
        [
          (K23_pitfalls.Pocs.p1a_path, None);
          (K23_pitfalls.Pocs.p2b_path, None);
          (K23_pitfalls.Pocs.p3a_path, None);
          (K23_pitfalls.Pocs.target_path, None);
        ])
    [ H.Zpoline; H.Lazypoline; H.K23_sys ]

(* parity only holds while tracing is on; with tracing off the named
   registry must stay empty (the zero-overhead contract is also a
   zero-side-effect contract) *)
let test_counters_off_by_default () =
  let _, p, _ = H.run_poc H.Zpoline ~path:K23_pitfalls.Pocs.target_path () in
  Alcotest.(check (list (pair string int))) "no named counters without ktrace" []
    (Counters.to_alist p.Kern.counters.Kern.c_named)

(* --- Net.Byteq: two-list queue parity -------------------------------- *)

(* reference model: a plain byte list *)
let test_byteq_parity () =
  let q = Net.Byteq.create () in
  let model = Buffer.create 256 in
  let consumed = ref 0 in
  let rng = ref 12345 in
  let rand m =
    rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
    !rng mod m
  in
  let pending () = Buffer.length model - !consumed in
  for _step = 1 to 2000 do
    if rand 2 = 0 then begin
      (* push a chunk, possibly empty *)
      let n = rand 17 in
      let b = Bytes.init n (fun _ -> Char.chr (rand 256)) in
      Net.Byteq.push q b;
      Buffer.add_bytes model b
    end
    else begin
      let want = rand 23 in
      let got = Net.Byteq.pop q want in
      let expect = min want (pending ()) in
      Alcotest.(check int) "pop size" expect (Bytes.length got);
      Alcotest.(check string) "pop bytes in FIFO order"
        (Buffer.sub model !consumed expect)
        (Bytes.to_string got);
      consumed := !consumed + expect
    end;
    Alcotest.(check int) "length tracks model" (pending ()) (Net.Byteq.length q)
  done;
  (* drain *)
  let rest = Net.Byteq.pop q max_int in
  Alcotest.(check string) "drain" (Buffer.sub model !consumed (pending ())) (Bytes.to_string rest);
  Alcotest.(check int) "empty" 0 (Net.Byteq.length q)

(* a large push burst must be far from quadratic: 20k chunks in well
   under a second even on a slow box *)
let test_byteq_push_linear () =
  let q = Net.Byteq.create () in
  let t0 = Sys.time () in
  for _ = 1 to 20_000 do
    Net.Byteq.push q (Bytes.make 8 'x')
  done;
  let dt = Sys.time () -. t0 in
  Alcotest.(check int) "all bytes queued" 160_000 (Net.Byteq.length q);
  Alcotest.(check bool) "push burst is not quadratic" true (dt < 1.0)

(* --- Stats hardening -------------------------------------------------- *)

let test_stats_geomean_guard () =
  Alcotest.(check (float 1e-9)) "geomean ok" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  let raises xs =
    match Stats.geomean xs with
    | exception Invalid_argument _ -> true
    | (_ : float) -> false
  in
  Alcotest.(check bool) "zero rejected" true (raises [ 1.0; 0.0 ]);
  Alcotest.(check bool) "negative rejected" true (raises [ 1.0; -2.0 ]);
  Alcotest.(check bool) "nan rejected" true (raises [ 1.0; Float.nan ]);
  Alcotest.(check bool) "inf rejected" true (raises [ 1.0; Float.infinity ])

let test_stats_drop_outliers_guard () =
  Alcotest.(check (list (float 1e-9))) "normal drop" [ 2.0; 3.0 ]
    (Stats.drop_outliers [ 3.0; 1.0; 2.0; 9.0 ]);
  (* negatives sort correctly with Float.compare *)
  Alcotest.(check (list (float 1e-9))) "negative samples" [ -1.0; 2.0 ]
    (Stats.drop_outliers [ 2.0; -3.0; -1.0; 9.0 ]);
  match Stats.drop_outliers [ 1.0; Float.nan; 2.0; 3.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan sample must be rejected"

let tests =
  ( "obs (ktrace)",
    [
      Alcotest.test_case "ring basic" `Quick test_ring_basic;
      Alcotest.test_case "ring overwrites oldest" `Quick test_ring_overflow;
      Alcotest.test_case "ring rejects bad capacity" `Quick test_ring_bad_capacity;
      Alcotest.test_case "ring overflow on a live run" `Quick test_ring_overflow_live;
      Alcotest.test_case "ring fold/iter parity (incl. wrapped)" `Quick
        test_ring_fold_iter_parity;
      Alcotest.test_case "unbounded ring never drops" `Quick test_ring_unbounded;
      Alcotest.test_case "unbounded ring growth keeps order" `Quick
        test_ring_unbounded_growth_order;
      Alcotest.test_case "req_send/req_recv pairing on a live open-loop run" `Quick
        test_req_event_pairing;
      Alcotest.test_case "counter registry" `Quick test_counters;
      Alcotest.test_case "trace-diff verdicts" `Quick test_trace_diff;
      Alcotest.test_case "json stream shape" `Quick test_render_json_shape;
      Alcotest.test_case "named counters match legacy record (Table 3 apps)" `Slow
        test_counter_parity;
      Alcotest.test_case "named counters empty when tracing off" `Quick
        test_counters_off_by_default;
      Alcotest.test_case "Byteq matches byte-stream model" `Quick test_byteq_parity;
      Alcotest.test_case "Byteq push burst linear" `Quick test_byteq_push_linear;
      Alcotest.test_case "geomean input guard" `Quick test_stats_geomean_guard;
      Alcotest.test_case "drop_outliers nan guard" `Quick test_stats_drop_outliers_guard;
    ] )
