(* The pitfall matrix: every (system, pitfall) verdict must reproduce
   the paper's Table 3 exactly. *)

module H = K23_pitfalls.Harness

let check_cell sys pf () =
  let v = H.check sys pf in
  let expected = H.paper_expectation sys pf in
  Alcotest.(check bool)
    (Printf.sprintf "%s under %s (%s)" (H.pitfall_to_string pf) (H.system_to_string sys) v.detail)
    expected v.handled

(* The predecode layer must not perturb the stale-I-cache (P3b) and
   torn-write (P5) scenarios: the same verdict, with the same detail,
   whether instructions are memoised per line or re-decoded
   byte-by-byte every step.  The toggle is per-world configuration
   (World.Config.predecode) — there is no global to flip and restore
   any more. *)
let check_predecode_invariant pf () =
  let run_with on =
    (H.check ~predecode:on Zpoline pf, H.check ~predecode:on Lazypoline pf,
     H.check ~predecode:on K23_sys pf)
  in
  let on = run_with true and off = run_with false in
  let cmp sys (von : H.verdict) (voff : H.verdict) =
    Alcotest.(check bool)
      (Printf.sprintf "%s: verdict invariant under predecode" sys)
      voff.H.handled von.H.handled;
    Alcotest.(check string)
      (Printf.sprintf "%s: detail invariant under predecode" sys)
      voff.H.detail von.H.detail
  in
  let z_on, l_on, k_on = on and z_off, l_off, k_off = off in
  cmp "zpoline" z_on z_off;
  cmp "lazypoline" l_on l_off;
  cmp "K23" k_on k_off

let tests =
  ( "pitfalls (Table 3)",
    List.concat_map
      (fun pf ->
        List.map
          (fun sys ->
            Alcotest.test_case
              (Printf.sprintf "%s / %s" (H.pitfall_to_string pf) (H.system_to_string sys))
              `Quick (check_cell sys pf))
          H.all_systems)
      H.all_pitfalls
    @ [
        Alcotest.test_case "P3b verdicts: predecode on == off" `Quick
          (check_predecode_invariant H.P3b);
        Alcotest.test_case "P5 verdicts: predecode on == off" `Quick
          (check_predecode_invariant H.P5);
      ] )
