(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6).

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table5    # one experiment
     dune exec bench/main.exe -- --quick table5 table6   # fewer runs

   Experiments: table2 table3 fig3 table5 table6 startup memory
   ablation simperf ktrace fuzz parfuzz replay table6-load table6-chaos.
   EXPERIMENTS.md records the paper-vs-measured comparison in full.

   --jobs N shards the embarrassingly-parallel sweeps (table5, table6,
   fuzz, parfuzz) across N domains via K23_par; every table is
   byte-identical whatever N is.  parfuzz measures the jobs scaling
   curve itself (--repeat N medians, --check for the CI gate). *)

open K23_eval

let section title =
  Printf.printf "\n======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================================\n%!"

let table2 () =
  section "Table 2 - unique syscall instructions logged by the offline phase";
  print_string (Offline_counts.render_table2 (Offline_counts.table2 ()))

let table3 () =
  section "Table 3 - pitfall matrix (Y = handled, x = not handled; paper in parens)";
  let rows = K23_pitfalls.Harness.run_table3 () in
  print_string (K23_pitfalls.Harness.render_table3 rows);
  let mismatches =
    List.concat_map
      (fun { K23_pitfalls.Harness.pitfall; verdicts } ->
        List.filter_map
          (fun (sys, v) ->
            if
              v.K23_pitfalls.Harness.handled
              <> K23_pitfalls.Harness.paper_expectation sys pitfall
            then Some (pitfall, sys)
            else None)
          verdicts)
      rows
  in
  Printf.printf "\n%d/27 cells match the paper.\n" (27 - List.length mismatches)

let fig1 () =
  section "Figure 1 - valid / partial / data-embedded syscall patterns";
  print_string (Fig1.render ())

let fig3 () =
  section "Figure 3 - offline log generated for ls (region,offset pairs)";
  print_string (Offline_counts.fig3 ())

let table5 ~runs ~jobs () =
  section "Table 5 - microbenchmark overhead vs native";
  print_string (Micro.render (Micro.table5 ~runs ~jobs ()));
  print_string
    "\npaper:  zpoline-default 1.1267x | zpoline-ultra 1.1576x | lazypoline 1.3801x\n\
     \        K23-default 1.2788x | K23-ultra 1.3919x | K23-ultra+ 1.3948x\n\
     \        SUD-no-interposition 1.2269x | SUD 15.3022x\n"

let table6 ~runs ~jobs () =
  section "Table 6 - macrobenchmarks (throughput relative to native, %)";
  print_string (Macro.render (Macro.table6 ~runs ~jobs ()));
  print_string
    "\npaper geomeans: zpoline-default 98.93 | zpoline-ultra 98.27 | lazypoline 98.26\n\
     \                K23-default 98.62 | K23-ultra 97.96 | K23-ultra+ 97.90 | SUD 56.70\n"

(* Open-loop latency campaign: p50/p99/p999 per mechanism (plus the
   mixed per-tenant row) from seeded Poisson arrivals, latency in
   simulated cycles via the kernel's request stamps.  [--json <path>]
   (or bare [--json] for BENCH_load.json) writes the machine-readable
   record; deterministic per seed and byte-identical at any --jobs. *)
let table6_load ~quick ~jobs ?json () =
  section "table6-load - open-loop latency campaign (p50/p99/p999 per mechanism)";
  let rep = Load.campaign ~quick ~jobs () in
  print_string (Load.render rep);
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Load.render_json rep);
    close_out oc;
    Printf.printf "wrote %s\n" path

(* The chaos row: the same open-loop campaign with the deterministic
   fault plane armed for the load phase (EINTR storms, short I/O,
   EAGAIN, EMFILE, resets) and fault-tolerant servers/clients.  Tails
   under faults are the robustness complement to table6-load's clean
   tails; deterministic per seed and byte-identical at any --jobs. *)
let table6_chaos ~quick ~jobs ?json () =
  section "table6-chaos - open-loop latency campaign under fault injection";
  let rep = Load.campaign ~quick ~jobs ~faults:(K23_faults.Faults.chaos ()) () in
  print_string (Load.render rep);
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Load.render_json rep);
    close_out oc;
    Printf.printf "wrote %s\n" path

let startup () =
  section "E7 - startup window (syscalls before the preload library initialises)";
  print_string (Startup_bench.render (Startup_bench.run ()));
  print_string
    "\npaper: \"even simple utilities like ls issue over 100 system calls during\n\
     startup before the interposition library is loaded\" (Section 6.1)\n"

let memory () =
  section "E8 / P4b - memory footprint of the NULL-execution check";
  print_string (Memory_bench.render (Memory_bench.run ()))

let ablation () =
  section "E6 - feature-cost ablation (microbenchmark deltas)";
  print_string (Ablation.render (Ablation.run ()))

(* Bechamel measurements of the simulator's own hot paths: not a paper
   artifact, but the perf trajectory every table depends on (billions
   of simulated steps per full run).  The workload lives in
   [K23_eval.Simperf] so the test suite can run a fast smoke pass;
   [--json <path>] additionally emits a machine-readable record so the
   numbers are tracked across PRs (BENCH_simperf.json /
   EXPERIMENTS.md).  [--quick] shrinks the per-test budget. *)
let simperf ~quick ?json () =
  section "simulator hot-path performance (Bechamel)";
  let r =
    if quick then Simperf.run ~quota:0.05 ~limit:50 () else Simperf.run ()
  in
  print_string (Simperf.render r);
  match json with
  | None -> ()
  | Some path ->
    Simperf.write_json r path;
    Printf.printf "wrote %s\n" path

let ktrace ~quick () =
  section "ktrace - per-mechanism event/counter summaries (stress app)";
  let rows = Ktrace_summary.run ~iters:(if quick then 100 else 300) () in
  print_string (Ktrace_summary.render rows)

let arm () =
  section "extension - fixed-length ISA study (Section 7's claim, quantified)";
  print_string (Contrast.render_arm_study (Contrast.arm_study ()))

let seccomp () =
  section "extension - seccomp-based interposition (the third Linux interface)";
  print_string (Contrast.render_seccomp (Contrast.seccomp_micro ()))

(* Fuzzer throughput + coverage: how many differential executions per
   second the oracle sustains (sequential and sharded across [jobs]
   domains), and what the generator's opcode and syscall distributions
   look like.  Timing stays in this harness — the campaign report
   itself is deterministic, and the harness asserts the sequential and
   parallel reports render identical JSON.  Wall-clock time
   (Unix.gettimeofday) rather than CPU time: Sys.time sums across
   domains and would hide any parallel speedup.  The scaling curve and
   its JSON artifact live in the [parfuzz] experiment. *)
let fuzz ~quick ~jobs () =
  let module F = K23_fuzz in
  section "fuzz - differential conformance fuzzer (throughput & coverage)";
  let iters = if quick then 50 else 300 in
  let jobs = match jobs with Some j -> j | None -> max 2 (K23_par.Pool.default_jobs ()) in
  let config = { F.Campaign.default_config with c_iters = iters } in
  let timed j =
    let t0 = Unix.gettimeofday () in
    let r = F.Campaign.run ~jobs:j config in
    (r, Unix.gettimeofday () -. t0)
  in
  let r, dt1 = timed 1 in
  let rp, dtn = timed jobs in
  if F.Campaign.render_json rp <> F.Campaign.render_json r then
    failwith "fuzz: parallel report differs from sequential report";
  print_string (F.Campaign.render_text r);
  let throughput dt =
    Printf.sprintf "%d oracle runs in %.2fs (%.0f execs/sec)" r.F.Campaign.r_runs dt
      (float_of_int r.F.Campaign.r_runs /. dt)
  in
  Printf.printf "throughput (jobs=1): %s\n" (throughput dt1);
  Printf.printf "throughput (jobs=%d): %s\n" jobs (throughput dtn);
  Printf.printf "speedup: %.2fx on %d core(s); reports byte-identical\n" (dt1 /. dtn)
    (Domain.recommended_domain_count ());
  Printf.printf "\nopcode coverage (%d static insns):\n" r.F.Campaign.r_insns;
  List.iter
    (fun (k, v) -> Printf.printf "  %-10s %6d\n" k v)
    r.F.Campaign.r_insn_hist;
  Printf.printf "\nsyscall coverage:\n";
  List.iter
    (fun (nr, v) -> Printf.printf "  %-14s %6d\n" (K23_kernel.Sysno.name nr) v)
    r.F.Campaign.r_sys_hist

(* The --jobs scaling curve: the same campaign at jobs = 1, 2, 4, 8,
   asserting every report renders byte-identical JSON.  [--repeat N]
   runs each point N times and keeps the median after the paper's
   drop-one-min/one-max outlier rule (§6.2 methodology, applied to our
   own harness).  [--json <path>] writes BENCH_parfuzz.json;
   [--check] exits non-zero when the determinism or scaling floor is
   violated — the CI sanity gate. *)
let parfuzz ~quick ~repeat ~check ~jobs ?json () =
  let module F = K23_fuzz in
  section "parfuzz - --jobs scaling curve (throughput & determinism)";
  let iters = if quick then 50 else 300 in
  let config = { F.Campaign.default_config with c_iters = iters } in
  let jobs_list =
    match jobs with Some j -> [ 1; j ] | None -> [ 1; 2; 4; 8 ]
  in
  let reference = ref None in
  let identical = ref true in
  let measure j =
    let samples =
      List.init (max 1 repeat) (fun _ ->
          let t0 = Unix.gettimeofday () in
          let r = F.Campaign.run ~jobs:j config in
          let dt = Unix.gettimeofday () -. t0 in
          let js = F.Campaign.render_json r in
          (match !reference with
          | None -> reference := Some (r, js)
          | Some (_, ref_js) -> if js <> ref_js then identical := false);
          dt)
    in
    K23_util.Stats.median (K23_util.Stats.drop_outliers samples)
  in
  let curve = List.map (fun j -> (j, measure j)) jobs_list in
  let r = fst (Option.get !reference) in
  let runs = float_of_int r.F.Campaign.r_runs in
  let eps dt = runs /. dt in
  let dt1 = List.assoc 1 curve in
  Printf.printf "%d iterations, %d oracle runs per point, repeat=%d, %d core(s)\n\n" iters
    r.F.Campaign.r_runs (max 1 repeat)
    (Domain.recommended_domain_count ());
  Printf.printf "  %-6s %10s %12s %9s\n" "jobs" "wall_s" "execs/sec" "speedup";
  List.iter
    (fun (j, dt) ->
      Printf.printf "  %-6d %10.2f %12.1f %8.2fx\n" j dt (eps dt) (dt1 /. dt))
    curve;
  Printf.printf "\nreports byte-identical across all points: %b\n" !identical;
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"experiment\": \"parfuzz\",\n\
      \  \"iters\": %d,\n\
      \  \"oracle_runs\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"repeat\": %d,\n\
      \  \"reports_identical\": %b,\n\
      \  \"curve\": [\n%s\n  ]\n\
       }\n"
      iters r.F.Campaign.r_runs
      (Domain.recommended_domain_count ())
      (max 1 repeat) !identical
      (String.concat ",\n"
         (List.map
            (fun (j, dt) ->
              Printf.sprintf
                "    {\"jobs\": %d, \"wall_s\": %.3f, \"execs_per_sec\": %.1f, \
                 \"speedup\": %.3f}"
                j dt (eps dt) (dt1 /. dt))
            curve));
    close_out oc;
    Printf.printf "wrote %s\n" path);
  if check then begin
    let failed = ref false in
    if not !identical then begin
      prerr_endline "parfuzz --check: FAIL — reports differ across jobs values";
      failed := true
    end;
    (* the scaling floor needs a second core to be meaningful: on one
       core extra domains only add minor-GC stop-the-world pauses *)
    (match List.assoc_opt 2 curve with
    | Some dt2 when Domain.recommended_domain_count () >= 2 && eps dt2 < 0.9 *. eps dt1 ->
      Printf.eprintf
        "parfuzz --check: FAIL — jobs=2 throughput %.1f < 0.9 x jobs=1 %.1f\n" (eps dt2)
        (eps dt1);
      failed := true
    | _ -> ());
    if !failed then exit 1;
    print_endline "parfuzz --check: ok"
  end

(* Record & replay (lib/replay): what recording costs on top of a
   plain run / a ktrace-ring run, how fast the replayer re-drives and
   checks a log, and whether the replay-checked fuzz oracle keeps up
   with the live one while rendering the identical report.  All
   wall-clock medians (drop-one-min/one-max), written to
   BENCH_replay.json with --json. *)
let replay_bench ~quick ?json () =
  let module R = K23_replay in
  let module F = K23_fuzz in
  section "replay - record overhead, replay-check throughput, oracle parity";
  let reps = if quick then 3 else 7 in
  (* single ls runs are ~3ms; batch them so each timed sample is tens
     of ms and scheduler noise stops dominating the overhead ratio *)
  let batch = if quick then 5 else 20 in
  let register w = K23_apps.Coreutils.register_all w in
  let median_of ?(n = 1) f =
    let samples =
      List.init reps (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to n do
            f ()
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int n)
    in
    K23_util.Stats.median (K23_util.Stats.drop_outliers samples)
  in
  let apps = [ ("ls", Mech.Zpoline_ultra); ("ls", Mech.K23_ultra) ] in
  (* A. record overhead: plain run vs bounded ktrace ring vs full
     recording (unbounded sink + log assembly) *)
  let setup mech path =
    let w = K23_userland.Sim.create_world () in
    register w;
    if Mech.needs_offline mech then begin
      ignore (K23_core.K23.offline_run w ~path ());
      K23_core.K23.seal_logs w
    end;
    K23_kernel.Kern.fault_reset w;
    w
  in
  let run_in w mech path =
    match Mech.launch mech w ~path () with
    | Error e -> failwith (Printf.sprintf "replay bench: launch failed (%d)" e)
    | Ok (p, _) -> K23_kernel.World.run_until_exit w p
  in
  Printf.printf "record overhead (%d reps, median):\n" reps;
  Printf.printf "  %-6s %-16s %8s %10s %10s %10s %9s\n" "app" "mech" "events" "plain_s"
    "ktrace_s" "record_s" "overhead";
  let record_rows =
    List.map
      (fun (app, mech) ->
        let path = K23_apps.Coreutils.path app in
        let plain_s = median_of ~n:batch (fun () -> run_in (setup mech path) mech path) in
        let ktrace_s =
          median_of ~n:batch (fun () ->
              let w = setup mech path in
              ignore (K23_kernel.Kern.ktrace_enable w);
              run_in w mech path)
        in
        let rc = ref None in
        let record_s =
          median_of ~n:batch (fun () ->
              match R.Recorder.record ~register ~mech ~path () with
              | Error e -> failwith (Printf.sprintf "replay bench: record failed (%d)" e)
              | Ok r -> rc := Some r)
        in
        let r = Option.get !rc in
        let events = List.length r.R.Recording.rc_events in
        Printf.printf "  %-6s %-16s %8d %10.4f %10.4f %10.4f %8.2fx\n" app
          (Mech.to_string mech) events plain_s ktrace_s record_s (record_s /. plain_s);
        (app, mech, events, plain_s, ktrace_s, record_s, r))
      apps
  in
  (* B. replay-check throughput: re-drive + diff every event *)
  Printf.printf "\nreplay check (%d reps, median):\n" reps;
  Printf.printf "  %-6s %-16s %10s %14s %12s\n" "app" "mech" "replay_s" "events/sec"
    "vs record";
  let replay_rows =
    List.map
      (fun (app, mech, events, _, _, record_s, r) ->
        let replay_s =
          median_of ~n:batch (fun () ->
              match R.Replayer.replay ~register r with
              | Error e -> failwith (Printf.sprintf "replay bench: replay failed (%d)" e)
              | Ok o ->
                if not (R.Replayer.ok o) then failwith "replay bench: replay diverged")
        in
        Printf.printf "  %-6s %-16s %10.4f %14.0f %11.2fx\n" app (Mech.to_string mech)
          replay_s
          (float_of_int events /. replay_s)
          (record_s /. replay_s);
        (app, mech, events, replay_s, record_s))
      record_rows
  in
  (* C. oracle parity: live vs replay-checked campaign, same report *)
  let iters = if quick then 30 else 100 in
  let live_cfg = { F.Campaign.default_config with c_iters = iters } in
  let replay_cfg = { live_cfg with F.Campaign.c_oracle = F.Campaign.Replay } in
  let out = ref None in
  let time_campaign cfg =
    median_of (fun () -> out := Some (F.Campaign.run ~jobs:1 cfg))
  in
  let live_s = time_campaign live_cfg in
  let live_json = F.Campaign.render_json (Option.get !out) in
  let replay_s = time_campaign replay_cfg in
  let replay_json = F.Campaign.render_json (Option.get !out) in
  let identical = live_json = replay_json in
  let runs = (Option.get !out).F.Campaign.r_runs in
  Printf.printf "\nfuzz oracle (%d iters, %d oracle runs, jobs=1):\n" iters runs;
  Printf.printf "  live:   %7.2fs (%.0f execs/sec)\n" live_s (float_of_int runs /. live_s);
  Printf.printf "  replay: %7.2fs (%.0f execs/sec)\n" replay_s
    (float_of_int runs /. replay_s);
  Printf.printf "  reports byte-identical: %b\n" identical;
  if not identical then failwith "replay bench: live and replay oracle reports differ";
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"experiment\": \"replay\",\n\
      \  \"reps\": %d,\n\
      \  \"record\": [\n%s\n  ],\n\
      \  \"replay\": [\n%s\n  ],\n\
      \  \"oracle\": {\"iters\": %d, \"oracle_runs\": %d, \"live_s\": %.3f, \
       \"replay_s\": %.3f, \"live_execs_per_sec\": %.1f, \"replay_execs_per_sec\": %.1f, \
       \"reports_identical\": %b}\n\
       }\n"
      reps
      (String.concat ",\n"
         (List.map
            (fun (app, mech, events, plain_s, ktrace_s, record_s, _) ->
              Printf.sprintf
                "    {\"app\": \"%s\", \"mech\": \"%s\", \"events\": %d, \"plain_s\": %.4f, \
                 \"ktrace_s\": %.4f, \"record_s\": %.4f, \"record_overhead\": %.3f}"
                app (Mech.to_string mech) events plain_s ktrace_s record_s
                (record_s /. plain_s))
            record_rows))
      (String.concat ",\n"
         (List.map
            (fun (app, mech, events, replay_s, record_s) ->
              Printf.sprintf
                "    {\"app\": \"%s\", \"mech\": \"%s\", \"events\": %d, \"replay_s\": %.4f, \
                 \"events_per_sec\": %.1f, \"replay_vs_record\": %.3f}"
                app (Mech.to_string mech) events replay_s
                (float_of_int events /. replay_s)
                (record_s /. replay_s))
            replay_rows))
      iters runs live_s replay_s
      (float_of_int runs /. live_s)
      (float_of_int runs /. replay_s)
      identical;
    close_out oc;
    Printf.printf "wrote %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let check = List.mem "--check" args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--check") args in
  let repeat, args =
    let rec go acc = function
      | [ "--repeat" ] ->
        prerr_endline "--repeat requires a count (e.g. --repeat 5)";
        exit 2
      | "--repeat" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 -> (k, List.rev_append acc rest)
        | _ ->
          Printf.eprintf "--repeat: not a positive integer: %S\n" n;
          exit 2)
      | x :: rest -> go (x :: acc) rest
      | [] -> (1, List.rev acc)
    in
    go [] args
  in
  let json, args =
    let rec go acc = function
      (* bare trailing --json: each experiment picks its default
         artifact name (BENCH_load.json, BENCH_simperf.json, ...) *)
      | [ "--json" ] -> (Some "", List.rev acc)
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let json_or default = match json with Some "" -> Some default | v -> v in
  let jobs, args =
    let rec go acc = function
      | [ "--jobs" ] ->
        prerr_endline "--jobs requires a count (e.g. --jobs 4)";
        exit 2
      | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ ->
          Printf.eprintf "--jobs: not a positive integer: %S\n" n;
          exit 2)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let experiments =
    if args = [] then
      [
        "table2"; "table3"; "fig1"; "fig3"; "table5"; "table6"; "startup"; "memory"; "ablation";
        "seccomp"; "arm";
      ]
    else args
  in
  List.iter
    (fun name ->
      match name with
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig1" -> fig1 ()
      | "fig3" -> fig3 ()
      | "table5" -> table5 ~runs:(if quick then 3 else 10) ~jobs:(Option.value jobs ~default:1) ()
      | "table6" -> table6 ~runs:(if quick then 3 else 5) ~jobs:(Option.value jobs ~default:1) ()
      | "startup" -> startup ()
      | "memory" -> memory ()
      | "ablation" -> ablation ()
      | "seccomp" -> seccomp ()
      | "arm" -> arm ()
      | "simperf" -> simperf ~quick ?json:(json_or "BENCH_simperf.json") ()
      | "ktrace" -> ktrace ~quick ()
      | "fuzz" -> fuzz ~quick ~jobs ()
      | "parfuzz" -> parfuzz ~quick ~repeat ~check ~jobs ?json:(json_or "BENCH_parfuzz.json") ()
      | "replay" -> replay_bench ~quick ?json:(json_or "BENCH_replay.json") ()
      | "table6-load" ->
        table6_load ~quick
          ~jobs:(Option.value jobs ~default:1)
          ?json:(json_or "BENCH_load.json") ()
      | "table6-chaos" ->
        table6_chaos ~quick
          ~jobs:(Option.value jobs ~default:1)
          ?json:(json_or "BENCH_chaos.json") ()
      | other -> Printf.eprintf "unknown experiment %S\n" other)
    experiments
