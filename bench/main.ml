(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6).

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table5    # one experiment
     dune exec bench/main.exe -- --quick table5 table6   # fewer runs

   Experiments: table2 table3 fig3 table5 table6 startup memory
   ablation simperf.  EXPERIMENTS.md records the paper-vs-measured
   comparison in full. *)

open K23_eval

let section title =
  Printf.printf "\n======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================================\n%!"

let table2 () =
  section "Table 2 - unique syscall instructions logged by the offline phase";
  print_string (Offline_counts.render_table2 (Offline_counts.table2 ()))

let table3 () =
  section "Table 3 - pitfall matrix (Y = handled, x = not handled; paper in parens)";
  let rows = K23_pitfalls.Harness.run_table3 () in
  print_string (K23_pitfalls.Harness.render_table3 rows);
  let mismatches =
    List.concat_map
      (fun { K23_pitfalls.Harness.pitfall; verdicts } ->
        List.filter_map
          (fun (sys, v) ->
            if
              v.K23_pitfalls.Harness.handled
              <> K23_pitfalls.Harness.paper_expectation sys pitfall
            then Some (pitfall, sys)
            else None)
          verdicts)
      rows
  in
  Printf.printf "\n%d/27 cells match the paper.\n" (27 - List.length mismatches)

let fig1 () =
  section "Figure 1 - valid / partial / data-embedded syscall patterns";
  print_string (Fig1.render ())

let fig3 () =
  section "Figure 3 - offline log generated for ls (region,offset pairs)";
  print_string (Offline_counts.fig3 ())

let table5 ~runs () =
  section "Table 5 - microbenchmark overhead vs native";
  print_string (Micro.render (Micro.table5 ~runs ()));
  print_string
    "\npaper:  zpoline-default 1.1267x | zpoline-ultra 1.1576x | lazypoline 1.3801x\n\
     \        K23-default 1.2788x | K23-ultra 1.3919x | K23-ultra+ 1.3948x\n\
     \        SUD-no-interposition 1.2269x | SUD 15.3022x\n"

let table6 ~runs () =
  section "Table 6 - macrobenchmarks (throughput relative to native, %)";
  print_string (Macro.render (Macro.table6 ~runs ()));
  print_string
    "\npaper geomeans: zpoline-default 98.93 | zpoline-ultra 98.27 | lazypoline 98.26\n\
     \                K23-default 98.62 | K23-ultra 97.96 | K23-ultra+ 97.90 | SUD 56.70\n"

let startup () =
  section "E7 - startup window (syscalls before the preload library initialises)";
  print_string (Startup_bench.render (Startup_bench.run ()));
  print_string
    "\npaper: \"even simple utilities like ls issue over 100 system calls during\n\
     startup before the interposition library is loaded\" (Section 6.1)\n"

let memory () =
  section "E8 / P4b - memory footprint of the NULL-execution check";
  print_string (Memory_bench.render (Memory_bench.run ()))

let ablation () =
  section "E6 - feature-cost ablation (microbenchmark deltas)";
  print_string (Ablation.render (Ablation.run ()))

(* Bechamel measurements of the simulator's own hot paths: not a paper
   artifact, but the perf trajectory every table depends on (billions
   of simulated steps per full run).  [--json <path>] additionally
   emits a machine-readable record so the numbers are tracked across
   PRs (see BENCH_simperf.json / EXPERIMENTS.md). *)
let simperf ?json () =
  section "simulator hot-path performance (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let open K23_machine in
  let prog =
    K23_isa.Encode.assemble
      [ Mov_ri (RAX, 500); Syscall; Mov_rr (RDI, RSI); Add_ri (RSP, 8); Ret ]
  in
  let set = K23_core.Robin_set.of_list (List.init 64 (fun i -> 0x400000 + (i * 16))) in
  (* Fixed fetch-decode-execute workload: a register/branch-heavy loop
     (no data memory traffic), so the measurement is dominated by the
     fetch+decode dispatch path that [Cpu.step] takes per instruction. *)
  let loop_insns : K23_isa.Insn.t list =
    [
      Mov_ri (RCX, 32);
      (* loop body: 24 bytes, jcc jumps back to its start *)
      Mov_rr (RAX, RCX);
      Add_rr (RAX, RCX);
      Sub_ri (RAX, 1);
      Cmp_ri (RCX, 0);
      Sub_ri (RCX, 1);
      Jcc (NZ, -24);
      Hlt;
    ]
  in
  (* Same shape with a load/store pair in the body: exercises the
     [Memory] word-access path (page lookup + permission checks). *)
  let mem_loop_insns : K23_isa.Insn.t list =
    [
      Mov_ri (RCX, 32);
      Mov_ri (RBX, 0x8000);
      (* loop body: 3+7+7+4+4+6 = 31 bytes *)
      Mov_rr (RAX, RCX);
      Store (RBX, 0, RAX);
      Load (RAX, RBX, 0);
      Cmp_ri (RCX, 0);
      Sub_ri (RCX, 1);
      Jcc (NZ, -31);
      Hlt;
    ]
  in
  let make_step_loop insns =
    let mem = Memory.create () in
    Memory.map mem ~addr:0x1000 ~len:4096 ~perm:Memory.perm_rx;
    Memory.map mem ~addr:0x8000 ~len:4096 ~perm:Memory.perm_rw;
    Memory.write_bytes_raw mem 0x1000 (K23_isa.Encode.assemble insns);
    let regs = Regs.create () in
    let ic = Icache.create () in
    let run () =
      regs.rip <- 0x1000;
      Regs.set regs RSP 0x8800;
      let steps = ref 0 in
      let continue = ref true in
      while !continue do
        incr steps;
        match Cpu.step regs mem ic with
        | Cpu.Stepped _ -> ()
        | Cpu.Trapped _ -> continue := false
      done;
      !steps
    in
    run
  in
  let step_loop = make_step_loop loop_insns in
  let step_loop_mem = make_step_loop mem_loop_insns in
  let steps_per_run = step_loop () in
  let mem_u64 =
    let mem = Memory.create () in
    Memory.map mem ~addr:0x8000 ~len:8192 ~perm:Memory.perm_rw;
    mem
  in
  let tests =
    [
      Test.make ~name:"isa.decode" (Staged.stage (fun () -> K23_isa.Decode.decode_bytes prog 0));
      Test.make ~name:"isa.linear-sweep"
        (Staged.stage (fun () -> K23_isa.Disasm.find_syscall_sites prog ~base:0));
      Test.make ~name:"robin_set.mem"
        (Staged.stage (fun () -> K23_core.Robin_set.mem set 0x400080));
      Test.make ~name:"cpu.step-loop" (Staged.stage (fun () -> ignore (step_loop ())));
      Test.make ~name:"cpu.step-loop-mem" (Staged.stage (fun () -> ignore (step_loop_mem ())));
      Test.make ~name:"mem.read_u64"
        (Staged.stage (fun () -> Memory.read_u64 mem_u64 ~pkru:0 0x8100));
      Test.make ~name:"mem.write_u64"
        (Staged.stage (fun () -> Memory.write_u64 mem_u64 ~pkru:0 0x8100 0xdeadbeef));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let estimates = ref [] in
  List.iter
    (fun t ->
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] t in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols Instance.monotonic_clock raw) with
          | Some (est :: _) ->
            estimates := (name, est) :: !estimates;
            Printf.printf "%-24s %12.1f ns/op\n" name est
          | Some [] | None -> Printf.printf "%-24s (no estimate)\n" name)
        results)
    tests;
  let steps_per_sec =
    match List.assoc_opt "cpu.step-loop" !estimates with
    | Some ns when ns > 0. -> float_of_int steps_per_run *. 1e9 /. ns
    | _ -> 0.
  in
  Printf.printf "%-24s %12.0f steps/sec (%d-step workload)\n" "cpu.step-loop" steps_per_sec
    steps_per_run;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"experiment\": \"simperf\",\n  \"ns_per_op\": {\n";
    let rows = List.rev !estimates in
    List.iteri
      (fun i (name, est) ->
        Printf.fprintf oc "    %S: %.1f%s\n" name est
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  },\n  \"step_loop\": { \"steps_per_run\": %d, \"steps_per_sec\": %.0f }\n}\n"
      steps_per_run steps_per_sec;
    close_out oc;
    Printf.printf "wrote %s\n" path

let arm () =
  section "extension - fixed-length ISA study (Section 7's claim, quantified)";
  print_string (Contrast.render_arm_study (Contrast.arm_study ()))

let seccomp () =
  section "extension - seccomp-based interposition (the third Linux interface)";
  print_string (Contrast.render_seccomp (Contrast.seccomp_micro ()))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  let json, args =
    let rec go acc = function
      | [ "--json" ] ->
        prerr_endline "--json requires a path (e.g. --json BENCH_simperf.json)";
        exit 2
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let experiments =
    if args = [] then
      [
        "table2"; "table3"; "fig1"; "fig3"; "table5"; "table6"; "startup"; "memory"; "ablation";
        "seccomp"; "arm";
      ]
    else args
  in
  List.iter
    (fun name ->
      match name with
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig1" -> fig1 ()
      | "fig3" -> fig3 ()
      | "table5" -> table5 ~runs:(if quick then 3 else 10) ()
      | "table6" -> table6 ~runs:(if quick then 3 else 5) ()
      | "startup" -> startup ()
      | "memory" -> memory ()
      | "ablation" -> ablation ()
      | "seccomp" -> seccomp ()
      | "arm" -> arm ()
      | "simperf" -> simperf ?json ()
      | other -> Printf.eprintf "unknown experiment %S\n" other)
    experiments
